package capi_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	capi "capi"
)

// slowCountBackend is a registered backend that counts events and sleeps on
// every delivery — slow enough that an async run's rings are provably
// non-empty when the engine's ranks join, which is what the Run flush
// barrier exists for. A process-wide singleton, like race-count, so counts
// survive backend-set swaps.
type slowCountBackend struct {
	enters, exits atomic.Int64
	delay         atomic.Int64 // nanoseconds per event
}

func (b *slowCountBackend) Name() string { return "slow-count" }
func (b *slowCountBackend) OnEnter(tc capi.ThreadCtx, fn *capi.ResolvedFunc) {
	if d := b.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	b.enters.Add(1)
}
func (b *slowCountBackend) OnExit(tc capi.ThreadCtx, fn *capi.ResolvedFunc) {
	if d := b.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	b.exits.Add(1)
}
func (b *slowCountBackend) InitCost(int) int64           { return 0 }
func (b *slowCountBackend) Events() capi.EventBackend    { return b }
func (b *slowCountBackend) StartPhase(*capi.World) error { return nil }
func (b *slowCountBackend) Report() capi.Report          { return nil }

var slowCounter = &slowCountBackend{}

func init() {
	capi.RegisterBackend("slow-count", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return slowCounter, nil
	})
}

// TestAsyncAdaptIncompatible: the overhead-budget controller reads live
// rank clocks the replayed pipeline events never advance, so the
// combination is rejected up front instead of silently mis-adapting.
func TestAsyncAdaptIncompatible(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Start(sel, capi.RunOptions{
		Backend: capi.BackendTALP, Ranks: 2,
		Async: true, Adapt: &capi.AdaptOptions{Budget: 0.01},
	})
	if err == nil {
		t.Fatal("Async+Adapt accepted")
	}
}

// TestInstanceAsyncRunFlushBarrier is the phase-end flush-ordering
// regression test: Instance.Run must drain the async pipeline after the
// engine's ranks join and before RunResult is captured. The backend sleeps
// per event, so at join time the rings still hold queued events — without
// the barrier, the counting backend's totals (and every backend report)
// would be short of the sampler's Delivered count at Run return.
func TestInstanceAsyncRunFlushBarrier(t *testing.T) {
	slowCounter.enters.Store(0)
	slowCounter.exits.Store(0)
	slowCounter.delay.Store(int64(50 * time.Microsecond))
	defer slowCounter.delay.Store(0)

	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{
		Backends: []string{"slow-count"},
		Ranks:    2,
		Async:    true,
		// Stride 1: the sampler counts every event and delivers every event,
		// giving the independent expected count for the assertion below.
		Sampling: &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if !inst.Async() {
		t.Fatal("pipeline not attached")
	}

	res, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampling == nil || res.Sampling.Counters.Enters == 0 {
		t.Fatalf("no sampling counters captured: %+v", res.Sampling)
	}
	if res.DroppedAsync != 0 {
		t.Fatalf("default ring dropped %d pairs on a quickstart phase", res.DroppedAsync)
	}
	// The exact reconciliation, read immediately at Run return: every enter
	// the sampler delivered has already landed in the backend. A missing
	// drain barrier loses the tail of the phase still queued in the rings.
	c := res.Sampling.Counters
	if got := slowCounter.enters.Load(); got != c.Delivered {
		t.Fatalf("at Run return the backend saw %d enters, sampler delivered %d — phase-end flush barrier broken",
			got, c.Delivered)
	}
	if d := inst.PipelineDepth(); d != 0 {
		t.Fatalf("pipeline depth %d at Run return, want 0", d)
	}
}

// TestInstanceAsyncConservationUnderRace is the async stress test: phases
// execute through the asynchronous pipeline while four goroutines hammer
// the instance — live sampling-rate changes, re-selection, backend-set
// swaps and status scrapes. Run with -race.
//
// The acceptance invariant extends the inline one with back-pressure:
//
//	enters == delivered + sampled-out + suppressed + collapsed
//	backend enters == delivered − droppedAsync
//
// — every event is delivered, sampled out, suppressed, collapsed or
// dropped by the bounded ring, with nothing unaccounted.
func TestInstanceAsyncConservationUnderRace(t *testing.T) {
	raceCounter.enters.Store(0)
	raceCounter.exits.Store(0)
	s, err := capi.NewSession(capi.Lulesh(capi.LuleshOptions{Timesteps: 3000}),
		capi.SessionOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := s.Select(quickCoarseSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(wide, capi.RunOptions{
		Backends: []string{"race-count"},
		Ranks:    2,
		Async:    true,
		// A small ring keeps the back-pressure path itself under stress.
		AsyncBuf: 256,
		Sampling: &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // live rate changes
		defer wg.Done()
		tables := []capi.SamplingOptions{
			{Default: &capi.SamplingPolicy{Stride: 1}},
			{Default: &capi.SamplingPolicy{Stride: 8}},
			{Default: &capi.SamplingPolicy{Stride: 64, MinDurationNs: 500}},
			{Default: &capi.SamplingPolicy{MinDurationNs: 2000, CollapseRedundant: true}},
			{}, // clear: deliver everything, keep accounting
			{Default: &capi.SamplingPolicy{Stride: 3}},
		}
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			if err := inst.SetSampling(tables[j%len(tables)]); err != nil {
				t.Errorf("SetSampling: %v", err)
				return
			}
		}
	}()
	go func() { // live re-selection (Reconfigure drains before synthetic exits)
		defer wg.Done()
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			sel := narrow
			if j%2 == 1 {
				sel = wide
			}
			if _, err := inst.Reconfigure(sel); err != nil {
				t.Errorf("reconfigure: %v", err)
				return
			}
		}
	}()
	go func() { // live backend-set swaps (SwapBackend drains first)
		defer wg.Done()
		sets := [][]string{{"race-count"}, {"race-count", "extrae"}}
		for j := 0; ; j++ {
			select {
			case <-done:
				return
			default:
			}
			if _, err := inst.SetBackends(sets[j%2]); err != nil {
				t.Errorf("set backends: %v", err)
				return
			}
		}
	}()
	go func() { // scrapes, including the new pipeline observability
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := inst.Status()
			if !st.Async {
				t.Error("status lost the async flag")
				return
			}
			inst.PipelineDepth()
			inst.DroppedAsync()
			inst.Sampling()
			inst.Reports()
		}
	}()

	for phase := 0; phase < 3; phase++ {
		if _, err := inst.Run(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	st := inst.Status()
	if st.Runs != 3 || st.DroppedUnpatched != 0 {
		t.Fatalf("final status = %+v", st)
	}
	snap := inst.Sampling()
	c := snap.Counters
	if c.Enters == 0 || c.SampledEvents == 0 {
		t.Fatalf("stress run never sampled: %+v", c)
	}
	// (a) The sampler's conservation identity survives asynchrony exactly.
	if got := c.Delivered + c.SampledEvents + c.SuppressedPairs + c.CollapsedCalls; got != c.Enters {
		t.Fatalf("conservation broken: delivered %d + sampled %d + suppressed %d + collapsed %d = %d != enters %d",
			c.Delivered, c.SampledEvents, c.SuppressedPairs, c.CollapsedCalls, got, c.Enters)
	}
	// (b) Zero unaccounted events across the pipeline: of the enters the
	// sampler admitted, exactly the back-pressure-dropped pairs are missing
	// from the independent backend count — no more, no fewer.
	dropped := inst.DroppedAsync()
	if got, want := raceCounter.enters.Load(), c.Delivered-dropped; got != want {
		t.Fatalf("backend saw %d enters; sampler delivered %d, ring dropped %d pairs — %d unaccounted",
			got, c.Delivered, dropped, want-got)
	}
	if st.DroppedAsync != dropped {
		t.Fatalf("status reports %d dropped pairs, accessor %d", st.DroppedAsync, dropped)
	}
	if raceCounter.exits.Load() == 0 {
		t.Fatal("no exits delivered at all")
	}
}
