package capi_test

import (
	"testing"

	capi "capi"
)

// TestListing3CoarseRegions guards the paper's §V-D motivating scenario:
// in the nested OpenFOAM solve chain (Listing 3), the coarse selector must
// drop the single-caller wrappers between fvMatrix::solve and the Amul
// kernel while retaining the hotspots, and the resulting TALP measurement
// must report the kernel as its own region.
func TestListing3CoarseRegions(t *testing.T) {
	s, err := capi.NewSession(capi.OpenFOAM(capi.OpenFOAMOptions{Scale: 0.02, Timesteps: 2, PCGIters: 4}),
		capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := s.Select(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
sel = subtract(join(%mpi_comm, callPathTo(%kernels)), %excluded)
coarse(%sel, %kernels)
`)
	if err != nil {
		t.Fatal(err)
	}

	// The thin wrappers of Listing 3 must be gone (single-caller chains or
	// inlined vague-linkage bodies)...
	for _, wrapper := range []string{
		"Foam::fvMesh::solve",
		"Foam::fvMatrix::solveSegregatedOrCoupled",
		"Foam::fvMatrix::solveSegregated",
	} {
		if sel.IC.Contains(wrapper) {
			t.Errorf("coarse IC retains wrapper %s", wrapper)
		}
	}
	// ...while the kernel and the outer solve entry stay.
	for _, keep := range []string{
		"Foam::lduMatrix::Amul",
		"Foam::fvMatrix::solve",
	} {
		if !sel.IC.Contains(keep) {
			t.Errorf("coarse IC misses %s", keep)
		}
	}

	res, err := s.Run(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	amul := res.TALP.Region("Foam::lduMatrix::Amul")
	if amul == nil {
		t.Fatal("Amul not measured as a TALP region")
	}
	if amul.Visits == 0 {
		t.Fatal("Amul region never entered")
	}
	// The parallel-efficiency metrics are well-formed probabilities.
	for _, r := range res.TALP.Regions {
		if pe := r.Metrics.ParallelEfficiency; pe < 0 || pe > 1.000001 {
			t.Errorf("region %s: parallel efficiency %f out of range", r.Name, pe)
		}
	}
	// None of the dropped wrappers shows up in the report.
	if res.TALP.Region("Foam::fvMatrix::solveSegregated") != nil {
		t.Error("dropped wrapper measured anyway")
	}
}
