package capi

// The instance-level half of the panic barrier (the event-path half is
// internal/dyncapi/guard.go): every registry-built MeasurementBackend is
// wrapped in a guardedBackend so its phase lifecycle (StartPhase, Report)
// is recovered too, and a tripped circuit breaker auto-detaches the
// backend from the live chain through the SwapBackend machinery — the
// instrumented process never crashes because a measurement tool did.

import (
	"capi/internal/dyncapi"
)

// DefaultPanicLimit is the per-backend circuit-breaker threshold when
// RunOptions.PanicLimit is 0: after this many recovered panics in one
// backend's delivery paths the backend is auto-detached.
const DefaultPanicLimit = dyncapi.DefaultPanicLimit

// BreakerStatus is one backend's panic-barrier state, surfaced in
// InstanceStatus, RunResult and the /v1/report envelope.
type BreakerStatus = dyncapi.GuardStats

// BreakerEvent describes one circuit-breaker trip, delivered to the
// function registered with Instance.SetBreakerNotify (the control plane's
// SSE feed).
type BreakerEvent struct {
	// Backend is the tripped backend's name.
	Backend string `json:"backend"`
	// Panics is the recovered-panic count at trip time; LastPanic renders
	// the most recent panic value.
	Panics    int64  `json:"panics"`
	LastPanic string `json:"lastPanic,omitempty"`
	// Detached reports whether the backend was removed from the live event
	// chain. On adaptive instances the chain is owned by the controller,
	// so the backend stays in place with its (open) breaker
	// short-circuiting delivery; it is still removed from the phase
	// lifecycle and the report set.
	Detached bool `json:"detached"`
	// SyntheticExits counts the dangling enters closed when the detach
	// swapped the backend out of the chain.
	SyntheticExits int `json:"syntheticExits,omitempty"`
}

// guardedBackend wraps a registry-built backend: its event sink runs
// behind a dyncapi.Guard, and the phase-boundary calls (StartPhase,
// Report) recover panics into the same breaker. A StartPhase or Report
// panic degrades (the phase runs without the backend's phase hook / the
// report entry is nil) instead of failing the run — the reliability
// promise is that instrument errors never affect the host program.
type guardedBackend struct {
	inner MeasurementBackend
	g     *dyncapi.Guard
}

func newGuardedBackend(mb MeasurementBackend, gopts dyncapi.GuardOptions) *guardedBackend {
	return &guardedBackend{inner: mb, g: dyncapi.NewGuard(mb.Events(), gopts)}
}

func (b *guardedBackend) Name() string               { return b.inner.Name() }
func (b *guardedBackend) Events() EventBackend       { return b.g.Sink() }
func (b *guardedBackend) Unwrap() MeasurementBackend { return b.inner }

func (b *guardedBackend) StartPhase(w *World) (err error) {
	if b.g.Tripped() {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			b.g.RecordPanic(r)
			err = nil
		}
	}()
	return b.inner.StartPhase(w)
}

func (b *guardedBackend) Report() (rep Report) {
	if b.g.Tripped() {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			b.g.RecordPanic(r)
			rep = nil
		}
	}()
	return b.inner.Report()
}

// unwrapBackend looks through the panic-barrier wrapper to the
// registry-built backend, for the typed built-in report paths
// (TraceReport, TALPReport, Profile and the Run envelope).
func unwrapBackend(mb MeasurementBackend) MeasurementBackend {
	if gb, ok := mb.(*guardedBackend); ok {
		return gb.inner
	}
	return mb
}

// guardsOf collects the guards of a freshly built backend set.
func guardsOf(backends []MeasurementBackend) []*dyncapi.Guard {
	var out []*dyncapi.Guard
	for _, mb := range backends {
		if gb, ok := mb.(*guardedBackend); ok {
			out = append(out, gb.g)
		}
	}
	return out
}

// onBreakerTrip is the Guard's OnTrip hook; it runs on its own goroutine.
func (i *Instance) onBreakerTrip(name string) {
	ev := i.breakerDetach(name)
	i.mu.Lock()
	fn := i.breakerNotify
	i.mu.Unlock()
	if fn != nil {
		fn(ev)
	}
}

// SetBreakerNotify registers fn to be called (on the breaker's goroutine)
// whenever a backend's circuit breaker trips. The control plane uses it to
// publish SSE "breaker" events. Pass nil to unregister.
func (i *Instance) SetBreakerNotify(fn func(BreakerEvent)) {
	i.mu.Lock()
	i.breakerNotify = fn
	i.mu.Unlock()
}

// breakerDetach removes the tripped backend from the live instance:
// non-adaptive chains are swapped (via the SwapBackend diff machinery — it
// closes only the departing backend's dangling state) to the remaining
// guarded sinks plus the tripped guard's tombstone, which keeps the drop
// accounting exact for the rest of the run. Adaptive chains are owned by
// the controller, so only the phase/report lifecycle is detached — the
// open breaker already short-circuits (and counts) event delivery.
func (i *Instance) breakerDetach(name string) BreakerEvent {
	i.mu.Lock()
	defer i.mu.Unlock()

	ev := BreakerEvent{Backend: name}
	var tripped *guardedBackend
	remaining := make([]MeasurementBackend, 0, len(i.backends))
	sinks := make([]dyncapi.Backend, 0, len(i.backends))
	for _, mb := range i.backends {
		gb, ok := mb.(*guardedBackend)
		if tripped == nil && ok && gb.Name() == name && gb.g.Tripped() {
			tripped = gb
			continue
		}
		remaining = append(remaining, mb)
		sinks = append(sinks, mb.Events())
	}
	if tripped == nil {
		// Already detached, or the backend set was swapped away underneath
		// the trip goroutine. Nothing to do.
		return ev
	}
	st := tripped.g.Stats()
	ev.Panics, ev.LastPanic = st.Panics, st.LastPanic

	if i.ctrl == nil && i.rt != nil {
		sinks = append(sinks, tripped.g.Tombstone())
		var sink dyncapi.Backend
		if len(sinks) == 1 {
			sink = sinks[0]
		} else {
			sink = dyncapi.NewMux(sinks...)
		}
		rep, err := i.rt.SwapBackend(sink)
		if err != nil {
			return ev
		}
		i.pendingNs += rep.VirtualNs
		ev.Detached = true
		ev.SyntheticExits = rep.SyntheticExits
	}
	i.backends = remaining
	i.detached = append(i.detached, name)
	return ev
}

// breakerSnapshotLocked summarizes the instance's guards: the per-backend
// stats of every guard that ever saw a panic, the detached names, and the
// total DroppedPanicked. Callers hold i.mu.
func (i *Instance) breakerSnapshotLocked() (stats []BreakerStatus, detached []string, dropped int64) {
	for _, g := range i.guards {
		st := g.Stats()
		dropped += st.DroppedPanicked
		if st.Panics > 0 || st.Tripped {
			stats = append(stats, st)
		}
	}
	if len(i.detached) > 0 {
		detached = append(detached, i.detached...)
	}
	return stats, detached, dropped
}
