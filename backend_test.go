package capi_test

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	capi "capi"
)

// countingBackend is the README cookbook's custom backend: it counts the
// events it observes and reports them through the unified envelope.
type countingBackend struct {
	ev countingEvents
}

type countingEvents struct {
	enters, exits *atomic.Int64
}

func (e countingEvents) Name() string                                     { return "test-counter" }
func (e countingEvents) OnEnter(tc capi.ThreadCtx, fn *capi.ResolvedFunc) { e.enters.Add(1) }
func (e countingEvents) OnExit(tc capi.ThreadCtx, fn *capi.ResolvedFunc)  { e.exits.Add(1) }
func (e countingEvents) InitCost(int) int64                               { return 0 }

func (b *countingBackend) Name() string                 { return "test-counter" }
func (b *countingBackend) Events() capi.EventBackend    { return b.ev }
func (b *countingBackend) StartPhase(*capi.World) error { return nil }
func (b *countingBackend) Report() capi.Report {
	return capi.JSONReport{ReportKind: "counter", Value: map[string]int64{
		"enters": b.ev.enters.Load(),
		"exits":  b.ev.exits.Load(),
	}}
}

func init() {
	capi.RegisterBackend("test-counter", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return &countingBackend{ev: countingEvents{enters: new(atomic.Int64), exits: new(atomic.Int64)}}, nil
	})
}

// TestCustomRegisteredBackendEndToEnd walks the cookbook: register →
// select by name (alongside a built-in) → run → read the envelope.
func TestCustomRegisteredBackendEndToEnd(t *testing.T) {
	found := false
	for _, name := range capi.RegisteredBackends() {
		if name == "test-counter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test-counter not in registry: %v", capi.RegisteredBackends())
	}

	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(sel, capi.RunOptions{Backends: []string{"talp", "test-counter"}, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Backends) != 2 || res.Backends[1] != "test-counter" {
		t.Fatalf("run backends = %v", res.Backends)
	}
	// Both the built-in and the custom backend fed from one event stream.
	if res.TALP == nil || res.Reports["talp"] == nil {
		t.Fatal("talp report missing from the fan-out run")
	}
	rep := res.Reports["test-counter"]
	if rep == nil || rep.Kind() != "counter" {
		t.Fatalf("custom report = %v", rep)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int64
	if err := json.Unmarshal(raw, &counts); err != nil {
		t.Fatal(err)
	}
	if counts["enters"] == 0 || counts["enters"] != counts["exits"] {
		t.Fatalf("custom backend counted %v, want balanced nonzero enters/exits", counts)
	}
	if res.Events == 0 {
		t.Fatal("no events dispatched")
	}
}

// TestBackendValidation: unknown names fail fast with the registered list,
// duplicates are rejected, and the single-Backend shim still resolves.
func TestBackendValidation(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Start(sel, capi.RunOptions{Backends: []string{"bogus"}, Ranks: 2})
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("unknown backend error = %v", err)
	}
	_, err = s.Start(sel, capi.RunOptions{Backends: []string{"talp", "talp"}, Ranks: 2})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate backend error = %v", err)
	}
	_, err = s.Start(sel, capi.RunOptions{Backend: "bogus", Ranks: 2})
	if err == nil {
		t.Fatal("unknown shim backend must fail")
	}
	if _, err := capi.ParseBackends("talp, extrae"); err != nil {
		t.Fatalf("ParseBackends with spaces: %v", err)
	}
	if _, err := capi.ParseBackends("talp,nope"); err == nil {
		t.Fatal("ParseBackends must reject unknown names")
	}
	if _, err := capi.ParseBackends(""); err == nil {
		t.Fatal("ParseBackends must reject an empty list")
	}
}

// TestInstanceSetBackendsLive: the in-process backend swap — TALP out,
// extrae in — keeps the selection patched and redirects the next phase's
// events; the deprecated typed accessors follow the attached set.
func TestInstanceSetBackendsLive(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := s.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	active := inst.ActiveFunctions()
	swap, err := inst.SetBackends([]string{"extrae"})
	if err != nil {
		t.Fatal(err)
	}
	if swap.From != "talp" || swap.To != "extrae" || swap.VirtualNs <= 0 {
		t.Fatalf("swap report = %+v", swap)
	}
	if inst.ActiveFunctions() != active {
		t.Fatalf("swap changed the selection: %d -> %d", active, inst.ActiveFunctions())
	}
	if inst.TALPReport() != nil {
		t.Fatal("detached talp backend still visible")
	}
	res, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Reports["extrae"] == nil {
		t.Fatal("no trace from the swapped-in backend")
	}
	if res.TALP != nil {
		t.Fatal("detached backend produced a report")
	}
	// The swap's virtual cost was billed to the phase that followed it.
	if res.InitSeconds <= 0 {
		t.Fatalf("swap cost not billed: init = %f", res.InitSeconds)
	}
}
