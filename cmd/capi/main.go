// Command capi runs a selection specification against a workload (or a
// previously exported call graph) and emits the resulting instrumentation
// configuration — the Selection stage of Fig. 1/3.
//
// Usage:
//
//	capi -app lulesh -spec mpi.spec -o lulesh.ic.json
//	capi -app openfoam -builtin "kernels coarse" -format scorep -o of.filter
//	capi -cg lulesh.cg.json -builtin mpi          # no inlining compensation
//
// When -app is given the workload is recompiled in-memory so the inlining
// compensation post-pass (§V-E) can consult the symbol tables; with -cg the
// pass is skipped and a note is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"capi/internal/callgraph"
	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/experiments"
	"capi/internal/metacg"
	"capi/internal/prog"
	"capi/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "workload: quickstart, lulesh or openfoam")
		cgFile   = flag.String("cg", "", "call-graph JSON file (alternative to -app)")
		scale    = flag.Float64("scale", 0.1, "openfoam call-graph scale")
		specFile = flag.String("spec", "", "specification file")
		builtin  = flag.String("builtin", "", `built-in spec: "mpi", "mpi coarse", "kernels", "kernels coarse"`)
		format   = flag.String("format", "json", "IC output format: json or scorep")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	src, err := specSource(*specFile, *builtin)
	if err != nil {
		fatal(err)
	}

	var (
		g       *callgraph.Graph
		symbols core.SymbolOracle
		appName string
	)
	switch {
	case *app != "":
		p, optLevel, err := buildApp(*app, *scale)
		if err != nil {
			fatal(err)
		}
		g = metacg.BuildWholeProgram(p, metacg.Options{})
		b, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: optLevel})
		if err != nil {
			fatal(err)
		}
		symbols = b
		appName = p.Name
	case *cgFile != "":
		f, err := os.Open(*cgFile)
		if err != nil {
			fatal(err)
		}
		g, err = callgraph.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		appName = g.Name
		fmt.Fprintln(os.Stderr, "capi: note: -cg given, inlining compensation skipped (no symbol tables)")
	default:
		fatal(fmt.Errorf("one of -app or -cg is required"))
	}

	eng := core.NewEngine(g)
	res, err := eng.RunSource(src, core.Options{Symbols: symbols})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "capi: %d pre, %d selected, %d added (%.2fs)\n",
		res.Pre.Count(), res.Selected.Count(), len(res.AddedCompensation),
		res.SelectionTime.Seconds())

	cfg := res.IC(appName, *specFile+*builtin)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "json":
		err = cfg.WriteJSON(w)
	case "scorep":
		err = cfg.WriteScorePFilter(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

func specSource(specFile, builtin string) (string, error) {
	switch {
	case specFile != "" && builtin != "":
		return "", fmt.Errorf("-spec and -builtin are mutually exclusive")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	case builtin != "":
		return experiments.SpecSource(builtin)
	default:
		return "", fmt.Errorf("one of -spec or -builtin is required")
	}
}

func buildApp(app string, scale float64) (*prog.Program, int, error) {
	switch app {
	case "quickstart":
		return workload.Quickstart(), 2, nil
	case "lulesh":
		return workload.Lulesh(workload.LuleshOptions{}), workload.LuleshOptLevel, nil
	case "openfoam":
		return workload.OpenFOAM(workload.OpenFOAMOptions{Scale: scale}), workload.OpenFOAMOptLevel, nil
	default:
		return nil, 0, fmt.Errorf("unknown app %q", app)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capi:", err)
	os.Exit(1)
}
