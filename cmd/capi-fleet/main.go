// Command capi-fleet is the federated control plane: one coordinator that
// aggregates many capi-serve instances (internal/fleet). Members join via
// the static -members list or by self-registering (capi-serve -fleet);
// control mutations POSTed to the coordinator fan out to every member
// with partial-failure accounting, and the read side is merged — the
// member table with rollup counters, the per-backend report envelope with
// fleet-wide POP metrics recomputed over every member's ranks, a unified
// /metrics exposition with member labels, and one SSE feed multiplexing
// every member's event stream.
//
// Usage:
//
//	capi-fleet                                        # members self-register
//	capi-fleet -members http://127.0.0.1:7070,http://127.0.0.1:7071
//	capi-fleet -addr 127.0.0.1:8070 -ttl 30s
//
// Then, from anywhere:
//
//	curl localhost:8070/v1/fleet/status
//	curl -X POST -H 'Content-Type: application/json' \
//	     -d '{"builtin":"mpi coarse"}' localhost:8070/v1/select
//	curl localhost:8070/v1/fleet/report
//	curl -N localhost:8070/v1/fleet/events
//	curl localhost:8070/metrics
//
// The coordinator shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"capi/internal/fleet"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8070", "listen address")
		members = flag.String("members", "", "comma-separated static member base URLs (e.g. http://127.0.0.1:7070,http://127.0.0.1:7071)")
		ttl     = flag.Duration("ttl", fleet.DefaultTTL, "heartbeat TTL before a registered member is evicted")
		probe   = flag.Duration("probe", fleet.DefaultProbeInterval, "member /v1/healthz probe interval (0 disables)")
		timeout = flag.Duration("timeout", fleet.DefaultTimeout, "per-member control request timeout")
		retries = flag.Int("retries", fleet.DefaultRetries, "per-member retries for retryable fan-out failures")
		backoff = flag.Duration("backoff", fleet.DefaultBackoff, "first fan-out retry delay (doubles per attempt)")
	)
	flag.Parse()

	opts := fleet.Options{
		TTL:     *ttl,
		Timeout: *timeout,
		Retries: *retries,
		Backoff: *backoff,
	}
	if *probe > 0 {
		opts.ProbeInterval = *probe
	} else {
		opts.ProbeInterval = -1
	}
	if *members != "" {
		for _, m := range strings.Split(*members, ",") {
			if m = strings.TrimSpace(m); m != "" {
				opts.Members = append(opts.Members, m)
			}
		}
	}

	coord, err := fleet.New(opts)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           coord,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "capi-fleet: coordinator on http://%s (%d static members, TTL %s)\n",
		*addr, len(opts.Members), *ttl)
	fmt.Fprintf(os.Stderr, "capi-fleet: POST /v1/fleet/register to join; GET /v1/fleet/status, GET /v1/fleet/report, GET /v1/fleet/events, POST /v1/select, GET /metrics\n")

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "capi-fleet: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Close first: it disconnects SSE subscribers and stops the member
		// tailers, so Shutdown is not held open by streaming requests.
		coord.Close()
		if err := srv.Shutdown(shutCtx); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capi-fleet:", err)
	os.Exit(1)
}
