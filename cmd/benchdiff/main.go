// Command benchdiff is the benchmark-regression gate: it compares a fresh
// `capi-bench -json` document against the checked-in baseline and exits
// nonzero when any watched statistic regressed beyond the tolerance.
//
// Usage:
//
//	capi-bench -json > bench.json
//	benchdiff -baseline BENCH_baseline.json -current bench.json
//	capi-bench -json | benchdiff -baseline BENCH_baseline.json -current -
//
// Watched statistics: per-backend dispatch ns/op (none/talp/scorep/extrae)
// and the batch-patch ns/func, gated by -tol (default 1.5x; raise it for
// noisier environments), plus the deterministic mprotect call/window counts,
// which are always gated exactly — a growth there is a coalescing
// regression, not machine noise, so no tolerance excuses it.
package main

import (
	"flag"
	"fmt"
	"os"

	"capi/internal/benchcmp"
)

func main() {
	var (
		baseline = flag.String("baseline", "BENCH_baseline.json", "baseline capi-bench -json document")
		current  = flag.String("current", "-", `current document ("-" = stdin)`)
		tol      = flag.Float64("tol", 1.5, "tolerated ratio current/baseline for wall-clock statistics (deterministic counters are gated exactly)")
		quiet    = flag.Bool("quiet", false, "print regressions only")
	)
	flag.Parse()
	if *tol <= 0 {
		fatal(fmt.Errorf("tolerance %v must be positive", *tol))
	}

	base, err := benchcmp.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := benchcmp.ReadFile(*current)
	if err != nil {
		fatal(err)
	}

	results := benchcmp.Compare(base, cur, *tol)
	regs := benchcmp.Regressions(results)
	for _, r := range results {
		if *quiet && !r.Regressed {
			continue
		}
		fmt.Println(r)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d of %d statistics regressed beyond %.2fx\n",
			len(regs), len(results), *tol)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d statistics within %.2fx of baseline\n", len(results), *tol)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
