// Command scorep-score reproduces the scorep-score workflow the paper
// positions CaPI against (§II-B): run a fully instrumented measurement,
// rank regions by their estimated measurement-overhead share, and emit an
// initial exclusion filter. Unlike CaPI's call-graph-aware selection, this
// is purely metric-driven — "very effective in eliminating overhead but
// [taking] no account of the wider application context".
//
// Usage:
//
//	scorep-score -app lulesh -ranks 4 -o initial.filter
package main

import (
	"flag"
	"fmt"
	"os"

	capi "capi"
	"capi/internal/scorep"
)

func main() {
	var (
		app      = flag.String("app", "quickstart", "workload: quickstart, lulesh or openfoam")
		scale    = flag.Float64("scale", 0.05, "openfoam call-graph scale")
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		minVisit = flag.Int64("min-visits", 0, "only exclude regions with at least this many visits (0 = default)")
		out      = flag.String("o", "", "filter output file (default stdout)")
	)
	flag.Parse()

	session, err := capi.NewAppSession(*app, *scale)
	if err != nil {
		fatal(err)
	}
	// Full instrumentation profile — the expensive survey run.
	res, err := session.Run(nil, capi.RunOptions{
		Backend:  capi.BackendScoreP,
		Ranks:    *ranks,
		PatchAll: true,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "scorep-score: survey run %.2fs (virtual), %d events, %d regions\n",
		res.TotalSeconds, res.Events, len(res.Profile.Regions))

	opts := scorep.DefaultScoreOptions()
	if *minVisit > 0 {
		opts.MinVisits = *minVisit
	}
	sug, filter := scorep.SuggestFilter(res.Profile, opts)
	fmt.Fprintf(os.Stderr, "scorep-score: excluding %d regions removes ~%d event pairs\n",
		len(sug.Exclude), sug.EventsRemoved)
	for i, name := range sug.Exclude {
		if i >= 10 {
			fmt.Fprintf(os.Stderr, "  ... and %d more\n", len(sug.Exclude)-10)
			break
		}
		fmt.Fprintf(os.Stderr, "  EXCLUDE %s\n", name)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := filter.WriteTo(w); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scorep-score:", err)
	os.Exit(1)
}
