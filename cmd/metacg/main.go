// Command metacg builds a whole-program call graph for one of the bundled
// workloads and writes it as MetaCG-style JSON (Fig. 2, steps 3–4 of the
// paper).
//
// Usage:
//
//	metacg -app lulesh -o lulesh.cg.json
//	metacg -app openfoam -scale 0.1 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"capi/internal/metacg"
	"capi/internal/prog"
	"capi/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "quickstart", "workload: quickstart, lulesh or openfoam")
		scale   = flag.Float64("scale", 0.1, "openfoam call-graph scale (1.0 = paper size)")
		cgNodes = flag.Int("cgnodes", 0, "lulesh call-graph size override (default 3,360)")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print node/edge statistics instead of JSON")
	)
	flag.Parse()

	p, err := buildApp(*app, *scale, *cgNodes)
	if err != nil {
		fatal(err)
	}
	g := metacg.BuildWholeProgram(p, metacg.Options{})

	if *stats {
		fmt.Printf("program: %s\nnodes:   %d\nedges:   %d\nmain:    %s\n",
			p.Name, g.Len(), g.NumEdges(), g.Main)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.WriteJSON(w); err != nil {
		fatal(err)
	}
}

func buildApp(app string, scale float64, cgNodes int) (*prog.Program, error) {
	switch app {
	case "quickstart":
		return workload.Quickstart(), nil
	case "lulesh":
		return workload.Lulesh(workload.LuleshOptions{CGNodes: cgNodes}), nil
	case "openfoam":
		return workload.OpenFOAM(workload.OpenFOAMOptions{Scale: scale}), nil
	default:
		return nil, fmt.Errorf("unknown app %q (want quickstart, lulesh or openfoam)", app)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metacg:", err)
	os.Exit(1)
}
