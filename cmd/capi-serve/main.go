// Command capi-serve exposes a live, runtime-adaptable instrumentation
// instance over HTTP: it prepares a workload session, patches the initial
// selection in, and then serves the control plane (internal/ctl) so the
// selection can be changed, phases executed and reports scraped remotely —
// the Fig. 1 loop as a long-lived service.
//
// Usage:
//
//	capi-serve -app lulesh -builtin mpi -backend talp
//	capi-serve -app openfoam -scale 0.1 -builtin "mpi coarse" -backend scorep
//	capi-serve -app quickstart -backend extrae -addr 127.0.0.1:7070
//	capi-serve -app lulesh -builtin mpi -backend talp,extrae   # fan-out
//	capi-serve -app lulesh -full -adapt -budget 0.01
//	capi-serve -app lulesh -builtin mpi -fleet http://127.0.0.1:8070  # join a fleet
//	capi-serve -app webservice -full -http-workers 4 -slo-p99-ms 8    # serve traffic
//
// With -app webservice and -http-workers, the synthetic web service is
// mounted under /app/ (e.g. GET /app/api/feed): every request executes
// its handler's instrumented call tree, and -slo-p99-ms switches the
// adaptation controller to tail-latency mode — it demotes and deselects
// per-endpoint instrumentation until each endpoint's p99 meets the
// target, keeping as much coverage as the SLO affords.
//
// -backend takes a comma-separated list of registry names (fail-fast on
// unknown ones); with several, one run feeds every backend and GET
// /v1/report returns the envelope keyed by backend name.
//
// Then, from anywhere:
//
//	curl localhost:7070/v1/status
//	curl -X POST -H 'Content-Type: application/json' \
//	     -d '{"builtin":"mpi coarse"}' localhost:7070/v1/select
//	curl -X POST -d '{"wait":false}' localhost:7070/v1/run
//	curl localhost:7070/metrics
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	capi "capi"
	"capi/internal/ctl"
	"capi/internal/experiments"
	"capi/internal/fleet"
	"capi/internal/vtime"
	"capi/middleware"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "listen address")
		app      = flag.String("app", "quickstart", "workload: quickstart, lulesh, openfoam or webservice")
		scale    = flag.Float64("scale", 0.1, "openfoam call-graph scale")
		builtin  = flag.String("builtin", "mpi", `initial built-in spec name (e.g. "mpi", "kernels coarse")`)
		spec     = flag.String("spec", "", "initial specification file (overrides -builtin)")
		full     = flag.Bool("full", false, "patch every sled initially (xray full)")
		backend  = flag.String("backend", "talp", "comma-separated measurement backends (see capi.RegisteredBackends; e.g. talp,extrae)")
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		adapt    = flag.Bool("adapt", false, "enable the live overhead-budget controller")
		budget   = flag.Float64("budget", 0, "overhead budget per epoch as a fraction (implies -adapt)")
		epoch    = flag.Float64("epoch", 0, "adaptation epoch length in virtual seconds (implies -adapt)")
		sample   = flag.Int("sample", 0, "initial 1-in-N stride sampling (0 = unsampled; change live via POST /v1/sampling)")
		suppress = flag.Int64("suppress-ns", 0, "initial min-duration suppression threshold in virtual ns")
		async    = flag.Bool("async", false, "asynchronous event pipeline: backends consume off the dispatch hot path (incompatible with -adapt)")
		asyncBuf = flag.Int("async-buf", 0, "async: per-rank ring capacity in events (0 = default 65536)")
		panicLim = flag.Int("panic-limit", 0, "per-backend circuit breaker: recovered panics before auto-detach (0 = default 3, negative = never detach)")
		httpWork = flag.Int("http-workers", 0, "serve the synthetic web service under /app/ with this many request-context workers (requires -app webservice)")
		sloP99   = flag.Float64("slo-p99-ms", 0, "tail-latency SLO: adapt each endpoint's instrumentation until its p99 is at or under this many ms (implies -adapt; requires -http-workers)")
		fleetURL = flag.String("fleet", "", "capi-fleet coordinator base URL: self-register and heartbeat (e.g. http://127.0.0.1:8070)")
		fleetNm  = flag.String("fleet-name", "", "member name to register under (default: the advertised host:port)")
		advert   = flag.String("advertise", "", "base URL the coordinator should reach this member at (default http://<-addr>)")
	)
	flag.Parse()

	// Fail fast on a typo'd backend name, before any session is built.
	backends, err := capi.ParseBackends(*backend)
	if err != nil {
		fatal(err)
	}

	session, err := capi.NewAppSession(*app, *scale)
	if err != nil {
		fatal(err)
	}

	var sel *capi.Selection
	if !*full {
		src, err := specSource(*spec, *builtin)
		if err != nil {
			fatal(err)
		}
		sel, err = session.Select(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "capi-serve: initial selection: %d functions (%d pre, %d added)\n",
			sel.IC.Len(), sel.Pre, sel.Added)
	}

	if *sloP99 > 0 && *httpWork <= 0 {
		fatal(errors.New("-slo-p99-ms needs request traffic to measure: set -http-workers (and -app webservice)"))
	}
	if *httpWork > 0 && *app != "webservice" {
		fatal(fmt.Errorf("-http-workers serves the synthetic web service; use -app webservice (got -app %s)", *app))
	}

	runOpts := capi.RunOptions{
		Backends:    backends,
		Ranks:       *ranks,
		PatchAll:    *full,
		Async:       *async,
		AsyncBuf:    *asyncBuf,
		PanicLimit:  *panicLim,
		HTTPWorkers: *httpWork,
	}
	if *adapt || *budget > 0 || *epoch > 0 || *sloP99 > 0 {
		runOpts.Adapt = &capi.AdaptOptions{
			Budget:         *budget,
			Epoch:          vtime.Seconds(*epoch),
			SLOTargetP99Ns: int64(*sloP99 * float64(vtime.Millisecond)),
		}
	}
	if *sample > 0 || *suppress > 0 {
		runOpts.Sampling = &capi.SamplingOptions{Default: &capi.SamplingPolicy{
			Stride:        *sample,
			MinDurationNs: *suppress,
		}}
	}
	inst, err := session.Start(sel, runOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "capi-serve: %s up: %d functions patched, T_init %.2fs (virtual)\n",
		*app, inst.Status().Patched, inst.InitSeconds())

	cp := ctl.New(session, inst, *app)
	var handler http.Handler = cp
	if *httpWork > 0 {
		svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: *httpWork})
		if err != nil {
			fatal(err)
		}
		root := http.NewServeMux()
		root.Handle("/app/", http.StripPrefix("/app", svc))
		root.Handle("/", cp)
		handler = root
		fmt.Fprintf(os.Stderr, "capi-serve: web service under /app/ (%d workers", *httpWork)
		if *sloP99 > 0 {
			fmt.Fprintf(os.Stderr, ", SLO p99 <= %gms", *sloP99)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Open SSE streams would otherwise hold Shutdown until its timeout.
	srv.RegisterOnShutdown(cp.Shutdown)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "capi-serve: control plane on http://%s (GET /v1/status, POST /v1/select, POST /v1/run, GET /v1/report, POST /v1/sampling, GET /metrics, GET /v1/events)\n", *addr)

	if *fleetURL != "" {
		self := *advert
		if self == "" {
			self = "http://" + *addr
		}
		go fleet.Heartbeat(ctx, strings.TrimRight(*fleetURL, "/"),
			fleet.RegisterRequest{URL: self, Name: *fleetNm, App: *app},
			fleet.DefaultHeartbeatInterval,
			func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "capi-serve: "+format+"\n", args...)
			})
	}

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "capi-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			fatal(err)
		}
		// Drain and stop the async consumer pool (a no-op in inline mode);
		// the HTTP server is down, so no phase can start anymore.
		inst.Close()
		st := inst.Status()
		fmt.Fprintf(os.Stderr, "capi-serve: served %d phases, %d re-selections, %d events\n",
			st.Runs, st.Reconfigs, st.Events)
	}
}

func specSource(specFile, builtin string) (string, error) {
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return experiments.SpecSource(builtin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capi-serve:", err)
	os.Exit(1)
}
