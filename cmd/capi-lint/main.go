// Command capi-lint runs the capi static-analysis suite (internal/lint)
// over the module: hotpath, atomicfield, guardedby, and noexit. It is a
// whole-module checker — unlike a `go vet -vettool` unit, it loads every
// target package in one process so the hotpath traversal and the
// atomicfield cross-reference can follow calls and field accesses across
// package boundaries.
//
// Usage:
//
//	go run ./cmd/capi-lint [-checks hotpath,guardedby] [-dir .] [patterns...]
//
// Patterns default to ./... relative to -dir. Output is vet-shaped
// (file:line:col: [analyzer] message); the exit status is 1 when any
// diagnostic fires, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"capi/internal/lint"
)

func main() {
	checks := flag.String("checks", "all", "comma-separated analyzers to run (hotpath,atomicfield,guardedby,noexit) or all")
	dir := flag.String("dir", ".", "module directory to analyze from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: capi-lint [flags] [package patterns]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := lint.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capi-lint:", err)
		os.Exit(2)
	}
	fset, pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capi-lint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capi-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "capi-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
