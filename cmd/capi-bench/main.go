// Command capi-bench regenerates the paper's evaluation artifacts: Table I
// (selection results), Table II (instrumentation overhead), the §VI-B
// in-text facts and the §VII-A turnaround comparison.
//
// Usage:
//
//	capi-bench -table 1                 # selection results
//	capi-bench -table 2 -ranks 4        # instrumentation overhead
//	capi-bench -facts                   # §VI-B facts (OpenFOAM)
//	capi-bench -all -scale 0.1          # everything, at call-graph scale 0.1
//	capi-bench -json                    # machine-readable micro-benchmarks
//	capi-bench -json -backend talp,extrae  # one multi-backend fan-out entry
//
// -json emits a BENCH_*.json-style document: wall-clock dispatch ns/op per
// measurement backend — the four built-ins, the mux fan-out variants
// (mux-of-one, talp+extrae), the sampled-dispatch entry
// (sampled:extrae@64, gated at ≤1.3x of the none baseline) and the
// async-pipeline entry (async:extrae, gated at ≤0.6x of the same run's
// inline extrae) — and the coalesced batch-patching statistics, so
// performance trajectories can accumulate across commits. -backend narrows
// the dispatch suite to one registry-resolved backend set (comma-separated
// = fanned out behind the mux), always alongside the "none" baseline the
// relative gates need; unknown names fail fast with the registered list.
// -sample N adds a 1-in-N stride-sampled entry for the chosen set,
// -suppress-ns M a min-duration-suppressed one, -async (optionally with
// -async-buf N) an async-pipeline one.
//
// Scale 1.0 reproduces the paper's 410,666-node OpenFOAM call graph; smaller
// scales keep turnaround short. Absolute virtual seconds are not comparable
// to the paper's wall-clock numbers — the shape (ratios, orderings) is.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strings"
	"testing"

	capi "capi"
	"capi/internal/benchcmp"
	"capi/internal/dyncapi"
	"capi/internal/experiments"
	"capi/internal/ic"
	"capi/internal/report"
	"capi/internal/talp"
	"capi/internal/xray"
	"capi/middleware"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate Table `N` (1 or 2)")
		facts    = flag.Bool("facts", false, "gather the §VI-B / §VII-A facts")
		all      = flag.Bool("all", false, "regenerate every artifact")
		scale    = flag.Float64("scale", 0.1, "OpenFOAM call-graph scale (1.0 = paper size)")
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		asJSON   = flag.Bool("json", false, "emit machine-readable micro-benchmark JSON (dispatch ns/op per backend, batch patch stats)")
		backend  = flag.String("backend", "", "restrict -json dispatch benches to this comma-separated backend set (registry-resolved; several = mux fan-out)")
		sample   = flag.Int("sample", 0, "add a 1-in-N stride-sampled dispatch entry for the -backend set (default extrae) to the -json suite")
		suppress = flag.Int64("suppress-ns", 0, "add a min-duration-suppressed dispatch entry (threshold in virtual ns) to the -json suite")
		async    = flag.Bool("async", false, "add an async-pipeline dispatch entry for the -backend set (default extrae) to the -json suite (the default suite already carries async:extrae)")
		asyncBuf = flag.Int("async-buf", 0, "async: per-rank ring capacity in events for the -async entry (0 = default 65536)")
		probe    = flag.Bool("probe", false, "print calibration counters (maintainer tool)")
	)
	flag.Parse()
	if !*all && *table == 0 && !*facts && !*probe && !*asJSON {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Scale: *scale, Ranks: *ranks}

	if *asJSON {
		suite := []string{
			experiments.BackendNone,
			// The sampling stage at the gated rate, measured immediately
			// after its same-run anchor so machine-state drift between the
			// two stays minimal: the vs_none_cap gate asserts 1-in-64
			// dispatch stays ≤1.3x of the none baseline.
			"sampled:" + experiments.BackendExtrae + "@64",
			experiments.BackendTALP,
			experiments.BackendScoreP,
			experiments.BackendExtrae,
			// The async pipeline right after its same-run inline anchor:
			// the async_vs_inline_cap gate asserts the append-only hot path
			// costs at most 0.6x of inline extrae dispatch.
			"async:" + experiments.BackendExtrae,
			// The fan-out variants the benchdiff gates watch: mux-of-one
			// against the direct extrae path, and the talp+extrae combo.
			"mux:" + experiments.BackendExtrae,
			experiments.BackendTALP + "," + experiments.BackendExtrae,
			// The serving path: one webservice request through
			// capi/middleware, cost expressed per dispatched event. The
			// http_vs_none_cap gate asserts the script walk, worker
			// checkout and latency accounting amortize to within
			// benchcmp.HTTPVsNoneLimit of the same run's none baseline.
			"http:" + experiments.BackendNone,
		}
		sampleTarget := experiments.BackendExtrae
		if *backend != "" {
			names, err := capi.ParseBackends(*backend)
			if err != nil {
				fatal(err)
			}
			spec := strings.Join(names, ",")
			suite = []string{experiments.BackendNone}
			if spec != experiments.BackendNone {
				suite = append(suite, spec)
				sampleTarget = spec
			}
		}
		if *sample > 0 {
			suite = append(suite, fmt.Sprintf("sampled:%s@%d", sampleTarget, *sample))
		}
		if *suppress > 0 {
			suite = append(suite, fmt.Sprintf("suppressed:%s@%d", sampleTarget, *suppress))
		}
		if *async || *asyncBuf > 0 {
			prefix := "async:"
			if *asyncBuf > 0 {
				prefix = fmt.Sprintf("async@%d:", *asyncBuf)
			}
			entry := prefix + sampleTarget
			if !slices.Contains(suite, entry) {
				suite = append(suite, entry)
			}
		}
		if err := runBenchJSON(opts, suite); err != nil {
			fatal(err)
		}
		return
	}

	if *all || *table == 1 {
		rows, err := experiments.Table1(opts)
		if err != nil {
			fatal(err)
		}
		render(experiments.RenderTable1(rows), *csv)
	}
	if *all || *table == 2 {
		rows, err := experiments.Table2(opts)
		if err != nil {
			fatal(err)
		}
		render(experiments.RenderTable2(rows), *csv)
	}
	if *all || *facts {
		f, err := experiments.GatherFacts(opts)
		if err != nil {
			fatal(err)
		}
		render(experiments.RenderFacts(f), *csv)
	}
	if *probe {
		if err := runProbe(opts); err != nil {
			fatal(err)
		}
	}
}

// httpDispatchEntry measures the serving path: one iteration is one
// webservice request to the hot feed route through capi/middleware —
// worker checkout, the compiled script walk dispatching every
// instrumented enter/exit pair, and the endpoint latency accounting. The
// cost is normalized per dispatched event so the http_vs_none_cap gate
// can compare it against the bare dispatch baseline of the same run. No
// adaptation is enabled: the selection (and with it the pairs-per-request
// divisor) must stay fixed across the timed window.
func httpDispatchEntry(entry, backendSpec string) (benchcmp.Dispatch, error) {
	session, err := capi.NewAppSession("webservice", 0)
	if err != nil {
		return benchcmp.Dispatch{}, err
	}
	inst, err := session.Start(nil, capi.RunOptions{
		PatchAll:    true,
		Backends:    strings.Split(backendSpec, ","),
		Ranks:       1,
		HTTPWorkers: 1,
	})
	if err != nil {
		return benchcmp.Dispatch{}, err
	}
	defer inst.Close()
	svc, err := middleware.New(inst, session.Program(), capi.WebserviceEndpoints(), middleware.Options{Workers: 1})
	if err != nil {
		return benchcmp.Dispatch{}, err
	}
	const route = "GET /api/feed"
	pairs := svc.EventPairs(route)
	if pairs == 0 {
		return benchcmp.Dispatch{}, fmt.Errorf("capi-bench: %s compiled to no event pairs", route)
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svc.Do(route); err != nil {
				benchErr = err
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return benchcmp.Dispatch{}, benchErr
	}
	perReq := float64(r.T.Nanoseconds()) / float64(r.N)
	return benchcmp.Dispatch{
		Backend:    entry,
		NsPerPair:  perReq / float64(pairs),
		NsPerEvent: perReq / float64(pairs*2),
		Iters:      r.N,
	}, nil
}

// runBenchJSON measures wall-clock dispatch throughput per backend and the
// batch-patching path, and emits one JSON document on stdout. The document
// types live in internal/benchcmp — the regression gate (cmd/benchdiff)
// decodes the same structs, so producer and comparator cannot drift.
func runBenchJSON(opts experiments.Options, suite []string) error {
	out := benchcmp.Doc{Schema: benchcmp.Schema, App: "openfoam", Scale: opts.Scale}
	for _, backend := range suite {
		if inner, ok := strings.CutPrefix(backend, "http:"); ok {
			d, err := httpDispatchEntry(backend, inner)
			if err != nil {
				return err
			}
			out.Dispatch = append(out.Dispatch, d)
			continue
		}
		h, err := experiments.NewDispatchHarness(backend, nil)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Dispatch(i)
			}
		})
		// Drain and stop any async consumer pool outside the timed window
		// so pools do not accumulate across suite entries.
		h.Close()
		perPair := float64(r.T.Nanoseconds()) / float64(r.N)
		out.Dispatch = append(out.Dispatch, benchcmp.Dispatch{
			Backend:    backend,
			NsPerPair:  perPair,
			NsPerEvent: perPair / 2,
			Iters:      r.N,
		})
	}

	bundle, err := experiments.PrepareOpenFOAM(opts)
	if err != nil {
		return err
	}
	byName, err := bundle.Build.StaticPackedIDs()
	if err != nil {
		return err
	}
	ids := make([]int32, 0, len(byName))
	for _, id := range byName {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	proc, err := bundle.Build.LoadProcess()
	if err != nil {
		return err
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		return err
	}
	delta, err := xr.PatchBatch(ids, true)
	if err != nil {
		return err
	}
	d2, err := xr.PatchBatch(ids, false)
	if err != nil {
		return err
	}
	delta.Add(d2)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xr.PatchBatch(ids, true); err != nil {
				b.Fatal(err)
			}
			if _, err := xr.PatchBatch(ids, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	out.BatchPatch = benchcmp.BatchPatch{
		Funcs:          int64(len(ids)),
		PatchedSleds:   delta.PatchedSleds,
		UnpatchedSleds: delta.UnpatchedSleds,
		BatchWindows:   delta.BatchWindows,
		MprotectCalls:  delta.MprotectCalls,
		NsPerFunc:      float64(r.T.Nanoseconds()) / float64(r.N) / float64(len(ids)),
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runProbe prints per-variant event and TALP-touch counters used to
// calibrate the backend cost models (a maintainer tool; not part of the
// paper's tables).
func runProbe(opts experiments.Options) error {
	for _, prep := range []func(experiments.Options) (*experiments.AppBundle, error){
		experiments.PrepareLulesh, experiments.PrepareOpenFOAM,
	} {
		bundle, err := prep(opts)
		if err != nil {
			return err
		}
		van, err := experiments.RunVariant(bundle, experiments.BackendNone, experiments.VariantVanilla, nil, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s: vanilla %.2fs\n", bundle.Name, van.Row.TotalSeconds)
		variants := append([]string{experiments.VariantFull}, experiments.SpecNames...)
		for _, variant := range variants {
			var cfg *ic.Config
			if variant != experiments.VariantFull {
				row, err := experiments.RunSelection(bundle, variant)
				if err != nil {
					return err
				}
				cfg = row.IC
			}
			run, err := experiments.RunVariant(bundle, experiments.BackendTALP, variant, cfg, opts)
			if err != nil {
				return err
			}
			var max talp.Stats
			for _, s := range experiments.TALPStats(run, opts.Ranks) {
				if s.StartStops > max.StartStops {
					max.StartStops = s.StartStops
				}
				if s.MPICalls > max.MPICalls {
					max.MPICalls = s.MPICalls
				}
				if s.RegionTouches > max.RegionTouches {
					max.RegionTouches = s.RegionTouches
				}
			}
			fmt.Printf("  %-15s events=%-9d startStops/rank=%-8d mpiCalls/rank=%-7d touches/rank=%-9d Ttotal=%.2f Tinit=%.2f\n",
				variant, run.Row.Events, max.StartStops, max.MPICalls, max.RegionTouches,
				run.Row.TotalSeconds, run.Row.InitSeconds)

			spRun, err := experiments.RunVariant(bundle, experiments.BackendScoreP, variant, cfg, opts)
			if err != nil {
				return err
			}
			cct := 0
			if sp, ok := spRun.Backend.(*dyncapi.ScorePBackend); ok {
				for r := 0; r < opts.Ranks; r++ {
					if n := sp.M.CallTreeSize(r); n > cct {
						cct = n
					}
				}
			}
			fmt.Printf("  %-15s [scorep] cctNodes/rank=%-7d Ttotal=%.2f Tinit=%.2f\n",
				variant, cct, spRun.Row.TotalSeconds, spRun.Row.InitSeconds)
		}
	}
	return nil
}

func render(t *report.Table, csv bool) {
	var err error
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
		fmt.Println()
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capi-bench:", err)
	os.Exit(1)
}
