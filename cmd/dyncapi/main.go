// Command dyncapi executes a workload under runtime-adaptable
// instrumentation: the IC is applied by patching XRay sleds at start-up (no
// recompilation), events flow to the chosen measurement backend, and the
// tool report is printed — the Instrumentation + Measurement stages of
// Fig. 1/3.
//
// Usage:
//
//	dyncapi -app lulesh -builtin mpi -backend scorep -ranks 4
//	dyncapi -app openfoam -builtin "mpi coarse" -backend talp
//	dyncapi -app openfoam -full -backend talp       # patch everything
//	dyncapi -app quickstart -ic my.ic.json -backend scorep
package main

import (
	"flag"
	"fmt"
	"os"

	capi "capi"
	"capi/internal/experiments"
	"capi/internal/ic"
)

func main() {
	var (
		app     = flag.String("app", "quickstart", "workload: quickstart, lulesh or openfoam")
		scale   = flag.Float64("scale", 0.1, "openfoam call-graph scale")
		icFile  = flag.String("ic", "", "instrumentation configuration (JSON) to apply")
		spec    = flag.String("spec", "", "specification file to select with")
		builtin = flag.String("builtin", "", `built-in spec name (e.g. "mpi", "kernels coarse")`)
		full    = flag.Bool("full", false, "patch every sled (xray full)")
		backend = flag.String("backend", "talp", "measurement backend: talp, scorep or none")
		ranks   = flag.Int("ranks", 4, "simulated MPI ranks")
		talpBug = flag.Bool("talp-bug", false, "emulate the TALP re-entry bug (§VI-B(b))")
		asJSON  = flag.Bool("json", false, "emit the tool report as JSON")
	)
	flag.Parse()

	session, err := newSession(*app, *scale)
	if err != nil {
		fatal(err)
	}

	var sel *capi.Selection
	switch {
	case *full:
		// nothing to select
	case *icFile != "":
		f, err := os.Open(*icFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := ic.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sel = &capi.Selection{IC: cfg, Selected: cfg.Len()}
	case *spec != "" || *builtin != "":
		src, err := specSource(*spec, *builtin)
		if err != nil {
			fatal(err)
		}
		sel, err = session.Select(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dyncapi: selected %d functions (%d pre, %d added) in %.2fs\n",
			sel.IC.Len(), sel.Pre, sel.Added, sel.Seconds)
	default:
		fatal(fmt.Errorf("one of -ic, -spec, -builtin or -full is required"))
	}

	res, err := session.Run(sel, capi.RunOptions{
		Backend:        capi.Backend(*backend),
		Ranks:          *ranks,
		PatchAll:       *full,
		EmulateTALPBug: *talpBug,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "dyncapi: T_init %.2fs, T_total %.2fs (virtual), %d functions patched, %d events\n",
		res.InitSeconds, res.TotalSeconds, res.Patched, res.Events)
	switch {
	case res.TALP != nil && *asJSON:
		err = res.TALP.WriteJSON(os.Stdout)
	case res.TALP != nil:
		err = res.TALP.WriteText(os.Stdout)
	case res.Profile != nil:
		err = res.Profile.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func newSession(app string, scale float64) (*capi.Session, error) {
	switch app {
	case "quickstart":
		return capi.NewSession(capi.Quickstart(), capi.SessionOptions{OptLevel: 2})
	case "lulesh":
		return capi.NewSession(capi.Lulesh(capi.LuleshOptions{}), capi.SessionOptions{OptLevel: 3})
	case "openfoam":
		return capi.NewSession(capi.OpenFOAM(capi.OpenFOAMOptions{Scale: scale}), capi.SessionOptions{OptLevel: 2})
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

func specSource(specFile, builtin string) (string, error) {
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return experiments.SpecSource(builtin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyncapi:", err)
	os.Exit(1)
}
