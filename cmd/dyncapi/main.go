// Command dyncapi executes a workload under runtime-adaptable
// instrumentation: the IC is applied by patching XRay sleds at start-up (no
// recompilation), events flow to the chosen measurement backend, and the
// tool report is printed — the Instrumentation + Measurement stages of
// Fig. 1/3.
//
// Usage:
//
//	dyncapi -app lulesh -builtin mpi -backend scorep -ranks 4
//	dyncapi -app openfoam -builtin "mpi coarse" -backend talp
//	dyncapi -app openfoam -full -backend talp       # patch everything
//	dyncapi -app quickstart -ic my.ic.json -backend scorep
//	dyncapi -app lulesh -builtin mpi -backend extrae -trace-buf 8192
//	dyncapi -app lulesh -builtin mpi -backend talp,extrae  # multi-backend fan-out
//	dyncapi -app openfoam -full -adapt -budget 0.01 # live narrowing
//	dyncapi -app lulesh -builtin mpi -sample 64 -suppress-ns 2000  # sampled hot path
//
// -backend takes a comma-separated list of registry names; with several,
// every enter/exit event fans out to each backend and every report is
// printed (or emitted as one JSON envelope with -json). Unknown names fail
// fast with the registered list.
//
// With -adapt (or an explicit -budget), the overhead-budget controller
// watches per-function event counts during the run and narrows the
// selection in place at epoch boundaries — only delta sleds are re-patched,
// the run is never restarted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	capi "capi"
	"capi/internal/experiments"
	"capi/internal/ic"
	"capi/internal/vtime"
)

func main() {
	var (
		app      = flag.String("app", "quickstart", "workload: quickstart, lulesh or openfoam")
		scale    = flag.Float64("scale", 0.1, "openfoam call-graph scale")
		icFile   = flag.String("ic", "", "instrumentation configuration (JSON) to apply")
		spec     = flag.String("spec", "", "specification file to select with")
		builtin  = flag.String("builtin", "", `built-in spec name (e.g. "mpi", "kernels coarse")`)
		full     = flag.Bool("full", false, "patch every sled (xray full)")
		backend  = flag.String("backend", "talp", "comma-separated measurement backends (see capi.RegisteredBackends; e.g. talp,extrae)")
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		traceBuf = flag.Int("trace-buf", 0, "extrae: ring capacity per rank in events (0 = default 4096)")
		traceMax = flag.Int("trace-max", 0, "extrae: retained events per rank (0 = unbounded)")
		traceWrp = flag.Bool("trace-wrap", false, "extrae: wrap (discard oldest segment) instead of dropping new events when -trace-max is exceeded")
		talpBug  = flag.Bool("talp-bug", false, "emulate the TALP re-entry bug (§VI-B(b))")
		asJSON   = flag.Bool("json", false, "emit the tool report as JSON")
		adapt    = flag.Bool("adapt", false, "enable live overhead-budget adaptation")
		budget   = flag.Float64("budget", 0, "overhead budget per epoch as a fraction (implies -adapt)")
		epoch    = flag.Float64("epoch", 0, "adaptation epoch length in virtual seconds (implies -adapt)")
		sample   = flag.Int("sample", 0, "1-in-N stride sampling: deliver 1 of every N enters per function and rank (0 = unsampled)")
		suppress = flag.Int64("suppress-ns", 0, "suppress enter/exit pairs predicted shorter than this many virtual ns (exact drop accounting)")
		collapse = flag.Bool("collapse-redundant", false, "collapse repeated identical short calls into a count+aggregate")
		async    = flag.Bool("async", false, "asynchronous event pipeline: backends consume off the dispatch hot path (incompatible with -adapt)")
		asyncBuf = flag.Int("async-buf", 0, "async: per-rank ring capacity in events (0 = default 65536; overflow drops whole pairs, counted)")
		panicLim = flag.Int("panic-limit", 0, "per-backend circuit breaker: recovered panics before auto-detach (0 = default 3, negative = never detach)")
	)
	flag.Parse()

	// Fail fast on a typo'd backend name, before any session is built.
	backends, err := capi.ParseBackends(*backend)
	if err != nil {
		fatal(err)
	}

	session, err := capi.NewAppSession(*app, *scale)
	if err != nil {
		fatal(err)
	}

	var sel *capi.Selection
	switch {
	case *full:
		// nothing to select
	case *icFile != "":
		f, err := os.Open(*icFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := ic.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sel = &capi.Selection{IC: cfg, Selected: cfg.Len()}
	case *spec != "" || *builtin != "":
		src, err := specSource(*spec, *builtin)
		if err != nil {
			fatal(err)
		}
		sel, err = session.Select(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dyncapi: selected %d functions (%d pre, %d added) in %.2fs\n",
			sel.IC.Len(), sel.Pre, sel.Added, sel.Seconds)
	default:
		fatal(fmt.Errorf("one of -ic, -spec, -builtin or -full is required"))
	}

	runOpts := capi.RunOptions{
		Backends:       backends,
		Ranks:          *ranks,
		PatchAll:       *full,
		EmulateTALPBug: *talpBug,
		Async:          *async,
		AsyncBuf:       *asyncBuf,
		PanicLimit:     *panicLim,
	}
	if *adapt || *budget > 0 || *epoch > 0 {
		runOpts.Adapt = &capi.AdaptOptions{
			Budget: *budget,
			Epoch:  vtime.Seconds(*epoch),
		}
	}
	if *traceBuf > 0 || *traceMax > 0 || *traceWrp {
		runOpts.Trace = &capi.TraceOptions{
			BufEvents: *traceBuf,
			MaxEvents: *traceMax,
			Wrap:      *traceWrp,
		}
	}
	if *sample > 0 || *suppress > 0 || *collapse {
		runOpts.Sampling = &capi.SamplingOptions{Default: &capi.SamplingPolicy{
			Stride:            *sample,
			MinDurationNs:     *suppress,
			CollapseRedundant: *collapse,
		}}
	}
	res, err := session.Run(sel, runOpts)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "dyncapi: T_init %.2fs, T_total %.2fs (virtual), %d functions patched, %d events\n",
		res.InitSeconds, res.TotalSeconds, res.Patched, res.Events)
	if res.DroppedAsync > 0 {
		fmt.Fprintf(os.Stderr, "dyncapi: async: %d enter/exit pairs dropped under back-pressure (raise -async-buf)\n",
			res.DroppedAsync)
	}
	if res.Sampling != nil {
		c := res.Sampling.Counters
		fmt.Fprintf(os.Stderr, "dyncapi: sampling: %d enters -> %d delivered (%d sampled out, %d suppressed [%.1fµs], %d collapsed [%.1fµs])\n",
			c.Enters, c.Delivered, c.SampledEvents,
			c.SuppressedPairs, float64(c.SuppressedNs)/1e3,
			c.CollapsedCalls, float64(c.CollapsedNs)/1e3)
	}
	if runOpts.Adapt != nil {
		fmt.Fprintf(os.Stderr, "dyncapi: adapt: %d live re-selections, %d functions active (of %d initially), %d dropped, %d demoted to sampling\n",
			res.Reconfigs, res.ActiveFuncs, res.Patched, len(res.DroppedFuncs), len(res.DemotedFuncs))
		for _, ep := range res.AdaptEpochs {
			if len(ep.Demoted) > 0 || len(ep.Promoted) > 0 {
				fmt.Fprintf(os.Stderr, "dyncapi: adapt: epoch %d @%s on rank %d: demoted %d to 1-in-N, promoted %d back\n",
					ep.Seq, vtime.FormatSeconds(ep.AtNs), ep.Rank, len(ep.Demoted), len(ep.Promoted))
			}
			if !ep.Reconfigured {
				continue
			}
			fmt.Fprintf(os.Stderr, "dyncapi: adapt: epoch %d @%s on rank %d: overhead %.1fµs > budget %.1fµs, dropped %d (re-patched only the delta: %d sleds in %d mprotect windows)\n",
				ep.Seq, vtime.FormatSeconds(ep.AtNs), ep.Rank,
				float64(ep.OverheadNs)/1e3, float64(ep.BudgetNs)/1e3,
				len(ep.Dropped), ep.Report.Batch.UnpatchedSleds+ep.Report.Batch.PatchedSleds,
				ep.Report.Batch.BatchWindows)
		}
	}
	if *asJSON {
		// One envelope for every attached backend: name → {kind, report}.
		env := make(map[string]any, len(res.Reports))
		for name, rep := range res.Reports {
			env[name] = map[string]any{"kind": rep.Kind(), "report": rep}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fatal(err)
		}
		return
	}
	// Text mode: every backend's report, in delivery order. Custom backends
	// without a text renderer fall back to their JSON envelope.
	for _, name := range res.Backends {
		rep, ok := res.Reports[name]
		if !ok {
			continue
		}
		if len(res.Reports) > 1 {
			fmt.Printf("== %s (%s) ==\n", name, rep.Kind())
		}
		var err error
		switch name {
		case string(capi.BackendTALP):
			err = res.TALP.WriteText(os.Stdout)
		case string(capi.BackendScoreP):
			err = res.Profile.WriteText(os.Stdout)
		case string(capi.BackendExtrae):
			err = res.Trace.WriteText(os.Stdout)
		default:
			var raw []byte
			if raw, err = rep.MarshalJSON(); err == nil {
				_, err = fmt.Printf("%s\n", raw)
			}
		}
		if err != nil {
			fatal(err)
		}
	}
}

func specSource(specFile, builtin string) (string, error) {
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return experiments.SpecSource(builtin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyncapi:", err)
	os.Exit(1)
}
