// Command dyncapi executes a workload under runtime-adaptable
// instrumentation: the IC is applied by patching XRay sleds at start-up (no
// recompilation), events flow to the chosen measurement backend, and the
// tool report is printed — the Instrumentation + Measurement stages of
// Fig. 1/3.
//
// Usage:
//
//	dyncapi -app lulesh -builtin mpi -backend scorep -ranks 4
//	dyncapi -app openfoam -builtin "mpi coarse" -backend talp
//	dyncapi -app openfoam -full -backend talp       # patch everything
//	dyncapi -app quickstart -ic my.ic.json -backend scorep
//	dyncapi -app lulesh -builtin mpi -backend extrae -trace-buf 8192
//	dyncapi -app openfoam -full -adapt -budget 0.01 # live narrowing
//
// With -adapt (or an explicit -budget), the overhead-budget controller
// watches per-function event counts during the run and narrows the
// selection in place at epoch boundaries — only delta sleds are re-patched,
// the run is never restarted.
package main

import (
	"flag"
	"fmt"
	"os"

	capi "capi"
	"capi/internal/experiments"
	"capi/internal/ic"
	"capi/internal/vtime"
)

func main() {
	var (
		app      = flag.String("app", "quickstart", "workload: quickstart, lulesh or openfoam")
		scale    = flag.Float64("scale", 0.1, "openfoam call-graph scale")
		icFile   = flag.String("ic", "", "instrumentation configuration (JSON) to apply")
		spec     = flag.String("spec", "", "specification file to select with")
		builtin  = flag.String("builtin", "", `built-in spec name (e.g. "mpi", "kernels coarse")`)
		full     = flag.Bool("full", false, "patch every sled (xray full)")
		backend  = flag.String("backend", "talp", "measurement backend: talp, scorep, extrae or none")
		ranks    = flag.Int("ranks", 4, "simulated MPI ranks")
		traceBuf = flag.Int("trace-buf", 0, "extrae: ring capacity per rank in events (0 = default 4096)")
		traceMax = flag.Int("trace-max", 0, "extrae: retained events per rank (0 = unbounded)")
		traceWrp = flag.Bool("trace-wrap", false, "extrae: wrap (discard oldest segment) instead of dropping new events when -trace-max is exceeded")
		talpBug  = flag.Bool("talp-bug", false, "emulate the TALP re-entry bug (§VI-B(b))")
		asJSON   = flag.Bool("json", false, "emit the tool report as JSON")
		adapt    = flag.Bool("adapt", false, "enable live overhead-budget adaptation")
		budget   = flag.Float64("budget", 0, "overhead budget per epoch as a fraction (implies -adapt)")
		epoch    = flag.Float64("epoch", 0, "adaptation epoch length in virtual seconds (implies -adapt)")
	)
	flag.Parse()

	session, err := capi.NewAppSession(*app, *scale)
	if err != nil {
		fatal(err)
	}

	var sel *capi.Selection
	switch {
	case *full:
		// nothing to select
	case *icFile != "":
		f, err := os.Open(*icFile)
		if err != nil {
			fatal(err)
		}
		cfg, err := ic.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sel = &capi.Selection{IC: cfg, Selected: cfg.Len()}
	case *spec != "" || *builtin != "":
		src, err := specSource(*spec, *builtin)
		if err != nil {
			fatal(err)
		}
		sel, err = session.Select(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dyncapi: selected %d functions (%d pre, %d added) in %.2fs\n",
			sel.IC.Len(), sel.Pre, sel.Added, sel.Seconds)
	default:
		fatal(fmt.Errorf("one of -ic, -spec, -builtin or -full is required"))
	}

	runOpts := capi.RunOptions{
		Backend:        capi.Backend(*backend),
		Ranks:          *ranks,
		PatchAll:       *full,
		EmulateTALPBug: *talpBug,
	}
	if *adapt || *budget > 0 || *epoch > 0 {
		runOpts.Adapt = &capi.AdaptOptions{
			Budget: *budget,
			Epoch:  vtime.Seconds(*epoch),
		}
	}
	if runOpts.Backend == capi.BackendExtrae {
		runOpts.Trace = &capi.TraceOptions{
			BufEvents: *traceBuf,
			MaxEvents: *traceMax,
			Wrap:      *traceWrp,
		}
	}
	res, err := session.Run(sel, runOpts)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "dyncapi: T_init %.2fs, T_total %.2fs (virtual), %d functions patched, %d events\n",
		res.InitSeconds, res.TotalSeconds, res.Patched, res.Events)
	if runOpts.Adapt != nil {
		fmt.Fprintf(os.Stderr, "dyncapi: adapt: %d live re-selections, %d functions active (of %d initially), %d dropped\n",
			res.Reconfigs, res.ActiveFuncs, res.Patched, len(res.DroppedFuncs))
		for _, ep := range res.AdaptEpochs {
			if !ep.Reconfigured {
				continue
			}
			fmt.Fprintf(os.Stderr, "dyncapi: adapt: epoch %d @%s on rank %d: overhead %.1fµs > budget %.1fµs, dropped %d (re-patched only the delta: %d sleds in %d mprotect windows)\n",
				ep.Seq, vtime.FormatSeconds(ep.AtNs), ep.Rank,
				float64(ep.OverheadNs)/1e3, float64(ep.BudgetNs)/1e3,
				len(ep.Dropped), ep.Report.Batch.UnpatchedSleds+ep.Report.Batch.PatchedSleds,
				ep.Report.Batch.BatchWindows)
		}
	}
	switch {
	case res.TALP != nil && *asJSON:
		err = res.TALP.WriteJSON(os.Stdout)
	case res.TALP != nil:
		err = res.TALP.WriteText(os.Stdout)
	case res.Profile != nil:
		err = res.Profile.WriteText(os.Stdout)
	case res.Trace != nil:
		err = res.Trace.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func specSource(specFile, builtin string) (string, error) {
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return experiments.SpecSource(builtin)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dyncapi:", err)
	os.Exit(1)
}
