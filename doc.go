// Package capi is a from-scratch Go reproduction of "Runtime-Adaptable
// Selective Performance Instrumentation" (Kreutzer, Iwainsky,
// Garcia-Gasulla, Lopez, Bischof; IPPS/IPDPS-W 2023, arXiv:2303.11110): the
// CaPI compiler-assisted instrumentation-selection tool together with every
// substrate its evaluation depends on.
//
// The paper's system selects which functions of a large HPC application to
// instrument by evaluating a user-defined selector pipeline over a
// whole-program call graph, and — the paper's core contribution — applies
// that selection at program start by patching XRay NOP sleds instead of
// recompiling, including inside dynamic shared objects (DSOs). Measurement
// flows to Score-P (fine-grained profiles), TALP (POP parallel-efficiency
// metrics per region) or an Extrae-style event tracer (per-rank sharded
// trace buffers with a merged timeline).
//
// # Architecture (paper Fig. 2/3)
//
//	prog      synthetic program model (stand-in for C++ sources)
//	metacg    whole-program call-graph construction
//	spec      the CaPI selection DSL        ─┐
//	selector  selector implementations       ├─ "Selection"
//	core      pipeline engine + post-passes ─┘
//	ic        instrumentation configuration (IC) files
//	compiler  Clang/-fxray-instrument model: inlining, symbols, sleds
//	obj/mem   object images, dynamic loader, page protection
//	xray      sled patching runtime with packed DSO/function IDs (Fig. 4)
//	dyncapi   the DynCaPI runtime: ID resolution, patching, event bridge,
//	          live re-selection (Reconfigure: delta re-patch in place),
//	          multi-backend fan-out (Mux: every event to N backends, with
//	          per-backend synthetic-exit delivery), live backend swaps,
//	          and the sampling/suppression stage (sampler.go): per-function
//	          1-in-N stride sampling, predictive min-duration suppression
//	          with exact drop accounting, and redundancy collapse of
//	          repeated identical short calls — policies published
//	          atomically, rates changeable mid-run without locking the
//	          hot path (SetSampling / SetFuncSampling), and the async
//	          event pipeline (pipeline.go): per-rank bounded single-writer
//	          rings lift the backend chain off the dispatch hot path, a
//	          consumer pool replays events under pinned clocks, drain
//	          barriers keep phase results and synthetic-exit ordering
//	          exact, back-pressure drops whole pairs (DroppedAsync),
//	          and the panic barrier (guard.go): every delivery into a
//	          backend runs behind a recover with a per-backend circuit
//	          breaker — a tripped backend is auto-detached and replaced
//	          by a tombstone that keeps drop accounting (DroppedPanicked)
//	          exact for the rest of the run
//	capi      backend registry (RegisterBackend / RunOptions.Backends):
//	          measurement systems are named factories behind the public
//	          MeasurementBackend interface, reporting through one
//	          self-describing envelope (Instance.Reports)
//	adapt     overhead-budget controller: adapts the selection at epoch
//	          boundaries while the program runs — hottest low-duration
//	          functions first demoted to 1-in-N sampling (the gentler
//	          knob; no re-patch), then deselected if still over budget,
//	          re-promoted with hysteresis when pressure subsides; its SLO
//	          mode (slo.go) instead targets a per-endpoint tail-latency
//	          bound for serving workloads — narrow each violating
//	          endpoint's instrumentation (same ladder, scoped to the
//	          endpoint's functions) until the observed p99 meets the
//	          target, widen back when latency recovers headroom, with a
//	          per-endpoint doubling backoff so endpoints sharing
//	          functions cannot ping-pong a shared subtree
//	mpi       simulated MPI with PMPI interception
//	scorep    Score-P measurement substrate
//	talp/pop  TALP regions + POP efficiency metrics
//	trace     Extrae-style event tracing: per-rank sharded ring buffers,
//	          batched segment flush, merged virtual-time timeline
//	exec      deterministic virtual-time execution engine
//	workload  LULESH / OpenFOAM-icoFoam workload generators, plus the
//	          request-serving webservice workload (feed/user/order/search/
//	          asset/health routes over a shared helper layer) whose
//	          endpoints the SLO mode adapts
//	middleware net/http integration (package capi/middleware): Tap wraps
//	          any http.Handler with one enter/exit dispatch per request;
//	          Service executes a webservice endpoint's full call tree per
//	          request on a per-worker virtual clock — inline backends
//	          charge their event costs to the same clock, so narrowing
//	          visibly improves the measured tail — with request contexts
//	          drawn from the instance's HTTP worker pool
//	          (RunOptions.HTTPWorkers: dedicated ranks past the MPI world)
//	ctl       HTTP/JSON control plane over a live instance: remote
//	          re-selection (optionally TTL'd: ephemeral probes that
//	          auto-revert), phase execution, report scrapes, Prometheus
//	          metrics, SSE reconfigure/expired/breaker events (served by
//	          cmd/capi-serve)
//	fleet     federated control plane over many capi-serve members
//	          (cmd/capi-fleet): registration with heartbeat-TTL eviction,
//	          cluster-wide fan-out of select/sampling/adapt with
//	          partial-failure accounting (all-or-report-divergence),
//	          merged status/report — fleet-wide POP metrics re-derived
//	          from concatenated per-member rank times — a member-labelled
//	          unified /metrics, and a multiplexed SSE feed tailing every
//	          member's event stream with reconnect/backoff
//	benchcmp  benchmark-regression comparator (cmd/benchdiff CI gate
//	          against BENCH_baseline.json)
//	lint      stdlib-only static-analysis suite enforcing the //capi:
//	          source annotations: hotpath (dispatch path must not
//	          allocate/lock/block), atomicfield (no mixed atomic/plain
//	          access), guardedby (mutex discipline), noexit (library code
//	          never aborts the process) — run by cmd/capi-lint as a
//	          required CI gate
//
// # The Fig. 1 loop
//
// A Session wraps an application prepared for runtime-adaptable
// instrumentation. The user iterates: Select (evaluate a spec into an IC),
// Run (patch at start-up, measure), inspect, adjust the spec, repeat — no
// recompilation between iterations:
//
//	app := capi.Lulesh(capi.LuleshOptions{})
//	s, _ := capi.NewSession(app, capi.SessionOptions{OptLevel: 3})
//	sel, _ := s.Select(`!import("mpi.capi")
//	excluded = join(inSystemHeader(%%), inlineSpecified(%%))
//	subtract(%mpi_comm, %excluded)`)
//	res, _ := s.Run(sel, capi.RunOptions{Backend: capi.BackendScoreP, Ranks: 4})
//	res.Profile.WriteText(os.Stdout)
//
// # Live re-selection
//
// The loop also runs without leaving the process: Start returns a live
// Instance whose selection can be changed in place — Reconfigure diffs the
// patched set against the new IC and re-patches only the delta, under
// page-coalesced mprotect windows. RunOptions.Adapt goes further and lets
// an overhead-budget controller (internal/adapt) narrow the selection
// automatically at virtual-time epoch boundaries while the workload runs:
//
//	inst, _ := s.Start(sel, capi.RunOptions{Backend: capi.BackendTALP})
//	res1, _ := inst.Run()               // pays T_init once
//	sel2, _ := s.Select(refinedSpec)
//	inst.Reconfigure(sel2)              // delta re-patch, runtime stays up
//	res2, _ := inst.Run()               // pays only the re-patch
//
// A rank caught inside a deselected function can never fire its exit
// event; Reconfigure delivers synthetic exits through the backend's
// Deselector hook so Score-P closes the dangling region and TALP balances
// the start (ReconfigReport.SyntheticExits counts them, broken down per
// backend in SyntheticExitsByBackend), and the runtime's split drop
// counters (in-flight vs. spurious) let trace completeness be asserted
// exactly.
//
// # Measurement backends: an open registry
//
// Backends are named entries in a package-level registry. The four
// built-ins (none, talp, scorep, extrae) self-register; a custom backend
// implements MeasurementBackend (an EventBackend hot path plus phase
// lifecycle and a self-describing Report) and registers a factory:
//
//	capi.RegisterBackend("mytool", func(cfg capi.BackendConfig) (capi.MeasurementBackend, error) { … })
//
// RunOptions.Backends selects any set by name; with several, a mux fans
// every enter/exit event out to all of them, so one run records TALP
// efficiency and an Extrae trace from the same event stream:
//
//	res, _ := s.Run(sel, capi.RunOptions{Backends: []string{"talp", "extrae"}})
//	res.Reports["talp"]   // kind "talp"  — POP efficiency regions
//	res.Reports["extrae"] // kind "trace" — merged timeline
//
// Instance.SetBackends swaps the attached set mid-run (detaching backends
// close their open state with synthetic exits); the control plane exposes
// the same swap on POST /v1/select via a "backends" list, and GET
// /v1/report serves the envelope keyed by backend name.
//
// # Sampling and redundancy suppression
//
// Between full instrumentation and deselection sits a middle tier: the
// hook stays patched but the sampler thins the stream before it reaches
// the backend chain. RunOptions.Sampling installs the initial table,
// Instance.SetSampling replaces it on a live run (policies publish
// atomically; open pairs finish under their recorded decisions, so
// delivery stays balanced across rate changes):
//
//	inst, _ := s.Start(sel, capi.RunOptions{
//		Backend:  capi.BackendTALP,
//		Sampling: &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 64}},
//	})
//
// The conservation counters reconcile exactly at phase end —
// enters == delivered + sampledEvents + suppressedPairs + collapsedCalls —
// and surface in RunResult.Sampling, Instance.Status, ReconfigReport, the
// /v1/report envelope and as Prometheus counters; POST /v1/sampling
// changes the table remotely. The adapt controller uses the same
// mechanism as its demote ladder.
//
// # Ephemeral probes and the panic barrier
//
// Instance.ReconfigureTTL and Instance.SetSamplingTTL install an override
// that auto-reverts to the last explicit state when the TTL expires — the
// revert is an ordinary Reconfigure/SetSampling delivered by a timer
// goroutine that only exists while a revert is pending. Explicit calls
// cancel pending reverts; overlapping TTLs keep the original base. Over
// HTTP the same thing is a "ttl" field on POST /v1/select and
// /v1/sampling, with the expiry streamed as an SSE "expired" event.
//
// Every delivery into a measurement backend runs behind a recover barrier
// with a per-backend circuit breaker (RunOptions.PanicLimit): a backend
// that keeps panicking is auto-detached mid-phase — its chain slot swaps
// to a tombstone so the conservation identity gains exactly one term
// (enters == delivered + sampledEvents + suppressedPairs + collapsedCalls
// + droppedAsync + droppedPanicked) and stays exact — while the host
// phase always runs to completion.
//
// # Remote control plane
//
// An Instance is safe for concurrent control calls against an executing
// phase, which lets the selection be driven from *outside* the process:
// cmd/capi-serve mounts internal/ctl over a live instance and serves
// status, the current selection, live re-selection (POST a spec, get the
// ReconfigReport), phase execution, measurement reports, adaptive-controller
// retuning, Prometheus metrics and an SSE stream of reconfigure events.
// Instance.Status returns the consistent snapshot those endpoints expose.
//
// Above the single process sits the federated control plane: cmd/capi-fleet
// (internal/fleet) aggregates many capi-serve members — capi-serve -fleet
// self-registers and heartbeats — fanning control mutations out
// cluster-wide with explicit partial-failure reporting and merging the
// members' status, reports (fleet-wide POP efficiency over the union of
// all ranks), metrics and event streams into one coordinator surface.
//
// Everything is deterministic: workloads are generated from fixed seeds and
// time is virtual, so measurements are reproducible bit-for-bit.
package capi
