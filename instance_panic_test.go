package capi_test

import (
	"slices"
	"sync"
	"testing"
	"time"

	capi "capi"
)

// panicEvents panics on every delivery — before any internal accounting —
// so a successful delivery to this backend is impossible: everything the
// chain hands it must come back out as DroppedPanicked.
type panicEvents struct{}

func (panicEvents) Name() string                                     { return "test-panic" }
func (panicEvents) OnEnter(tc capi.ThreadCtx, fn *capi.ResolvedFunc) { panic("test-panic: enter") }
func (panicEvents) OnExit(tc capi.ThreadCtx, fn *capi.ResolvedFunc)  { panic("test-panic: exit") }
func (panicEvents) InitCost(int) int64                               { return 0 }

type panicBackend struct{}

func (panicBackend) Name() string                 { return "test-panic" }
func (panicBackend) Events() capi.EventBackend    { return panicEvents{} }
func (panicBackend) StartPhase(*capi.World) error { return nil }
func (panicBackend) Report() capi.Report {
	return capi.JSONReport{ReportKind: "panic", Value: "should never be scraped after a trip"}
}

func init() {
	capi.RegisterBackend("test-panic", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return panicBackend{}, nil
	})
}

// TestPanickingBackendPhaseSurvives is the fault-injection matrix: a
// backend that panics on every single event runs alongside talp, inline
// and async, with the breaker armed and disarmed. In every cell the host
// phase must run to completion (twice), the healthy backend must keep
// reporting, and the conservation identity must stay exact:
//
//	enters == delivered + sampledOut + suppressed + collapsed + droppedAsync
//
// with, for the panicking backend, droppedPanicked == delivered — not one
// event ever reached it, and not one went unaccounted. Run with -race: a
// status hammer runs concurrently and the mid-phase auto-detach exercises
// the tombstone swap against live dispatch.
func TestPanickingBackendPhaseSurvives(t *testing.T) {
	cases := []struct {
		name       string
		async      bool
		panicLimit int // 0 = default (trips), negative = barrier only
	}{
		{"inline-trip", false, 0},
		{"async-trip", true, 0},
		{"inline-no-trip", false, -1},
		{"async-no-trip", true, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := newQuickSession(t)
			sel, err := s.Select(quickSpec)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := s.Start(sel, capi.RunOptions{
				Backends:   []string{"talp", "test-panic"},
				Ranks:      2,
				Async:      c.async,
				PanicLimit: c.panicLimit,
				Sampling:   &capi.SamplingOptions{Default: &capi.SamplingPolicy{Stride: 2}},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(inst.Close)

			// Status hammer: scrapes the breaker/TTL/sampling snapshots while
			// the phase dispatches and the trip goroutine swaps the chain.
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					st := inst.Status()
					if !st.Instrumented {
						t.Error("status lost instrumentation mid-phase")
						return
					}
					inst.Reports()
					inst.TALPReport()
				}
			}()

			if _, err := inst.Run(); err != nil {
				t.Fatalf("first phase failed: %v", err)
			}
			if c.panicLimit == 0 {
				// The trip fires on its own goroutine; wait for the detach.
				deadline := time.Now().Add(10 * time.Second)
				for {
					st := inst.Status()
					if slices.Contains(st.DetachedBackends, "test-panic") {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("breaker never detached test-panic: %+v", st.Breaker)
					}
					time.Sleep(time.Millisecond)
				}
			}
			// Second phase after the (possible) detach: the tombstone keeps
			// the accounting exact and the healthy backend keeps measuring.
			res, err := inst.Run()
			close(done)
			wg.Wait()
			if err != nil {
				t.Fatalf("second phase failed: %v", err)
			}
			if res.Reports["talp"] == nil {
				t.Fatal("healthy backend stopped reporting")
			}

			st := inst.Status()
			if st.Sampling == nil {
				t.Fatal("no sampling counters")
			}
			cnt := st.Sampling.Counters
			if cnt.Enters == 0 || cnt.Delivered == 0 {
				t.Fatalf("degenerate phase: %+v", cnt)
			}
			if got := cnt.Delivered + cnt.SampledEvents + cnt.SuppressedPairs + cnt.CollapsedCalls + st.DroppedAsync; got != cnt.Enters {
				t.Fatalf("conservation broken: enters %d != delivered %d + sampledOut %d + suppressed %d + collapsed %d + droppedAsync %d",
					cnt.Enters, cnt.Delivered, cnt.SampledEvents, cnt.SuppressedPairs, cnt.CollapsedCalls, st.DroppedAsync)
			}
			// Nothing was ever delivered to the panicking backend, and every
			// enter that reached its guard (or tombstone) was counted.
			if st.DroppedPanicked != cnt.Delivered {
				t.Fatalf("droppedPanicked = %d, want every delivered enter (%d)", st.DroppedPanicked, cnt.Delivered)
			}
			var bs *capi.BreakerStatus
			for i := range st.Breaker {
				if st.Breaker[i].Backend == "test-panic" {
					bs = &st.Breaker[i]
				}
			}
			if bs == nil {
				t.Fatalf("no breaker stats for test-panic: %+v", st.Breaker)
			}
			if bs.Panics == 0 || bs.LastPanic == "" {
				t.Fatalf("breaker stats = %+v", bs)
			}
			if c.panicLimit == 0 {
				if !bs.Tripped || !slices.Contains(st.DetachedBackends, "test-panic") {
					t.Fatalf("breaker did not trip+detach: %+v detached=%v", bs, st.DetachedBackends)
				}
				if res.Reports["test-panic"] != nil {
					t.Fatal("detached backend still in the report envelope")
				}
			} else {
				if bs.Tripped || len(st.DetachedBackends) != 0 {
					t.Fatalf("disarmed breaker tripped: %+v detached=%v", bs, st.DetachedBackends)
				}
			}
		})
	}
}

// TestPanickingStartPhaseDegrades: a StartPhase panic is recovered into
// the same breaker (the phase proceeds without the backend's phase hook)
// and a Report panic degrades to a missing envelope entry, not a crash.
func TestPanickingStartPhaseDegrades(t *testing.T) {
	s := newQuickSession(t)
	sel, err := s.Select(quickSpec)
	if err != nil {
		t.Fatal(err)
	}
	// PanicLimit 1: the very first recovered panic trips the breaker.
	inst, err := s.Start(sel, capi.RunOptions{
		Backends:   []string{"talp", "test-lifecycle-panic"},
		Ranks:      2,
		PanicLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Close)
	res, err := inst.Run()
	if err != nil {
		t.Fatalf("phase failed: %v", err)
	}
	if res.Reports["talp"] == nil {
		t.Fatal("healthy backend stopped reporting")
	}
	if res.Reports["test-lifecycle-panic"] != nil {
		t.Fatal("panicking Report produced an envelope entry")
	}
}

// lifecyclePanicBackend delivers events fine but panics at the phase
// boundaries (Report), proving the instance-level half of the barrier.
type lifecyclePanicBackend struct{}

func (lifecyclePanicBackend) Name() string                                     { return "test-lifecycle-panic" }
func (lifecyclePanicBackend) OnEnter(tc capi.ThreadCtx, fn *capi.ResolvedFunc) {}
func (lifecyclePanicBackend) OnExit(tc capi.ThreadCtx, fn *capi.ResolvedFunc)  {}
func (lifecyclePanicBackend) InitCost(int) int64                               { return 0 }
func (b lifecyclePanicBackend) Events() capi.EventBackend                      { return b }
func (lifecyclePanicBackend) StartPhase(*capi.World) error                     { return nil }
func (lifecyclePanicBackend) Report() capi.Report                              { panic("test: report") }

func init() {
	capi.RegisterBackend("test-lifecycle-panic", func(capi.BackendConfig) (capi.MeasurementBackend, error) {
		return lifecyclePanicBackend{}, nil
	})
}
