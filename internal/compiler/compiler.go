// Package compiler lowers a synthetic program (internal/prog) into object
// images (internal/obj), modelling the parts of Clang/LLVM the paper's
// system interacts with:
//
//   - the inlining pass, which runs *before* the XRay machine pass — the
//     root cause of the paper's inlining-compensation problem (§V-E):
//     a fully inlined function has no sleds and usually no symbol;
//   - symbol emission: inlined functions lose their symbol unless they are
//     exported from a DSO (the paper's "symbols may be retained after
//     inlining" caveat), and hidden-visibility functions stay out of the
//     dynamic symbol table;
//   - the XRay machine pass: entry/exit sleds for every remaining function
//     whose instruction count passes the pre-filter threshold (functions
//     containing loops are always instrumented, as in real XRay);
//   - a build-time model for the recompilation-turnaround comparison of
//     §VII-A (a full OpenFOAM rebuild costs ~50 minutes).
package compiler

import (
	"fmt"

	"capi/internal/ic"
	"capi/internal/obj"
	"capi/internal/prog"
	"capi/internal/xray"
)

// Options configures a build.
type Options struct {
	// XRay enables sled insertion ("-fxray-instrument").
	XRay bool
	// XRayThreshold is the instruction-count pre-filter
	// ("-fxray-instruction-threshold"). Functions below it get no sleds
	// unless they contain a loop. Values <= 0 default to 1, matching the
	// DynCaPI workflow where every available function is prepared (§IV).
	XRayThreshold int
	// OptLevel (2 or 3) controls the auto-inlining aggressiveness.
	// Values outside {2,3} default to 2.
	OptLevel int
	// StaticIC, when set, enables the static instrumentation mode: direct
	// measurement-hook calls are compiled into exactly the listed
	// functions (CaPI's original workflow, Fig. 2 step 7).
	StaticIC *ic.Config
}

func (o Options) withDefaults() Options {
	if o.XRayThreshold <= 0 {
		o.XRayThreshold = 1
	}
	if o.OptLevel != 3 {
		o.OptLevel = 2
	}
	return o
}

// autoInlineMaxStatements returns the statement-count limit below which the
// compiler inlines functions even without the inline keyword.
func autoInlineMaxStatements(optLevel int) int {
	if optLevel >= 3 {
		return 10
	}
	return 6
}

// InstrBytesPerStatement scales statements to modelled instruction bytes.
const instrPerStatement = 3

// InstructionCount returns the modelled post-codegen instruction count of a
// function, the quantity the XRay pre-filter compares against.
func InstructionCount(f *prog.Function) int {
	return f.Statements*instrPerStatement + 8
}

// FuncLayout describes where (and whether) a function landed in the build.
type FuncLayout struct {
	Name        string
	Unit        string
	Inlined     bool   // inlined at every call site; no standalone code runs
	HasSymbol   bool   // a symbol for the function exists in some image
	EntryOffset uint64 // offset of the function within its image (if emitted)
	Size        uint64
	HasSleds    bool
	FuncID      uint32 // XRay function ID within its image (if HasSleds)
	EntrySled   int    // sled indexes within the image (if HasSleds)
	ExitSled    int
	StaticInstr bool // compiled-in measurement hooks (static mode)
}

// Build is the result of compiling a program.
type Build struct {
	Prog    *prog.Program
	Options Options
	// Images holds one image per link unit, in program unit order (the
	// executable first if the program declared it first).
	Images []*obj.Image
	// Layout maps every function name to its placement.
	Layout map[string]*FuncLayout
	// CompileSeconds is the modelled wall-clock duration of the build.
	CompileSeconds float64

	imageByName map[string]*obj.Image
}

// HasSymbol implements core.SymbolOracle over all images' full symbol
// tables (the `nm` view CaPI's inlining compensation uses, §V-E).
func (b *Build) HasSymbol(name string) bool {
	l, ok := b.Layout[name]
	return ok && l.HasSymbol
}

// Image returns the image built for the named link unit, or nil.
func (b *Build) Image(unit string) *obj.Image { return b.imageByName[unit] }

// ExecutableImage returns the image of the executable unit.
func (b *Build) ExecutableImage() *obj.Image {
	for _, im := range b.Images {
		if im.Exe {
			return im
		}
	}
	return nil
}

// PatchableImages returns the XRay-instrumented images (executable + DSOs
// built from application code). The paper's OpenFOAM case has 6 patchable
// DSOs besides the executable.
func (b *Build) PatchableImages() []*obj.Image {
	var out []*obj.Image
	for _, im := range b.Images {
		if im.Patchable {
			out = append(out, im)
		}
	}
	return out
}

// StaticPackedIDs determines the packed XRay ID of every sled-carrying
// function statically, assuming the deterministic load order LoadProcess
// produces (executable = object 0, then patchable DSOs in image order).
// This is the mapping the paper proposes shipping inside the IC so that
// hidden DSO symbols can be instrumented without run-time name resolution
// (§VI-B(a)). Functions without sleds are absent.
func (b *Build) StaticPackedIDs() (map[string]int32, error) {
	objID := map[string]uint8{}
	next := uint8(1)
	for _, im := range b.Images {
		if !im.Patchable {
			continue
		}
		if im.Exe {
			objID[im.Name] = 0
			continue
		}
		objID[im.Name] = next
		next++
	}
	out := make(map[string]int32)
	for name, lay := range b.Layout {
		if !lay.HasSleds {
			continue
		}
		oid, ok := objID[lay.Unit]
		if !ok {
			continue
		}
		packed, err := xray.PackID(oid, lay.FuncID)
		if err != nil {
			return nil, fmt.Errorf("compiler: static ID for %s: %w", name, err)
		}
		out[name] = packed
	}
	return out, nil
}

// align16 rounds up to the next multiple of 16 (function alignment).
func align16(n uint64) uint64 { return (n + 15) &^ 15 }

// Compile builds the program into object images.
func Compile(p *prog.Program, opts Options) (*Build, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: %w", err)
	}
	opts = opts.withDefaults()
	b := &Build{
		Prog:        p,
		Options:     opts,
		Layout:      make(map[string]*FuncLayout, p.NumFunctions()),
		imageByName: map[string]*obj.Image{},
	}
	autoInline := autoInlineMaxStatements(opts.OptLevel)

	// Pass 1: inlining decisions (before sled insertion, as in LLVM).
	inlined := make(map[string]bool, p.NumFunctions())
	for _, name := range p.Functions() {
		f := p.Func(name)
		u := p.Unit(f.Unit)
		if u.Kind == prog.SystemLibrary || f.StaticInit || f.Virtual || f.AddressTaken || name == p.Main {
			continue
		}
		if f.Inline || f.Statements <= autoInline {
			inlined[name] = true
		}
	}

	// Pass 2: per-unit code generation.
	for _, u := range p.Units() {
		im := &obj.Image{
			Name:      u.Name,
			Exe:       u.Kind == prog.Executable,
			Patchable: opts.XRay && u.Kind != prog.SystemLibrary,
		}
		var off uint64
		for _, name := range u.Funcs {
			f := p.Func(name)
			lay := &FuncLayout{Name: name, Unit: u.Name, Inlined: inlined[name]}
			b.Layout[name] = lay

			// An inlined function keeps an out-of-line copy (and hence a
			// symbol) only when it is exported from a DSO and is not a
			// vague-linkage (template-style) definition, whose copies are
			// discarded when all calls were inlined. The retained-copy
			// case is the caveat that makes the paper's symbol-absence
			// approximation imperfect (§V-E).
			emitCopy := !lay.Inlined ||
				(u.Kind == prog.SharedObject && f.Visibility == prog.Default && !f.VagueLinkage)
			if !emitCopy {
				continue
			}

			instr := InstructionCount(f)
			size := align16(uint64(instr)*4 + 2*obj.SledBytes)
			lay.EntryOffset = off
			lay.Size = size
			lay.HasSymbol = true
			im.Symbols = append(im.Symbols, obj.Symbol{
				Name:   name,
				Value:  off,
				Size:   size,
				Kind:   obj.SymFunc,
				Hidden: f.Visibility == prog.Hidden,
			})
			if im.Patchable && (instr >= opts.XRayThreshold || f.LoopDepth > 0) {
				id := im.NumFuncIDs
				im.NumFuncIDs++
				lay.HasSleds = true
				lay.FuncID = id
				lay.EntrySled = len(im.Sleds)
				im.Sleds = append(im.Sleds, obj.Sled{Offset: off, FuncID: id, Kind: obj.SledEntry})
				lay.ExitSled = len(im.Sleds)
				im.Sleds = append(im.Sleds, obj.Sled{Offset: off + size - obj.SledBytes, FuncID: id, Kind: obj.SledExit})
			}
			if opts.StaticIC != nil && !lay.Inlined && u.Kind != prog.SystemLibrary && opts.StaticIC.Contains(name) {
				lay.StaticInstr = true
			}
			off += size
		}
		im.TextSize = off
		if im.TextSize == 0 {
			im.TextSize = 16 // keep empty units mappable
		}
		if err := im.Finalize(); err != nil {
			return nil, fmt.Errorf("compiler: finalizing %s: %w", u.Name, err)
		}
		b.Images = append(b.Images, im)
		b.imageByName[u.Name] = im
	}

	b.CompileSeconds = buildTimeSeconds(p)
	return b, nil
}

// buildTimeSeconds models the wall-clock cost of a full (re)build: a small
// per-TU constant plus a per-statement cost. Calibrated so that LULESH
// rebuilds in tens of seconds and full-scale OpenFOAM in ~50 minutes
// (§VII-A).
func buildTimeSeconds(p *prog.Program) float64 {
	return 1.5 + 0.05*float64(len(p.TranslationUnits())) + 0.001*float64(p.TotalStatements())
}

// LoadProcess creates a process from the build: the executable is mapped
// and every shared object is loaded through the dynamic loader (firing any
// registered load hooks). System libraries are loaded too — they resolve
// symbols but are not patchable.
func (b *Build) LoadProcess() (*obj.Process, error) {
	exe := b.ExecutableImage()
	if exe == nil {
		return nil, fmt.Errorf("compiler: build has no executable image")
	}
	proc, err := obj.NewProcess(exe)
	if err != nil {
		return nil, err
	}
	for _, im := range b.Images {
		if im.Exe {
			continue
		}
		if _, err := proc.Load(im); err != nil {
			return nil, err
		}
	}
	return proc, nil
}
