package compiler

import (
	"testing"

	"capi/internal/ic"
	"capi/internal/obj"
	"capi/internal/prog"
)

// buildProg constructs a program exercising all symbol/inline/sled rules:
//
//	exe:   main (large), tiny (auto-inline), marked (inline kw, large),
//	       looper (small but has a loop), taken (small, address-taken)
//	dso:   exported_inline (inline kw, Default vis), hidden_inline
//	       (inline kw, Hidden vis), dso_fn (large), init fn (hidden)
//	sys:   MPI_Send
func buildProg(t *testing.T) *prog.Program {
	t.Helper()
	p := prog.New("app", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("lib.so", prog.SharedObject)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)

	p.MustAddFunc(&prog.Function{Name: "MPI_Send", Unit: "libmpi.so", Statements: 3})
	p.MustAddFunc(&prog.Function{
		Name: "main", Unit: "app.exe", Statements: 50,
		Ops: []prog.Op{prog.Call("tiny", 1), prog.Call("dso_fn", 1), prog.MPICall("MPI_Send", 8)},
	})
	p.MustAddFunc(&prog.Function{Name: "tiny", Unit: "app.exe", Statements: 3})
	p.MustAddFunc(&prog.Function{Name: "marked", Unit: "app.exe", Statements: 40, Inline: true})
	p.MustAddFunc(&prog.Function{Name: "looper", Unit: "app.exe", Statements: 30, LoopDepth: 2})
	p.MustAddFunc(&prog.Function{Name: "taken", Unit: "app.exe", Statements: 2, AddressTaken: true})
	p.MustAddFunc(&prog.Function{Name: "exported_inline", Unit: "lib.so", Statements: 4, Inline: true})
	p.MustAddFunc(&prog.Function{Name: "hidden_inline", Unit: "lib.so", Statements: 4, Inline: true, Visibility: prog.Hidden})
	p.MustAddFunc(&prog.Function{Name: "dso_fn", Unit: "lib.so", Statements: 60})
	p.MustAddFunc(&prog.Function{Name: "_GLOBAL__sub_I_lib", Unit: "lib.so", Statements: 5, StaticInit: true, Visibility: prog.Hidden})
	return p
}

func TestCompileInliningAndSymbols(t *testing.T) {
	b, err := Compile(buildProg(t), Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	// main: never inlined.
	if b.Layout["main"].Inlined || !b.HasSymbol("main") {
		t.Fatal("main must not be inlined")
	}
	// tiny: auto-inlined in the exe -> no symbol.
	if !b.Layout["tiny"].Inlined || b.HasSymbol("tiny") {
		t.Fatalf("tiny layout = %+v", b.Layout["tiny"])
	}
	// marked: inline keyword wins regardless of size -> inlined, no symbol.
	if !b.Layout["marked"].Inlined || b.HasSymbol("marked") {
		t.Fatal("marked should be inlined away")
	}
	// taken: address-taken suppresses inlining.
	if b.Layout["taken"].Inlined {
		t.Fatal("address-taken function must not be inlined")
	}
	// exported_inline: inlined but the DSO keeps an out-of-line copy.
	ei := b.Layout["exported_inline"]
	if !ei.Inlined || !ei.HasSymbol {
		t.Fatalf("exported_inline layout = %+v", ei)
	}
	// hidden_inline: inlined, hidden -> no copy, no symbol.
	if b.HasSymbol("hidden_inline") {
		t.Fatal("hidden inlined function should lose its symbol")
	}
	// static initializer: emitted, hidden symbol.
	im := b.Image("lib.so")
	s, ok := im.Symbol("_GLOBAL__sub_I_lib")
	if !ok || !s.Hidden {
		t.Fatalf("static init symbol = %+v, %v", s, ok)
	}
	// system library: not patchable, no sleds, symbols present.
	sys := b.Image("libmpi.so")
	if sys.Patchable || len(sys.Sleds) != 0 {
		t.Fatal("system library must not be instrumented")
	}
	if !b.HasSymbol("MPI_Send") {
		t.Fatal("system symbols must be present")
	}
}

func TestCompileSleds(t *testing.T) {
	b, err := Compile(buildProg(t), Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	exe := b.ExecutableImage()
	if exe == nil || exe.Name != "app.exe" {
		t.Fatal("executable image missing")
	}
	// Every emitted exe function gets sleds at threshold 1.
	for _, name := range []string{"main", "looper", "taken"} {
		lay := b.Layout[name]
		if !lay.HasSleds {
			t.Fatalf("%s should have sleds", name)
		}
		entry := exe.Sleds[lay.EntrySled]
		exit := exe.Sleds[lay.ExitSled]
		if entry.Kind != obj.SledEntry || exit.Kind != obj.SledExit {
			t.Fatalf("%s sled kinds wrong", name)
		}
		if entry.Offset != lay.EntryOffset {
			t.Fatalf("%s entry sled at %#x, function at %#x", name, entry.Offset, lay.EntryOffset)
		}
		if exit.Offset != lay.EntryOffset+lay.Size-obj.SledBytes {
			t.Fatalf("%s exit sled misplaced", name)
		}
		if entry.FuncID != exit.FuncID || entry.FuncID != lay.FuncID {
			t.Fatalf("%s func ids inconsistent", name)
		}
	}
	// Function IDs are dense per image.
	if exe.NumFuncIDs == 0 || int(exe.NumFuncIDs)*2 != len(exe.Sleds) {
		t.Fatalf("func ids %d vs sleds %d", exe.NumFuncIDs, len(exe.Sleds))
	}
	// Patchable images: exe + lib.so.
	if got := len(b.PatchableImages()); got != 2 {
		t.Fatalf("patchable images = %d, want 2", got)
	}
}

func TestCompileThresholdPreFilter(t *testing.T) {
	// With a high threshold, small functions lose their sleds unless they
	// contain a loop (XRay semantics).
	b, err := Compile(buildProg(t), Options{XRay: true, XRayThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.Layout["taken"].HasSleds {
		t.Fatal("small loop-free function should be pre-filtered")
	}
	if !b.Layout["looper"].HasSleds {
		t.Fatal("function with a loop must be instrumented regardless of size")
	}
	if !b.Layout["main"].HasSleds { // 50*3+8 = 158 >= 100
		t.Fatal("large function should pass the pre-filter")
	}
}

func TestCompileWithoutXRay(t *testing.T) {
	b, err := Compile(buildProg(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, im := range b.Images {
		if im.Patchable || len(im.Sleds) != 0 {
			t.Fatalf("vanilla build has sleds in %s", im.Name)
		}
	}
}

func TestCompileStaticIC(t *testing.T) {
	cfg := ic.New("app", "s", []string{"main", "tiny", "dso_fn"})
	b, err := Compile(buildProg(t), Options{XRay: false, StaticIC: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Layout["main"].StaticInstr || !b.Layout["dso_fn"].StaticInstr {
		t.Fatal("static instrumentation flags missing")
	}
	// tiny is inlined: static instrumentation cannot hook it.
	if b.Layout["tiny"].StaticInstr {
		t.Fatal("inlined function must not be statically instrumented")
	}
}

func TestCompileTimeModelScalesWithSize(t *testing.T) {
	small, err := Compile(buildProg(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := prog.New("big", "main")
	big.MustAddUnit("e", prog.Executable)
	big.MustAddFunc(&prog.Function{Name: "main", Unit: "e", Statements: 100000, TU: "m.cc"})
	bb, err := Compile(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bb.CompileSeconds <= small.CompileSeconds {
		t.Fatalf("compile time should grow with program size: %v vs %v", bb.CompileSeconds, small.CompileSeconds)
	}
}

func TestLoadProcess(t *testing.T) {
	b, err := Compile(buildProg(t), Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	objs := proc.Objects()
	if len(objs) != 3 {
		t.Fatalf("loaded objects = %d, want 3", len(objs))
	}
	if objs[0].Image.Name != "app.exe" {
		t.Fatal("executable must be first")
	}
	if proc.Object("lib.so") == nil || proc.Object("libmpi.so") == nil {
		t.Fatal("DSOs missing")
	}
}

func TestInstructionCount(t *testing.T) {
	f := &prog.Function{Statements: 10}
	if got := InstructionCount(f); got != 38 {
		t.Fatalf("InstructionCount = %d, want 38", got)
	}
}

func TestOptLevelInlining(t *testing.T) {
	p := prog.New("o", "main")
	p.MustAddUnit("e", prog.Executable)
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "e", Statements: 50})
	p.MustAddFunc(&prog.Function{Name: "mid", Unit: "e", Statements: 8}) // between O2(6) and O3(10)
	b2, err := Compile(p, Options{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Compile(p, Options{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b2.Layout["mid"].Inlined {
		t.Fatal("O2 should not inline an 8-statement function")
	}
	if !b3.Layout["mid"].Inlined {
		t.Fatal("O3 should inline an 8-statement function")
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	p := prog.New("bad", "main") // main undefined
	p.MustAddUnit("e", prog.Executable)
	if _, err := Compile(p, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}
