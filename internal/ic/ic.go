// Package ic defines the instrumentation configuration (IC): the output of
// the CaPI selection pipeline and the input of both the static
// instrumentation plugin and the DynCaPI runtime (Fig. 3 of the paper).
//
// Two on-disk representations are supported: a native JSON format carrying
// provenance, and the Score-P region-filter format the paper emits for
// compatibility with the Score-P instrumenter.
package ic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config is an instrumentation configuration: the set of functions to
// instrument, plus provenance for reports.
type Config struct {
	// App is the application the IC was computed for.
	App string `json:"app,omitempty"`
	// Spec names the selection specification that produced the IC.
	Spec string `json:"spec,omitempty"`
	// Include lists the functions to instrument, sorted.
	Include []string `json:"include"`
	// IncludeIDs optionally lists packed XRay function IDs to instrument,
	// determined statically from the build. This is the extension the
	// paper proposes for hidden DSO symbols (§VI-B(a)): the runtime can
	// patch these without resolving any name at start-up.
	IncludeIDs []int32 `json:"includeIDs,omitempty"`

	members map[string]bool
	idSet   map[int32]bool
}

// New returns a Config over the given function names (deduplicated, sorted).
func New(app, spec string, include []string) *Config {
	c := &Config{App: app, Spec: spec}
	seen := make(map[string]bool, len(include))
	for _, n := range include {
		if n != "" && !seen[n] {
			seen[n] = true
			c.Include = append(c.Include, n)
		}
	}
	sort.Strings(c.Include)
	c.members = seen
	return c
}

// Len returns the number of included functions.
func (c *Config) Len() int { return len(c.Include) }

// Contains reports whether the named function is instrumented.
func (c *Config) Contains(name string) bool {
	if c.members == nil {
		c.members = make(map[string]bool, len(c.Include))
		for _, n := range c.Include {
			c.members[n] = true
		}
	}
	return c.members[name]
}

// ContainsID reports whether the packed function ID is instrumented via
// the static ID list.
func (c *Config) ContainsID(id int32) bool {
	if c.idSet == nil {
		if len(c.IncludeIDs) == 0 {
			return false
		}
		c.idSet = make(map[int32]bool, len(c.IncludeIDs))
		for _, v := range c.IncludeIDs {
			c.idSet[v] = true
		}
	}
	return c.idSet[id]
}

// WithIDs returns a copy of the configuration whose IncludeIDs carry the
// packed IDs of every included function found in the static mapping
// (typically compiler.Build.StaticPackedIDs). Functions missing from the
// mapping (no sleds, fully inlined) are skipped. With IDs attached, the
// DynCaPI runtime can patch hidden DSO functions it cannot resolve by
// name — the §VI-B(a) extension.
func (c *Config) WithIDs(ids map[string]int32) *Config {
	out := New(c.App, c.Spec, c.Include)
	for _, name := range out.Include {
		if id, ok := ids[name]; ok {
			out.IncludeIDs = append(out.IncludeIDs, id)
		}
	}
	sort.Slice(out.IncludeIDs, func(i, j int) bool { return out.IncludeIDs[i] < out.IncludeIDs[j] })
	return out
}

// Diff compares two configurations by included function name. It returns
// the names only b includes (added) and the names only a includes (removed),
// both sorted. A nil configuration is treated as empty, so Diff(nil, cfg)
// reports every included name as added. The DynCaPI runtime uses this to
// report what a live re-selection changed.
func Diff(a, b *Config) (added, removed []string) {
	if b != nil {
		for _, n := range b.Include {
			if a == nil || !a.Contains(n) {
				added = append(added, n)
			}
		}
	}
	if a != nil {
		for _, n := range a.Include {
			if b == nil || !b.Contains(n) {
				removed = append(removed, n)
			}
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}

// WithIncludeIDs returns a copy of c whose IncludeIDs are exactly the given
// packed IDs (sorted, deduplicated). Unlike WithIDs it does not consult a
// static name→ID mapping — the adaptive controller uses it to carry the IDs
// of functions it keeps, including ones that were only ever selected by ID
// (hidden DSO symbols).
func (c *Config) WithIncludeIDs(ids []int32) *Config {
	out := New(c.App, c.Spec, c.Include)
	seen := make(map[int32]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out.IncludeIDs = append(out.IncludeIDs, id)
		}
	}
	sort.Slice(out.IncludeIDs, func(i, j int) bool { return out.IncludeIDs[i] < out.IncludeIDs[j] })
	return out
}

// WriteJSON serializes the configuration as JSON.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses a JSON configuration.
func ReadJSON(r io.Reader) (*Config, error) {
	var c Config
	if err := json.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("ic: parsing JSON config: %w", err)
	}
	out := New(c.App, c.Spec, c.Include)
	out.IncludeIDs = c.IncludeIDs
	return out, nil
}

// Score-P filter file markers.
const (
	scorepBegin = "SCOREP_REGION_NAMES_BEGIN"
	scorepEnd   = "SCOREP_REGION_NAMES_END"
)

// WriteScorePFilter writes the configuration in the Score-P region-filter
// format: everything excluded, the included functions listed explicitly.
func (c *Config) WriteScorePFilter(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# IC for app %q, spec %q (generated by capi-go)\n", c.App, c.Spec)
	fmt.Fprintln(bw, scorepBegin)
	fmt.Fprintln(bw, "  EXCLUDE *")
	for _, name := range c.Include {
		fmt.Fprintf(bw, "  INCLUDE MANGLED %s\n", name)
	}
	fmt.Fprintln(bw, scorepEnd)
	return bw.Flush()
}

// ReadScorePFilter parses a Score-P region-filter file produced by
// WriteScorePFilter (EXCLUDE-*-then-INCLUDE form).
func ReadScorePFilter(r io.Reader) (*Config, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var include []string
	inBlock := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "#"):
		case text == scorepBegin:
			if inBlock {
				return nil, fmt.Errorf("ic: line %d: nested %s", line, scorepBegin)
			}
			inBlock = true
		case text == scorepEnd:
			if !inBlock {
				return nil, fmt.Errorf("ic: line %d: %s without begin", line, scorepEnd)
			}
			inBlock = false
		case strings.HasPrefix(text, "EXCLUDE"):
			if !inBlock {
				return nil, fmt.Errorf("ic: line %d: EXCLUDE outside block", line)
			}
			// Only the EXCLUDE * form is produced/consumed here.
		case strings.HasPrefix(text, "INCLUDE"):
			if !inBlock {
				return nil, fmt.Errorf("ic: line %d: INCLUDE outside block", line)
			}
			fields := strings.Fields(text)
			name := fields[len(fields)-1]
			if name != "INCLUDE" {
				include = append(include, name)
			}
		default:
			return nil, fmt.Errorf("ic: line %d: unrecognized directive %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inBlock {
		return nil, fmt.Errorf("ic: missing %s", scorepEnd)
	}
	return New("", "", include), nil
}
