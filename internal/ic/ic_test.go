package ic

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDedupSort(t *testing.T) {
	c := New("app", "spec", []string{"b", "a", "b", "", "c"})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Include[0] != "a" || c.Include[1] != "b" || c.Include[2] != "c" {
		t.Fatalf("Include = %v", c.Include)
	}
	if !c.Contains("a") || c.Contains("z") || c.Contains("") {
		t.Fatal("Contains wrong")
	}
}

func TestContainsLazyIndex(t *testing.T) {
	c := &Config{Include: []string{"x", "y"}}
	if !c.Contains("x") || c.Contains("q") {
		t.Fatal("lazy Contains wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New("lulesh", "mpi", []string{"main", "CommSend"})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.App != "lulesh" || c2.Spec != "mpi" || c2.Len() != 2 || !c2.Contains("CommSend") {
		t.Fatalf("round trip = %+v", c2)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("nope")); err == nil {
		t.Fatal("expected error")
	}
}

func TestScorePFilterRoundTrip(t *testing.T) {
	c := New("of", "kernels", []string{"Amul", "solve", "sumProd"})
	var buf bytes.Buffer
	if err := c.WriteScorePFilter(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "SCOREP_REGION_NAMES_BEGIN") || !strings.Contains(text, "EXCLUDE *") {
		t.Fatalf("filter file malformed:\n%s", text)
	}
	c2, err := ReadScorePFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != 3 || !c2.Contains("Amul") || !c2.Contains("solve") || !c2.Contains("sumProd") {
		t.Fatalf("parsed = %v", c2.Include)
	}
}

func TestScorePFilterErrors(t *testing.T) {
	cases := []string{
		"INCLUDE foo\n",                                          // outside block
		"EXCLUDE *\n",                                            // outside block
		"SCOREP_REGION_NAMES_END\n",                              // end without begin
		"SCOREP_REGION_NAMES_BEGIN\n",                            // missing end
		"SCOREP_REGION_NAMES_BEGIN\nGARBAGE x\n",                 // unknown directive
		"SCOREP_REGION_NAMES_BEGIN\nSCOREP_REGION_NAMES_BEGIN\n", // nested
	}
	for _, src := range cases {
		if _, err := ReadScorePFilter(strings.NewReader(src)); err == nil {
			t.Errorf("ReadScorePFilter(%q) should fail", src)
		}
	}
}

func TestScorePFilterIgnoresComments(t *testing.T) {
	src := "# header\nSCOREP_REGION_NAMES_BEGIN\n  EXCLUDE *\n# c\n  INCLUDE MANGLED f\nSCOREP_REGION_NAMES_END\n"
	c, err := ReadScorePFilter(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || !c.Contains("f") {
		t.Fatalf("parsed = %v", c.Include)
	}
}

// Property: round-tripping any set of C-identifier-ish names through the
// Score-P filter format preserves membership.
func TestScorePFilterRoundTripProperty(t *testing.T) {
	sanitize := func(raw []string) []string {
		var out []string
		for _, s := range raw {
			var sb strings.Builder
			for _, r := range s {
				if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
					sb.WriteRune(r)
				}
			}
			if sb.Len() > 0 {
				out = append(out, sb.String())
			}
		}
		return out
	}
	f := func(raw []string) bool {
		names := sanitize(raw)
		c := New("a", "s", names)
		var buf bytes.Buffer
		if err := c.WriteScorePFilter(&buf); err != nil {
			return false
		}
		c2, err := ReadScorePFilter(&buf)
		if err != nil {
			return false
		}
		if c2.Len() != c.Len() {
			return false
		}
		for _, n := range c.Include {
			if !c2.Contains(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	a := New("app", "s", []string{"a", "b", "c"})
	b := New("app", "s", []string{"b", "c", "d", "e"})
	added, removed := Diff(a, b)
	if len(added) != 2 || added[0] != "d" || added[1] != "e" {
		t.Fatalf("added = %v", added)
	}
	if len(removed) != 1 || removed[0] != "a" {
		t.Fatalf("removed = %v", removed)
	}
	// nil configurations are empty sets.
	added, removed = Diff(nil, a)
	if len(added) != 3 || len(removed) != 0 {
		t.Fatalf("Diff(nil, a) = %v, %v", added, removed)
	}
	added, removed = Diff(a, nil)
	if len(added) != 0 || len(removed) != 3 {
		t.Fatalf("Diff(a, nil) = %v, %v", added, removed)
	}
	added, removed = Diff(a, a)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("Diff(a, a) = %v, %v", added, removed)
	}
}

func TestWithIncludeIDs(t *testing.T) {
	c := New("app", "s", []string{"f", "g"})
	out := c.WithIncludeIDs([]int32{9, 3, 9, 1})
	if len(out.IncludeIDs) != 3 || out.IncludeIDs[0] != 1 || out.IncludeIDs[1] != 3 || out.IncludeIDs[2] != 9 {
		t.Fatalf("IncludeIDs = %v", out.IncludeIDs)
	}
	if !out.ContainsID(3) || out.ContainsID(5) {
		t.Fatal("ContainsID wrong")
	}
	if out.Len() != 2 || !out.Contains("f") {
		t.Fatal("names not preserved")
	}
	if len(c.IncludeIDs) != 0 {
		t.Fatal("original mutated")
	}
}
