package prog

import (
	"strings"
	"testing"
)

// buildValid constructs a small well-formed program used by several tests.
func buildValid(t *testing.T) *Program {
	t.Helper()
	p := New("app", "main")
	p.MustAddUnit("app.exe", Executable)
	p.MustAddUnit("libfoo.so", SharedObject)
	p.MustAddUnit("libmpi.so", SystemLibrary)

	p.MustAddFunc(&Function{Name: "MPI_Allreduce", Unit: "libmpi.so", SystemHeader: true})
	p.MustAddFunc(&Function{
		Name: "main", Unit: "app.exe", TU: "main.cc", Statements: 10,
		Ops: []Op{Work(100), Call("compute", 2), MPICall("MPI_Allreduce", 8)},
	})
	p.MustAddFunc(&Function{
		Name: "compute", Unit: "libfoo.so", TU: "foo.cc", Statements: 30, Flops: 50, LoopDepth: 2,
		Ops: []Op{Work(500)},
	})
	return p
}

func TestValidProgram(t *testing.T) {
	p := buildValid(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumFunctions() != 3 {
		t.Fatalf("NumFunctions = %d, want 3", p.NumFunctions())
	}
	if got := p.Func("compute").Flops; got != 50 {
		t.Fatalf("compute flops = %d, want 50", got)
	}
}

func TestDuplicateUnit(t *testing.T) {
	p := New("app", "main")
	if _, err := p.AddUnit("u", Executable); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddUnit("u", SharedObject); err == nil {
		t.Fatal("expected duplicate unit error")
	}
}

func TestDuplicateFunction(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	if err := p.AddFunc(&Function{Name: "f", Unit: "u"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(&Function{Name: "f", Unit: "u"}); err == nil {
		t.Fatal("expected duplicate function error")
	}
}

func TestFunctionUnknownUnit(t *testing.T) {
	p := New("app", "main")
	if err := p.AddFunc(&Function{Name: "f", Unit: "nope"}); err == nil {
		t.Fatal("expected unknown unit error")
	}
}

func TestValidateMissingMain(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "entry point") {
		t.Fatalf("expected entry point error, got %v", err)
	}
}

func TestValidateUndefinedCallee(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	p.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{Call("ghost", 1)}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("expected undefined callee error, got %v", err)
	}
}

func TestValidateCallCounts(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	p.MustAddFunc(&Function{Name: "f", Unit: "u"})
	// A zero-count call is a legal static-only edge (see StaticCall)...
	p.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{StaticCall("f")}})
	if err := p.Validate(); err != nil {
		t.Fatalf("static-only call should validate, got %v", err)
	}
	// ...but a negative count is a generator bug.
	p2 := New("app", "main")
	p2.MustAddUnit("u", Executable)
	p2.MustAddFunc(&Function{Name: "f", Unit: "u"})
	p2.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{Call("f", -1)}})
	if err := p2.Validate(); err == nil || !strings.Contains(err.Error(), "count") {
		t.Fatalf("expected call count error, got %v", err)
	}
}

func TestValidateVirtual(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	p.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{VCall("Base::solve", 1)}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no implementations") {
		t.Fatalf("expected virtual error, got %v", err)
	}
	p.MustAddFunc(&Function{Name: "Derived::solve", Unit: "u", Virtual: true})
	p.RegisterVirtual("Base::solve", "Derived::solve")
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after registering impl: %v", err)
	}
	// A registered implementation that does not exist must be caught.
	p.RegisterVirtual("Base::solve", "Phantom::solve")
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "Phantom") {
		t.Fatalf("expected phantom impl error, got %v", err)
	}
}

func TestValidatePointerSlot(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	p.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{PtrCall("factory", 1)}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no targets") {
		t.Fatalf("expected pointer slot error, got %v", err)
	}
	p.MustAddFunc(&Function{Name: "makeSolver", Unit: "u"})
	p.RegisterPointerTarget("factory", "makeSolver", true)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate after registering target: %v", err)
	}
	if !p.StaticPointerSlots["factory"] {
		t.Fatal("factory slot should be statically resolvable")
	}
}

func TestValidateMPIRequiresDeclaredFunction(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("u", Executable)
	p.MustAddFunc(&Function{Name: "main", Unit: "u", Ops: []Op{MPICall("MPI_Barrier", 0)}})
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "MPI_Barrier") {
		t.Fatalf("expected undeclared MPI error, got %v", err)
	}
}

func TestStaticInits(t *testing.T) {
	p := New("app", "main")
	p.MustAddUnit("lib.so", SharedObject)
	p.MustAddFunc(&Function{Name: "init1", Unit: "lib.so", StaticInit: true, Visibility: Hidden})
	p.MustAddFunc(&Function{Name: "work", Unit: "lib.so"})
	p.MustAddFunc(&Function{Name: "init2", Unit: "lib.so", StaticInit: true, Visibility: Hidden})
	got := p.StaticInits("lib.so")
	if len(got) != 2 || got[0] != "init1" || got[1] != "init2" {
		t.Fatalf("StaticInits = %v", got)
	}
	if p.StaticInits("missing") != nil {
		t.Fatal("StaticInits of unknown unit should be nil")
	}
}

func TestDisplayFallback(t *testing.T) {
	f := &Function{Name: "_Z4Amulv"}
	if f.Display() != "_Z4Amulv" {
		t.Fatalf("Display fallback = %q", f.Display())
	}
	f.DisplayName = "Amul()"
	if f.Display() != "Amul()" {
		t.Fatalf("Display = %q", f.Display())
	}
}

func TestDirectCallees(t *testing.T) {
	f := &Function{Ops: []Op{
		Call("a", 1), VCall("v", 1), PtrCall("p", 1), Call("b", 3), Work(5),
	}}
	got := f.DirectCallees()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("DirectCallees = %v", got)
	}
}

func TestTranslationUnits(t *testing.T) {
	p := buildValid(t)
	tus := p.TranslationUnits()
	if len(tus) != 3 { // "", foo.cc, main.cc
		t.Fatalf("TranslationUnits = %v", tus)
	}
	if fns := p.FunctionsInTU("foo.cc"); len(fns) != 1 || fns[0] != "compute" {
		t.Fatalf("FunctionsInTU(foo.cc) = %v", fns)
	}
}

func TestTotalStatements(t *testing.T) {
	p := buildValid(t)
	if got := p.TotalStatements(); got != 40 {
		t.Fatalf("TotalStatements = %d, want 40", got)
	}
}

func TestOpConstructors(t *testing.T) {
	if op := Work(7); op.Kind != OpWork || op.Work != 7 {
		t.Fatalf("Work: %+v", op)
	}
	if op := Call("f", 3); op.Kind != OpCall || op.Callee != "f" || op.Count != 3 || op.Virtual || op.ViaPointer {
		t.Fatalf("Call: %+v", op)
	}
	if op := VCall("b", 2); !op.Virtual || op.ViaPointer {
		t.Fatalf("VCall: %+v", op)
	}
	if op := PtrCall("s", 2); !op.ViaPointer || op.Virtual {
		t.Fatalf("PtrCall: %+v", op)
	}
	if op := MPICall("MPI_Send", 64); op.Kind != OpMPI || op.MPI != "MPI_Send" || op.Bytes != 64 {
		t.Fatalf("MPICall: %+v", op)
	}
}

func TestUnitKindString(t *testing.T) {
	cases := map[UnitKind]string{
		Executable:    "executable",
		SharedObject:  "shared-object",
		SystemLibrary: "system-library",
		UnitKind(9):   "UnitKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Fatalf("UnitKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
