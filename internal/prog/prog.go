// Package prog defines the synthetic program model that stands in for the
// C++ source code of the paper's target applications (LULESH, OpenFOAM).
//
// A Program is a set of link units (one executable, any number of shared or
// system libraries), each containing functions grouped into translation
// units. Every function carries
//
//   - the static metadata the CaPI selectors operate on (statement count,
//     flops, loop depth, inline keyword, system-header origin, virtuality,
//     symbol visibility), and
//   - an executable body: an ordered list of operations (self work in
//     virtual nanoseconds, calls to other functions, MPI operations) that
//     the execution engine interprets.
//
// The compiler (internal/compiler) lowers a Program into object images with
// symbol tables and XRay sleds; MetaCG (internal/metacg) constructs the
// whole-program call graph from it.
package prog

import (
	"fmt"
	"sort"
)

// UnitKind classifies a link unit.
type UnitKind int

const (
	// Executable is the main program binary.
	Executable UnitKind = iota
	// SharedObject is a DSO built from the application's own sources and
	// therefore compiled with XRay instrumentation (patchable).
	SharedObject
	// SystemLibrary is a pre-built library (libmpi, libc, ...) that is not
	// compiled with XRay and can never be patched.
	SystemLibrary
)

func (k UnitKind) String() string {
	switch k {
	case Executable:
		return "executable"
	case SharedObject:
		return "shared-object"
	case SystemLibrary:
		return "system-library"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// Visibility is the ELF symbol visibility of a function.
type Visibility int

const (
	// Default visibility: the symbol is exported and appears in the
	// dynamic symbol table of a shared object.
	Default Visibility = iota
	// Hidden visibility: the symbol does not appear in the dynamic symbol
	// table. The paper's DynCaPI cannot resolve such functions (§VI-B).
	Hidden
)

// OpKind discriminates the operations a function body may perform.
type OpKind int

const (
	// OpWork advances the executing rank's virtual clock.
	OpWork OpKind = iota
	// OpCall invokes another function (possibly repeatedly, possibly via
	// virtual dispatch or a function pointer).
	OpCall
	// OpMPI performs a simulated MPI operation via internal/mpi.
	OpMPI
)

// Op is one operation in a function body.
type Op struct {
	Kind OpKind

	// OpWork
	Work int64 // virtual nanoseconds of self time

	// OpCall
	Callee     string // direct callee, virtual base method, or pointer slot
	Count      int    // number of consecutive invocations (>= 1)
	Virtual    bool   // virtual dispatch through base method Callee
	ViaPointer bool   // indirect call through pointer slot Callee
	// RuntimeTarget is the implementation an indirect callsite actually
	// invokes at run time (the dynamic type / stored pointer). When empty
	// the first registered implementation is used. The static call graph
	// over-approximates with edges to all implementations regardless —
	// the gap between the two is what makes OpenFOAM's 410k-node static
	// graph coexist with a small dynamic footprint.
	RuntimeTarget string

	// OpMPI
	MPI   string // MPI operation name, e.g. "MPI_Allreduce"
	Bytes int    // payload size for the cost model
}

// Work returns an operation advancing the clock by ns virtual nanoseconds.
func Work(ns int64) Op { return Op{Kind: OpWork, Work: ns} }

// Call returns an operation invoking callee count times.
func Call(callee string, count int) Op {
	return Op{Kind: OpCall, Callee: callee, Count: count}
}

// StaticCall returns a call edge that is present in the source (and hence in
// the static call graph) but never taken at run time — a call under a branch
// the workload does not exercise. Count is zero, so the execution engine
// skips it while MetaCG still records the edge.
func StaticCall(callee string) Op {
	return Op{Kind: OpCall, Callee: callee, Count: 0}
}

// VCall returns a virtual call through the base method named base; at run
// time the first implementation registered for base is invoked.
func VCall(base string, count int) Op {
	return Op{Kind: OpCall, Callee: base, Count: count, Virtual: true}
}

// VCallTo is VCall with an explicit runtime target (the dynamic type).
func VCallTo(base, target string, count int) Op {
	return Op{Kind: OpCall, Callee: base, Count: count, Virtual: true, RuntimeTarget: target}
}

// PtrCall returns an indirect call through the named pointer slot; at run
// time the first registered target is invoked.
func PtrCall(slot string, count int) Op {
	return Op{Kind: OpCall, Callee: slot, Count: count, ViaPointer: true}
}

// PtrCallTo is PtrCall with an explicit runtime target.
func PtrCallTo(slot, target string, count int) Op {
	return Op{Kind: OpCall, Callee: slot, Count: count, ViaPointer: true, RuntimeTarget: target}
}

// MPICall returns an MPI operation with the given payload size.
func MPICall(op string, bytes int) Op {
	return Op{Kind: OpMPI, MPI: op, Bytes: bytes}
}

// Function is one function definition in the synthetic program.
type Function struct {
	Name        string // unique (mangled) name, the key everywhere
	DisplayName string // demangled form for reports; defaults to Name
	TU          string // translation unit (source file)
	Unit        string // link unit name

	// Static source-level metadata used by the selection pipeline.
	Statements   int
	LOC          int
	Flops        int
	LoopDepth    int
	Cyclomatic   int
	Inline       bool // carries the `inline` keyword in the source
	SystemHeader bool // defined in a system header
	Virtual      bool // virtual member function
	AddressTaken bool // address escapes (suppresses symbol removal)
	StaticInit   bool // static initializer, run at load time
	// VagueLinkage marks implicit template instantiations and similar
	// vague-linkage definitions: when fully inlined the compiler emits no
	// out-of-line copy and hence no symbol — even when exported from a
	// DSO. Invisible to the call-graph metadata (CaPI cannot see it),
	// which is exactly why the paper's inlining compensation has to
	// approximate the inlined set from symbol absence (§V-E).
	VagueLinkage bool

	Visibility Visibility

	Ops []Op // executable body, interpreted in order
}

// Display returns the demangled display name, falling back to Name.
func (f *Function) Display() string {
	if f.DisplayName != "" {
		return f.DisplayName
	}
	return f.Name
}

// DirectCallees returns the callee names of all non-virtual, non-pointer
// call operations, in body order, without deduplication.
func (f *Function) DirectCallees() []string {
	var out []string
	for _, op := range f.Ops {
		if op.Kind == OpCall && !op.Virtual && !op.ViaPointer {
			out = append(out, op.Callee)
		}
	}
	return out
}

// Unit is a link unit (executable, DSO, or system library).
type Unit struct {
	Name  string
	Kind  UnitKind
	Funcs []string // function names in emission order
}

// Program is a complete synthetic application.
type Program struct {
	Name string
	Main string // entry function name

	units     []*Unit
	unitIndex map[string]*Unit

	funcs map[string]*Function
	order []string // insertion order, the canonical iteration order

	// VirtualImpls maps a virtual base method name to all overriding
	// implementations (the base itself included when it has a body).
	VirtualImpls map[string][]string

	// PointerTargets maps a pointer slot name to the possible targets.
	PointerTargets map[string][]string

	// StaticPointerSlots lists the slots MetaCG can resolve statically;
	// the rest need the profile-validation utility (§III-A).
	StaticPointerSlots map[string]bool
}

// New creates an empty program with the given name and entry point name.
// The entry function must be added before Validate is called.
func New(name, main string) *Program {
	return &Program{
		Name:               name,
		Main:               main,
		unitIndex:          map[string]*Unit{},
		funcs:              map[string]*Function{},
		VirtualImpls:       map[string][]string{},
		PointerTargets:     map[string][]string{},
		StaticPointerSlots: map[string]bool{},
	}
}

// AddUnit registers a link unit. Adding a unit twice is an error.
func (p *Program) AddUnit(name string, kind UnitKind) (*Unit, error) {
	if _, dup := p.unitIndex[name]; dup {
		return nil, fmt.Errorf("prog: duplicate unit %q", name)
	}
	u := &Unit{Name: name, Kind: kind}
	p.units = append(p.units, u)
	p.unitIndex[name] = u
	return u, nil
}

// MustAddUnit is AddUnit for generator code with static inputs.
func (p *Program) MustAddUnit(name string, kind UnitKind) *Unit {
	u, err := p.AddUnit(name, kind)
	if err != nil {
		//capi:panic-ok Must* helper for generators with static inputs, by contract
		panic(err)
	}
	return u
}

// AddFunc registers a function definition into its unit.
func (p *Program) AddFunc(f *Function) error {
	if f.Name == "" {
		return fmt.Errorf("prog: function with empty name")
	}
	if _, dup := p.funcs[f.Name]; dup {
		return fmt.Errorf("prog: duplicate function %q", f.Name)
	}
	u, ok := p.unitIndex[f.Unit]
	if !ok {
		return fmt.Errorf("prog: function %q references unknown unit %q", f.Name, f.Unit)
	}
	p.funcs[f.Name] = f
	p.order = append(p.order, f.Name)
	u.Funcs = append(u.Funcs, f.Name)
	return nil
}

// MustAddFunc is AddFunc for generator code with static inputs.
func (p *Program) MustAddFunc(f *Function) *Function {
	if err := p.AddFunc(f); err != nil {
		//capi:panic-ok Must* helper for generators with static inputs, by contract
		panic(err)
	}
	return f
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Function { return p.funcs[name] }

// Functions returns all functions in insertion order. The returned slice is
// shared; callers must not modify it.
func (p *Program) Functions() []string { return p.order }

// NumFunctions returns the number of function definitions.
func (p *Program) NumFunctions() int { return len(p.order) }

// Units returns the link units in registration order.
func (p *Program) Units() []*Unit { return p.units }

// Unit returns the named link unit, or nil.
func (p *Program) Unit(name string) *Unit { return p.unitIndex[name] }

// RegisterVirtual records impl as an implementation of the virtual base
// method. Implementations keep registration order.
func (p *Program) RegisterVirtual(base, impl string) {
	p.VirtualImpls[base] = append(p.VirtualImpls[base], impl)
}

// RegisterPointerTarget records target as a possible callee of the pointer
// slot. If static is true, MetaCG resolves the slot without profile help.
func (p *Program) RegisterPointerTarget(slot, target string, static bool) {
	p.PointerTargets[slot] = append(p.PointerTargets[slot], target)
	if static {
		p.StaticPointerSlots[slot] = true
	}
}

// StaticInits returns the static initializer functions of the given unit in
// emission order.
func (p *Program) StaticInits(unit string) []string {
	u := p.unitIndex[unit]
	if u == nil {
		return nil
	}
	var out []string
	for _, fn := range u.Funcs {
		if p.funcs[fn].StaticInit {
			out = append(out, fn)
		}
	}
	return out
}

// Validate checks referential integrity: the entry point exists, every call
// target resolves (directly, via virtual implementations, or via pointer
// targets), and every MPI operation names a declared function.
func (p *Program) Validate() error {
	if p.Main == "" {
		return fmt.Errorf("prog %q: no entry point", p.Name)
	}
	if p.Func(p.Main) == nil {
		return fmt.Errorf("prog %q: entry point %q not defined", p.Name, p.Main)
	}
	for _, name := range p.order {
		f := p.funcs[name]
		for i, op := range f.Ops {
			switch op.Kind {
			case OpCall:
				if op.Count < 0 {
					return fmt.Errorf("prog %q: %s op %d: negative call count %d", p.Name, name, i, op.Count)
				}
				switch {
				case op.Virtual:
					impls := p.VirtualImpls[op.Callee]
					if len(impls) == 0 {
						return fmt.Errorf("prog %q: %s calls virtual %q with no implementations", p.Name, name, op.Callee)
					}
					for _, impl := range impls {
						if p.Func(impl) == nil {
							return fmt.Errorf("prog %q: virtual %q implementation %q not defined", p.Name, op.Callee, impl)
						}
					}
					if op.RuntimeTarget != "" && p.Func(op.RuntimeTarget) == nil {
						return fmt.Errorf("prog %q: %s: runtime target %q not defined", p.Name, name, op.RuntimeTarget)
					}
				case op.ViaPointer:
					targets := p.PointerTargets[op.Callee]
					if len(targets) == 0 {
						return fmt.Errorf("prog %q: %s calls pointer slot %q with no targets", p.Name, name, op.Callee)
					}
					for _, tgt := range targets {
						if p.Func(tgt) == nil {
							return fmt.Errorf("prog %q: pointer slot %q target %q not defined", p.Name, op.Callee, tgt)
						}
					}
					if op.RuntimeTarget != "" && p.Func(op.RuntimeTarget) == nil {
						return fmt.Errorf("prog %q: %s: runtime target %q not defined", p.Name, name, op.RuntimeTarget)
					}
				default:
					if p.Func(op.Callee) == nil {
						return fmt.Errorf("prog %q: %s calls undefined function %q", p.Name, name, op.Callee)
					}
				}
			case OpMPI:
				if p.Func(op.MPI) == nil {
					return fmt.Errorf("prog %q: %s performs MPI op %q with no declared MPI function", p.Name, name, op.MPI)
				}
			case OpWork:
				if op.Work < 0 {
					return fmt.Errorf("prog %q: %s op %d: negative work", p.Name, name, i)
				}
			default:
				return fmt.Errorf("prog %q: %s op %d: unknown kind %d", p.Name, name, i, op.Kind)
			}
		}
	}
	return nil
}

// TotalStatements sums statement counts across all functions; the compiler
// uses it for its build-time model.
func (p *Program) TotalStatements() int {
	total := 0
	for _, name := range p.order {
		total += p.funcs[name].Statements
	}
	return total
}

// TranslationUnits returns the sorted set of TU names present in the program.
func (p *Program) TranslationUnits() []string {
	seen := map[string]bool{}
	for _, name := range p.order {
		seen[p.funcs[name].TU] = true
	}
	out := make([]string, 0, len(seen))
	for tu := range seen {
		out = append(out, tu)
	}
	sort.Strings(out)
	return out
}

// FunctionsInTU returns the functions defined in the given translation unit,
// in insertion order.
func (p *Program) FunctionsInTU(tu string) []string {
	var out []string
	for _, name := range p.order {
		if p.funcs[name].TU == tu {
			out = append(out, name)
		}
	}
	return out
}
