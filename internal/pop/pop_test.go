package pop

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectlyBalanced(t *testing.T) {
	m := Compute([]RankTimes{{Useful: 100, MPI: 0}, {Useful: 100, MPI: 0}})
	if !almost(m.LoadBalance, 1) || !almost(m.CommunicationEfficiency, 1) || !almost(m.ParallelEfficiency, 1) {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Elapsed != 100 || m.AvgUseful != 100 || m.MaxUseful != 100 {
		t.Fatalf("times = %+v", m)
	}
}

func TestImbalance(t *testing.T) {
	// Rank 0 computes 100, rank 1 computes 50 and waits 50 in MPI.
	m := Compute([]RankTimes{{Useful: 100, MPI: 0}, {Useful: 50, MPI: 50}})
	if !almost(m.LoadBalance, 0.75) {
		t.Fatalf("LB = %v, want 0.75", m.LoadBalance)
	}
	if !almost(m.CommunicationEfficiency, 1.0) {
		t.Fatalf("CommEff = %v, want 1.0", m.CommunicationEfficiency)
	}
	if !almost(m.ParallelEfficiency, 0.75) {
		t.Fatalf("PE = %v", m.ParallelEfficiency)
	}
}

func TestCommunicationLoss(t *testing.T) {
	// Balanced compute but both ranks spend 100 in MPI.
	m := Compute([]RankTimes{{Useful: 100, MPI: 100}, {Useful: 100, MPI: 100}})
	if !almost(m.LoadBalance, 1) {
		t.Fatalf("LB = %v", m.LoadBalance)
	}
	if !almost(m.CommunicationEfficiency, 0.5) {
		t.Fatalf("CommEff = %v, want 0.5", m.CommunicationEfficiency)
	}
	if !almost(m.ParallelEfficiency, 0.5) {
		t.Fatalf("PE = %v", m.ParallelEfficiency)
	}
}

func TestEmptyInputs(t *testing.T) {
	m := Compute(nil)
	if !almost(m.ParallelEfficiency, 1) {
		t.Fatalf("empty metrics = %+v", m)
	}
	m = Compute([]RankTimes{{}, {}})
	if !almost(m.ParallelEfficiency, 1) || m.Elapsed != 0 {
		t.Fatalf("zero-region metrics = %+v", m)
	}
}

func TestAllMPINoUseful(t *testing.T) {
	m := Compute([]RankTimes{{Useful: 0, MPI: 100}})
	if m.LoadBalance != 0 || m.CommunicationEfficiency != 0 || m.ParallelEfficiency != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestNegativeClamped(t *testing.T) {
	m := Compute([]RankTimes{{Useful: -5, MPI: 10}})
	if m.MaxUseful != 0 || m.Elapsed != 10 {
		t.Fatalf("metrics = %+v", m)
	}
}

// Multi-process merge: the fleet control plane concatenates per-member
// rank sets, so rank IDs colliding across members must stay distinct
// ranks, empty members must contribute nothing, and the negative-input
// clamping must survive the merge unchanged.

func TestMergeConcatenates(t *testing.T) {
	a := []RankTimes{{Useful: 100}, {Useful: 50, MPI: 50}}
	b := []RankTimes{{Useful: 80, MPI: 20}}
	got := Merge(a, b)
	want := []RankTimes{{Useful: 100}, {Useful: 50, MPI: 50}, {Useful: 80, MPI: 20}}
	if len(got) != len(want) {
		t.Fatalf("merged %d ranks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// The merge is a copy: mutating it must not write through to a member's
	// own report.
	got[0].Useful = 0
	if a[0].Useful != 100 {
		t.Fatal("Merge aliased a member's slice")
	}
}

func TestMergeDuplicateRankIDs(t *testing.T) {
	// Two members each report a rank 0 and a rank 1 (every MPI world
	// numbers from 0). The merged set has FOUR ranks — concatenation, never
	// positional summing — so a balanced pair plus an imbalanced pair must
	// yield the exact four-rank Compute result.
	memberA := []RankTimes{{Useful: 100}, {Useful: 100}}
	memberB := []RankTimes{{Useful: 100}, {Useful: 60, MPI: 40}}
	got := ComputeMerged(memberA, memberB)
	want := Compute([]RankTimes{{Useful: 100}, {Useful: 100}, {Useful: 100}, {Useful: 60, MPI: 40}})
	if got != want {
		t.Fatalf("merged metrics = %+v, want %+v", got, want)
	}
	// avg useful = 360/4 = 90, max = 100 → LB = 0.9 over four ranks; a
	// positional sum would have seen two ranks of 200 and 160+40.
	if !almost(got.LoadBalance, 0.9) {
		t.Fatalf("LB = %v, want 0.9 (4 distinct ranks)", got.LoadBalance)
	}
}

func TestMergeEmptyMember(t *testing.T) {
	// A member with no ranks for the region (never entered it) must not
	// dilute the averages: merging it is the identity.
	live := []RankTimes{{Useful: 100}, {Useful: 50, MPI: 50}}
	if got, want := ComputeMerged(live, nil), Compute(live); got != want {
		t.Fatalf("empty member changed metrics: %+v vs %+v", got, want)
	}
	if got, want := ComputeMerged(nil, live, []RankTimes{}), Compute(live); got != want {
		t.Fatalf("empty members changed metrics: %+v vs %+v", got, want)
	}
	// All members empty: the defined-as-1 convention of Compute holds.
	if got := ComputeMerged(nil, nil); !almost(got.ParallelEfficiency, 1) {
		t.Fatalf("all-empty merge = %+v", got)
	}
}

func TestMergeClampingPreserved(t *testing.T) {
	// A member reporting a negative accumulator (a bug upstream) is clamped
	// by Compute; the merge must feed it through unmodified so the clamping
	// semantics are identical with and without federation.
	a := []RankTimes{{Useful: -5, MPI: 10}}
	b := []RankTimes{{Useful: 20, MPI: -3}}
	got := ComputeMerged(a, b)
	want := Compute([]RankTimes{{Useful: -5, MPI: 10}, {Useful: 20, MPI: -3}})
	if got != want {
		t.Fatalf("merged metrics = %+v, want %+v", got, want)
	}
	if got.MaxUseful != 20 || got.Elapsed != 20 {
		t.Fatalf("clamping lost in merge: %+v", got)
	}
}

// Properties: metrics are within [0,1] and PE = LB × CommEff.
func TestMetricsProperties(t *testing.T) {
	f := func(raw [][2]uint32) bool {
		times := make([]RankTimes, len(raw))
		for i, r := range raw {
			times[i] = RankTimes{Useful: int64(r[0]), MPI: int64(r[1])}
		}
		m := Compute(times)
		for _, v := range []float64{m.LoadBalance, m.CommunicationEfficiency, m.ParallelEfficiency} {
			if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return math.Abs(m.ParallelEfficiency-m.LoadBalance*m.CommunicationEfficiency) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
