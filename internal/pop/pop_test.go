package pop

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectlyBalanced(t *testing.T) {
	m := Compute([]RankTimes{{Useful: 100, MPI: 0}, {Useful: 100, MPI: 0}})
	if !almost(m.LoadBalance, 1) || !almost(m.CommunicationEfficiency, 1) || !almost(m.ParallelEfficiency, 1) {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Elapsed != 100 || m.AvgUseful != 100 || m.MaxUseful != 100 {
		t.Fatalf("times = %+v", m)
	}
}

func TestImbalance(t *testing.T) {
	// Rank 0 computes 100, rank 1 computes 50 and waits 50 in MPI.
	m := Compute([]RankTimes{{Useful: 100, MPI: 0}, {Useful: 50, MPI: 50}})
	if !almost(m.LoadBalance, 0.75) {
		t.Fatalf("LB = %v, want 0.75", m.LoadBalance)
	}
	if !almost(m.CommunicationEfficiency, 1.0) {
		t.Fatalf("CommEff = %v, want 1.0", m.CommunicationEfficiency)
	}
	if !almost(m.ParallelEfficiency, 0.75) {
		t.Fatalf("PE = %v", m.ParallelEfficiency)
	}
}

func TestCommunicationLoss(t *testing.T) {
	// Balanced compute but both ranks spend 100 in MPI.
	m := Compute([]RankTimes{{Useful: 100, MPI: 100}, {Useful: 100, MPI: 100}})
	if !almost(m.LoadBalance, 1) {
		t.Fatalf("LB = %v", m.LoadBalance)
	}
	if !almost(m.CommunicationEfficiency, 0.5) {
		t.Fatalf("CommEff = %v, want 0.5", m.CommunicationEfficiency)
	}
	if !almost(m.ParallelEfficiency, 0.5) {
		t.Fatalf("PE = %v", m.ParallelEfficiency)
	}
}

func TestEmptyInputs(t *testing.T) {
	m := Compute(nil)
	if !almost(m.ParallelEfficiency, 1) {
		t.Fatalf("empty metrics = %+v", m)
	}
	m = Compute([]RankTimes{{}, {}})
	if !almost(m.ParallelEfficiency, 1) || m.Elapsed != 0 {
		t.Fatalf("zero-region metrics = %+v", m)
	}
}

func TestAllMPINoUseful(t *testing.T) {
	m := Compute([]RankTimes{{Useful: 0, MPI: 100}})
	if m.LoadBalance != 0 || m.CommunicationEfficiency != 0 || m.ParallelEfficiency != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestNegativeClamped(t *testing.T) {
	m := Compute([]RankTimes{{Useful: -5, MPI: 10}})
	if m.MaxUseful != 0 || m.Elapsed != 10 {
		t.Fatalf("metrics = %+v", m)
	}
}

// Properties: metrics are within [0,1] and PE = LB × CommEff.
func TestMetricsProperties(t *testing.T) {
	f := func(raw [][2]uint32) bool {
		times := make([]RankTimes, len(raw))
		for i, r := range raw {
			times[i] = RankTimes{Useful: int64(r[0]), MPI: int64(r[1])}
		}
		m := Compute(times)
		for _, v := range []float64{m.LoadBalance, m.CommunicationEfficiency, m.ParallelEfficiency} {
			if v < 0 || v > 1+1e-9 || math.IsNaN(v) {
				return false
			}
		}
		return math.Abs(m.ParallelEfficiency-m.LoadBalance*m.CommunicationEfficiency) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
