// Package pop computes the POP parallel-efficiency metrics TALP reports
// (Garcia-Gasulla et al.; §III-B of the paper): given per-rank useful and
// MPI times over a region, it derives load balance, communication
// efficiency and parallel efficiency.
package pop

// RankTimes is one rank's time breakdown over a monitored region.
type RankTimes struct {
	Useful int64 // virtual ns of computation
	MPI    int64 // virtual ns inside MPI calls (including waiting)
}

// Metrics is the POP efficiency breakdown. All values are in [0, 1] and
// ParallelEfficiency = LoadBalance × CommunicationEfficiency.
type Metrics struct {
	LoadBalance             float64
	CommunicationEfficiency float64
	ParallelEfficiency      float64

	AvgUseful int64 // average useful time across ranks
	MaxUseful int64 // maximum useful time across ranks
	Elapsed   int64 // max over ranks of useful+MPI — the region wall time
}

// Compute derives the POP metrics from per-rank times. With no ranks or an
// empty region all efficiencies are defined as 1 (nothing was lost).
func Compute(times []RankTimes) Metrics {
	if len(times) == 0 {
		return Metrics{LoadBalance: 1, CommunicationEfficiency: 1, ParallelEfficiency: 1}
	}
	var sumUseful, maxUseful, elapsed int64
	for _, t := range times {
		u, m := t.Useful, t.MPI
		if u < 0 {
			u = 0
		}
		if m < 0 {
			m = 0
		}
		sumUseful += u
		if u > maxUseful {
			maxUseful = u
		}
		if u+m > elapsed {
			elapsed = u + m
		}
	}
	m := Metrics{
		AvgUseful: sumUseful / int64(len(times)),
		MaxUseful: maxUseful,
		Elapsed:   elapsed,
	}
	if elapsed == 0 {
		m.LoadBalance, m.CommunicationEfficiency, m.ParallelEfficiency = 1, 1, 1
		return m
	}
	avg := float64(sumUseful) / float64(len(times))
	if maxUseful > 0 {
		m.LoadBalance = avg / float64(maxUseful)
	}
	m.CommunicationEfficiency = float64(maxUseful) / float64(elapsed)
	m.ParallelEfficiency = avg / float64(elapsed)
	return m
}
