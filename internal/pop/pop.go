// Package pop computes the POP parallel-efficiency metrics TALP reports
// (Garcia-Gasulla et al.; §III-B of the paper): given per-rank useful and
// MPI times over a region, it derives load balance, communication
// efficiency and parallel efficiency.
package pop

// RankTimes is one rank's time breakdown over a monitored region.
type RankTimes struct {
	Useful int64 // virtual ns of computation
	MPI    int64 // virtual ns inside MPI calls (including waiting)
}

// Metrics is the POP efficiency breakdown. All values are in [0, 1] and
// ParallelEfficiency = LoadBalance × CommunicationEfficiency.
type Metrics struct {
	LoadBalance             float64
	CommunicationEfficiency float64
	ParallelEfficiency      float64

	AvgUseful int64 // average useful time across ranks
	MaxUseful int64 // maximum useful time across ranks
	Elapsed   int64 // max over ranks of useful+MPI — the region wall time
}

// Merge concatenates per-process rank sets into one fleet-wide set. Ranks
// from different processes are distinct even when their per-process rank
// IDs collide — every MPI world numbers its ranks from 0 — so merging
// never sums or deduplicates by position: rank 0 of member A and rank 0 of
// member B are two ranks of the federated job. Empty sets contribute
// nothing. The result is a fresh slice; the inputs are never aliased.
func Merge(sets ...[]RankTimes) []RankTimes {
	var n int
	for _, s := range sets {
		n += len(s)
	}
	out := make([]RankTimes, 0, n)
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}

// ComputeMerged derives POP metrics over the concatenation of per-process
// rank sets — the multi-process analogue of Compute, used by the fleet
// control plane to turn many members' per-rank TALP times into one
// fleet-wide efficiency breakdown. Clamping of negative inputs follows
// Compute exactly.
func ComputeMerged(sets ...[]RankTimes) Metrics {
	return Compute(Merge(sets...))
}

// Compute derives the POP metrics from per-rank times. With no ranks or an
// empty region all efficiencies are defined as 1 (nothing was lost).
func Compute(times []RankTimes) Metrics {
	if len(times) == 0 {
		return Metrics{LoadBalance: 1, CommunicationEfficiency: 1, ParallelEfficiency: 1}
	}
	var sumUseful, maxUseful, elapsed int64
	for _, t := range times {
		u, m := t.Useful, t.MPI
		if u < 0 {
			u = 0
		}
		if m < 0 {
			m = 0
		}
		sumUseful += u
		if u > maxUseful {
			maxUseful = u
		}
		if u+m > elapsed {
			elapsed = u + m
		}
	}
	m := Metrics{
		AvgUseful: sumUseful / int64(len(times)),
		MaxUseful: maxUseful,
		Elapsed:   elapsed,
	}
	if elapsed == 0 {
		m.LoadBalance, m.CommunicationEfficiency, m.ParallelEfficiency = 1, 1, 1
		return m
	}
	avg := float64(sumUseful) / float64(len(times))
	if maxUseful > 0 {
		m.LoadBalance = avg / float64(maxUseful)
	}
	m.CommunicationEfficiency = float64(maxUseful) / float64(elapsed)
	m.ParallelEfficiency = avg / float64(elapsed)
	return m
}
