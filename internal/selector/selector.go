// Package selector implements CaPI's selector modules (§III-A): the building
// blocks of a selection pipeline. Each selector maps argument values —
// node sets, strings, numbers — to a node set over the whole-program call
// graph. The pipeline evaluator lives in internal/core; this package owns
// the individual selector semantics and the registry they are looked up in.
package selector

import (
	"fmt"
	"regexp"
	"sort"

	"capi/internal/callgraph"
)

// Value is an evaluated argument: *callgraph.Set, string, or float64.
type Value interface{}

// Context carries evaluation state shared by all selectors of a pipeline.
type Context struct {
	Graph *callgraph.Graph
}

// Func is the implementation of one selector type.
type Func func(ctx *Context, args []Value) (*callgraph.Set, error)

// Def describes a registered selector type.
type Def struct {
	Name string
	// Doc is a one-line description shown by `capi -list-selectors`.
	Doc  string
	Eval Func
}

// Registry maps selector type names to implementations.
type Registry struct {
	defs map[string]*Def
}

// NewRegistry returns a registry pre-populated with all built-in selectors.
func NewRegistry() *Registry {
	r := &Registry{defs: map[string]*Def{}}
	r.registerBuiltins()
	return r
}

// Register adds a selector definition; re-registering a name is an error.
func (r *Registry) Register(d *Def) error {
	if _, dup := r.defs[d.Name]; dup {
		return fmt.Errorf("selector: duplicate selector type %q", d.Name)
	}
	r.defs[d.Name] = d
	return nil
}

// Lookup returns the definition of the named selector type, or nil.
func (r *Registry) Lookup(name string) *Def { return r.defs[name] }

// Names returns all registered selector type names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.defs))
	for name := range r.defs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---- argument helpers ----

func argSet(name string, args []Value, i int) (*callgraph.Set, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("selector %s: missing set argument %d", name, i+1)
	}
	s, ok := args[i].(*callgraph.Set)
	if !ok {
		return nil, fmt.Errorf("selector %s: argument %d must be a selector expression", name, i+1)
	}
	return s, nil
}

func argString(name string, args []Value, i int) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("selector %s: missing string argument %d", name, i+1)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("selector %s: argument %d must be a string", name, i+1)
	}
	return s, nil
}

func argNumber(name string, args []Value, i int) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("selector %s: missing numeric argument %d", name, i+1)
	}
	n, ok := args[i].(float64)
	if !ok {
		return 0, fmt.Errorf("selector %s: argument %d must be a number", name, i+1)
	}
	return n, nil
}

// compare evaluates `a op b` for the comparison-operator strings the DSL
// uses (">=", ">", "<=", "<", "==", "!=").
func compare(a float64, op string, b float64) (bool, error) {
	switch op {
	case ">=":
		return a >= b, nil
	case ">":
		return a > b, nil
	case "<=":
		return a <= b, nil
	case "<":
		return a < b, nil
	case "==", "=":
		return a == b, nil
	case "!=":
		return a != b, nil
	default:
		return false, fmt.Errorf("selector: unknown comparison operator %q", op)
	}
}

// filterSet returns the members of in satisfying pred.
func filterSet(in *callgraph.Set, pred func(*callgraph.Node) bool) *callgraph.Set {
	out := in.Graph().NewSet()
	in.ForEach(func(n *callgraph.Node) bool {
		if pred(n) {
			out.Add(n)
		}
		return true
	})
	return out
}

// metricSelector builds a selector filtering in by `metric(node) op n`
// with the DSL calling convention metric(cmp, n, input).
func metricSelector(name, doc string, metric func(callgraph.Meta) float64) *Def {
	return &Def{
		Name: name,
		Doc:  doc,
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			op, err := argString(name, args, 0)
			if err != nil {
				return nil, err
			}
			n, err := argNumber(name, args, 1)
			if err != nil {
				return nil, err
			}
			in, err := argSet(name, args, 2)
			if err != nil {
				return nil, err
			}
			var cmpErr error
			out := filterSet(in, func(nd *callgraph.Node) bool {
				ok, err := compare(metric(nd.Meta), op, n)
				if err != nil && cmpErr == nil {
					cmpErr = err
				}
				return ok
			})
			if cmpErr != nil {
				return nil, cmpErr
			}
			return out, nil
		},
	}
}

func (r *Registry) registerBuiltins() {
	must := func(d *Def) {
		if err := r.Register(d); err != nil {
			//capi:panic-ok built-in registration at construction; a rejected Def is a build-time mistake
			panic(err)
		}
	}

	must(&Def{
		Name: "join",
		Doc:  "union of all argument sets",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("selector join: needs at least one argument")
			}
			out := ctx.Graph.NewSet()
			for i := range args {
				s, err := argSet("join", args, i)
				if err != nil {
					return nil, err
				}
				out.UnionWith(s)
			}
			return out, nil
		},
	})

	must(&Def{
		Name: "subtract",
		Doc:  "members of the first set not in the second",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			a, err := argSet("subtract", args, 0)
			if err != nil {
				return nil, err
			}
			b, err := argSet("subtract", args, 1)
			if err != nil {
				return nil, err
			}
			return a.Subtract(b), nil
		},
	})

	must(&Def{
		Name: "intersect",
		Doc:  "intersection of all argument sets",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			if len(args) == 0 {
				return nil, fmt.Errorf("selector intersect: needs at least one argument")
			}
			out, err := argSet("intersect", args, 0)
			if err != nil {
				return nil, err
			}
			out = out.Clone()
			for i := 1; i < len(args); i++ {
				s, err := argSet("intersect", args, i)
				if err != nil {
					return nil, err
				}
				out = out.Intersect(s)
			}
			return out, nil
		},
	})

	must(&Def{
		Name: "inSystemHeader",
		Doc:  "functions defined in system headers",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("inSystemHeader", args, 0)
			if err != nil {
				return nil, err
			}
			return filterSet(in, func(n *callgraph.Node) bool { return n.Meta.SystemHeader }), nil
		},
	})

	must(&Def{
		Name: "inlineSpecified",
		Doc:  "functions carrying the `inline` keyword",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("inlineSpecified", args, 0)
			if err != nil {
				return nil, err
			}
			return filterSet(in, func(n *callgraph.Node) bool { return n.Meta.Inline }), nil
		},
	})

	must(&Def{
		Name: "virtualSpecified",
		Doc:  "virtual member functions",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("virtualSpecified", args, 0)
			if err != nil {
				return nil, err
			}
			return filterSet(in, func(n *callgraph.Node) bool { return n.Meta.Virtual }), nil
		},
	})

	must(metricSelector("flops", "filter by floating-point operation count",
		func(m callgraph.Meta) float64 { return float64(m.Flops) }))
	must(metricSelector("loopDepth", "filter by maximum loop nesting depth",
		func(m callgraph.Meta) float64 { return float64(m.LoopDepth) }))
	must(metricSelector("statements", "filter by statement count",
		func(m callgraph.Meta) float64 { return float64(m.Statements) }))
	must(metricSelector("loc", "filter by lines of code",
		func(m callgraph.Meta) float64 { return float64(m.LOC) }))
	must(metricSelector("cyclomatic", "filter by cyclomatic complexity",
		func(m callgraph.Meta) float64 { return float64(m.Cyclomatic) }))

	must(&Def{
		Name: "byName",
		Doc:  "functions whose name matches the regular expression",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			pat, err := argString("byName", args, 0)
			if err != nil {
				return nil, err
			}
			in, err := argSet("byName", args, 1)
			if err != nil {
				return nil, err
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("selector byName: bad pattern %q: %w", pat, err)
			}
			return filterSet(in, func(n *callgraph.Node) bool {
				return re.MatchString(n.Name) || re.MatchString(n.Display)
			}), nil
		},
	})

	must(&Def{
		Name: "byUnit",
		Doc:  "functions defined in the named link unit",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			unit, err := argString("byUnit", args, 0)
			if err != nil {
				return nil, err
			}
			in, err := argSet("byUnit", args, 1)
			if err != nil {
				return nil, err
			}
			return filterSet(in, func(n *callgraph.Node) bool { return n.Meta.Unit == unit }), nil
		},
	})

	must(&Def{
		Name: "byTU",
		Doc:  "functions whose translation unit matches the regular expression",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			pat, err := argString("byTU", args, 0)
			if err != nil {
				return nil, err
			}
			in, err := argSet("byTU", args, 1)
			if err != nil {
				return nil, err
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("selector byTU: bad pattern %q: %w", pat, err)
			}
			return filterSet(in, func(n *callgraph.Node) bool { return re.MatchString(n.Meta.TU) }), nil
		},
	})

	must(&Def{
		Name: "callPathTo",
		Doc:  "functions on a call path from main to any function in the input",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("callPathTo", args, 0)
			if err != nil {
				return nil, err
			}
			if ctx.Graph.Main == "" {
				return nil, fmt.Errorf("selector callPathTo: call graph has no entry point")
			}
			return ctx.Graph.OnCallPath(ctx.Graph.Main, in), nil
		},
	})

	must(&Def{
		Name: "callPathFrom",
		Doc:  "functions reachable from any function in the input (input included)",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("callPathFrom", args, 0)
			if err != nil {
				return nil, err
			}
			return ctx.Graph.Reachable(in, true), nil
		},
	})

	must(&Def{
		Name: "callers",
		Doc:  "direct callers of the input functions",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("callers", args, 0)
			if err != nil {
				return nil, err
			}
			out := ctx.Graph.NewSet()
			in.ForEach(func(n *callgraph.Node) bool {
				for _, c := range n.Callers() {
					out.Add(c)
				}
				return true
			})
			return out, nil
		},
	})

	must(&Def{
		Name: "callees",
		Doc:  "direct callees of the input functions",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("callees", args, 0)
			if err != nil {
				return nil, err
			}
			out := ctx.Graph.NewSet()
			in.ForEach(func(n *callgraph.Node) bool {
				for _, c := range n.Callees() {
					out.Add(c)
				}
				return true
			})
			return out, nil
		},
	})

	must(&Def{
		Name: "coarse",
		Doc:  "prune sole-caller callees of selected functions (optional second arg: critical set to retain)",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			in, err := argSet("coarse", args, 0)
			if err != nil {
				return nil, err
			}
			var critical *callgraph.Set
			if len(args) > 1 {
				critical, err = argSet("coarse", args, 1)
				if err != nil {
					return nil, err
				}
			}
			if ctx.Graph.Main == "" {
				return nil, fmt.Errorf("selector coarse: call graph has no entry point")
			}
			return ctx.Graph.Coarse(ctx.Graph.Main, in, critical), nil
		},
	})

	must(&Def{
		Name: "statementAggregation",
		Doc:  "functions whose aggregated statement count along call chains from main reaches the threshold",
		Eval: func(ctx *Context, args []Value) (*callgraph.Set, error) {
			threshold, err := argNumber("statementAggregation", args, 0)
			if err != nil {
				return nil, err
			}
			in, err := argSet("statementAggregation", args, 1)
			if err != nil {
				return nil, err
			}
			if ctx.Graph.Main == "" {
				return nil, fmt.Errorf("selector statementAggregation: call graph has no entry point")
			}
			agg := ctx.Graph.StatementAggregation(ctx.Graph.Main)
			return filterSet(in, func(n *callgraph.Node) bool {
				return float64(agg[n.ID()]) >= threshold
			}), nil
		},
	})
}
