package selector

import (
	"strings"
	"testing"

	"capi/internal/callgraph"
)

// testGraph builds:
//
//	main -> driver -> kernel (flops 20, loop 2)
//	main -> util   (inline, 2 stmts)
//	main -> MPI_Send (system header)
//	driver -> MPI_Send
//	kernel -> helper (system header, inline)
func testGraph() *callgraph.Graph {
	g := callgraph.New("t")
	g.Main = "main"
	g.AddNode("main", callgraph.Meta{Statements: 10, Unit: "exe", TU: "main.cc"})
	g.AddNode("driver", callgraph.Meta{Statements: 6, Unit: "exe", TU: "drv.cc"})
	g.AddNode("kernel", callgraph.Meta{Statements: 40, Flops: 20, LoopDepth: 2, Cyclomatic: 5, LOC: 60, Unit: "libk.so", TU: "k.cc"})
	g.AddNode("util", callgraph.Meta{Statements: 2, Inline: true, Unit: "exe", TU: "u.h"})
	g.AddNode("MPI_Send", callgraph.Meta{SystemHeader: true, Unit: "libmpi.so"})
	g.AddNode("helper", callgraph.Meta{SystemHeader: true, Inline: true, Unit: "libk.so"})
	g.AddEdge("main", "driver")
	g.AddEdge("driver", "kernel")
	g.AddEdge("main", "util")
	g.AddEdge("main", "MPI_Send")
	g.AddEdge("driver", "MPI_Send")
	g.AddEdge("kernel", "helper")
	return g
}

func eval(t *testing.T, name string, args ...Value) *callgraph.Set {
	t.Helper()
	g := testGraph()
	// If the caller passed sets, they are bound to their own graph; for
	// convenience the helper only supports string/number prefixes plus a
	// trailing universe set.
	ctx := &Context{Graph: g}
	def := NewRegistry().Lookup(name)
	if def == nil {
		t.Fatalf("selector %q not registered", name)
	}
	vals := make([]Value, 0, len(args)+1)
	vals = append(vals, args...)
	vals = append(vals, g.UniverseSet())
	out, err := def.Eval(ctx, vals)
	if err != nil {
		t.Fatalf("eval %s: %v", name, err)
	}
	return out
}

func wantMembers(t *testing.T, s *callgraph.Set, want ...string) {
	t.Helper()
	if s.Count() != len(want) {
		t.Fatalf("got %v, want %v", s.Names(), want)
	}
	for _, n := range want {
		if !s.HasName(n) {
			t.Fatalf("got %v, missing %s", s.Names(), n)
		}
	}
}

func TestRegistryNamesAndDocs(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) < 15 {
		t.Fatalf("only %d selectors registered: %v", len(names), names)
	}
	for _, n := range names {
		if r.Lookup(n).Doc == "" {
			t.Errorf("selector %s has no doc", n)
		}
	}
	if r.Lookup("nope") != nil {
		t.Fatal("Lookup of unknown selector should be nil")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := NewRegistry()
	err := r.Register(&Def{Name: "join"})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestInSystemHeader(t *testing.T) {
	wantMembers(t, eval(t, "inSystemHeader"), "MPI_Send", "helper")
}

func TestInlineSpecified(t *testing.T) {
	wantMembers(t, eval(t, "inlineSpecified"), "util", "helper")
}

func TestMetricSelectors(t *testing.T) {
	wantMembers(t, eval(t, "flops", ">=", 10.0), "kernel")
	wantMembers(t, eval(t, "loopDepth", ">=", 1.0), "kernel")
	wantMembers(t, eval(t, "statements", ">", 6.0), "main", "kernel")
	wantMembers(t, eval(t, "loc", "==", 60.0), "kernel")
	wantMembers(t, eval(t, "cyclomatic", "!=", 0.0), "kernel")
	wantMembers(t, eval(t, "statements", "<", 3.0), "util", "MPI_Send", "helper")
	wantMembers(t, eval(t, "statements", "<=", 2.0), "util", "MPI_Send", "helper")
}

func TestCompareBadOperator(t *testing.T) {
	g := testGraph()
	def := NewRegistry().Lookup("flops")
	_, err := def.Eval(&Context{Graph: g}, []Value{"~~", 1.0, g.UniverseSet()})
	if err == nil || !strings.Contains(err.Error(), "comparison") {
		t.Fatalf("err = %v", err)
	}
}

func TestByName(t *testing.T) {
	wantMembers(t, eval(t, "byName", "^MPI_"), "MPI_Send")
	wantMembers(t, eval(t, "byName", "ker"), "kernel")
}

func TestByNameBadPattern(t *testing.T) {
	g := testGraph()
	def := NewRegistry().Lookup("byName")
	_, err := def.Eval(&Context{Graph: g}, []Value{"(", g.UniverseSet()})
	if err == nil {
		t.Fatal("expected regexp error")
	}
}

func TestByUnitAndByTU(t *testing.T) {
	wantMembers(t, eval(t, "byUnit", "libk.so"), "kernel", "helper")
	wantMembers(t, eval(t, "byTU", `\.cc$`), "main", "driver", "kernel")
}

func TestJoinSubtractIntersect(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	r := NewRegistry()
	a := g.SetOf("main", "driver")
	b := g.SetOf("driver", "kernel")

	out, err := r.Lookup("join").Eval(ctx, []Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "main", "driver", "kernel")

	out, err = r.Lookup("subtract").Eval(ctx, []Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "main")

	out, err = r.Lookup("intersect").Eval(ctx, []Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "driver")
}

func TestJoinNoArgs(t *testing.T) {
	g := testGraph()
	if _, err := NewRegistry().Lookup("join").Eval(&Context{Graph: g}, nil); err == nil {
		t.Fatal("join() should error")
	}
	if _, err := NewRegistry().Lookup("intersect").Eval(&Context{Graph: g}, nil); err == nil {
		t.Fatal("intersect() should error")
	}
}

func TestCallPathTo(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	targets := g.SetOf("MPI_Send")
	out, err := NewRegistry().Lookup("callPathTo").Eval(ctx, []Value{targets})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "main", "driver", "MPI_Send")
}

func TestCallPathToNoMain(t *testing.T) {
	g := testGraph()
	g.Main = ""
	_, err := NewRegistry().Lookup("callPathTo").Eval(&Context{Graph: g}, []Value{g.SetOf("kernel")})
	if err == nil {
		t.Fatal("expected error without entry point")
	}
}

func TestCallPathFrom(t *testing.T) {
	g := testGraph()
	out, err := NewRegistry().Lookup("callPathFrom").Eval(&Context{Graph: g}, []Value{g.SetOf("driver")})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "driver", "kernel", "MPI_Send", "helper")
}

func TestCallersCallees(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	r := NewRegistry()
	out, err := r.Lookup("callers").Eval(ctx, []Value{g.SetOf("MPI_Send")})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "main", "driver")

	out, err = r.Lookup("callees").Eval(ctx, []Value{g.SetOf("main")})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "driver", "util", "MPI_Send")
}

func TestCoarseSelector(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	in := g.SetOf("driver", "kernel")
	// kernel's only caller is driver -> pruned without a critical set.
	out, err := NewRegistry().Lookup("coarse").Eval(ctx, []Value{in})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "driver")
	// With kernel marked critical it stays.
	out, err = NewRegistry().Lookup("coarse").Eval(ctx, []Value{in, g.SetOf("kernel")})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "driver", "kernel")
}

func TestStatementAggregation(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	// Aggregates from main(10): driver 16, kernel 56, util 12.
	out, err := NewRegistry().Lookup("statementAggregation").Eval(ctx, []Value{50.0, g.UniverseSet()})
	if err != nil {
		t.Fatal(err)
	}
	wantMembers(t, out, "kernel", "helper") // helper: 56+0 via kernel
}

func TestArgumentTypeErrors(t *testing.T) {
	g := testGraph()
	ctx := &Context{Graph: g}
	r := NewRegistry()
	cases := []struct {
		sel  string
		args []Value
	}{
		{"subtract", []Value{g.UniverseSet()}},             // missing 2nd set
		{"subtract", []Value{"x", g.UniverseSet()}},        // wrong type
		{"flops", []Value{1.0, 1.0, g.UniverseSet()}},      // cmp not string
		{"flops", []Value{">=", "x", g.UniverseSet()}},     // n not number
		{"flops", []Value{">=", 1.0}},                      // missing set
		{"byName", []Value{g.UniverseSet(), "x"}},          // swapped args
		{"statementAggregation", []Value{g.UniverseSet()}}, // missing threshold
	}
	for _, c := range cases {
		if _, err := r.Lookup(c.sel).Eval(ctx, c.args); err == nil {
			t.Errorf("%s(%v) should fail", c.sel, c.args)
		}
	}
}
