// Package dyncapi implements the DynCaPI runtime (§IV, §V-C of the paper):
// the component that, at program start,
//
//  1. builds a mapping from XRay function IDs to function names for every
//     registered object — by collecting symbol addresses (nm) and
//     translating them via the process memory map, cross-checked against
//     __xray_function_address; hidden symbols of DSOs cannot be resolved
//     this way (the paper's 1,444 OpenFOAM cases, §VI-B(a));
//  2. patches the sleds of the functions selected by the instrumentation
//     configuration (or everything, for the "xray full" variant);
//  3. bridges XRay events to a measurement backend: the generic
//     cyg-profile interface, Score-P (with symbol injection so DSO
//     addresses resolve, §V-C1) or TALP (§V-C2).
//
// The accumulated virtual start-up cost is the T_init column of Table II.
package dyncapi

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"capi/internal/ic"
	"capi/internal/obj"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// ResolvedFunc is one instrumentable function as seen by the runtime.
// Always handle it by pointer: the runtime hangs per-function hot-path
// state off it.
type ResolvedFunc struct {
	PackedID int32
	Addr     uint64
	// Name is empty when the function ID could not be resolved to a
	// symbol (hidden visibility in a DSO).
	Name string

	// sample points at the function's sampling/suppression state once a
	// policy has ever been installed (nil = deliver everything, the fast
	// path). The handler loads it atomically right after the active-set
	// lookup, so changing a function's sampling rate never locks the hot
	// path. Set under Runtime.mu, never cleared back to nil — a cleared
	// policy keeps the pairing stacks so open pairs stay balanced.
	sample atomic.Pointer[funcSampleState]
}

// Backend is a measurement tool attached to the instrumentation. OnEnter
// and OnExit run inside the XRay handler on the executing rank; fn.Name may
// be empty for unresolved functions.
type Backend interface {
	Name() string
	OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc)
	OnExit(tc xray.ThreadCtx, fn *ResolvedFunc)
	// InitCost returns the backend's virtual start-up cost given the
	// number of symbols the runtime scanned.
	InitCost(symbolsScanned int) int64
}

// SymbolInjector is implemented by backends that want the DSO symbol
// mapping injected (Score-P).
type SymbolInjector interface {
	InjectSymbol(addr uint64, name string)
}

// Deselector is implemented by measurement backends that can close the
// dangling state a live re-selection leaves behind: a rank that is *inside*
// a function when Reconfigure restores its exit sled never fires that exit
// event, so without help Score-P would keep the region open on the
// simulated call stack forever and TALP would never balance the start.
//
// OnDeselect is invoked under the reconfigure lock, once per deselected
// function, after the new active set is published and the delta sleds are
// re-patched. It returns the number of dangling enters it closed (the
// synthetic exits delivered); the total is reported in
// ReconfigReport.SyntheticExits. Backends whose per-event state needs no
// closing (cyg-profile, the extrae tracer — trace completeness is asserted
// through the split drop counters instead) simply do not implement the
// interface.
type Deselector interface {
	OnDeselect(fn *ResolvedFunc) int
}

// CostModel holds the virtual-time costs of runtime initialization.
type CostModel struct {
	// PerSledResolve: determining address and name of one function ID.
	PerSledResolve int64
	// PerSymbolNM: scanning one symbol from an object file.
	PerSymbolNM int64
	// PerPatch: patching one function's sleds (mprotect amortized).
	PerPatch int64
	// Base: fixed start-up cost of the DynCaPI library itself.
	Base int64
}

// DefaultCostModel is calibrated so that full-scale OpenFOAM lands in the
// paper's T_init ballpark (seconds, §VI-C).
func DefaultCostModel() CostModel {
	return CostModel{
		PerSledResolve: 12 * vtime.Microsecond,
		PerSymbolNM:    2 * vtime.Microsecond,
		PerPatch:       12 * vtime.Microsecond,
		Base:           25 * vtime.Millisecond,
	}
}

// Options configures the runtime.
type Options struct {
	// PatchAll ignores the IC and patches every sled ("xray full").
	PatchAll bool
	Costs    CostModel
	// Ranks sizes the sampler's preallocated per-rank slots (the simulated
	// MPI world size). Rank IDs beyond it still work through a slower
	// overflow path; 0 defaults to 16.
	Ranks int
	// Async lifts the measurement backends off the dispatch hot path: the
	// handler only appends a compact event record to a per-rank ring (see
	// pipeline.go) and a consumer pool delivers the events to the backend
	// chain asynchronously. The inline path stays the default.
	Async bool
	// AsyncBuf is the per-rank ring capacity in events (rounded up to a
	// power of two); 0 defaults to DefaultAsyncBuf. When a ring fills, whole
	// enter/exit pairs are dropped and counted in DroppedAsync.
	AsyncBuf int
}

// Report summarizes what initialization did — the §VI-B facts.
type Report struct {
	Objects            int // registered patchable objects (incl. executable)
	FunctionsResolved  int
	Unresolved         int // function IDs without a resolvable symbol
	UnresolvedSelected int // of those, how many the IC asked for (0 in the paper)
	Patched            int
	PatchedByID        int // patched via static IDs despite unresolved name (§VI-B(a) extension)
	SymbolsScanned     int
	SymbolsInjected    int
	InitVirtualNs      int64 // T_init
}

// Runtime is one initialized DynCaPI instance.
//
// A Runtime is safe for concurrent use: XRay handler execution (events
// firing on every rank) may overlap with Reconfigure. The full resolution
// table (byID) is immutable after New; the handler looks up the *currently
// selected* subset through an atomically swapped map, and all mutating
// operations (Reconfigure) serialize on an internal mutex.
type Runtime struct {
	proc *obj.Process
	xr   *xray.Runtime
	opts Options

	// backend holds the attached measurement backend (possibly a Mux
	// fan-out, possibly wrapped by the adapt controller). The handler loads
	// it atomically on every event so SwapBackend can exchange the whole
	// backend set while ranks execute.
	backend atomic.Value // of backendBox

	// byID is the full function-ID → resolution table. It is built once in
	// New and never mutated afterwards, so handlers may read it lock-free.
	byID   map[int32]*ResolvedFunc
	report Report

	// dsoSyms records the DSO function symbols scanned at initialization so
	// a backend swapped in later (SwapBackend) can have them injected the
	// same way the start-up backend did.
	dsoSyms []dsoSym

	// mu serializes configuration changes (Reconfigure, SwapBackend) and
	// guards cfg and the reconfiguration counters.
	mu         sync.Mutex
	cfg        *ic.Config //capi:guardedby mu
	reconfigs  int        //capi:guardedby mu
	reconfigNs int64      //capi:guardedby mu

	// active holds the map[int32]*ResolvedFunc of currently selected
	// functions. The handler loads it atomically on every event;
	// Reconfigure swaps in a fresh map (copy-on-write), so in-flight events
	// for freshly deselected functions are dropped instead of racing the
	// sled rewrite.
	active atomic.Value

	// deselected holds the map[int32]struct{} of functions removed by the
	// most recent Reconfigure, so the handler can tell a deselected
	// in-flight drop apart from a spurious event for an unpatched-but-known
	// function. Swapped atomically alongside active.
	deselected atomic.Value

	// droppedInFlight counts events that arrived for functions removed by
	// the latest re-selection — the window between publishing the new
	// active set and the sled restore taking effect. droppedUnpatched
	// counts events for known functions outside both the active set and
	// that window (a sled hit that should not have happened). The split
	// lets trace completeness be asserted: dispatched events ==
	// delivered + droppedInFlight + droppedUnpatched.
	droppedInFlight  atomic.Int64
	droppedUnpatched atomic.Int64

	// synthExits accumulates the synthetic exits delivered through the
	// Deselector hook across all reconfigurations; synthByBackend breaks
	// them down per backend name (both guarded by mu).
	synthExits     int64            //capi:guardedby mu
	synthByBackend map[string]int64 //capi:guardedby mu

	// Sampling state (see sampler.go). samplePolicies holds the explicit
	// per-ID overrides and sampleDefault the table's default policy (both
	// guarded by mu); defaultSample publishes the default to the handler,
	// which materializes per-function state lazily on a function's first
	// event — a table-wide default never allocates for functions that
	// never fire. sampleRanks sizes the preallocated per-rank slots.
	samplePolicies map[int32]SamplePolicy //capi:guardedby mu
	sampleDefault  *SamplePolicy          //capi:guardedby mu
	defaultSample  atomic.Pointer[SamplePolicy]
	sampleRanks    int

	// pipe is the asynchronous event pipeline (nil in inline mode). Set in
	// New before the handler is installed and never reassigned, so handlers
	// and accessors may read it without synchronization.
	pipe *pipeline
}

// backendBox wraps the backend interface value for atomic.Value, which
// requires a consistent concrete type across stores.
type backendBox struct{ b Backend }

// dsoSym is one scanned DSO function symbol, kept for late injection.
type dsoSym struct {
	addr uint64
	name string
}

// New initializes DynCaPI: it resolves function IDs, patches according to
// the IC (passed via the CAPI_IC environment variable in the real tool) and
// installs the event handler. The world has not started yet — this models
// the patching at program start, before main runs.
func New(proc *obj.Process, xr *xray.Runtime, cfg *ic.Config, backend Backend, opts Options) (*Runtime, error) {
	if proc == nil || xr == nil || backend == nil {
		return nil, fmt.Errorf("dyncapi: process, xray runtime and backend are required")
	}
	if cfg == nil && !opts.PatchAll {
		return nil, fmt.Errorf("dyncapi: an instrumentation configuration is required unless PatchAll is set")
	}
	if opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCostModel()
	}
	if opts.Ranks <= 0 {
		opts.Ranks = 16
	}
	rt := &Runtime{
		proc:           proc,
		xr:             xr,
		cfg:            cfg,
		opts:           opts,
		byID:           map[int32]*ResolvedFunc{},
		synthByBackend: map[string]int64{},
		sampleRanks:    opts.Ranks,
	}
	rt.backend.Store(backendBox{backend})
	if err := rt.resolve(); err != nil {
		return nil, err
	}
	if err := rt.patch(); err != nil {
		return nil, err
	}
	rt.report.InitVirtualNs += opts.Costs.Base
	rt.report.InitVirtualNs += backend.InitCost(rt.report.SymbolsScanned)
	if opts.Async {
		rt.pipe = newPipeline(rt, opts.Ranks, opts.AsyncBuf)
	}
	rt.installHandler()
	return rt, nil
}

// loadBackend returns the currently attached backend.
func (rt *Runtime) loadBackend() Backend {
	return rt.backend.Load().(backendBox).b
}

// backendUnwrapper is implemented by bridge backends (the adaptive
// controller) that wrap the real measurement backend.
type backendUnwrapper interface {
	Inner() Backend
}

// symbolInjectors finds every SymbolInjector in the backend graph, looking
// through bridge backends (the adapt controller) and fan-outs (Mux) so
// wrapping or multiplexing (e.g. the controller around a talp+scorep mux)
// does not silently disable DSO symbol injection for any consumer.
func symbolInjectors(b Backend) []SymbolInjector {
	var out []SymbolInjector
	walkBackends(b, func(b Backend) {
		if inj, ok := b.(SymbolInjector); ok {
			out = append(out, inj)
		}
	})
	return out
}

// walkBackends visits every backend in the graph rooted at b: b itself,
// the inner backend of every bridge (backendUnwrapper) and the children of
// every fan-out (Mux), depth-first in delivery order.
func walkBackends(b Backend, visit func(Backend)) {
	for b != nil {
		visit(b)
		if f, ok := b.(fanout); ok {
			for _, c := range f.Children() {
				walkBackends(c, visit)
			}
			return
		}
		w, ok := b.(backendUnwrapper)
		if !ok {
			return
		}
		b = w.Inner()
	}
}

// namedDeselector pairs a Deselector with the backend name it belongs to,
// for the per-backend synthetic-exit accounting.
type namedDeselector struct {
	name string
	ds   Deselector
}

// deselectors collects every Deselector in the backend graph, named.
func deselectors(b Backend) []namedDeselector {
	var out []namedDeselector
	walkBackends(b, func(b Backend) {
		if ds, ok := b.(Deselector); ok {
			out = append(out, namedDeselector{b.Name(), ds})
		}
	})
	return out
}

// resolve builds the function-ID → name mapping per object. The executable
// is resolved from its full symbol table; DSOs only expose their dynamic
// symbols, so hidden functions stay unresolved (§VI-B(a)).
func (rt *Runtime) resolve() error {
	injectors := symbolInjectors(rt.loadBackend())
	for objID, lo := range rt.xr.Objects() {
		rt.report.Objects++
		var syms []obj.Symbol
		if lo.Image.Exe {
			syms = lo.Image.NM()
		} else {
			syms = lo.Image.DynSyms()
		}
		byOffset := make(map[uint64]string, len(syms))
		for _, s := range syms {
			if s.Kind != obj.SymFunc {
				continue
			}
			byOffset[s.Value] = s.Name
			rt.report.SymbolsScanned++
			if !lo.Image.Exe {
				// Recorded even when no injector is attached yet: a backend
				// swapped in later gets the same injection replayed.
				rt.dsoSyms = append(rt.dsoSyms, dsoSym{addr: lo.Base + s.Value, name: s.Name})
				for _, injector := range injectors {
					injector.InjectSymbol(lo.Base+s.Value, s.Name)
					rt.report.SymbolsInjected++
				}
			}
		}
		// Ground truth (full symbol table) — used only to *verify* that no
		// selected function is among the unresolvable ones, the check the
		// paper performs in §VI-B(a). DynCaPI itself cannot use it.
		truth := make(map[uint64]string)
		//capi:unguarded-ok resolve runs inside New, before the runtime is published to any other goroutine
		if rt.cfg != nil && !lo.Image.Exe {
			for _, s := range lo.Image.NM() {
				if s.Kind == obj.SymFunc {
					truth[s.Value] = s.Name
				}
			}
		}
		rt.report.InitVirtualNs += int64(len(syms)) * rt.opts.Costs.PerSymbolNM

		for fn := uint32(0); fn < lo.Image.NumFuncIDs; fn++ {
			packed, err := xray.PackID(objID, fn)
			if err != nil {
				return fmt.Errorf("dyncapi: object %q: %w", lo.Image.Name, err)
			}
			addr, err := rt.xr.FunctionAddress(packed)
			if err != nil {
				return fmt.Errorf("dyncapi: resolving %q fn %d: %w", lo.Image.Name, fn, err)
			}
			rf := &ResolvedFunc{PackedID: packed, Addr: addr}
			if name, ok := byOffset[addr-lo.Base]; ok {
				rf.Name = name
				rt.report.FunctionsResolved++
			} else {
				rt.report.Unresolved++
				//capi:unguarded-ok resolve runs inside New, before the runtime is published to any other goroutine
				if trueName, ok := truth[addr-lo.Base]; ok && rt.cfg != nil && rt.cfg.Contains(trueName) {
					rt.report.UnresolvedSelected++
				}
			}
			rt.byID[packed] = rf
			rt.report.InitVirtualNs += rt.opts.Costs.PerSledResolve
		}
	}
	return nil
}

// wantSet computes the subset of resolved functions the given configuration
// selects. A function is selected either by resolved name or — the §VI-B(a)
// extension — by a statically determined packed ID carried in the IC, which
// also covers hidden DSO symbols that name resolution cannot reach.
func (rt *Runtime) wantSet(cfg *ic.Config, patchAll bool) map[int32]*ResolvedFunc {
	want := make(map[int32]*ResolvedFunc)
	for packed, rf := range rt.byID {
		w := patchAll
		if !w && cfg != nil {
			w = cfg.ContainsID(packed) || (rf.Name != "" && cfg.Contains(rf.Name))
		}
		if w {
			want[packed] = rf
		}
	}
	return want
}

func sortedIDs(set map[int32]*ResolvedFunc) []int32 {
	ids := make([]int32, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// patch applies the initial IC (or patches everything) in one coalesced
// batch and publishes the active set.
func (rt *Runtime) patch() error {
	//capi:unguarded-ok patch runs inside New, before the runtime is published to any other goroutine
	want := rt.wantSet(rt.cfg, rt.opts.PatchAll)
	ids := sortedIDs(want)
	if len(ids) > 0 {
		if _, err := rt.xr.PatchBatch(ids, true); err != nil {
			return fmt.Errorf("dyncapi: patching %d functions: %w", len(ids), err)
		}
	}
	for _, id := range ids {
		if want[id].Name == "" {
			rt.report.PatchedByID++
		}
	}
	rt.report.Patched = len(ids)
	rt.report.InitVirtualNs += int64(len(ids)) * rt.opts.Costs.PerPatch
	rt.active.Store(want)
	return nil
}

func (rt *Runtime) installHandler() {
	if rt.pipe != nil {
		rt.xr.SetHandler(rt.dispatchAsync)
		return
	}
	rt.xr.SetHandler(rt.dispatch)
}

// dispatch is the XRay event handler — the per-event hot path: active-set
// lookup, drop classification, sampler admission, backend delivery. Two
// atomic loads plus two map reads on the fast path; everything it calls
// stays allocation- and lock-free (the lint hotpath analyzer walks it from
// this annotation).
//
//capi:hotpath
func (rt *Runtime) dispatch(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	rf := m[id]
	if rf == nil {
		if rt.byID[id] != nil {
			if d, _ := rt.deselected.Load().(map[int32]struct{}); d != nil {
				if _, ok := d[id]; ok {
					rt.droppedInFlight.Add(1)
					return
				}
			}
			rt.droppedUnpatched.Add(1)
		}
		return
	}
	// The sampling/suppression stage: two atomic loads on the fast
	// (no-policy) path; with a policy installed, the per-rank decision
	// logic drops sampled-out / suppressed / collapsed pairs before
	// they reach the backend chain. A table-wide default policy is
	// materialized into per-function state here, on the function's
	// first event (lazySampleState), so installing a default never
	// allocates for functions that never fire.
	st := rf.sample.Load()
	if st == nil {
		if dp := rt.defaultSample.Load(); dp != nil {
			st = rt.lazySampleState(rf, dp)
		}
	}
	if st != nil && !st.admit(tc, kind) {
		return
	}
	backend := rt.loadBackend()
	if kind == xray.Entry {
		backend.OnEnter(tc, rf)
	} else {
		backend.OnExit(tc, rf)
	}
}

// dispatchAsync is the XRay event handler in async mode: the same active-set
// lookup, drop classification and sampler admission as dispatch, but instead
// of running the backend chain it appends a fixed-size record to the rank's
// ring (pipeline.go) and returns — the backends consume off the hot path.
// The sampling decision is still made here, synchronously, so the pairing
// stacks see every event in program order and the conservation identity
// survives asynchrony.
//
//capi:hotpath
func (rt *Runtime) dispatchAsync(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	rf := m[id]
	if rf == nil {
		if rt.byID[id] != nil {
			if d, _ := rt.deselected.Load().(map[int32]struct{}); d != nil {
				if _, ok := d[id]; ok {
					rt.droppedInFlight.Add(1)
					return
				}
			}
			rt.droppedUnpatched.Add(1)
		}
		return
	}
	st := rf.sample.Load()
	if st == nil {
		if dp := rt.defaultSample.Load(); dp != nil {
			st = rt.lazySampleState(rf, dp)
		}
	}
	if st != nil && !st.admit(tc, kind) {
		return
	}
	rt.pipe.append(tc, rf, kind)
}

// ReconfigReport summarizes one live re-selection (Reconfigure call).
type ReconfigReport struct {
	// Seq is the 1-based reconfiguration sequence number.
	Seq int
	// Patched and Unpatched count the functions whose sleds changed state —
	// the delta between the old and new selection. Kept counts selected
	// functions whose sleds were left untouched.
	Patched   int
	Unpatched int
	Kept      int
	// Active is the selection size after the reconfiguration.
	Active int
	// AddedNames and RemovedNames are the name-level IC diff.
	AddedNames   []string
	RemovedNames []string
	// Batch is the XRay patching work this reconfiguration performed (only
	// delta sleds, under coalesced mprotect windows).
	Batch xray.Stats
	// SyntheticExits counts the dangling enters the measurement backends
	// closed for deselected functions through the Deselector hook — ranks
	// that were inside a function when its exit sled was restored.
	SyntheticExits int
	// SyntheticExitsByBackend breaks SyntheticExits down per backend name:
	// one entry per Deselector in the attached backend graph (a Mux fan-out
	// delivers — and counts — per child). Empty when nothing was closed.
	SyntheticExitsByBackend map[string]int `json:"SyntheticExitsByBackend,omitempty"`
	// Sampling carries the sampler's aggregate counters at the time of the
	// re-selection (nil when no sampling policy is installed). Mid-phase
	// the values may lag the hot path by up to one publication window.
	Sampling *SamplingCounters `json:"Sampling,omitempty"`
	// DroppedAsync is the cumulative count of enter/exit pairs the async
	// pipeline rejected under back-pressure, as of this re-selection
	// (0 in inline mode).
	DroppedAsync int64 `json:"DroppedAsync,omitempty"`
	// VirtualNs is the virtual-time cost of the re-patch per the CostModel.
	VirtualNs int64
}

// Reconfigure applies a new instrumentation configuration to the running
// instance without tearing anything down: it diffs the currently selected
// set against the new IC and re-patches only the delta, in coalesced
// batches. The new active set is published to the event handler *before*
// sleds change, so events for deselected functions stop being delivered
// immediately (in-flight sled hits are counted in DroppedEvents).
// Reconfigure is safe to call while handlers execute on other ranks; it
// always replaces a PatchAll selection.
//
// A rank that is *inside* a deselected function when its exit sled is
// restored never fires that exit event (the same is true of real XRay
// unpatching). This used to leak: Score-P kept the region open on the
// simulated call stack forever and TALP never balanced the start. Backends
// implementing Deselector now receive an OnDeselect call per removed
// function — under the reconfigure lock, after the sleds changed — and
// close those dangling enters with synthetic exits; the count is reported
// in ReconfigReport.SyntheticExits. Events still in flight during the
// active-set swap are dropped and counted in DroppedInFlight.
func (rt *Runtime) Reconfigure(cfg *ic.Config) (ReconfigReport, error) {
	if cfg == nil {
		return ReconfigReport{}, fmt.Errorf("dyncapi: reconfigure requires an instrumentation configuration")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()

	want := rt.wantSet(cfg, false)
	cur, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	var toPatch, toUnpatch []int32
	kept := 0
	for id := range want {
		if _, ok := cur[id]; ok {
			kept++
		} else {
			toPatch = append(toPatch, id)
		}
	}
	for id := range cur {
		if _, ok := want[id]; !ok {
			toUnpatch = append(toUnpatch, id)
		}
	}
	sort.Slice(toPatch, func(i, j int) bool { return toPatch[i] < toPatch[j] })
	sort.Slice(toUnpatch, func(i, j int) bool { return toUnpatch[i] < toUnpatch[j] })

	rep := ReconfigReport{
		Patched:   len(toPatch),
		Unpatched: len(toUnpatch),
		Kept:      kept,
		Active:    len(want),
	}
	rep.AddedNames, rep.RemovedNames = ic.Diff(rt.cfg, cfg)

	// Publish the new selection first: deselected functions go silent now,
	// newly selected ones only produce events once their sleds are patched.
	// The deselected set is published before the active set so a handler
	// observing the new selection always classifies a straggler as an
	// in-flight drop, never as a spurious sled hit.
	desel := make(map[int32]struct{}, len(toUnpatch))
	for _, id := range toUnpatch {
		desel[id] = struct{}{}
	}
	rt.deselected.Store(desel)
	rt.active.Store(want)
	if len(toUnpatch) > 0 {
		d, err := rt.xr.PatchBatch(toUnpatch, false)
		rep.Batch.Add(d)
		if err != nil {
			return rep, fmt.Errorf("dyncapi: unpatching %d functions: %w", len(toUnpatch), err)
		}
	}
	if len(toPatch) > 0 {
		d, err := rt.xr.PatchBatch(toPatch, true)
		rep.Batch.Add(d)
		if err != nil {
			return rep, fmt.Errorf("dyncapi: patching %d functions: %w", len(toPatch), err)
		}
	}
	rep.VirtualNs = int64(len(toPatch)+len(toUnpatch)) * rt.opts.Costs.PerPatch

	// In async mode, drain the pipeline before closing dangling state:
	// deselected functions went silent when the new active set was published
	// above, so waiting for the rings to empty guarantees every already
	// dispatched event has reached the backends before their synthetic exits
	// are delivered — otherwise a queued real exit could arrive after the
	// synthetic one that closed its frame.
	if rt.pipe != nil && len(toUnpatch) > 0 {
		rt.pipe.drain()
	}

	// Deliver synthetic exits for ranks caught inside a deselected
	// function: the sleds are restored, so no real exit can arrive anymore.
	// Every Deselector in the backend graph (the adapt controller may wrap
	// the measurement backend; a Mux fans out to several) gets to close its
	// dangling state, and the closures are counted per backend.
	if len(toUnpatch) > 0 {
		dss := deselectors(rt.loadBackend())
		for _, id := range toUnpatch {
			for _, nd := range dss {
				if n := nd.ds.OnDeselect(rt.byID[id]); n > 0 {
					rep.SyntheticExits += n
					if rep.SyntheticExitsByBackend == nil {
						rep.SyntheticExitsByBackend = map[string]int{}
					}
					rep.SyntheticExitsByBackend[nd.name] += n
				}
			}
		}
		rt.synthExits += int64(rep.SyntheticExits)
		for name, n := range rep.SyntheticExitsByBackend {
			rt.synthByBackend[name] += int64(n)
		}
	}

	rt.cfg = cfg
	rt.opts.PatchAll = false
	rt.reconfigs++
	rt.reconfigNs += rep.VirtualNs
	rep.Seq = rt.reconfigs
	if rt.pipe != nil {
		rep.DroppedAsync = rt.pipe.dropped()
	}
	if rt.sampleDefault != nil || len(rt.samplePolicies) > 0 {
		var c SamplingCounters
		for _, st := range rt.sampleStatesSnapshot() {
			c.add(st.counters())
		}
		rep.Sampling = &c
	}
	return rep, nil
}

// Report returns the initialization summary.
func (rt *Runtime) Report() Report { return rt.report }

// Snapshot is a point-in-time view of the runtime's live counters, taken
// under the reconfigure lock so the mutually dependent fields (reconfigs,
// synthetic exits, accumulated re-patch cost) are consistent with each
// other. It is what remote observers (the HTTP control plane) scrape while
// ranks execute.
type Snapshot struct {
	// Active is the current selection size; Patched is the start-up count.
	Active  int
	Patched int
	// Reconfigs counts applied live re-selections; ReconfigVirtualNs their
	// accumulated virtual re-patch cost.
	Reconfigs         int
	ReconfigVirtualNs int64
	// SyntheticExits counts dangling enters closed through the Deselector
	// hook across all re-selections and backend swaps; SyntheticExitsByBackend
	// is the per-backend-name breakdown.
	SyntheticExits          int64
	SyntheticExitsByBackend map[string]int64
	// DroppedInFlight / DroppedUnpatched are the split drop counters.
	DroppedInFlight  int64
	DroppedUnpatched int64
	// Async reports whether the asynchronous event pipeline is attached.
	// AsyncDepth is the number of events currently queued in the per-rank
	// rings, DroppedAsync the pairs rejected by back-pressure (ring full)
	// and DroppedAsyncByRank its per-rank breakdown (nil when inline).
	// DroppedAsyncOrphanExits counts exits without a recorded enter (sled
	// patched mid-call) rejected at a full ring — kept out of DroppedAsync
	// because the conservation identity is stated in enter units.
	Async                   bool
	AsyncDepth              int64
	DroppedAsync            int64
	DroppedAsyncByRank      []int64 `json:",omitempty"`
	DroppedAsyncOrphanExits int64   `json:",omitempty"`
	// AsyncBuf is the effective per-rank ring capacity in events (the
	// configured value rounded up to a power of two; 0 when inline) — the
	// base the control plane's ring-sizing hint doubles from.
	AsyncBuf int `json:",omitempty"`
	// Sampling is the sampler's point-in-time view (policies + counters).
	Sampling SamplingSnapshot
	// InitVirtualNs is T_init.
	InitVirtualNs int64
}

// Snapshot returns a consistent view of the live counters. Safe to call
// concurrently with handler execution and Reconfigure.
func (rt *Runtime) Snapshot() Snapshot {
	rt.mu.Lock()
	snap := Snapshot{
		Reconfigs:         rt.reconfigs,
		ReconfigVirtualNs: rt.reconfigNs,
		SyntheticExits:    rt.synthExits,
	}
	if len(rt.synthByBackend) > 0 {
		snap.SyntheticExitsByBackend = make(map[string]int64, len(rt.synthByBackend))
		for name, n := range rt.synthByBackend {
			snap.SyntheticExitsByBackend[name] = n
		}
	}
	rt.mu.Unlock()
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	snap.Active = len(m)
	snap.Patched = rt.report.Patched
	snap.InitVirtualNs = rt.report.InitVirtualNs
	snap.DroppedInFlight = rt.droppedInFlight.Load()
	snap.DroppedUnpatched = rt.droppedUnpatched.Load()
	if rt.pipe != nil {
		snap.Async = true
		snap.AsyncDepth = rt.pipe.depthNow()
		snap.DroppedAsync = rt.pipe.dropped()
		snap.DroppedAsyncByRank = rt.pipe.droppedByRank()
		snap.DroppedAsyncOrphanExits = rt.pipe.droppedOrphanExits()
		snap.AsyncBuf = rt.pipe.ringCap()
	}
	snap.Sampling = rt.SamplingSnapshot()
	return snap
}

// Backend returns the currently attached measurement backend (a *Mux when
// several are attached, the adapt controller when adaptation wraps them).
func (rt *Runtime) Backend() Backend { return rt.loadBackend() }

// BackendSwapReport summarizes one live backend-set swap (SwapBackend).
type BackendSwapReport struct {
	// From and To name the detached and the newly attached backend.
	From string `json:"from"`
	To   string `json:"to"`
	// SyntheticExits counts the dangling enters the *detached* backends
	// closed when they let go of the event stream (ranks currently inside
	// an active function would never balance their enter on the old
	// backend); SyntheticExitsByBackend is the per-backend breakdown.
	SyntheticExits          int            `json:"syntheticExits"`
	SyntheticExitsByBackend map[string]int `json:"syntheticExitsByBackend,omitempty"`
	// VirtualNs is the virtual start-up cost of the new backend set.
	VirtualNs int64 `json:"virtualNs"`
}

// backendIdentitySet collects the identity of every node in the backend
// graph rooted at b, for SwapBackend's departure/arrival diff. Nodes whose
// dynamic type is not comparable are skipped — they always diff as
// departing/arriving, the conservative pre-diff behavior.
func backendIdentitySet(b Backend) map[any]bool {
	set := map[any]bool{}
	walkBackends(b, func(c Backend) {
		if reflect.TypeOf(c).Comparable() {
			set[c] = true
		}
	})
	return set
}

// SwapBackend exchanges the attached measurement backend set while the
// runtime is live: the patched sleds are untouched, the handler simply
// starts delivering events to the new backend (atomically — events in
// flight finish on the old one). The swap diffs the two chains by node
// identity: a backend present in both (a partial swap that keeps some of
// a mux's children) keeps its state untouched. Every *departing*
// Deselector closes its open state for every currently active function,
// exactly like a deselection would — an enter recorded by a backend that
// is being detached can never be balanced by it later. Every *arriving*
// SymbolInjector gets the scanned DSO symbols injected, and only arriving
// leaves charge their virtual start-up cost into VirtualNs.
func (rt *Runtime) SwapBackend(b Backend) (BackendSwapReport, error) {
	if b == nil {
		return BackendSwapReport{}, fmt.Errorf("dyncapi: nil backend")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()

	old := rt.loadBackend()
	rep := BackendSwapReport{From: old.Name(), To: b.Name()}
	keep := backendIdentitySet(b)
	oldSet := backendIdentitySet(old)
	// In async mode, drain before the swap so every event queued for the old
	// backend set is delivered to it; events appended after the drain land on
	// whichever backend the consumer loads at delivery time, the same
	// in-flight window the inline path tolerates.
	if rt.pipe != nil {
		rt.pipe.drain()
	}
	// Publish the new backend *before* closing the old set's state: from
	// here on new events go to the new backend, so the close loop below
	// races only against truly in-flight handler calls (the same window the
	// re-selection path tolerates), not against every event dispatched
	// while N OnDeselect calls run.
	rt.backend.Store(backendBox{b})
	active, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	for _, nd := range deselectors(old) {
		if keep[any(nd.ds)] {
			// Staying attached: its open state remains live in the new chain.
			continue
		}
		for _, rf := range active {
			if n := nd.ds.OnDeselect(rf); n > 0 {
				rep.SyntheticExits += n
				if rep.SyntheticExitsByBackend == nil {
					rep.SyntheticExitsByBackend = map[string]int{}
				}
				rep.SyntheticExitsByBackend[nd.name] += n
			}
		}
	}
	rt.synthExits += int64(rep.SyntheticExits)
	for name, n := range rep.SyntheticExitsByBackend {
		rt.synthByBackend[name] += int64(n)
	}

	for _, injector := range symbolInjectors(b) {
		if oldSet[any(injector)] {
			// Already attached before the swap: injected at its own attach.
			continue
		}
		for _, s := range rt.dsoSyms {
			injector.InjectSymbol(s.addr, s.name)
		}
	}
	// Start-up cost: only arriving leaves pay. Fan-outs and bridges are
	// skipped so a mux's children are not charged twice (Mux.InitCost sums
	// them already).
	walkBackends(b, func(c Backend) {
		if _, isFan := c.(fanout); isFan {
			return
		}
		if _, isBridge := c.(backendUnwrapper); isBridge {
			return
		}
		if reflect.TypeOf(c).Comparable() && oldSet[c] {
			return
		}
		rep.VirtualNs += c.InitCost(rt.report.SymbolsScanned)
	})
	return rep, nil
}

// Resolved returns the resolved function record for a packed ID.
func (rt *Runtime) Resolved(id int32) *ResolvedFunc { return rt.byID[id] }

// Funcs returns every resolved function, sorted by packed ID.
func (rt *Runtime) Funcs() []*ResolvedFunc {
	out := make([]*ResolvedFunc, 0, len(rt.byID))
	for _, id := range sortedIDs(rt.byID) {
		out = append(out, rt.byID[id])
	}
	return out
}

// Config returns the currently applied instrumentation configuration (nil
// when running under PatchAll and never reconfigured).
func (rt *Runtime) Config() *ic.Config {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.cfg
}

// Active reports whether the function is in the current selection.
func (rt *Runtime) Active(id int32) bool {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	return m[id] != nil
}

// FuncStride returns the function's effective 1-in-N delivery stride:
// its sampling state when one is materialized (SetSampling /
// SetFuncSampling, including adapt demotions), the published table
// default otherwise, and 1 (full delivery) when neither sets a stride or
// the ID is unknown. Lock-free; the HTTP middleware reads it per event to
// model a demoted function's reduced backend cost.
func (rt *Runtime) FuncStride(id int32) int {
	rf := rt.byID[id]
	if rf == nil {
		return 1
	}
	if st := rf.sample.Load(); st != nil {
		if s := int(st.stride.Load()); s > 1 {
			return s
		}
		return 1
	}
	if dp := rt.defaultSample.Load(); dp != nil && dp.Stride > 1 {
		return dp.Stride
	}
	return 1
}

// ActiveIDs returns the packed IDs of the current selection, sorted.
func (rt *Runtime) ActiveIDs() []int32 {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	return sortedIDs(m)
}

// ActiveCount returns the current selection size.
func (rt *Runtime) ActiveCount() int {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	return len(m)
}

// ActiveFuncs returns the resolved records of the current selection, sorted
// by packed ID.
func (rt *Runtime) ActiveFuncs() []*ResolvedFunc {
	m, _ := rt.active.Load().(map[int32]*ResolvedFunc)
	out := make([]*ResolvedFunc, 0, len(m))
	for _, id := range sortedIDs(m) {
		out = append(out, m[id])
	}
	return out
}

// Reconfigs returns how many live re-selections have been applied.
func (rt *Runtime) Reconfigs() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.reconfigs
}

// ReconfigVirtualNs returns the accumulated virtual-time cost of all
// Reconfigure calls (not part of T_init).
func (rt *Runtime) ReconfigVirtualNs() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.reconfigNs
}

// DroppedEvents counts every event that fired for a known function outside
// the active selection — the sum of DroppedInFlight and DroppedUnpatched.
func (rt *Runtime) DroppedEvents() int64 {
	return rt.droppedInFlight.Load() + rt.droppedUnpatched.Load()
}

// DroppedInFlight counts events dropped in the window between the latest
// re-selection publishing its active set and the sled restore taking
// effect — the expected, documented drop class.
func (rt *Runtime) DroppedInFlight() int64 { return rt.droppedInFlight.Load() }

// DroppedUnpatched counts events for known functions that were neither
// active nor removed by the latest re-selection — sled hits that should not
// have happened (e.g. a stale patch). A nonzero value indicates a
// patching bug, so trace completeness checks can assert on it separately.
func (rt *Runtime) DroppedUnpatched() int64 { return rt.droppedUnpatched.Load() }

// SyntheticExits returns the accumulated dangling enters closed through the
// Deselector hook across all reconfigurations.
func (rt *Runtime) SyntheticExits() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.synthExits
}

// InitSeconds returns T_init in (virtual) seconds.
func (rt *Runtime) InitSeconds() float64 {
	return float64(rt.report.InitVirtualNs) / float64(vtime.Second)
}

// AsyncEnabled reports whether the asynchronous event pipeline is attached.
func (rt *Runtime) AsyncEnabled() bool { return rt.pipe != nil }

// DrainPipeline blocks until every event dispatched before the call has been
// delivered through the backend chain. A no-op in inline mode. Phase-end
// code must call it before reading backend reports or flushing sampling
// counters, or queued events would be missing from the results.
func (rt *Runtime) DrainPipeline() {
	if rt.pipe != nil {
		rt.pipe.drain()
	}
}

// PipelineDepth returns the number of events currently queued in the async
// rings (0 in inline mode).
func (rt *Runtime) PipelineDepth() int64 {
	if rt.pipe == nil {
		return 0
	}
	return rt.pipe.depthNow()
}

// DroppedAsync counts the enter/exit pairs the async pipeline rejected under
// back-pressure — the explicit bounded-ring policy. Each dropped pair is
// counted once, at the enter (0 in inline mode).
func (rt *Runtime) DroppedAsync() int64 {
	if rt.pipe == nil {
		return 0
	}
	return rt.pipe.dropped()
}

// Close drains and stops the async consumer pool. Like FlushSampling it
// requires quiescence: no rank may dispatch events concurrently or after.
// A no-op in inline mode; safe to call more than once.
func (rt *Runtime) Close() {
	if rt.pipe != nil {
		rt.pipe.drain()
		rt.pipe.close()
	}
}
