// Package dyncapi implements the DynCaPI runtime (§IV, §V-C of the paper):
// the component that, at program start,
//
//  1. builds a mapping from XRay function IDs to function names for every
//     registered object — by collecting symbol addresses (nm) and
//     translating them via the process memory map, cross-checked against
//     __xray_function_address; hidden symbols of DSOs cannot be resolved
//     this way (the paper's 1,444 OpenFOAM cases, §VI-B(a));
//  2. patches the sleds of the functions selected by the instrumentation
//     configuration (or everything, for the "xray full" variant);
//  3. bridges XRay events to a measurement backend: the generic
//     cyg-profile interface, Score-P (with symbol injection so DSO
//     addresses resolve, §V-C1) or TALP (§V-C2).
//
// The accumulated virtual start-up cost is the T_init column of Table II.
package dyncapi

import (
	"fmt"

	"capi/internal/ic"
	"capi/internal/obj"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// ResolvedFunc is one instrumentable function as seen by the runtime.
type ResolvedFunc struct {
	PackedID int32
	Addr     uint64
	// Name is empty when the function ID could not be resolved to a
	// symbol (hidden visibility in a DSO).
	Name string
}

// Backend is a measurement tool attached to the instrumentation. OnEnter
// and OnExit run inside the XRay handler on the executing rank; fn.Name may
// be empty for unresolved functions.
type Backend interface {
	Name() string
	OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc)
	OnExit(tc xray.ThreadCtx, fn *ResolvedFunc)
	// InitCost returns the backend's virtual start-up cost given the
	// number of symbols the runtime scanned.
	InitCost(symbolsScanned int) int64
}

// SymbolInjector is implemented by backends that want the DSO symbol
// mapping injected (Score-P).
type SymbolInjector interface {
	InjectSymbol(addr uint64, name string)
}

// CostModel holds the virtual-time costs of runtime initialization.
type CostModel struct {
	// PerSledResolve: determining address and name of one function ID.
	PerSledResolve int64
	// PerSymbolNM: scanning one symbol from an object file.
	PerSymbolNM int64
	// PerPatch: patching one function's sleds (mprotect amortized).
	PerPatch int64
	// Base: fixed start-up cost of the DynCaPI library itself.
	Base int64
}

// DefaultCostModel is calibrated so that full-scale OpenFOAM lands in the
// paper's T_init ballpark (seconds, §VI-C).
func DefaultCostModel() CostModel {
	return CostModel{
		PerSledResolve: 12 * vtime.Microsecond,
		PerSymbolNM:    2 * vtime.Microsecond,
		PerPatch:       12 * vtime.Microsecond,
		Base:           25 * vtime.Millisecond,
	}
}

// Options configures the runtime.
type Options struct {
	// PatchAll ignores the IC and patches every sled ("xray full").
	PatchAll bool
	Costs    CostModel
}

// Report summarizes what initialization did — the §VI-B facts.
type Report struct {
	Objects            int // registered patchable objects (incl. executable)
	FunctionsResolved  int
	Unresolved         int // function IDs without a resolvable symbol
	UnresolvedSelected int // of those, how many the IC asked for (0 in the paper)
	Patched            int
	PatchedByID        int // patched via static IDs despite unresolved name (§VI-B(a) extension)
	SymbolsScanned     int
	SymbolsInjected    int
	InitVirtualNs      int64 // T_init
}

// Runtime is one initialized DynCaPI instance.
type Runtime struct {
	proc    *obj.Process
	xr      *xray.Runtime
	cfg     *ic.Config
	backend Backend
	opts    Options

	byID   map[int32]*ResolvedFunc
	report Report
}

// New initializes DynCaPI: it resolves function IDs, patches according to
// the IC (passed via the CAPI_IC environment variable in the real tool) and
// installs the event handler. The world has not started yet — this models
// the patching at program start, before main runs.
func New(proc *obj.Process, xr *xray.Runtime, cfg *ic.Config, backend Backend, opts Options) (*Runtime, error) {
	if proc == nil || xr == nil || backend == nil {
		return nil, fmt.Errorf("dyncapi: process, xray runtime and backend are required")
	}
	if cfg == nil && !opts.PatchAll {
		return nil, fmt.Errorf("dyncapi: an instrumentation configuration is required unless PatchAll is set")
	}
	if opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCostModel()
	}
	rt := &Runtime{
		proc:    proc,
		xr:      xr,
		cfg:     cfg,
		backend: backend,
		opts:    opts,
		byID:    map[int32]*ResolvedFunc{},
	}
	if err := rt.resolve(); err != nil {
		return nil, err
	}
	if err := rt.patch(); err != nil {
		return nil, err
	}
	rt.report.InitVirtualNs += opts.Costs.Base
	rt.report.InitVirtualNs += backend.InitCost(rt.report.SymbolsScanned)
	rt.installHandler()
	return rt, nil
}

// resolve builds the function-ID → name mapping per object. The executable
// is resolved from its full symbol table; DSOs only expose their dynamic
// symbols, so hidden functions stay unresolved (§VI-B(a)).
func (rt *Runtime) resolve() error {
	injector, _ := rt.backend.(SymbolInjector)
	for objID, lo := range rt.xr.Objects() {
		rt.report.Objects++
		var syms []obj.Symbol
		if lo.Image.Exe {
			syms = lo.Image.NM()
		} else {
			syms = lo.Image.DynSyms()
		}
		byOffset := make(map[uint64]string, len(syms))
		for _, s := range syms {
			if s.Kind != obj.SymFunc {
				continue
			}
			byOffset[s.Value] = s.Name
			rt.report.SymbolsScanned++
			if injector != nil && !lo.Image.Exe {
				injector.InjectSymbol(lo.Base+s.Value, s.Name)
				rt.report.SymbolsInjected++
			}
		}
		// Ground truth (full symbol table) — used only to *verify* that no
		// selected function is among the unresolvable ones, the check the
		// paper performs in §VI-B(a). DynCaPI itself cannot use it.
		truth := make(map[uint64]string)
		if rt.cfg != nil && !lo.Image.Exe {
			for _, s := range lo.Image.NM() {
				if s.Kind == obj.SymFunc {
					truth[s.Value] = s.Name
				}
			}
		}
		rt.report.InitVirtualNs += int64(len(syms)) * rt.opts.Costs.PerSymbolNM

		for fn := uint32(0); fn < lo.Image.NumFuncIDs; fn++ {
			packed, err := xray.PackID(objID, fn)
			if err != nil {
				return fmt.Errorf("dyncapi: object %q: %w", lo.Image.Name, err)
			}
			addr, err := rt.xr.FunctionAddress(packed)
			if err != nil {
				return fmt.Errorf("dyncapi: resolving %q fn %d: %w", lo.Image.Name, fn, err)
			}
			rf := &ResolvedFunc{PackedID: packed, Addr: addr}
			if name, ok := byOffset[addr-lo.Base]; ok {
				rf.Name = name
				rt.report.FunctionsResolved++
			} else {
				rt.report.Unresolved++
				if trueName, ok := truth[addr-lo.Base]; ok && rt.cfg != nil && rt.cfg.Contains(trueName) {
					rt.report.UnresolvedSelected++
				}
			}
			rt.byID[packed] = rf
			rt.report.InitVirtualNs += rt.opts.Costs.PerSledResolve
		}
	}
	return nil
}

// patch applies the IC (or patches everything). A function is selected
// either by resolved name or — the §VI-B(a) extension — by a statically
// determined packed ID carried in the IC, which also covers hidden DSO
// symbols that name resolution cannot reach.
func (rt *Runtime) patch() error {
	for packed, rf := range rt.byID {
		want := rt.opts.PatchAll
		if !want && rt.cfg != nil {
			want = rt.cfg.ContainsID(packed) || (rf.Name != "" && rt.cfg.Contains(rf.Name))
		}
		if !want {
			continue
		}
		if err := rt.xr.PatchFunction(packed); err != nil {
			return fmt.Errorf("dyncapi: patching %s: %w", rf.Name, err)
		}
		rt.report.Patched++
		if rf.Name == "" {
			rt.report.PatchedByID++
		}
		rt.report.InitVirtualNs += rt.opts.Costs.PerPatch
	}
	return nil
}

func (rt *Runtime) installHandler() {
	rt.xr.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
		rf := rt.byID[id]
		if rf == nil {
			return
		}
		if kind == xray.Entry {
			rt.backend.OnEnter(tc, rf)
		} else {
			rt.backend.OnExit(tc, rf)
		}
	})
}

// Report returns the initialization summary.
func (rt *Runtime) Report() Report { return rt.report }

// Backend returns the attached measurement backend.
func (rt *Runtime) Backend() Backend { return rt.backend }

// Resolved returns the resolved function record for a packed ID.
func (rt *Runtime) Resolved(id int32) *ResolvedFunc { return rt.byID[id] }

// InitSeconds returns T_init in (virtual) seconds.
func (rt *Runtime) InitSeconds() float64 {
	return float64(rt.report.InitVirtualNs) / float64(vtime.Second)
}
