package dyncapi

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/xray"
)

// asyncLogBackend counts delivered events atomically (several shard
// consumers may deliver concurrently) and records what each delivery
// observed from its context — the replayed clock and MPI state — so tests
// can assert the pipeline reproduces dispatch-time state exactly.
type asyncLogBackend struct {
	enters, exits atomic.Int64
	delayPerEvent time.Duration // simulated backend cost, to build queue depth

	mu  sync.Mutex
	log []asyncLogEntry
}

type asyncLogEntry struct {
	rank      int
	id        int32
	kind      xray.EntryType
	timeNs    int64
	mpiInit   bool
	synthetic bool
}

func (b *asyncLogBackend) Name() string       { return "async-log" }
func (b *asyncLogBackend) InitCost(int) int64 { return 0 }
func (b *asyncLogBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.record(tc, fn, xray.Entry)
	b.enters.Add(1)
}
func (b *asyncLogBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.record(tc, fn, xray.Exit)
	b.exits.Add(1)
}

func (b *asyncLogBackend) record(tc xray.ThreadCtx, fn *ResolvedFunc, kind xray.EntryType) {
	if b.delayPerEvent > 0 {
		time.Sleep(b.delayPerEvent)
	}
	init := false
	if mr, ok := tc.(mpiRanker); ok {
		if r := mr.MPIRank(); r != nil {
			init = r.Initialized()
		}
	}
	b.mu.Lock()
	b.log = append(b.log, asyncLogEntry{
		rank: tc.RankID(), id: fn.PackedID, kind: kind,
		timeNs: tc.Clock().Now(), mpiInit: init,
	})
	b.mu.Unlock()
}

func (b *asyncLogBackend) entries() []asyncLogEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]asyncLogEntry(nil), b.log...)
}

// asyncDeselBackend adds the Deselector hook: it closes dangling enters it
// has seen for the function and appends a synthetic-exit marker, so tests
// can assert the drain barrier ordered every queued real event before the
// synthetic closure.
type asyncDeselBackend struct {
	asyncLogBackend
}

func (b *asyncDeselBackend) OnDeselect(fn *ResolvedFunc) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	open := 0
	for _, e := range b.log {
		if e.id != fn.PackedID || e.synthetic {
			continue
		}
		if e.kind == xray.Entry {
			open++
		} else {
			open--
		}
	}
	if open > 0 {
		b.log = append(b.log, asyncLogEntry{id: fn.PackedID, kind: xray.Exit, synthetic: true})
	}
	return open
}

// asyncSetup patches kernel+dso_fn under the given backend with the async
// pipeline attached and returns an initialized rank-0 context.
func asyncSetup(t *testing.T, back Backend, buf int) (*Runtime, *xray.Runtime, *fakeCtx, int32, int32) {
	t.Helper()
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, ic.New("app", "test", []string{"kernel", "dso_fn"}), back,
		Options{Ranks: 1, Async: true, AsyncBuf: buf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	world, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	r := world.Rank(0)
	if err := r.Init(); err != nil {
		t.Fatal(err)
	}
	return rt, xr, &fakeCtx{rank: r}, packedOf(t, b, xr, proc, "kernel"), packedOf(t, b, xr, proc, "dso_fn")
}

// TestAsyncPipelineDeliversEverything: every dispatched pair reaches the
// backend after a drain barrier, with per-rank order, non-decreasing
// replayed timestamps and the dispatch-time MPI state intact.
func TestAsyncPipelineDeliversEverything(t *testing.T) {
	back := &asyncLogBackend{}
	rt, xr, tc, kernel, dso := asyncSetup(t, back, 0)
	if !rt.AsyncEnabled() {
		t.Fatal("pipeline not attached")
	}
	const pairs = 500
	ids := []int32{kernel, dso}
	for i := 0; i < pairs; i++ {
		id := ids[i%2]
		xr.Dispatch(tc, id, xray.Entry)
		tc.Clock().Advance(10)
		xr.Dispatch(tc, id, xray.Exit)
		tc.Clock().Advance(10)
	}
	rt.DrainPipeline()
	if e, x := back.enters.Load(), back.exits.Load(); e != pairs || x != pairs {
		t.Fatalf("delivered %d enters / %d exits, want %d each", e, x, pairs)
	}
	if d := rt.PipelineDepth(); d != 0 {
		t.Fatalf("depth %d after drain, want 0", d)
	}
	if n := rt.DroppedAsync(); n != 0 {
		t.Fatalf("%d pairs dropped with the default ring", n)
	}
	last := int64(-1)
	for i, e := range back.entries() {
		if e.rank != 0 {
			t.Fatalf("entry %d replayed on rank %d, want 0", i, e.rank)
		}
		if e.timeNs < last {
			t.Fatalf("entry %d: replayed clock went backwards (%d after %d)", i, e.timeNs, last)
		}
		last = e.timeNs
		if !e.mpiInit {
			t.Fatalf("entry %d lost the dispatch-time MPI-initialized state", i)
		}
	}
	snap := rt.Snapshot()
	if !snap.Async || snap.DroppedAsync != 0 {
		t.Fatalf("snapshot = %+v, want Async with zero drops", snap)
	}
	rt.Close()
	rt.Close() // idempotent
}

// TestAsyncBareContextReplay: a context without an MPI rank replays through
// the rankless replay context — the nil-rank guard and the pinned bare
// clock path.
func TestAsyncBareContextReplay(t *testing.T) {
	back := &asyncLogBackend{}
	rt, xr, _, kernel, _ := asyncSetup(t, back, 0)
	bare := &fakeCtx{} // nil rank: MPIRank() returns nil
	bare.clk.Jump(1000)
	xr.Dispatch(bare, kernel, xray.Entry)
	bare.clk.Jump(2000)
	xr.Dispatch(bare, kernel, xray.Exit)
	rt.DrainPipeline()
	log := back.entries()
	if len(log) != 2 {
		t.Fatalf("delivered %d events, want 2", len(log))
	}
	for i, e := range log {
		if e.mpiInit {
			t.Fatalf("entry %d claims MPI state from a rankless context", i)
		}
	}
	if log[0].timeNs >= log[1].timeNs {
		t.Fatalf("replayed clocks %d, %d not increasing", log[0].timeNs, log[1].timeNs)
	}
}

// TestAsyncUnmatchedExitStillDelivered: an exit arriving with no recorded
// enter (sled patched mid-call) takes the depth-0 append path and is
// delivered, not silently lost.
func TestAsyncUnmatchedExitStillDelivered(t *testing.T) {
	back := &asyncLogBackend{}
	rt, xr, tc, kernel, _ := asyncSetup(t, back, 0)
	for i := 0; i < 3; i++ {
		xr.Dispatch(tc, kernel, xray.Exit)
	}
	rt.DrainPipeline()
	if x := back.exits.Load(); x != 3 {
		t.Fatalf("delivered %d unmatched exits, want 3", x)
	}
}

// TestAsyncBackPressureDropsWholePairs: with a tiny ring and a slow
// backend, admission rejects pairs whole — the backend stays balanced, and
// delivered + dropped accounts for every dispatched pair exactly.
func TestAsyncBackPressureDropsWholePairs(t *testing.T) {
	back := &asyncLogBackend{delayPerEvent: 200 * time.Microsecond}
	rt, xr, tc, kernel, _ := asyncSetup(t, back, 8)
	const pairs = 100
	for i := 0; i < pairs; i++ {
		xr.Dispatch(tc, kernel, xray.Entry)
		xr.Dispatch(tc, kernel, xray.Exit)
	}
	rt.DrainPipeline()
	dropped := rt.DroppedAsync()
	if dropped == 0 {
		t.Fatal("an 8-slot ring against a 200µs/event backend never dropped")
	}
	e, x := back.enters.Load(), back.exits.Load()
	if e != x {
		t.Fatalf("backend unbalanced: %d enters, %d exits — pairs must drop whole", e, x)
	}
	if e+dropped != pairs {
		t.Fatalf("conservation broken: %d delivered + %d dropped != %d dispatched pairs", e, dropped, pairs)
	}
	snap := rt.Snapshot()
	if snap.DroppedAsync != dropped {
		t.Fatalf("snapshot drops %d, accessor %d", snap.DroppedAsync, dropped)
	}
	var byRank int64
	for _, n := range snap.DroppedAsyncByRank {
		byRank += n
	}
	if byRank != dropped {
		t.Fatalf("per-rank drops sum to %d, total %d", byRank, dropped)
	}
}

// TestAsyncSwapBackendDrainsFirst: every event queued before SwapBackend is
// delivered to the old backend before the new one is published.
func TestAsyncSwapBackendDrainsFirst(t *testing.T) {
	old := &asyncLogBackend{delayPerEvent: 50 * time.Microsecond}
	rt, xr, tc, kernel, _ := asyncSetup(t, old, 0)
	const pairs = 50
	for i := 0; i < pairs; i++ {
		xr.Dispatch(tc, kernel, xray.Entry)
		xr.Dispatch(tc, kernel, xray.Exit)
	}
	fresh := &asyncLogBackend{}
	if _, err := rt.SwapBackend(fresh); err != nil {
		t.Fatal(err)
	}
	// The swap's drain barrier means the old backend has already seen every
	// queued event — no DrainPipeline call needed here.
	if e, x := old.enters.Load(), old.exits.Load(); e != pairs || x != pairs {
		t.Fatalf("old backend saw %d/%d events at swap time, want %d/%d", e, x, pairs, pairs)
	}
	for i := 0; i < pairs; i++ {
		xr.Dispatch(tc, kernel, xray.Entry)
		xr.Dispatch(tc, kernel, xray.Exit)
	}
	rt.DrainPipeline()
	if e := fresh.enters.Load(); e != pairs {
		t.Fatalf("new backend saw %d enters, want %d", e, pairs)
	}
	if e := old.enters.Load(); e != pairs {
		t.Fatalf("old backend kept receiving after the swap: %d enters", e)
	}
}

// TestAsyncReconfigureOrdersSyntheticExitsAfterDrain: a deselected
// function's queued real events reach the backend before its synthetic
// exit — the regression this PR's Reconfigure drain barrier exists for.
// Without the barrier the backend would see no dangling enter at
// OnDeselect time (it is still queued), leak the frame, and the queued
// enter would arrive after the closure.
func TestAsyncReconfigureOrdersSyntheticExitsAfterDrain(t *testing.T) {
	back := &asyncDeselBackend{asyncLogBackend{delayPerEvent: 100 * time.Microsecond}}
	rt, xr, tc, kernel, dso := asyncSetup(t, back, 0)
	// Build queue depth, then leave kernel open.
	for i := 0; i < 20; i++ {
		xr.Dispatch(tc, dso, xray.Entry)
		xr.Dispatch(tc, dso, xray.Exit)
	}
	xr.Dispatch(tc, kernel, xray.Entry)
	rep, err := rt.Reconfigure(ic.New("app", "test", []string{"dso_fn"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyntheticExits != 1 {
		t.Fatalf("synthetic exits = %d, want 1 (the dangling kernel enter)", rep.SyntheticExits)
	}
	log := back.entries()
	realEnter, synthExit := -1, -1
	for i, e := range log {
		if e.id != kernel {
			continue
		}
		if e.synthetic {
			synthExit = i
		} else if e.kind == xray.Entry {
			realEnter = i
		}
	}
	if realEnter < 0 || synthExit < 0 {
		t.Fatalf("kernel enter at %d, synthetic exit at %d — both must be delivered", realEnter, synthExit)
	}
	if realEnter > synthExit {
		t.Fatalf("synthetic exit (%d) delivered before the queued real enter (%d)", synthExit, realEnter)
	}
}

// TestAsyncRankBeyondShardsDeliversInline: a rank ID outside the
// preallocated shard set takes the inline fallback — degraded, never
// corrupted or dropped.
func TestAsyncRankBeyondShardsDeliversInline(t *testing.T) {
	back := &asyncLogBackend{}
	rt, xr, _, kernel, _ := asyncSetup(t, back, 0)
	world, err := mpi.NewWorld(2, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	stray := &fakeCtx{rank: world.Rank(1)} // shard set was sized for 1 rank
	for i := 0; i < 10; i++ {
		xr.Dispatch(stray, kernel, xray.Entry)
		xr.Dispatch(stray, kernel, xray.Exit)
	}
	// Inline fallback: delivered synchronously, nothing queued, no drops.
	if e := back.enters.Load(); e != 10 {
		t.Fatalf("inline fallback delivered %d enters, want 10", e)
	}
	if d := rt.PipelineDepth(); d != 0 {
		t.Fatalf("fallback events queued (%d), want inline delivery", d)
	}
	if n := rt.DroppedAsync(); n != 0 {
		t.Fatalf("fallback dropped %d pairs", n)
	}
}
