package dyncapi

import (
	"sync"
	"sync/atomic"
	"testing"

	"capi/internal/ic"
	"capi/internal/xray"
)

func TestReconfigureAppliesDelta(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel", "dso_fn"}), &CygBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := xr.Stats()

	rep, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn", "main"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patched != 1 || rep.Unpatched != 1 || rep.Kept != 1 || rep.Active != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Seq != 1 || rt.Reconfigs() != 1 {
		t.Fatalf("seq = %d, reconfigs = %d", rep.Seq, rt.Reconfigs())
	}
	// Only the delta was re-patched: one function's sleds each way.
	if rep.Batch.PatchedSleds != 2 || rep.Batch.UnpatchedSleds != 2 {
		t.Fatalf("batch sleds = %+v (must touch only the delta)", rep.Batch)
	}
	if rep.Batch.BatchFuncs != 2 {
		t.Fatalf("batch funcs = %d, want 2", rep.Batch.BatchFuncs)
	}
	after := xr.Stats()
	if got := after.PatchedSleds - before.PatchedSleds; got != 2 {
		t.Fatalf("global patched-sled delta = %d, want 2", got)
	}
	if rep.VirtualNs != 2*DefaultCostModel().PerPatch {
		t.Fatalf("virtual cost = %d", rep.VirtualNs)
	}
	if len(rep.AddedNames) != 1 || rep.AddedNames[0] != "main" ||
		len(rep.RemovedNames) != 1 || rep.RemovedNames[0] != "kernel" {
		t.Fatalf("diff = +%v -%v", rep.AddedNames, rep.RemovedNames)
	}

	// Sled state matches the new selection.
	if xr.Patched(packedOf(t, b, xr, proc, "kernel")) {
		t.Fatal("kernel still patched after deselection")
	}
	if !xr.Patched(packedOf(t, b, xr, proc, "main")) || !xr.Patched(packedOf(t, b, xr, proc, "dso_fn")) {
		t.Fatal("new selection not patched")
	}
	if !rt.Active(packedOf(t, b, xr, proc, "main")) || rt.Active(packedOf(t, b, xr, proc, "kernel")) {
		t.Fatal("active set wrong")
	}
	if got := len(rt.ActiveIDs()); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	if rt.Config().Contains("kernel") {
		t.Fatal("config not updated")
	}
}

func TestReconfigureStopsEventsForDeselected(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	var events atomic.Int64
	back := &CygBackend{
		EnterFunc: func(xray.ThreadCtx, uint64) { events.Add(1) },
		ExitFunc:  func(xray.ThreadCtx, uint64) { events.Add(1) },
	}
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")
	xr.Dispatch(tc, kernel, xray.Entry)
	if events.Load() != 1 {
		t.Fatalf("events = %d, want 1", events.Load())
	}
	if _, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn"})); err != nil {
		t.Fatal(err)
	}
	// A straggler event for the deselected function (e.g. a sled hit racing
	// the unpatch) is dropped, not delivered to the backend.
	xr.Dispatch(tc, kernel, xray.Entry)
	if events.Load() != 1 {
		t.Fatalf("deselected function still delivered events: %d", events.Load())
	}
	if rt.DroppedEvents() != 1 {
		t.Fatalf("dropped = %d, want 1", rt.DroppedEvents())
	}
}

func TestReconfigureReplacesPatchAll(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, nil, &CygBackend{}, Options{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Report().Patched != 4 {
		t.Fatalf("patch-all patched %d", rt.Report().Patched)
	}
	rep, err := rt.Reconfigure(ic.New("app", "s", []string{"kernel"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unpatched != 3 || rep.Kept != 1 || rep.Active != 1 {
		t.Fatalf("report = %+v", rep)
	}
	for _, name := range []string{"main", "dso_fn", "hidden_fn"} {
		if xr.Patched(packedOf(t, b, xr, proc, name)) {
			t.Fatalf("%s still patched after narrowing from PatchAll", name)
		}
	}
	if !xr.Patched(packedOf(t, b, xr, proc, "kernel")) {
		t.Fatal("kernel lost its patch")
	}
}

func TestReconfigureNilConfig(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, nil, &CygBackend{}, Options{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Reconfigure(nil); err == nil {
		t.Fatal("nil config must be rejected")
	}
}

// TestReconfigureConcurrentWithHandler is the go test -race regression for
// the lock/atomic discipline: XRay handler events keep firing on several
// goroutines (as they do on every rank) while the selection is repeatedly
// reconfigured. Before the active-set was an atomically swapped map this
// raced on the runtime's lookup table.
func TestReconfigureConcurrentWithHandler(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	var events atomic.Int64
	back := &CygBackend{
		EnterFunc: func(xray.ThreadCtx, uint64) { events.Add(1) },
		ExitFunc:  func(xray.ThreadCtx, uint64) { events.Add(1) },
	}
	cfgA := ic.New("app", "s", []string{"kernel", "dso_fn"})
	cfgB := ic.New("app", "s", []string{"main"})
	rt, err := New(proc, xr, cfgA, back, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ids := []int32{
		packedOf(t, b, xr, proc, "main"),
		packedOf(t, b, xr, proc, "kernel"),
		packedOf(t, b, xr, proc, "dso_fn"),
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tc := &fakeCtx{}
			for i := 0; i < 1000; i++ {
				id := ids[(g+i)%len(ids)]
				xr.Dispatch(tc, id, xray.Entry)
				xr.Dispatch(tc, id, xray.Exit)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		cfg := cfgA
		if i%2 == 0 {
			cfg = cfgB
		}
		if _, err := rt.Reconfigure(cfg); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()
	if rt.Reconfigs() != 200 {
		t.Fatalf("reconfigs = %d", rt.Reconfigs())
	}
	if events.Load() == 0 {
		t.Fatal("no events delivered during concurrent reconfiguration")
	}
}
