package dyncapi

import (
	"strings"
	"testing"

	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// countBackend is a minimal test backend: it counts enters and exits.
type countBackend struct {
	name           string
	enters, exits  int
	deselects      int
	deselectReturn int
}

func (c *countBackend) Name() string                                { return c.name }
func (c *countBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) { c.enters++ }
func (c *countBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc)  { c.exits++ }
func (c *countBackend) InitCost(int) int64                          { return 7 }

func (c *countBackend) OnDeselect(fn *ResolvedFunc) int {
	c.deselects++
	return c.deselectReturn
}

// TestMuxFansOutEveryEvent: each child sees every enter and exit, in order,
// and the mux sums init costs.
func TestMuxFansOutEveryEvent(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	c1 := &countBackend{name: "c1"}
	c2 := &countBackend{name: "c2"}
	mux := NewMux(c1, c2)
	if got := mux.Name(); got != "mux(c1,c2)" {
		t.Fatalf("mux name = %q", got)
	}
	if got := mux.InitCost(3); got != 14 {
		t.Fatalf("mux init cost = %d, want 14 (7+7)", got)
	}
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), mux, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")
	for i := 0; i < 5; i++ {
		xr.Dispatch(tc, kernel, xray.Entry)
		xr.Dispatch(tc, kernel, xray.Exit)
	}
	for _, c := range []*countBackend{c1, c2} {
		if c.enters != 5 || c.exits != 5 {
			t.Fatalf("%s saw %d/%d events, want 5/5", c.name, c.enters, c.exits)
		}
	}
	if rt.Backend() != Backend(mux) {
		t.Fatal("runtime backend is not the mux")
	}
}

// TestReconfigureDeliversSyntheticExitsPerMuxChild: a deselection while a
// rank is inside the function must close the dangling state on *every*
// Deselector child, and the report must break the count down per backend.
func TestReconfigureDeliversSyntheticExitsPerMuxChild(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	w, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mon := talp.New(w, talp.Options{})
	m, err := scorep.New(scorep.Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.New(trace.Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTALPBackend(mon)
	sb := NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
	eb := NewExtraeBackend(buf) // no Deselector: must not appear in the map
	mux := NewMux(tb, sb, eb)
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel", "dso_fn"}), mux, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kernel := packedOf(t, b, xr, proc, "kernel")

	err = w.Run(func(r *mpi.Rank) error {
		tc := &fakeCtx{rank: r}
		if err := r.Init(); err != nil {
			return err
		}
		xr.Dispatch(tc, kernel, xray.Entry)
		r.Clock().Advance(vtime.Millisecond)
		// Deselect kernel while the rank is inside it.
		rep, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn"}))
		if err != nil {
			return err
		}
		if rep.SyntheticExits != 2 {
			t.Errorf("synthetic exits = %d, want 2 (talp + scorep)", rep.SyntheticExits)
		}
		if rep.SyntheticExitsByBackend["talp"] != 1 || rep.SyntheticExitsByBackend["scorep"] != 1 {
			t.Errorf("per-backend exits = %v, want talp:1 scorep:1", rep.SyntheticExitsByBackend)
		}
		if _, ok := rep.SyntheticExitsByBackend["extrae"]; ok {
			t.Errorf("extrae (no Deselector) appears in %v", rep.SyntheticExitsByBackend)
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both substrates closed their state.
	if got := m.OpenRegions(0); got != 0 {
		t.Fatalf("scorep open regions = %d, want 0", got)
	}
	if kr := mon.Report().Region("kernel"); kr == nil || kr.Visits != 1 {
		t.Fatalf("talp kernel region not balanced: %+v", kr)
	}
	// The cumulative per-backend counters agree.
	snap := rt.Snapshot()
	if snap.SyntheticExits != 2 ||
		snap.SyntheticExitsByBackend["talp"] != 1 || snap.SyntheticExitsByBackend["scorep"] != 1 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
}

// TestSwapBackendClosesOldStateAndRedirectsEvents: swapping the backend set
// mid-run must (a) close the detached backends' open state with synthetic
// exits, counted per backend, (b) deliver subsequent events to the new set
// only, and (c) replay the DSO symbol injection into the new backends.
func TestSwapBackendClosesOldStateAndRedirectsEvents(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	w, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mon := talp.New(w, talp.Options{})
	tb := NewTALPBackend(mon)
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel", "dso_fn"}), tb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kernel := packedOf(t, b, xr, proc, "kernel")
	dso := packedOf(t, b, xr, proc, "dso_fn")

	err = w.Run(func(r *mpi.Rank) error {
		tc := &fakeCtx{rank: r}
		if err := r.Init(); err != nil {
			return err
		}
		xr.Dispatch(tc, kernel, xray.Entry)
		r.Clock().Advance(vtime.Millisecond)

		// Swap TALP out for Score-P while the rank is inside kernel.
		m, err := scorep.New(scorep.Options{Ranks: 1})
		if err != nil {
			return err
		}
		sb := NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
		rep, err := rt.SwapBackend(sb)
		if err != nil {
			return err
		}
		if rep.From != "talp" || rep.To != "scorep" {
			t.Errorf("swap report names = %q -> %q", rep.From, rep.To)
		}
		if rep.SyntheticExits != 1 || rep.SyntheticExitsByBackend["talp"] != 1 {
			t.Errorf("swap synthetic exits = %d (%v), want talp:1", rep.SyntheticExits, rep.SyntheticExitsByBackend)
		}
		if rep.VirtualNs <= 0 {
			t.Errorf("swap virtual cost = %d, want > 0 (scorep init)", rep.VirtualNs)
		}

		// Events now land on Score-P only, and the DSO symbol resolves there
		// (injection replayed on swap).
		xr.Dispatch(tc, dso, xray.Entry)
		if got := m.OpenRegions(0); got != 1 {
			t.Errorf("scorep open regions after dso enter = %d, want 1", got)
		}
		xr.Dispatch(tc, dso, xray.Exit)
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}

	// TALP's kernel region was balanced by the swap, not left open.
	if kr := mon.Report().Region("kernel"); kr == nil || kr.Visits != 1 {
		t.Fatalf("talp kernel region not balanced by swap: %+v", kr)
	}
	// The swapped-in Score-P backend resolved the injected DSO symbol by name.
	if sb, ok := rt.Backend().(*ScorePBackend); !ok {
		t.Fatalf("runtime backend = %T after swap", rt.Backend())
	} else if reg := sb.M.Profile().Region("dso_fn"); reg == nil || reg.Visits != 1 {
		t.Fatalf("dso_fn not attributed by name on the swapped-in backend: %+v", reg)
	}
	if !strings.Contains(rt.Backend().Name(), "scorep") {
		t.Fatalf("backend name = %q", rt.Backend().Name())
	}
}
