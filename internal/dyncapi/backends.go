package dyncapi

import (
	"sync"

	"capi/internal/mpi"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/xray"
)

// mpiRanker is satisfied by execution contexts that expose their simulated
// MPI rank (exec.Task does); the TALP backend needs it.
type mpiRanker interface {
	MPIRank() *mpi.Rank
}

// CygBackend is the default GCC-compatible interface: it forwards events to
// __cyg_profile_func_enter/exit-style callbacks carrying only the function
// address (§V-C).
type CygBackend struct {
	// EnterFunc and ExitFunc receive the function address, like
	// __cyg_profile_func_enter(void *fn, void *callsite).
	EnterFunc func(tc xray.ThreadCtx, addr uint64)
	ExitFunc  func(tc xray.ThreadCtx, addr uint64)
	// Init is the backend's fixed start-up cost (virtual ns).
	Init int64
}

// Name implements Backend.
func (b *CygBackend) Name() string { return "cyg-profile" }

// OnEnter implements Backend.
func (b *CygBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if b.EnterFunc != nil {
		b.EnterFunc(tc, fn.Addr)
	}
}

// OnExit implements Backend.
func (b *CygBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if b.ExitFunc != nil {
		b.ExitFunc(tc, fn.Addr)
	}
}

// InitCost implements Backend.
func (b *CygBackend) InitCost(int) int64 { return b.Init }

// ScorePBackend drives a Score-P measurement through the generic
// address-based interface: every event passes the function address to
// Score-P, which resolves it against its own symbol map. DynCaPI's symbol
// injection (the SymbolInjector implementation) teaches that map the DSO
// symbols it could not know by itself (§V-C1).
type ScorePBackend struct {
	M        *scorep.Measurement
	Resolver *scorep.Resolver

	// mu orders Reset (phase boundary) against OnDeselect (a control-plane
	// reconfigure can land at any time). The handler paths read M without
	// it: they only execute inside a phase, and Reset happens-before the
	// rank goroutines start.
	mu sync.Mutex
}

// NewScorePBackend wraps a measurement and resolver pair.
func NewScorePBackend(m *scorep.Measurement, r *scorep.Resolver) *ScorePBackend {
	return &ScorePBackend{M: m, Resolver: r}
}

// Reset attaches a fresh measurement for the next execution phase; the
// resolver (and its injected DSO symbols) is kept. Call it only between
// phases, never while handlers are executing (concurrent OnDeselect is
// safe: it serializes on the backend lock).
func (b *ScorePBackend) Reset(m *scorep.Measurement) {
	b.mu.Lock()
	b.M = m
	b.mu.Unlock()
}

// Name implements Backend.
func (b *ScorePBackend) Name() string { return "scorep" }

// OnEnter implements Backend.
func (b *ScorePBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.M.CygEnter(tc, b.Resolver, fn.Addr)
}

// OnExit implements Backend.
func (b *ScorePBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.M.CygExit(tc, b.Resolver, fn.Addr)
}

// InitCost implements Backend: Score-P builds its name/address map over all
// scanned symbols.
func (b *ScorePBackend) InitCost(symbols int) int64 { return b.M.InitCost(symbols) }

// InjectSymbol implements SymbolInjector.
func (b *ScorePBackend) InjectSymbol(addr uint64, name string) { b.Resolver.Inject(addr, name) }

// OnDeselect implements Deselector: every frame of the function's region
// still open on any rank's simulated call stack is closed with a synthetic
// exit, so live re-selection cannot leak open regions. Unresolvable
// functions recorded into the UNKNOWN region are skipped — their frames
// cannot be attributed to one function.
func (b *ScorePBackend) OnDeselect(fn *ResolvedFunc) int {
	b.mu.Lock()
	m := b.M
	b.mu.Unlock()
	name, ok := b.Resolver.Resolve(fn.Addr)
	if !ok {
		return 0
	}
	region, ok := m.LookupRegion(name)
	if !ok {
		return 0 // never entered
	}
	return m.CloseDangling(region)
}

// TALPBackend maps instrumented functions to TALP monitoring regions
// (§V-C2): a region is registered lazily on a function's first entry, and
// entry/exit events start/stop it. Registration fails permanently for
// functions entered before MPI_Init (§VI-B(b)).
type TALPBackend struct {
	Mon *talp.Monitor

	mu      sync.Mutex
	regions map[int32]*talpRegionState //capi:guardedby mu
}

type talpRegionState struct {
	reg    *talp.Region
	failed bool
}

// NewTALPBackend wraps a TALP monitor.
func NewTALPBackend(m *talp.Monitor) *TALPBackend {
	return &TALPBackend{Mon: m, regions: map[int32]*talpRegionState{}}
}

// Reset attaches a fresh monitor for the next execution phase and forgets
// the lazily registered regions (they belong to the previous monitor). Call
// it only between phases, never while handlers are executing (concurrent
// OnDeselect is safe: it serializes on the backend lock).
func (b *TALPBackend) Reset(m *talp.Monitor) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.Mon = m
	b.regions = map[int32]*talpRegionState{}
}

// Name implements Backend.
func (b *TALPBackend) Name() string { return "talp" }

func (b *TALPBackend) state(id int32) (*talpRegionState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st, ok := b.regions[id]
	return st, ok
}

// OnEnter implements Backend.
func (b *TALPBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if fn.Name == "" {
		return // unresolved: no region name available
	}
	mr, ok := tc.(mpiRanker)
	if !ok {
		return
	}
	rank := mr.MPIRank()
	st, seen := b.state(fn.PackedID)
	if !seen {
		// First entry anywhere: register the monitoring region.
		reg, err := b.Mon.Register(rank, fn.Name)
		st = &talpRegionState{reg: reg, failed: err != nil}
		b.mu.Lock()
		b.regions[fn.PackedID] = st
		b.mu.Unlock()
	}
	if st.failed || st.reg == nil {
		return
	}
	// Start may fail in bug-compat mode; the monitor records it.
	_ = b.Mon.Start(rank, st.reg)
}

// OnExit implements Backend.
func (b *TALPBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if fn.Name == "" {
		return
	}
	mr, ok := tc.(mpiRanker)
	if !ok {
		return
	}
	st, seen := b.state(fn.PackedID)
	if !seen || st.failed || st.reg == nil {
		return
	}
	// A Stop without a matching Start (failed entry) is rejected by the
	// monitor; ignore it here.
	_ = b.Mon.Stop(mr.MPIRank(), st.reg)
}

// InitCost implements Backend.
func (b *TALPBackend) InitCost(int) int64 { return b.Mon.InitCost() }

// OnDeselect implements Deselector: dangling starts of the function's
// monitoring region are balanced with synthetic stops on every rank, so the
// accumulators close and the open count stays correct.
func (b *TALPBackend) OnDeselect(fn *ResolvedFunc) int {
	// Snapshot monitor and region under the lock: a phase boundary's Reset
	// may be swapping them while a control-plane reconfigure deselects.
	b.mu.Lock()
	mon := b.Mon
	st, ok := b.regions[fn.PackedID]
	b.mu.Unlock()
	if !ok || st.failed || st.reg == nil {
		return 0
	}
	return mon.CloseOpen(st.reg)
}

// FailedRegions returns how many functions could not be registered
// (entered before MPI_Init).
func (b *TALPBackend) FailedRegions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.regions {
		if st.failed {
			n++
		}
	}
	return n
}

// ExtraeBackend records every event as a timestamped trace record in a
// per-rank sharded buffer (Extrae-style tracing): the enter/exit hot path
// appends to the executing rank's own shard without taking any lock, full
// rings are flushed as batched segments, and the end-of-run report merges
// the shards into one virtual-time-ordered timeline. It is the cheapest
// per-event backend after the discarding cyg-profile interface — the
// sharding is what keeps it that way under many ranks.
//
// The backend does not implement Deselector: a trace has no open state to
// close, and completeness of the event stream is asserted through the
// runtime's split drop counters (DroppedInFlight/DroppedUnpatched) plus the
// buffer's own drop/wrap accounting.
type ExtraeBackend struct {
	Buf   *trace.Buffer
	costs trace.CostModel
}

// NewExtraeBackend wraps a sharded trace buffer.
func NewExtraeBackend(buf *trace.Buffer) *ExtraeBackend {
	return &ExtraeBackend{Buf: buf, costs: buf.Costs()}
}

// Reset attaches a fresh buffer for the next execution phase. Call it only
// between phases, never while handlers are executing.
func (b *ExtraeBackend) Reset(buf *trace.Buffer) {
	b.Buf = buf
	b.costs = buf.Costs()
}

// Name implements Backend.
func (b *ExtraeBackend) Name() string { return "extrae" }

// OnEnter implements Backend: charge the trace-write cost, record, and pay
// the flush stall when this append wrote out a full ring.
//
//capi:hotpath
func (b *ExtraeBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	c := tc.Clock()
	c.Advance(b.costs.EventCost)
	if b.Buf.Append(tc.RankID(), c.Now(), fn.PackedID, fn.Name, trace.Enter) {
		c.Advance(b.costs.FlushCost)
	}
}

// OnExit implements Backend. The exit timestamp is taken before the probe's
// own cost is charged, so tracing overhead does not inflate region time.
//
//capi:hotpath
func (b *ExtraeBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	c := tc.Clock()
	t := c.Now()
	c.Advance(b.costs.EventCost)
	if b.Buf.Append(tc.RankID(), t, fn.PackedID, fn.Name, trace.Exit) {
		c.Advance(b.costs.FlushCost)
	}
}

// InitCost implements Backend.
func (b *ExtraeBackend) InitCost(int) int64 { return b.costs.InitBase }
