package dyncapi

import (
	"sync"
	"testing"

	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// TestReconfigureClosesDanglingScorePRegions is the regression for the old
// dangling-enter leak: a rank inside a deselected function never fires the
// exit, and Score-P used to keep the region open on the simulated call
// stack forever. The Deselector hook must close it synthetically.
func TestReconfigureClosesDanglingScorePRegions(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	m, err := scorep.New(scorep.Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	back := NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel", "dso_fn"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")
	dso := packedOf(t, b, xr, proc, "dso_fn")

	// The rank is inside kernel → dso_fn when kernel is deselected.
	xr.Dispatch(tc, kernel, xray.Entry)
	xr.Dispatch(tc, dso, xray.Entry)
	tc.Clock().Advance(vtime.Millisecond)
	if got := m.OpenRegions(0); got != 2 {
		t.Fatalf("open regions before reconfigure = %d, want 2", got)
	}

	rep, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SyntheticExits != 1 {
		t.Fatalf("synthetic exits = %d, want 1 (kernel)", rep.SyntheticExits)
	}
	if rt.SyntheticExits() != 1 {
		t.Fatalf("cumulative synthetic exits = %d", rt.SyntheticExits())
	}
	// kernel's frame is gone; the still-selected dso_fn frame survives and
	// its real exit stays balanced.
	if got := m.OpenRegions(0); got != 1 {
		t.Fatalf("open regions after reconfigure = %d, want 1 (dso_fn)", got)
	}
	xr.Dispatch(tc, dso, xray.Exit)
	if got := m.OpenRegions(0); got != 0 {
		t.Fatalf("open regions after dso_fn exit = %d, want 0", got)
	}
	prof := m.Profile()
	if r := prof.Region("kernel"); r == nil || r.Visits != 1 {
		t.Fatalf("kernel region not closed into the profile: %+v", r)
	}

	// A second reconfigure with nothing dangling closes nothing.
	rep2, err := rt.Reconfigure(ic.New("app", "s", []string{"kernel"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SyntheticExits != 0 {
		t.Fatalf("spurious synthetic exits: %d", rep2.SyntheticExits)
	}
}

// TestReconfigureBalancesDanglingTALPStarts: the TALP side of the same
// leak — the monitor must see the start balanced and no region left open.
func TestReconfigureBalancesDanglingTALPStarts(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	w, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mon := talp.New(w, talp.Options{})
	back := NewTALPBackend(mon)
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kernel := packedOf(t, b, xr, proc, "kernel")
	err = w.Run(func(r *mpi.Rank) error {
		tc := &fakeCtx{rank: r}
		if err := r.Init(); err != nil {
			return err
		}
		xr.Dispatch(tc, kernel, xray.Entry)
		r.Clock().Advance(vtime.Millisecond)
		// An MPI call inside the region: TALP's PMPI hook observes it, so
		// the synthetic stop below closes the region at (at least) this
		// point of the rank's clock.
		if err := r.Barrier(); err != nil {
			return err
		}
		// Deselect kernel while the rank is inside it — as the adapt
		// controller does from within a handler.
		rep, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn"}))
		if err != nil {
			return err
		}
		if rep.SyntheticExits != 1 {
			t.Errorf("synthetic exits = %d, want 1", rep.SyntheticExits)
		}
		// Open count: only the implicit global region remains.
		if got := mon.OpenCount(r.ID()); got != 1 {
			t.Errorf("open regions after reconfigure = %d, want 1 (global)", got)
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := mon.Report()
	kr := rep.Region("kernel")
	if kr == nil || kr.Visits != 1 {
		t.Fatalf("kernel region not balanced into the report: %+v", kr)
	}
	if kr.Elapsed < vtime.Millisecond {
		t.Fatalf("kernel elapsed = %s, want ≥ 1ms (closed at last activity)", vtime.FormatSeconds(kr.Elapsed))
	}
}

// TestDroppedEventCounterSplit: in-flight drops of freshly deselected
// functions must be distinguishable from sled hits for unpatched-but-known
// functions, so trace completeness can be asserted.
func TestDroppedEventCounterSplit(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), &CygBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")
	dso := packedOf(t, b, xr, proc, "dso_fn")

	// dso_fn is known but was never selected: a hit is a spurious sled.
	xr.Dispatch(tc, dso, xray.Entry)
	if rt.DroppedUnpatched() != 1 || rt.DroppedInFlight() != 0 {
		t.Fatalf("unpatched/inflight = %d/%d, want 1/0", rt.DroppedUnpatched(), rt.DroppedInFlight())
	}

	if _, err := rt.Reconfigure(ic.New("app", "s", []string{"dso_fn"})); err != nil {
		t.Fatal(err)
	}
	// kernel was removed by the latest re-selection: a straggler event is
	// an expected in-flight drop.
	xr.Dispatch(tc, kernel, xray.Entry)
	if rt.DroppedInFlight() != 1 {
		t.Fatalf("inflight = %d, want 1", rt.DroppedInFlight())
	}
	// A later re-selection supersedes the window: kernel straggler events
	// are no longer "in flight".
	if _, err := rt.Reconfigure(ic.New("app", "s", []string{"main"})); err != nil {
		t.Fatal(err)
	}
	xr.Dispatch(tc, kernel, xray.Entry)
	if rt.DroppedUnpatched() != 2 {
		t.Fatalf("unpatched = %d, want 2", rt.DroppedUnpatched())
	}
	if rt.DroppedEvents() != 3 {
		t.Fatalf("total dropped = %d, want 3", rt.DroppedEvents())
	}
}

// TestConcurrentDispatchReconfigureExtrae is the go test -race regression
// for the trace backend: paired enter/exit events keep firing on four
// rank-goroutines (each owning its shard, the single-writer contract) while
// the selection flips concurrently. Afterwards every dispatched event must
// be accounted for: recorded in the trace, rejected by the buffer's drop
// policy, or dropped by the runtime inside the documented windows.
func TestConcurrentDispatchReconfigureExtrae(t *testing.T) {
	const ranks, itersPerRank = 4, 2000
	b := buildProg(t)
	proc, xr := setup(t, b)
	w, err := mpi.NewWorld(ranks, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := trace.New(trace.Options{Ranks: ranks, BufEvents: 64, MaxEvents: 1024})
	if err != nil {
		t.Fatal(err)
	}
	back := NewExtraeBackend(buf)
	cfgA := ic.New("app", "s", []string{"kernel", "dso_fn"})
	cfgB := ic.New("app", "s", []string{"main"})
	rt, err := New(proc, xr, cfgA, back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := []int32{
		packedOf(t, b, xr, proc, "main"),
		packedOf(t, b, xr, proc, "kernel"),
		packedOf(t, b, xr, proc, "dso_fn"),
	}

	var wg sync.WaitGroup
	for g := 0; g < ranks; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tc := &fakeCtx{rank: w.Rank(g)}
			for i := 0; i < itersPerRank; i++ {
				id := ids[(g+i)%len(ids)]
				xr.Dispatch(tc, id, xray.Entry)
				xr.Dispatch(tc, id, xray.Exit)
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		cfg := cfgA
		if i%2 == 0 {
			cfg = cfgB
		}
		if _, err := rt.Reconfigure(cfg); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()

	rep := buf.Report()
	dispatched := int64(ranks * itersPerRank * 2)
	accounted := rep.Recorded + rep.Dropped + rt.DroppedEvents()
	if accounted != dispatched {
		t.Fatalf("events unaccounted for: recorded %d + buffer-dropped %d + runtime-dropped %d = %d, dispatched %d",
			rep.Recorded, rep.Dropped, rt.DroppedEvents(), accounted, dispatched)
	}
	if rep.Recorded == 0 {
		t.Fatal("no events traced during concurrent reconfiguration")
	}
	// No duplication either: retained + wrapped + dropped per shard must
	// reconcile with that shard's recorded count.
	for _, rs := range rep.Ranks {
		if rs.Recorded != rs.Retained+rs.Wrapped {
			t.Fatalf("rank %d accounting: recorded %d != retained %d + wrapped %d",
				rs.Rank, rs.Recorded, rs.Retained, rs.Wrapped)
		}
	}
}
