package dyncapi

// A tripped backend must never take the host down with it: the Diagnose
// library's reliability promise is that instrument errors never affect the
// instrumented program. Guard is the panic barrier that keeps it — every
// delivery into a measurement backend (enter/exit events, synthetic exits,
// symbol injection, init-cost probes) runs behind a recover, and a
// per-backend circuit breaker detaches a backend that keeps panicking.
//
// The non-failing path pays one atomic load (the breaker state) and one
// deferred-recover frame per event; Go open-codes both, so the guarded
// chain stays within the dispatch bench gates. The recover machinery only
// does work when a panic actually unwinds.

import (
	"fmt"
	"sync/atomic"

	"capi/internal/xray"
)

// DefaultPanicLimit is the number of recovered panics after which a
// guarded backend's circuit breaker trips (GuardOptions.PanicLimit == 0).
const DefaultPanicLimit = 3

// GuardOptions configures a Guard.
type GuardOptions struct {
	// PanicLimit is the breaker threshold: after this many recovered
	// panics anywhere in the backend's delivery paths the breaker trips
	// and OnTrip fires. 0 uses DefaultPanicLimit; negative keeps the
	// barrier (panics are still recovered and counted) but never trips.
	PanicLimit int
	// OnTrip is called exactly once, on its own goroutine, when the
	// breaker trips. It receives the guarded backend's name. Typically it
	// detaches the backend from the live chain (capi.Instance swaps it
	// for the guard's Tombstone so drop accounting stays exact).
	OnTrip func(backend string)
}

// Guard wraps one measurement backend in a panic barrier with a circuit
// breaker. Insert it into a chain via Sink(), which returns a Backend
// whose optional capabilities (Deselector, SymbolInjector) mirror the
// wrapped backend's — all of them guarded.
//
// Guard deliberately does NOT implement the backendUnwrapper interface:
// walkBackends descends through Inner(), and a walker that reached the raw
// backend (symbol injection, deselector collection) would bypass the
// barrier.
//
// Accounting: DroppedPanicked counts enter events (in the identity's enter
// units) that did not reach the backend — the enter that panicked plus
// every enter arriving after the breaker opened. Exit-side panics are
// recovered and counted toward the breaker but not toward DroppedPanicked;
// the conservation identity is stated in enter units.
type Guard struct {
	inner  Backend
	ds     Deselector     // inner's, nil when not implemented
	si     SymbolInjector // inner's, nil when not implemented
	sink   Backend
	limit  int64 // 0 = never trip
	onTrip func(string)

	tripped   atomic.Bool
	panics    atomic.Int64
	dropped   atomic.Int64 // enter units, see type comment
	lastPanic atomic.Value // of string
}

// NewGuard wraps inner. Use g.Sink() as the chain element.
func NewGuard(inner Backend, opts GuardOptions) *Guard {
	g := &Guard{inner: inner, onTrip: opts.OnTrip}
	switch {
	case opts.PanicLimit > 0:
		g.limit = int64(opts.PanicLimit)
	case opts.PanicLimit == 0:
		g.limit = DefaultPanicLimit
	}
	g.ds, _ = inner.(Deselector)
	g.si, _ = inner.(SymbolInjector)
	switch {
	case g.ds != nil && g.si != nil:
		g.sink = guardDSI{guardDS{g}}
	case g.ds != nil:
		g.sink = guardDS{g}
	case g.si != nil:
		g.sink = guardSI{g}
	default:
		g.sink = g
	}
	return g
}

// Sink returns the guarded chain element: a Backend that implements
// exactly the optional capabilities (Deselector, SymbolInjector) the
// wrapped backend implements. Its identity is stable for the Guard's
// lifetime, so SwapBackend's arrival/departure diff recognizes it.
func (g *Guard) Sink() Backend { return g.sink }

// InnerBackend returns the wrapped backend. (Deliberately not named Inner:
// that would implement backendUnwrapper, and walkBackends would descend
// past the barrier — see type comment.)
func (g *Guard) InnerBackend() Backend { return g.inner }

// Name reports the wrapped backend's name: the guard is transparent in
// all per-backend accounting (synthetic exits, reports, mux naming).
func (g *Guard) Name() string { return g.inner.Name() }

//capi:hotpath
func (g *Guard) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if g.tripped.Load() {
		g.dropped.Add(1)
		return
	}
	g.enter(tc, fn)
}

//capi:hotpath
func (g *Guard) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if g.tripped.Load() {
		return
	}
	g.exit(tc, fn)
}

// enter delivers one enter event behind the barrier. The deferred recover
// is open-coded by the compiler (no allocation, no lock); its body only
// runs when the backend panics, which is off the non-failing path by
// definition.
//
//capi:hotpath
func (g *Guard) enter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	//capi:hotpath-ok deferred recover barrier: open-coded by the compiler, body runs only when the backend panics
	defer func() {
		if r := recover(); r != nil {
			g.dropped.Add(1)
			g.panicked(r)
		}
	}()
	g.inner.OnEnter(tc, fn)
}

//capi:hotpath
func (g *Guard) exit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	//capi:hotpath-ok deferred recover barrier: open-coded by the compiler, body runs only when the backend panics
	defer func() {
		if r := recover(); r != nil {
			g.panicked(r)
		}
	}()
	g.inner.OnExit(tc, fn)
}

// InitCost probes the wrapped backend's start-up cost; a panicking cost
// model counts toward the breaker and costs nothing.
func (g *Guard) InitCost(symbolsScanned int) (cost int64) {
	defer func() {
		if r := recover(); r != nil {
			g.panicked(r)
			cost = 0
		}
	}()
	return g.inner.InitCost(symbolsScanned)
}

// onDeselect guards the synthetic-exit path: a panic while closing
// dangling state is recovered (the state is then simply lost — the
// backend is broken anyway) and counted toward the breaker.
func (g *Guard) onDeselect(fn *ResolvedFunc) (n int) {
	if g.tripped.Load() {
		return 0
	}
	defer func() {
		if r := recover(); r != nil {
			g.panicked(r)
			n = 0
		}
	}()
	return g.ds.OnDeselect(fn)
}

// injectSymbol guards DSO symbol injection.
func (g *Guard) injectSymbol(addr uint64, name string) {
	if g.tripped.Load() {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			g.panicked(r)
		}
	}()
	g.si.InjectSymbol(addr, name)
}

// RecordPanic counts a panic recovered outside the event path (the
// instance layer guards StartPhase and Report itself) toward the same
// breaker, so a backend that only breaks at phase boundaries still trips.
//
//capi:coldpath
func (g *Guard) RecordPanic(r any) { g.panicked(r) }

// panicked is the cold path shared by every recover site: count, remember
// the panic value, and trip the breaker at the limit.
//
//capi:coldpath
func (g *Guard) panicked(r any) {
	n := g.panics.Add(1)
	g.lastPanic.Store(fmt.Sprint(r))
	if g.limit > 0 && n >= g.limit && g.tripped.CompareAndSwap(false, true) {
		if g.onTrip != nil {
			// Off this goroutine: the trip may have unwound out of a
			// dispatch handler or a consumer, and detaching swaps the
			// backend chain under locks the event path must not take.
			go g.onTrip(g.inner.Name())
		}
	}
}

// Tripped reports whether the breaker is open.
func (g *Guard) Tripped() bool { return g.tripped.Load() }

// DroppedPanicked returns the enters not delivered to the backend because
// of panics or an open breaker.
func (g *Guard) DroppedPanicked() int64 { return g.dropped.Load() }

// GuardStats is a point-in-time view of one guard's counters.
type GuardStats struct {
	Backend         string `json:"backend"`
	Panics          int64  `json:"panics"`
	DroppedPanicked int64  `json:"droppedPanicked"`
	Tripped         bool   `json:"tripped"`
	LastPanic       string `json:"lastPanic,omitempty"`
}

// Stats snapshots the guard's counters.
func (g *Guard) Stats() GuardStats {
	last, _ := g.lastPanic.Load().(string)
	return GuardStats{
		Backend:         g.inner.Name(),
		Panics:          g.panics.Load(),
		DroppedPanicked: g.dropped.Load(),
		Tripped:         g.tripped.Load(),
		LastPanic:       last,
	}
}

// Tombstone returns a no-op Backend that keeps this guard's drop
// accounting alive after the backend is detached from the chain: every
// enter it sees is counted as DroppedPanicked, so the conservation
// identity (enters == delivered + sampledOut + suppressed + collapsed +
// droppedAsync + droppedPanicked) stays exact for the rest of the run.
// Its identity differs from Sink()'s, so a swap that replaces the sink
// with the tombstone closes the tripped backend's dangling state.
func (g *Guard) Tombstone() Backend { return &tombstone{g: g} }

// tombstone takes a detached backend's chain slot. Only the enter counter
// does anything; InitCost is free (nothing is initialized).
type tombstone struct{ g *Guard }

func (t *tombstone) Name() string { return t.g.inner.Name() }

//capi:hotpath
func (t *tombstone) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) { t.g.dropped.Add(1) }

//capi:hotpath
func (t *tombstone) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {}

func (t *tombstone) InitCost(symbolsScanned int) int64 { return 0 }

// guardDS / guardSI / guardDSI are the capability-matched sink shapes:
// one-word structs wrapping the Guard so that interface type assertions
// against the sink see exactly the capabilities the inner backend has.
type guardDS struct{ *Guard }

func (w guardDS) OnDeselect(fn *ResolvedFunc) int { return w.Guard.onDeselect(fn) }

type guardSI struct{ *Guard }

func (w guardSI) InjectSymbol(addr uint64, name string) { w.Guard.injectSymbol(addr, name) }

type guardDSI struct{ guardDS }

func (w guardDSI) InjectSymbol(addr uint64, name string) { w.Guard.injectSymbol(addr, name) }
