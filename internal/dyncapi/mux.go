package dyncapi

import (
	"strings"

	"capi/internal/xray"
)

// Mux fans every instrumentation event out to N measurement backends, so one
// run can feed several consumers from the same event stream — TALP
// efficiency metrics *and* an Extrae-style trace, say — the way
// Diagnose-style probes attach multiple instruments to one event source.
//
// The child list is fixed at construction: the hot path ranges over a plain
// slice with no locking, so a mux of one costs a single bounds-checked
// iteration over the direct backend (the BenchmarkDispatchMux* family and
// the benchdiff vs_direct gate keep it that way). Swapping the backend set
// of a live runtime swaps the whole Mux (Runtime.SwapBackend), never the
// slice in place.
//
// Mux deliberately does not implement Deselector itself: the runtime walks
// Children so synthetic exits are delivered — and *counted* — per child
// backend (ReconfigReport.SyntheticExitsByBackend).
type Mux struct {
	backends []Backend
	name     string
}

// NewMux builds a fan-out over the given backends, in delivery order.
func NewMux(backends ...Backend) *Mux {
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name()
	}
	return &Mux{backends: backends, name: "mux(" + strings.Join(names, ",") + ")"}
}

// Name implements Backend.
func (m *Mux) Name() string { return m.name }

// Children returns the fan-out targets, in delivery order.
func (m *Mux) Children() []Backend { return m.backends }

// OnEnter implements Backend: every child sees the event, in order.
//
//capi:hotpath
func (m *Mux) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	for _, b := range m.backends {
		b.OnEnter(tc, fn)
	}
}

// OnExit implements Backend.
//
//capi:hotpath
func (m *Mux) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	for _, b := range m.backends {
		b.OnExit(tc, fn)
	}
}

// InitCost implements Backend: each attached measurement system pays its own
// start-up, so the mux sums them.
func (m *Mux) InitCost(symbols int) int64 {
	var total int64
	for _, b := range m.backends {
		total += b.InitCost(symbols)
	}
	return total
}

// fanout is implemented by backends that multiplex to child backends (Mux).
// The runtime's backend-chain walks (symbol injection, synthetic-exit
// delivery) descend into the children.
type fanout interface {
	Children() []Backend
}
