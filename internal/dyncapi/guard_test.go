package dyncapi

import (
	"strings"
	"testing"
	"time"

	"capi/internal/ic"
	"capi/internal/xray"
)

// plainBackend is the minimal Backend shape: no optional capabilities.
type plainBackend struct {
	name          string
	enters, exits int
	panicEnters   bool
	panicExits    bool
}

func (p *plainBackend) Name() string { return p.name }
func (p *plainBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if p.panicEnters {
		panic("boom: enter")
	}
	p.enters++
}
func (p *plainBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	if p.panicExits {
		panic("boom: exit")
	}
	p.exits++
}
func (p *plainBackend) InitCost(int) int64 { return 11 }

// dsBackend adds Deselector; siBackend adds SymbolInjector; dsiBackend both.
type dsBackend struct {
	plainBackend
	deselects int
	panicLife bool // panic in InitCost / OnDeselect / InjectSymbol
}

func (d *dsBackend) InitCost(int) int64 {
	if d.panicLife {
		panic("boom: init")
	}
	return 11
}

func (d *dsBackend) OnDeselect(fn *ResolvedFunc) int {
	if d.panicLife {
		panic("boom: deselect")
	}
	d.deselects++
	return 1
}

type siBackend struct {
	plainBackend
	injected []string
}

func (s *siBackend) InjectSymbol(addr uint64, name string) { s.injected = append(s.injected, name) }

type dsiBackend struct {
	dsBackend
}

func (d *dsiBackend) InjectSymbol(addr uint64, name string) {
	if d.panicLife {
		panic("boom: inject")
	}
}

// TestGuardSinkCapabilityMatch: the guarded sink implements exactly the
// optional capabilities the wrapped backend implements — no more (a walk
// must not see a Deselector that isn't one) and no less (a walk must not
// miss one).
func TestGuardSinkCapabilityMatch(t *testing.T) {
	cases := []struct {
		name   string
		inner  Backend
		wantDS bool
		wantSI bool
	}{
		{"plain", &plainBackend{name: "p"}, false, false},
		{"deselector", &dsBackend{plainBackend: plainBackend{name: "d"}}, true, false},
		{"injector", &siBackend{plainBackend: plainBackend{name: "s"}}, false, true},
		{"both", &dsiBackend{dsBackend{plainBackend: plainBackend{name: "b"}}}, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sink := NewGuard(c.inner, GuardOptions{}).Sink()
			if _, ok := sink.(Deselector); ok != c.wantDS {
				t.Errorf("sink Deselector = %v, want %v", ok, c.wantDS)
			}
			if _, ok := sink.(SymbolInjector); ok != c.wantSI {
				t.Errorf("sink SymbolInjector = %v, want %v", ok, c.wantSI)
			}
			// The guard must never expose backendUnwrapper: a walk that
			// descended to the raw backend would bypass the barrier.
			if _, ok := sink.(backendUnwrapper); ok {
				t.Error("sink implements backendUnwrapper; walks would bypass the barrier")
			}
			if sink.Name() != c.inner.Name() {
				t.Errorf("sink name = %q, want %q", sink.Name(), c.inner.Name())
			}
		})
	}
}

// TestGuardRecoversAndTrips walks the breaker lifecycle end to end through
// a live runtime: panics are recovered (the dispatch never crashes), enter
// drops are counted, the breaker trips exactly at the limit, OnTrip fires
// once, and post-trip events short-circuit without reaching the backend.
func TestGuardRecoversAndTrips(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	inner := &plainBackend{name: "faulty", panicEnters: true, panicExits: true}
	tripCh := make(chan string, 2)
	g := NewGuard(inner, GuardOptions{PanicLimit: 3, OnTrip: func(name string) { tripCh <- name }})
	if _, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), g.Sink(), Options{}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")

	xr.Dispatch(tc, kernel, xray.Entry) // panic 1, dropped 1
	xr.Dispatch(tc, kernel, xray.Exit)  // panic 2 (exit: not dropped)
	if g.Tripped() {
		t.Fatal("tripped below the limit")
	}
	if got := g.Stats(); got.Panics != 2 || got.DroppedPanicked != 1 {
		t.Fatalf("stats before trip = %+v, want 2 panics, 1 dropped", got)
	}
	xr.Dispatch(tc, kernel, xray.Entry) // panic 3 -> trip
	if !g.Tripped() {
		t.Fatal("not tripped at the limit")
	}
	select {
	case name := <-tripCh:
		if name != "faulty" {
			t.Fatalf("OnTrip(%q), want faulty", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnTrip never fired")
	}
	// Open breaker: the backend sees nothing, enters keep being counted.
	inner.panicEnters, inner.panicExits = false, false
	xr.Dispatch(tc, kernel, xray.Entry)
	xr.Dispatch(tc, kernel, xray.Exit)
	st := g.Stats()
	if inner.enters != 0 || inner.exits != 0 {
		t.Fatalf("backend saw %d/%d events through an open breaker", inner.enters, inner.exits)
	}
	if st.Panics != 3 || st.DroppedPanicked != 3 {
		t.Fatalf("stats after trip = %+v, want 3 panics, 3 dropped", st)
	}
	if !strings.Contains(st.LastPanic, "boom") {
		t.Fatalf("LastPanic = %q, want the panic value", st.LastPanic)
	}
	select {
	case <-tripCh:
		t.Fatal("OnTrip fired twice")
	default:
	}
}

// TestGuardNegativeLimitNeverTrips: PanicLimit < 0 keeps the barrier
// (recover + count) but the breaker never opens.
func TestGuardNegativeLimitNeverTrips(t *testing.T) {
	inner := &plainBackend{name: "p", panicEnters: true}
	g := NewGuard(inner, GuardOptions{PanicLimit: -1, OnTrip: func(string) { t.Error("OnTrip fired") }})
	for i := 0; i < 10; i++ {
		g.Sink().OnEnter(&fakeCtx{}, nil)
	}
	if g.Tripped() {
		t.Fatal("negative limit tripped")
	}
	if st := g.Stats(); st.Panics != 10 || st.DroppedPanicked != 10 {
		t.Fatalf("stats = %+v, want 10 panics, 10 dropped", st)
	}
	// The barrier still delivers once the backend behaves.
	inner.panicEnters = false
	g.Sink().OnEnter(&fakeCtx{}, nil)
	if inner.enters != 1 {
		t.Fatalf("recovered backend saw %d enters, want 1", inner.enters)
	}
}

// TestGuardLifecyclePathsRecover: InitCost, OnDeselect and InjectSymbol
// panics are recovered, degrade to zero-values, and count toward the same
// breaker as event-path panics.
func TestGuardLifecyclePathsRecover(t *testing.T) {
	inner := &dsiBackend{dsBackend{plainBackend: plainBackend{name: "life"}, panicLife: true}}
	g := NewGuard(inner, GuardOptions{PanicLimit: -1})
	sink := g.Sink()
	if cost := sink.InitCost(3); cost != 0 {
		t.Fatalf("panicking InitCost = %d, want 0", cost)
	}
	if n := sink.(Deselector).OnDeselect(nil); n != 0 {
		t.Fatalf("panicking OnDeselect = %d, want 0", n)
	}
	sink.(SymbolInjector).InjectSymbol(1, "x")
	if st := g.Stats(); st.Panics != 3 {
		t.Fatalf("panics = %d, want 3 (init, deselect, inject)", st.Panics)
	}
	// After a trip the lifecycle paths short-circuit instead of recovering.
	g2 := NewGuard(inner, GuardOptions{PanicLimit: 1})
	g2.Sink().(Deselector).OnDeselect(nil) // panic 1 -> trip
	if !g2.Tripped() {
		t.Fatal("not tripped")
	}
	before := g2.Stats().Panics
	g2.Sink().(SymbolInjector).InjectSymbol(1, "x")
	if got := g2.Stats().Panics; got != before {
		t.Fatalf("open breaker still reached the backend: panics %d -> %d", before, got)
	}
}

// TestGuardTombstone: the tombstone keeps a detached backend's drop
// accounting alive — every enter counts as DroppedPanicked — and costs
// nothing to "initialize".
func TestGuardTombstone(t *testing.T) {
	inner := &plainBackend{name: "dead"}
	g := NewGuard(inner, GuardOptions{})
	ts := g.Tombstone()
	if ts.Name() != "dead" {
		t.Fatalf("tombstone name = %q", ts.Name())
	}
	if cost := ts.InitCost(99); cost != 0 {
		t.Fatalf("tombstone InitCost = %d, want 0", cost)
	}
	// Identity differs from the sink, so a swap from sink to tombstone
	// diffs as departure+arrival and closes the dangling state.
	if any(ts) == any(g.Sink()) {
		t.Fatal("tombstone identity equals sink identity; swap diff would keep it")
	}
	for i := 0; i < 4; i++ {
		ts.OnEnter(&fakeCtx{}, nil)
		ts.OnExit(&fakeCtx{}, nil)
	}
	if got := g.DroppedPanicked(); got != 4 {
		t.Fatalf("tombstone dropped = %d, want 4 (enter units only)", got)
	}
	if inner.enters != 0 {
		t.Fatal("tombstone delivered to the detached backend")
	}
}

// TestSwapBackendIdentityDiff: a partial swap that keeps one mux child must
// not close the kept child's state or re-charge its start-up cost; the
// departing child closes its dangling state, and only the arriving child
// pays InitCost and receives the DSO symbol replay.
func TestSwapBackendIdentityDiff(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	kept := &dsBackend{plainBackend: plainBackend{name: "kept"}}
	departing := &dsBackend{plainBackend: plainBackend{name: "departing"}}
	rt, err := New(proc, xr, ic.New("app", "s", []string{"kernel"}), NewMux(kept, departing), Options{})
	if err != nil {
		t.Fatal(err)
	}
	arriving := &siBackend{plainBackend: plainBackend{name: "arriving"}}
	rep, err := rt.SwapBackend(NewMux(kept, arriving))
	if err != nil {
		t.Fatal(err)
	}
	if kept.deselects != 0 {
		t.Fatalf("kept child closed state on a partial swap: %d deselects", kept.deselects)
	}
	if departing.deselects == 0 {
		t.Fatal("departing child never closed its dangling state")
	}
	if rep.SyntheticExitsByBackend["departing"] != departing.deselects {
		t.Fatalf("synthetic exits by backend = %v, want departing=%d",
			rep.SyntheticExitsByBackend, departing.deselects)
	}
	if rep.VirtualNs != 11 {
		t.Fatalf("VirtualNs = %d, want 11 (only the arriving leaf pays)", rep.VirtualNs)
	}
	if len(arriving.injected) == 0 {
		t.Fatal("arriving SymbolInjector got no DSO symbol replay")
	}
	// Events flow to the new set.
	tc := &fakeCtx{}
	kernel := packedOf(t, b, xr, proc, "kernel")
	xr.Dispatch(tc, kernel, xray.Entry)
	xr.Dispatch(tc, kernel, xray.Exit)
	if kept.enters != 1 || arriving.enters != 1 || departing.enters != 0 {
		t.Fatalf("post-swap enters: kept=%d arriving=%d departing=%d, want 1/1/0",
			kept.enters, arriving.enters, departing.enters)
	}
}
