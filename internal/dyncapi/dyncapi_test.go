package dyncapi

import (
	"bytes"
	"testing"

	"capi/internal/compiler"
	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/prog"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// buildProg: exe{main, kernel} + lib.so{dso_fn, hidden_fn} + libmpi.
func buildProg(t *testing.T) *compiler.Build {
	t.Helper()
	p := prog.New("app", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("lib.so", prog.SharedObject)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)
	p.MustAddFunc(&prog.Function{Name: "MPI_Init", Unit: "libmpi.so"})
	p.MustAddFunc(&prog.Function{
		Name: "main", Unit: "app.exe", Statements: 30,
		Ops: []prog.Op{prog.MPICall("MPI_Init", 0), prog.Call("kernel", 1), prog.Call("dso_fn", 1), prog.Call("hidden_fn", 1)},
	})
	p.MustAddFunc(&prog.Function{Name: "kernel", Unit: "app.exe", Statements: 40, LoopDepth: 1})
	p.MustAddFunc(&prog.Function{Name: "dso_fn", Unit: "lib.so", Statements: 50})
	p.MustAddFunc(&prog.Function{Name: "hidden_fn", Unit: "lib.so", Statements: 50, Visibility: prog.Hidden})
	b, err := compiler.Compile(p, compiler.Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func setup(t *testing.T, b *compiler.Build) (*obj.Process, *xray.Runtime) {
	t.Helper()
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := xray.NewRuntime(proc)
	if err != nil {
		t.Fatal(err)
	}
	return proc, rt
}

type fakeCtx struct {
	rank *mpi.Rank
	clk  vtime.Clock
}

func (f *fakeCtx) RankID() int {
	if f.rank != nil {
		return f.rank.ID()
	}
	return 0
}

func (f *fakeCtx) Clock() *vtime.Clock {
	if f.rank != nil {
		return f.rank.Clock()
	}
	return &f.clk
}

func (f *fakeCtx) MPIRank() *mpi.Rank { return f.rank }

func packedOf(t *testing.T, b *compiler.Build, xr *xray.Runtime, proc *obj.Process, name string) int32 {
	t.Helper()
	lay := b.Layout[name]
	if lay == nil || !lay.HasSleds {
		t.Fatalf("%s has no sleds", name)
	}
	lo := proc.Object(lay.Unit)
	objID, ok := xr.ObjectID(lo)
	if !ok {
		t.Fatalf("object %s not registered", lay.Unit)
	}
	id, err := xray.PackID(objID, lay.FuncID)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestICPatchingAndResolution(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	cfg := ic.New("app", "test", []string{"kernel", "dso_fn", "hidden_fn"})
	back := &CygBackend{}
	rt, err := New(proc, xr, cfg, back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.Report()
	if rep.Objects != 2 { // exe + lib.so
		t.Fatalf("objects = %d", rep.Objects)
	}
	// hidden_fn is in the DSO with hidden visibility: unresolvable.
	if rep.Unresolved != 1 {
		t.Fatalf("unresolved = %d, want 1", rep.Unresolved)
	}
	// It was selected: the cross-check must notice.
	if rep.UnresolvedSelected != 1 {
		t.Fatalf("unresolved-selected = %d, want 1", rep.UnresolvedSelected)
	}
	// kernel and dso_fn are patched; main is not; hidden_fn cannot be.
	if rep.Patched != 2 {
		t.Fatalf("patched = %d, want 2", rep.Patched)
	}
	if !xr.Patched(packedOf(t, b, xr, proc, "kernel")) {
		t.Fatal("kernel not patched")
	}
	if xr.Patched(packedOf(t, b, xr, proc, "main")) {
		t.Fatal("main should not be patched")
	}
	if xr.Patched(packedOf(t, b, xr, proc, "hidden_fn")) {
		t.Fatal("hidden_fn must not be patched (unresolvable)")
	}
	if rt.InitSeconds() <= 0 {
		t.Fatal("no init cost accounted")
	}
	if rt.Backend() != back {
		t.Fatal("backend accessor wrong")
	}
}

func TestPatchAllMode(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	rt, err := New(proc, xr, nil, &CygBackend{}, Options{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.Report()
	// All four app functions have sleds and get patched, hidden included.
	if rep.Patched != 4 {
		t.Fatalf("patched = %d, want 4", rep.Patched)
	}
	if !xr.Patched(packedOf(t, b, xr, proc, "hidden_fn")) {
		t.Fatal("PatchAll must patch unresolved functions too")
	}
}

func TestNewValidation(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	if _, err := New(nil, xr, nil, &CygBackend{}, Options{PatchAll: true}); err == nil {
		t.Fatal("nil process should fail")
	}
	if _, err := New(proc, xr, nil, &CygBackend{}, Options{}); err == nil {
		t.Fatal("missing IC without PatchAll should fail")
	}
}

func TestCygBackendEvents(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	var addrs []uint64
	back := &CygBackend{
		EnterFunc: func(tc xray.ThreadCtx, addr uint64) { addrs = append(addrs, addr) },
		ExitFunc:  func(tc xray.ThreadCtx, addr uint64) { addrs = append(addrs, addr) },
	}
	rt, err := New(proc, xr, ic.New("a", "s", []string{"kernel"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	id := packedOf(t, b, xr, proc, "kernel")
	xr.Dispatch(tc, id, xray.Entry)
	xr.Dispatch(tc, id, xray.Exit)
	if len(addrs) != 2 || addrs[0] != addrs[1] {
		t.Fatalf("addrs = %v", addrs)
	}
	want, _ := xr.FunctionAddress(id)
	if addrs[0] != want {
		t.Fatalf("addr = %#x, want %#x", addrs[0], want)
	}
	_ = rt
}

func TestScorePBackendWithInjection(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	m, err := scorep.New(scorep.Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	resolver := scorep.NewResolverFromExecutable(proc)
	back := NewScorePBackend(m, resolver)
	rt, err := New(proc, xr, ic.New("a", "s", []string{"kernel", "dso_fn"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.Report()
	// dso_fn was injected (dynamic symbol of lib.so); hidden_fn was not.
	if rep.SymbolsInjected < 1 {
		t.Fatalf("symbols injected = %d", rep.SymbolsInjected)
	}
	tc := &fakeCtx{}
	for _, name := range []string{"kernel", "dso_fn"} {
		id := packedOf(t, b, xr, proc, name)
		xr.Dispatch(tc, id, xray.Entry)
		tc.Clock().Advance(1000)
		xr.Dispatch(tc, id, xray.Exit)
	}
	prof := m.Profile()
	if prof.Region("kernel") == nil {
		t.Fatal("kernel missing from profile (exe resolution)")
	}
	if prof.Region("dso_fn") == nil {
		t.Fatal("dso_fn missing from profile — symbol injection failed")
	}
	if prof.UnknownEvents != 0 {
		t.Fatalf("unknown events = %d", prof.UnknownEvents)
	}
}

func TestScorePWithoutInjectionYieldsUnknown(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	m, _ := scorep.New(scorep.Options{Ranks: 1})
	resolver := scorep.NewResolverFromExecutable(proc)
	// Drive the measurement directly (no DynCaPI injection).
	tc := &fakeCtx{}
	lay := b.Layout["dso_fn"]
	lo := proc.Object(lay.Unit)
	m.CygEnter(tc, resolver, lo.Base+lay.EntryOffset)
	m.CygExit(tc, resolver, lo.Base+lay.EntryOffset)
	if m.Profile().UnknownEvents != 2 {
		t.Fatalf("unknown events = %d, want 2 (Score-P cannot resolve DSO addresses alone)", m.Profile().UnknownEvents)
	}
	_ = xr
}

func TestTALPBackendLifecycle(t *testing.T) {
	b := buildProg(t)
	proc, xr := setup(t, b)
	w, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	mon := talp.New(w, talp.Options{})
	back := NewTALPBackend(mon)
	_, err = New(proc, xr, ic.New("a", "s", []string{"main", "kernel"}), back, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mainID := packedOf(t, b, xr, proc, "main")
	kernelID := packedOf(t, b, xr, proc, "kernel")
	err = w.Run(func(r *mpi.Rank) error {
		tc := &fakeCtx{rank: r}
		// main is entered before MPI_Init: registration fails permanently.
		xr.Dispatch(tc, mainID, xray.Entry)
		if err := r.Init(); err != nil {
			return err
		}
		// kernel after Init: recorded.
		xr.Dispatch(tc, kernelID, xray.Entry)
		r.Clock().Advance(vtime.Millisecond)
		xr.Dispatch(tc, kernelID, xray.Exit)
		xr.Dispatch(tc, mainID, xray.Exit) // unbalanced for failed region: ignored
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.FailedRegions() != 1 {
		t.Fatalf("failed regions = %d, want 1 (main)", back.FailedRegions())
	}
	rep := mon.Report()
	if rep.Region("kernel") == nil {
		t.Fatal("kernel region missing")
	}
	if rep.Region("main") != nil {
		t.Fatal("main must not be recorded (pre-init)")
	}
	if len(rep.FailedPreInit) != 1 || rep.FailedPreInit[0] != "main" {
		t.Fatalf("failed pre-init = %v", rep.FailedPreInit)
	}
}

func TestBackendNames(t *testing.T) {
	if (&CygBackend{}).Name() != "cyg-profile" {
		t.Fatal("cyg name")
	}
	m, _ := scorep.New(scorep.Options{Ranks: 1})
	if NewScorePBackend(m, scorep.NewResolver()).Name() != "scorep" {
		t.Fatal("scorep name")
	}
	w, _ := mpi.NewWorld(1, mpi.DefaultCostModel())
	if NewTALPBackend(talp.New(w, talp.Options{})).Name() != "talp" {
		t.Fatal("talp name")
	}
}

func TestInitCostGrowsWithPatching(t *testing.T) {
	b := buildProg(t)
	proc1, xr1 := setup(t, b)
	rtSmall, err := New(proc1, xr1, ic.New("a", "s", []string{"kernel"}), &CygBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b2 := buildProg(t)
	proc2, xr2 := setup(t, b2)
	rtFull, err := New(proc2, xr2, nil, &CygBackend{}, Options{PatchAll: true})
	if err != nil {
		t.Fatal(err)
	}
	if rtFull.Report().InitVirtualNs <= rtSmall.Report().InitVirtualNs {
		t.Fatalf("full patch init %d should exceed filtered %d",
			rtFull.Report().InitVirtualNs, rtSmall.Report().InitVirtualNs)
	}
}

// TestStaticIDSelection exercises the §VI-B(a) extension the paper
// proposes: an IC carrying statically determined packed IDs can patch a
// hidden DSO function that name-based resolution cannot reach.
func TestStaticIDSelection(t *testing.T) {
	b := buildProg(t)

	// Name-based IC: hidden_fn is selected but unresolvable, so it stays
	// unpatched and is flagged in the report (the paper's check).
	proc, xr := setup(t, b)
	cfg := ic.New("app", "", []string{"hidden_fn"})
	rt, err := New(proc, xr, cfg, &CygBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := rt.Report()
	if rep.Patched != 0 || rep.UnresolvedSelected != 1 {
		t.Fatalf("name-based: patched %d, unresolvedSelected %d; want 0, 1",
			rep.Patched, rep.UnresolvedSelected)
	}

	// ID-based IC: the static mapping includes hidden_fn; DynCaPI patches
	// it without resolving the name.
	ids, err := b.StaticPackedIDs()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ids["hidden_fn"]; !ok {
		t.Fatalf("static mapping misses hidden_fn: %v", ids)
	}
	proc2, xr2 := setup(t, b)
	cfg2 := ic.New("app", "", []string{"hidden_fn"}).WithIDs(ids)
	if len(cfg2.IncludeIDs) != 1 {
		t.Fatalf("IncludeIDs = %v", cfg2.IncludeIDs)
	}
	rt2, err := New(proc2, xr2, cfg2, &CygBackend{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := rt2.Report()
	if rep2.Patched != 1 || rep2.PatchedByID != 1 {
		t.Fatalf("id-based: patched %d, byID %d; want 1, 1", rep2.Patched, rep2.PatchedByID)
	}
	// The static mapping must agree with the runtime registration order.
	want := packedOf(t, b, xr2, proc2, "hidden_fn")
	if cfg2.IncludeIDs[0] != want {
		t.Fatalf("static packed ID %d != runtime %d", cfg2.IncludeIDs[0], want)
	}
	if !xr2.Patched(want) {
		t.Fatal("hidden_fn sleds not patched")
	}
}

// TestStaticIDsRoundTripJSON ensures the ID list survives the IC file
// format (the paper proposes shipping the IDs inside the IC file).
func TestStaticIDsRoundTripJSON(t *testing.T) {
	b := buildProg(t)
	ids, err := b.StaticPackedIDs()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ic.New("app", "spec", []string{"hidden_fn", "kernel"}).WithIDs(ids)
	var buf bytes.Buffer
	if err := cfg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ic.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.IncludeIDs) != len(cfg.IncludeIDs) {
		t.Fatalf("IDs lost: %v vs %v", back.IncludeIDs, cfg.IncludeIDs)
	}
	for _, id := range cfg.IncludeIDs {
		if !back.ContainsID(id) {
			t.Fatalf("id %d lost in round trip", id)
		}
	}
}
