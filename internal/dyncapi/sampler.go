// Sampling and redundancy suppression in the dispatch hot path: the stage
// between the XRay handler and the measurement-backend chain that gives the
// adapt controller — and remote operators — a *gentler* knob than full
// deselection. Instead of unpatching a function (losing it entirely), the
// hook stays installed and the sampler thins the event stream:
//
//   - 1-in-N stride sampling: deliver the first of every Stride enters per
//     rank, drop the rest (Mertz & Nunes, "Software Runtime Monitoring with
//     Adaptive Sampling Rate", arXiv:2305.01039);
//   - min-duration suppression: drop enter/exit pairs of functions whose
//     previous completed invocation was shorter than a threshold, with
//     exact drop accounting (the measured duration of every suppressed
//     pair accumulates in SuppressedNs even though the pair was never
//     delivered);
//   - redundancy suppression: collapse repeated identical short calls —
//     same function, back-to-back within a gap — into a count + aggregate
//     (Arafa et al., "Redundancy Suppression in Time-Aware Dynamic Binary
//     Instrumentation", arXiv:1703.02873).
//
// Policies are configured per function ID and published atomically: the
// handler reads one per-function pointer (hung off the ResolvedFunc the
// active-set lookup already produced) and plain-loads the policy fields, so
// Reconfigure / SetSampling / the adapt controller can change rates on a
// live run without ever locking the hot path.
//
// Pairing is exact across live rate changes: the deliver/suppress decision
// is made once at enter time and recorded in a per-rank decision stack; the
// matching exit follows the recorded decision regardless of what the policy
// says by then. A pair is therefore always delivered whole or dropped
// whole, and the conservation invariant
//
//	enters == delivered + sampled-out + suppressed + collapsed
//
// holds exactly, which the -race stress tests assert against an
// independently counting backend.
//
// Counter visibility: the per-rank counters are single-writer plain fields
// (the rank's goroutine) mirrored into atomics every publication window
// (64 enters). Mid-phase scrapes read the mirrors and may lag by up to one
// window; FlushSampling publishes the exact values and must only run while
// no events are dispatching (Instance.Run flushes after the engine joins
// its rank goroutines).
package dyncapi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"capi/internal/xray"
)

// DefaultRedundantGapNs is the redundancy-suppression gap used when a
// policy enables CollapseRedundant without choosing one: two calls of the
// same function starting within this window (virtual ns) count as repeats.
const DefaultRedundantGapNs = 1000

// samplePublishWindow is the enter count between publications of a slot's
// plain counters into their atomic mirrors (a power of two).
const samplePublishWindow = 64

// SamplePolicy is one function's sampling/suppression policy. The zero
// value delivers everything (but keeps the pairing state alive, so a policy
// can be cleared mid-pair without unbalancing the backends).
type SamplePolicy struct {
	// Stride delivers the first of every Stride enters per rank and drops
	// the rest (1-in-N sampling). Values <= 1 deliver every enter.
	Stride int `json:"stride,omitempty"`
	// MinDurationNs suppresses enter/exit pairs predicted shorter than
	// this threshold (virtual ns). The prediction is the function's most
	// recent completed duration on the executing rank; the first pair (no
	// history) is always delivered, and the measured duration of every
	// suppressed pair is accounted exactly in SuppressedNs.
	MinDurationNs int64 `json:"minDurationNs,omitempty"`
	// CollapseRedundant collapses repeated identical short calls — the
	// same function called again within RedundantGapNs of its previous
	// exit, with a short previous duration — into a count + aggregate
	// (CollapsedCalls / CollapsedNs). The first call of a streak is
	// delivered.
	CollapseRedundant bool `json:"collapseRedundant,omitempty"`
	// RedundantGapNs is the maximum virtual-time gap between the previous
	// exit and the next enter for the call to count as a repeat. 0 uses
	// DefaultRedundantGapNs.
	RedundantGapNs int64 `json:"redundantGapNs,omitempty"`
}

// PolicyError is a sampling-config validation failure, carrying the JSON
// field that caused it so the control plane can name the offending field
// in its 400 body (errors.As-able through any wrapping).
type PolicyError struct {
	// Field is the offending field's JSON name: "stride", "minDurationNs",
	// "redundantGapNs", "funcs" or "ids".
	Field string
	Msg   string
}

func (e *PolicyError) Error() string { return e.Msg }

// validate rejects nonsensical policies.
func (p SamplePolicy) validate() error {
	if p.Stride < 0 {
		return &PolicyError{Field: "stride", Msg: fmt.Sprintf("dyncapi: sampling stride %d must be >= 0", p.Stride)}
	}
	if p.MinDurationNs < 0 {
		return &PolicyError{Field: "minDurationNs", Msg: fmt.Sprintf("dyncapi: sampling min duration %dns must be >= 0", p.MinDurationNs)}
	}
	if p.RedundantGapNs < 0 {
		return &PolicyError{Field: "redundantGapNs", Msg: fmt.Sprintf("dyncapi: redundancy gap %dns must be >= 0", p.RedundantGapNs)}
	}
	if p.RedundantGapNs > 0 && !p.CollapseRedundant {
		return &PolicyError{Field: "redundantGapNs", Msg: "dyncapi: redundancy gap set without CollapseRedundant"}
	}
	return nil
}

// isZero reports whether the policy delivers everything.
func (p SamplePolicy) isZero() bool {
	return p.Stride <= 1 && p.MinDurationNs <= 0 && !p.CollapseRedundant
}

// SamplingConfig is a whole-table sampling configuration: an optional
// default policy applied to every resolvable function plus per-function
// overrides by name or packed ID. Applying a config replaces the previous
// table atomically per function; an empty config clears all policies.
type SamplingConfig struct {
	// Default applies to every function the runtime resolved (and every
	// function selected later — the table covers the full resolution set,
	// not just the active selection).
	Default *SamplePolicy `json:"default,omitempty"`
	// Funcs overrides the default per function name. A name matching
	// several functions (same symbol in several objects) applies to all of
	// them. Unknown names are rejected before anything is applied.
	Funcs map[string]SamplePolicy `json:"funcs,omitempty"`
	// IDs overrides per packed XRay ID (reaches functions whose names
	// never resolved). Unknown IDs are rejected before anything is applied.
	IDs map[int32]SamplePolicy `json:"ids,omitempty"`
}

// SamplingCounters is the sampler's conservation accounting, summed over
// every function and rank. Enters == Delivered + SampledEvents +
// SuppressedPairs + CollapsedCalls, exactly, once the counters are flushed
// (each dropped enter stands for a whole dropped enter/exit pair).
type SamplingCounters struct {
	// Enters counts every enter that reached the sampler.
	Enters int64 `json:"enters"`
	// Delivered counts the enters passed through to the backend chain.
	Delivered int64 `json:"delivered"`
	// SampledEvents counts the enters dropped by 1-in-N stride sampling.
	SampledEvents int64 `json:"sampledEvents"`
	// SuppressedPairs counts the pairs dropped by min-duration
	// suppression; SuppressedNs is their exactly measured total duration.
	SuppressedPairs int64 `json:"suppressedPairs"`
	SuppressedNs    int64 `json:"suppressedNs"`
	// CollapsedCalls counts the repeated identical short calls collapsed
	// by the redundancy suppressor; CollapsedNs aggregates their duration.
	CollapsedCalls int64 `json:"collapsedCalls"`
	CollapsedNs    int64 `json:"collapsedNs"`
}

// add accumulates o into c.
func (c *SamplingCounters) add(o SamplingCounters) {
	c.Enters += o.Enters
	c.Delivered += o.Delivered
	c.SampledEvents += o.SampledEvents
	c.SuppressedPairs += o.SuppressedPairs
	c.SuppressedNs += o.SuppressedNs
	c.CollapsedCalls += o.CollapsedCalls
	c.CollapsedNs += o.CollapsedNs
}

// FuncSampling is one function's sampling accounting, for per-function
// reports.
type FuncSampling struct {
	ID       int32            `json:"id"`
	Name     string           `json:"name,omitempty"`
	Policy   SamplePolicy     `json:"policy"`
	Counters SamplingCounters `json:"counters"`
}

// SamplingSnapshot is the point-in-time sampling view served on /v1/status
// and carried in the report envelope.
type SamplingSnapshot struct {
	// Configured tells whether any sampling policy is installed.
	Configured bool `json:"configured"`
	// Default echoes the table's default policy (nil when none).
	Default *SamplePolicy `json:"default,omitempty"`
	// FuncPolicies counts the per-function overrides currently installed
	// (including adapt-controller demotions).
	FuncPolicies int `json:"funcPolicies,omitempty"`
	// Counters is the aggregate conservation accounting. Mid-phase it may
	// lag the hot path by up to one publication window; after a completed
	// phase (FlushSampling) it is exact.
	Counters SamplingCounters `json:"counters"`
}

// Hot-path policy word: the low 32 bits carry the stride-1 mask for
// power-of-two strides; flagModulo marks a non-power-of-two stride (slow
// modulo path); flagTimed marks a policy that needs enter timestamps
// (min-duration or redundancy). One atomic load decides the whole fast
// path.
const (
	sampleMaskBits   = 0xffffffff
	sampleFlagModulo = 1 << 32
	sampleFlagTimed  = 1 << 33
)

// Drop classes recorded (packed into the timestamp stack) so the exit can
// attribute the measured duration exactly.
const (
	clsDelivered = iota
	clsSuppressed
	clsCollapsed
	clsSampledOut
)

// Timestamp-stack entry layout: now<<18 | cls<<16 | depth.
const (
	sampleDepthMask  = 0xffff
	sampleClsShift   = 16
	sampleStartShift = 18
)

// funcSampleState is one function's live sampling state: the atomically
// readable policy fields plus per-rank decision/counter slots. States are
// created when a function first receives a policy and are never removed —
// clearing a policy zeroes the fields but keeps the pairing stacks, so
// in-flight pairs stay balanced across the change.
type funcSampleState struct {
	// flags is the packed hot-path policy word (see sampleFlag*); 0 means
	// "deliver everything". stride/minDur/gapNs hold the full values for
	// the slow paths and snapshots.
	flags  atomic.Uint64
	stride atomic.Int64
	minDur atomic.Int64
	// gapNs > 0 means redundancy collapse is enabled with that gap.
	gapNs atomic.Int64

	// slots is indexed by rank ID; ranks beyond the preallocated range go
	// through the overflow map (slower, but correct).
	slots    []sampleSlot
	overflow sync.Map // int -> *sampleSlot
}

// setPolicy publishes a policy. Handlers pick the new fields up on their
// next event; pairs already open complete under their recorded decisions.
func (st *funcSampleState) setPolicy(p SamplePolicy) {
	stride := int64(p.Stride)
	if stride < 1 {
		stride = 1
	}
	var gap int64
	if p.CollapseRedundant {
		gap = p.RedundantGapNs
		if gap <= 0 {
			gap = DefaultRedundantGapNs
		}
	}
	var flags uint64
	if stride > 1 {
		if stride&(stride-1) == 0 {
			flags |= uint64(stride - 1)
		} else {
			flags |= sampleFlagModulo
		}
	}
	if p.MinDurationNs > 0 || gap > 0 {
		flags |= sampleFlagTimed
	}
	st.stride.Store(stride)
	st.minDur.Store(p.MinDurationNs)
	st.gapNs.Store(gap)
	st.flags.Store(flags)
}

// policy reads the current policy back (for snapshots).
func (st *funcSampleState) policy() SamplePolicy {
	p := SamplePolicy{MinDurationNs: st.minDur.Load()}
	if s := st.stride.Load(); s > 1 {
		p.Stride = int(s)
	}
	if gap := st.gapNs.Load(); gap > 0 {
		p.CollapseRedundant = true
		p.RedundantGapNs = gap
	}
	return p
}

// sampleSlot is one (function, rank) sampling state. The plain fields are
// single-writer — only the rank's own goroutine executes handlers for that
// rank — and are mirrored into pub every samplePublishWindow enters.
type sampleSlot struct {
	// depth counts open invocations; bits is the deliver-decision stack
	// (bit 0 = innermost open invocation). Nesting deeper than 64 sheds
	// the oldest frames; the simulated workloads never approach that.
	depth int
	bits  uint64
	// ctr counts enters on this rank (the stride counter; also the total
	// enter count the mirrors publish).
	ctr uint64
	// starts is the enter-timestamp stack, pushed only for timed policies
	// (min-duration / redundancy). Each entry packs the virtual timestamp,
	// the 2-bit drop class and the frame's nesting depth
	// (now<<18 | cls<<16 | depth) — the depth match is how an exit knows
	// whether its enter pushed a timestamp, without the fast path paying
	// for a second pairing stack. The packing caps a timestamp at 2^45
	// virtual ns (~9.8 virtual hours); rank clocks restart at zero every
	// phase, so a single phase cannot approach it.
	starts []int64
	// lastDurNs is the most recent completed duration (-1 = none yet);
	// lastEndNs the virtual time of the most recent exit.
	lastDurNs int64
	lastEndNs int64

	// plain accumulation counters (single-writer).
	sampledOut, suppressed, collapsed int64
	suppressedNs, collapsedNs         int64

	// published mirrors, safe for concurrent readers.
	pubEnters, pubSampledOut, pubSuppressed, pubCollapsed atomic.Int64
	pubSuppressedNs, pubCollapsedNs                       atomic.Int64
}

func (sl *sampleSlot) init() { sl.lastDurNs = -1 }

// publish mirrors the plain counters into their atomics.
func (sl *sampleSlot) publish() {
	sl.pubEnters.Store(int64(sl.ctr))
	sl.pubSampledOut.Store(sl.sampledOut)
	sl.pubSuppressed.Store(sl.suppressed)
	sl.pubCollapsed.Store(sl.collapsed)
	sl.pubSuppressedNs.Store(sl.suppressedNs)
	sl.pubCollapsedNs.Store(sl.collapsedNs)
}

// counters reads the published mirrors.
func (sl *sampleSlot) counters() SamplingCounters {
	c := SamplingCounters{
		Enters:          sl.pubEnters.Load(),
		SampledEvents:   sl.pubSampledOut.Load(),
		SuppressedPairs: sl.pubSuppressed.Load(),
		SuppressedNs:    sl.pubSuppressedNs.Load(),
		CollapsedCalls:  sl.pubCollapsed.Load(),
		CollapsedNs:     sl.pubCollapsedNs.Load(),
	}
	c.Delivered = c.Enters - c.SampledEvents - c.SuppressedPairs - c.CollapsedCalls
	return c
}

// slot returns the rank's slot. Kept small enough to inline; rank IDs
// beyond the preallocated range take the cold overflow path.
func (st *funcSampleState) slot(rank int) *sampleSlot {
	if uint(rank) < uint(len(st.slots)) {
		return &st.slots[rank]
	}
	return st.overflowSlot(rank)
}

// overflowSlot is the reviewed slow path for rank IDs beyond the
// preallocated range: it may allocate and touch a sync.Map, so the hotpath
// traversal stops here.
//
//capi:coldpath
func (st *funcSampleState) overflowSlot(rank int) *sampleSlot {
	if v, ok := st.overflow.Load(rank); ok {
		return v.(*sampleSlot)
	}
	sl := &sampleSlot{}
	sl.init()
	v, _ := st.overflow.LoadOrStore(rank, sl)
	return v.(*sampleSlot)
}

// admit makes the deliver/drop decision for one event. It is the hot path:
// called from the XRay handler for every event of a function that ever had
// a sampling policy; the timed-policy work is kept out-of-line so the
// stride/no-policy path stays a handful of plain field operations.
//
//capi:hotpath
func (st *funcSampleState) admit(tc xray.ThreadCtx, kind xray.EntryType) bool {
	sl := st.slot(tc.RankID())
	if kind == xray.Entry {
		sl.ctr++
		flags := st.flags.Load()
		deliver := true
		// 1-in-N stride sampling: deliver the first of every stride enters.
		if mask := flags & sampleMaskBits; mask != 0 {
			if (sl.ctr-1)&mask != 0 {
				deliver = false
				sl.sampledOut++
			}
		} else if flags&sampleFlagModulo != 0 {
			if (sl.ctr-1)%uint64(st.stride.Load()) != 0 {
				deliver = false
				sl.sampledOut++
			}
		}
		// Record the decision so the matching exit follows it even if the
		// policy changes in between (exact pairing across live rate
		// changes).
		sl.depth++
		if flags&sampleFlagTimed != 0 {
			deliver = st.admitTimedEnter(sl, tc, deliver)
		}
		sl.bits <<= 1
		if deliver {
			sl.bits |= 1
		}
		if sl.ctr&(samplePublishWindow-1) == 0 {
			sl.publish()
		}
		return deliver
	}
	if sl.depth == 0 {
		// The enter predates the sampler (policy installed mid-pair): it
		// was delivered, so the exit must be too.
		return true
	}
	deliver := sl.bits&1 == 1
	if n := len(sl.starts); n > 0 && int(sl.starts[n-1]&sampleDepthMask) == sl.depth {
		st.finishTimedExit(sl, tc)
	}
	sl.depth--
	sl.bits >>= 1
	return deliver
}

// admitTimedEnter is the out-of-line enter path for policies that need the
// virtual clock (min-duration suppression, redundancy collapse). It pushes
// the packed timestamp entry and refines the deliver decision. Called with
// sl.depth already counting this frame.
func (st *funcSampleState) admitTimedEnter(sl *sampleSlot, tc xray.ThreadCtx, deliver bool) bool {
	now := tc.Clock().Now()
	minDur := st.minDur.Load()
	cls := clsDelivered
	if !deliver {
		cls = clsSampledOut
	} else {
		if gap := st.gapNs.Load(); gap > 0 && sl.lastDurNs >= 0 && now-sl.lastEndNs <= gap {
			// Redundancy: a repeat of a short call within the gap.
			short := minDur
			if short <= 0 {
				short = gap
			}
			if sl.lastDurNs < short {
				deliver, cls = false, clsCollapsed
				sl.collapsed++
			}
		}
		if deliver && minDur > 0 && sl.lastDurNs >= 0 && sl.lastDurNs < minDur {
			// Min-duration: predicted short from the last completed pair.
			deliver, cls = false, clsSuppressed
			sl.suppressed++
		}
	}
	//capi:hotpath-ok amortized per-rank timestamp stack: grows to the rank's max nesting depth once, then never again
	sl.starts = append(sl.starts,
		now<<sampleStartShift|int64(cls)<<sampleClsShift|int64(sl.depth&sampleDepthMask))
	return deliver
}

// finishTimedExit pops the frame's packed timestamp entry, updates the
// duration prediction and attributes the measured duration to its drop
// class — the exact accounting behind SuppressedNs/CollapsedNs: the pair's
// true duration is measured from the rank's virtual clock even though the
// pair was never delivered.
func (st *funcSampleState) finishTimedExit(sl *sampleSlot, tc xray.ThreadCtx) {
	packed := sl.starts[len(sl.starts)-1]
	sl.starts = sl.starts[:len(sl.starts)-1]
	now := tc.Clock().Now()
	dur := now - packed>>sampleStartShift
	sl.lastDurNs = dur
	sl.lastEndNs = now
	switch (packed >> sampleClsShift) & 3 {
	case clsSuppressed:
		sl.suppressedNs += dur
	case clsCollapsed:
		sl.collapsedNs += dur
	}
}

// flush publishes the exact counters of every slot. Quiescent-only: the
// plain fields are single-writer rank state, so this must not run while
// events are dispatching.
func (st *funcSampleState) flush() {
	for i := range st.slots {
		st.slots[i].publish()
	}
	st.overflow.Range(func(_, v any) bool {
		v.(*sampleSlot).publish()
		return true
	})
}

// flushRanks publishes the exact counters of the first n rank slots only,
// leaving higher ranks (HTTP request workers) untouched — their slots are
// single-writer state that may still be dispatching.
func (st *funcSampleState) flushRanks(n int) {
	if n > len(st.slots) {
		n = len(st.slots)
	}
	for i := 0; i < n; i++ {
		st.slots[i].publish()
	}
}

// counters sums the published counters of every slot.
func (st *funcSampleState) counters() SamplingCounters {
	var c SamplingCounters
	for i := range st.slots {
		c.add(st.slots[i].counters())
	}
	st.overflow.Range(func(_, v any) bool {
		c.add(v.(*sampleSlot).counters())
		return true
	})
	return c
}

// newFuncSampleState allocates the per-rank slots.
func newFuncSampleState(ranks int) *funcSampleState {
	st := &funcSampleState{slots: make([]sampleSlot, ranks)}
	for i := range st.slots {
		st.slots[i].init()
	}
	return st
}

// ---- Runtime sampling API -------------------------------------------------

// sampleState returns (creating if needed) the function's sampling state
// and hangs it off the ResolvedFunc for the lock-free hot path. The
// compare-and-swap makes it safe against the handler's lazy default-state
// creation racing a configuration change — exactly one state per function
// ever wins.
func (rt *Runtime) sampleState(rf *ResolvedFunc) *funcSampleState {
	if st := rf.sample.Load(); st != nil {
		return st
	}
	st := newFuncSampleState(rt.sampleRanks)
	if !rf.sample.CompareAndSwap(nil, st) {
		st = rf.sample.Load()
	}
	return st
}

// lazySampleState is the handler-side slow path: the function has no state
// yet but a table-wide default policy is installed, so materialize a state
// carrying it. dp is the default-policy pointer the handler read; if the
// table changed between that read and the state publication, re-apply the
// now-current policy so no state is left running a stale default. It
// allocates — once per function, on its first-ever event.
//
//capi:coldpath
func (rt *Runtime) lazySampleState(rf *ResolvedFunc, dp *SamplePolicy) *funcSampleState {
	st := newFuncSampleState(rt.sampleRanks)
	st.setPolicy(*dp)
	if !rf.sample.CompareAndSwap(nil, st) {
		return rf.sample.Load()
	}
	if cur := rt.defaultSample.Load(); cur != dp {
		if cur != nil {
			st.setPolicy(*cur)
		} else {
			st.setPolicy(SamplePolicy{})
		}
	}
	return st
}

// SetSampling installs a whole sampling table: the optional default policy
// applies to every resolved function, Funcs/IDs override per function. The
// table is validated and every name/ID resolved *before* anything is
// applied — an invalid config mutates nothing. An empty config clears all
// policies (pairing state is retained so open pairs stay balanced).
// Safe to call while handlers execute; rates change atomically per
// function without locking the hot path.
func (rt *Runtime) SetSampling(cfg SamplingConfig) error {
	if cfg.Default != nil {
		if err := cfg.Default.validate(); err != nil {
			return err
		}
	}
	for name, p := range cfg.Funcs {
		if err := p.validate(); err != nil {
			return &PolicyError{Field: "funcs", Msg: fmt.Sprintf("%v (function %q)", err, name)}
		}
	}
	for id, p := range cfg.IDs {
		if err := p.validate(); err != nil {
			return &PolicyError{Field: "ids", Msg: fmt.Sprintf("%v (id %d)", err, id)}
		}
	}

	rt.mu.Lock()
	defer rt.mu.Unlock()

	// Resolve names first: unknown names (or IDs) reject the whole config
	// before any policy is touched — the control plane's no-mutation-on-400
	// guarantee rests on this.
	idsByName := make(map[string][]int32)
	if len(cfg.Funcs) > 0 {
		for id, rf := range rt.byID {
			if rf.Name != "" {
				idsByName[rf.Name] = append(idsByName[rf.Name], id)
			}
		}
		var unknown []string
		for name := range cfg.Funcs {
			if len(idsByName[name]) == 0 {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return &PolicyError{Field: "funcs", Msg: fmt.Sprintf("dyncapi: unknown function name(s) in sampling config: %s", strings.Join(unknown, ", "))}
		}
	}
	for id := range cfg.IDs {
		if rt.byID[id] == nil {
			return &PolicyError{Field: "ids", Msg: fmt.Sprintf("dyncapi: unknown function id %d in sampling config", id)}
		}
	}

	// The explicit per-ID overrides (by name or ID). The default policy is
	// NOT expanded per function here: it is published as one atomic
	// pointer and materialized into per-function state lazily, on a
	// function's first event — a table-wide default over a paper-scale
	// call graph (~410k functions) must not allocate per-function slots
	// for functions that never fire.
	overrides := make(map[int32]SamplePolicy)
	for name, p := range cfg.Funcs {
		for _, id := range idsByName[name] {
			overrides[id] = p
		}
	}
	for id, p := range cfg.IDs {
		overrides[id] = p
	}

	if cfg.Default != nil {
		p := *cfg.Default
		rt.sampleDefault = &p
		// Publish the new default before re-pointing existing states so a
		// concurrent lazy creation can never resurrect the old table.
		rt.defaultSample.Store(&p)
	} else {
		rt.sampleDefault = nil
		// A clear keeps the accounting, not just the existing states: the
		// published default stays non-nil (zero policy: deliver everything)
		// so a function first firing *after* the clear still materializes a
		// counting state. Publishing nil here would let such functions
		// deliver uncounted events, breaking the independently verified
		// identity backendEnters == delivered for the clear windows of a
		// live rate-change sequence.
		rt.defaultSample.Store(&SamplePolicy{})
	}
	// Overridden functions get their state eagerly (there are few).
	for id, p := range overrides {
		rt.sampleState(rt.byID[id]).setPolicy(p)
	}
	// Every other function that already has a state — lazily materialized
	// defaults from the previous table, cleared overrides, adapt
	// demotions — is re-pointed at the new default (or cleared).
	def := SamplePolicy{}
	if cfg.Default != nil {
		def = *cfg.Default
	}
	for id, rf := range rt.byID {
		if _, ok := overrides[id]; ok {
			continue
		}
		if st := rf.sample.Load(); st != nil {
			st.setPolicy(def)
		}
	}
	rt.samplePolicies = overrides
	return nil
}

// SetFuncSampling installs (or, with a nil policy, removes) one function's
// policy *override*, leaving the rest of the table untouched — the adapt
// controller's demote/promote primitive. Removing an override reverts the
// function to the installed table's default policy (full delivery when no
// default is installed), so a controller promotion cannot silently erode a
// user-installed table. Safe concurrent with handlers.
func (rt *Runtime) SetFuncSampling(id int32, p *SamplePolicy) error {
	if p != nil {
		if err := p.validate(); err != nil {
			return err
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rf := rt.byID[id]
	if rf == nil {
		return fmt.Errorf("dyncapi: unknown function id %d", id)
	}
	if p == nil {
		if st := rf.sample.Load(); st != nil {
			if rt.sampleDefault != nil {
				st.setPolicy(*rt.sampleDefault)
			} else {
				st.setPolicy(SamplePolicy{})
			}
		}
		delete(rt.samplePolicies, id)
		return nil
	}
	rt.sampleState(rf).setPolicy(*p)
	if rt.samplePolicies == nil {
		rt.samplePolicies = make(map[int32]SamplePolicy)
	}
	rt.samplePolicies[id] = *p
	return nil
}

// SamplingCounters sums the sampler's published counters over every
// function and rank. Mid-phase the result may lag the hot path by up to one
// publication window per rank; after FlushSampling it is exact.
func (rt *Runtime) SamplingCounters() SamplingCounters {
	var c SamplingCounters
	for _, st := range rt.sampleStatesSnapshot() {
		c.add(st.counters())
	}
	return c
}

// FlushSampling publishes the exact per-rank counters. It must only be
// called while no events are dispatching (between phases); Instance.Run
// flushes after the execution engine has joined its rank goroutines.
func (rt *Runtime) FlushSampling() {
	for _, st := range rt.sampleStatesSnapshot() {
		st.flush()
	}
}

// FlushSamplingRanks publishes the exact counters of ranks [0, n) only.
// Unlike FlushSampling it is safe while ranks >= n keep dispatching (each
// slot is single-writer per rank): Instance.Run uses it to flush the MPI
// world after the engine has joined, without touching HTTP worker ranks
// that may still be serving request traffic.
func (rt *Runtime) FlushSamplingRanks(n int) {
	for _, st := range rt.sampleStatesSnapshot() {
		st.flushRanks(n)
	}
}

// sampleStatesSnapshot collects every materialized sampling state. byID is
// immutable after New and the per-function pointers are atomic, so no lock
// is needed; states created during the walk are simply picked up by the
// next snapshot.
func (rt *Runtime) sampleStatesSnapshot() []*funcSampleState {
	var out []*funcSampleState
	for _, rf := range rt.byID {
		if st := rf.sample.Load(); st != nil {
			out = append(out, st)
		}
	}
	return out
}

// SamplingSnapshot returns the current sampling view: whether a table is
// installed, the default policy, the override count and the aggregate
// counters.
func (rt *Runtime) SamplingSnapshot() SamplingSnapshot {
	rt.mu.Lock()
	snap := SamplingSnapshot{
		Configured:   rt.sampleDefault != nil || len(rt.samplePolicies) > 0,
		FuncPolicies: len(rt.samplePolicies),
	}
	if rt.sampleDefault != nil {
		p := *rt.sampleDefault
		snap.Default = &p
	}
	rt.mu.Unlock()
	for _, st := range rt.sampleStatesSnapshot() {
		snap.Counters.add(st.counters())
	}
	return snap
}

// SamplingByFunc returns per-function sampling accounting, sorted by packed
// ID, for functions that currently have a policy or ever counted an enter.
func (rt *Runtime) SamplingByFunc() []FuncSampling {
	var out []FuncSampling
	for _, id := range sortedIDs(rt.byID) {
		rf := rt.byID[id]
		st := rf.sample.Load()
		if st == nil {
			continue
		}
		c := st.counters()
		p := st.policy()
		if c.Enters == 0 && p.isZero() {
			continue
		}
		out = append(out, FuncSampling{ID: id, Name: rf.Name, Policy: p, Counters: c})
	}
	return out
}
