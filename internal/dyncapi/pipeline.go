// The asynchronous event pipeline: the stage that lifts the measurement
// backends off the dispatch hot path. In inline mode the XRay handler runs
// the whole backend chain on the executing rank — every event pays the
// backend's bookkeeping before the application continues. In async mode
// (Options.Async) the handler only appends a compact fixed-size record
// (function ID, event kind, recorded timestamps, MPI/initialization state)
// to a per-rank single-writer ring — the design proven in internal/trace —
// and returns; a small pool of consumer goroutines drains the rings in
// batches and feeds the existing Backend/Mux chain off the hot path.
//
// Ordering. Consumers are shard-affine: every rank's ring is drained by
// exactly one consumer, so per-rank event order is preserved — Score-P's
// call stacks stay balanced, TALP's start/stop pairs match, and the extrae
// tracer sees monotonic per-rank timestamps. No cross-rank order is imposed
// (none is needed; every backend keeps per-rank state).
//
// Replay contexts. Backends read the executing context's clock, rank ID and
// (TALP) the *mpi.Rank. The appender therefore records the rank clock, the
// MPI-time total and the initialization flags at dispatch time; the consumer
// replays each event through a per-rank replay context whose pinned clock is
// jumped to the recorded timestamp. Pinning makes the backend's own cost
// charges (Clock().Advance) no-ops — the probe's measurement cost no longer
// advances application virtual time, which is exactly the asynchrony the
// pipeline models. Two context flavors honor what the original context
// supported: one carrying a detached replay *mpi.Rank (for contexts that
// implemented mpiRanker) and one without.
//
// Back-pressure. The ring is bounded. Admission happens at enter events
// only, and reserves one slot for the exit of every currently open appended
// enter, so the exit of an appended enter always fits — pairs are appended
// whole or dropped whole. A dropped enter records its decision in a per-rank
// bit stack (mirroring the sampler's pairing stack) so the matching exit is
// silently skipped, and increments the rank's DroppedAsync counter once per
// dropped pair. The conservation identity therefore survives asynchrony:
//
//	enters == delivered + sampledOut + suppressed + collapsed + droppedAsync
//
// where delivered is what actually reaches the backend chain.
//
// Barriers. DrainPipeline blocks until every event appended before the call
// has been delivered. Instance.Run drains before capturing RunResult;
// Reconfigure and SwapBackend drain before delivering synthetic exits /
// detaching, so dangling-state closure acts on fully caught-up backends.
package dyncapi

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"capi/internal/mpi"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// DefaultAsyncBuf is the default per-rank ring capacity (events).
const DefaultAsyncBuf = 65536

// asyncMaxConsumers caps the consumer pool; shards are distributed
// round-robin over the pool, keeping each shard on exactly one consumer.
const asyncMaxConsumers = 4

// asyncPollInterval is how long an idle consumer sleeps before re-checking
// its shards. Short enough that drain barriers complete promptly, long
// enough that an idle pipeline costs nothing measurable.
const asyncPollInterval = 20 * time.Microsecond

// Event flag bits recorded at append time.
const (
	evHasRank     = 1 << iota // the dispatch context implemented mpiRanker
	evInitialized             // MPI_Init had completed on the rank
	evFinalized               // MPI_Finalize had completed on the rank
)

// asyncEvent is the compact fixed-size record the append-only handler
// writes: everything a backend may read from the executing context, captured
// on the rank goroutine where those reads are single-writer safe.
type asyncEvent struct {
	timeNs int64 // rank clock at dispatch
	mpiNs  int64 // rank's cumulative MPI time (valid when evHasRank)
	id     int32 // packed function ID
	kind   xray.EntryType
	flags  uint8
}

// pipeShard is one rank's ring. Concurrency contract: head, the ring slots
// and the pair-decision state are written only by the rank's own goroutine
// (the same single-writer contract internal/trace shards have); tail is
// written only by the shard's consumer. head/tail are atomics so the two
// sides and the drain barriers synchronize without locks.
type pipeShard struct {
	ring []asyncEvent // written by the rank goroutine, read by the consumer
	mask uint64

	// Producer-owned cache line: head plus the rank-goroutine-private
	// admission state. cachedTail is the producer's last-seen consumer
	// position — admission re-reads the shared tail only when the cached
	// view says the ring is too full, keeping the common-case append off
	// the consumer-written line entirely. depth counts open enters, bits
	// records appended(1)/dropped(0) per open enter (bit 0 innermost);
	// nesting deeper than 64 sheds the oldest frames, like the sampler's
	// decision stack — the simulated workloads never approach that.
	head       atomic.Uint64 // events appended (writer publishes after the slot write)
	cachedTail uint64
	depth      int
	bits       uint64
	_          [32]byte // keep the consumer-written tail off the producer's line

	// Consumer-owned cache line.
	tail atomic.Uint64 // events consumed (consumer publishes after delivery)
	_    [56]byte

	// droppedPairs counts enter/exit pairs rejected because the ring was
	// full — the explicit back-pressure accounting (DroppedAsync). Written
	// by the producer (rarely: once per dropped pair), read by scrapers.
	// droppedExits counts the much rarer orphan case: an exit with no
	// recorded enter (sled patched mid-call) hitting a full ring. It is kept
	// out of droppedPairs because the conservation identity is stated in
	// enter units — an orphan exit never lost an enter.
	droppedPairs atomic.Int64
	droppedExits atomic.Int64

	// Replay contexts, consumer-private.
	rankCtx *replayRankCtx
	bareCtx *replayCtx
}

// replayCtx replays recorded events for dispatch contexts without an MPI
// rank: a pinned clock jumped to each event's recorded timestamp.
type replayCtx struct {
	rankID int
	clk    vtime.Clock
}

func (c *replayCtx) RankID() int         { return c.rankID }
func (c *replayCtx) Clock() *vtime.Clock { return &c.clk }

// replayRankCtx replays recorded events for contexts that implemented
// mpiRanker: it carries a detached replay *mpi.Rank so TALP can register and
// start/stop regions against the recorded rank state.
type replayRankCtx struct {
	rank *mpi.Rank
}

func (c *replayRankCtx) RankID() int         { return c.rank.ID() }
func (c *replayRankCtx) Clock() *vtime.Clock { return c.rank.Clock() }
func (c *replayRankCtx) MPIRank() *mpi.Rank  { return c.rank }

// pipeline is the bounded per-rank ring set plus its consumer pool.
type pipeline struct {
	rt     *Runtime
	shards []*pipeShard
	closed atomic.Bool
	wg     sync.WaitGroup
}

// newPipeline builds the rings and starts the shard-affine consumer pool.
// buf is the per-rank ring capacity, rounded up to a power of two (minimum
// 8; 0 means DefaultAsyncBuf). ranks is the simulated world size.
func newPipeline(rt *Runtime, ranks, buf int) *pipeline {
	if ranks < 1 {
		ranks = 1
	}
	if buf <= 0 {
		buf = DefaultAsyncBuf
	}
	capacity := 8
	for capacity < buf {
		capacity <<= 1
	}
	p := &pipeline{rt: rt}
	for i := 0; i < ranks; i++ {
		s := &pipeShard{
			ring:    make([]asyncEvent, capacity),
			mask:    uint64(capacity - 1),
			rankCtx: &replayRankCtx{rank: mpi.NewReplayRank(i, ranks)},
			bareCtx: &replayCtx{rankID: i},
		}
		s.bareCtx.clk.Pin()
		p.shards = append(p.shards, s)
	}
	consumers := len(p.shards)
	if consumers > asyncMaxConsumers {
		consumers = asyncMaxConsumers
	}
	for c := 0; c < consumers; c++ {
		var owned []*pipeShard
		for i := c; i < len(p.shards); i += consumers {
			owned = append(owned, p.shards[i])
		}
		p.wg.Add(1)
		go p.consume(owned)
	}
	return p
}

// append records one admitted event into the rank's ring — the entire
// per-event cost async mode adds to the hot path: a handful of plain field
// operations plus two atomic loads and one atomic store. Only the rank's own
// goroutine may call it for its shard. Events for rank IDs beyond the
// preallocated shards take the cold fallback (delivered inline, correct but
// slow), so a misconfigured world size degrades instead of corrupting.
//
//capi:hotpath
func (p *pipeline) append(tc xray.ThreadCtx, rf *ResolvedFunc, kind xray.EntryType) {
	rank := tc.RankID()
	if uint(rank) >= uint(len(p.shards)) {
		p.rt.deliverInline(tc, rf, kind)
		return
	}
	s := p.shards[rank]
	head := s.head.Load()
	if kind == xray.Entry {
		// Reserve a slot for this enter, its exit, and the exit of every
		// open appended enter (depth over-counts dropped opens — a safe,
		// branch-free over-reservation). The free-slot check runs against
		// the producer's cached view of the consumer position first and
		// touches the shared tail only when that view says the ring is too
		// full — the consumer can only have moved forward, never back.
		s.depth++
		s.bits <<= 1
		if uint64(len(s.ring))-(head-s.cachedTail) < uint64(s.depth)+2 {
			s.cachedTail = s.tail.Load()
			if uint64(len(s.ring))-(head-s.cachedTail) < uint64(s.depth)+2 {
				s.droppedPairs.Add(1)
				return
			}
		}
		s.bits |= 1
	} else {
		if s.depth > 0 {
			appended := s.bits&1 == 1
			s.bits >>= 1
			s.depth--
			if !appended {
				return // its enter was dropped; the pair was counted there
			}
		} else if uint64(len(s.ring))-(head-s.cachedTail) == 0 {
			s.cachedTail = s.tail.Load()
			if uint64(len(s.ring))-(head-s.cachedTail) == 0 {
				// An exit with no recorded enter (sled patched mid-call) and
				// a full ring: drop it — there is no reservation to honor.
				s.droppedExits.Add(1)
				return
			}
		}
	}
	ev := &s.ring[head&s.mask]
	ev.timeNs = tc.Clock().Now()
	ev.id = rf.PackedID
	ev.kind = kind
	flags := uint8(0)
	mpiNs := int64(0)
	if mr, ok := tc.(mpiRanker); ok {
		if r := mr.MPIRank(); r != nil {
			flags = evHasRank
			mpiNs = r.MPITimeTotal()
			if r.Initialized() {
				flags |= evInitialized
			}
			if r.Finalized() {
				flags |= evFinalized
			}
		}
	}
	ev.mpiNs = mpiNs
	ev.flags = flags
	s.head.Store(head + 1)
}

// deliverInline is the cold fallback for rank IDs without a shard: the event
// runs through the backend chain on the executing goroutine, exactly like
// inline mode.
//
//capi:coldpath
func (rt *Runtime) deliverInline(tc xray.ThreadCtx, rf *ResolvedFunc, kind xray.EntryType) {
	backend := rt.loadBackend()
	if kind == xray.Entry {
		backend.OnEnter(tc, rf)
	} else {
		backend.OnExit(tc, rf)
	}
}

// consume is one pool worker's loop: drain every owned shard, sleep briefly
// when all are empty, exit when the pipeline is closed and drained.
//
//capi:coldpath
func (p *pipeline) consume(shards []*pipeShard) {
	defer p.wg.Done()
	for {
		worked := false
		for _, s := range shards {
			if p.drainShard(s) > 0 {
				worked = true
			}
		}
		if worked {
			continue
		}
		if p.closed.Load() {
			// Closed and every owned shard observed empty in one sweep.
			return
		}
		time.Sleep(asyncPollInterval)
	}
}

// asyncTailBatch is how many delivered events the consumer batches into one
// tail publication. Per-event stores would invalidate the tail's cache line
// under the producer constantly — a full ring makes the producer re-read
// tail on every admission check, so per-event stores turn saturation into
// line ping-pong on the hot path. Batching keeps the line shared (clean)
// for 64 admission checks at a time; barriers and slot reuse only need the
// store to happen after delivery, not after *each* delivery.
const asyncTailBatch = 64

// drainShard delivers every event currently in the shard through the
// backend chain, publishing tail every asyncTailBatch events (and once at
// the end) so drain barriers observe progress promptly without per-event
// coherence traffic. The backend is re-loaded per event, mirroring inline
// dispatch, so a SwapBackend takes effect for queued events at delivery
// time.
func (p *pipeline) drainShard(s *pipeShard) int {
	head := s.head.Load()
	tail := s.tail.Load()
	if tail == head {
		return 0
	}
	rt := p.rt
	for i := tail; i != head; i++ {
		ev := &s.ring[i&s.mask]
		rf := rt.byID[ev.id]
		var tc xray.ThreadCtx
		if ev.flags&evHasRank != 0 {
			r := s.rankCtx.rank
			r.SetReplayState(ev.timeNs, ev.mpiNs, ev.flags&evInitialized != 0, ev.flags&evFinalized != 0)
			tc = s.rankCtx
		} else {
			s.bareCtx.clk.Jump(ev.timeNs)
			tc = s.bareCtx
		}
		backend := rt.loadBackend()
		if ev.kind == xray.Entry {
			backend.OnEnter(tc, rf)
		} else {
			backend.OnExit(tc, rf)
		}
		if (i+1-tail)&(asyncTailBatch-1) == 0 {
			s.tail.Store(i + 1)
		}
	}
	s.tail.Store(head)
	return int(head - tail)
}

// drain blocks until every event appended before the call has been
// delivered: per shard, snapshot the appended count, then wait for the
// consumed count to reach it. Safe to call concurrently with appending
// ranks — later appends are not waited for.
func (p *pipeline) drain() {
	for _, s := range p.shards {
		target := s.head.Load()
		for s.tail.Load() < target {
			runtime.Gosched()
		}
	}
}

// close drains the pipeline and stops the consumer pool. Callers must
// guarantee no further appends (quiescent, like FlushSampling).
func (p *pipeline) close() {
	if p.closed.Swap(true) {
		return
	}
	p.wg.Wait()
}

// depth sums the events currently queued across all shards.
func (p *pipeline) depthNow() int64 {
	var d int64
	for _, s := range p.shards {
		d += int64(s.head.Load() - s.tail.Load())
	}
	return d
}

// ringCap returns the effective per-rank ring capacity in events (the
// configured AsyncBuf rounded up to a power of two) — what a ring-sizing
// hint doubles from.
func (p *pipeline) ringCap() int {
	return len(p.shards[0].ring)
}

// dropped sums the pairs rejected by back-pressure across all shards.
func (p *pipeline) dropped() int64 {
	var d int64
	for _, s := range p.shards {
		d += s.droppedPairs.Load()
	}
	return d
}

// droppedByRank returns the per-rank back-pressure drops.
func (p *pipeline) droppedByRank() []int64 {
	out := make([]int64, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.droppedPairs.Load()
	}
	return out
}

// droppedOrphanExits sums the orphan exits (no recorded enter, full ring)
// rejected across all shards — tracked apart from the pair drops so the
// enter-unit conservation identity stays exact.
func (p *pipeline) droppedOrphanExits() int64 {
	var d int64
	for _, s := range p.shards {
		d += s.droppedExits.Load()
	}
	return d
}
