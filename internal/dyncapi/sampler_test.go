package dyncapi

import (
	"testing"

	"capi/internal/ic"
	"capi/internal/xray"
)

// pairCountBackend counts delivered enters/exits and tracks per-function
// balance so tests can assert the sampler never delivers half a pair.
type pairCountBackend struct {
	enters, exits int64
	open          map[int32]int
}

func newPairCountBackend() *pairCountBackend {
	return &pairCountBackend{open: map[int32]int{}}
}

func (b *pairCountBackend) Name() string { return "pair-count" }
func (b *pairCountBackend) OnEnter(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.enters++
	b.open[fn.PackedID]++
}
func (b *pairCountBackend) OnExit(tc xray.ThreadCtx, fn *ResolvedFunc) {
	b.exits++
	b.open[fn.PackedID]--
}
func (b *pairCountBackend) InitCost(int) int64 { return 0 }

// samplerSetup patches kernel+dso_fn under a counting backend.
func samplerSetup(t *testing.T) (*Runtime, *xray.Runtime, *pairCountBackend, int32, int32) {
	t.Helper()
	b := buildProg(t)
	proc, xr := setup(t, b)
	back := newPairCountBackend()
	rt, err := New(proc, xr, ic.New("app", "test", []string{"kernel", "dso_fn"}), back, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return rt, xr, back, packedOf(t, b, xr, proc, "kernel"), packedOf(t, b, xr, proc, "dso_fn")
}

// conserve asserts the sampler's conservation invariant and returns the
// counters.
func conserve(t *testing.T, rt *Runtime) SamplingCounters {
	t.Helper()
	rt.FlushSampling()
	c := rt.SamplingCounters()
	if got := c.Delivered + c.SampledEvents + c.SuppressedPairs + c.CollapsedCalls; got != c.Enters {
		t.Fatalf("conservation broken: delivered %d + sampled %d + suppressed %d + collapsed %d = %d != enters %d",
			c.Delivered, c.SampledEvents, c.SuppressedPairs, c.CollapsedCalls, got, c.Enters)
	}
	return c
}

func dispatchPair(xr *xray.Runtime, tc xray.ThreadCtx, id int32, workNs int64) {
	xr.Dispatch(tc, id, xray.Entry)
	tc.Clock().Advance(workNs)
	xr.Dispatch(tc, id, xray.Exit)
}

func TestStrideSamplingExactOneInN(t *testing.T) {
	rt, xr, back, kernel, _ := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 8}}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	const pairs = 100
	for i := 0; i < pairs; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	c := conserve(t, rt)
	// 100 enters at 1-in-8: enters 0,8,16,…,96 delivered = 13.
	if c.Enters != pairs || c.Delivered != 13 || c.SampledEvents != 87 {
		t.Fatalf("counters = %+v, want 100 enters, 13 delivered, 87 sampled out", c)
	}
	if back.enters != 13 || back.exits != 13 {
		t.Fatalf("backend saw %d/%d, want 13/13 (whole pairs only)", back.enters, back.exits)
	}
	if back.open[kernel] != 0 {
		t.Fatalf("unbalanced delivery: %d open", back.open[kernel])
	}
}

func TestStrideSamplingNonPowerOfTwo(t *testing.T) {
	rt, xr, back, kernel, _ := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 10}}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	for i := 0; i < 95; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	c := conserve(t, rt)
	if c.Delivered != 10 || c.SampledEvents != 85 {
		t.Fatalf("counters = %+v, want 10 delivered of 95 at 1-in-10", c)
	}
	if back.enters != 10 || back.exits != 10 {
		t.Fatalf("backend saw %d/%d", back.enters, back.exits)
	}
}

func TestMinDurationSuppressionWithExactAccounting(t *testing.T) {
	rt, xr, back, kernel, _ := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{MinDurationNs: 1000}}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	// First pair: no history, delivered (measures 100ns — short).
	dispatchPair(xr, tc, kernel, 100)
	// Next 10 pairs predicted short: suppressed, 100ns each.
	for i := 0; i < 10; i++ {
		dispatchPair(xr, tc, kernel, 100)
	}
	// One long pair: still predicted short (last dur 100ns) → suppressed,
	// but its 5000ns is accounted; the prediction updates.
	dispatchPair(xr, tc, kernel, 5000)
	// Now predicted long: delivered.
	dispatchPair(xr, tc, kernel, 5000)
	c := conserve(t, rt)
	if c.Enters != 13 || c.Delivered != 2 || c.SuppressedPairs != 11 {
		t.Fatalf("counters = %+v, want 13 enters, 2 delivered, 11 suppressed", c)
	}
	// Exact drop accounting: 10×100ns + 1×5000ns.
	if c.SuppressedNs != 10*100+5000 {
		t.Fatalf("suppressed ns = %d, want %d", c.SuppressedNs, 10*100+5000)
	}
	if back.enters != 2 || back.exits != 2 {
		t.Fatalf("backend saw %d/%d", back.enters, back.exits)
	}
}

func TestRedundancyCollapseCountsAndAggregates(t *testing.T) {
	rt, xr, _, kernel, _ := samplerSetup(t)
	err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{
		CollapseRedundant: true, RedundantGapNs: 500,
	}})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	// A streak of 20 back-to-back 100ns calls (gap 0 between them): the
	// first delivers, the rest collapse into count + aggregate.
	for i := 0; i < 20; i++ {
		dispatchPair(xr, tc, kernel, 100)
	}
	// Break the streak with a long gap: the next call delivers again.
	tc.Clock().Advance(10_000)
	dispatchPair(xr, tc, kernel, 100)
	c := conserve(t, rt)
	if c.Delivered != 2 || c.CollapsedCalls != 19 {
		t.Fatalf("counters = %+v, want 2 delivered, 19 collapsed", c)
	}
	if c.CollapsedNs != 19*100 {
		t.Fatalf("collapsed ns = %d, want %d", c.CollapsedNs, 19*100)
	}
	// Long calls within the gap are not redundant.
	tc.Clock().Advance(10_000)
	dispatchPair(xr, tc, kernel, 2000) // delivered (streak broken), dur 2000 > gap 500
	dispatchPair(xr, tc, kernel, 2000) // previous dur not short → delivered
	c = conserve(t, rt)
	if c.Delivered != 4 {
		t.Fatalf("long repeats collapsed: %+v", c)
	}
}

func TestLiveRateChangeConservesAndBalances(t *testing.T) {
	rt, xr, back, kernel, dso := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 4}}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	// Open a nested pair, change the policy mid-pair, then close it: the
	// exit must follow the enter's recorded decision.
	xr.Dispatch(tc, kernel, xray.Entry) // ctr 1 → delivered
	xr.Dispatch(tc, kernel, xray.Entry) // ctr 2 → sampled out
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 1}}); err != nil {
		t.Fatal(err)
	}
	xr.Dispatch(tc, kernel, xray.Exit) // follows "sampled out"
	xr.Dispatch(tc, kernel, xray.Exit) // follows "delivered"
	if back.open[kernel] != 0 {
		t.Fatalf("unbalanced across rate change: %d open", back.open[kernel])
	}
	// Hammer both functions across several live rate changes.
	strides := []int{1, 16, 3, 64}
	for round, s := range strides {
		if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: s}}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50+round; i++ {
			dispatchPair(xr, tc, kernel, 50)
			dispatchPair(xr, tc, dso, 50)
		}
	}
	c := conserve(t, rt)
	if c.Enters != int64(2+2*(50+51+52+53)) {
		t.Fatalf("enters = %d", c.Enters)
	}
	if back.enters != c.Delivered || back.exits != back.enters {
		t.Fatalf("backend %d/%d vs delivered %d", back.enters, back.exits, c.Delivered)
	}
	if back.open[kernel] != 0 || back.open[dso] != 0 {
		t.Fatalf("open pairs leaked: %v", back.open)
	}
}

func TestPolicyInstalledMidPairKeepsBalance(t *testing.T) {
	rt, xr, back, kernel, _ := samplerSetup(t)
	tc := &fakeCtx{}
	// Enter before any policy exists (no sampler state at all)…
	xr.Dispatch(tc, kernel, xray.Entry)
	// …install an aggressive policy mid-pair…
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 1000}}); err != nil {
		t.Fatal(err)
	}
	// …the exit was delivered unsampled (depth 0 fallthrough).
	xr.Dispatch(tc, kernel, xray.Exit)
	if back.enters != 1 || back.exits != 1 || back.open[kernel] != 0 {
		t.Fatalf("backend %d/%d open %d", back.enters, back.exits, back.open[kernel])
	}
}

func TestPerFunctionOverridesAndClear(t *testing.T) {
	rt, xr, back, kernel, dso := samplerSetup(t)
	err := rt.SetSampling(SamplingConfig{
		Default: &SamplePolicy{Stride: 2},
		Funcs:   map[string]SamplePolicy{"dso_fn": {Stride: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	for i := 0; i < 10; i++ {
		dispatchPair(xr, tc, kernel, 50)
		dispatchPair(xr, tc, dso, 50)
	}
	c := conserve(t, rt)
	if c.Delivered != 5+2 { // kernel 1-in-2 of 10, dso 1-in-5 of 10
		t.Fatalf("delivered = %d, want 7", c.Delivered)
	}
	snap := rt.SamplingSnapshot()
	if !snap.Configured || snap.Default == nil || snap.Default.Stride != 2 || snap.FuncPolicies != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Clearing the table delivers everything again but keeps accounting.
	if err := rt.SetSampling(SamplingConfig{}); err != nil {
		t.Fatal(err)
	}
	before := back.enters
	dispatchPair(xr, tc, kernel, 50)
	if back.enters != before+1 {
		t.Fatal("cleared table still sampling")
	}
	if snap := rt.SamplingSnapshot(); snap.Configured {
		t.Fatalf("snapshot still configured: %+v", snap)
	}
	if c2 := conserve(t, rt); c2.Enters != c.Enters+1 {
		t.Fatalf("accounting lost on clear: %+v", c2)
	}
}

func TestSetSamplingValidatesBeforeMutating(t *testing.T) {
	rt, _, _, kernel, _ := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 16}}); err != nil {
		t.Fatal(err)
	}
	// Unknown function name: rejected, nothing applied.
	err := rt.SetSampling(SamplingConfig{
		Default: &SamplePolicy{Stride: 2},
		Funcs:   map[string]SamplePolicy{"no_such_fn": {Stride: 3}},
	})
	if err == nil {
		t.Fatal("unknown function accepted")
	}
	if snap := rt.SamplingSnapshot(); snap.Default == nil || snap.Default.Stride != 16 {
		t.Fatalf("failed config mutated the table: %+v", snap)
	}
	// Invalid policy values: rejected.
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: -4}}); err == nil {
		t.Fatal("negative stride accepted")
	}
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{MinDurationNs: -1}}); err == nil {
		t.Fatal("negative min duration accepted")
	}
	if err := rt.SetSampling(SamplingConfig{IDs: map[int32]SamplePolicy{1 << 30: {Stride: 2}}}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if err := rt.SetFuncSampling(1<<30, &SamplePolicy{Stride: 2}); err == nil {
		t.Fatal("SetFuncSampling unknown id accepted")
	}
	// Per-ID config on a known function works.
	if err := rt.SetSampling(SamplingConfig{IDs: map[int32]SamplePolicy{kernel: {Stride: 2}}}); err != nil {
		t.Fatal(err)
	}
	if snap := rt.SamplingSnapshot(); snap.Default != nil || snap.FuncPolicies != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestSetFuncSamplingDemotePromote(t *testing.T) {
	rt, xr, back, kernel, _ := samplerSetup(t)
	if err := rt.SetFuncSampling(kernel, &SamplePolicy{Stride: 4}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	for i := 0; i < 8; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	if back.enters != 2 {
		t.Fatalf("demoted kernel delivered %d of 8, want 2", back.enters)
	}
	// Promote back: full delivery resumes.
	if err := rt.SetFuncSampling(kernel, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	if back.enters != 6 {
		t.Fatalf("promoted kernel delivered %d, want 6", back.enters)
	}
	// With a table default installed, removing an override reverts to the
	// *default*, not to full rate — a promotion must not erode the table.
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetFuncSampling(kernel, &SamplePolicy{Stride: 64}); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetFuncSampling(kernel, nil); err != nil { // promote
		t.Fatal(err)
	}
	before := back.enters
	for i := 0; i < 8; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	if got := back.enters - before; got != 4 {
		t.Fatalf("after promotion under a stride-2 default: delivered %d of 8, want 4", got)
	}
	conserve(t, rt)
	if fs := rt.SamplingByFunc(); len(fs) != 1 || fs[0].ID != kernel || fs[0].Counters.Enters == 0 {
		t.Fatalf("per-func accounting = %+v", fs)
	}
}

func TestSamplingSurfacesInSnapshotAndReconfigReport(t *testing.T) {
	rt, xr, _, kernel, dso := samplerSetup(t)
	if err := rt.SetSampling(SamplingConfig{Default: &SamplePolicy{Stride: 2}}); err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	for i := 0; i < samplePublishWindow*2; i++ {
		dispatchPair(xr, tc, kernel, 50)
	}
	snap := rt.Snapshot()
	if !snap.Sampling.Configured || snap.Sampling.Counters.Enters == 0 {
		t.Fatalf("runtime snapshot missing sampling: %+v", snap.Sampling)
	}
	rep, err := rt.Reconfigure(ic.New("app", "test", []string{"kernel"}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampling == nil || rep.Sampling.SampledEvents == 0 {
		t.Fatalf("reconfig report missing sampling counters: %+v", rep.Sampling)
	}
	_ = dso
}
