package callgraph

import (
	"bytes"
	"testing"
)

// chain builds a -> b -> c -> d.
func chain(t *testing.T) *Graph {
	t.Helper()
	g := New("chain")
	g.Main = "a"
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New("g")
	n1 := g.AddNode("f", Meta{Statements: 5})
	n2 := g.AddNode("f", Meta{Statements: 99})
	if n1 != n2 {
		t.Fatal("AddNode should return the existing node")
	}
	if n1.Meta.Statements != 5 {
		t.Fatalf("existing metadata must not be overwritten, got %d", n1.Meta.Statements)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

func TestSetMeta(t *testing.T) {
	g := New("g")
	g.AddNode("f", Meta{})
	if !g.SetMeta("f", Meta{Flops: 7}) {
		t.Fatal("SetMeta on existing node returned false")
	}
	if g.Node("f").Meta.Flops != 7 {
		t.Fatal("SetMeta did not apply")
	}
	if g.SetMeta("ghost", Meta{}) {
		t.Fatal("SetMeta on missing node returned true")
	}
}

func TestEdgesDeduplicated(t *testing.T) {
	g := New("g")
	g.AddEdge("a", "b")
	g.AddEdge("a", "b")
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if len(g.Node("a").Callees()) != 1 || len(g.Node("b").Callers()) != 1 {
		t.Fatal("adjacency lists contain duplicates")
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("HasEdge wrong")
	}
}

func TestNodeByID(t *testing.T) {
	g := chain(t)
	for _, n := range g.Nodes() {
		if g.NodeByID(n.ID()) != n {
			t.Fatalf("NodeByID(%d) mismatch", n.ID())
		}
	}
	if g.NodeByID(-1) != nil || g.NodeByID(g.Len()) != nil {
		t.Fatal("out-of-range NodeByID should return nil")
	}
}

func TestValidateAndMainNode(t *testing.T) {
	g := chain(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MainNode() == nil || g.MainNode().Name != "a" {
		t.Fatal("MainNode wrong")
	}
	g2 := New("x")
	if g2.MainNode() != nil {
		t.Fatal("MainNode of empty graph should be nil")
	}
}

func TestMerge(t *testing.T) {
	// TU 1 defines a (calls b); b is a stub.
	g1 := New("tu1")
	g1.AddNode("a", Meta{Statements: 3})
	g1.AddEdge("a", "b")
	// TU 2 defines b (calls c).
	g2 := New("tu2")
	g2.AddNode("b", Meta{Statements: 8})
	g2.AddEdge("b", "c")
	g2.Main = "b"

	g1.Merge(g2)
	if g1.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", g1.Len())
	}
	if g1.Node("b").Meta.Statements != 8 {
		t.Fatal("definition should override stub metadata")
	}
	if !g1.HasEdge("a", "b") || !g1.HasEdge("b", "c") {
		t.Fatal("merged edges missing")
	}
	if g1.Main != "b" {
		t.Fatal("Main should be taken from other when unset")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeKeepsExistingMeta(t *testing.T) {
	g1 := New("a")
	g1.AddNode("f", Meta{Statements: 3})
	g2 := New("b")
	g2.AddNode("f", Meta{Statements: 99})
	g1.Merge(g2)
	if g1.Node("f").Meta.Statements != 3 {
		t.Fatal("merge must not overwrite non-empty metadata")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := chain(t)
	g.Node("a").Meta = Meta{Statements: 4, Flops: 12, LoopDepth: 1, Inline: true, Unit: "exe", TU: "a.cc"}
	g.Node("b").Display = "b()"
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", g2.Len(), g2.NumEdges(), g.Len(), g.NumEdges())
	}
	if g2.Main != "a" {
		t.Fatalf("Main = %q", g2.Main)
	}
	if g2.Node("a").Meta != g.Node("a").Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", g2.Node("a").Meta, g.Node("a").Meta)
	}
	if g2.Node("b").Display != "b()" {
		t.Fatal("display name lost")
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		if !g2.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{}")); err == nil {
		t.Fatal("expected stamp error")
	}
	if _, err := ReadJSON(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("expected parse error")
	}
}
