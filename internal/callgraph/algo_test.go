package callgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// diamond builds main -> {l, r} -> sink, plus an isolated node "iso" and a
// cycle c1 <-> c2 reachable from r.
func diamond() *Graph {
	g := New("diamond")
	g.Main = "main"
	g.AddEdge("main", "l")
	g.AddEdge("main", "r")
	g.AddEdge("l", "sink")
	g.AddEdge("r", "sink")
	g.AddEdge("r", "c1")
	g.AddEdge("c1", "c2")
	g.AddEdge("c2", "c1")
	g.AddNode("iso", Meta{})
	return g
}

func TestReachableForward(t *testing.T) {
	g := diamond()
	r := g.Reachable(g.SetOf("main"), true)
	want := []string{"main", "l", "r", "sink", "c1", "c2"}
	if r.Count() != len(want) {
		t.Fatalf("Reachable = %v", r.Names())
	}
	for _, n := range want {
		if !r.HasName(n) {
			t.Fatalf("missing %s", n)
		}
	}
	if r.HasName("iso") {
		t.Fatal("iso must be unreachable")
	}
}

func TestReachableBackward(t *testing.T) {
	g := diamond()
	r := g.Reachable(g.SetOf("sink"), false)
	for _, n := range []string{"sink", "l", "r", "main"} {
		if !r.HasName(n) {
			t.Fatalf("missing ancestor %s", n)
		}
	}
	if r.HasName("c1") || r.HasName("c2") {
		t.Fatal("cycle nodes are not ancestors of sink")
	}
}

func TestOnCallPath(t *testing.T) {
	g := diamond()
	p := g.OnCallPath("main", g.SetOf("sink"))
	want := map[string]bool{"main": true, "l": true, "r": true, "sink": true}
	if p.Count() != len(want) {
		t.Fatalf("OnCallPath = %v", p.Names())
	}
	for n := range want {
		if !p.HasName(n) {
			t.Fatalf("missing %s", n)
		}
	}
	// Unknown root yields the empty set.
	if !g.OnCallPath("ghost", g.SetOf("sink")).Empty() {
		t.Fatal("unknown root should yield empty set")
	}
}

func TestOnCallPathThroughCycle(t *testing.T) {
	g := New("g")
	g.AddEdge("main", "a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "a") // recursion
	g.AddEdge("b", "target")
	p := g.OnCallPath("main", g.SetOf("target"))
	for _, n := range []string{"main", "a", "b", "target"} {
		if !p.HasName(n) {
			t.Fatalf("missing %s", n)
		}
	}
}

func TestSCC(t *testing.T) {
	g := diamond()
	comp, n := g.SCC()
	if n != 6 { // {main} {l} {r} {sink} {c1,c2} {iso}
		t.Fatalf("ncomp = %d, want 6", n)
	}
	if comp[g.Node("c1").ID()] != comp[g.Node("c2").ID()] {
		t.Fatal("c1 and c2 should share a component")
	}
	if comp[g.Node("l").ID()] == comp[g.Node("r").ID()] {
		t.Fatal("l and r must not share a component")
	}
	// Reverse topological property: caller comp index > callee comp index.
	for _, nd := range g.Nodes() {
		for _, c := range nd.Callees() {
			if comp[nd.ID()] != comp[c.ID()] && comp[nd.ID()] < comp[c.ID()] {
				t.Fatalf("edge %s->%s violates reverse topological order", nd.Name, c.Name)
			}
		}
	}
}

func TestSCCRandomizedTopoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New("rand")
		n := 50
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("f%d", i), Meta{})
		}
		for e := 0; e < 120; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			g.AddEdge(fmt.Sprintf("f%d", a), fmt.Sprintf("f%d", b))
		}
		comp, _ := g.SCC()
		for _, nd := range g.Nodes() {
			for _, c := range nd.Callees() {
				if comp[nd.ID()] != comp[c.ID()] && comp[nd.ID()] < comp[c.ID()] {
					t.Fatalf("trial %d: edge %s->%s violates order", trial, nd.Name, c.Name)
				}
			}
		}
	}
}

func TestStatementAggregation(t *testing.T) {
	// main(10) -> a(5) -> b(3); main -> b directly too.
	g := New("agg")
	g.AddNode("main", Meta{Statements: 10})
	g.AddNode("a", Meta{Statements: 5})
	g.AddNode("b", Meta{Statements: 3})
	g.AddEdge("main", "a")
	g.AddEdge("a", "b")
	g.AddEdge("main", "b")
	agg := g.StatementAggregation("main")
	if got := agg[g.Node("main").ID()]; got != 10 {
		t.Fatalf("agg(main) = %d", got)
	}
	if got := agg[g.Node("a").ID()]; got != 15 {
		t.Fatalf("agg(a) = %d", got)
	}
	// Max path: main -> a -> b = 18 (not 13 via the direct edge).
	if got := agg[g.Node("b").ID()]; got != 18 {
		t.Fatalf("agg(b) = %d, want 18", got)
	}
}

func TestStatementAggregationCycle(t *testing.T) {
	g := New("aggc")
	g.AddNode("main", Meta{Statements: 1})
	g.AddNode("x", Meta{Statements: 2})
	g.AddNode("y", Meta{Statements: 4})
	g.AddNode("leaf", Meta{Statements: 8})
	g.AddEdge("main", "x")
	g.AddEdge("x", "y")
	g.AddEdge("y", "x") // cycle {x,y} counts once: 6
	g.AddEdge("y", "leaf")
	agg := g.StatementAggregation("main")
	if got := agg[g.Node("x").ID()]; got != 7 {
		t.Fatalf("agg(x) = %d, want 7", got)
	}
	if got := agg[g.Node("y").ID()]; got != 7 {
		t.Fatalf("agg(y) = %d, want 7 (same SCC)", got)
	}
	if got := agg[g.Node("leaf").ID()]; got != 15 {
		t.Fatalf("agg(leaf) = %d, want 15", got)
	}
	// Unreachable root.
	zero := g.StatementAggregation("ghost")
	for _, v := range zero {
		if v != 0 {
			t.Fatal("unknown root must yield zeros")
		}
	}
}

// listing3 builds the OpenFOAM solve chain from the paper's Listing 3:
// a single-caller chain solve -> s1 -> s2 -> s3 -> s4 -> Amul.
func listing3() *Graph {
	g := New("listing3")
	g.Main = "main"
	g.AddEdge("main", "solve")
	g.AddEdge("solve", "s1")
	g.AddEdge("s1", "s2")
	g.AddEdge("s2", "s3")
	g.AddEdge("s3", "s4")
	g.AddEdge("s4", "Amul")
	// Give solve a second caller so it is kept regardless.
	g.AddEdge("main", "other")
	return g
}

func TestCoarseCollapsesChain(t *testing.T) {
	g := listing3()
	in := g.SetOf("solve", "s1", "s2", "s3", "s4", "Amul")
	critical := g.SetOf("Amul")
	out := g.Coarse("main", in, critical)
	if !out.HasName("solve") {
		t.Fatal("solve (multi-caller context head) must stay")
	}
	for _, mid := range []string{"s1", "s2", "s3", "s4"} {
		if out.HasName(mid) {
			t.Fatalf("%s should be pruned by coarse", mid)
		}
	}
	if !out.HasName("Amul") {
		t.Fatal("critical Amul must be retained")
	}
}

func TestCoarseWithoutCriticalPrunesLeaf(t *testing.T) {
	g := listing3()
	in := g.SetOf("solve", "s1", "s2", "s3", "s4", "Amul")
	out := g.Coarse("main", in, nil)
	if out.HasName("Amul") {
		t.Fatal("without a critical set, the sole-caller leaf is pruned too")
	}
}

func TestCoarseKeepsMultiCallerCallees(t *testing.T) {
	g := New("g")
	g.Main = "main"
	g.AddEdge("main", "a")
	g.AddEdge("main", "b")
	g.AddEdge("a", "shared")
	g.AddEdge("b", "shared")
	in := g.SetOf("a", "b", "shared")
	out := g.Coarse("main", in, nil)
	if !out.HasName("shared") {
		t.Fatal("multi-caller callee must be retained")
	}
}

func TestCoarseDoesNotMutateInput(t *testing.T) {
	g := listing3()
	in := g.SetOf("solve", "s1", "s2")
	before := in.Count()
	g.Coarse("main", in, nil)
	if in.Count() != before {
		t.Fatal("Coarse mutated its input")
	}
}

func TestCoarseUnknownRoot(t *testing.T) {
	g := listing3()
	in := g.SetOf("s1")
	out := g.Coarse("ghost", in, nil)
	if !out.Equal(in) {
		t.Fatal("unknown root should return the input unchanged")
	}
}
