package callgraph

// This file contains the graph algorithms backing the selectors:
// reachability, call-path sets, strongly connected components and
// statement aggregation (Iwainsky & Bischof, IPDPS 2016 — the heuristic
// cited in §II-B of the paper).

// Reachable returns the set of nodes reachable from any node in from,
// following callee edges when forward is true and caller edges otherwise.
// The seed nodes themselves are included.
func (g *Graph) Reachable(from *Set, forward bool) *Set {
	out := from.Clone()
	stack := from.Members()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := n.callees
		if !forward {
			next = n.callers
		}
		for _, m := range next {
			if !out.Has(m) {
				out.Add(m)
				stack = append(stack, m)
			}
		}
	}
	return out
}

// OnCallPath returns every node that lies on some call path from the node
// named root to any node in targets — i.e. descendants(root) ∩
// ancestors(targets), endpoints included. This implements the paper's
// "on a call path from main to ..." selector semantics. If root is unknown
// the result is empty.
func (g *Graph) OnCallPath(root string, targets *Set) *Set {
	rn := g.Node(root)
	if rn == nil {
		return g.NewSet()
	}
	seed := g.NewSet()
	seed.Add(rn)
	down := g.Reachable(seed, true)
	up := g.Reachable(targets, false)
	return down.Intersect(up)
}

// SCC computes the strongly connected components of the graph using an
// iterative Tarjan algorithm (the graphs are far too deep for recursion at
// OpenFOAM scale). It returns the component index per node ID and the number
// of components. Component indices are in reverse topological order of the
// condensation: if component a calls component b then scc[a] > scc[b].
func (g *Graph) SCC() (comp []int, n int) {
	const unvisited = -1
	nn := g.Len()
	comp = make([]int, nn)
	index := make([]int, nn)
	low := make([]int, nn)
	onStack := make([]bool, nn)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ci int // next callee index to process
	}
	for root := 0; root < nn; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ci == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			callees := g.order[v].callees
			for f.ci < len(callees) {
				w := callees[f.ci].id
				f.ci++
				if index[w] == unvisited {
					work = append(work, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All callees processed: close v.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = n
					if w == v {
						break
					}
				}
				n++
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, n
}

// StatementAggregation computes, for every node, the maximum aggregated
// statement count along any call chain from the node named root, where each
// function contributes its own statement count once per chain. Cycles are
// collapsed to their SCC: all members of a component share the component's
// total statement count. Unreachable nodes have aggregate 0.
func (g *Graph) StatementAggregation(root string) []int64 {
	rn := g.Node(root)
	agg := make([]int64, g.Len())
	if rn == nil {
		return agg
	}
	comp, ncomp := g.SCC()

	// Total statements and membership per component.
	compStmts := make([]int64, ncomp)
	for _, n := range g.order {
		compStmts[comp[n.id]] += int64(n.Meta.Statements)
	}
	members := make([][]int32, ncomp)
	for _, n := range g.order {
		c := comp[n.id]
		members[c] = append(members[c], int32(n.id))
	}
	// Condensation edges: comp(u) -> comp(v) for u->v with different comps.
	// Tarjan yields components in reverse topological order: an edge always
	// goes from a higher comp index to a lower one, so iterating components
	// from high to low visits all callers of a component before the
	// component itself.
	compAgg := make([]int64, ncomp)
	reached := make([]bool, ncomp)
	rootComp := comp[rn.id]
	compAgg[rootComp] = compStmts[rootComp]
	reached[rootComp] = true
	for c := ncomp - 1; c >= 0; c-- {
		if !reached[c] {
			continue
		}
		for _, id := range members[c] {
			for _, m := range g.order[id].callees {
				mc := comp[m.id]
				if mc == c {
					continue
				}
				cand := compAgg[c] + compStmts[mc]
				if !reached[mc] || cand > compAgg[mc] {
					compAgg[mc] = cand
					reached[mc] = true
				}
			}
		}
	}
	for _, n := range g.order {
		if reached[comp[n.id]] {
			agg[n.id] = compAgg[comp[n.id]]
		}
	}
	return agg
}

// Coarse implements the paper's coarse selector (§V-D): traversing the call
// graph top-down from the node named root, a callee of a selected function
// is removed from the selection when that function is its only caller —
// collapsing trivial single-caller call chains such as the nested OpenFOAM
// solve() wrappers (Listing 3). The parent's selection is judged against the
// *input* set so that removals cascade down a chain. Functions in critical
// are always retained. The input set is not modified.
func (g *Graph) Coarse(root string, in *Set, critical *Set) *Set {
	out := in.Clone()
	rn := g.Node(root)
	if rn == nil {
		return out
	}
	visited := g.NewSet()
	queue := []*Node{rn}
	visited.Add(rn)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.callees {
			if in.Has(n) && in.Has(callee) && len(callee.callers) == 1 {
				if critical == nil || !critical.Has(callee) {
					out.Remove(callee)
				}
			}
			if !visited.Has(callee) {
				visited.Add(callee)
				queue = append(queue, callee)
			}
		}
	}
	return out
}
