package callgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The on-disk format follows the spirit of MetaCG's annotated call-graph
// files (Lehr et al., TAPAS 2020): a top-level generator stamp and a map of
// function records with callee lists and metadata.

type fileFormat struct {
	MetaCG fileStamp             `json:"_MetaCG"`
	Main   string                `json:"main,omitempty"`
	CG     map[string]fileRecord `json:"_CG"`
}

type fileStamp struct {
	Version   string `json:"version"`
	Generator string `json:"generator"`
}

type fileRecord struct {
	Callees []string `json:"callees"`
	Display string   `json:"displayName,omitempty"`
	Meta    *Meta    `json:"meta,omitempty"`
}

// FormatVersion is the serialization version written by WriteJSON.
const FormatVersion = "2.0"

// WriteJSON serializes the graph in the MetaCG-style format.
func (g *Graph) WriteJSON(w io.Writer) error {
	ff := fileFormat{
		MetaCG: fileStamp{Version: FormatVersion, Generator: "capi-go"},
		Main:   g.Main,
		CG:     make(map[string]fileRecord, g.Len()),
	}
	for _, n := range g.order {
		rec := fileRecord{Callees: make([]string, 0, len(n.callees))}
		for _, c := range n.callees {
			rec.Callees = append(rec.Callees, c.Name)
		}
		sort.Strings(rec.Callees)
		if n.Display != n.Name {
			rec.Display = n.Display
		}
		if n.Meta != (Meta{}) {
			m := n.Meta
			rec.Meta = &m
		}
		ff.CG[n.Name] = rec
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&ff)
}

// ReadJSON parses a graph from the MetaCG-style format.
func ReadJSON(r io.Reader) (*Graph, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("callgraph: parsing graph file: %w", err)
	}
	if ff.MetaCG.Version == "" {
		return nil, fmt.Errorf("callgraph: missing _MetaCG stamp")
	}
	g := New("")
	g.Main = ff.Main
	// Insert nodes in sorted name order for deterministic IDs.
	names := make([]string, 0, len(ff.CG))
	for name := range ff.CG {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := ff.CG[name]
		var meta Meta
		if rec.Meta != nil {
			meta = *rec.Meta
		}
		n := g.AddNode(name, meta)
		if rec.Meta != nil && n.Meta == (Meta{}) {
			n.Meta = meta
		}
		if rec.Display != "" {
			n.Display = rec.Display
		}
	}
	for _, name := range names {
		for _, callee := range ff.CG[name].Callees {
			g.AddEdge(name, callee)
		}
	}
	return g, nil
}
