package callgraph

import (
	"fmt"
	"testing"
	"testing/quick"
)

// lineGraph returns a graph with n isolated nodes named "f0".."f(n-1)".
func lineGraph(n int) *Graph {
	g := New("line")
	for i := 0; i < n; i++ {
		g.AddNode(fmt.Sprintf("f%d", i), Meta{})
	}
	return g
}

func TestUniverseSet(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		g := lineGraph(n)
		u := g.UniverseSet()
		if u.Count() != n {
			t.Fatalf("UniverseSet(%d).Count = %d", n, u.Count())
		}
		for _, node := range g.Nodes() {
			if !u.Has(node) {
				t.Fatalf("universe missing %s", node.Name)
			}
		}
	}
}

func TestSetBasics(t *testing.T) {
	g := lineGraph(100)
	s := g.NewSet()
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	n42 := g.Node("f42")
	s.Add(n42)
	s.AddID(g.Node("f77").ID())
	if !s.Has(n42) || !s.HasName("f77") || !s.HasID(77) {
		t.Fatal("membership lost")
	}
	if s.Has(nil) {
		t.Fatal("Has(nil) must be false")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Remove(n42)
	if s.Has(n42) || s.Count() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestSetAlgebra(t *testing.T) {
	g := lineGraph(200)
	a := g.SetOf("f1", "f2", "f3")
	b := g.SetOf("f3", "f4")

	if got := a.Union(b).Names(); len(got) != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Subtract(b).Names(); len(got) != 2 || got[0] != "f1" || got[1] != "f2" {
		t.Fatalf("Subtract = %v", got)
	}
	if got := a.Intersect(b).Names(); len(got) != 1 || got[0] != "f3" {
		t.Fatalf("Intersect = %v", got)
	}
	// Originals untouched.
	if a.Count() != 3 || b.Count() != 2 {
		t.Fatal("set algebra must not mutate operands")
	}
	c := a.Clone()
	c.UnionWith(b)
	if c.Count() != 4 || a.Count() != 3 {
		t.Fatal("UnionWith wrong")
	}
}

func TestSetOfIgnoresUnknown(t *testing.T) {
	g := lineGraph(5)
	s := g.SetOf("f1", "ghost")
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestCrossGraphPanics(t *testing.T) {
	g1, g2 := lineGraph(5), lineGraph(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-graph set op")
		}
	}()
	g1.NewSet().Union(g2.NewSet())
}

func TestForEachEarlyStop(t *testing.T) {
	g := lineGraph(10)
	s := g.UniverseSet()
	seen := 0
	s.ForEach(func(n *Node) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("seen = %d, want 3", seen)
	}
}

func TestMembersOrder(t *testing.T) {
	g := lineGraph(70)
	s := g.SetOf("f65", "f2", "f64")
	m := s.Members()
	if len(m) != 3 || m[0].Name != "f2" || m[1].Name != "f64" || m[2].Name != "f65" {
		t.Fatalf("Members order = %v", m)
	}
}

// Properties of the set algebra, checked with testing/quick over random
// membership vectors.

func setFromBools(g *Graph, bs []bool) *Set {
	s := g.NewSet()
	for i, b := range bs {
		if b && i < g.Len() {
			s.AddID(i)
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	g := lineGraph(130)
	trim := func(bs []bool) []bool {
		if len(bs) > g.Len() {
			return bs[:g.Len()]
		}
		return bs
	}

	t.Run("DeMorgan-ish: (a∪b)\\b ⊆ a", func(t *testing.T) {
		f := func(ab, bb []bool) bool {
			a, b := setFromBools(g, trim(ab)), setFromBools(g, trim(bb))
			diff := a.Union(b).Subtract(b)
			ok := true
			diff.ForEach(func(n *Node) bool {
				if !a.Has(n) {
					ok = false
					return false
				}
				return true
			})
			return ok
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("union count = |a|+|b|-|a∩b|", func(t *testing.T) {
		f := func(ab, bb []bool) bool {
			a, b := setFromBools(g, trim(ab)), setFromBools(g, trim(bb))
			return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("subtract then intersect is empty", func(t *testing.T) {
		f := func(ab, bb []bool) bool {
			a, b := setFromBools(g, trim(ab)), setFromBools(g, trim(bb))
			return a.Subtract(b).Intersect(b).Empty()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("clone equality", func(t *testing.T) {
		f := func(ab []bool) bool {
			a := setFromBools(g, trim(ab))
			return a.Clone().Equal(a)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatal(err)
		}
	})
}
