// Package callgraph provides the whole-program call-graph representation the
// CaPI selection pipeline operates on (§III-A of the paper), together with
// dense node sets and the graph algebra used by the selectors: reachability,
// call-path computation, strongly connected components and statement
// aggregation.
//
// Graphs are append-only: nodes and edges are added during construction
// (internal/metacg) and then only read. Node identity is the function name.
package callgraph

import (
	"fmt"
	"sort"
)

// Meta is the per-function static metadata carried by a node. It mirrors the
// annotation set MetaCG attaches to call-graph nodes.
type Meta struct {
	Statements   int    `json:"numStatements"`
	LOC          int    `json:"loc"`
	Flops        int    `json:"numFlops"`
	LoopDepth    int    `json:"loopDepth"`
	Cyclomatic   int    `json:"cyclomatic"`
	Inline       bool   `json:"inline"`
	SystemHeader bool   `json:"systemHeader"`
	Virtual      bool   `json:"virtual"`
	Unit         string `json:"unit,omitempty"`
	TU           string `json:"tu,omitempty"`
}

// Node is one function in the call graph.
type Node struct {
	id      int
	Name    string
	Display string // demangled name for reports; may equal Name
	Meta    Meta

	callees []*Node
	callers []*Node
}

// ID returns the node's dense index, stable for the life of the graph.
func (n *Node) ID() int { return n.id }

// Callees returns the outgoing edges. Callers must not modify the slice.
func (n *Node) Callees() []*Node { return n.callees }

// Callers returns the incoming edges. Callers must not modify the slice.
func (n *Node) Callers() []*Node { return n.callers }

func (n *Node) String() string { return n.Name }

// Graph is a whole-program call graph.
type Graph struct {
	Name string
	Main string // entry-point function name ("" if unknown)

	nodes map[string]*Node
	order []*Node

	edgeSeen map[[2]int]struct{}
}

// New returns an empty graph.
func New(name string) *Graph {
	return &Graph{
		Name:     name,
		nodes:    map[string]*Node{},
		edgeSeen: map[[2]int]struct{}{},
	}
}

// AddNode inserts a node with the given metadata and returns it. If the node
// already exists it is returned unchanged (use SetMeta to replace a stub's
// metadata during translation-unit merging).
func (g *Graph) AddNode(name string, meta Meta) *Node {
	if n, ok := g.nodes[name]; ok {
		return n
	}
	n := &Node{id: len(g.order), Name: name, Display: name, Meta: meta}
	g.nodes[name] = n
	g.order = append(g.order, n)
	return n
}

// SetMeta replaces the metadata of an existing node. It reports whether the
// node exists.
func (g *Graph) SetMeta(name string, meta Meta) bool {
	n, ok := g.nodes[name]
	if !ok {
		return false
	}
	n.Meta = meta
	return true
}

// Node returns the named node, or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[name] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.order) }

// Nodes returns all nodes in insertion order. Callers must not modify the
// returned slice.
func (g *Graph) Nodes() []*Node { return g.order }

// NodeByID returns the node with the given dense index.
func (g *Graph) NodeByID(id int) *Node {
	if id < 0 || id >= len(g.order) {
		return nil
	}
	return g.order[id]
}

// AddEdge inserts a caller→callee edge, creating missing nodes with empty
// metadata (declaration stubs). Duplicate edges are ignored.
func (g *Graph) AddEdge(caller, callee string) {
	from := g.AddNode(caller, Meta{})
	to := g.AddNode(callee, Meta{})
	key := [2]int{from.id, to.id}
	if _, dup := g.edgeSeen[key]; dup {
		return
	}
	g.edgeSeen[key] = struct{}{}
	from.callees = append(from.callees, to)
	to.callers = append(to.callers, from)
}

// HasEdge reports whether the caller→callee edge exists.
func (g *Graph) HasEdge(caller, callee string) bool {
	from, to := g.nodes[caller], g.nodes[callee]
	if from == nil || to == nil {
		return false
	}
	_, ok := g.edgeSeen[[2]int{from.id, to.id}]
	return ok
}

// NumEdges returns the number of distinct edges.
func (g *Graph) NumEdges() int { return len(g.edgeSeen) }

// MainNode returns the entry-point node, or nil if unset/unknown.
func (g *Graph) MainNode() *Node {
	if g.Main == "" {
		return nil
	}
	return g.nodes[g.Main]
}

// Merge folds other into g: nodes are created as needed, non-empty metadata
// from other overrides stub (zero) metadata in g, and all edges are added.
// This implements the whole-program merge step of the MetaCG workflow
// (Fig. 2 step 4).
func (g *Graph) Merge(other *Graph) {
	for _, n := range other.order {
		existing, ok := g.nodes[n.Name]
		if !ok {
			nn := g.AddNode(n.Name, n.Meta)
			nn.Display = n.Display
			continue
		}
		if existing.Meta == (Meta{}) && n.Meta != (Meta{}) {
			existing.Meta = n.Meta
			existing.Display = n.Display
		}
	}
	for _, n := range other.order {
		for _, c := range n.callees {
			g.AddEdge(n.Name, c.Name)
		}
	}
	if g.Main == "" {
		g.Main = other.Main
	}
}

// SortedNames returns all node names sorted lexicographically (for stable
// test output).
func (g *Graph) SortedNames() []string {
	out := make([]string, len(g.order))
	for i, n := range g.order {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

// Validate performs internal consistency checks and is used by tests.
func (g *Graph) Validate() error {
	for i, n := range g.order {
		if n.id != i {
			return fmt.Errorf("callgraph: node %q has id %d at position %d", n.Name, n.id, i)
		}
		if g.nodes[n.Name] != n {
			return fmt.Errorf("callgraph: node %q index mismatch", n.Name)
		}
	}
	if len(g.nodes) != len(g.order) {
		return fmt.Errorf("callgraph: %d named vs %d ordered nodes", len(g.nodes), len(g.order))
	}
	return nil
}
