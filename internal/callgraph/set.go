package callgraph

import "math/bits"

// Set is a dense bitset of graph nodes, the currency of the selection
// pipeline. With OpenFOAM-scale graphs (410k nodes) the selectors perform
// many unions/subtractions; a bitset keeps each at a few kilobytes per
// 64k nodes and makes set algebra word-parallel.
//
// A Set is bound to the graph it was created from; combining sets from
// different graphs panics (it is always a programming error).
type Set struct {
	g     *Graph
	words []uint64
}

// NewSet returns an empty set over g's nodes.
func (g *Graph) NewSet() *Set {
	return &Set{g: g, words: make([]uint64, (g.Len()+63)/64)}
}

// UniverseSet returns the set of all nodes (the DSL's "%%").
func (g *Graph) UniverseSet() *Set {
	s := g.NewSet()
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Clear the tail bits beyond Len.
	if extra := len(s.words)*64 - g.Len(); extra > 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] >>= uint(extra)
	}
	return s
}

// SetOf builds a set from the named nodes; unknown names are ignored.
func (g *Graph) SetOf(names ...string) *Set {
	s := g.NewSet()
	for _, name := range names {
		if n := g.Node(name); n != nil {
			s.Add(n)
		}
	}
	return s
}

// Graph returns the graph this set is bound to.
func (s *Set) Graph() *Graph { return s.g }

func (s *Set) check(o *Set) {
	if s.g != o.g {
		//capi:panic-ok mixing sets of two graphs is a programming error, not a runtime condition
		panic("callgraph: set operation across different graphs")
	}
}

// Add inserts the node.
func (s *Set) Add(n *Node) { s.words[n.id>>6] |= 1 << uint(n.id&63) }

// AddID inserts the node with the given dense index.
func (s *Set) AddID(id int) { s.words[id>>6] |= 1 << uint(id&63) }

// Remove deletes the node.
func (s *Set) Remove(n *Node) { s.words[n.id>>6] &^= 1 << uint(n.id&63) }

// Has reports membership.
func (s *Set) Has(n *Node) bool {
	return n != nil && s.words[n.id>>6]&(1<<uint(n.id&63)) != 0
}

// HasID reports membership by dense index.
func (s *Set) HasID(id int) bool { return s.words[id>>6]&(1<<uint(id&63)) != 0 }

// HasName reports membership by node name.
func (s *Set) HasName(name string) bool { return s.Has(s.g.Node(name)) }

// Count returns the number of members.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := &Set{g: s.g, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns s ∪ o as a new set.
func (s *Set) Union(o *Set) *Set {
	s.check(o)
	r := s.Clone()
	for i, w := range o.words {
		r.words[i] |= w
	}
	return r
}

// Subtract returns s \ o as a new set.
func (s *Set) Subtract(o *Set) *Set {
	s.check(o)
	r := s.Clone()
	for i, w := range o.words {
		r.words[i] &^= w
	}
	return r
}

// Intersect returns s ∩ o as a new set.
func (s *Set) Intersect(o *Set) *Set {
	s.check(o)
	r := s.Clone()
	for i, w := range o.words {
		r.words[i] &= w
	}
	return r
}

// UnionWith adds all members of o to s in place.
func (s *Set) UnionWith(o *Set) {
	s.check(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Equal reports whether both sets have identical membership.
func (s *Set) Equal(o *Set) bool {
	s.check(o)
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every member in dense-index order; returning false
// stops the iteration early.
func (s *Set) ForEach(fn func(*Node) bool) {
	for wi, w := range s.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			if !fn(s.g.order[wi*64+bit]) {
				return
			}
		}
	}
}

// Names returns the member names in dense-index order.
func (s *Set) Names() []string {
	out := make([]string, 0, s.Count())
	s.ForEach(func(n *Node) bool {
		out = append(out, n.Name)
		return true
	})
	return out
}

// Members returns the member nodes in dense-index order.
func (s *Set) Members() []*Node {
	out := make([]*Node, 0, s.Count())
	s.ForEach(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}
