// Package xray reimplements the runtime side of LLVM's XRay instrumentation
// together with the DSO extension the paper contributes (§V-A/§V-B):
//
//   - a runtime registry of patchable objects — the executable is always
//     object 0, dynamically loaded shared objects register through the
//     xray-dso mechanism and receive IDs 1..255;
//   - packed function IDs (Fig. 4): 8 bits of object ID, 24 bits of
//     object-local function ID, keeping the external 32-bit API unchanged;
//   - sled patching under mprotect: the pages containing a function's sleds
//     are made writable, the NOP sleds are rewritten into trampoline jumps,
//     and the protection is restored;
//   - per-object trampolines (position-independent for DSOs) dispatching to
//     a process-wide event handler.
//
// Handlers receive an explicit ThreadCtx (rank + virtual clock) instead of
// reading TLS — the one deliberate API deviation from real XRay, documented
// in DESIGN.md.
package xray

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"capi/internal/mem"
	"capi/internal/obj"
	"capi/internal/vtime"
)

// Packed-ID layout (Fig. 4): 8-bit object ID, 24-bit function ID.
const (
	// MaxDSOs is the maximum number of registrable shared objects
	// (object IDs 1..255; ID 0 is the main executable).
	MaxDSOs = 255
	// MaxFuncID is the largest object-local function ID (≈16.7 million
	// functions per object; the paper's largest OpenFOAM object uses
	// 28,687 IDs).
	MaxFuncID = 1<<24 - 1
)

// PackID combines an object ID and an object-local function ID into the
// packed 32-bit ID passed to handlers. The main executable is object 0, so
// its packed IDs equal its function IDs — preserving backwards
// compatibility with DSO-unaware tools.
func PackID(object uint8, fn uint32) (int32, error) {
	if fn > MaxFuncID {
		return 0, fmt.Errorf("xray: function ID %d exceeds 24-bit limit", fn)
	}
	return int32(uint32(object)<<24 | fn), nil
}

// UnpackID splits a packed ID into object ID and function ID.
func UnpackID(id int32) (object uint8, fn uint32) {
	u := uint32(id)
	return uint8(u >> 24), u & MaxFuncID
}

// EntryType tells a handler which kind of instrumentation point fired.
type EntryType uint8

// Entry and exit events (tail-call exits are folded into Exit).
const (
	Entry EntryType = iota
	Exit
)

func (e EntryType) String() string {
	if e == Entry {
		return "entry"
	}
	return "exit"
}

// ThreadCtx is the execution context a handler runs under: the simulated
// MPI rank and its virtual clock (for charging measurement costs).
type ThreadCtx interface {
	RankID() int
	Clock() *vtime.Clock
}

// Handler is the XRay event handler: it receives the packed function ID and
// the event type, exactly like __xray_set_handler's callback.
type Handler func(tc ThreadCtx, id int32, kind EntryType)

// Trampoline models a per-object trampoline pair. DSO trampolines must be
// position-independent (addressing the handler through the GOT, §V-B2);
// the executable's may use absolute addressing.
type Trampoline struct {
	Object              string
	PositionIndependent bool
}

// Stats counts patching work for the init-time cost model and for the
// live-reconfiguration batch path.
type Stats struct {
	PatchedSleds   int64
	UnpatchedSleds int64
	MprotectPages  int64
	MprotectCalls  int64

	// BatchCalls counts PatchBatch invocations.
	BatchCalls int64
	// BatchFuncs counts functions processed through PatchBatch.
	BatchFuncs int64
	// BatchWindows counts the mprotect open/close windows PatchBatch used;
	// page coalescing makes this (much) smaller than BatchFuncs when sleds
	// share text pages.
	BatchWindows int64
}

// Add accumulates another Stats value into s.
func (s *Stats) Add(d Stats) {
	s.PatchedSleds += d.PatchedSleds
	s.UnpatchedSleds += d.UnpatchedSleds
	s.MprotectPages += d.MprotectPages
	s.MprotectCalls += d.MprotectCalls
	s.BatchCalls += d.BatchCalls
	s.BatchFuncs += d.BatchFuncs
	s.BatchWindows += d.BatchWindows
}

type objectState struct {
	lo         *obj.LoadedObject
	trampoline Trampoline
}

// Runtime is the XRay runtime for one process.
type Runtime struct {
	proc *obj.Process

	mu      sync.Mutex
	objects [MaxDSOs + 1]*objectState   //capi:guardedby mu
	objID   map[*obj.LoadedObject]uint8 //capi:guardedby mu
	nextDSO int                         //capi:guardedby mu

	// patchMu serializes sled rewriting (the mprotect open/write/close
	// dance): concurrent patch operations must not interleave their
	// protection windows.
	patchMu sync.Mutex

	handler atomic.Value // of Handler
	stats   Stats        //capi:guardedby mu
}

// NewRuntime creates the runtime for a process: the executable is
// registered as object 0 (when patchable), every already-loaded patchable
// DSO is registered, and loader hooks keep future dlopen/dlclose in sync —
// this models the xray-dso constructor/destructor registration.
func NewRuntime(p *obj.Process) (*Runtime, error) {
	rt := &Runtime{proc: p, objID: map[*obj.LoadedObject]uint8{}, nextDSO: 1}
	exe := p.Executable()
	if exe.Image.Patchable {
		if exe.Image.NumFuncIDs > MaxFuncID+1 {
			return nil, fmt.Errorf("xray: executable uses %d function IDs (limit %d)", exe.Image.NumFuncIDs, MaxFuncID+1)
		}
		//capi:unguarded-ok NewRuntime has not published rt to any other goroutine yet
		rt.objects[0] = &objectState{lo: exe, trampoline: Trampoline{Object: exe.Image.Name}}
		//capi:unguarded-ok NewRuntime has not published rt to any other goroutine yet
		rt.objID[exe] = 0
	}
	for _, lo := range p.Objects() {
		if lo == exe || !lo.Image.Patchable {
			continue
		}
		if _, err := rt.RegisterObject(lo); err != nil {
			return nil, err
		}
	}
	p.OnLoad(func(lo *obj.LoadedObject) {
		if lo.Image.Patchable {
			_, _ = rt.RegisterObject(lo)
		}
	})
	p.OnUnload(func(lo *obj.LoadedObject) {
		if id, ok := rt.ObjectID(lo); ok && id != 0 {
			_ = rt.UnregisterObject(id)
		}
	})
	return rt, nil
}

// RegisterObject registers a patchable DSO, assigning it the next object ID
// (1..255). It returns the assigned ID. Registering more than MaxDSOs
// objects fails, as does an object exceeding the 24-bit function-ID space.
func (rt *Runtime) RegisterObject(lo *obj.LoadedObject) (uint8, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !lo.Image.Patchable {
		return 0, fmt.Errorf("xray: object %q is not patchable", lo.Image.Name)
	}
	if _, dup := rt.objID[lo]; dup {
		return 0, fmt.Errorf("xray: object %q already registered", lo.Image.Name)
	}
	if lo.Image.NumFuncIDs > MaxFuncID+1 {
		return 0, fmt.Errorf("xray: object %q uses %d function IDs (limit %d)", lo.Image.Name, lo.Image.NumFuncIDs, MaxFuncID+1)
	}
	// Find a free slot (IDs may have been released by dlclose).
	for i := 0; i < MaxDSOs; i++ {
		id := uint8((rt.nextDSO-1+i)%MaxDSOs) + 1
		if rt.objects[id] == nil {
			rt.objects[id] = &objectState{
				lo:         lo,
				trampoline: Trampoline{Object: lo.Image.Name, PositionIndependent: true},
			}
			rt.objID[lo] = id
			rt.nextDSO = int(id) + 1
			return id, nil
		}
	}
	return 0, fmt.Errorf("xray: object limit reached (%d DSOs)", MaxDSOs)
}

// UnregisterObject releases a DSO's object ID (dlclose path). Its sleds are
// gone with the mapping; no unpatching is attempted.
func (rt *Runtime) UnregisterObject(id uint8) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if id == 0 {
		return fmt.Errorf("xray: cannot unregister the main executable")
	}
	st := rt.objects[id]
	if st == nil {
		return fmt.Errorf("xray: object ID %d not registered", id)
	}
	delete(rt.objID, st.lo)
	rt.objects[id] = nil
	return nil
}

// ObjectID returns the object ID assigned to a loaded object.
func (rt *Runtime) ObjectID(lo *obj.LoadedObject) (uint8, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	id, ok := rt.objID[lo]
	return id, ok
}

// Object returns the loaded object registered under the given ID.
func (rt *Runtime) Object(id uint8) (*obj.LoadedObject, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.objects[id]
	if st == nil {
		return nil, false
	}
	return st.lo, true
}

// Objects returns the registered (object ID, loaded object) pairs in ID
// order.
func (rt *Runtime) Objects() map[uint8]*obj.LoadedObject {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[uint8]*obj.LoadedObject, len(rt.objID))
	for lo, id := range rt.objID {
		out[id] = lo
	}
	return out
}

// Trampoline returns the trampoline descriptor for an object ID.
func (rt *Runtime) Trampoline(id uint8) (Trampoline, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	st := rt.objects[id]
	if st == nil {
		return Trampoline{}, false
	}
	return st.trampoline, true
}

// FunctionAddress returns the absolute entry address of the function with
// the given packed ID — the __xray_function_address equivalent DynCaPI uses
// to cross-check its symbol mapping (§VI-B(a)).
func (rt *Runtime) FunctionAddress(id int32) (uint64, error) {
	objID, fn := UnpackID(id)
	rt.mu.Lock()
	st := rt.objects[objID]
	rt.mu.Unlock()
	if st == nil {
		return 0, fmt.Errorf("xray: object %d not registered", objID)
	}
	off, ok := st.lo.Image.FuncEntryOffset(fn)
	if !ok {
		return 0, fmt.Errorf("xray: object %d has no function %d", objID, fn)
	}
	return st.lo.Base + off, nil
}

// SetHandler installs the process-wide event handler (nil removes it).
func (rt *Runtime) SetHandler(h Handler) { rt.handler.Store(h) }

// Dispatch invokes the installed handler for a patched sled; the execution
// engine calls it from the trampoline site. A missing handler is a no-op,
// as in real XRay. One atomic load and an indirect call — the entry point
// of the event hot path.
//
//capi:hotpath
func (rt *Runtime) Dispatch(tc ThreadCtx, id int32, kind EntryType) {
	if h, ok := rt.handler.Load().(Handler); ok && h != nil {
		h(tc, id, kind)
	}
}

// setSleds patches or unpatches all sleds of one function, performing the
// mprotect dance on the containing pages.
func (rt *Runtime) setSleds(st *objectState, fn uint32, patched bool) error {
	sleds := st.lo.Image.FuncSleds(fn)
	if len(sleds) == 0 {
		return fmt.Errorf("xray: object %q has no sleds for function %d", st.lo.Image.Name, fn)
	}
	rt.patchMu.Lock()
	defer rt.patchMu.Unlock()
	delta, err := rt.writeWindow(st, sleds, patched)
	rt.addStats(delta)
	return err
}

// writeWindow opens one mprotect window spanning the given sleds of one
// object, rewrites them, and restores the protection. Callers hold patchMu.
func (rt *Runtime) writeWindow(st *objectState, sleds []int, patched bool) (Stats, error) {
	lo, hi := st.lo.SledAddr(sleds[0]), st.lo.SledAddr(sleds[0])
	for _, si := range sleds {
		a := st.lo.SledAddr(si)
		if a < lo {
			lo = a
		}
		if a+obj.SledBytes > hi {
			hi = a + obj.SledBytes
		}
	}
	var delta Stats
	pages, err := rt.proc.AS.Mprotect(lo, hi-lo, mem.ProtRead|mem.ProtWrite|mem.ProtExec)
	if err != nil {
		return delta, fmt.Errorf("xray: making sleds writable: %w", err)
	}
	delta.MprotectCalls++
	delta.MprotectPages += int64(pages)
	var firstErr error
	for _, si := range sleds {
		if err := st.lo.WriteSled(si, patched); err != nil && firstErr == nil {
			firstErr = err
		}
		if patched {
			delta.PatchedSleds++
		} else {
			delta.UnpatchedSleds++
		}
	}
	if _, err := rt.proc.AS.Mprotect(lo, hi-lo, mem.ProtRead|mem.ProtExec); err != nil && firstErr == nil {
		firstErr = err
	}
	delta.MprotectCalls++
	return delta, firstErr
}

func (rt *Runtime) addStats(delta Stats) {
	rt.mu.Lock()
	rt.stats.Add(delta)
	rt.mu.Unlock()
}

// PatchBatch patches (or unpatches) many functions under coalesced mprotect
// windows: the sleds of all requested functions are grouped per object and
// per run of contiguous text pages, so one protection open/close window
// covers every sled on those pages — the batch equivalent of setSleds that
// makes live re-selection cheap (one window per dirty page run instead of
// two mprotect calls per function). It returns the stats delta of this
// batch; the delta is also accumulated into the runtime's Stats.
//
// All IDs are validated before any sled is touched, so an invalid ID leaves
// the sled state unchanged.
func (rt *Runtime) PatchBatch(ids []int32, patch bool) (Stats, error) {
	type objSleds struct {
		st    *objectState
		sleds []int
	}
	var order []*objSleds
	byState := map[*objectState]*objSleds{}
	funcs := 0
	seen := map[int32]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		st, fn, err := rt.objectFor(id)
		if err != nil {
			return Stats{}, err
		}
		sleds := st.lo.Image.FuncSleds(fn)
		if len(sleds) == 0 {
			return Stats{}, fmt.Errorf("xray: object %q has no sleds for function %d", st.lo.Image.Name, fn)
		}
		os, ok := byState[st]
		if !ok {
			os = &objSleds{st: st}
			byState[st] = os
			order = append(order, os)
		}
		os.sleds = append(os.sleds, sleds...)
		funcs++
	}

	rt.patchMu.Lock()
	defer rt.patchMu.Unlock()
	var delta Stats
	delta.BatchCalls = 1
	delta.BatchFuncs = int64(funcs)
	var firstErr error
	for _, os := range order {
		st := os.st
		sleds := os.sleds
		sort.Slice(sleds, func(i, j int) bool { return st.lo.SledAddr(sleds[i]) < st.lo.SledAddr(sleds[j]) })
		// Split into runs of contiguous pages: a gap of one or more whole
		// pages between consecutive sleds closes the current window, so the
		// batch never opens write access on pages it does not rewrite.
		for start := 0; start < len(sleds); {
			end := start + 1
			lastPage := (st.lo.SledAddr(sleds[start]) + obj.SledBytes - 1) / mem.PageSize
			for end < len(sleds) {
				a := st.lo.SledAddr(sleds[end])
				if a/mem.PageSize > lastPage+1 {
					break
				}
				if p := (a + obj.SledBytes - 1) / mem.PageSize; p > lastPage {
					lastPage = p
				}
				end++
			}
			d, err := rt.writeWindow(st, sleds[start:end], patch)
			delta.Add(d)
			delta.BatchWindows++
			if err != nil && firstErr == nil {
				firstErr = err
			}
			start = end
		}
	}
	rt.addStats(delta)
	return delta, firstErr
}

func (rt *Runtime) objectFor(id int32) (*objectState, uint32, error) {
	objID, fn := UnpackID(id)
	rt.mu.Lock()
	st := rt.objects[objID]
	rt.mu.Unlock()
	if st == nil {
		return nil, 0, fmt.Errorf("xray: object %d not registered", objID)
	}
	if fn >= st.lo.Image.NumFuncIDs {
		return nil, 0, fmt.Errorf("xray: object %q has no function ID %d", st.lo.Image.Name, fn)
	}
	return st, fn, nil
}

// PatchFunction rewrites the sleds of one function to call the trampoline.
func (rt *Runtime) PatchFunction(id int32) error {
	st, fn, err := rt.objectFor(id)
	if err != nil {
		return err
	}
	return rt.setSleds(st, fn, true)
}

// UnpatchFunction restores the NOP sleds of one function.
func (rt *Runtime) UnpatchFunction(id int32) error {
	st, fn, err := rt.objectFor(id)
	if err != nil {
		return err
	}
	return rt.setSleds(st, fn, false)
}

// Patched reports whether the entry sled of the given function is patched.
func (rt *Runtime) Patched(id int32) bool {
	st, fn, err := rt.objectFor(id)
	if err != nil {
		return false
	}
	for _, si := range st.lo.Image.FuncSleds(fn) {
		if st.lo.Image.Sleds[si].Kind == obj.SledEntry {
			return st.lo.SledPatched(si)
		}
	}
	return false
}

// PatchAll patches every sled of every registered object ("xray full"). It
// returns the number of functions patched.
func (rt *Runtime) PatchAll() (int, error) {
	return rt.setAll(true)
}

// UnpatchAll restores every sled of every registered object.
func (rt *Runtime) UnpatchAll() (int, error) {
	return rt.setAll(false)
}

func (rt *Runtime) setAll(patched bool) (int, error) {
	rt.mu.Lock()
	states := make([]*objectState, 0, len(rt.objID))
	for id := 0; id <= MaxDSOs; id++ {
		if rt.objects[id] != nil {
			states = append(states, rt.objects[id])
		}
	}
	rt.mu.Unlock()
	n := 0
	for _, st := range states {
		for fn := uint32(0); fn < st.lo.Image.NumFuncIDs; fn++ {
			if err := rt.setSleds(st, fn, patched); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// Stats returns a snapshot of the patching statistics.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}
