package xray

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"capi/internal/obj"
	"capi/internal/vtime"
)

// makeImage builds a patchable image with n instrumented functions.
func makeImage(name string, exe bool, n int) *obj.Image {
	im := &obj.Image{Name: name, Exe: exe, Patchable: true}
	var off uint64
	for i := 0; i < n; i++ {
		size := uint64(64)
		im.Symbols = append(im.Symbols, obj.Symbol{
			Name: fmt.Sprintf("%s_f%d", name, i), Value: off, Size: size, Kind: obj.SymFunc,
		})
		id := uint32(i)
		im.Sleds = append(im.Sleds,
			obj.Sled{Offset: off, FuncID: id, Kind: obj.SledEntry},
			obj.Sled{Offset: off + size - obj.SledBytes, FuncID: id, Kind: obj.SledExit},
		)
		im.NumFuncIDs++
		off += size
	}
	im.TextSize = off
	if im.TextSize == 0 {
		im.TextSize = 16
	}
	if err := im.Finalize(); err != nil {
		panic(err)
	}
	return im
}

func newProc(t *testing.T, ndsos, funcsPer int) (*obj.Process, *Runtime) {
	t.Helper()
	p, err := obj.NewProcess(makeImage("exe", true, funcsPer))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ndsos; i++ {
		if _, err := p.Load(makeImage(fmt.Sprintf("lib%d.so", i), false, funcsPer)); err != nil {
			t.Fatal(err)
		}
	}
	return p, rt
}

type fakeCtx struct {
	rank int
	clk  vtime.Clock
}

func (f *fakeCtx) RankID() int         { return f.rank }
func (f *fakeCtx) Clock() *vtime.Clock { return &f.clk }

func TestPackUnpackID(t *testing.T) {
	id, err := PackID(3, 12345)
	if err != nil {
		t.Fatal(err)
	}
	o, f := UnpackID(id)
	if o != 3 || f != 12345 {
		t.Fatalf("unpack = %d/%d", o, f)
	}
	// Object 0 keeps packed == function ID (backwards compatibility).
	id0, _ := PackID(0, 777)
	if id0 != 777 {
		t.Fatalf("exe packed ID = %d, want 777", id0)
	}
	if _, err := PackID(1, MaxFuncID+1); err == nil {
		t.Fatal("function ID over 24 bits must fail")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(object uint8, fn uint32) bool {
		fn %= MaxFuncID + 1
		id, err := PackID(object, fn)
		if err != nil {
			return false
		}
		o2, f2 := UnpackID(id)
		return o2 == object && f2 == fn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeRegistersExeAndDSOs(t *testing.T) {
	p, rt := newProc(t, 2, 3)
	objs := rt.Objects()
	if len(objs) != 3 {
		t.Fatalf("registered objects = %d, want 3", len(objs))
	}
	if id, ok := rt.ObjectID(p.Executable()); !ok || id != 0 {
		t.Fatalf("exe object ID = %d, %v", id, ok)
	}
	// DSO trampolines are position independent; the exe's is not.
	tr, ok := rt.Trampoline(0)
	if !ok || tr.PositionIndependent {
		t.Fatalf("exe trampoline = %+v", tr)
	}
	tr1, ok := rt.Trampoline(1)
	if !ok || !tr1.PositionIndependent {
		t.Fatalf("dso trampoline = %+v", tr1)
	}
	if _, ok := rt.Trampoline(99); ok {
		t.Fatal("unregistered trampoline lookup should fail")
	}
}

func TestPatchUnpatchFunction(t *testing.T) {
	p, rt := newProc(t, 1, 4)
	lib := p.Object("lib0.so")
	libID, _ := rt.ObjectID(lib)
	id, _ := PackID(libID, 2)

	if rt.Patched(id) {
		t.Fatal("freshly loaded sleds must be NOP")
	}
	if err := rt.PatchFunction(id); err != nil {
		t.Fatal(err)
	}
	if !rt.Patched(id) {
		t.Fatal("function should be patched")
	}
	// Text protection restored after patching.
	if err := lib.WriteSled(0, true); err == nil {
		t.Fatal("text should be read-exec again after patching")
	}
	if err := rt.UnpatchFunction(id); err != nil {
		t.Fatal(err)
	}
	if rt.Patched(id) {
		t.Fatal("function should be unpatched")
	}
	st := rt.Stats()
	if st.PatchedSleds != 2 || st.UnpatchedSleds != 2 || st.MprotectCalls < 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPatchErrors(t *testing.T) {
	_, rt := newProc(t, 1, 2)
	// Unregistered object.
	bad, _ := PackID(7, 0)
	if err := rt.PatchFunction(bad); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
	// Function ID out of range.
	bad2, _ := PackID(0, 99)
	if err := rt.PatchFunction(bad2); err == nil || !strings.Contains(err.Error(), "no function ID") {
		t.Fatalf("err = %v", err)
	}
	if rt.Patched(bad2) {
		t.Fatal("out-of-range id cannot be patched")
	}
}

func TestPatchAll(t *testing.T) {
	_, rt := newProc(t, 2, 3)
	n, err := rt.PatchAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 { // 3 objects x 3 functions
		t.Fatalf("patched %d functions, want 9", n)
	}
	for id, lo := range rt.Objects() {
		for fn := uint32(0); fn < lo.Image.NumFuncIDs; fn++ {
			packed, _ := PackID(id, fn)
			if !rt.Patched(packed) {
				t.Fatalf("object %d fn %d not patched", id, fn)
			}
		}
	}
	if _, err := rt.UnpatchAll(); err != nil {
		t.Fatal(err)
	}
	for id := range rt.Objects() {
		packed, _ := PackID(id, 0)
		if rt.Patched(packed) {
			t.Fatal("still patched after UnpatchAll")
		}
	}
}

func TestFunctionAddress(t *testing.T) {
	p, rt := newProc(t, 1, 3)
	lib := p.Object("lib0.so")
	libID, _ := rt.ObjectID(lib)
	id, _ := PackID(libID, 1)
	addr, err := rt.FunctionAddress(id)
	if err != nil {
		t.Fatal(err)
	}
	if addr != lib.Base+64 {
		t.Fatalf("addr = %#x, want %#x", addr, lib.Base+64)
	}
	// The resolved symbol matches.
	_, sym, ok := p.ResolveAddr(addr)
	if !ok || sym.Name != "lib0.so_f1" {
		t.Fatalf("resolve = %+v, %v", sym, ok)
	}
	if _, err := rt.FunctionAddress(int32(uint32(9)<<24 | 0)); err == nil {
		t.Fatal("unregistered object address lookup should fail")
	}
}

func TestDispatchHandler(t *testing.T) {
	_, rt := newProc(t, 0, 1)
	tc := &fakeCtx{rank: 2}
	// No handler: no-op.
	rt.Dispatch(tc, 0, Entry)

	var events []string
	rt.SetHandler(func(c ThreadCtx, id int32, kind EntryType) {
		events = append(events, fmt.Sprintf("r%d:%d:%s", c.RankID(), id, kind))
		c.Clock().Advance(10)
	})
	rt.Dispatch(tc, 5, Entry)
	rt.Dispatch(tc, 5, Exit)
	if len(events) != 2 || events[0] != "r2:5:entry" || events[1] != "r2:5:exit" {
		t.Fatalf("events = %v", events)
	}
	if tc.clk.Now() != 20 {
		t.Fatalf("handler cost not charged: %d", tc.clk.Now())
	}
	rt.SetHandler(nil)
	rt.Dispatch(tc, 5, Entry)
	if len(events) != 2 {
		t.Fatal("nil handler should disable dispatch")
	}
}

func TestUnregisterOnUnload(t *testing.T) {
	p, rt := newProc(t, 2, 2)
	lib := p.Object("lib0.so")
	id, _ := rt.ObjectID(lib)
	if err := p.Unload("lib0.so"); err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.Object(id); ok {
		t.Fatal("object still registered after unload")
	}
	// The freed ID is reusable.
	im := makeImage("lib9.so", false, 1)
	lo, err := p.Load(im)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.ObjectID(lo); !ok {
		t.Fatal("new DSO not registered via load hook")
	}
}

func TestRegisterErrors(t *testing.T) {
	p, rt := newProc(t, 1, 1)
	lib := p.Object("lib0.so")
	if _, err := rt.RegisterObject(lib); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("err = %v", err)
	}
	if err := rt.UnregisterObject(0); err == nil {
		t.Fatal("unregistering the executable should fail")
	}
	if err := rt.UnregisterObject(200); err == nil {
		t.Fatal("unregistering a free ID should fail")
	}
	// Non-patchable object.
	np := makeImage("plain.so", false, 0)
	np.Patchable = false
	lo, err := p.Load(np)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.ObjectID(lo); ok {
		t.Fatal("non-patchable DSO must not be auto-registered")
	}
	if _, err := rt.RegisterObject(lo); err == nil {
		t.Fatal("registering non-patchable object should fail")
	}
}

func TestDSOLimit(t *testing.T) {
	// Exhaust the 255 DSO slots cheaply with tiny images.
	p, err := obj.NewProcess(makeImage("exe", true, 1))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxDSOs; i++ {
		if _, err := p.Load(makeImage(fmt.Sprintf("l%d.so", i), false, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rt.Objects()) != MaxDSOs+1 {
		t.Fatalf("registered = %d", len(rt.Objects()))
	}
	// One more: the load succeeds but registration must fail.
	extra := makeImage("overflow.so", false, 0)
	lo, err := p.Load(extra)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.ObjectID(lo); ok {
		t.Fatal("256th DSO should not have been registered")
	}
	if _, err := rt.RegisterObject(lo); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v", err)
	}
}

// batchIDs returns the packed IDs of functions [0,n) of the given object.
func batchIDs(t *testing.T, object uint8, n int) []int32 {
	t.Helper()
	ids := make([]int32, 0, n)
	for fn := 0; fn < n; fn++ {
		id, err := PackID(object, uint32(fn))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestPatchBatchCoalescesPages(t *testing.T) {
	// 64-byte functions: 64 per 4096-byte page, so 128 functions span only
	// two text pages and one batch window must cover dozens of them.
	const n = 128
	_, single := newProc(t, 0, n)
	for _, id := range batchIDs(t, 0, n) {
		if err := single.PatchFunction(id); err != nil {
			t.Fatal(err)
		}
	}
	singleCalls := single.Stats().MprotectCalls // 2 per function

	_, batch := newProc(t, 0, n)
	delta, err := batch.PatchBatch(batchIDs(t, 0, n), true)
	if err != nil {
		t.Fatal(err)
	}
	if delta.MprotectCalls >= singleCalls {
		t.Fatalf("batch used %d mprotect calls, singles used %d — no coalescing",
			delta.MprotectCalls, singleCalls)
	}
	// The whole text is contiguous: one window suffices.
	if delta.BatchWindows != 1 {
		t.Fatalf("batch windows = %d, want 1 (contiguous pages)", delta.BatchWindows)
	}
	if delta.BatchFuncs != n || delta.BatchCalls != 1 {
		t.Fatalf("batch stats = %+v", delta)
	}
	if delta.PatchedSleds != 2*n {
		t.Fatalf("patched sleds = %d, want %d", delta.PatchedSleds, 2*n)
	}
	// Both approaches leave the same sled state.
	for _, id := range batchIDs(t, 0, n) {
		if !single.Patched(id) || !batch.Patched(id) {
			t.Fatalf("fn %d not patched (single %v, batch %v)", id, single.Patched(id), batch.Patched(id))
		}
	}
}

func TestPatchBatchRoundTripRestoresPristineSleds(t *testing.T) {
	const n = 16
	p, rt := newProc(t, 1, n)
	lib := p.Object("lib0.so")
	libID, _ := rt.ObjectID(lib)
	ids := append(batchIDs(t, 0, n), batchIDs(t, libID, n)...)

	exe := p.Executable()
	pristineExe, pristineLib := exe.NumPatched(), lib.NumPatched()
	if pristineExe != 0 || pristineLib != 0 {
		t.Fatalf("fresh objects have patched sleds: %d/%d", pristineExe, pristineLib)
	}

	if _, err := rt.PatchBatch(ids, true); err != nil {
		t.Fatal(err)
	}
	if exe.NumPatched() != 2*n || lib.NumPatched() != 2*n {
		t.Fatalf("after patch: %d/%d sleds, want %d each", exe.NumPatched(), lib.NumPatched(), 2*n)
	}
	if _, err := rt.PatchBatch(ids, false); err != nil {
		t.Fatal(err)
	}
	// Unpatch restores the pristine image: every sled byte back to NOP.
	if exe.NumPatched() != 0 || lib.NumPatched() != 0 {
		t.Fatalf("after unpatch: %d/%d sleds still patched", exe.NumPatched(), lib.NumPatched())
	}
	for _, id := range ids {
		if rt.Patched(id) {
			t.Fatalf("fn %d still patched after round trip", id)
		}
	}
	if _, err := rt.PatchBatch(ids, true); err != nil {
		t.Fatal(err)
	}
	if exe.NumPatched() != 2*n || lib.NumPatched() != 2*n {
		t.Fatalf("re-patch: %d/%d sleds, want %d each", exe.NumPatched(), lib.NumPatched(), 2*n)
	}
	// Text protection is read-exec again after the batch windows closed.
	if err := exe.WriteSled(0, true); err == nil {
		t.Fatal("text writable after PatchBatch — protection not restored")
	}
	st := rt.Stats()
	if st.BatchCalls != 3 {
		t.Fatalf("accumulated batch calls = %d, want 3", st.BatchCalls)
	}
}

func TestPatchBatchValidatesBeforePatching(t *testing.T) {
	_, rt := newProc(t, 0, 4)
	bad, _ := PackID(9, 0) // unregistered object
	ids := append(batchIDs(t, 0, 4), bad)
	if _, err := rt.PatchBatch(ids, true); err == nil {
		t.Fatal("batch with invalid ID must fail")
	}
	for _, id := range batchIDs(t, 0, 4) {
		if rt.Patched(id) {
			t.Fatal("failed batch must leave sleds untouched")
		}
	}
	if st := rt.Stats(); st.MprotectCalls != 0 || st.PatchedSleds != 0 {
		t.Fatalf("failed batch accounted work: %+v", st)
	}
}

func TestPatchBatchDeduplicatesIDs(t *testing.T) {
	_, rt := newProc(t, 0, 2)
	id, _ := PackID(0, 1)
	delta, err := rt.PatchBatch([]int32{id, id, id}, true)
	if err != nil {
		t.Fatal(err)
	}
	if delta.BatchFuncs != 1 || delta.PatchedSleds != 2 {
		t.Fatalf("duplicate IDs not deduplicated: %+v", delta)
	}
}

func TestEntryTypeString(t *testing.T) {
	if Entry.String() != "entry" || Exit.String() != "exit" {
		t.Fatal("EntryType strings wrong")
	}
}
