package core

import (
	"strings"
	"testing"

	"capi/internal/callgraph"
	"capi/internal/spec"
)

// mpiGraph builds a small MPI-app-like graph:
//
//	main -> init -> MPI_Init
//	main -> loop -> compute(kernel: flops 20, loop 1) -> tiny (inline)
//	loop -> exchange -> MPI_Sendrecv
//	main -> teardown
func mpiGraph() *callgraph.Graph {
	g := callgraph.New("t")
	g.Main = "main"
	g.AddNode("main", callgraph.Meta{Statements: 20})
	g.AddNode("init", callgraph.Meta{Statements: 5})
	g.AddNode("loop", callgraph.Meta{Statements: 15})
	g.AddNode("compute", callgraph.Meta{Statements: 50, Flops: 20, LoopDepth: 1})
	g.AddNode("tiny", callgraph.Meta{Statements: 2, Inline: true})
	g.AddNode("exchange", callgraph.Meta{Statements: 8})
	g.AddNode("teardown", callgraph.Meta{Statements: 3})
	g.AddNode("MPI_Init", callgraph.Meta{SystemHeader: true})
	g.AddNode("MPI_Sendrecv", callgraph.Meta{SystemHeader: true})
	g.AddEdge("main", "init")
	g.AddEdge("init", "MPI_Init")
	g.AddEdge("main", "loop")
	g.AddEdge("loop", "compute")
	g.AddEdge("compute", "tiny")
	g.AddEdge("loop", "exchange")
	g.AddEdge("exchange", "MPI_Sendrecv")
	g.AddEdge("main", "teardown")
	return g
}

type symbolSet map[string]bool

func (s symbolSet) HasSymbol(name string) bool { return s[name] }

// allSymbols reports every function as present (no inlining).
type allSymbols struct{}

func (allSymbols) HasSymbol(string) bool { return true }

func TestRunMPISpec(t *testing.T) {
	e := NewEngine(mpiGraph())
	src := `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`
	res, err := e.RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Call paths to MPI ops: main, init, loop, exchange (+ the MPI ops,
	// excluded as system headers).
	for _, want := range []string{"main", "init", "loop", "exchange"} {
		if !res.Final.HasName(want) {
			t.Fatalf("missing %s in %v", want, res.Final.Names())
		}
	}
	for _, not := range []string{"MPI_Init", "MPI_Sendrecv", "compute", "tiny", "teardown"} {
		if res.Final.HasName(not) {
			t.Fatalf("%s should not be selected", not)
		}
	}
	if res.SelectionTime <= 0 {
		t.Fatal("SelectionTime not recorded")
	}
	if _, ok := res.Named["mpi_comm"]; !ok {
		t.Fatal("named instance mpi_comm missing from result")
	}
}

func TestRunKernelsSpec(t *testing.T) {
	e := NewEngine(mpiGraph())
	src := `excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(callPathTo(%kernels), %excluded)
`
	res, err := e.RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main", "loop", "compute"} {
		if !res.Final.HasName(want) {
			t.Fatalf("missing %s in %v", want, res.Final.Names())
		}
	}
	if res.Final.HasName("exchange") {
		t.Fatal("exchange is not on a kernel path")
	}
}

func TestInlineCompensation(t *testing.T) {
	g := mpiGraph()
	e := NewEngine(g)
	// compute got inlined away by the compiler: symbol missing. tiny too.
	syms := symbolSet{
		"main": true, "init": true, "loop": true,
		"exchange": true, "teardown": true,
		"MPI_Init": true, "MPI_Sendrecv": true,
		// "compute", "tiny" absent -> treated as inlined
	}
	src := `kernels = flops(">=", 10, loopDepth(">=", 1, %%))
%kernels
`
	res, err := e.RunSource(src, Options{Symbols: syms})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pre.Count() != 1 || !res.Pre.HasName("compute") {
		t.Fatalf("pre = %v", res.Pre.Names())
	}
	if res.Selected.Count() != 0 {
		t.Fatalf("selected = %v, want empty", res.Selected.Names())
	}
	if len(res.RemovedInlined) != 1 || res.RemovedInlined[0] != "compute" {
		t.Fatalf("removed = %v", res.RemovedInlined)
	}
	// First non-inlined caller of compute is loop.
	if len(res.AddedCompensation) != 1 || res.AddedCompensation[0] != "loop" {
		t.Fatalf("added = %v", res.AddedCompensation)
	}
	if !res.Final.HasName("loop") || res.Final.HasName("compute") {
		t.Fatalf("final = %v", res.Final.Names())
	}
}

func TestInlineCompensationWalksThroughInlinedCallers(t *testing.T) {
	// main -> a (no symbol) -> b (no symbol, selected).
	g := callgraph.New("g")
	g.Main = "main"
	g.AddNode("main", callgraph.Meta{})
	g.AddNode("a", callgraph.Meta{})
	g.AddNode("b", callgraph.Meta{Flops: 99, LoopDepth: 1})
	g.AddEdge("main", "a")
	g.AddEdge("a", "b")
	syms := symbolSet{"main": true}
	e := NewEngine(g)
	res, err := e.RunSource("flops(\">\", 1, %%)\n", Options{Symbols: syms})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AddedCompensation) != 1 || res.AddedCompensation[0] != "main" {
		t.Fatalf("added = %v, want [main]", res.AddedCompensation)
	}
	if !res.Final.HasName("main") || res.Final.HasName("a") || res.Final.HasName("b") {
		t.Fatalf("final = %v", res.Final.Names())
	}
}

func TestInlineCompensationNoOpWhenAllSymbolsPresent(t *testing.T) {
	e := NewEngine(mpiGraph())
	res, err := e.RunSource("statements(\">\", 0, %%)\n", Options{Symbols: allSymbols{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RemovedInlined) != 0 || len(res.AddedCompensation) != 0 {
		t.Fatalf("unexpected compensation: -%v +%v", res.RemovedInlined, res.AddedCompensation)
	}
	if !res.Final.Equal(res.Pre) {
		t.Fatal("final should equal pre")
	}
}

func TestICEmission(t *testing.T) {
	e := NewEngine(mpiGraph())
	res, err := e.RunSource("byName(\"^(loop|compute)$\", %%)\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.IC("app", "test")
	if cfg.Len() != 2 || !cfg.Contains("loop") || !cfg.Contains("compute") {
		t.Fatalf("IC = %v", cfg.Include)
	}
	if cfg.App != "app" || cfg.Spec != "test" {
		t.Fatalf("provenance = %q/%q", cfg.App, cfg.Spec)
	}
}

func TestErrors(t *testing.T) {
	e := NewEngine(mpiGraph())
	cases := []struct {
		src  string
		frag string
	}{
		{"", "empty specification"},
		{"%ghost\n", "unknown selector instance"},
		{"frobnicate(%%)\n", "unknown selector type"},
		{"a = %%\na = %%\n", "redefinition"},
		{"join(\"str\")\n", "must be a selector"},
		{"!import(\"missing.capi\")\n%%\n", "missing.capi"},
	}
	for _, c := range cases {
		_, err := e.RunSource(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("RunSource(%q) err = %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestStringEntryIsError(t *testing.T) {
	e := NewEngine(mpiGraph())
	f, err := spec.Parse("byName(\"x\", %%)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunFile(f, Options{}); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestCoarseInPipeline(t *testing.T) {
	e := NewEngine(mpiGraph())
	// compute's only caller is loop: coarse prunes it unless critical.
	src := `sel = byName("^(loop|compute)$", %%)
coarse(%sel)
`
	res, err := e.RunSource(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.HasName("compute") || !res.Final.HasName("loop") {
		t.Fatalf("final = %v", res.Final.Names())
	}

	src2 := `sel = byName("^(loop|compute)$", %%)
crit = byName("^compute$", %%)
coarse(%sel, %crit)
`
	res2, err := e.RunSource(src2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Final.HasName("compute") {
		t.Fatalf("critical compute pruned: %v", res2.Final.Names())
	}
}
