// Package core is the CaPI engine — the paper's primary contribution. It
// evaluates a user-defined selection pipeline (internal/spec) over a
// whole-program call graph (internal/callgraph) using the selector registry
// (internal/selector), applies the post-processing passes the paper
// introduces — inlining compensation (§V-E) — and emits the resulting
// instrumentation configuration (internal/ic).
package core

import (
	"fmt"
	"time"

	"capi/internal/callgraph"
	"capi/internal/ic"
	"capi/internal/selector"
	"capi/internal/spec"
)

// SymbolOracle answers whether a function symbol is present in the linked
// binary or any of its shared objects. The compiler's Build implements it;
// the inlining-compensation pass uses it to approximate the set of inlined
// functions ("if a function symbol cannot be found, it has been inlined at
// all call sites", §V-E).
type SymbolOracle interface {
	HasSymbol(name string) bool
}

// Options configures a pipeline run.
type Options struct {
	// Symbols enables the inlining-compensation post-pass when non-nil.
	Symbols SymbolOracle
	// Loader resolves !import directives; defaults to the built-in modules.
	Loader spec.ModuleLoader
}

// Result is the outcome of a pipeline run, carrying the Table I statistics.
type Result struct {
	// Pre is the entry selector's output before post-processing
	// (the paper's "#selected pre").
	Pre *callgraph.Set
	// Selected is the selection after inlined functions were removed
	// (the paper's "#selected").
	Selected *callgraph.Set
	// Final is Selected plus the compensation functions — the IC content.
	Final *callgraph.Set
	// RemovedInlined lists functions dropped because their symbol is gone.
	RemovedInlined []string
	// AddedCompensation lists the first non-inlined callers added so the
	// removed functions remain measured (the paper's "#added").
	AddedCompensation []string
	// Named holds every named selector instance's set, for inspection.
	Named map[string]*callgraph.Set
	// SelectionTime is the wall-clock duration of the pipeline evaluation
	// including post-processing (Table I's "Time" column).
	SelectionTime time.Duration
}

// IC materializes the final selection as an instrumentation configuration.
func (r *Result) IC(app, specName string) *ic.Config {
	return ic.New(app, specName, r.Final.Names())
}

// Engine evaluates selection pipelines over one call graph.
type Engine struct {
	graph *callgraph.Graph
	reg   *selector.Registry
}

// NewEngine returns an engine over g using the built-in selector registry.
func NewEngine(g *callgraph.Graph) *Engine {
	return &Engine{graph: g, reg: selector.NewRegistry()}
}

// NewEngineWithRegistry returns an engine using a custom selector registry.
func NewEngineWithRegistry(g *callgraph.Graph, reg *selector.Registry) *Engine {
	return &Engine{graph: g, reg: reg}
}

// Graph returns the call graph the engine operates on.
func (e *Engine) Graph() *callgraph.Graph { return e.graph }

// RunSource parses, expands and evaluates a specification source.
func (e *Engine) RunSource(src string, opts Options) (*Result, error) {
	f, err := spec.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.RunFile(f, opts)
}

// RunFile expands and evaluates a parsed specification.
func (e *Engine) RunFile(f *spec.File, opts Options) (*Result, error) {
	start := time.Now()
	loader := opts.Loader
	if loader == nil {
		loader = spec.BuiltinModules{}
	}
	expanded, err := spec.Expand(f, loader)
	if err != nil {
		return nil, err
	}

	ev := &evaluator{
		ctx: &selector.Context{Graph: e.graph},
		reg: e.reg,
		env: map[string]*callgraph.Set{},
	}
	var last *callgraph.Set
	for _, stmt := range expanded.Stmts {
		switch s := stmt.(type) {
		case *spec.AssignStmt:
			if _, dup := ev.env[s.Name]; dup {
				return nil, fmt.Errorf("spec:%s: redefinition of selector instance %q", s.Pos(), s.Name)
			}
			set, err := ev.evalSet(s.X)
			if err != nil {
				return nil, err
			}
			ev.env[s.Name] = set
			last = set
		case *spec.ExprStmt:
			set, err := ev.evalSet(s.X)
			if err != nil {
				return nil, err
			}
			last = set
		case *spec.ImportStmt:
			return nil, fmt.Errorf("spec:%s: unexpanded import survived expansion", s.Pos())
		}
	}
	if last == nil {
		return nil, fmt.Errorf("spec: empty specification (no entry selector)")
	}

	res := &Result{
		Pre:   last,
		Named: ev.env,
	}
	if opts.Symbols != nil {
		selected, final, removed, added := compensateInlining(e.graph, last, opts.Symbols)
		res.Selected = selected
		res.Final = final
		res.RemovedInlined = removed
		res.AddedCompensation = added
	} else {
		res.Selected = last
		res.Final = last
	}
	res.SelectionTime = time.Since(start)
	return res, nil
}

// evaluator walks selector expressions.
type evaluator struct {
	ctx      *selector.Context
	reg      *selector.Registry
	env      map[string]*callgraph.Set
	universe *callgraph.Set
}

func (ev *evaluator) evalSet(x spec.Expr) (*callgraph.Set, error) {
	v, err := ev.evalValue(x)
	if err != nil {
		return nil, err
	}
	s, ok := v.(*callgraph.Set)
	if !ok {
		return nil, fmt.Errorf("spec:%s: expression is not a selector", x.Pos())
	}
	return s, nil
}

func (ev *evaluator) evalValue(x spec.Expr) (selector.Value, error) {
	switch n := x.(type) {
	case *spec.AllExpr:
		if ev.universe == nil {
			ev.universe = ev.ctx.Graph.UniverseSet()
		}
		return ev.universe, nil
	case *spec.RefExpr:
		s, ok := ev.env[n.Name]
		if !ok {
			return nil, fmt.Errorf("spec:%s: unknown selector instance %%%s", n.Pos(), n.Name)
		}
		return s, nil
	case *spec.StringLit:
		return n.Val, nil
	case *spec.NumberLit:
		return n.Val, nil
	case *spec.CallExpr:
		def := ev.reg.Lookup(n.Fn)
		if def == nil {
			return nil, fmt.Errorf("spec:%s: unknown selector type %q", n.Pos(), n.Fn)
		}
		args := make([]selector.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := ev.evalValue(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out, err := def.Eval(ev.ctx, args)
		if err != nil {
			return nil, fmt.Errorf("spec:%s: %w", n.Pos(), err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("spec:%s: unsupported expression", x.Pos())
	}
}

// compensateInlining implements the paper's §V-E post-processing: selected
// functions whose symbol is absent from the binary and all DSOs are assumed
// to have been inlined at every call site; they are removed from the
// selection, and their first non-inlined callers (found by walking caller
// edges through other symbol-less functions) are added so their execution
// remains covered by the measurement.
func compensateInlining(g *callgraph.Graph, sel *callgraph.Set, sym SymbolOracle) (selected, final *callgraph.Set, removed, added []string) {
	selected = sel.Clone()
	var inlined []*callgraph.Node
	sel.ForEach(func(n *callgraph.Node) bool {
		if !sym.HasSymbol(n.Name) {
			inlined = append(inlined, n)
		}
		return true
	})
	for _, n := range inlined {
		selected.Remove(n)
		removed = append(removed, n.Name)
	}
	final = selected.Clone()
	visited := g.NewSet()
	for _, n := range inlined {
		// BFS up the caller edges, stopping at the first non-inlined
		// caller on each path.
		queue := []*callgraph.Node{n}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, caller := range cur.Callers() {
				if visited.Has(caller) {
					continue
				}
				visited.Add(caller)
				if sym.HasSymbol(caller.Name) {
					if !final.Has(caller) {
						final.Add(caller)
						added = append(added, caller.Name)
					}
					continue
				}
				queue = append(queue, caller)
			}
		}
	}
	return selected, final, removed, added
}
