package talp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"capi/internal/mpi"
	"capi/internal/vtime"
)

func newWorld(t *testing.T, size int) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(size, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRegisterRequiresMPIInit(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if _, err := m.Register(r, "early"); err == nil {
			t.Error("registration before MPI_Init should fail")
		}
		if err := r.Init(); err != nil {
			return err
		}
		if _, err := m.Register(r, "late"); err != nil {
			t.Errorf("registration after MPI_Init failed: %v", err)
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if len(rep.FailedPreInit) != 1 || rep.FailedPreInit[0] != "early" {
		t.Fatalf("failed pre-init = %v", rep.FailedPreInit)
	}
}

func TestRegionAccounting(t *testing.T) {
	w := newWorld(t, 2)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		reg, err := m.Register(r, "solver")
		if err != nil {
			return err
		}
		if err := m.Start(r, reg); err != nil {
			return err
		}
		// Rank 0 computes 10ms, rank 1 computes 2ms, then both barrier:
		// rank 1 waits ~8ms in MPI.
		work := int64(2)
		if r.ID() == 0 {
			work = 10
		}
		r.Clock().Advance(work * vtime.Millisecond)
		if err := r.Barrier(); err != nil {
			return err
		}
		if err := m.Stop(r, reg); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	solver := rep.Region("solver")
	if solver == nil {
		t.Fatalf("solver region missing: %+v", rep.Regions)
	}
	if solver.Visits != 2 {
		t.Fatalf("visits = %d", solver.Visits)
	}
	// Rank 0: useful ≈ 10ms, little MPI. Rank 1: useful ≈ 2ms, MPI ≈ 8ms.
	r0, r1 := solver.PerRank[0], solver.PerRank[1]
	if r0.Useful < 9*vtime.Millisecond || r1.Useful > 4*vtime.Millisecond {
		t.Fatalf("useful: r0=%d r1=%d", r0.Useful, r1.Useful)
	}
	if r1.MPI < 7*vtime.Millisecond {
		t.Fatalf("rank 1 MPI wait = %d, want >= 7ms", r1.MPI)
	}
	// Load balance ≈ avg(10,2)/10 = 0.6.
	if lb := solver.Metrics.LoadBalance; lb < 0.45 || lb > 0.75 {
		t.Fatalf("load balance = %v", lb)
	}
	// Global region exists and covers the solver region.
	global := rep.Region(GlobalRegionName)
	if global == nil {
		t.Fatal("global region missing")
	}
	if global.Elapsed < solver.Elapsed {
		t.Fatal("global region should cover the solver region")
	}
}

func TestNestedAndOverlappingRegions(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		outer, _ := m.Register(r, "outer")
		inner, _ := m.Register(r, "inner")
		if err := m.Start(r, outer); err != nil {
			return err
		}
		r.Clock().Advance(vtime.Millisecond)
		if err := m.Start(r, inner); err != nil { // nested
			return err
		}
		r.Clock().Advance(vtime.Millisecond)
		// Recursive re-entry of outer: depth only.
		if err := m.Start(r, outer); err != nil {
			return err
		}
		r.Clock().Advance(vtime.Millisecond)
		if err := m.Stop(r, outer); err != nil {
			return err
		}
		if err := m.Stop(r, inner); err != nil { // overlap: inner closes after outer's re-entry
			return err
		}
		if err := m.Stop(r, outer); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	outer := rep.Region("outer")
	inner := rep.Region("inner")
	if outer.Visits != 2 || inner.Visits != 1 {
		t.Fatalf("visits outer=%d inner=%d", outer.Visits, inner.Visits)
	}
	// outer elapsed spans all 3ms; inner spans ~2ms.
	if outer.Elapsed < 3*vtime.Millisecond {
		t.Fatalf("outer elapsed = %d", outer.Elapsed)
	}
	if inner.Elapsed < 2*vtime.Millisecond || inner.Elapsed >= outer.Elapsed {
		t.Fatalf("inner elapsed = %d (outer %d)", inner.Elapsed, outer.Elapsed)
	}
}

func TestStopWithoutStartFails(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		reg, _ := m.Register(r, "x")
		if err := m.Stop(r, reg); err == nil {
			t.Error("Stop without Start should fail")
		}
		if err := m.Stop(r, nil); err == nil {
			t.Error("Stop(nil) should fail")
		}
		if err := m.Start(r, nil); err == nil {
			t.Error("Start(nil) should fail")
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDLBAliases(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		// Listing 2 of the paper.
		handle, err := m.MonitoringRegionRegister(r, "foo")
		if err != nil {
			return err
		}
		if err := m.MonitoringRegionStart(r, handle); err != nil {
			return err
		}
		r.Clock().Advance(vtime.Millisecond)
		if err := m.MonitoringRegionStop(r, handle); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Report().Region("foo") == nil {
		t.Fatal("foo region missing")
	}
}

func TestPerOpenRegionMPICost(t *testing.T) {
	// Two identical runs, one with regions open during the MPI call: the
	// open-region run must consume more virtual time.
	run := func(openRegions int) int64 {
		w := newWorld(t, 1)
		m := New(w, Options{})
		var final int64
		err := w.Run(func(r *mpi.Rank) error {
			if err := r.Init(); err != nil {
				return err
			}
			var regs []*Region
			for i := 0; i < openRegions; i++ {
				reg, err := m.Register(r, fmt.Sprintf("r%d", i))
				if err != nil {
					return err
				}
				if err := m.Start(r, reg); err != nil {
					return err
				}
				regs = append(regs, reg)
			}
			for i := 0; i < 100; i++ {
				if err := r.Barrier(); err != nil {
					return err
				}
			}
			for _, reg := range regs {
				if err := m.Stop(r, reg); err != nil {
					return err
				}
			}
			if err := r.Finalize(); err != nil {
				return err
			}
			final = r.Clock().Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return final
	}
	closed := run(0)
	open := run(20)
	// 20 regions x 100 barriers x PerOpenRegionMPI plus start/stop costs.
	minDelta := 20 * 100 * DefaultCostModel().PerOpenRegionMPI
	if open-closed < minDelta {
		t.Fatalf("open-region overhead %d < %d", open-closed, minDelta)
	}
}

func TestReentryBugEmulation(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{EmulateReentryBug: true, BugModulus: 2, BugMinRegions: 3})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		failures := 0
		for i := 0; i < 40; i++ {
			reg, err := m.Register(r, fmt.Sprintf("region%03d", i))
			if err != nil {
				return err
			}
			if err := m.Start(r, reg); err != nil {
				failures++
				continue
			}
			if err := m.Stop(r, reg); err != nil {
				return err
			}
		}
		if failures == 0 {
			t.Error("bug emulation produced no failures")
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if len(rep.FailedEntries) == 0 {
		t.Fatal("failed entries missing from report")
	}
	// Default mode: no failures.
	w2 := newWorld(t, 1)
	m2 := New(w2, Options{})
	err = w2.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		for i := 0; i < 40; i++ {
			reg, _ := m2.Register(r, fmt.Sprintf("region%03d", i))
			if err := m2.Start(r, reg); err != nil {
				return err
			}
			if err := m2.Stop(r, reg); err != nil {
				return err
			}
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Report().FailedEntries) != 0 {
		t.Fatal("default mode must not fail region entries")
	}
}

func TestReportOutputs(t *testing.T) {
	w := newWorld(t, 2)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		reg, _ := m.Register(r, "Amul")
		_ = m.Start(r, reg)
		r.Clock().Advance(vtime.Millisecond)
		_ = m.Stop(r, reg)
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, frag := range []string{"Amul", "Parallel Efficiency", GlobalRegionName} {
		if !strings.Contains(out, frag) {
			t.Fatalf("text report missing %q:\n%s", frag, out)
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "\"parallelEfficiency\"") {
		t.Fatalf("json report:\n%s", js.String())
	}
	if rep.Region("nope") != nil {
		t.Fatal("unknown region lookup should be nil")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		a, _ := m.Register(r, "same")
		b, _ := m.Register(r, "same")
		if a != b {
			t.Error("same-name registration should return the same handle")
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRegisteredRegions() != 2 { // global + same
		t.Fatalf("regions = %d", m.NumRegisteredRegions())
	}
}

func TestOpenCountTracksGlobalRegion(t *testing.T) {
	w := newWorld(t, 1)
	m := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if m.OpenCount(0) != 0 {
			t.Error("regions open before Init")
		}
		if err := r.Init(); err != nil {
			return err
		}
		if m.OpenCount(0) != 1 { // global region
			t.Errorf("open after Init = %d, want 1", m.OpenCount(0))
		}
		if err := r.Finalize(); err != nil {
			return err
		}
		if m.OpenCount(0) != 0 {
			t.Errorf("open after Finalize = %d, want 0", m.OpenCount(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
