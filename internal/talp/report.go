package talp

import (
	"encoding/json"
	"fmt"
	"io"

	"capi/internal/vtime"
)

// WriteText renders the report in the spirit of TALP's end-of-run text
// summary: one block per monitoring region with the POP metrics.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "######### Monitoring Regions Summary (%d ranks) #########\n", r.WorldSize); err != nil {
		return err
	}
	for _, reg := range r.Regions {
		if _, err := fmt.Fprintf(w, "### Region: %s\n", reg.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Elapsed Time:        %s\n", vtime.FormatSeconds(reg.Elapsed)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Visits:              %d\n", reg.Visits); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Parallel Efficiency: %.3f\n", reg.Metrics.ParallelEfficiency); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "      Communication Eff: %.3f\n", reg.Metrics.CommunicationEfficiency); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "      Load Balance:      %.3f\n", reg.Metrics.LoadBalance); err != nil {
			return err
		}
	}
	if len(r.FailedPreInit) > 0 {
		if _, err := fmt.Fprintf(w, "# %d region(s) could not be registered (MPI not initialized)\n", len(r.FailedPreInit)); err != nil {
			return err
		}
	}
	if len(r.FailedEntries) > 0 {
		if _, err := fmt.Fprintf(w, "# %d region(s) failed on re-entry\n", len(r.FailedEntries)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as JSON (the runtime-queryable form the
// paper mentions: schedulers/resource managers can consume the metrics).
func (r *Report) WriteJSON(w io.Writer) error {
	type regionJSON struct {
		Name        string  `json:"name"`
		Visits      int64   `json:"visits"`
		ElapsedNs   int64   `json:"elapsedNs"`
		ParallelEff float64 `json:"parallelEfficiency"`
		CommEff     float64 `json:"communicationEfficiency"`
		LoadBalance float64 `json:"loadBalance"`
		AvgUsefulNs int64   `json:"avgUsefulNs"`
		MaxUsefulNs int64   `json:"maxUsefulNs"`
	}
	out := struct {
		WorldSize     int          `json:"worldSize"`
		Regions       []regionJSON `json:"regions"`
		FailedPreInit []string     `json:"failedPreInit,omitempty"`
		FailedEntries []string     `json:"failedEntries,omitempty"`
	}{WorldSize: r.WorldSize, FailedPreInit: r.FailedPreInit, FailedEntries: r.FailedEntries}
	for _, reg := range r.Regions {
		out.Regions = append(out.Regions, regionJSON{
			Name:        reg.Name,
			Visits:      reg.Visits,
			ElapsedNs:   reg.Elapsed,
			ParallelEff: reg.Metrics.ParallelEfficiency,
			CommEff:     reg.Metrics.CommunicationEfficiency,
			LoadBalance: reg.Metrics.LoadBalance,
			AvgUsefulNs: reg.Metrics.AvgUseful,
			MaxUsefulNs: reg.Metrics.MaxUseful,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Region returns the report entry for the named region, or nil.
func (r *Report) Region(name string) *RegionReport {
	for i := range r.Regions {
		if r.Regions[i].Name == name {
			return &r.Regions[i]
		}
	}
	return nil
}
