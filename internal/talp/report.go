package talp

import (
	"encoding/json"
	"fmt"
	"io"

	"capi/internal/vtime"
)

// WriteText renders the report in the spirit of TALP's end-of-run text
// summary: one block per monitoring region with the POP metrics.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "######### Monitoring Regions Summary (%d ranks) #########\n", r.WorldSize); err != nil {
		return err
	}
	for _, reg := range r.Regions {
		if _, err := fmt.Fprintf(w, "### Region: %s\n", reg.Name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Elapsed Time:        %s\n", vtime.FormatSeconds(reg.Elapsed)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Visits:              %d\n", reg.Visits); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "    Parallel Efficiency: %.3f\n", reg.Metrics.ParallelEfficiency); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "      Communication Eff: %.3f\n", reg.Metrics.CommunicationEfficiency); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "      Load Balance:      %.3f\n", reg.Metrics.LoadBalance); err != nil {
			return err
		}
	}
	if len(r.FailedPreInit) > 0 {
		if _, err := fmt.Fprintf(w, "# %d region(s) could not be registered (MPI not initialized)\n", len(r.FailedPreInit)); err != nil {
			return err
		}
	}
	if len(r.FailedEntries) > 0 {
		if _, err := fmt.Fprintf(w, "# %d region(s) failed on re-entry\n", len(r.FailedEntries)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the report as JSON (the runtime-queryable form the
// paper mentions: schedulers/resource managers can consume the metrics).
func (r *Report) WriteJSON(w io.Writer) error {
	// rankJSON is one rank's raw time breakdown. It rides in the JSON form
	// so a federated aggregator can re-derive POP metrics over the union of
	// many processes' ranks (pop.ComputeMerged) — the derived efficiencies
	// alone cannot be merged, only the underlying times can.
	type rankJSON struct {
		UsefulNs int64 `json:"usefulNs"`
		MPINs    int64 `json:"mpiNs"`
	}
	type regionJSON struct {
		Name        string     `json:"name"`
		Visits      int64      `json:"visits"`
		ElapsedNs   int64      `json:"elapsedNs"`
		ParallelEff float64    `json:"parallelEfficiency"`
		CommEff     float64    `json:"communicationEfficiency"`
		LoadBalance float64    `json:"loadBalance"`
		AvgUsefulNs int64      `json:"avgUsefulNs"`
		MaxUsefulNs int64      `json:"maxUsefulNs"`
		PerRank     []rankJSON `json:"perRank"`
	}
	out := struct {
		WorldSize     int          `json:"worldSize"`
		Regions       []regionJSON `json:"regions"`
		FailedPreInit []string     `json:"failedPreInit,omitempty"`
		FailedEntries []string     `json:"failedEntries,omitempty"`
	}{WorldSize: r.WorldSize, FailedPreInit: r.FailedPreInit, FailedEntries: r.FailedEntries}
	for _, reg := range r.Regions {
		rj := regionJSON{
			Name:        reg.Name,
			Visits:      reg.Visits,
			ElapsedNs:   reg.Elapsed,
			ParallelEff: reg.Metrics.ParallelEfficiency,
			CommEff:     reg.Metrics.CommunicationEfficiency,
			LoadBalance: reg.Metrics.LoadBalance,
			AvgUsefulNs: reg.Metrics.AvgUseful,
			MaxUsefulNs: reg.Metrics.MaxUseful,
			PerRank:     make([]rankJSON, 0, len(reg.PerRank)),
		}
		for _, rt := range reg.PerRank {
			rj.PerRank = append(rj.PerRank, rankJSON{UsefulNs: rt.Useful, MPINs: rt.MPI})
		}
		out.Regions = append(out.Regions, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Region returns the report entry for the named region, or nil.
func (r *Report) Region(name string) *RegionReport {
	for i := range r.Regions {
		if r.Regions[i].Name == name {
			return &r.Regions[i]
		}
	}
	return nil
}
