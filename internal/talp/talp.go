// Package talp reimplements the TALP module of the DLB library as used by
// the paper (§III-B, §V-C2): user-registerable monitoring regions
// (register/start/stop, nesting and overlap allowed), PMPI-driven
// attribution of useful vs. MPI time per rank and region, POP
// parallel-efficiency metrics per region, and a text summary at the end of
// the execution.
//
// Two behaviours observed in the paper's evaluation are modelled
// explicitly:
//
//   - regions cannot be registered before MPI_Init; DynCaPI regions entered
//     earlier (main, early init functions) fail and stay unrecorded
//     (§VI-B(b): 15 of 16,956 regions);
//   - an opt-in bug-compat mode reproduces the unexplained upstream bug
//     where entering some previously registered regions failed when very
//     many regions were registered (24 unique failures in the paper). The
//     default behaviour is correct.
package talp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"capi/internal/mpi"
	"capi/internal/pop"
	"capi/internal/vtime"
)

// CostModel holds TALP's virtual-time costs.
type CostModel struct {
	// RegisterCost is charged once per region registration.
	RegisterCost int64
	// StartCost/StopCost are charged per region entry/exit — a region-map
	// lookup plus timestamping, cheaper than Score-P's call-path upkeep.
	StartCost int64
	StopCost  int64
	// PerOpenRegionMPI is charged at every MPI call for each region open
	// on the rank: TALP updates every open monitor's in-flight
	// accumulators inside the PMPI wrapper. This makes call-path-shaped
	// ICs (the paper's `mpi` spec) expensive under TALP — whole call
	// chains to MPI operations are open at every MPI call.
	PerOpenRegionMPI int64
	// InitBase is the DLB/TALP start-up cost.
	InitBase int64
}

// DefaultCostModel returns costs calibrated for Table II's shape (see
// DESIGN.md): TALP's per-event pair is cheaper than Score-P's, but its PMPI
// wrapper pays per *open* region on every MPI call — which is what makes
// the call-path-shaped `mpi` IC more expensive under TALP than Score-P.
// Costs are inflated by the simulator's call-compression factor (one
// simulated call stands in for roughly a thousand real invocations, see
// workload.scaleWork), preserving Table II's ratios.
func DefaultCostModel() CostModel {
	return CostModel{
		RegisterCost:     2 * vtime.Microsecond,
		StartCost:        900 * vtime.Microsecond,
		StopCost:         900 * vtime.Microsecond,
		PerOpenRegionMPI: 80 * vtime.Microsecond,
		InitBase:         550 * vtime.Millisecond,
	}
}

// Options configures a monitor.
type Options struct {
	Costs CostModel
	// EmulateReentryBug enables the bug-compat mode described above.
	EmulateReentryBug bool
	// BugModulus controls how many regions the emulated bug hits:
	// a region fails on re-entry iff fnv32(name) % BugModulus == 0.
	// Defaults to 707 (≈24 failures out of 16,956 regions, as observed).
	BugModulus uint32
	// BugMinRegions: the bug only manifests when at least this many
	// regions are registered (the paper correlates it with the very high
	// region count). Defaults to 1000.
	BugMinRegions int
}

// Region is a registered monitoring region handle (dlb_monitor_t).
type Region struct {
	id   int
	name string
}

// Name returns the region's registered name.
func (r *Region) Name() string { return r.name }

// GlobalRegionName is the implicit whole-execution region DLB maintains.
const GlobalRegionName = "MPI Execution"

type openInfo struct {
	start   int64
	mpiSnap int64
	depth   int
}

type regionAccum struct {
	visits  int64
	useful  int64
	mpiTime int64
	elapsed int64
}

type rankState struct {
	// mu guards all fields. The owning rank's goroutine is the only writer
	// on the measurement path, so the lock is uncontended there; it exists
	// so CloseOpen (synthetic stops delivered from a concurrent live
	// re-selection) and cross-rank readers are race-free.
	mu sync.Mutex

	open      map[int]*openInfo
	acc       map[int]*regionAccum
	openCount int

	// lastNs/lastMPI mirror the rank clock and MPI-time total as of the
	// rank's most recent TALP activity — the timestamps synthetic stops
	// close dangling regions at (another goroutine cannot read the rank's
	// clock directly).
	lastNs  int64
	lastMPI int64

	// calibration / diagnostics counters
	startStops    int64 // Start + Stop invocations
	regionTouches int64 // Σ over MPI calls of open regions touched
	mpiCalls      int64
}

// Monitor is one TALP instance attached to an MPI world.
type Monitor struct {
	opts  Options
	world *mpi.World

	mu      sync.Mutex
	regions []*Region
	byName  map[string]*Region

	perRank []*rankState

	failedPreInit map[string]struct{}
	failedEntries map[string]struct{}

	global *Region
}

// New creates a monitor attached to the world: PMPI hooks are installed on
// every rank, and the implicit global region is started right after
// MPI_Init and stopped right before MPI_Finalize.
func New(w *mpi.World, opts Options) *Monitor {
	if opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCostModel()
	}
	if opts.BugModulus == 0 {
		opts.BugModulus = 707
	}
	if opts.BugMinRegions == 0 {
		opts.BugMinRegions = 1000
	}
	m := &Monitor{
		opts:          opts,
		world:         w,
		byName:        map[string]*Region{},
		failedPreInit: map[string]struct{}{},
		failedEntries: map[string]struct{}{},
	}
	for i := 0; i < w.Size(); i++ {
		m.perRank = append(m.perRank, &rankState{
			open: map[int]*openInfo{},
			acc:  map[int]*regionAccum{},
		})
	}
	// The global region is registered internally by DLB itself, before any
	// user code runs — it bypasses the MPI_Init gate.
	m.global = m.registerLocked(GlobalRegionName)
	for _, r := range w.Ranks() {
		m.attach(r)
	}
	return m
}

// Costs returns the active cost model.
func (m *Monitor) Costs() CostModel { return m.opts.Costs }

// InitCost returns the virtual start-up cost DynCaPI charges.
func (m *Monitor) InitCost() int64 { return m.opts.Costs.InitBase }

func (m *Monitor) attach(r *mpi.Rank) {
	r.AddHook(mpi.Hook{
		Pre: func(rk *mpi.Rank, op mpi.Op, bytes int) {
			rs := m.perRank[rk.ID()]
			rs.mu.Lock()
			rs.mpiCalls++
			open := rs.openCount
			// TALP touches every open monitor inside the PMPI wrapper.
			if open > 0 {
				rs.regionTouches += int64(open)
			}
			rs.mu.Unlock()
			if open > 0 {
				rk.Clock().Advance(int64(open) * m.opts.Costs.PerOpenRegionMPI)
			}
			rs.mu.Lock()
			rs.lastNs = rk.Clock().Now()
			rs.lastMPI = rk.MPITimeTotal()
			rs.mu.Unlock()
			if op == mpi.OpFinalize {
				m.stopOn(rk, m.global)
			}
		},
		Post: func(rk *mpi.Rank, op mpi.Op, bytes int, elapsed int64) {
			if op == mpi.OpInit {
				m.startOn(rk, m.global)
			}
		},
	})
}

func (m *Monitor) registerLocked(name string) *Region {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg, ok := m.byName[name]; ok {
		return reg
	}
	reg := &Region{id: len(m.regions), name: name}
	m.regions = append(m.regions, reg)
	m.byName[name] = reg
	return reg
}

// Register creates (or finds) a monitoring region. It fails when MPI is not
// initialized on the calling rank; the failure is recorded for the report
// (the paper's pre-MPI_Init cases).
func (m *Monitor) Register(r *mpi.Rank, name string) (*Region, error) {
	if !r.Initialized() || r.Finalized() {
		m.mu.Lock()
		m.failedPreInit[name] = struct{}{}
		m.mu.Unlock()
		return nil, fmt.Errorf("talp: cannot register region %q: MPI not initialized on rank %d", name, r.ID())
	}
	r.Clock().Advance(m.opts.Costs.RegisterCost)
	return m.registerLocked(name), nil
}

// NumRegisteredRegions returns the number of registered regions (the
// implicit global region included).
func (m *Monitor) NumRegisteredRegions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.regions)
}

// bugHits reports whether the emulated re-entry bug fires for this region.
func (m *Monitor) bugHits(name string) bool {
	if !m.opts.EmulateReentryBug {
		return false
	}
	m.mu.Lock()
	enough := len(m.regions) >= m.opts.BugMinRegions
	m.mu.Unlock()
	if !enough {
		return false
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32()%m.opts.BugModulus == 0
}

// Stats carries the per-rank activity counters (calibration/diagnostics).
type Stats struct {
	StartStops    int64 // Start + Stop invocations
	MPICalls      int64 // intercepted MPI calls
	RegionTouches int64 // Σ over MPI calls of open regions touched
}

// RankStats returns the activity counters of one rank.
func (m *Monitor) RankStats(rank int) Stats {
	rs := m.perRank[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return Stats{StartStops: rs.startStops, MPICalls: rs.mpiCalls, RegionTouches: rs.regionTouches}
}

// Start enters a monitoring region on the calling rank. Nested and
// overlapping starts are allowed; re-entering an already open region only
// increases its nesting depth.
func (m *Monitor) Start(r *mpi.Rank, reg *Region) error {
	if reg == nil {
		return fmt.Errorf("talp: Start with nil region")
	}
	rs := m.perRank[r.ID()]
	rs.mu.Lock()
	rs.startStops++
	rs.mu.Unlock()
	r.Clock().Advance(m.opts.Costs.StartCost)
	if reg != m.global && m.bugHits(reg.name) {
		m.mu.Lock()
		m.failedEntries[reg.name] = struct{}{}
		m.mu.Unlock()
		return fmt.Errorf("talp: entering region %q failed (known re-entry issue)", reg.name)
	}
	m.startOn(r, reg)
	return nil
}

func (m *Monitor) startOn(r *mpi.Rank, reg *Region) {
	rs := m.perRank[r.ID()]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	oi := rs.open[reg.id]
	if oi == nil {
		oi = &openInfo{}
		rs.open[reg.id] = oi
	}
	acc := rs.acc[reg.id]
	if acc == nil {
		acc = &regionAccum{}
		rs.acc[reg.id] = acc
	}
	acc.visits++
	if oi.depth == 0 {
		oi.start = r.Clock().Now()
		oi.mpiSnap = r.MPITimeTotal()
		rs.openCount++
	}
	oi.depth++
	rs.lastNs = r.Clock().Now()
	rs.lastMPI = r.MPITimeTotal()
}

// Stop leaves a monitoring region. Stopping a region that is not open is an
// error.
func (m *Monitor) Stop(r *mpi.Rank, reg *Region) error {
	if reg == nil {
		return fmt.Errorf("talp: Stop with nil region")
	}
	rs := m.perRank[r.ID()]
	rs.mu.Lock()
	rs.startStops++
	rs.mu.Unlock()
	r.Clock().Advance(m.opts.Costs.StopCost)
	if !m.stopOn(r, reg) {
		return fmt.Errorf("talp: Stop of region %q which is not open on rank %d", reg.name, r.ID())
	}
	return nil
}

// stopOn closes one nesting level of the region on the rank; it reports
// whether the region was open.
func (m *Monitor) stopOn(r *mpi.Rank, reg *Region) bool {
	rs := m.perRank[r.ID()]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	oi := rs.open[reg.id]
	if oi == nil || oi.depth == 0 {
		return false
	}
	rs.lastNs = r.Clock().Now()
	rs.lastMPI = r.MPITimeTotal()
	oi.depth--
	if oi.depth > 0 {
		return true
	}
	rs.openCount--
	now := r.Clock().Now()
	elapsed := now - oi.start
	mpiDuring := r.MPITimeTotal() - oi.mpiSnap
	if mpiDuring > elapsed {
		mpiDuring = elapsed
	}
	acc := rs.acc[reg.id]
	acc.elapsed += elapsed
	acc.mpiTime += mpiDuring
	acc.useful += elapsed - mpiDuring
	return true
}

// CloseOpen balances the dangling starts of a region on every rank with
// synthetic stops: the full nesting depth is closed at the rank's last
// observed TALP activity timestamp, the elapsed/MPI split is accumulated
// exactly as a real Stop would, and the open count is corrected. It returns
// the number of dangling starts balanced.
//
// It is safe to call while other ranks measure (per-rank locking); the
// caller must guarantee the region produces no further events — DynCaPI
// calls it under the reconfigure lock after a function is deselected.
func (m *Monitor) CloseOpen(reg *Region) int {
	if reg == nil {
		return 0
	}
	closed := 0
	for _, rs := range m.perRank {
		rs.mu.Lock()
		oi := rs.open[reg.id]
		if oi != nil && oi.depth > 0 {
			closed += oi.depth
			elapsed := rs.lastNs - oi.start
			if elapsed < 0 {
				elapsed = 0
			}
			mpiDuring := rs.lastMPI - oi.mpiSnap
			if mpiDuring > elapsed {
				mpiDuring = elapsed
			}
			if mpiDuring < 0 {
				mpiDuring = 0
			}
			acc := rs.acc[reg.id]
			acc.elapsed += elapsed
			acc.mpiTime += mpiDuring
			acc.useful += elapsed - mpiDuring
			oi.depth = 0
			rs.openCount--
		}
		rs.mu.Unlock()
	}
	return closed
}

// OpenCount returns the number of regions currently open on a rank (used
// by tests and the overhead analysis).
func (m *Monitor) OpenCount(rank int) int {
	rs := m.perRank[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.openCount
}

// Listing-2-compatible aliases (DLB API surface).

// MonitoringRegionRegister mirrors DLB_MonitoringRegionRegister.
func (m *Monitor) MonitoringRegionRegister(r *mpi.Rank, name string) (*Region, error) {
	return m.Register(r, name)
}

// MonitoringRegionStart mirrors DLB_MonitoringRegionStart.
func (m *Monitor) MonitoringRegionStart(r *mpi.Rank, reg *Region) error {
	return m.Start(r, reg)
}

// MonitoringRegionStop mirrors DLB_MonitoringRegionStop.
func (m *Monitor) MonitoringRegionStop(r *mpi.Rank, reg *Region) error {
	return m.Stop(r, reg)
}

// RegionReport is the per-region summary.
type RegionReport struct {
	Name    string
	Visits  int64 // summed over ranks
	Elapsed int64 // max over ranks
	PerRank []pop.RankTimes
	Metrics pop.Metrics
}

// Report is the end-of-execution summary.
type Report struct {
	WorldSize     int
	Regions       []RegionReport
	FailedPreInit []string // unique region names that failed registration
	FailedEntries []string // unique region names hit by the re-entry bug
}

// Report aggregates all ranks. Call it after the world's Run returned.
func (m *Monitor) Report() *Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := &Report{WorldSize: m.world.Size()}
	for _, reg := range m.regions {
		rr := RegionReport{Name: reg.name, PerRank: make([]pop.RankTimes, m.world.Size())}
		seen := false
		for rank, rs := range m.perRank {
			rs.mu.Lock()
			acc := rs.acc[reg.id]
			if acc == nil {
				rs.mu.Unlock()
				continue
			}
			seen = true
			rr.Visits += acc.visits
			if acc.elapsed > rr.Elapsed {
				rr.Elapsed = acc.elapsed
			}
			rr.PerRank[rank] = pop.RankTimes{Useful: acc.useful, MPI: acc.mpiTime}
			rs.mu.Unlock()
		}
		if !seen {
			continue
		}
		rr.Metrics = pop.Compute(rr.PerRank)
		rep.Regions = append(rep.Regions, rr)
	}
	sort.Slice(rep.Regions, func(i, j int) bool {
		if rep.Regions[i].Elapsed != rep.Regions[j].Elapsed {
			return rep.Regions[i].Elapsed > rep.Regions[j].Elapsed
		}
		return rep.Regions[i].Name < rep.Regions[j].Name
	})
	for name := range m.failedPreInit {
		rep.FailedPreInit = append(rep.FailedPreInit, name)
	}
	sort.Strings(rep.FailedPreInit)
	for name := range m.failedEntries {
		rep.FailedEntries = append(rep.FailedEntries, name)
	}
	sort.Strings(rep.FailedEntries)
	return rep
}
