package metacg

import (
	"testing"

	"capi/internal/callgraph"
	"capi/internal/prog"
)

// sample builds a program exercising direct, virtual, pointer and MPI calls
// across two translation units.
func sample(t *testing.T) *prog.Program {
	t.Helper()
	p := prog.New("app", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)
	p.MustAddFunc(&prog.Function{Name: "MPI_Allreduce", Unit: "libmpi.so", SystemHeader: true})

	p.MustAddFunc(&prog.Function{
		Name: "main", Unit: "app.exe", TU: "main.cc", Statements: 12,
		Ops: []prog.Op{
			prog.Call("helper", 1),
			prog.VCall("Base::solve", 1),
			prog.PtrCall("factory", 1),
			prog.PtrCall("hook", 1),
			prog.MPICall("MPI_Allreduce", 8),
		},
	})
	p.MustAddFunc(&prog.Function{
		Name: "helper", Unit: "app.exe", TU: "util.cc", Statements: 4, Inline: true,
	})
	p.MustAddFunc(&prog.Function{
		Name: "A::solve", Unit: "app.exe", TU: "a.cc", Virtual: true, Statements: 20,
	})
	p.MustAddFunc(&prog.Function{
		Name: "B::solve", Unit: "app.exe", TU: "b.cc", Virtual: true, Statements: 25,
	})
	p.RegisterVirtual("Base::solve", "A::solve")
	p.RegisterVirtual("Base::solve", "B::solve")

	p.MustAddFunc(&prog.Function{Name: "makeA", Unit: "app.exe", TU: "a.cc"})
	p.MustAddFunc(&prog.Function{Name: "makeB", Unit: "app.exe", TU: "b.cc"})
	p.RegisterPointerTarget("factory", "makeA", true) // statically resolvable slot
	p.RegisterPointerTarget("hook", "makeB", false)   // needs profile validation

	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildLocalTU(t *testing.T) {
	p := sample(t)
	g := BuildLocalTU(p, "main.cc")
	if g.Main != "main" {
		t.Fatalf("local graph Main = %q", g.Main)
	}
	if !g.HasEdge("main", "helper") {
		t.Fatal("direct call edge missing")
	}
	if !g.HasEdge("main", "Base::solve") {
		t.Fatal("virtual base edge missing at TU scope")
	}
	if !g.HasEdge("main", "MPI_Allreduce") {
		t.Fatal("MPI edge missing")
	}
	// helper is a stub here: node present, empty metadata.
	h := g.Node("helper")
	if h == nil || h.Meta.Statements != 0 {
		t.Fatal("callee should be a stub in the local graph")
	}
	// Pointer callsites are unresolved at TU scope.
	if g.Node("makeA") != nil {
		t.Fatal("pointer targets must not appear in local graphs")
	}
}

func TestBuildWholeProgram(t *testing.T) {
	p := sample(t)
	g := BuildWholeProgram(p, Options{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Main != "main" {
		t.Fatalf("Main = %q", g.Main)
	}
	// Stub resolved by merge: helper now carries its definition metadata.
	if got := g.Node("helper").Meta.Statements; got != 4 {
		t.Fatalf("helper statements = %d, want 4", got)
	}
	if !g.Node("helper").Meta.Inline {
		t.Fatal("helper inline flag lost")
	}
	// Virtual over-approximation: edges to both implementations.
	if !g.HasEdge("main", "A::solve") || !g.HasEdge("main", "B::solve") {
		t.Fatal("virtual over-approximation edges missing")
	}
	// Static pointer resolution: only the statically resolvable target.
	if !g.HasEdge("main", "makeA") {
		t.Fatal("static pointer target edge missing")
	}
	if g.HasEdge("main", "makeB") {
		t.Fatal("non-static pointer target must not be resolved statically")
	}
	// All definitions present as nodes.
	for _, name := range p.Functions() {
		if g.Node(name) == nil {
			t.Fatalf("definition %s missing from whole-program graph", name)
		}
	}
}

func TestBuildWholeProgramSkipPointers(t *testing.T) {
	p := sample(t)
	g := BuildWholeProgram(p, Options{SkipPointerResolution: true})
	if g.HasEdge("main", "makeA") {
		t.Fatal("pointer resolution should be disabled")
	}
}

func TestValidateWithProfile(t *testing.T) {
	p := sample(t)
	g := BuildWholeProgram(p, Options{})
	edges := []CallEdge{
		{Caller: "main", Callee: "makeB"},  // missing: should be added
		{Caller: "main", Callee: "helper"}, // already present
		{Caller: "", Callee: "x"},          // ignored
	}
	added := ValidateWithProfile(g, edges)
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	if !g.HasEdge("main", "makeB") {
		t.Fatal("profile edge not inserted")
	}
	// Idempotent.
	if again := ValidateWithProfile(g, edges); again != 0 {
		t.Fatalf("second run added %d edges", again)
	}
}

func TestMetadataTranslation(t *testing.T) {
	p := prog.New("m", "f")
	p.MustAddUnit("u", prog.Executable)
	p.MustAddFunc(&prog.Function{
		Name: "f", Unit: "u", TU: "f.cc",
		Statements: 1, LOC: 2, Flops: 3, LoopDepth: 4, Cyclomatic: 5,
		Inline: true, SystemHeader: true, Virtual: true,
	})
	g := BuildWholeProgram(p, Options{})
	want := callgraph.Meta{
		Statements: 1, LOC: 2, Flops: 3, LoopDepth: 4, Cyclomatic: 5,
		Inline: true, SystemHeader: true, Virtual: true, Unit: "u", TU: "f.cc",
	}
	if got := g.Node("f").Meta; got != want {
		t.Fatalf("meta = %+v, want %+v", got, want)
	}
}
