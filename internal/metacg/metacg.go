// Package metacg constructs whole-program call graphs from the synthetic
// program model, mirroring the MetaCG workflow the paper builds on
// (Fig. 2, steps 3–4):
//
//  1. a local call graph is constructed per translation unit,
//  2. the local graphs are merged into a whole-program graph,
//  3. virtual calls are over-approximated by inserting edges to all known
//     inheriting definitions,
//  4. function-pointer calls are resolved statically where possible; the
//     remainder can be filled in from a measured profile with
//     ValidateWithProfile (the paper's Score-P-based validation utility).
package metacg

import (
	"capi/internal/callgraph"
	"capi/internal/prog"
)

// Options controls whole-program graph construction.
type Options struct {
	// SkipPointerResolution disables static resolution of function-pointer
	// callsites, leaving them for profile-based validation.
	SkipPointerResolution bool
}

// metaOf translates the program-model metadata into call-graph annotations.
func metaOf(f *prog.Function) callgraph.Meta {
	return callgraph.Meta{
		Statements:   f.Statements,
		LOC:          f.LOC,
		Flops:        f.Flops,
		LoopDepth:    f.LoopDepth,
		Cyclomatic:   f.Cyclomatic,
		Inline:       f.Inline,
		SystemHeader: f.SystemHeader,
		Virtual:      f.Virtual,
		Unit:         f.Unit,
		TU:           f.TU,
	}
}

// BuildLocalTU constructs the translation-unit-local call graph: definition
// nodes for the functions defined in tu, declaration stubs and edges for
// everything they reference. Virtual and pointer callsites produce an edge
// to the base method / slot placeholder only; whole-program expansion
// happens during the merge.
func BuildLocalTU(p *prog.Program, tu string) *callgraph.Graph {
	g := callgraph.New(p.Name + ":" + tu)
	for _, name := range p.FunctionsInTU(tu) {
		f := p.Func(name)
		n := g.AddNode(name, metaOf(f))
		n.Display = f.Display()
		if name == p.Main {
			g.Main = name
		}
		for _, op := range f.Ops {
			switch op.Kind {
			case prog.OpCall:
				if op.ViaPointer {
					continue // unresolved at TU scope
				}
				g.AddEdge(name, op.Callee) // virtual: edge to base method
			case prog.OpMPI:
				g.AddEdge(name, op.MPI)
			}
		}
	}
	return g
}

// BuildWholeProgram constructs the whole-program call graph by merging all
// translation-unit-local graphs and applying virtual-call over-approximation
// and static pointer resolution.
func BuildWholeProgram(p *prog.Program, opts Options) *callgraph.Graph {
	g := callgraph.New(p.Name)
	g.Main = p.Main
	for _, tu := range p.TranslationUnits() {
		g.Merge(BuildLocalTU(p, tu))
	}
	// Ensure every definition has its metadata even if only seen as a stub
	// during merging order.
	for _, name := range p.Functions() {
		f := p.Func(name)
		if n := g.Node(name); n != nil {
			if n.Meta == (callgraph.Meta{}) {
				n.Meta = metaOf(f)
			}
			n.Display = f.Display()
		} else {
			n := g.AddNode(name, metaOf(f))
			n.Display = f.Display()
		}
	}
	// Virtual-call over-approximation: for every virtual callsite, insert
	// edges to all known inheriting definitions.
	for _, name := range p.Functions() {
		for _, op := range p.Func(name).Ops {
			if op.Kind != prog.OpCall || !op.Virtual {
				continue
			}
			for _, impl := range p.VirtualImpls[op.Callee] {
				g.AddEdge(name, impl)
			}
		}
	}
	// Static function-pointer resolution.
	if !opts.SkipPointerResolution {
		for _, name := range p.Functions() {
			for _, op := range p.Func(name).Ops {
				if op.Kind != prog.OpCall || !op.ViaPointer {
					continue
				}
				if !p.StaticPointerSlots[op.Callee] {
					continue
				}
				for _, tgt := range p.PointerTargets[op.Callee] {
					g.AddEdge(name, tgt)
				}
			}
		}
	}
	return g
}

// CallEdge is one observed caller→callee pair from a measured profile.
type CallEdge struct {
	Caller string
	Callee string
}

// ValidateWithProfile inserts edges observed at run time but missing from
// the static graph (unresolved function pointers). It returns the number of
// edges added. Edges whose endpoints are unknown functions are added with
// stub nodes, mirroring MetaCG's behaviour of trusting the profile.
func ValidateWithProfile(g *callgraph.Graph, edges []CallEdge) int {
	added := 0
	for _, e := range edges {
		if e.Caller == "" || e.Callee == "" {
			continue
		}
		if !g.HasEdge(e.Caller, e.Callee) {
			g.AddEdge(e.Caller, e.Callee)
			added++
		}
	}
	return added
}
