// Package benchcmp compares two capi-bench -json documents and reports
// performance regressions — the CI gate that keeps the dispatch hot path
// and the coalesced batch-patching fast. A checked-in baseline
// (BENCH_baseline.json at the repository root) anchors the trajectory; the
// gate fails when any watched statistic of a fresh run exceeds the baseline
// by more than a tolerance factor.
package benchcmp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Schema is the accepted document schema tag (written by capi-bench -json).
const Schema = "capi-bench/v1"

// SampledVsNoneLimit is the hard cap on sampled dispatch: a "sampled:X@N"
// entry with N >= SampledCapMinStride must keep its ns/event within this
// factor of the *same run's* "none" baseline (machine speed cancels out).
// It is independent of the -tol flag: at 1-in-64 and thinner, sampling
// exists to make the hot path nearly free, so the cap does not loosen on
// noisy runners. Denser rates (a user's `capi-bench -sample 8`) legimately
// pay a per-delivery share of the backend cost and are gated only by the
// regular tolerance gates.
const (
	SampledVsNoneLimit  = 1.3
	SampledCapMinStride = 64
)

// AsyncVsInlineLimit is the hard cap on asynchronous dispatch: an "async:X"
// entry must keep its ns/event at or below this factor of the *same run's*
// inline X entry (machine speed cancels out). The async pipeline exists to
// lift the backend off the hot path — if appending a compact record to the
// rank's ring does not beat delivering inline by a wide margin, the extra
// machinery (consumer pool, drain barriers, back-pressure accounting) is
// not paying for itself. Like the sampled cap, it never loosens with -tol.
const AsyncVsInlineLimit = 0.6

// HTTPVsNoneLimit is the hard cap on the serving path: an "http:X" entry
// (one webservice request through capi/middleware, cost normalized per
// dispatched event) must keep its ns/event within this factor of the
// *same run's* "none" dispatch baseline (machine speed cancels out). The
// request path adds a compiled-script walk, a worker-pool checkout and
// the endpoint latency accounting per request; with hundreds of events
// per request that overhead must amortize — measured ~2.1x of the bare
// dispatch pair, capped with headroom for noisy runners. Like the other
// same-run caps, it never loosens with -tol.
const HTTPVsNoneLimit = 3.0

// Dispatch is one backend's dispatch micro-benchmark result.
type Dispatch struct {
	Backend    string  `json:"backend"`
	NsPerPair  float64 `json:"ns_per_pair"`
	NsPerEvent float64 `json:"ns_per_event"`
	Iters      int     `json:"iters"`
}

// BatchPatch summarizes one coalesced PatchBatch patch+unpatch cycle.
type BatchPatch struct {
	Funcs          int64   `json:"funcs"`
	PatchedSleds   int64   `json:"patched_sleds"`
	UnpatchedSleds int64   `json:"unpatched_sleds"`
	BatchWindows   int64   `json:"mprotect_windows"`
	MprotectCalls  int64   `json:"mprotect_calls"`
	NsPerFunc      float64 `json:"ns_per_func"`
}

// Doc is one capi-bench -json document.
type Doc struct {
	Schema     string     `json:"schema"`
	App        string     `json:"app"`
	Scale      float64    `json:"scale"`
	Dispatch   []Dispatch `json:"dispatch"`
	BatchPatch BatchPatch `json:"batch_patch"`
}

// Read decodes and validates one document.
func Read(r io.Reader) (*Doc, error) {
	var d Doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("benchcmp: decoding: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("benchcmp: schema %q, want %q", d.Schema, Schema)
	}
	if len(d.Dispatch) == 0 {
		return nil, fmt.Errorf("benchcmp: document has no dispatch results")
	}
	return &d, nil
}

// ReadFile reads a document from a file, or from stdin when path is "-".
func ReadFile(path string) (*Doc, error) {
	if path == "-" {
		return Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Result is the verdict on one watched statistic.
type Result struct {
	// Metric identifies the statistic (e.g. "dispatch/talp ns_per_event").
	Metric string
	// Baseline and Current are the two values; Ratio = Current/Baseline.
	Baseline float64
	Current  float64
	Ratio    float64
	// Limit is the tolerated ratio; Regressed = Ratio > Limit. Missing is
	// set when the statistic exists in the baseline but not in the current
	// document (counted as a regression: coverage must not silently drop).
	Limit     float64
	Regressed bool
	Missing   bool
}

func (r Result) String() string {
	switch {
	case r.Missing:
		return fmt.Sprintf("MISSING %-32s (present in baseline, absent in current run)", r.Metric)
	case r.Regressed:
		return fmt.Sprintf("FAIL    %-32s %12.2f -> %12.2f  (%.2fx > %.2fx tolerated)",
			r.Metric, r.Baseline, r.Current, r.Ratio, r.Limit)
	default:
		return fmt.Sprintf("ok      %-32s %12.2f -> %12.2f  (%.2fx <= %.2fx)",
			r.Metric, r.Baseline, r.Current, r.Ratio, r.Limit)
	}
}

// compare produces the Result for one scalar statistic.
func compare(metric string, base, cur, tol float64) Result {
	r := Result{Metric: metric, Baseline: base, Current: cur, Limit: tol}
	if base > 0 {
		if cur <= 0 {
			// The baseline measured this statistic but the current run has
			// no value for it: every watched statistic is a wall-clock cost
			// or a work counter, so a literal zero means the measurement
			// vanished (renamed benchmark, dropped suite entry), not that
			// the cost fell to nothing. Silently passing here is how
			// renamed benchmarks used to slip through the gate.
			r.Ratio = 0
			r.Regressed, r.Missing = true, true
			return r
		}
		r.Ratio = cur / base
		r.Regressed = r.Ratio > tol
	} else {
		// A zero baseline cannot anchor a ratio; only flag when the current
		// value became nonzero (something that used to be free no longer is).
		r.Ratio = 1
		r.Regressed = cur > 0
	}
	return r
}

// Compare evaluates every watched statistic of cur against base. The
// wall-clock statistics (per-backend dispatch ns_per_event, batch-patch
// ns_per_func) are gated with the given tolerance factor (cur must stay
// <= base*tol — machines differ in speed). The deterministic batch
// counters (mprotect calls and coalesced windows) measure the *algorithm*,
// not the machine, so they are gated exactly: any growth over the baseline
// is a coalescing regression regardless of the tolerance. Returns every
// result, regressed or not, so callers can print the full table.
func Compare(base, cur *Doc, tol float64) []Result {
	var out []Result
	curDispatch := map[string]Dispatch{}
	for _, d := range cur.Dispatch {
		curDispatch[d.Backend] = d
	}
	for _, b := range base.Dispatch {
		metric := "dispatch/" + b.Backend + " ns_per_event"
		c, ok := curDispatch[b.Backend]
		if !ok {
			out = append(out, Result{Metric: metric, Baseline: b.NsPerEvent, Limit: tol, Regressed: true, Missing: true})
			continue
		}
		out = append(out, compare(metric, b.NsPerEvent, c.NsPerEvent, tol))
	}
	// Machine-portable dispatch gates: each backend's cost *relative to the
	// discarding "none" baseline of the same run* cancels the machine's
	// speed out, so these stay meaningful when the current run executes on
	// different hardware than the checked-in baseline (CI runners vs the
	// authoring machine). The absolute ns gates above catch regressions on
	// like-for-like machines; these catch per-backend algorithm regressions
	// anywhere.
	baseNone, curNone := dispatchNsPerEvent(base, "none"), dispatchNsPerEvent(cur, "none")
	if baseNone > 0 && curNone > 0 {
		for _, b := range base.Dispatch {
			if b.Backend == "none" {
				continue
			}
			c, ok := curDispatch[b.Backend]
			if !ok {
				continue // already reported missing above
			}
			out = append(out, compare("dispatch/"+b.Backend+" vs_none",
				b.NsPerEvent/baseNone, c.NsPerEvent/curNone, tol))
		}
	}
	// Mux-of-one gates: a "mux:X" dispatch entry is the X backend behind a
	// fan-out of one, so its cost must stay within tolerance of the direct
	// X path *of the same run* — a pure algorithm gate, machine speed
	// cancels out entirely. Baseline holds the direct path, Current the
	// muxed one. A mux entry whose direct counterpart is absent from the
	// run cannot be gated — that is a coverage hole, reported as missing
	// rather than silently skipped.
	for _, c := range cur.Dispatch {
		name, ok := strings.CutPrefix(c.Backend, "mux:")
		if !ok {
			continue
		}
		metric := "dispatch/" + c.Backend + " vs_direct"
		direct := dispatchNsPerEvent(cur, name)
		if direct <= 0 {
			out = append(out, Result{Metric: metric, Current: c.NsPerEvent, Limit: tol, Regressed: true, Missing: true})
			continue
		}
		out = append(out, compare(metric, direct, c.NsPerEvent, tol))
	}
	// Sampled-dispatch caps: a "sampled:X@N" entry at the gated rate
	// (N >= SampledCapMinStride) must stay within SampledVsNoneLimit of
	// the same run's discarding "none" baseline — the acceptance bar for
	// the sampling stage's hot-path cost. Same-run ratio, so machine speed
	// cancels out; the cap never loosens with -tol. Denser strides are not
	// capped: their per-delivery backend share dominates by design.
	for _, c := range cur.Dispatch {
		rest, ok := strings.CutPrefix(c.Backend, "sampled:")
		if !ok {
			continue
		}
		if at := strings.LastIndex(rest, "@"); at >= 0 {
			if stride, err := strconv.Atoi(rest[at+1:]); err == nil && stride < SampledCapMinStride {
				continue
			}
		}
		metric := "dispatch/" + c.Backend + " vs_none_cap"
		if curNone <= 0 {
			out = append(out, Result{Metric: metric, Current: c.NsPerEvent, Limit: SampledVsNoneLimit, Regressed: true, Missing: true})
			continue
		}
		out = append(out, compare(metric, curNone, c.NsPerEvent, SampledVsNoneLimit))
	}
	// Serving-path caps: an "http:X" entry is one webservice request
	// through capi/middleware, normalized per dispatched event, so its
	// ns/event must stay within HTTPVsNoneLimit of the *same run's*
	// discarding "none" baseline — the acceptance bar for the request
	// path's per-event amortization. Same-run ratio, so machine speed
	// cancels out; the cap never loosens with -tol.
	for _, c := range cur.Dispatch {
		if !strings.HasPrefix(c.Backend, "http:") {
			continue
		}
		metric := "dispatch/" + c.Backend + " http_vs_none_cap"
		if curNone <= 0 {
			out = append(out, Result{Metric: metric, Current: c.NsPerEvent, Limit: HTTPVsNoneLimit, Regressed: true, Missing: true})
			continue
		}
		out = append(out, compare(metric, curNone, c.NsPerEvent, HTTPVsNoneLimit))
	}
	// Async-pipeline caps: an "async:X" (or "async@N:X") entry is the X
	// backend behind the append-only asynchronous pipeline, so its ns/event
	// must stay at or below AsyncVsInlineLimit of the *same run's* inline X
	// entry — the acceptance bar for lifting backends off the hot path.
	// Same-run ratio, so machine speed cancels out; the cap never loosens
	// with -tol. An async entry whose inline counterpart is absent from the
	// run cannot be gated — a coverage hole, reported as missing rather
	// than silently skipped.
	for _, c := range cur.Dispatch {
		name, ok := asyncInner(c.Backend)
		if !ok {
			continue
		}
		metric := "dispatch/" + c.Backend + " async_vs_inline_cap"
		inline := dispatchNsPerEvent(cur, name)
		if inline <= 0 {
			out = append(out, Result{Metric: metric, Current: c.NsPerEvent, Limit: AsyncVsInlineLimit, Regressed: true, Missing: true})
			continue
		}
		out = append(out, compare(metric, inline, c.NsPerEvent, AsyncVsInlineLimit))
	}
	out = append(out,
		compare("batch_patch ns_per_func", base.BatchPatch.NsPerFunc, cur.BatchPatch.NsPerFunc, tol),
		compare("batch_patch mprotect_calls", float64(base.BatchPatch.MprotectCalls), float64(cur.BatchPatch.MprotectCalls), 1),
		compare("batch_patch mprotect_windows", float64(base.BatchPatch.BatchWindows), float64(cur.BatchPatch.BatchWindows), 1),
	)
	return out
}

// asyncInner extracts the inline backend spec from an async dispatch entry:
// "async:extrae" and "async@4096:extrae" both yield "extrae". The second
// return is false for non-async entries.
func asyncInner(backend string) (string, bool) {
	rest, ok := strings.CutPrefix(backend, "async")
	if !ok {
		return "", false
	}
	if num, ok := strings.CutPrefix(rest, "@"); ok {
		colon := strings.Index(num, ":")
		if colon < 0 {
			return "", false
		}
		rest = num[colon:]
	}
	return strings.CutPrefix(rest, ":")
}

func dispatchNsPerEvent(d *Doc, backend string) float64 {
	for _, b := range d.Dispatch {
		if b.Backend == backend {
			return b.NsPerEvent
		}
	}
	return 0
}

// Regressions filters results down to the failures.
func Regressions(results []Result) []Result {
	var out []Result
	for _, r := range results {
		if r.Regressed {
			out = append(out, r)
		}
	}
	return out
}
