package benchcmp

import (
	"strings"
	"testing"
)

func doc() *Doc {
	return &Doc{
		Schema: Schema,
		App:    "openfoam",
		Scale:  0.1,
		Dispatch: []Dispatch{
			{Backend: "none", NsPerPair: 100, NsPerEvent: 50, Iters: 1000},
			{Backend: "talp", NsPerPair: 300, NsPerEvent: 150, Iters: 1000},
			{Backend: "scorep", NsPerPair: 500, NsPerEvent: 250, Iters: 1000},
			{Backend: "extrae", NsPerPair: 160, NsPerEvent: 80, Iters: 1000},
		},
		BatchPatch: BatchPatch{
			Funcs: 4000, PatchedSleds: 8000, UnpatchedSleds: 8000,
			BatchWindows: 40, MprotectCalls: 80, NsPerFunc: 90,
		},
	}
}

func TestCompareIdenticalDocsPass(t *testing.T) {
	results := Compare(doc(), doc(), 1.5)
	// 4 absolute dispatch + 3 vs_none ratios + 3 batch statistics.
	if len(results) != 10 {
		t.Fatalf("watched %d statistics, want 10", len(results))
	}
	if regs := Regressions(results); len(regs) != 0 {
		t.Fatalf("identical docs regressed: %v", regs)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	cur := doc()
	cur.Dispatch[1].NsPerEvent = 150 * 1.4 // talp 1.4x, under the 1.5x gate
	cur.BatchPatch.NsPerFunc = 90 * 1.49
	if regs := Regressions(Compare(doc(), cur, 1.5)); len(regs) != 0 {
		t.Fatalf("within-tolerance run regressed: %v", regs)
	}
}

// TestSyntheticRegressionFails is the gate's own acceptance check: inflate
// the current run's numbers past the tolerance and the comparator must
// fail, naming the offending statistics.
func TestSyntheticRegressionFails(t *testing.T) {
	cur := doc()
	cur.Dispatch[2].NsPerEvent = 250 * 2 // scorep dispatch doubled
	cur.BatchPatch.MprotectCalls = 80 * 3
	regs := Regressions(Compare(doc(), cur, 1.5))
	// The doubled scorep dispatch trips both its absolute and its
	// vs_none gate (the "none" baseline is unchanged).
	if len(regs) != 3 {
		t.Fatalf("regressions = %v, want scorep absolute + vs_none + mprotect calls", regs)
	}
	if regs[0].Metric != "dispatch/scorep ns_per_event" || regs[0].Ratio != 2 {
		t.Fatalf("first regression = %+v", regs[0])
	}
	if regs[1].Metric != "dispatch/scorep vs_none" || regs[1].Ratio != 2 {
		t.Fatalf("second regression = %+v", regs[1])
	}
	if regs[2].Metric != "batch_patch mprotect_calls" {
		t.Fatalf("third regression = %+v", regs[2])
	}
	if s := regs[0].String(); !strings.Contains(s, "FAIL") || !strings.Contains(s, "scorep") {
		t.Fatalf("rendered: %s", s)
	}
}

// TestDeterministicCountersGatedExactly: the mprotect counters measure the
// coalescing algorithm, not machine speed, so even a generous wall-clock
// tolerance (CI uses 2.5x) must not excuse their growth — while a count
// that *shrinks* or a timing stat within tolerance passes.
func TestDeterministicCountersGatedExactly(t *testing.T) {
	cur := doc()
	cur.Dispatch[1].NsPerEvent = 150 * 2.4 // noisy runner, under 2.5x
	cur.BatchPatch.BatchWindows = 40 * 2   // coalescing regressed 2x
	regs := Regressions(Compare(doc(), cur, 2.5))
	if len(regs) != 1 || regs[0].Metric != "batch_patch mprotect_windows" {
		t.Fatalf("regressions = %v, want exactly the window count", regs)
	}
	cur.BatchPatch.BatchWindows = 39 // improvement passes
	if regs := Regressions(Compare(doc(), cur, 2.5)); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

// TestVsNoneRatiosCancelMachineSpeed: a uniformly slower machine trips
// only the absolute gates (tolerance policy), never the relative ones; a
// genuine per-backend regression trips the relative gate even there.
func TestVsNoneRatiosCancelMachineSpeed(t *testing.T) {
	cur := doc()
	for i := range cur.Dispatch {
		cur.Dispatch[i].NsPerEvent *= 3
	}
	cur.BatchPatch.NsPerFunc *= 3
	for _, r := range Regressions(Compare(doc(), cur, 1.5)) {
		if strings.Contains(r.Metric, "vs_none") {
			t.Fatalf("ratio gate tripped by machine speed alone: %+v", r)
		}
	}
	cur.Dispatch[1].NsPerEvent *= 2 // talp regressed 2x relative to none
	found := false
	for _, r := range Regressions(Compare(doc(), cur, 1.5)) {
		if r.Metric == "dispatch/talp vs_none" && r.Regressed {
			found = true
		}
	}
	if !found {
		t.Fatal("relative talp regression not caught on the slow machine")
	}
}

// TestMuxVsDirectGate: a "mux:X" entry is gated against the direct X path
// of the *same* (current) run — mux-of-one must stay within tolerance of
// direct dispatch regardless of machine speed or baseline age.
func TestMuxVsDirectGate(t *testing.T) {
	base, cur := doc(), doc()
	base.Dispatch = append(base.Dispatch, Dispatch{Backend: "mux:extrae", NsPerPair: 170, NsPerEvent: 85, Iters: 1000})
	cur.Dispatch = append(cur.Dispatch, Dispatch{Backend: "mux:extrae", NsPerPair: 170, NsPerEvent: 85, Iters: 1000})
	results := Compare(base, cur, 1.5)
	var gate *Result
	for i := range results {
		if results[i].Metric == "dispatch/mux:extrae vs_direct" {
			gate = &results[i]
		}
	}
	if gate == nil {
		t.Fatalf("vs_direct gate missing from %v", results)
	}
	// 85 muxed vs 80 direct = 1.06x: fine.
	if gate.Regressed || gate.Ratio > 1.1 {
		t.Fatalf("mux-of-one gate = %+v", gate)
	}
	// Blow the mux cost past tolerance of the direct path: even with an
	// equally slow baseline (so the absolute gate passes), vs_direct fails.
	slow := doc()
	slow.Dispatch = append(slow.Dispatch, Dispatch{Backend: "mux:extrae", NsPerPair: 260, NsPerEvent: 130, Iters: 1000})
	baseSlow := doc()
	baseSlow.Dispatch = append(baseSlow.Dispatch, Dispatch{Backend: "mux:extrae", NsPerPair: 260, NsPerEvent: 130, Iters: 1000})
	regs := Regressions(Compare(baseSlow, slow, 1.5))
	found := false
	for _, r := range regs {
		if r.Metric == "dispatch/mux:extrae vs_direct" {
			found = true
		}
	}
	if !found {
		t.Fatalf("130ns mux over 80ns direct (1.62x) not flagged: %v", regs)
	}
}

func TestMissingBackendIsARegression(t *testing.T) {
	cur := doc()
	cur.Dispatch = cur.Dispatch[:3] // extrae vanished from the current run
	regs := Regressions(Compare(doc(), cur, 1.5))
	if len(regs) != 1 || !regs[0].Missing || !strings.Contains(regs[0].Metric, "extrae") {
		t.Fatalf("regressions = %v", regs)
	}
	if s := regs[0].String(); !strings.Contains(s, "MISSING") {
		t.Fatalf("rendered: %s", s)
	}
}

func TestZeroBaselineOnlyFlagsNewCost(t *testing.T) {
	base, cur := doc(), doc()
	base.Dispatch[0].NsPerEvent = 0
	cur.Dispatch[0].NsPerEvent = 0
	if regs := Regressions(Compare(base, cur, 1.5)); len(regs) != 0 {
		t.Fatalf("zero/zero regressed: %v", regs)
	}
	cur.Dispatch[0].NsPerEvent = 10
	if regs := Regressions(Compare(base, cur, 1.5)); len(regs) != 1 {
		t.Fatalf("new nonzero cost not flagged: %v", regs)
	}
}

func TestReadValidatesSchema(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := Read(strings.NewReader(`{"schema":"capi-bench/v1"}`)); err == nil {
		t.Fatal("empty dispatch accepted")
	}
	if _, err := Read(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	d, err := Read(strings.NewReader(`{"schema":"capi-bench/v1","dispatch":[{"backend":"none","ns_per_event":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Dispatch[0].Backend != "none" {
		t.Fatalf("doc = %+v", d)
	}
}

// TestZeroedCurrentStatisticIsMissing is the regression for renamed
// benchmarks slipping through the gate: a statistic the baseline measured
// that decodes to zero in the fresh document (key renamed or dropped —
// encoding/json leaves the field zero) must fail as missing, not silently
// pass with ratio 0.
func TestZeroedCurrentStatisticIsMissing(t *testing.T) {
	cur := doc()
	cur.BatchPatch = BatchPatch{} // "batch_patch" key renamed/dropped upstream
	regs := Regressions(Compare(doc(), cur, 1.5))
	found := false
	for _, r := range regs {
		if r.Metric == "batch_patch ns_per_func" {
			if !r.Missing || !r.Regressed {
				t.Fatalf("zeroed ns_per_func not flagged missing: %+v", r)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("zeroed batch_patch passed the gate: %v", regs)
	}
	// The deterministic counters vanish with it and must fail too.
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Metric] = true
	}
	if !names["batch_patch mprotect_calls"] || !names["batch_patch mprotect_windows"] {
		t.Fatalf("zeroed mprotect counters passed: %v", regs)
	}
	// A zeroed dispatch ns_per_event is the same class of failure.
	cur2 := doc()
	cur2.Dispatch[1].NsPerEvent = 0 // talp renamed → decoded as zero
	regs2 := Regressions(Compare(doc(), cur2, 1.5))
	found = false
	for _, r := range regs2 {
		if r.Metric == "dispatch/talp ns_per_event" && r.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("zeroed talp dispatch passed: %v", regs2)
	}
}

// TestMuxWithoutDirectCounterpartIsMissing: a mux:X entry whose direct X
// path is absent from the run has no vs_direct anchor — that is a coverage
// hole, not a pass.
func TestMuxWithoutDirectCounterpartIsMissing(t *testing.T) {
	base, cur := doc(), doc()
	// Neither document carries a direct extrae entry, so the absolute
	// missing check cannot catch it; only the vs_direct gate can.
	base.Dispatch = base.Dispatch[:3]
	cur.Dispatch = append(cur.Dispatch[:3],
		Dispatch{Backend: "mux:extrae", NsPerPair: 170, NsPerEvent: 85, Iters: 1000})
	regs := Regressions(Compare(base, cur, 1.5))
	found := false
	for _, r := range regs {
		if r.Metric == "dispatch/mux:extrae vs_direct" && r.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("mux without direct counterpart passed: %v", regs)
	}
}

// TestAsyncVsInlineCap: an async:X entry is capped at AsyncVsInlineLimit of
// the same run's inline X entry — the acceptance bar for lifting backends
// off the hot path — independent of the wall-clock tolerance.
func TestAsyncVsInlineCap(t *testing.T) {
	base, cur := doc(), doc()
	entry := Dispatch{Backend: "async:extrae", NsPerPair: 60, NsPerEvent: 30, Iters: 1000}
	base.Dispatch = append(base.Dispatch, entry)
	cur.Dispatch = append(cur.Dispatch, entry)
	// 30 async vs 80 inline extrae = 0.375x: well under the 0.6 cap.
	if regs := Regressions(Compare(base, cur, 1.5)); len(regs) != 0 {
		t.Fatalf("0.375x async dispatch flagged: %v", regs)
	}
	// 60 vs 80 = 0.75x: over the cap, even with a huge tolerance and an
	// equally slow baseline entry (absolute gate passes).
	base.Dispatch[len(base.Dispatch)-1].NsPerEvent = 60
	cur.Dispatch[len(cur.Dispatch)-1].NsPerEvent = 60
	regs := Regressions(Compare(base, cur, 10))
	found := false
	for _, r := range regs {
		if r.Metric == "dispatch/async:extrae async_vs_inline_cap" {
			if r.Limit != AsyncVsInlineLimit {
				t.Fatalf("cap uses limit %v, want %v", r.Limit, AsyncVsInlineLimit)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("0.75x async dispatch passed a 10x tolerance: %v", regs)
	}
	// A sized ring ("async@N:X") pairs with the same inline anchor.
	sized := doc()
	sized.Dispatch = append(sized.Dispatch,
		Dispatch{Backend: "async@4096:extrae", NsPerPair: 120, NsPerEvent: 60, Iters: 1000})
	baseSized := doc()
	baseSized.Dispatch = append(baseSized.Dispatch,
		Dispatch{Backend: "async@4096:extrae", NsPerPair: 120, NsPerEvent: 60, Iters: 1000})
	found = false
	for _, r := range Regressions(Compare(baseSized, sized, 10)) {
		if r.Metric == "dispatch/async@4096:extrae async_vs_inline_cap" {
			found = true
		}
	}
	if !found {
		t.Fatal("async@N: entry escaped the inline cap")
	}
	// Without an inline counterpart in the current run the cap has no
	// anchor: missing, not a silent skip.
	cur2 := doc()
	cur2.Dispatch = append(cur2.Dispatch[:3], entry) // drop inline extrae
	base2 := doc()
	base2.Dispatch = append(base2.Dispatch[:3], entry)
	regs = Regressions(Compare(base2, cur2, 1.5))
	found = false
	for _, r := range regs {
		if r.Metric == "dispatch/async:extrae async_vs_inline_cap" && r.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("async entry without inline anchor passed: %v", regs)
	}
}

// TestSampledVsNoneCap: a sampled:X@N entry is capped at
// SampledVsNoneLimit of the same run's none baseline, independent of the
// wall-clock tolerance — even a 10x -tol does not excuse a slow sampler.
func TestSampledVsNoneCap(t *testing.T) {
	base, cur := doc(), doc()
	entry := Dispatch{Backend: "sampled:extrae@64", NsPerPair: 120, NsPerEvent: 60, Iters: 1000}
	base.Dispatch = append(base.Dispatch, entry)
	cur.Dispatch = append(cur.Dispatch, entry)
	// 60 vs none 50 = 1.2x: under the 1.3 cap.
	if regs := Regressions(Compare(base, cur, 1.5)); len(regs) != 0 {
		t.Fatalf("1.2x sampled dispatch flagged: %v", regs)
	}
	// 75 vs none 50 = 1.5x: over the cap, even with a huge tolerance and
	// an equally slow baseline entry (absolute gate passes).
	base.Dispatch[len(base.Dispatch)-1].NsPerEvent = 75
	cur.Dispatch[len(cur.Dispatch)-1].NsPerEvent = 75
	regs := Regressions(Compare(base, cur, 10))
	found := false
	for _, r := range regs {
		if r.Metric == "dispatch/sampled:extrae@64 vs_none_cap" {
			if r.Limit != SampledVsNoneLimit {
				t.Fatalf("cap uses limit %v, want %v", r.Limit, SampledVsNoneLimit)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("1.5x sampled dispatch passed a 10x tolerance: %v", regs)
	}
	// Denser strides are exempt from the cap: at 1-in-8 the delivered
	// backend share legitimately dominates, so a user's `-sample 8` entry
	// must not hard-fail the gate.
	dense := doc()
	dense.Dispatch = append(dense.Dispatch,
		Dispatch{Backend: "sampled:extrae@8", NsPerPair: 240, NsPerEvent: 120, Iters: 1000})
	baseDense := doc()
	baseDense.Dispatch = append(baseDense.Dispatch,
		Dispatch{Backend: "sampled:extrae@8", NsPerPair: 240, NsPerEvent: 120, Iters: 1000})
	for _, r := range Regressions(Compare(baseDense, dense, 1.5)) {
		if strings.Contains(r.Metric, "sampled:extrae@8 vs_none_cap") {
			t.Fatalf("dense-stride entry capped: %+v", r)
		}
	}
	// Without a none entry in the current run the cap has no anchor:
	// missing, not a silent skip.
	cur2 := doc()
	cur2.Dispatch = append(cur2.Dispatch[1:], entry) // drop "none"
	base2 := doc()
	base2.Dispatch = base2.Dispatch[1:] // baseline never had none either
	base2.Dispatch = append(base2.Dispatch, entry)
	regs = Regressions(Compare(base2, cur2, 1.5))
	found = false
	for _, r := range regs {
		if r.Metric == "dispatch/sampled:extrae@64 vs_none_cap" && r.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("sampled entry without none anchor passed: %v", regs)
	}
}

// TestHTTPVsNoneCap: an http:X entry is capped at HTTPVsNoneLimit of the
// same run's none baseline, independent of the wall-clock tolerance — a
// generous -tol does not excuse a serving path that stopped amortizing.
func TestHTTPVsNoneCap(t *testing.T) {
	base, cur := doc(), doc()
	entry := Dispatch{Backend: "http:none", NsPerPair: 240, NsPerEvent: 120, Iters: 1000}
	base.Dispatch = append(base.Dispatch, entry)
	cur.Dispatch = append(cur.Dispatch, entry)
	// 120 vs none 50 = 2.4x: under the 3.0 cap.
	if regs := Regressions(Compare(base, cur, 1.5)); len(regs) != 0 {
		t.Fatalf("2.4x http dispatch flagged: %v", regs)
	}
	// 175 vs none 50 = 3.5x: over the cap, even with a huge tolerance and
	// an equally slow baseline entry (absolute gate passes).
	base.Dispatch[len(base.Dispatch)-1].NsPerEvent = 175
	cur.Dispatch[len(cur.Dispatch)-1].NsPerEvent = 175
	regs := Regressions(Compare(base, cur, 10))
	found := false
	for _, r := range regs {
		if r.Metric == "dispatch/http:none http_vs_none_cap" {
			if r.Limit != HTTPVsNoneLimit {
				t.Fatalf("cap uses limit %v, want %v", r.Limit, HTTPVsNoneLimit)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("3.5x http dispatch passed a 10x tolerance: %v", regs)
	}
	// Without a none entry in the current run the cap has no anchor:
	// missing, not a silent skip.
	cur2 := doc()
	cur2.Dispatch = append(cur2.Dispatch[1:], entry) // drop "none"
	base2 := doc()
	base2.Dispatch = append(base2.Dispatch[1:], entry)
	regs = Regressions(Compare(base2, cur2, 1.5))
	found = false
	for _, r := range regs {
		if r.Metric == "dispatch/http:none http_vs_none_cap" && r.Missing {
			found = true
		}
	}
	if !found {
		t.Fatalf("http entry without none anchor passed: %v", regs)
	}
}
