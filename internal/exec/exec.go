// Package exec is the execution engine: it interprets a compiled program
// (internal/compiler) on a simulated MPI world, advancing per-rank virtual
// clocks by the modelled work and firing XRay sleds exactly where the
// machine code would — patched entry/exit sleds dispatch to the registered
// handler through the trampoline, unpatched sleds cost a near-zero NOP
// execution (the paper confirms XRay's inactive overhead is negligible,
// §VI-C), and fully inlined functions execute their bodies inside the
// caller without any instrumentation points (§V-E).
package exec

import (
	"fmt"
	"sync/atomic"

	"capi/internal/compiler"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/prog"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// StaticHandler receives events from statically instrumented functions
// (compiled-in hooks, the original CaPI workflow).
type StaticHandler func(tc xray.ThreadCtx, fn string, kind xray.EntryType)

// Config assembles an executable engine.
type Config struct {
	Build *compiler.Build
	Proc  *obj.Process
	XRay  *xray.Runtime // nil for vanilla builds
	World *mpi.World

	// MaxDepth bounds the simulated call stack (default 512).
	MaxDepth int
	// SledNopCost is the virtual cost of executing an unpatched sled
	// (default 1ns — the near-zero inactive overhead).
	SledNopCost int64
	// DispatchCost is the trampoline + handler-invocation overhead paid
	// per event when a sled is patched (default 25ns), on top of whatever
	// the handler itself charges.
	DispatchCost int64
	// CallCost is the intrinsic cost of any function call (default 2ns).
	CallCost int64
	// StaticHook receives events from statically instrumented functions.
	StaticHook StaticHandler
	// RankWorkSkew scales every OpWork duration per rank (index = rank),
	// modelling load imbalance: missing entries default to 1.0. The POP
	// load-balance metrics TALP reports come from this skew turning into
	// waiting time at collectives.
	RankWorkSkew []float64
}

// Task is the per-rank execution context; it implements xray.ThreadCtx and
// exposes the underlying MPI rank for backends that need it (TALP).
type Task struct {
	rank   *mpi.Rank
	skew   float64
	depth  int
	calls  int64
	events int64
}

// RankID implements xray.ThreadCtx.
func (t *Task) RankID() int { return t.rank.ID() }

// Clock implements xray.ThreadCtx.
func (t *Task) Clock() *vtime.Clock { return t.rank.Clock() }

// MPIRank returns the simulated MPI rank executing this task.
func (t *Task) MPIRank() *mpi.Rank { return t.rank }

// cop is a resolved body operation. Indirect calls are resolved to their
// single runtime target here; the static over-approximation lives only in
// the call graph.
type cop struct {
	kind   prog.OpKind
	work   int64
	callee *cfunc
	count  int
	mpiOp  mpi.Op
	bytes  int
}

// cfunc is a resolved function.
type cfunc struct {
	name      string
	lay       *compiler.FuncLayout
	lo        *obj.LoadedObject
	packed    int32
	hasPacked bool
	ops       []cop
}

// Engine interprets one compiled program.
type Engine struct {
	cfg    Config
	funcs  map[string]*cfunc
	main   *cfunc
	inits  []*cfunc
	calls  atomic.Int64
	events atomic.Int64
}

// New resolves the program against the loaded process and XRay runtime.
func New(cfg Config) (*Engine, error) {
	if cfg.Build == nil || cfg.Proc == nil || cfg.World == nil {
		return nil, fmt.Errorf("exec: Build, Proc and World are required")
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 512
	}
	if cfg.SledNopCost == 0 {
		cfg.SledNopCost = 1
	}
	if cfg.DispatchCost == 0 {
		cfg.DispatchCost = 25
	}
	if cfg.CallCost == 0 {
		cfg.CallCost = 2
	}
	p := cfg.Build.Prog
	e := &Engine{cfg: cfg, funcs: make(map[string]*cfunc, p.NumFunctions())}

	for _, name := range p.Functions() {
		lay := cfg.Build.Layout[name]
		cf := &cfunc{name: name, lay: lay}
		if lay != nil && lay.HasSleds {
			lo := cfg.Proc.Object(lay.Unit)
			if lo != nil && cfg.XRay != nil {
				if objID, ok := cfg.XRay.ObjectID(lo); ok {
					packed, err := xray.PackID(objID, lay.FuncID)
					if err != nil {
						return nil, fmt.Errorf("exec: %s: %w", name, err)
					}
					cf.lo = lo
					cf.packed = packed
					cf.hasPacked = true
				}
			}
		}
		e.funcs[name] = cf
	}
	// Resolve bodies after all functions exist.
	for _, name := range p.Functions() {
		f := p.Func(name)
		cf := e.funcs[name]
		for _, op := range f.Ops {
			switch op.Kind {
			case prog.OpWork:
				cf.ops = append(cf.ops, cop{kind: prog.OpWork, work: op.Work})
			case prog.OpMPI:
				cf.ops = append(cf.ops, cop{kind: prog.OpMPI, mpiOp: mpi.Op(op.MPI), bytes: op.Bytes})
			case prog.OpCall:
				target := op.Callee
				switch {
				case op.Virtual:
					target = op.RuntimeTarget
					if target == "" {
						target = p.VirtualImpls[op.Callee][0]
					}
				case op.ViaPointer:
					target = op.RuntimeTarget
					if target == "" {
						target = p.PointerTargets[op.Callee][0]
					}
				}
				tc, ok := e.funcs[target]
				if !ok {
					return nil, fmt.Errorf("exec: %s calls unresolved %q", name, target)
				}
				cf.ops = append(cf.ops, cop{kind: prog.OpCall, callee: tc, count: op.Count})
			}
		}
	}
	e.main = e.funcs[p.Main]
	if e.main == nil {
		return nil, fmt.Errorf("exec: entry point %q not compiled", p.Main)
	}
	for _, u := range p.Units() {
		for _, name := range p.StaticInits(u.Name) {
			e.inits = append(e.inits, e.funcs[name])
		}
	}
	return e, nil
}

// Run executes the program on every rank of the world: static initializers
// first (before any MPI), then main. It returns the first error.
func (e *Engine) Run() error {
	return e.cfg.World.Run(func(r *mpi.Rank) error {
		t := &Task{rank: r, skew: 1}
		if r.ID() < len(e.cfg.RankWorkSkew) && e.cfg.RankWorkSkew[r.ID()] > 0 {
			t.skew = e.cfg.RankWorkSkew[r.ID()]
		}
		for _, init := range e.inits {
			if err := e.call(t, init); err != nil {
				return err
			}
		}
		err := e.call(t, e.main)
		e.calls.Add(t.calls)
		e.events.Add(t.events)
		return err
	})
}

// TotalCalls returns the number of simulated function calls executed across
// all ranks of the last Run.
func (e *Engine) TotalCalls() int64 { return e.calls.Load() }

// TotalEvents returns the number of instrumentation events dispatched
// across all ranks of the last Run.
func (e *Engine) TotalEvents() int64 { return e.events.Load() }

// enter fires the entry-side instrumentation of fn, returning a function
// firing the exit side (mirroring the sled pair).
func (e *Engine) instrument(t *Task, fn *cfunc, kind xray.EntryType) {
	clk := t.rank.Clock()
	if fn.hasPacked {
		idx := fn.lay.EntrySled
		if kind == xray.Exit {
			idx = fn.lay.ExitSled
		}
		if fn.lo.SledPatched(idx) {
			clk.Advance(e.cfg.DispatchCost)
			t.events++
			e.cfg.XRay.Dispatch(t, fn.packed, kind)
		} else {
			clk.Advance(e.cfg.SledNopCost)
		}
	}
	if fn.lay != nil && fn.lay.StaticInstr && e.cfg.StaticHook != nil {
		clk.Advance(e.cfg.DispatchCost)
		t.events++
		e.cfg.StaticHook(t, fn.name, kind)
	}
}

// call executes one function invocation.
func (e *Engine) call(t *Task, fn *cfunc) error {
	if t.depth >= e.cfg.MaxDepth {
		return fmt.Errorf("exec: call depth %d exceeded at %s", e.cfg.MaxDepth, fn.name)
	}
	t.depth++
	t.calls++
	clk := t.rank.Clock()
	clk.Advance(e.cfg.CallCost)

	inlined := fn.lay != nil && fn.lay.Inlined
	if !inlined {
		e.instrument(t, fn, xray.Entry)
	}
	for i := range fn.ops {
		op := &fn.ops[i]
		switch op.kind {
		case prog.OpWork:
			if t.skew != 1 {
				clk.Advance(int64(float64(op.work) * t.skew))
			} else {
				clk.Advance(op.work)
			}
		case prog.OpCall:
			for c := 0; c < op.count; c++ {
				if err := e.call(t, op.callee); err != nil {
					return err
				}
			}
		case prog.OpMPI:
			if err := e.mpiOp(t, op); err != nil {
				return err
			}
		}
	}
	if !inlined {
		e.instrument(t, fn, xray.Exit)
	}
	t.depth--
	return nil
}

// mpiOp performs a simulated MPI operation. Point-to-point operations use a
// ring pattern: sends go to the right neighbour, receives come from the
// left, which is deadlock-free with buffered sends.
func (e *Engine) mpiOp(t *Task, op *cop) error {
	r := t.rank
	size := r.WorldSize()
	right := (r.ID() + 1) % size
	left := (r.ID() + size - 1) % size
	switch op.mpiOp {
	case mpi.OpInit:
		return r.Init()
	case mpi.OpFinalize:
		return r.Finalize()
	case mpi.OpBarrier:
		return r.Barrier()
	case mpi.OpAllreduce:
		return r.Allreduce(op.bytes)
	case mpi.OpReduce:
		return r.Reduce(op.bytes)
	case mpi.OpBcast:
		return r.Bcast(op.bytes)
	case mpi.OpAllgather:
		return r.Allgather(op.bytes)
	case mpi.OpSend:
		return r.Send(right, 0, op.bytes)
	case mpi.OpRecv:
		return r.Recv(left, 0, op.bytes)
	case mpi.OpIrecv:
		return r.Irecv(left, 0, op.bytes)
	case mpi.OpWaitall:
		return r.Waitall()
	case mpi.OpSendrecv:
		return r.Sendrecv(right, left, 0, op.bytes)
	default:
		return fmt.Errorf("exec: unsupported MPI operation %q", op.mpiOp)
	}
}
