package exec

import (
	"strings"
	"sync"
	"testing"

	"capi/internal/compiler"
	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/prog"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// testProgram builds a small MPI app:
//
//	main: init_stuff, MPI_Init, 3x step{ kernel(x2), MPI_Allreduce }, MPI_Finalize
//	kernel: work 1ms; calls tiny (auto-inlined) twice
//	init_stuff: work only (runs before MPI_Init)
func testProgram() *prog.Program {
	p := prog.New("testapp", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)
	for _, op := range []string{"MPI_Init", "MPI_Finalize", "MPI_Allreduce", "MPI_Sendrecv"} {
		p.MustAddFunc(&prog.Function{Name: op, Unit: "libmpi.so", SystemHeader: true})
	}
	p.MustAddFunc(&prog.Function{
		Name: "main", Unit: "app.exe", Statements: 30,
		Ops: []prog.Op{
			prog.Call("init_stuff", 1),
			prog.MPICall("MPI_Init", 0),
			prog.Call("step", 3),
			prog.MPICall("MPI_Finalize", 0),
		},
	})
	p.MustAddFunc(&prog.Function{
		Name: "init_stuff", Unit: "app.exe", Statements: 20,
		Ops: []prog.Op{prog.Work(100 * vtime.Microsecond)},
	})
	p.MustAddFunc(&prog.Function{
		Name: "step", Unit: "app.exe", Statements: 25, LoopDepth: 1,
		Ops: []prog.Op{
			prog.Call("kernel", 2),
			prog.MPICall("MPI_Allreduce", 8),
		},
	})
	p.MustAddFunc(&prog.Function{
		Name: "kernel", Unit: "app.exe", Statements: 40, Flops: 100, LoopDepth: 2,
		Ops: []prog.Op{prog.Work(vtime.Millisecond), prog.Call("tiny", 2)},
	})
	p.MustAddFunc(&prog.Function{
		Name: "tiny", Unit: "app.exe", Statements: 2,
		Ops: []prog.Op{prog.Work(10 * vtime.Nanosecond)},
	})
	return p
}

// setup compiles, loads and wires the engine; returns engine + runtime.
func setup(t *testing.T, p *prog.Program, withXRay bool, ranks int) (*Engine, *xray.Runtime, *mpi.World) {
	t.Helper()
	b, err := compiler.Compile(p, compiler.Options{XRay: withXRay})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	var rt *xray.Runtime
	if withXRay {
		rt, err = xray.NewRuntime(proc)
		if err != nil {
			t.Fatal(err)
		}
	}
	w, err := mpi.NewWorld(ranks, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Build: b, Proc: proc, XRay: rt, World: w})
	if err != nil {
		t.Fatal(err)
	}
	return e, rt, w
}

func TestVanillaRun(t *testing.T) {
	e, _, w := setup(t, testProgram(), false, 2)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 3 steps x 2 kernels x 1ms plus overheads.
	for _, r := range w.Ranks() {
		if r.Clock().Now() < 6*vtime.Millisecond {
			t.Fatalf("rank %d time %d too small", r.ID(), r.Clock().Now())
		}
		if !r.Finalized() {
			t.Fatal("rank did not finalize")
		}
	}
	if e.TotalEvents() != 0 {
		t.Fatalf("vanilla run dispatched %d events", e.TotalEvents())
	}
	// main + init + 3*step + 6*kernel + 12*tiny = 23 calls per rank.
	if e.TotalCalls() != 2*23 {
		t.Fatalf("TotalCalls = %d, want 46", e.TotalCalls())
	}
}

func TestInactiveXRayNearZeroOverhead(t *testing.T) {
	ev, _, wv := setup(t, testProgram(), false, 1)
	if err := ev.Run(); err != nil {
		t.Fatal(err)
	}
	ei, _, wi := setup(t, testProgram(), true, 1)
	if err := ei.Run(); err != nil {
		t.Fatal(err)
	}
	vanilla := wv.Rank(0).Clock().Now()
	inactive := wi.Rank(0).Clock().Now()
	if inactive < vanilla {
		t.Fatalf("inactive %d < vanilla %d", inactive, vanilla)
	}
	// Near-zero: < 0.1% overhead.
	if delta := inactive - vanilla; delta*1000 > vanilla {
		t.Fatalf("inactive sled overhead too high: %d of %d", delta, vanilla)
	}
}

func TestPatchedSledsDispatch(t *testing.T) {
	e, rt, _ := setup(t, testProgram(), true, 2)
	var mu sync.Mutex
	counts := map[string]int{}
	rt.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
		addr, err := rt.FunctionAddress(id)
		if err != nil {
			t.Errorf("FunctionAddress: %v", err)
			return
		}
		_, sym, ok := e.cfg.Proc.ResolveAddr(addr)
		if !ok {
			t.Error("cannot resolve dispatched function")
			return
		}
		mu.Lock()
		counts[sym.Name+":"+kind.String()]++
		mu.Unlock()
		tc.Clock().Advance(100)
	})
	// Patch only kernel.
	lay := e.cfg.Build.Layout["kernel"]
	packed, _ := xray.PackID(0, lay.FuncID)
	if err := rt.PatchFunction(packed); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 2 ranks x 3 steps x 2 kernel calls = 12 enters and 12 exits.
	if counts["kernel:entry"] != 12 || counts["kernel:exit"] != 12 {
		t.Fatalf("counts = %v", counts)
	}
	if len(counts) != 2 {
		t.Fatalf("unexpected events: %v", counts)
	}
	if e.TotalEvents() != 24 {
		t.Fatalf("TotalEvents = %d, want 24", e.TotalEvents())
	}
}

func TestInlinedFunctionsProduceNoEvents(t *testing.T) {
	e, rt, _ := setup(t, testProgram(), true, 1)
	var events int
	rt.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) { events++ })
	if _, err := rt.PatchAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// tiny is auto-inlined: no sleds. All other calls produce events:
	// main(1) + init_stuff(1) + step(3) + kernel(6) = 11 enters + 11 exits.
	if events != 22 {
		t.Fatalf("events = %d, want 22", events)
	}
}

func TestVirtualAndPointerDispatch(t *testing.T) {
	p := prog.New("vapp", "main")
	p.MustAddUnit("e", prog.Executable)
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "e", Statements: 20,
		Ops: []prog.Op{
			prog.VCall("Base::solve", 2),               // defaults to A::solve
			prog.VCallTo("Base::solve", "B::solve", 2), // explicit dynamic type
			prog.PtrCallTo("hook", "cb", 2),
		}})
	p.MustAddFunc(&prog.Function{Name: "A::solve", Unit: "e", Virtual: true, Statements: 20, Ops: []prog.Op{prog.Work(10)}})
	p.MustAddFunc(&prog.Function{Name: "B::solve", Unit: "e", Virtual: true, Statements: 20, Ops: []prog.Op{prog.Work(20)}})
	p.RegisterVirtual("Base::solve", "A::solve")
	p.RegisterVirtual("Base::solve", "B::solve")
	p.MustAddFunc(&prog.Function{Name: "cb", Unit: "e", Statements: 15, AddressTaken: true, Ops: []prog.Op{prog.Work(5)}})
	p.RegisterPointerTarget("hook", "cb", true)

	e, rt, _ := setup(t, p, true, 1)
	var mu sync.Mutex
	counts := map[int32]int{}
	rt.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
		if kind == xray.Entry {
			mu.Lock()
			counts[id]++
			mu.Unlock()
		}
	})
	if _, err := rt.PatchAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Dispatch: A twice (default), B twice (explicit), cb twice (pointer).
	a := e.cfg.Build.Layout["A::solve"]
	b := e.cfg.Build.Layout["B::solve"]
	cb := e.cfg.Build.Layout["cb"]
	pa, _ := xray.PackID(0, a.FuncID)
	pb, _ := xray.PackID(0, b.FuncID)
	pc, _ := xray.PackID(0, cb.FuncID)
	if counts[pa] != 2 || counts[pb] != 2 || counts[pc] != 2 {
		t.Fatalf("dispatch counts = %v", counts)
	}
}

func TestStaticInstrumentation(t *testing.T) {
	p := testProgram()
	b, err := compiler.Compile(p, compiler.Options{
		StaticIC: ic.New("testapp", "static", []string{"kernel", "step"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(1, mpi.DefaultCostModel())
	var mu sync.Mutex
	hooks := map[string]int{}
	e, err := New(Config{
		Build: b, Proc: proc, World: w,
		StaticHook: func(tc xray.ThreadCtx, fn string, kind xray.EntryType) {
			mu.Lock()
			hooks[fn]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hooks["kernel"] != 12 || hooks["step"] != 6 { // enter+exit per call
		t.Fatalf("static hooks = %v", hooks)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() int64 {
		e, _, w := setup(t, testProgram(), true, 4)
		if _, err := e.cfg.XRay.PatchAll(); err != nil {
			t.Fatal(err)
		}
		e.cfg.XRay.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
			tc.Clock().Advance(123)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, r := range w.Ranks() {
			sum += r.Clock().Now()
		}
		return sum
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestStaticInitsRunBeforeMain(t *testing.T) {
	p := testProgram()
	p.MustAddFunc(&prog.Function{
		Name: "_GLOBAL__sub_I_x", Unit: "app.exe", Statements: 10,
		StaticInit: true, Visibility: prog.Hidden,
		Ops: []prog.Op{prog.Work(50)},
	})
	e, rt, _ := setup(t, p, true, 1)
	var order []string
	rt.SetHandler(func(tc xray.ThreadCtx, id int32, kind xray.EntryType) {
		if kind != xray.Entry {
			return
		}
		addr, _ := rt.FunctionAddress(id)
		_, sym, _ := e.cfg.Proc.ResolveAddr(addr)
		order = append(order, sym.Name)
	})
	if _, err := rt.PatchAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) == 0 || order[0] != "_GLOBAL__sub_I_x" {
		t.Fatalf("static init not first: %v", order)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	p := prog.New("rec", "main")
	p.MustAddUnit("e", prog.Executable)
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "e", Statements: 20, Ops: []prog.Op{prog.Call("main", 1)}})
	b, err := compiler.Compile(p, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proc, _ := b.LoadProcess()
	w, _ := mpi.NewWorld(1, mpi.DefaultCostModel())
	e, err := New(Config{Build: b, Proc: proc, World: w, MaxDepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Run()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
}
