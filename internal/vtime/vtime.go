// Package vtime provides deterministic virtual clocks.
//
// All measurements in this repository are expressed in virtual nanoseconds:
// simulated function bodies, measurement probes and MPI operations advance a
// per-rank Clock by modelled costs. Virtual time makes the evaluation
// deterministic and portable — the paper's evaluation compares overhead
// *ratios*, which survive the substitution of wall-clock time by an explicit
// cost accounting (see DESIGN.md).
package vtime

import "fmt"

// Handy duration constants in virtual nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000 * Nanosecond
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
)

// Clock is a monotonically non-decreasing virtual clock. The zero value is a
// clock at time zero, ready to use. Clock is not safe for concurrent use;
// each simulated rank owns exactly one clock.
//
// A clock can be pinned (Pin) for replay: cost charges through
// Advance/AdvanceTo become no-ops and only Jump moves it. A pinned clock is
// what the async event pipeline hands backends when it replays recorded
// events off the hot path — the backend's probe costs must not advance time
// a second time, and the recorded timestamps must flow through exactly.
type Clock struct {
	now    int64
	pinned bool
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds. Negative d is ignored so
// that cost models can never move time backwards. On a pinned clock Advance
// is a no-op.
func (c *Clock) Advance(d int64) {
	if d > 0 && !c.pinned {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to time t. If t is in the past the clock
// is unchanged, preserving monotonicity. It reports whether the clock moved.
// On a pinned clock AdvanceTo is a no-op.
func (c *Clock) AdvanceTo(t int64) bool {
	if t > c.now && !c.pinned {
		c.now = t
		return true
	}
	return false
}

// Pin freezes the clock against cost charges: after Pin, only Jump moves it.
// Pinning is one-way and intended for replay clocks that track recorded
// timestamps.
func (c *Clock) Pin() { c.pinned = true }

// Pinned reports whether the clock is pinned.
func (c *Clock) Pinned() bool { return c.pinned }

// Jump sets the clock to the given time, forwards or backwards, regardless
// of pinning. Replay owners use it to align the clock with each recorded
// event's timestamp; ordinary simulation code never calls it.
func (c *Clock) Jump(t int64) { c.now = t }

// Seconds returns the current time converted to (virtual) seconds.
func (c *Clock) Seconds() float64 { return float64(c.now) / float64(Second) }

// String formats the clock value as seconds with millisecond resolution.
func (c *Clock) String() string { return FormatSeconds(c.now) }

// FormatSeconds renders a virtual-nanosecond duration as "12.345s".
func FormatSeconds(ns int64) string {
	return fmt.Sprintf("%.3fs", float64(ns)/float64(Second))
}

// Seconds converts a floating-point second count to virtual nanoseconds.
func Seconds(s float64) int64 { return int64(s * float64(Second)) }
