package vtime

import (
	"testing"
	"testing/quick"
)

func TestZeroValueClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", c.Now())
	}
	if c.Seconds() != 0 {
		t.Fatalf("zero clock Seconds() = %v, want 0", c.Seconds())
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(5)
	if got := c.Now(); got != 15 {
		t.Fatalf("Now() = %d, want 15", got)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	var c Clock
	c.Advance(100)
	c.Advance(-50)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d after negative advance, want 100", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	var c Clock
	if !c.AdvanceTo(42) {
		t.Fatal("AdvanceTo(42) from 0 should report movement")
	}
	if c.AdvanceTo(10) {
		t.Fatal("AdvanceTo(10) from 42 should not move backwards")
	}
	if got := c.Now(); got != 42 {
		t.Fatalf("Now() = %d, want 42", got)
	}
}

func TestSecondsConversion(t *testing.T) {
	var c Clock
	c.Advance(Second + 500*Millisecond)
	if got := c.Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
}

func TestFormatSeconds(t *testing.T) {
	if got := FormatSeconds(1234 * Millisecond); got != "1.234s" {
		t.Fatalf("FormatSeconds = %q, want \"1.234s\"", got)
	}
	var c Clock
	c.Advance(2 * Second)
	if got := c.String(); got != "2.000s" {
		t.Fatalf("String() = %q, want \"2.000s\"", got)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	if got := Seconds(3.25); got != 3250*Millisecond {
		t.Fatalf("Seconds(3.25) = %d, want %d", got, 3250*Millisecond)
	}
}

// Property: a clock never moves backwards under any interleaving of Advance
// and AdvanceTo calls.
func TestClockMonotonicProperty(t *testing.T) {
	f := func(steps []int64) bool {
		var c Clock
		prev := c.Now()
		for i, s := range steps {
			if i%2 == 0 {
				c.Advance(s % (1 << 40))
			} else {
				c.AdvanceTo(s % (1 << 40))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Advance by a non-negative amount is exact addition.
func TestAdvanceExactProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		var c Clock
		c.Advance(int64(a))
		c.Advance(int64(b))
		return c.Now() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
