package dlb

import (
	"testing"

	"capi/internal/mpi"
	"capi/internal/talp"
)

func newWorld(t *testing.T, ranks int) *mpi.World {
	t.Helper()
	w, err := mpi.NewWorld(ranks, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLeWILendReclaimAccounting(t *testing.T) {
	w := newWorld(t, 2)
	d := New(w, Options{CPUsPerProcess: 4, EnableLeWI: true})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		// Rank 1 computes longer, so rank 0 waits inside the barrier with
		// its CPUs lent.
		if r.ID() == 1 {
			r.Clock().Advance(1_000_000)
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, peak, _ := d.Stats()
	for _, s := range stats {
		// Init, Barrier and Finalize are blocking: three lend cycles.
		if s.Lends != 3 {
			t.Fatalf("rank %d lends = %d, want 3", s.Rank, s.Lends)
		}
		if s.OwnedNow != 4 {
			t.Fatalf("rank %d owned = %d after reclaim", s.Rank, s.OwnedNow)
		}
	}
	// The waiting rank lent for longer than the late one.
	if stats[0].LentNs <= stats[1].LentNs {
		t.Fatalf("rank0 lent %d <= rank1 lent %d", stats[0].LentNs, stats[1].LentNs)
	}
	// At the barrier both ranks' CPUs overlapped in the pool.
	if peak != 8 {
		t.Fatalf("pool peak = %d, want 8", peak)
	}
}

func TestBorrowReturn(t *testing.T) {
	w := newWorld(t, 2)
	d := New(w, Options{CPUsPerProcess: 4})
	r0, r1 := w.Rank(0), w.Rank(1)

	// Nothing lent: nothing to borrow.
	if got := d.DLB_Borrow(r0, 2); got != 0 {
		t.Fatalf("borrowed %d from empty pool", got)
	}
	// Simulate rank 1 lending (as the LeWI hook would).
	d.lend(r1)
	if got := d.DLB_Borrow(r0, 2); got != 2 {
		t.Fatalf("borrowed %d, want 2", got)
	}
	if d.OwnedCPUs(0) != 6 {
		t.Fatalf("owned = %d, want 6", d.OwnedCPUs(0))
	}
	// Borrow more than the pool holds: partial acquisition.
	if got := d.DLB_Borrow(r0, 10); got != 2 {
		t.Fatalf("partial borrow = %d, want 2", got)
	}
	// Returning more than owned-1 is rejected.
	if err := d.DLB_Return(r0, 8); err == nil {
		t.Fatal("over-return must fail")
	}
	if err := d.DLB_Return(r0, 4); err != nil {
		t.Fatal(err)
	}
	if d.OwnedCPUs(0) != 4 {
		t.Fatalf("owned = %d after return", d.OwnedCPUs(0))
	}
}

func TestDROM(t *testing.T) {
	w := newWorld(t, 2)
	d := New(w, Options{CPUsPerProcess: 4})
	if err := d.DROMSetNumCPUs(1, 8); err != nil {
		t.Fatal(err)
	}
	if d.OwnedCPUs(1) != 8 {
		t.Fatalf("owned = %d, want 8", d.OwnedCPUs(1))
	}
	if err := d.DROMSetNumCPUs(1, 0); err == nil {
		t.Fatal("shrink to 0 must fail")
	}
	if err := d.DROMSetNumCPUs(9, 2); err == nil {
		t.Fatal("invalid rank must fail")
	}
}

// TestMonitoringRegionAPI exercises the paper's Listing 2 through the DLB
// facade: register, start, stop, and the end-of-run report.
func TestMonitoringRegionAPI(t *testing.T) {
	w := newWorld(t, 2)
	d := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		handle, err := d.DLB_MonitoringRegionRegister(r, "foo")
		if err != nil {
			return err
		}
		if err := d.DLB_MonitoringRegionStart(r, handle); err != nil {
			return err
		}
		r.Clock().Advance(500_000)
		if err := d.DLB_MonitoringRegionStop(r, handle); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.TALP().Report()
	reg := rep.Region("foo")
	if reg == nil {
		t.Fatal("region foo not reported")
	}
	if reg.Visits != 2 { // one visit per rank
		t.Fatalf("visits = %d, want 2", reg.Visits)
	}
	if rep.Region(talp.GlobalRegionName) == nil {
		t.Fatal("global region missing")
	}
}

// TestRegisterBeforeInitFails reproduces the §VI-B(b) gate through the DLB
// facade.
func TestRegisterBeforeInitFails(t *testing.T) {
	w := newWorld(t, 1)
	d := New(w, Options{})
	err := w.Run(func(r *mpi.Rank) error {
		if _, err := d.DLB_MonitoringRegionRegister(r, "early"); err == nil {
			t.Error("registration before MPI_Init must fail")
		}
		if err := r.Init(); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.TALP().Report()
	if len(rep.FailedPreInit) != 1 || rep.FailedPreInit[0] != "early" {
		t.Fatalf("failed pre-init = %v", rep.FailedPreInit)
	}
}
