// Package dlb models the Dynamic Load Balancing library that hosts TALP
// (§III-B of the paper): a user-transparent library attached to an MPI job
// offering three modules — LeWI (Lend When Idle: CPUs of ranks blocked in
// MPI are lent to busy ranks), DROM (Dynamic Resource Ownership Management:
// an external manager resizes a process's CPU mask) and TALP (performance
// monitoring, the module the paper integrates with).
//
// The paper's system only consumes TALP, so LeWI and DROM here implement
// the library's API and bookkeeping semantics: lending windows are detected
// from the PMPI hooks and accounted in virtual time, and ownership changes
// are validated and recorded. Actual CPU re-assignment would need a hybrid
// (MPI+OpenMP) execution model, which the pure-MPI engine does not
// simulate; the lending statistics quantify the opportunity instead.
//
// The exported DLB_* methods mirror the C API used in the paper's
// Listing 2.
package dlb

import (
	"fmt"
	"sort"
	"sync"

	"capi/internal/mpi"
	"capi/internal/talp"
)

// Options configures the library.
type Options struct {
	// CPUsPerProcess is each rank's initial CPU ownership (default 4).
	CPUsPerProcess int
	// EnableLeWI activates lend-when-idle bookkeeping.
	EnableLeWI bool
	// TALP configures the monitoring module.
	TALP talp.Options
}

// rankCPUState tracks one rank's ownership and lending.
type rankCPUState struct {
	owned     int
	lent      bool
	lendStart int64
	lentTime  int64
	lends     int64
}

// DLB is one library instance attached to an MPI world.
type DLB struct {
	world *mpi.World
	opts  Options
	talp  *talp.Monitor

	mu       sync.Mutex
	ranks    []*rankCPUState
	pool     int   // CPUs currently available for borrowing
	poolPeak int   // high-water mark of the pool
	borrowed int64 // successful borrow acquisitions
}

// New attaches the library to a world. TALP is always available (it is the
// module the paper uses); LeWI hooks are installed when enabled.
func New(w *mpi.World, opts Options) *DLB {
	if opts.CPUsPerProcess <= 0 {
		opts.CPUsPerProcess = 4
	}
	d := &DLB{
		world: w,
		opts:  opts,
		talp:  talp.New(w, opts.TALP),
	}
	for i := 0; i < w.Size(); i++ {
		d.ranks = append(d.ranks, &rankCPUState{owned: opts.CPUsPerProcess})
	}
	if opts.EnableLeWI {
		for _, r := range w.Ranks() {
			d.attachLeWI(r)
		}
	}
	return d
}

// TALP returns the monitoring module.
func (d *DLB) TALP() *talp.Monitor { return d.talp }

// attachLeWI installs the PMPI-driven lend/reclaim cycle: a rank entering
// any blocking MPI operation lends its CPUs to the pool and reclaims them
// on return (the LeWI policy for MPI phases).
func (d *DLB) attachLeWI(r *mpi.Rank) {
	r.AddHook(mpi.Hook{
		Pre: func(rk *mpi.Rank, op mpi.Op, bytes int) {
			d.lend(rk)
		},
		Post: func(rk *mpi.Rank, op mpi.Op, bytes int, elapsed int64) {
			d.reclaim(rk, elapsed)
		},
	})
}

func (d *DLB) lend(rk *mpi.Rank) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.ranks[rk.ID()]
	if st.lent {
		return
	}
	st.lent = true
	st.lends++
	st.lendStart = rk.Clock().Now()
	d.pool += st.owned
	if d.pool > d.poolPeak {
		d.poolPeak = d.pool
	}
}

func (d *DLB) reclaim(rk *mpi.Rank, elapsed int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.ranks[rk.ID()]
	if !st.lent {
		return
	}
	st.lent = false
	st.lentTime += elapsed
	d.pool -= st.owned
	if d.pool < 0 {
		d.pool = 0
	}
}

// DLB_Borrow attempts to borrow up to want CPUs from the pool, returning
// how many were acquired. The CPUs are returned with DLB_Return.
func (d *DLB) DLB_Borrow(r *mpi.Rank, want int) int {
	if want <= 0 {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	got := want
	if got > d.pool {
		got = d.pool
	}
	if got > 0 {
		d.pool -= got
		d.ranks[r.ID()].owned += got
		d.borrowed++
	}
	return got
}

// DLB_Return gives n borrowed CPUs back to the pool.
func (d *DLB) DLB_Return(r *mpi.Rank, n int) error {
	if n <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.ranks[r.ID()]
	if n > st.owned-1 { // a process never returns its last CPU
		return fmt.Errorf("dlb: rank %d cannot return %d of %d CPUs", r.ID(), n, st.owned)
	}
	st.owned -= n
	d.pool += n
	return nil
}

// DROMSetNumCPUs implements the DROM entry point: an external resource
// manager (e.g. Slurm) resizes a rank's ownership.
func (d *DLB) DROMSetNumCPUs(rank, cpus int) error {
	if rank < 0 || rank >= d.world.Size() {
		return fmt.Errorf("dlb: invalid rank %d", rank)
	}
	if cpus < 1 {
		return fmt.Errorf("dlb: rank %d: cannot shrink to %d CPUs", rank, cpus)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ranks[rank].owned = cpus
	return nil
}

// OwnedCPUs returns a rank's current CPU ownership.
func (d *DLB) OwnedCPUs(rank int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ranks[rank].owned
}

// DLB_MonitoringRegionRegister mirrors Listing 2 of the paper: it creates
// (or finds) a TALP monitoring region handle.
func (d *DLB) DLB_MonitoringRegionRegister(r *mpi.Rank, name string) (*talp.Region, error) {
	return d.talp.Register(r, name)
}

// DLB_MonitoringRegionStart enters a region.
func (d *DLB) DLB_MonitoringRegionStart(r *mpi.Rank, reg *talp.Region) error {
	return d.talp.Start(r, reg)
}

// DLB_MonitoringRegionStop leaves a region.
func (d *DLB) DLB_MonitoringRegionStop(r *mpi.Rank, reg *talp.Region) error {
	return d.talp.Stop(r, reg)
}

// LeWIStats summarizes the lending opportunity LeWI observed.
type LeWIStats struct {
	Rank     int
	Lends    int64 // lend/reclaim cycles (≈ blocking MPI calls)
	LentNs   int64 // virtual time the rank's CPUs sat in the pool
	OwnedNow int
}

// Stats returns per-rank LeWI statistics, plus the pool peak: the maximum
// number of CPUs that were simultaneously available for borrowing.
func (d *DLB) Stats() (perRank []LeWIStats, poolPeak int, borrows int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, st := range d.ranks {
		perRank = append(perRank, LeWIStats{
			Rank:     i,
			Lends:    st.lends,
			LentNs:   st.lentTime,
			OwnedNow: st.owned,
		})
	}
	sort.Slice(perRank, func(i, j int) bool { return perRank[i].Rank < perRank[j].Rank })
	return perRank, d.poolPeak, d.borrowed
}
