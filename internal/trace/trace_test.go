package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestAppendFlushesFullRings(t *testing.T) {
	b, err := New(Options{Ranks: 1, BufEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k := Enter
		if i%2 == 1 {
			k = Exit
		}
		flushed := b.Append(0, int64(i), 7, "fn", k)
		// The ring holds 4 events; appends 5 and 9 (0-based) find it full.
		if want := i == 4 || i == 8; flushed != want {
			t.Fatalf("append %d: flushed = %v, want %v", i, flushed, want)
		}
	}
	rep := b.Report()
	rs := rep.Ranks[0]
	if rs.Recorded != 10 || rs.Retained != 10 || rs.Flushes != 2 {
		t.Fatalf("summary = %+v", rs)
	}
	if rs.Enters != 5 || rs.Exits != 5 {
		t.Fatalf("enter/exit counts = %d/%d", rs.Enters, rs.Exits)
	}
	// Partial ring contents are included in the report without a flush.
	if len(rep.Timeline) != 10 {
		t.Fatalf("timeline = %d records", len(rep.Timeline))
	}
	for i, ev := range rep.Timeline {
		if ev.TimeNs != int64(i) {
			t.Fatalf("timeline[%d] = %+v, not time-ordered", i, ev)
		}
	}
}

func TestDropPolicyCountsRejectedEvents(t *testing.T) {
	b, err := New(Options{Ranks: 1, BufEvents: 2, MaxEvents: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		b.Append(0, int64(i), 1, "f", Enter)
	}
	rs := b.Report().Ranks[0]
	if rs.Recorded != 5 || rs.Dropped != 4 {
		t.Fatalf("recorded %d dropped %d, want 5/4", rs.Recorded, rs.Dropped)
	}
	if rs.Wrapped != 0 || rs.Wraps != 0 {
		t.Fatalf("drop policy must not wrap: %+v", rs)
	}
	// The retained records are the oldest ones (drop-newest).
	tl := b.Report().Timeline
	if tl[0].TimeNs != 0 || tl[len(tl)-1].TimeNs != 4 {
		t.Fatalf("timeline window = [%d, %d]", tl[0].TimeNs, tl[len(tl)-1].TimeNs)
	}
}

func TestWrapPolicyKeepsNewestWindow(t *testing.T) {
	b, err := New(Options{Ranks: 1, BufEvents: 2, MaxEvents: 4, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Append(0, int64(i), 1, "f", Enter)
	}
	rs := b.Report().Ranks[0]
	if rs.Recorded != 10 || rs.Dropped != 0 {
		t.Fatalf("wrap policy must accept everything: %+v", rs)
	}
	if rs.Wrapped == 0 || rs.Wraps == 0 {
		t.Fatalf("no wraps recorded: %+v", rs)
	}
	if rs.Recorded != rs.Retained+rs.Wrapped {
		t.Fatalf("accounting broken: recorded %d != retained %d + wrapped %d",
			rs.Recorded, rs.Retained, rs.Wrapped)
	}
	// The surviving window is the newest part of the trace.
	tl := b.Report().Timeline
	if tl[len(tl)-1].TimeNs != 9 {
		t.Fatalf("newest record lost: %+v", tl[len(tl)-1])
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].TimeNs < tl[i-1].TimeNs {
			t.Fatal("timeline not ordered after wrap")
		}
	}
}

func TestMergedTimelineOrdersAcrossRanks(t *testing.T) {
	b, err := New(Options{Ranks: 3, BufEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved virtual times: rank r records at r, r+3, r+6, …
	for i := 0; i < 4; i++ {
		for r := 0; r < 3; r++ {
			b.Append(r, int64(3*i+r), int32(r), "f", Enter)
		}
	}
	rep := b.Report()
	if len(rep.Timeline) != 12 {
		t.Fatalf("timeline = %d", len(rep.Timeline))
	}
	for i, ev := range rep.Timeline {
		if ev.TimeNs != int64(i) || ev.Rank != i%3 {
			t.Fatalf("timeline[%d] = %+v", i, ev)
		}
	}
	if rep.Recorded != 12 || rep.Retained != 12 {
		t.Fatalf("totals = %+v", rep)
	}
}

func TestByFuncAggregatesRetainedRecords(t *testing.T) {
	b, err := New(Options{Ranks: 2, BufEvents: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		b.Append(r, 1, 10, "hot", Enter)
		b.Append(r, 2, 10, "hot", Exit)
	}
	b.Append(0, 3, 20, "cold", Enter)
	rep := b.Report()
	if len(rep.ByFunc) != 2 {
		t.Fatalf("byfunc = %+v", rep.ByFunc)
	}
	if rep.ByFunc[0].Name != "hot" || rep.ByFunc[0].Enters != 2 || rep.ByFunc[0].Exits != 2 {
		t.Fatalf("hot = %+v", rep.ByFunc[0])
	}
	if rep.ByFunc[1].Name != "cold" || rep.ByFunc[1].Enters != 1 || rep.ByFunc[1].Exits != 0 {
		t.Fatalf("cold = %+v", rep.ByFunc[1])
	}
}

func TestWriteTextRendersAccounting(t *testing.T) {
	b, err := New(Options{Ranks: 2, BufEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	b.Append(0, 5, 1, "alpha", Enter)
	b.Append(1, 6, 1, "alpha", Exit)
	var buf bytes.Buffer
	if err := b.Report().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rank", "alpha", "total: 2 recorded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{Ranks: 0}); err == nil {
		t.Fatal("ranks 0 must fail")
	}
	b, err := New(Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Costs() == (CostModel{}) {
		t.Fatal("default cost model not applied")
	}
	if b.Ranks() != 1 {
		t.Fatal("ranks accessor")
	}
}

// TestReportConcurrentWithWriters exercises the control-plane contract: a
// report may be scraped while every rank is still appending. Run with -race.
func TestReportConcurrentWithWriters(t *testing.T) {
	const ranks, perRank = 4, 5000
	b, err := New(Options{Ranks: ranks, BufEvents: 64, MaxEvents: 1024, Wrap: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				k := Enter
				if i%2 == 1 {
					k = Exit
				}
				b.Append(rank, int64(i), int32(rank), "fn", k)
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scrapes := 0
	for {
		rep := b.Report()
		scrapes++
		// Per-shard consistency: the accounting identity holds even while
		// the shard is being written.
		for _, rs := range rep.Ranks {
			if rs.Recorded != rs.Retained+rs.Wrapped {
				t.Fatalf("mid-run shard inconsistent: %+v", rs)
			}
		}
		select {
		case <-done:
			final := b.Report()
			if got := final.Recorded + final.Dropped; got != ranks*perRank {
				t.Fatalf("recorded+dropped = %d, want %d", got, ranks*perRank)
			}
			t.Logf("%d mid-run scrapes", scrapes)
			return
		default:
		}
	}
}
