// Package trace implements the Extrae-style event-tracing substrate the
// paper's runtime feeds alongside Score-P profiles and TALP region metrics:
// instead of aggregating, every instrumentation event is recorded as a
// timestamped trace record, which stresses the dispatch hot path far harder
// than aggregation does and enables post-mortem timeline analysis.
//
// The design follows what keeps real tracers cheap per event:
//
//   - per-rank *sharded* ring buffers — each rank appends to its own shard,
//     so the enter/exit hot path takes no lock and shares no cache line
//     with other ranks (cf. redundancy-suppression tracers that keep the
//     per-event cost bounded);
//   - *batched* flush — a full ring is written out as one immutable segment
//     (the model of Extrae's buffer-to-disk flush), amortizing the flush
//     cost over BufEvents events;
//   - explicit capacity accounting — when a shard exceeds its retained
//     budget the buffer either drops new events or wraps (discards the
//     oldest segment), and both are counted, so trace completeness can be
//     asserted instead of guessed (trace-volume control à la adaptive
//     sampling monitors).
//
// Concurrency contract: a shard is single-writer. Each simulated rank is
// driven by exactly one goroutine (the same contract vtime.Clock has), so
// Append never contends with another writer. Every shard carries a small
// mutex held across one append or one snapshot, which lets Report run
// *concurrently with the writers* — the control plane scrapes a live trace
// mid-phase. A report taken mid-run is per-shard consistent (each shard is
// snapshotted atomically); shards may be observed at slightly different
// points of virtual time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"capi/internal/vtime"
)

// Kind tells whether a record is a region entry or exit.
type Kind uint8

// Enter and Exit record kinds.
const (
	Enter Kind = iota
	Exit
)

func (k Kind) String() string {
	if k == Enter {
		return "enter"
	}
	return "exit"
}

// Event is one trace record in a rank's shard.
type Event struct {
	TimeNs int64
	ID     int32
	Kind   Kind
	Name   string
}

// CostModel holds the virtual-time costs of tracing. Per-event cost is far
// below TALP's start/stop pair and Score-P's call-path upkeep — a trace
// write is a timestamp plus a buffer store — while the flush cost models
// the batched segment write-out. Costs carry the simulator's
// call-compression factor like the other backends' models.
type CostModel struct {
	// EventCost is charged per recorded event (timestamp + buffer write).
	EventCost int64
	// FlushCost is charged to the rank whose ring filled up, once per
	// flushed segment (the batched write-out stall).
	FlushCost int64
	// InitBase is the tracer's fixed start-up cost.
	InitBase int64
}

// DefaultCostModel returns costs calibrated against the other backends:
// tracing is the cheapest per event, and the flush stall is paid once per
// BufEvents events.
func DefaultCostModel() CostModel {
	return CostModel{
		EventCost: 140 * vtime.Microsecond,
		FlushCost: 2 * vtime.Millisecond,
		InitBase:  400 * vtime.Millisecond,
	}
}

// Options configures a Buffer.
type Options struct {
	// Ranks is the number of shards (one per simulated rank).
	Ranks int
	// BufEvents is the ring capacity per rank — the flush batch size.
	// Default 4096.
	BufEvents int
	// MaxEvents bounds the events *retained* per rank across flushed
	// segments and the active ring. 0 means unbounded. Eviction works at
	// segment granularity, so wrap mode may briefly hold up to one extra
	// ring beyond the budget; BufEvents is clamped to MaxEvents so the
	// excess never exceeds the budget itself.
	MaxEvents int
	// Wrap selects what happens when MaxEvents is exceeded: false drops
	// new events (counted per shard), true discards the oldest flushed
	// segment (a wrap, also counted) so the trace keeps the newest window.
	Wrap bool
	// Costs is the virtual-time cost model (zero value = defaults).
	Costs CostModel
}

// shard is one rank's private trace state. Single-writer: only the owning
// rank's goroutine may Append; see the package comment.
type shard struct {
	// mu serializes one append against one report snapshot. Writers never
	// contend with each other (single-writer), so the hot path pays an
	// uncontended lock/unlock.
	mu   sync.Mutex
	ring []Event   //capi:guardedby mu
	n    int       //capi:guardedby mu
	segs [][]Event //capi:guardedby mu

	// held counts the events currently retained (flushed segments plus the
	// active ring); recorded = held + wrapped.
	held    int64    //capi:guardedby mu
	kind    [2]int64 //capi:guardedby mu
	dropped int64    //capi:guardedby mu
	wrapped int64    //capi:guardedby mu
	wraps   int64    //capi:guardedby mu
	flushes int64    //capi:guardedby mu

	// free recycles the backing array of the most recently evicted segment
	// as the next ring, so steady-state wrap mode allocates nothing.
	free []Event //capi:guardedby mu
}

// Buffer is a sharded trace buffer: one ring per rank, flushed in batches
// into per-rank segments.
type Buffer struct {
	opts   Options
	shards []*shard
	// dropLimit is MaxEvents under the drop policy, unbounded otherwise —
	// precomputed so the hot path pays one compare.
	dropLimit int64
}

// New creates a buffer with one shard per rank.
func New(opts Options) (*Buffer, error) {
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("trace: ranks %d < 1", opts.Ranks)
	}
	if opts.BufEvents <= 0 {
		opts.BufEvents = 4096
	}
	if opts.MaxEvents > 0 && opts.BufEvents > opts.MaxEvents {
		opts.BufEvents = opts.MaxEvents
	}
	if opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCostModel()
	}
	b := &Buffer{opts: opts, dropLimit: int64(^uint64(0) >> 1)}
	if opts.MaxEvents > 0 && !opts.Wrap {
		b.dropLimit = int64(opts.MaxEvents)
	}
	for i := 0; i < opts.Ranks; i++ {
		b.shards = append(b.shards, &shard{ring: make([]Event, opts.BufEvents)})
	}
	return b, nil
}

// Costs returns the active cost model.
func (b *Buffer) Costs() CostModel { return b.opts.Costs }

// Ranks returns the number of shards.
func (b *Buffer) Ranks() int { return len(b.shards) }

// Append records one event into the rank's shard. It reports whether the
// append flushed a full ring into a segment, so the caller can charge the
// flush stall to the executing rank. Only the rank's own goroutine may call
// Append for its shard.
//
//capi:hotpath
func (b *Buffer) Append(rank int, t int64, id int32, name string, k Kind) bool {
	s := b.shards[rank]
	//capi:hotpath-ok single-writer shard lock: uncontended by contract, only a Report snapshot ever waits on it
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held >= b.dropLimit {
		s.dropped++
		return false
	}
	flushed := false
	if s.n == len(s.ring) {
		s.flush(&b.opts)
		flushed = true
	}
	s.ring[s.n] = Event{TimeNs: t, ID: id, Kind: k, Name: name}
	s.n++
	s.held++
	s.kind[k&1]++
	return flushed
}

// flush seals the active ring as an immutable segment (a pointer swap, no
// copy) and, in wrap mode, evicts the oldest segments beyond the retained
// budget — recycling an evicted backing array as the next ring, so
// steady-state tracing allocates nothing. The newest segment is never
// evicted. Callers hold s.mu; the amortized segment bookkeeping is the
// reviewed out-of-line slow path of Append.
//
//capi:coldpath
//capi:locked mu
func (s *shard) flush(opts *Options) {
	if s.n == 0 {
		return
	}
	s.segs = append(s.segs, s.ring[:s.n:s.n])
	s.n = 0
	s.flushes++
	if opts.MaxEvents > 0 && opts.Wrap {
		for s.held > int64(opts.MaxEvents) && len(s.segs) > 1 {
			old := s.segs[0]
			s.wrapped += int64(len(old))
			s.held -= int64(len(old))
			s.segs = s.segs[1:]
			s.wraps++
			if cap(old) >= opts.BufEvents {
				s.free = old[:cap(old)]
			}
		}
	}
	if s.free != nil && cap(s.free) >= opts.BufEvents {
		s.ring = s.free[:opts.BufEvents]
		s.free = nil
	} else {
		s.ring = make([]Event, opts.BufEvents)
	}
}

// retainedEvents returns the shard's surviving records in time order
// (segments are appended in order and each rank's clock is monotonic).
// Callers must hold s.mu.
//
//capi:locked mu
func (s *shard) retainedEvents() []Event {
	out := make([]Event, 0, s.held)
	for _, seg := range s.segs {
		out = append(out, seg...)
	}
	out = append(out, s.ring[:s.n]...)
	return out
}

// RankSummary is the per-rank accounting of one trace.
type RankSummary struct {
	Rank     int
	Recorded int64 // events accepted into the ring
	Retained int64 // still held after wrap eviction
	Enters   int64
	Exits    int64
	Dropped  int64 // rejected: retained budget exhausted (drop policy)
	Wrapped  int64 // discarded by wrap eviction, oldest first
	Wraps    int64 // eviction operations (whole segments)
	Flushes  int64 // ring-to-segment write-outs
}

// FuncCount aggregates the retained records of one function.
type FuncCount struct {
	ID     int32
	Name   string
	Enters int64
	Exits  int64
}

// TimelineEvent is one record of the merged, virtual-time-ordered timeline.
type TimelineEvent struct {
	TimeNs int64
	Rank   int
	ID     int32
	Kind   Kind
	Name   string
}

// Report is the end-of-run trace summary.
type Report struct {
	Ranks []RankSummary
	// Totals over all ranks.
	Recorded int64
	Retained int64
	Dropped  int64
	Wrapped  int64
	// ByFunc aggregates the *retained* records per function, sorted by
	// descending event count then ID.
	ByFunc []FuncCount
	// Timeline is the virtual-time-ordered merge of every rank's retained
	// records (ties broken by rank).
	Timeline []TimelineEvent
}

// Report builds the merged trace report. It is read-only (partial rings are
// included without flushing them) and safe to call while the writers are
// still appending: each shard is snapshotted under its lock, so a mid-run
// report is per-shard consistent — the control plane's live scrape.
func (b *Buffer) Report() *Report {
	rep := &Report{}
	perRank := make([][]Event, len(b.shards))
	for i, s := range b.shards {
		s.mu.Lock()
		perRank[i] = s.retainedEvents()
		rs := RankSummary{
			Rank:     i,
			Recorded: s.held + s.wrapped,
			Retained: int64(len(perRank[i])),
			Enters:   s.kind[Enter],
			Exits:    s.kind[Exit],
			Dropped:  s.dropped,
			Wrapped:  s.wrapped,
			Wraps:    s.wraps,
			Flushes:  s.flushes,
		}
		s.mu.Unlock()
		rep.Ranks = append(rep.Ranks, rs)
		rep.Recorded += rs.Recorded
		rep.Retained += rs.Retained
		rep.Dropped += rs.Dropped
		rep.Wrapped += rs.Wrapped
	}
	rep.Timeline = mergeTimeline(perRank)
	byFunc := map[int32]*FuncCount{}
	for _, ev := range rep.Timeline {
		fc, ok := byFunc[ev.ID]
		if !ok {
			fc = &FuncCount{ID: ev.ID, Name: ev.Name}
			byFunc[ev.ID] = fc
		}
		if ev.Kind == Enter {
			fc.Enters++
		} else {
			fc.Exits++
		}
	}
	for _, fc := range byFunc {
		rep.ByFunc = append(rep.ByFunc, *fc)
	}
	sort.Slice(rep.ByFunc, func(i, j int) bool {
		ei, ej := rep.ByFunc[i].Enters+rep.ByFunc[i].Exits, rep.ByFunc[j].Enters+rep.ByFunc[j].Exits
		if ei != ej {
			return ei > ej
		}
		return rep.ByFunc[i].ID < rep.ByFunc[j].ID
	})
	return rep
}

// mergeTimeline k-way-merges the per-rank streams (each already
// time-ordered) into one virtual-time-ordered timeline.
func mergeTimeline(perRank [][]Event) []TimelineEvent {
	total := 0
	for _, evs := range perRank {
		total += len(evs)
	}
	out := make([]TimelineEvent, 0, total)
	idx := make([]int, len(perRank))
	for len(out) < total {
		best := -1
		for r, evs := range perRank {
			if idx[r] >= len(evs) {
				continue
			}
			if best < 0 || evs[idx[r]].TimeNs < perRank[best][idx[best]].TimeNs {
				best = r
			}
		}
		ev := perRank[best][idx[best]]
		idx[best]++
		out = append(out, TimelineEvent{TimeNs: ev.TimeNs, Rank: best, ID: ev.ID, Kind: ev.Kind, Name: ev.Name})
	}
	return out
}

// WriteText renders the per-rank accounting, the hottest functions and the
// head of the merged timeline.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-5s %-10s %-10s %-9s %-9s %-7s %-8s\n",
		"rank", "recorded", "retained", "dropped", "wrapped", "wraps", "flushes"); err != nil {
		return err
	}
	for _, rs := range r.Ranks {
		if _, err := fmt.Fprintf(w, "%-5d %-10d %-10d %-9d %-9d %-7d %-8d\n",
			rs.Rank, rs.Recorded, rs.Retained, rs.Dropped, rs.Wrapped, rs.Wraps, rs.Flushes); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "total: %d recorded, %d retained, %d dropped, %d wrapped\n",
		r.Recorded, r.Retained, r.Dropped, r.Wrapped); err != nil {
		return err
	}
	for i, fc := range r.ByFunc {
		if i >= 10 {
			break
		}
		name := fc.Name
		if name == "" {
			name = fmt.Sprintf("id:%d", fc.ID)
		}
		if _, err := fmt.Fprintf(w, "  %-30s enters=%-8d exits=%-8d\n", name, fc.Enters, fc.Exits); err != nil {
			return err
		}
	}
	for i, ev := range r.Timeline {
		if i >= 10 {
			if _, err := fmt.Fprintf(w, "  … %d more timeline records\n", len(r.Timeline)-i); err != nil {
				return err
			}
			break
		}
		name := ev.Name
		if name == "" {
			name = fmt.Sprintf("id:%d", ev.ID)
		}
		if _, err := fmt.Fprintf(w, "  %s rank %d %-5s %s\n",
			vtime.FormatSeconds(ev.TimeNs), ev.Rank, ev.Kind, name); err != nil {
			return err
		}
	}
	return nil
}
