package workload

import (
	"fmt"

	"capi/internal/compiler"
	"capi/internal/exec"
	"capi/internal/mpi"
)

// RunVanilla executes a build without any instrumentation runtime and
// returns the total virtual seconds (max over ranks) — the Table II
// "vanilla" baseline. The full instrumented-run pipeline lives in
// internal/experiments; this helper serves generators' smoke tests and the
// examples.
func RunVanilla(b *compiler.Build, ranks int) (float64, error) {
	proc, err := b.LoadProcess()
	if err != nil {
		return 0, err
	}
	world, err := mpi.NewWorld(ranks, mpi.DefaultCostModel())
	if err != nil {
		return 0, err
	}
	eng, err := exec.New(exec.Config{Build: b, Proc: proc, World: world})
	if err != nil {
		return 0, err
	}
	if err := eng.Run(); err != nil {
		return 0, err
	}
	var maxSec float64
	for _, r := range world.Ranks() {
		if s := r.Clock().Seconds(); s > maxSec {
			maxSec = s
		}
	}
	if maxSec == 0 {
		return 0, fmt.Errorf("workload: run produced no virtual time")
	}
	return maxSec, nil
}
