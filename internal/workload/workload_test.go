package workload

import (
	"testing"

	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/metacg"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/prog"
)

func TestQuickstartValid(t *testing.T) {
	p := Quickstart()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumFunctions() < 30 {
		t.Fatalf("quickstart has %d functions", p.NumFunctions())
	}
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	if g.Main != "main" {
		t.Fatal("main missing")
	}
	if !g.HasEdge("exchange_halo", "MPI_Sendrecv") {
		t.Fatal("halo exchange edge missing")
	}
}

func TestQuickstartDeterministic(t *testing.T) {
	a, b := Quickstart(), Quickstart()
	if a.NumFunctions() != b.NumFunctions() {
		t.Fatal("quickstart generator not deterministic")
	}
	fa, fb := a.Functions(), b.Functions()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("function order differs at %d: %s vs %s", i, fa[i], fb[i])
		}
	}
}

func TestLuleshStructure(t *testing.T) {
	p := Lulesh(LuleshOptions{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's call graph for LULESH has 3,360 nodes.
	if got := p.NumFunctions(); got != 3360 {
		t.Fatalf("lulesh functions = %d, want 3360", got)
	}
	// Single executable, no application DSOs.
	dsos := 0
	for _, u := range p.Units() {
		if u.Kind == prog.SharedObject {
			dsos++
		}
	}
	if dsos != 0 {
		t.Fatalf("lulesh has %d DSOs, want 0", dsos)
	}
	// The leapfrog chain exists.
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	for _, e := range [][2]string{
		{"main", "LagrangeLeapFrog"},
		{"LagrangeLeapFrog", "LagrangeNodal"},
		{"LagrangeNodal", "CalcForceForNodes"},
		{"CalcForceForNodes", "CommSBN"},
		{"CommSBN", "CommSend"},
		{"CommSend", "SendPlane"},
		{"SendPlane", "MPI_Send"},
		{"CommRecv", "PostRecvPlane"},
		{"PostRecvPlane", "MPI_Irecv"},
		{"TimeIncrement", "ReduceMinDt"},
		{"ReduceMinDt", "MPI_Allreduce"},
	} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing", e)
		}
	}
}

func TestLuleshSmallGraphOption(t *testing.T) {
	p := Lulesh(LuleshOptions{CGNodes: 500, Timesteps: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.NumFunctions(); got < 200 || got > 600 {
		t.Fatalf("small lulesh = %d functions", got)
	}
}

func TestLuleshCompilesAtO3(t *testing.T) {
	p := Lulesh(LuleshOptions{CGNodes: 800, Timesteps: 3})
	b, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: LuleshOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	// Small leaf kernels are auto-inlined at -O3.
	if !b.Layout["CalcPressureForElems"].Inlined {
		t.Fatal("CalcPressureForElems should be inlined at -O3")
	}
	if b.HasSymbol("CalcPressureForElems") {
		t.Fatal("inlined exe function should lose its symbol")
	}
	// Large mids keep sleds.
	if !b.Layout["IntegrateStressForElems"].HasSleds {
		t.Fatal("IntegrateStressForElems should carry sleds")
	}
}

func TestOpenFOAMStructure(t *testing.T) {
	p := OpenFOAM(OpenFOAMOptions{Scale: 0.02, Timesteps: 2, PCGIters: 5})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Six patchable DSOs (§VI).
	dsos := 0
	for _, u := range p.Units() {
		if u.Kind == prog.SharedObject {
			dsos++
		}
	}
	if dsos != 6 {
		t.Fatalf("openfoam DSOs = %d, want 6", dsos)
	}
	// Node count scales.
	want := 8213 // 410,666 × 0.02
	got := p.NumFunctions()
	if got < want-ofModuleSize-100 || got > want+ofModuleSize+100 {
		t.Fatalf("functions = %d, want ≈ %d", got, want)
	}
	// Listing 3 chain present in the static graph.
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	for _, e := range [][2]string{
		{"Foam::fvMatrix::solve", "Foam::fvMesh::solve"},
		{"Foam::fvMesh::solve", "Foam::fvMatrix::solveSegregatedOrCoupled"},
		{"Foam::fvMatrix::solveSegregatedOrCoupled", "Foam::fvMatrix::solveSegregated"},
		{"Foam::fvMatrix::solveSegregated", "Foam::PCG::scalarSolve"},
		{"Foam::PCG::scalarSolve", "Foam::lduMatrix::Amul"},
		{"Foam::lduMatrix::sumProd", "MPI_Allreduce"},
		{"Foam::Pstream::exchange", "Foam::UOPstream::writeProcPatch"},
		{"Foam::UOPstream::writeProcPatch", "Foam::UOPstream::write"},
		{"Foam::UOPstream::write", "MPI_Send"},
		{"Foam::UIPstream::read", "MPI_Irecv"},
		// The untaken consensus-exchange branch still contributes static
		// edges (second callers for the coarse selector).
		{"Foam::Pstream::exchangeConsensus", "Foam::UOPstream::write"},
	} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v missing", e)
		}
	}
	// Virtual over-approximation: the solver base fans out to all four.
	if !g.HasEdge("Foam::fvMatrix::solveSegregated", "Foam::GAMG::scalarSolve") {
		t.Fatal("virtual over-approximation edge to GAMG missing")
	}
	// Pre-init helpers have static edges to Pstream::exchange via the
	// pointer slot, but at run time call the probe (not resolved in CG).
	if !g.HasEdge("Foam::argList::parRunSetup_00", "Foam::Pstream::exchange") {
		t.Fatal("static pointer edge missing")
	}
}

func TestOpenFOAMHiddenSymbolsScale(t *testing.T) {
	p := OpenFOAM(OpenFOAMOptions{Scale: 0.05, Timesteps: 1, PCGIters: 2})
	b, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: OpenFOAMOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	hidden := 0
	for _, im := range b.Images {
		if im.Exe || !im.Patchable {
			continue
		}
		for _, s := range im.Symbols {
			if s.Hidden && s.Kind == obj.SymFunc {
				hidden++
			}
		}
	}
	want := 72 // 1,444 × 0.05
	if hidden < want-10 || hidden > want+10 {
		t.Fatalf("hidden DSO symbols = %d, want ≈ %d", hidden, want)
	}
}

func TestOpenFOAMLargestObjectIsLibOpenFOAM(t *testing.T) {
	p := OpenFOAM(OpenFOAMOptions{Scale: 0.05, Timesteps: 1, PCGIters: 2})
	b, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: OpenFOAMOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	var largest *obj.Image
	for _, im := range b.PatchableImages() {
		if im.Exe {
			continue
		}
		if largest == nil || im.NumFuncIDs > largest.NumFuncIDs {
			largest = im
		}
	}
	if largest == nil || largest.Name != "libOpenFOAM.so" {
		t.Fatalf("largest DSO = %v", largest)
	}
}

func TestOpenFOAMRuns(t *testing.T) {
	p := OpenFOAM(OpenFOAMOptions{Scale: 0.01, Timesteps: 2, PCGIters: 4})
	b, err := compiler.Compile(p, compiler.Options{XRay: false, OptLevel: OpenFOAMOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunVanilla(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestLuleshMPISelectionShape(t *testing.T) {
	p := Lulesh(LuleshOptions{Timesteps: 2})
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	b, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: LuleshOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(g)
	res, err := eng.RunSource(`!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`, core.Options{Symbols: b})
	if err != nil {
		t.Fatal(err)
	}
	pre := res.Pre.Count()
	post := res.Selected.Count()
	// Paper: 19 pre, 12 post. Allow the generator some slack.
	if pre < 12 || pre > 30 {
		t.Fatalf("mpi pre = %d (%v)", pre, res.Pre.Names())
	}
	if post >= pre || post < 8 {
		t.Fatalf("mpi post = %d of pre %d", post, pre)
	}
	for _, want := range []string{"main", "CommSBN", "CommSend", "CommRecv"} {
		if !res.Pre.HasName(want) {
			t.Fatalf("mpi selection missing %s", want)
		}
	}
	if res.Pre.HasName("IntegrateStressForElems") {
		t.Fatal("pure compute kernel must not be in the mpi selection")
	}
}

// RunVanilla is exercised via TestOpenFOAMRuns; keep the helper here so
// examples/tests share it.
func TestRunVanillaLulesh(t *testing.T) {
	p := Lulesh(LuleshOptions{CGNodes: 600, Timesteps: 2})
	b, err := compiler.Compile(p, compiler.Options{OptLevel: LuleshOptLevel})
	if err != nil {
		t.Fatal(err)
	}
	seconds, err := RunVanilla(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seconds <= 0 {
		t.Fatal("no time elapsed")
	}
	_ = mpi.DefaultCostModel()
}
