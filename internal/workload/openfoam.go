package workload

import (
	"fmt"
	"math"

	"capi/internal/prog"
	"capi/internal/vtime"
)

// OpenFOAMOptions sizes the icoFoam / lid-driven-cavity stand-in.
type OpenFOAMOptions struct {
	// Scale multiplies the call-graph size; 1.0 reproduces the paper's
	// 410,666 nodes, 28,687 IDs in the largest object and 1,444 hidden
	// symbols. Default 0.1 (fast enough for benchmarking).
	Scale float64
	// Timesteps of the PISO loop (default 8).
	Timesteps int
	// PCGIters per linear solve (default 30).
	PCGIters int
}

func (o OpenFOAMOptions) withDefaults() OpenFOAMOptions {
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	if o.Timesteps <= 0 {
		o.Timesteps = 8
	}
	if o.PCGIters <= 0 {
		o.PCGIters = 6
	}
	return o
}

// OpenFOAMOptLevel is the optimization level the paper builds OpenFOAM
// with (-O2).
const OpenFOAMOptLevel = 2

// OpenFOAMRankSkew models the cavity case's moderate decomposition
// imbalance.
func OpenFOAMRankSkew(ranks int) []float64 {
	skew := make([]float64, ranks)
	for i := range skew {
		skew[i] = 1.0 + 0.08*float64(i%4)/3
	}
	return skew
}

// Paper-scale structural constants (at Scale == 1.0).
const (
	ofTotalNodes    = 410666
	ofHiddenSymbols = 1444
	ofPreInitFuncs  = 13 // setup helpers entered before MPI_Init (+ main + argList = 15)
)

// Per-DSO share of the padding budget. libOpenFOAM is the largest object
// (the paper reports 28,687 XRay IDs there).
var ofUnitWeights = []struct {
	name   string
	kind   prog.UnitKind
	weight float64
}{
	{"icoFoam", prog.Executable, 0.07},
	{"libOpenFOAM.so", prog.SharedObject, 0.29},
	{"libfiniteVolume.so", prog.SharedObject, 0.24},
	{"libmeshTools.so", prog.SharedObject, 0.16},
	{"libfvOptions.so", prog.SharedObject, 0.11},
	{"liblduSolvers.so", prog.SharedObject, 0.09},
	{"libPstream.so", prog.SharedObject, 0.04},
}

// module topology
const (
	ofModuleMids      = 30
	ofModuleLeaves    = 540
	ofModuleSize      = 2 + ofModuleMids + ofModuleLeaves // execute + writeState roots
	ofLeavesPerMid    = ofModuleLeaves / ofModuleMids
	ofCommModuleFrac  = 0.60  // modules whose leaves may reach Pstream
	ofAlgebraModFrac  = 0.15  // modules containing kernel-like leaves
	ofMPILeafFrac     = 0.10  // of a comm module's leaves
	ofKernelLeafFrac  = 0.25  // of an algebra module's leaves
	ofAddedCallerFrac = 0.035 // mpi leaves with an extra inline-marked caller
	ofKernelAddedFrac = 0.10  // inlined kernel leaves with an extra inline-marked caller
	// ofExecutedModules is how many plain padding modules the cavity case's
	// functionObject list actually dispatches to at run time.
	ofExecutedModules = 4
)

// OpenFOAM generates the icoFoam stand-in: solver executable, six patchable
// DSOs, the nested solve→…→Amul chain of Listing 3, a PCG solver with
// per-iteration Allreduce and processor-boundary exchanges, runtime-selected
// functionObject modules (virtual factories whose over-approximation makes
// the static graph huge while the dynamic footprint stays small), hidden
// static initializers, and pre-MPI_Init setup functions.
func OpenFOAM(opts OpenFOAMOptions) *prog.Program {
	opts = opts.withDefaults()
	b := newBuilder("openfoam-icoFoam", "main", 956416)
	for _, u := range ofUnitWeights {
		b.p.MustAddUnit(u.name, u.kind)
	}
	b.addSystemLibs(true)

	core := buildOFCore(b, opts)
	buildOFModules(b, opts, core)

	// Scale virtual work so the vanilla run lands in the paper's ballpark
	// (45.3 s, Table II). Only the executed core contributes, so the
	// calibration is independent of the call-graph Scale.
	scaleWork(b.p, openFOAMWorkScale)

	if err := b.p.Validate(); err != nil {
		//capi:panic-ok generator invariant over static inputs; cannot trip on user data
		panic(fmt.Sprintf("workload: openfoam generator invalid: %v", err))
	}
	return b.p
}

// openFOAMWorkScale calibrates the vanilla virtual runtime to Table II's
// 45.3 s (see scaleWork).
const openFOAMWorkScale = 594

// ofCore carries the handles module generation needs.
type ofCore struct {
	exchange   string   // Pstream exchange entry (MPI path anchor)
	foBase     string   // virtual base for functionObject::execute
	workers    []string // executed field-operation workers (libOpenFOAM)
	namedCount int
}

// buildOFCore creates the executed solver skeleton and returns its handles.
func buildOFCore(b *builder, opts OpenFOAMOptions) *ofCore {
	c := &ofCore{}
	exe := "icoFoam"
	lofoam := "libOpenFOAM.so"
	lfv := "libfiniteVolume.so"
	lldu := "liblduSolvers.so"
	lps := "libPstream.so"
	count := 0
	fn := func(f *prog.Function) *prog.Function {
		count++
		return b.fn(f)
	}

	// --- Pstream communication chain (libPstream) ---
	//
	// exchange talks to every processor neighbour: it posts the
	// non-blocking receives, streams the send buffers out and completes
	// the receives with a Waitall — the heavily executed comm core that
	// makes the `mpi` IC expensive to instrument (§VI-C).
	const ofNeighbours = 6
	fn(&prog.Function{Name: "Foam::UOPstream::write", Unit: lps, TU: "UOPstream.C", Statements: 24,
		Ops: []prog.Op{prog.Work(3 * vtime.Microsecond), prog.MPICall("MPI_Send", 4096)}})
	fn(&prog.Function{Name: "Foam::UIPstream::read", Unit: lps, TU: "UIPstream.C", Statements: 22,
		Ops: []prog.Op{prog.Work(2 * vtime.Microsecond), prog.MPICall("MPI_Irecv", 4096)}})
	fn(&prog.Function{Name: "Foam::PstreamBuffers::finishedSends", Unit: lps, TU: "PstreamBuffers.C", Statements: 14,
		Ops: []prog.Op{prog.Work(1 * vtime.Microsecond)}})
	fn(&prog.Function{Name: "Foam::UOPstream::writeProcPatch", Unit: lps, TU: "UOPstream.C", Statements: 14,
		Ops: []prog.Op{prog.Work(800), prog.Call("Foam::UOPstream::write", 1)}})
	fn(&prog.Function{Name: "Foam::UIPstream::readProcPatch", Unit: lps, TU: "UIPstream.C", Statements: 12,
		Ops: []prog.Op{prog.Work(600), prog.Call("Foam::UIPstream::read", 1)}})
	c.exchange = "Foam::Pstream::exchange"
	exchangeOps := make([]prog.Op, 0, 2*ofNeighbours+2)
	for n := 0; n < ofNeighbours; n++ {
		exchangeOps = append(exchangeOps, prog.Call("Foam::UIPstream::readProcPatch", 1))
	}
	for n := 0; n < ofNeighbours; n++ {
		exchangeOps = append(exchangeOps, prog.Call("Foam::UOPstream::writeProcPatch", 1))
	}
	exchangeOps = append(exchangeOps,
		prog.Call("Foam::PstreamBuffers::finishedSends", 1),
		prog.MPICall("MPI_Waitall", 0),
	)
	fn(&prog.Function{Name: c.exchange, Unit: lps, TU: "exchange.C", Statements: 30, Ops: exchangeOps})
	// The consensus-exchange variant (NBX) is compiled in but not taken by
	// the cavity case: a second static caller for the per-patch helpers,
	// which is why the coarse selector keeps them (they are hotspots).
	fn(&prog.Function{Name: "Foam::Pstream::exchangeConsensus", Unit: lps, TU: "exchange.C", Statements: 26,
		Ops: []prog.Op{
			prog.Work(2 * vtime.Microsecond),
			prog.StaticCall("Foam::UIPstream::readProcPatch"),
			prog.StaticCall("Foam::UOPstream::writeProcPatch"),
			prog.StaticCall("Foam::UOPstream::write"),
			prog.StaticCall("Foam::UIPstream::read"),
			prog.StaticCall("Foam::PstreamBuffers::finishedSends"),
		}})
	fn(&prog.Function{Name: "Foam::UPstream::init", Unit: lps, TU: "UPstream.C", Statements: 20,
		Ops: []prog.Op{prog.Work(5 * vtime.Microsecond), prog.MPICall("MPI_Init", 0)}})
	// The no-op runtime target of the pre-init comms setup (the static
	// pointer slot points at exchange; at run time nothing is sent).
	fn(&prog.Function{Name: "Foam::UPstream::commsProbe", Unit: lps, TU: "UPstream.C", Statements: 12,
		Ops: []prog.Op{prog.Work(400)}})
	b.p.RegisterPointerTarget("of::commsSlot", c.exchange, true)

	// --- executed field workers (libOpenFOAM) ---
	nWorkers := 160
	c.workers = make([]string, nWorkers)
	for i := range c.workers {
		c.workers[i] = fmt.Sprintf("Foam::Field_op_%03d", i)
		fn(&prog.Function{
			Name: c.workers[i], Unit: lofoam, TU: "Field.C",
			Statements: b.between(12, 22), Flops: b.between(2, 8), LoopDepth: i % 2,
			Ops: []prog.Op{prog.Work(int64(b.between(700, 1100)))},
		})
	}
	workerCalls := func(start, n, reps int) []prog.Op {
		var ops []prog.Op
		for k := 0; k < n; k++ {
			ops = append(ops, prog.Call(c.workers[(start+k)%len(c.workers)], reps))
		}
		return ops
	}

	// --- PCG internals (liblduSolvers) ---
	amulOps := []prog.Op{prog.Work(14 * vtime.Microsecond)}
	amulOps = append(amulOps, workerCalls(0, 6, 4)...)
	amulOps = append(amulOps, prog.Call("Foam::processorFvPatchField::updateInterfaceMatrix", 1))
	fn(&prog.Function{Name: "Foam::lduMatrix::Amul", Unit: lldu, TU: "lduMatrixATmul.C",
		Statements: 42, Flops: 90, LoopDepth: 2, Cyclomatic: 6, Ops: amulOps})
	fn(&prog.Function{Name: "Foam::lduMatrix::sumProd", Unit: lldu, TU: "lduMatrixOps.C",
		Statements: 16, Flops: 24, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(4 * vtime.Microsecond), prog.MPICall("MPI_Allreduce", 8)}})
	precondOps := []prog.Op{prog.Work(10 * vtime.Microsecond)}
	precondOps = append(precondOps, workerCalls(6, 4, 4)...)
	fn(&prog.Function{Name: "Foam::DICPreconditioner::precondition", Unit: lldu, TU: "DICPreconditioner.C",
		Statements: 30, Flops: 48, LoopDepth: 2, Ops: precondOps})
	fn(&prog.Function{Name: "Foam::lduMatrix::solver::normFactor", Unit: lldu, TU: "lduMatrixSolver.C",
		Statements: 18, Flops: 14, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(5 * vtime.Microsecond), prog.MPICall("MPI_Allreduce", 8)}})

	// The processor-boundary interface update (libfiniteVolume).
	fn(&prog.Function{Name: "Foam::processorFvPatchField::updateInterfaceMatrix", Unit: lfv, TU: "processorFvPatchField.C",
		Statements: 26, Ops: []prog.Op{prog.Work(2 * vtime.Microsecond), prog.Call(c.exchange, 1)}})

	// PCG scalarSolve: the iteration loop.
	scalarOps := []prog.Op{prog.Call("Foam::lduMatrix::solver::normFactor", 1)}
	for it := 0; it < opts.PCGIters; it++ {
		scalarOps = append(scalarOps,
			prog.Call("Foam::lduMatrix::Amul", 1),
			prog.Call("Foam::lduMatrix::sumProd", 1),
			prog.Call("Foam::DICPreconditioner::precondition", 1),
		)
	}
	fn(&prog.Function{Name: "Foam::PCG::scalarSolve", Unit: lldu, TU: "PCG.C",
		Statements: 60, Flops: 30, LoopDepth: 1, Cyclomatic: 8, Ops: scalarOps})
	// Alternative solvers: registered virtual implementations that the
	// static graph over-approximates to, but the cavity case never runs.
	// They share the matrix kernels with PCG — the second static caller
	// that makes the coarse selector retain Amul & friends as hotspots.
	for _, alt := range []string{"Foam::PBiCG::scalarSolve", "Foam::smoothSolver::scalarSolve", "Foam::GAMG::scalarSolve"} {
		altOps := []prog.Op{prog.Work(20 * vtime.Microsecond)}
		altOps = append(altOps, workerCalls(10, 4, 2)...)
		altOps = append(altOps,
			prog.Call("Foam::lduMatrix::Amul", 2),
			prog.Call("Foam::lduMatrix::sumProd", 2),
			prog.Call("Foam::DICPreconditioner::precondition", 1),
			prog.Call("Foam::lduMatrix::solver::normFactor", 1),
		)
		fn(&prog.Function{Name: alt, Unit: lldu, TU: "solvers.C",
			Statements: 55, Flops: 40, LoopDepth: 2, Virtual: true, Ops: altOps})
	}
	vbase := "Foam::lduMatrix::solver::scalarSolve"
	b.p.RegisterVirtual(vbase, "Foam::PCG::scalarSolve")
	for _, alt := range []string{"Foam::PBiCG::scalarSolve", "Foam::smoothSolver::scalarSolve", "Foam::GAMG::scalarSolve"} {
		b.p.RegisterVirtual(vbase, alt)
	}

	// --- the Listing 3 solve chain (thin vague-linkage wrappers) ---
	fn(&prog.Function{Name: "Foam::fvMatrix::solveSegregated", Unit: lfv, TU: "fvMatrixSolve.C",
		Statements: 6, VagueLinkage: true,
		Ops: []prog.Op{prog.VCallTo(vbase, "Foam::PCG::scalarSolve", 1)}})
	fn(&prog.Function{Name: "Foam::fvMatrix::solveSegregatedOrCoupled", Unit: lfv, TU: "fvMatrixSolve.C",
		Statements: 5, VagueLinkage: true,
		Ops: []prog.Op{prog.Call("Foam::fvMatrix::solveSegregated", 1)}})
	fn(&prog.Function{Name: "Foam::fvMesh::solve", Unit: lfv, TU: "fvMesh.C",
		Statements: 6, VagueLinkage: true, Virtual: true,
		Ops: []prog.Op{prog.Call("Foam::fvMatrix::solveSegregatedOrCoupled", 1)}})
	fn(&prog.Function{Name: "Foam::fvMatrix::solve", Unit: lfv, TU: "fvMatrixSolve.C",
		Statements: 28, Cyclomatic: 4,
		Ops: []prog.Op{prog.Work(6 * vtime.Microsecond), prog.Call("Foam::fvMesh::solve", 1)}})

	// --- matrix assembly (libfiniteVolume) ---
	assemble := func(name string, start int) {
		ops := []prog.Op{prog.Work(8 * vtime.Microsecond)}
		ops = append(ops, workerCalls(start, 12, 20)...)
		fn(&prog.Function{Name: name, Unit: lfv, TU: "fvm.C",
			Statements: 36, Flops: 8, LoopDepth: 2, Ops: ops})
	}
	assemble("Foam::fvm::ddt", 20)
	assemble("Foam::fvm::div", 40)
	assemble("Foam::fvm::laplacian", 60)
	assemble("Foam::fvc::grad", 80)
	assemble("Foam::fvc::flux", 100)

	// --- boundary evaluation chain (deep, on the MPI path, no kernels) ---
	prev := c.exchange
	for i := 7; i >= 0; i-- {
		name := fmt.Sprintf("Foam::GeometricBoundaryField::evaluate_L%d", i)
		fn(&prog.Function{Name: name, Unit: lfv, TU: "GeometricBoundaryField.C",
			Statements: b.between(12, 20),
			Ops:        []prog.Op{prog.Work(1500), prog.Call(prev, 1)}})
		prev = name
	}
	boundaryOps := []prog.Op{prog.Work(3 * vtime.Microsecond)}
	for i := 0; i < 8; i++ {
		boundaryOps = append(boundaryOps, prog.Call(prev, 1))
	}
	fn(&prog.Function{Name: "Foam::volVectorField::correctBoundaryConditions", Unit: lfv, TU: "volFields.C",
		Statements: 24, Ops: boundaryOps})

	// --- functionObjects (virtual factory; module roots join this base) ---
	c.foBase = "Foam::functionObject::execute"
	foOps := []prog.Op{prog.Work(4 * vtime.Microsecond)}
	foOps = append(foOps, workerCalls(120, 6, 2)...)
	foOps = append(foOps, prog.MPICall("MPI_Allreduce", 16), prog.MPICall("MPI_Allreduce", 16))
	fn(&prog.Function{Name: "Foam::fieldMinMax::execute", Unit: "libfvOptions.so", TU: "fieldMinMax.C",
		Statements: 34, Virtual: true, Ops: foOps})
	b.p.RegisterVirtual(c.foBase, "Foam::fieldMinMax::execute")
	fn(&prog.Function{Name: "Foam::functionObjectList::execute", Unit: lofoam, TU: "functionObjectList.C",
		Statements: 20,
		Ops:        []prog.Op{prog.VCallTo(c.foBase, "Foam::fieldMinMax::execute", 1)}})

	// --- setup: argList with pre-MPI_Init helpers (§VI-B(b)) ---
	var argOps []prog.Op
	for i := 0; i < ofPreInitFuncs; i++ {
		name := fmt.Sprintf("Foam::argList::parRunSetup_%02d", i)
		fn(&prog.Function{Name: name, Unit: lofoam, TU: "argList.C",
			Statements: b.between(12, 20),
			Ops: []prog.Op{
				prog.Work(2 * vtime.Microsecond),
				// Static pointer edge to Pstream::exchange (so the mpi
				// selection picks these up), but the runtime target is a
				// harmless probe: nothing is sent before MPI_Init.
				prog.PtrCallTo("of::commsSlot", "Foam::UPstream::commsProbe", 1),
			}})
		argOps = append(argOps, prog.Call(name, 1))
	}
	argOps = append(argOps, prog.Call("Foam::UPstream::init", 1))
	fn(&prog.Function{Name: "Foam::argList::argList", Unit: lofoam, TU: "argList.C",
		Statements: 44, Cyclomatic: 7, Ops: argOps})

	fn(&prog.Function{Name: "Foam::Time::Time", Unit: lofoam, TU: "Time.C", Statements: 30,
		Ops: []prog.Op{prog.Work(20 * vtime.Microsecond), prog.Call("fopen", 2), prog.Call("fread", 4)}})
	meshOps := []prog.Op{prog.Work(120 * vtime.Microsecond)}
	meshOps = append(meshOps, workerCalls(130, 8, 3)...)
	fn(&prog.Function{Name: "Foam::fvMesh::fvMesh", Unit: lfv, TU: "fvMesh.C", Statements: 46, Ops: meshOps})
	fieldOps := []prog.Op{prog.Work(60 * vtime.Microsecond)}
	fieldOps = append(fieldOps, workerCalls(140, 10, 5)...)
	fn(&prog.Function{Name: "createFields", Unit: exe, TU: "createFields.H", Statements: 40, Ops: fieldOps})
	courantOps := []prog.Op{prog.Work(5 * vtime.Microsecond)}
	courantOps = append(courantOps, workerCalls(60, 6, 3)...)
	courantOps = append(courantOps, prog.MPICall("MPI_Allreduce", 8))
	fn(&prog.Function{Name: "CourantNo", Unit: exe, TU: "CourantNo.H", Statements: 22, Flops: 10, LoopDepth: 1, Ops: courantOps})
	writeOps := []prog.Op{prog.Work(80 * vtime.Microsecond), prog.Call("fwrite", 24), prog.Call("fprintf", 6)}
	fn(&prog.Function{Name: "Foam::Time::writeNow", Unit: lofoam, TU: "Time.C", Statements: 26, Ops: writeOps})

	// UEqn / pEqn phases.
	ueqnOps := []prog.Op{
		prog.Call("Foam::fvm::ddt", 1),
		prog.Call("Foam::fvm::div", 1),
		prog.Call("Foam::fvm::laplacian", 1),
		prog.Call("Foam::fvMatrix::solve", 1),
		prog.Call("Foam::volVectorField::correctBoundaryConditions", 2),
	}
	fn(&prog.Function{Name: "solveUEqn", Unit: exe, TU: "icoFoam.C", Statements: 26, Ops: ueqnOps})
	peqnOps := []prog.Op{
		prog.Call("Foam::fvc::grad", 1),
		prog.Call("Foam::fvc::flux", 1),
		prog.Call("Foam::fvm::laplacian", 1),
		prog.Call("Foam::fvMatrix::solve", 1),
		prog.Call("Foam::volVectorField::correctBoundaryConditions", 3),
	}
	fn(&prog.Function{Name: "solvePEqn", Unit: exe, TU: "icoFoam.C", Statements: 32, Ops: peqnOps})

	mainOps := []prog.Op{
		prog.Call("Foam::argList::argList", 1),
		prog.Call("Foam::Time::Time", 1),
		prog.Call("Foam::fvMesh::fvMesh", 1),
		prog.Call("createFields", 1),
	}
	for step := 0; step < opts.Timesteps; step++ {
		mainOps = append(mainOps,
			prog.Call("CourantNo", 1),
			prog.Call("solveUEqn", 1),
			prog.Call("solvePEqn", 2), // PISO correctors
			prog.Call("Foam::functionObjectList::execute", 1),
		)
		if step%4 == 3 {
			mainOps = append(mainOps, prog.Call("Foam::Time::writeNow", 1))
		}
	}
	mainOps = append(mainOps, prog.MPICall("MPI_Finalize", 0))
	fn(&prog.Function{Name: "main", Unit: exe, TU: "icoFoam.C", Statements: 64, Cyclomatic: 9, Ops: mainOps})

	c.namedCount = count
	return c
}

// buildOFModules generates the padding modules, hidden static initializers
// and hidden helpers that bring the program to its target size.
func buildOFModules(b *builder, opts OpenFOAMOptions, c *ofCore) {
	total := int(math.Round(ofTotalNodes * opts.Scale))
	systemCount := len(mpiFunctions) + len(libcFunctions) + 12
	budget := total - systemCount - c.namedCount
	if budget < 0 {
		budget = 0
	}
	hiddenTotal := int(math.Round(ofHiddenSymbols * opts.Scale))
	hiddenInits := hiddenTotal * 85 / 100
	hiddenHelpers := hiddenTotal - hiddenInits
	budget -= hiddenTotal
	if budget < 0 {
		budget = 0
	}

	// Hidden static initializers, spread over the DSOs (run at load time).
	dsoNames := make([]string, 0, 6)
	for _, u := range ofUnitWeights {
		if u.kind == prog.SharedObject {
			dsoNames = append(dsoNames, u.name)
		}
	}
	for i := 0; i < hiddenInits; i++ {
		unit := dsoNames[i%len(dsoNames)]
		b.fn(&prog.Function{
			Name: fmt.Sprintf("_GLOBAL__sub_I_%s_%04d", unit[:len(unit)-3], i),
			Unit: unit, TU: "staticInit", Statements: b.between(8, 18),
			StaticInit: true, Visibility: prog.Hidden,
			Ops: []prog.Op{prog.Work(int64(b.between(1000, 3000)))},
		})
	}

	// Padding modules per unit.
	hiddenLeft := hiddenHelpers
	var plainRoots []string
	for _, u := range ofUnitWeights {
		unitBudget := int(float64(budget) * u.weight)
		modules := unitBudget / ofModuleSize
		filler := unitBudget - modules*ofModuleSize
		for m := 0; m < modules; m++ {
			// Hidden helpers are a DSO phenomenon (§VI-B(a)): executable
			// modules must not consume the budget.
			avail := 0
			if u.kind == prog.SharedObject {
				avail = hiddenLeft
			}
			left, root, plain := buildOFModule(b, c, u.name, m, avail)
			if u.kind == prog.SharedObject {
				hiddenLeft = left
			}
			if plain {
				plainRoots = append(plainRoots, root)
			}
		}
		// Remainder: plain template filler.
		for i := 0; i < filler; i++ {
			b.fn(&prog.Function{
				Name: fmt.Sprintf("Foam::%s::filler_%05d", unitTag(u.name), i),
				Unit: u.name, TU: "templates.H",
				Statements: b.between(1, 4), Inline: true, SystemHeader: i%2 == 0, VagueLinkage: true,
				Ops: []prog.Op{prog.Work(5)},
			})
		}
	}

	// Hidden helpers that did not find a home inside a module's cold leaves
	// become standalone DSO-local utilities, keeping the hidden-symbol
	// count at the §VI-B(a) target independent of the leaf mix.
	for i := 0; hiddenLeft > 0; i++ {
		unit := dsoNames[i%len(dsoNames)]
		b.fn(&prog.Function{
			Name: fmt.Sprintf("Foam::%s::__detail_%04d", unitTag(unit), i),
			Unit: unit, TU: "detail.C", Statements: b.between(10, 25),
			Visibility: prog.Hidden,
			Ops:        []prog.Op{prog.Work(int64(b.between(500, 2000)))},
		})
		hiddenLeft--
	}

	// The cavity case's controlDict enables a handful of functionObjects at
	// run time: functionObjectList::execute dispatches to them through the
	// factory. They contribute the bulk of the "full instrumentation only"
	// event volume (none of them is on an MPI or kernel path).
	fol := b.p.Func("Foam::functionObjectList::execute")
	for i := 0; i < ofExecutedModules && i < len(plainRoots); i++ {
		fol.Ops = append(fol.Ops, prog.VCallTo(c.foBase, plainRoots[i], 1))
	}
}

// unitTag shortens a unit name for symbol generation.
func unitTag(unit string) string {
	tag := unit
	if len(tag) > 3 && tag[:3] == "lib" {
		tag = tag[3:]
	}
	for i := 0; i < len(tag); i++ {
		if tag[i] == '.' {
			return tag[:i]
		}
	}
	return tag
}

// buildOFModule generates one runtime-selectable module: a virtual root
// (registered as a functionObject implementation, making it statically
// reachable from the main loop through the factory over-approximation),
// 30 mid-level functions and 540 leaves of mixed character. It returns the
// remaining hidden-helper budget, the execute-root name and whether the
// module is "plain" (neither comm nor algebra) — plain modules are the
// candidates for runtime execution.
func buildOFModule(b *builder, c *ofCore, unit string, idx int, hiddenLeft int) (int, string, bool) {
	tag := fmt.Sprintf("Foam::%s::mod%03d", unitTag(unit), idx)
	isComm := b.rng.Float64() < ofCommModuleFrac
	isAlgebra := b.rng.Float64() < ofAlgebraModFrac

	// Leaves first (so mids can call them).
	leafNames := make([]string, 0, ofModuleLeaves)
	var inlineMarked []string
	var mpiLeaves []string
	var kernelLeaves []string
	for i := 0; i < ofModuleLeaves; i++ {
		name := fmt.Sprintf("%s::leaf_%03d", tag, i)
		leafNames = append(leafNames, name)
		f := &prog.Function{Name: name, Unit: unit, TU: tag + ".C",
			Ops: []prog.Op{prog.Work(int64(b.between(100, 600)))}}
		r := b.rng.Float64()
		switch {
		case isComm && r < ofMPILeafFrac:
			// On the MPI path; vague-linkage and small → inlined away.
			f.Statements = b.between(3, 6)
			f.VagueLinkage = true
			f.Ops = append(f.Ops, prog.Call(c.exchange, 1))
			mpiLeaves = append(mpiLeaves, name)
		case isAlgebra && r < ofMPILeafFrac+ofKernelLeafFrac:
			// Kernel-like: flops + loops. 75% are small template bodies
			// that the -O2 build inlines away.
			f.Flops = b.between(12, 80)
			f.LoopDepth = 1 + b.rng.Intn(2)
			f.Cyclomatic = b.between(2, 6)
			if b.rng.Float64() < 0.75 {
				f.Statements = b.between(4, 6)
				f.VagueLinkage = true
				kernelLeaves = append(kernelLeaves, name)
			} else {
				f.Statements = b.between(14, 28)
			}
		case r < 0.45:
			// System-header template tinies.
			f.Statements = b.between(1, 4)
			f.Inline = true
			f.SystemHeader = true
			f.VagueLinkage = true
		case r < 0.79:
			// Accessor-style vague tinies (auto-inlined, no symbol).
			f.Statements = b.between(2, 5)
			f.VagueLinkage = true
		case r < 0.85:
			// Explicitly inline-marked header utilities: excluded from
			// selection by inlineSpecified, but their out-of-line copy
			// (and symbol) survives in the DSO — the compensation pass
			// can land on them (#added).
			f.Statements = b.between(2, 5)
			f.Inline = true
			inlineMarked = append(inlineMarked, name)
		case r < 0.90:
			// Worker-style leaves (emitted).
			f.Statements = b.between(12, 22)
			f.Flops = b.between(2, 8)
			f.LoopDepth = b.rng.Intn(2)
		default:
			// Cold code (emitted).
			f.Statements = b.between(15, 35)
			f.Cyclomatic = b.between(2, 8)
			if hiddenLeft > 0 && b.rng.Float64() < 0.10 {
				f.Visibility = prog.Hidden
				hiddenLeft--
			}
		}
		b.fn(f)
	}

	// Mids: each owns a contiguous leaf range; 55% of leaves get a second
	// caller (a neighbouring mid), so the coarse selector keeps them.
	midNames := make([]string, 0, ofModuleMids)
	for m := 0; m < ofModuleMids; m++ {
		name := fmt.Sprintf("%s::mid_%02d", tag, m)
		midNames = append(midNames, name)
		ops := []prog.Op{prog.Work(int64(b.between(1000, 4000)))}
		for l := 0; l < ofLeavesPerMid; l++ {
			ops = append(ops, prog.Call(leafNames[m*ofLeavesPerMid+l], 1))
		}
		// Shared helpers from the neighbouring mid's range.
		next := (m + 1) % ofModuleMids
		for l := 0; l < ofLeavesPerMid; l++ {
			if b.rng.Float64() < 0.55 {
				ops = append(ops, prog.Call(leafNames[next*ofLeavesPerMid+l], 1))
			}
		}
		b.fn(&prog.Function{
			Name: name, Unit: unit, TU: tag + ".C",
			Statements: b.between(16, 30), Cyclomatic: b.between(3, 9),
			Ops: ops,
		})
	}

	// Extra inline-marked callers for a slice of the MPI and kernel leaves
	// (#added): inline-marked utilities are excluded from the selection by
	// inlineSpecified but keep their out-of-line DSO symbol, so the
	// compensation pass lands on them when the leaf itself was inlined.
	addExtraCallers := func(leaves []string, frac float64) {
		if len(inlineMarked) == 0 {
			return
		}
		for i, leaf := range leaves {
			if b.rng.Float64() < frac {
				caller := b.p.Func(inlineMarked[i%len(inlineMarked)])
				caller.Ops = append(caller.Ops, prog.Call(leaf, 1))
			}
		}
	}
	addExtraCallers(mpiLeaves, ofAddedCallerFrac)
	addExtraCallers(kernelLeaves, ofKernelAddedFrac)

	// Root: virtual functionObject implementation calling all mids.
	rootName := tag + "::execute"
	rootOps := []prog.Op{prog.Work(int64(b.between(2000, 5000)))}
	for _, mid := range midNames {
		rootOps = append(rootOps, prog.Call(mid, 1))
	}
	b.fn(&prog.Function{
		Name: rootName, Unit: unit, TU: tag + ".C",
		Statements: b.between(18, 34), Virtual: true, Cyclomatic: 5,
		Ops: rootOps,
	})
	b.p.RegisterVirtual(c.foBase, rootName)

	// Second virtual root (write/state dump path): statically it calls most
	// of the mids, giving them a second caller — the reason the paper's
	// coarse selection still retains the bulk of the symbol-bearing
	// functions. The remaining single-caller mids are collapsed by the
	// coarse selector and later re-added by the inlining compensation when
	// they were the first symbol-bearing caller of an inlined selected
	// function (#added grows under coarse, Table I).
	writeName := tag + "::writeState"
	writeOps := []prog.Op{prog.Work(int64(b.between(1000, 3000)))}
	for m, mid := range midNames {
		if m%5 != 4 { // every fifth mid stays single-caller
			writeOps = append(writeOps, prog.Call(mid, 1))
		}
	}
	b.fn(&prog.Function{
		Name: writeName, Unit: unit, TU: tag + ".C",
		Statements: b.between(14, 24), Virtual: true, Cyclomatic: 3,
		Ops: writeOps,
	})
	b.p.RegisterVirtual(c.foBase, writeName)
	return hiddenLeft, rootName, !isComm && !isAlgebra
}
