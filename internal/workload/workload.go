// Package workload generates the synthetic applications standing in for the
// paper's two evaluation cases (§VI): the LULESH proxy app (small, no DSOs,
// 3,360 call-graph nodes) and an OpenFOAM-style icoFoam solver (modular,
// six patchable DSOs, 410,666 call-graph nodes at scale 1.0, deep
// single-caller solve chains, virtual factories and hidden static
// initializers). Generators are deterministic: the same options always
// produce the identical program.
package workload

import (
	"fmt"
	"math/rand"

	"capi/internal/prog"
)

// mpiFunctions are the MPI API entry points declared in the (non-patchable)
// MPI system library.
var mpiFunctions = []string{
	"MPI_Init", "MPI_Finalize", "MPI_Barrier", "MPI_Allreduce", "MPI_Reduce",
	"MPI_Bcast", "MPI_Allgather", "MPI_Send", "MPI_Recv", "MPI_Irecv",
	"MPI_Sendrecv", "MPI_Waitall", "MPI_Comm_size", "MPI_Comm_rank",
}

// libcFunctions are representative libc entry points (targets of cold and
// setup code paths).
var libcFunctions = []string{
	"malloc", "free", "calloc", "realloc", "memcpy", "memset", "memmove",
	"printf", "fprintf", "snprintf", "puts", "fopen", "fclose", "fread",
	"fwrite", "strcmp", "strncmp", "strlen", "strcpy", "qsort", "exit",
	"abort", "getenv", "gettimeofday", "sqrt", "cbrt", "fabs", "pow",
	"exp", "log",
}

// builder wraps a program under construction with deterministic randomness.
type builder struct {
	p   *prog.Program
	rng *rand.Rand
}

func newBuilder(name, main string, seed int64) *builder {
	return &builder{p: prog.New(name, main), rng: rand.New(rand.NewSource(seed))}
}

// fn adds a function, panicking on generator bugs (duplicate names etc.).
func (b *builder) fn(f *prog.Function) *prog.Function { return b.p.MustAddFunc(f) }

// addSystemLibs declares libmpi and libc (and optionally libstdc++).
func (b *builder) addSystemLibs(cpp bool) {
	b.p.MustAddUnit("libmpi.so.40", prog.SystemLibrary)
	for _, name := range mpiFunctions {
		b.fn(&prog.Function{
			Name: name, Unit: "libmpi.so.40", TU: "mpi.h",
			Statements: 6, SystemHeader: true,
		})
	}
	b.p.MustAddUnit("libc.so.6", prog.SystemLibrary)
	for _, name := range libcFunctions {
		b.fn(&prog.Function{
			Name: name, Unit: "libc.so.6", TU: "libc",
			Statements: 8, SystemHeader: true,
		})
	}
	if cpp {
		b.p.MustAddUnit("libstdc++.so.6", prog.SystemLibrary)
		for i := 0; i < 12; i++ {
			b.fn(&prog.Function{
				Name: fmt.Sprintf("std::__cxx_rt_%02d", i), Unit: "libstdc++.so.6",
				TU: "libstdc++", Statements: 10, SystemHeader: true,
			})
		}
	}
}

// between returns a deterministic value in [lo, hi].
func (b *builder) between(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + b.rng.Intn(hi-lo+1)
}

// scaleWork multiplies every OpWork duration in the program by factor. The
// generators express relative work in compact units and scale the totals to
// the paper's wall-clock ballpark at the end; one simulated call stands in
// for many real invocations, so per-call work (and the measurement
// backends' per-event costs) are inflated by the same compression factor,
// preserving the overhead ratios Table II reports.
func scaleWork(p *prog.Program, factor float64) {
	if factor <= 0 || factor == 1 {
		return
	}
	for _, name := range p.Functions() {
		f := p.Func(name)
		for i := range f.Ops {
			if f.Ops[i].Kind == prog.OpWork {
				f.Ops[i].Work = int64(float64(f.Ops[i].Work) * factor)
			}
		}
	}
}

// Quickstart returns a ~35-function miniature MPI application used by the
// quickstart example and smoke tests: main → init phase → timestep loop
// with two kernels, a halo exchange and a residual allreduce.
func Quickstart() *prog.Program {
	b := newBuilder("quickstart", "main", 11)
	b.p.MustAddUnit("quickstart.exe", prog.Executable)
	b.addSystemLibs(false)
	exe := "quickstart.exe"

	b.fn(&prog.Function{Name: "parse_args", Unit: exe, TU: "setup.c", Statements: 18,
		Ops: []prog.Op{prog.Work(20000), prog.Call("getenv", 2)}})
	b.fn(&prog.Function{Name: "allocate_grid", Unit: exe, TU: "setup.c", Statements: 22,
		Ops: []prog.Op{prog.Work(50000), prog.Call("malloc", 4)}})
	b.fn(&prog.Function{Name: "init_grid", Unit: exe, TU: "setup.c", Statements: 30, LoopDepth: 2, Flops: 8,
		Ops: []prog.Op{prog.Work(200000)}})

	// Small inline helpers (auto-inlined; invisible at run time).
	for i := 0; i < 8; i++ {
		b.fn(&prog.Function{
			Name: fmt.Sprintf("idx_%d", i), Unit: exe, TU: "grid.h",
			Statements: 2, Inline: true, VagueLinkage: true,
			Ops: []prog.Op{prog.Work(5)},
		})
	}
	b.fn(&prog.Function{Name: "stencil_kernel", Unit: exe, TU: "kernels.c",
		Statements: 45, Flops: 60, LoopDepth: 3, Cyclomatic: 6,
		Ops: []prog.Op{prog.Work(400000), prog.Call("idx_0", 4), prog.Call("idx_1", 4)}})
	b.fn(&prog.Function{Name: "flux_kernel", Unit: exe, TU: "kernels.c",
		Statements: 38, Flops: 40, LoopDepth: 2, Cyclomatic: 4,
		Ops: []prog.Op{prog.Work(300000), prog.Call("idx_2", 4)}})
	b.fn(&prog.Function{Name: "pack_halo", Unit: exe, TU: "comm.c", Statements: 8,
		Ops: []prog.Op{prog.Work(15000)}})
	b.fn(&prog.Function{Name: "unpack_halo", Unit: exe, TU: "comm.c", Statements: 8,
		Ops: []prog.Op{prog.Work(15000)}})
	b.fn(&prog.Function{Name: "exchange_halo", Unit: exe, TU: "comm.c", Statements: 26,
		Ops: []prog.Op{
			prog.Call("pack_halo", 1),
			prog.MPICall("MPI_Sendrecv", 4096),
			prog.Call("unpack_halo", 1),
		}})
	b.fn(&prog.Function{Name: "compute_residual", Unit: exe, TU: "solver.c",
		Statements: 20, Flops: 12, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(80000), prog.MPICall("MPI_Allreduce", 8)}})
	b.fn(&prog.Function{Name: "write_output", Unit: exe, TU: "io.c", Statements: 25,
		Ops: []prog.Op{prog.Work(100000), prog.Call("fwrite", 8), prog.Call("fprintf", 2)}})

	mainOps := []prog.Op{
		prog.Call("parse_args", 1),
		prog.MPICall("MPI_Init", 0),
		prog.Call("allocate_grid", 1),
		prog.Call("init_grid", 1),
	}
	for step := 0; step < 25; step++ {
		mainOps = append(mainOps,
			prog.Call("stencil_kernel", 2),
			prog.Call("flux_kernel", 1),
			prog.Call("exchange_halo", 1),
			prog.Call("compute_residual", 1),
		)
	}
	mainOps = append(mainOps,
		prog.Call("write_output", 1),
		prog.MPICall("MPI_Finalize", 0),
	)
	b.fn(&prog.Function{Name: "main", Unit: exe, TU: "main.c", Statements: 60, Ops: mainOps})

	if err := b.p.Validate(); err != nil {
		//capi:panic-ok generator invariant over static inputs; cannot trip on user data
		panic(fmt.Sprintf("workload: quickstart generator invalid: %v", err))
	}
	return b.p
}
