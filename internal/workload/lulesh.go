package workload

import (
	"fmt"

	"capi/internal/prog"
	"capi/internal/vtime"
)

// LuleshOptions sizes the LULESH proxy-app generator.
type LuleshOptions struct {
	// Timesteps of the Lagrange leapfrog loop (default 60).
	Timesteps int
	// CGNodes is the target whole-program call-graph size; the paper's
	// MetaCG graph for LULESH has 3,360 nodes (default).
	CGNodes int
}

func (o LuleshOptions) withDefaults() LuleshOptions {
	if o.Timesteps <= 0 {
		o.Timesteps = 60
	}
	if o.CGNodes <= 0 {
		o.CGNodes = 3360
	}
	return o
}

// LuleshOptLevel is the optimization level the paper builds LULESH with
// (-O3), which controls the auto-inlining threshold.
const LuleshOptLevel = 3

// LuleshRankSkew returns a mild per-rank load imbalance (LULESH is well
// balanced; a few percent keeps the POP metrics non-trivial).
func LuleshRankSkew(ranks int) []float64 {
	skew := make([]float64, ranks)
	for i := range skew {
		skew[i] = 1.0 + 0.03*float64(i%3)/2
	}
	return skew
}

// luleshMid describes one mid-level kernel: its metadata and which leaf
// kernels it drives.
type luleshMid struct {
	name   string
	stmts  int
	flops  int
	loops  int
	leaves []string
	reps   int // invocations of each leaf per call
}

// Lulesh generates the LULESH 2.0 stand-in: a single statically linked
// executable (no DSOs), the Lagrange leapfrog call tree with its
// communication functions (CommSBN, CommSyncPosVel, CommMonoQ), small
// frequently executed element kernels that the -O3 build inlines away, and
// enough template/accessor padding to reach the paper's 3,360 call-graph
// nodes.
func Lulesh(opts LuleshOptions) *prog.Program {
	opts = opts.withDefaults()
	b := newBuilder("lulesh", "main", 2023)
	exe := "lulesh2.0"
	b.p.MustAddUnit(exe, prog.Executable)
	b.addSystemLibs(false)

	// --- leaf kernels: small (auto-inlined at -O3), flops-heavy, loops ---
	leafKernels := []struct {
		name  string
		stmts int
		flops int
	}{
		{"CalcElemShapeFunctionDerivatives", 10, 48},
		{"CalcElemNodeNormals", 9, 32},
		{"SumElemStressesToNodeForces", 8, 24},
		{"CalcElemVolumeDerivative", 9, 40},
		{"CalcElemFBHourglassForce", 10, 56},
		{"CalcElemVelocityGradient", 9, 36},
		{"CalcElemCharacteristicLength", 8, 28},
		{"AreaFace", 7, 16},
		{"CalcElemVolume", 9, 44},
		{"VoluDer", 6, 18},
		{"CalcPressureForElems", 8, 14},
		{"CalcSoundSpeedForElems", 9, 12},
	}

	// --- padding pools ---
	named := 56 + len(mpiFunctions) + len(libcFunctions)
	workerCount := 300
	coldCount := 200
	templateCount := 1600
	accessorCount := opts.CGNodes - named - workerCount - coldCount - templateCount
	if accessorCount < 0 {
		// Tiny graphs for tests: shrink pools proportionally.
		avail := opts.CGNodes - named
		if avail < 40 {
			avail = 40
		}
		workerCount = avail * 2 / 10
		coldCount = avail / 10
		templateCount = avail * 4 / 10
		accessorCount = avail - workerCount - coldCount - templateCount
	}

	accessors := make([]string, accessorCount)
	for i := range accessors {
		accessors[i] = fmt.Sprintf("Domain::acc_%04d", i)
		b.fn(&prog.Function{
			Name: accessors[i], Unit: exe, TU: "lulesh.h",
			Statements: b.between(1, 3), Inline: true, VagueLinkage: true,
			Ops: []prog.Op{prog.Work(8)},
		})
	}
	templates := make([]string, templateCount)
	for i := range templates {
		templates[i] = fmt.Sprintf("std::__tmpl_%04d", i)
		b.fn(&prog.Function{
			Name: templates[i], Unit: exe, TU: "vector.h",
			Statements: b.between(1, 4), Inline: true, SystemHeader: true, VagueLinkage: true,
			Ops: []prog.Op{prog.Work(5)},
		})
	}
	accAt := func(i, n int) []prog.Op {
		var ops []prog.Op
		for k := 0; k < n; k++ {
			ops = append(ops, prog.Call(accessors[(i+k)%len(accessors)], 2))
		}
		return ops
	}
	workers := make([]string, workerCount)
	for i := range workers {
		workers[i] = fmt.Sprintf("CalcWork_%03d", i)
		ops := []prog.Op{prog.Work(1200)}
		ops = append(ops, accAt(i*2, 1)...)
		ops = append(ops, prog.Call(templates[i%len(templates)], 1))
		b.fn(&prog.Function{
			Name: workers[i], Unit: exe, TU: "lulesh.cc",
			Statements: b.between(12, 24), Flops: b.between(2, 8), LoopDepth: i % 2,
			Ops: ops,
		})
	}
	cold := make([]string, coldCount)
	for i := range cold {
		cold[i] = fmt.Sprintf("util_cold_%03d", i)
		ops := []prog.Op{prog.Work(int64(b.between(500, 4000)))}
		ops = append(ops, prog.Call(libcFunctions[i%len(libcFunctions)], 1))
		ops = append(ops, prog.Call(templates[(i*7)%len(templates)], 1))
		ops = append(ops, accAt(i*5, 1)...)
		b.fn(&prog.Function{
			Name: cold[i], Unit: exe, TU: "lulesh-util.cc",
			Statements: b.between(12, 40), Cyclomatic: b.between(2, 9),
			Ops: ops,
		})
	}

	// --- leaf kernels (after accessors exist) ---
	for i, lk := range leafKernels {
		ops := []prog.Op{prog.Work(2 * vtime.Microsecond)}
		ops = append(ops, accAt(i*11, 2)...)
		b.fn(&prog.Function{
			Name: lk.name, Unit: exe, TU: "lulesh.cc",
			Statements: lk.stmts, Flops: lk.flops, LoopDepth: 1 + i%2, Cyclomatic: 3,
			Ops: ops,
		})
	}

	// --- mid-level kernels ---
	mids := []luleshMid{
		{"IntegrateStressForElems", 46, 40, 2, []string{"CalcElemShapeFunctionDerivatives", "CalcElemNodeNormals", "SumElemStressesToNodeForces"}, 14},
		{"CalcHourglassControlForElems", 38, 25, 2, []string{"CalcElemVolumeDerivative"}, 12},
		{"CalcFBHourglassForceForElems", 52, 60, 2, []string{"CalcElemFBHourglassForce"}, 16},
		{"CalcLagrangeElements", 30, 18, 1, []string{"CalcElemVelocityGradient", "CalcElemCharacteristicLength"}, 10},
		{"CalcKinematicsForElems", 34, 30, 2, []string{"CalcElemVolume", "AreaFace"}, 12},
		{"CalcMonotonicQGradientsForElems", 9, 22, 1, []string{"VoluDer"}, 8},
		{"CalcMonotonicQRegionForElems", 10, 26, 1, nil, 0},
		{"EvalEOSForElems", 10, 16, 1, nil, 0},
		{"CalcEnergyForElems", 28, 34, 1, []string{"CalcPressureForElems", "CalcSoundSpeedForElems"}, 6},
		{"UpdateVolumesForElems", 7, 12, 1, nil, 0},
		{"CalcCourantConstraintForElems", 9, 14, 1, nil, 0},
		{"CalcHydroConstraintForElems", 9, 13, 1, nil, 0},
	}
	for i, m := range mids {
		ops := []prog.Op{prog.Work(30 * vtime.Microsecond)}
		for _, leaf := range m.leaves {
			ops = append(ops, prog.Call(leaf, m.reps))
		}
		for w := 0; w < 4; w++ {
			ops = append(ops, prog.Call(workers[(i*4+w)%len(workers)], 3))
		}
		ops = append(ops, accAt(i*17, 4)...)
		b.fn(&prog.Function{
			Name: m.name, Unit: exe, TU: "lulesh.cc",
			Statements: m.stmts, Flops: m.flops, LoopDepth: m.loops, Cyclomatic: 5,
			Ops: ops,
		})
	}

	// --- communication ---
	smallHelper := func(name string, stmts int) {
		b.fn(&prog.Function{
			Name: name, Unit: exe, TU: "lulesh-comm.cc",
			Statements: stmts, Ops: []prog.Op{prog.Work(600)},
		})
	}
	smallHelper("PackField", 5)
	smallHelper("UnpackField", 6)
	smallHelper("CommGetMsgCount", 4)
	smallHelper("CommBufferSize", 4)

	// Small per-neighbour wrappers around the actual MPI calls. They are
	// *not* marked inline, so the selection pipeline keeps them, but their
	// bodies are below the -O3 auto-inline limit: the compiler folds them
	// into CommSend/CommRecv/TimeIncrement and drops their symbols. These
	// are the functions the inlining-compensation pass removes again —
	// the paper's lulesh/mpi row shrinks from 19 pre to 12 post this way.
	mpiWrapper := func(name string, stmts int, op prog.Op) {
		b.fn(&prog.Function{
			Name: name, Unit: exe, TU: "lulesh-comm.cc",
			Statements: stmts, Ops: []prog.Op{prog.Work(300), op},
		})
	}
	mpiWrapper("SendPlane", 6, prog.MPICall("MPI_Send", 16384))
	mpiWrapper("SendEdge", 5, prog.MPICall("MPI_Send", 2048))
	mpiWrapper("SendCorner", 4, prog.MPICall("MPI_Send", 64))
	mpiWrapper("PostRecvPlane", 5, prog.MPICall("MPI_Irecv", 16384))
	mpiWrapper("PostRecvEdge", 4, prog.MPICall("MPI_Irecv", 2048))
	mpiWrapper("PostRecvCorner", 4, prog.MPICall("MPI_Irecv", 64))
	mpiWrapper("ReduceMinDt", 5, prog.MPICall("MPI_Allreduce", 8))

	b.fn(&prog.Function{Name: "CommSend", Unit: exe, TU: "lulesh-comm.cc", Statements: 34,
		Ops: []prog.Op{
			prog.Call("PackField", 2), prog.Call("CommBufferSize", 1),
			prog.Work(8 * vtime.Microsecond),
			prog.Call("SendPlane", 1), prog.Call("SendEdge", 1), prog.Call("SendCorner", 1),
		}})
	// CommRecv posts the non-blocking receives; the Comm* drivers complete
	// them with MPI_Waitall after the sends went out (the LULESH pattern —
	// a blocking receive-before-send would deadlock all ranks).
	b.fn(&prog.Function{Name: "CommRecv", Unit: exe, TU: "lulesh-comm.cc", Statements: 28,
		Ops: []prog.Op{
			prog.Call("CommBufferSize", 1), prog.Work(4 * vtime.Microsecond),
			prog.Call("PostRecvPlane", 1), prog.Call("PostRecvEdge", 1), prog.Call("PostRecvCorner", 1),
		}})
	commFn := func(name string, extra []prog.Op) {
		ops := []prog.Op{prog.Call("CommGetMsgCount", 1), prog.Call("CommRecv", 1), prog.Call("CommSend", 1)}
		ops = append(ops, extra...)
		ops = append(ops, prog.MPICall("MPI_Waitall", 0))
		ops = append(ops, prog.Call("UnpackField", 2), prog.Work(6*vtime.Microsecond))
		b.fn(&prog.Function{Name: name, Unit: exe, TU: "lulesh-comm.cc", Statements: 40, Ops: ops})
	}
	commFn("CommSBN", nil)
	commFn("CommSyncPosVel", nil)
	commFn("CommMonoQ", nil)

	// --- drivers ---
	b.fn(&prog.Function{Name: "TimeIncrement", Unit: exe, TU: "lulesh.cc", Statements: 24,
		Ops: []prog.Op{prog.Work(2 * vtime.Microsecond), prog.Call("ReduceMinDt", 1)}})
	b.fn(&prog.Function{Name: "CalcForceForNodes", Unit: exe, TU: "lulesh.cc", Statements: 26,
		Ops: []prog.Op{prog.Call("CalcVolumeForceForElems", 1), prog.Call("CommSBN", 1)}})
	b.fn(&prog.Function{Name: "CalcVolumeForceForElems", Unit: exe, TU: "lulesh.cc", Statements: 30,
		Ops: []prog.Op{prog.Call("IntegrateStressForElems", 1), prog.Call("CalcHourglassControlForElems", 1)}})
	// Hourglass control drives the FB force kernel.
	hgc := b.p.Func("CalcHourglassControlForElems")
	hgc.Ops = append(hgc.Ops, prog.Call("CalcFBHourglassForceForElems", 1))
	// The Comm* drivers appear at two call sites each: the executed one and
	// a guarded (statically present, dynamically untaken) one — LULESH
	// conditionally repeats exchanges for some decompositions. The second
	// static caller is what lets the coarse selector retain them — the
	// paper's lulesh "mpi coarse" IC is exactly {main, the three Comm*
	// drivers, CommSend, CommRecv}.
	b.fn(&prog.Function{Name: "LagrangeNodal", Unit: exe, TU: "lulesh.cc", Statements: 32,
		Ops: []prog.Op{prog.Call("CalcForceForNodes", 1), prog.StaticCall("CommSBN"), prog.Work(10 * vtime.Microsecond), prog.Call("CommSyncPosVel", 1)}})
	b.fn(&prog.Function{Name: "CalcQForElems", Unit: exe, TU: "lulesh.cc", Statements: 22,
		Ops: []prog.Op{
			prog.Call("CalcMonotonicQGradientsForElems", 1),
			prog.Call("CalcMonotonicQRegionForElems", 1),
			prog.Call("CommMonoQ", 1),
		}})
	b.fn(&prog.Function{Name: "ApplyMaterialPropertiesForElems", Unit: exe, TU: "lulesh.cc", Statements: 20,
		Ops: []prog.Op{prog.Call("EvalEOSForElems", 2)}})
	eos := b.p.Func("EvalEOSForElems")
	eos.Ops = append(eos.Ops, prog.Call("CalcEnergyForElems", 2))
	b.fn(&prog.Function{Name: "LagrangeElements", Unit: exe, TU: "lulesh.cc", Statements: 28,
		Ops: []prog.Op{
			prog.Call("CalcLagrangeElements", 1),
			prog.Call("CalcQForElems", 1),
			prog.StaticCall("CommMonoQ"),
			prog.Call("ApplyMaterialPropertiesForElems", 1),
			prog.Call("UpdateVolumesForElems", 1),
		}})
	cle := b.p.Func("CalcLagrangeElements")
	cle.Ops = append(cle.Ops, prog.Call("CalcKinematicsForElems", 1))
	b.fn(&prog.Function{Name: "CalcTimeConstraintsForElems", Unit: exe, TU: "lulesh.cc", Statements: 18,
		Ops: []prog.Op{prog.Call("CalcCourantConstraintForElems", 1), prog.Call("CalcHydroConstraintForElems", 1)}})
	b.fn(&prog.Function{Name: "LagrangeLeapFrog", Unit: exe, TU: "lulesh.cc", Statements: 26,
		Ops: []prog.Op{
			prog.Call("LagrangeNodal", 1),
			prog.Call("LagrangeElements", 1),
			prog.StaticCall("CommSyncPosVel"),
			prog.Call("CalcTimeConstraintsForElems", 1),
		}})

	// --- setup / teardown ---
	setup := func(name string, ncold, start int) {
		var ops []prog.Op
		ops = append(ops, prog.Work(50*vtime.Microsecond))
		for i := 0; i < ncold; i++ {
			ops = append(ops, prog.Call(cold[(start+i)%len(cold)], 1))
		}
		b.fn(&prog.Function{Name: name, Unit: exe, TU: "lulesh-init.cc", Statements: 40, Ops: ops})
	}
	setup("ParseCommandLineOptions", 10, 0)
	setup("PrintCommandLineOptions", 15, 10)
	setup("InitMeshDecomp", 30, 25)
	setup("BuildMesh", 60, 55)
	setup("SetupCommBuffers", 40, 115)
	setup("VerifyAndWriteFinalOutput", 45, 155)

	// --- main ---
	mainOps := []prog.Op{
		prog.Call("ParseCommandLineOptions", 1),
		prog.MPICall("MPI_Init", 0),
		prog.Call("InitMeshDecomp", 1),
		prog.Call("BuildMesh", 1),
		prog.Call("SetupCommBuffers", 1),
		prog.Call("PrintCommandLineOptions", 1),
	}
	for step := 0; step < opts.Timesteps; step++ {
		mainOps = append(mainOps,
			prog.Call("TimeIncrement", 1),
			prog.Call("LagrangeLeapFrog", 1),
		)
	}
	mainOps = append(mainOps,
		prog.Call("VerifyAndWriteFinalOutput", 1),
		prog.MPICall("MPI_Finalize", 0),
	)
	b.fn(&prog.Function{Name: "main", Unit: exe, TU: "lulesh.cc", Statements: 70, Cyclomatic: 10, Ops: mainOps})

	// Scale virtual work so the vanilla run lands in the paper's ballpark
	// (34.01 s on the Lichtenberg-2 node, Table II).
	scaleWork(b.p, luleshWorkScale)

	if err := b.p.Validate(); err != nil {
		//capi:panic-ok generator invariant over static inputs; cannot trip on user data
		panic(fmt.Sprintf("workload: lulesh generator invalid: %v", err))
	}
	return b.p
}

// luleshWorkScale calibrates the vanilla virtual runtime to Table II's
// 34.01 s (see scaleWork).
const luleshWorkScale = 475
