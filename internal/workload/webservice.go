package workload

import (
	"fmt"

	"capi/internal/prog"
)

// Endpoint describes one route of the simulated web service: the handler
// function rooting its instrumented call tree, its share of the traffic
// mix, and the lognormal shape of its per-request work multiplier. The
// middleware package serves these routes over net/http, drawing a
// multiplier per request (median exp(LatMu), spread LatSigma) and scaling
// the handler tree's OpWork durations by it — fixed call counts, variable
// work, the classic web-latency shape where the instrumentation cost per
// request is constant while the useful work has a heavy tail.
type Endpoint struct {
	// Route is the net/http mux pattern ("GET /api/feed").
	Route string
	// Handler names the root function of the endpoint's call tree.
	Handler string
	// Weight is the endpoint's relative share of generated traffic.
	Weight int
	// LatMu and LatSigma parameterize the lognormal work multiplier:
	// multiplier = exp(LatMu + LatSigma·N(0,1)).
	LatMu, LatSigma float64
}

// WebserviceEndpoints returns the route table of the Webservice program.
// Order is fixed (hot endpoints first) and the handler names match the
// generated functions exactly.
func WebserviceEndpoints() []Endpoint {
	return []Endpoint{
		{Route: "GET /api/feed", Handler: "handle_get_feed", Weight: 35, LatSigma: 0.55},
		{Route: "GET /api/users/{id}", Handler: "handle_get_user", Weight: 25, LatSigma: 0.50},
		{Route: "POST /api/orders", Handler: "handle_create_order", Weight: 15, LatSigma: 0.45},
		{Route: "GET /api/search", Handler: "handle_search", Weight: 10, LatSigma: 0.60},
		{Route: "GET /api/assets/{id}", Handler: "handle_get_asset", Weight: 10, LatSigma: 0.50},
		{Route: "GET /healthz", Handler: "handle_healthz", Weight: 5, LatSigma: 0.20},
	}
}

// Webservice returns the request-serving workload: a ~60-function web
// service with the endpoint mix of WebserviceEndpoints. The hot endpoints
// (feed, search) call tiny leaf functions in tight loops — item scoring,
// feed rendering, row decoding — so full instrumentation costs about as
// much as the useful work, exactly the shape the SLO-driven adapt ladder
// exists to narrow. The cold endpoints (healthz, assets) are cheap and
// shallow. Work values are virtual nanoseconds per call; one simulated
// call stands in for many real invocations, like the HPC generators.
func Webservice() *prog.Program {
	b := newBuilder("webservice", "main", 23)
	b.p.MustAddUnit("webservice.exe", prog.Executable)
	b.addSystemLibs(false)
	exe := "webservice.exe"

	// Tiny hot leaves: called from loops, low duration, high event count —
	// the functions the SLO controller demotes and deselects first.
	b.fn(&prog.Function{Name: "cache_key", Unit: exe, TU: "cache.c", Statements: 3, Inline: false,
		Ops: []prog.Op{prog.Work(200)}})
	b.fn(&prog.Function{Name: "json_field", Unit: exe, TU: "json.c", Statements: 4,
		Ops: []prog.Op{prog.Work(250)}})
	b.fn(&prog.Function{Name: "row_decode", Unit: exe, TU: "db.c", Statements: 10,
		Ops: []prog.Op{prog.Work(700)}})
	b.fn(&prog.Function{Name: "score_item", Unit: exe, TU: "rank.c", Statements: 12, Flops: 9,
		Ops: []prog.Op{prog.Work(900)}})
	b.fn(&prog.Function{Name: "render_feed_item", Unit: exe, TU: "feed.c", Statements: 16,
		Ops: []prog.Op{prog.Work(1200), prog.Call("json_field", 2)}})
	b.fn(&prog.Function{Name: "hash_token", Unit: exe, TU: "auth.c", Statements: 8, Flops: 4,
		Ops: []prog.Op{prog.Work(1500)}})

	// Shared infrastructure tier.
	b.fn(&prog.Function{Name: "cache_get", Unit: exe, TU: "cache.c", Statements: 14,
		Ops: []prog.Op{prog.Work(1800), prog.Call("cache_key", 1)}})
	b.fn(&prog.Function{Name: "cache_put", Unit: exe, TU: "cache.c", Statements: 15,
		Ops: []prog.Op{prog.Work(2400), prog.Call("cache_key", 1)}})
	b.fn(&prog.Function{Name: "sql_parse", Unit: exe, TU: "db.c", Statements: 30, Cyclomatic: 8,
		Ops: []prog.Op{prog.Work(3500)}})
	b.fn(&prog.Function{Name: "db_query", Unit: exe, TU: "db.c", Statements: 26,
		Ops: []prog.Op{prog.Work(12000), prog.Call("sql_parse", 1), prog.Call("row_decode", 16)}})
	b.fn(&prog.Function{Name: "db_exec", Unit: exe, TU: "db.c", Statements: 22,
		Ops: []prog.Op{prog.Work(9000), prog.Call("sql_parse", 1)}})
	b.fn(&prog.Function{Name: "session_lookup", Unit: exe, TU: "auth.c", Statements: 12,
		Ops: []prog.Op{prog.Work(2500), prog.Call("cache_get", 1)}})
	b.fn(&prog.Function{Name: "authenticate", Unit: exe, TU: "auth.c", Statements: 20, Cyclomatic: 5,
		Ops: []prog.Op{prog.Work(2000), prog.Call("hash_token", 1), prog.Call("session_lookup", 1)}})
	b.fn(&prog.Function{Name: "rate_limit_check", Unit: exe, TU: "middleware.c", Statements: 9,
		Ops: []prog.Op{prog.Work(700), prog.Call("cache_key", 1)}})
	b.fn(&prog.Function{Name: "validate_input", Unit: exe, TU: "middleware.c", Statements: 24, Cyclomatic: 7,
		Ops: []prog.Op{prog.Work(4000)}})
	b.fn(&prog.Function{Name: "json_decode", Unit: exe, TU: "json.c", Statements: 28,
		Ops: []prog.Op{prog.Work(5000)}})
	b.fn(&prog.Function{Name: "json_encode", Unit: exe, TU: "json.c", Statements: 26,
		Ops: []prog.Op{prog.Work(7000), prog.Call("json_field", 8)}})
	b.fn(&prog.Function{Name: "compress_body", Unit: exe, TU: "middleware.c", Statements: 18, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(15000)}})
	b.fn(&prog.Function{Name: "log_request", Unit: exe, TU: "obs.c", Statements: 10,
		Ops: []prog.Op{prog.Work(1200)}})
	b.fn(&prog.Function{Name: "record_metrics", Unit: exe, TU: "obs.c", Statements: 7,
		Ops: []prog.Op{prog.Work(500)}})
	b.fn(&prog.Function{Name: "index_scan", Unit: exe, TU: "search.c", Statements: 40, LoopDepth: 2, Flops: 20,
		Ops: []prog.Op{prog.Work(35000)}})
	b.fn(&prog.Function{Name: "rank_results", Unit: exe, TU: "rank.c", Statements: 20, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(6000), prog.Call("score_item", 256)}})

	// Endpoint handlers — the per-route instrumented call trees.
	b.fn(&prog.Function{Name: "handle_healthz", Unit: exe, TU: "handlers.c", Statements: 6,
		Ops: []prog.Op{prog.Work(800), prog.Call("record_metrics", 1)}})
	b.fn(&prog.Function{Name: "handle_get_asset", Unit: exe, TU: "handlers.c", Statements: 15,
		Ops: []prog.Op{
			prog.Work(2000), prog.Call("rate_limit_check", 1), prog.Call("cache_get", 1),
			prog.Call("compress_body", 1), prog.Call("log_request", 1), prog.Call("record_metrics", 1),
		}})
	b.fn(&prog.Function{Name: "handle_get_user", Unit: exe, TU: "handlers.c", Statements: 24,
		Ops: []prog.Op{
			prog.Work(3000), prog.Call("rate_limit_check", 1), prog.Call("authenticate", 1),
			prog.Call("cache_get", 1), prog.Call("db_query", 1), prog.Call("json_encode", 1),
			prog.Call("log_request", 1), prog.Call("record_metrics", 1),
		}})
	b.fn(&prog.Function{Name: "handle_create_order", Unit: exe, TU: "handlers.c", Statements: 34, Cyclomatic: 9,
		Ops: []prog.Op{
			prog.Work(4000), prog.Call("rate_limit_check", 1), prog.Call("authenticate", 1),
			prog.Call("json_decode", 1), prog.Call("validate_input", 1), prog.Call("db_exec", 3),
			prog.Call("cache_put", 1), prog.Call("json_encode", 1),
			prog.Call("log_request", 1), prog.Call("record_metrics", 1),
		}})
	b.fn(&prog.Function{Name: "handle_search", Unit: exe, TU: "handlers.c", Statements: 30,
		Ops: []prog.Op{
			prog.Work(5000), prog.Call("rate_limit_check", 1), prog.Call("authenticate", 1),
			prog.Call("json_decode", 1), prog.Call("index_scan", 1), prog.Call("rank_results", 1),
			prog.Call("json_encode", 1), prog.Call("compress_body", 1),
			prog.Call("log_request", 1), prog.Call("record_metrics", 1),
		}})
	b.fn(&prog.Function{Name: "handle_get_feed", Unit: exe, TU: "handlers.c", Statements: 40,
		Ops: []prog.Op{
			prog.Work(6000), prog.Call("rate_limit_check", 1), prog.Call("authenticate", 1),
			prog.Call("cache_get", 2), prog.Call("db_query", 2), prog.Call("rank_results", 1),
			prog.Call("render_feed_item", 96), prog.Call("json_encode", 1),
			prog.Call("compress_body", 1), prog.Call("log_request", 1), prog.Call("record_metrics", 1),
		}})

	// Setup and the phase driver: main replays the endpoint mix in the
	// WebserviceEndpoints weights, so an ordinary Instance.Run exercises
	// the same trees HTTP traffic does. One allreduce per wave stands in
	// for metric aggregation across replicas (gives TALP an MPI region).
	b.fn(&prog.Function{Name: "parse_config", Unit: exe, TU: "setup.c", Statements: 16,
		Ops: []prog.Op{prog.Work(20000), prog.Call("getenv", 3)}})
	b.fn(&prog.Function{Name: "warm_caches", Unit: exe, TU: "setup.c", Statements: 14, LoopDepth: 1,
		Ops: []prog.Op{prog.Work(60000), prog.Call("cache_put", 8)}})
	b.fn(&prog.Function{Name: "sync_metrics", Unit: exe, TU: "obs.c", Statements: 9,
		Ops: []prog.Op{prog.Work(1000), prog.MPICall("MPI_Allreduce", 64)}})

	mainOps := []prog.Op{
		prog.Call("parse_config", 1),
		prog.MPICall("MPI_Init", 0),
		prog.Call("warm_caches", 1),
	}
	for wave := 0; wave < 8; wave++ {
		for _, ep := range WebserviceEndpoints() {
			mainOps = append(mainOps, prog.Call(ep.Handler, (ep.Weight+9)/10))
		}
		mainOps = append(mainOps, prog.Call("sync_metrics", 1))
	}
	mainOps = append(mainOps, prog.MPICall("MPI_Finalize", 0))
	b.fn(&prog.Function{Name: "main", Unit: exe, TU: "main.c", Statements: 50, Ops: mainOps})

	if err := b.p.Validate(); err != nil {
		//capi:panic-ok generator invariant over static inputs; cannot trip on user data
		panic(fmt.Sprintf("workload: webservice generator invalid: %v", err))
	}
	return b.p
}
