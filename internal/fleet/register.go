package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Heartbeat self-registers a member with a fleet coordinator and keeps
// re-registering every interval until ctx is canceled. It POSTs once
// immediately, then on the tick; transitions between reachable and
// unreachable are reported once through logf (never per-beat, so a
// coordinator outage does not flood the member's log). Intended to run as
// one goroutine inside capi-serve's -fleet mode; it never terminates the
// process — losing the coordinator only stops the member from being
// steered fleet-wide, the local control plane keeps working.
func Heartbeat(ctx context.Context, fleetURL string, reg RegisterRequest, interval time.Duration, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	body, err := json.Marshal(reg)
	if err != nil {
		logf("fleet heartbeat disabled: encoding registration: %v", err)
		return
	}
	url := fleetURL + "/v1/fleet/register"
	client := &http.Client{}

	beat := func() error {
		bctx, cancel := context.WithTimeout(ctx, DefaultTimeout)
		defer cancel()
		req, err := http.NewRequestWithContext(bctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes)) //nolint:errcheck // drain for reuse
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("coordinator returned status %d", resp.StatusCode)
		}
		return nil
	}

	reachable := false
	report := func(err error) {
		if err == nil && !reachable {
			reachable = true
			logf("registered with fleet coordinator %s", fleetURL)
		} else if err != nil && reachable {
			reachable = false
			logf("fleet coordinator %s unreachable: %v (will keep retrying)", fleetURL, err)
		}
	}
	err = beat()
	if err != nil {
		// First beat failed: say so once even though we were never
		// reachable, so a misconfigured -fleet URL is visible immediately.
		logf("fleet registration with %s failed: %v (will keep retrying)", fleetURL, err)
	}
	report(err)

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			report(beat())
		}
	}
}
