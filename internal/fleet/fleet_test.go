package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	capi "capi"
	"capi/internal/ctl"
	"capi/internal/fleet"
	"capi/internal/pop"
)

const wideSpec = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`

// fastOpts keeps fan-out failure paths quick under test: one retry with
// millisecond backoff instead of the production defaults, and a TTL long
// enough that nothing is evicted unless a test heartbeats deliberately
// (eviction timing has its own test).
func fastOpts() fleet.Options {
	return fleet.Options{
		TTL:           10 * time.Minute,
		Timeout:       2 * time.Second,
		Retries:       1,
		Backoff:       2 * time.Millisecond,
		ProbeInterval: -1, // probe timing is not under test here
	}
}

// testMember is one in-process capi-serve: a live quickstart instance
// behind its own control plane.
type testMember struct {
	ts   *httptest.Server
	cp   *ctl.Server
	inst *capi.Instance
}

// URL is the member's base URL.
func (m *testMember) URL() string { return m.ts.URL }

// kill stops the member the way a process death looks from outside:
// every open connection (including the coordinator's SSE tail) drops and
// the port stops answering. Safe to call twice — t.Cleanup kills
// survivors.
func (m *testMember) kill() {
	m.cp.Shutdown() // unblocks streaming handlers so Close can drain
	m.ts.Close()
}

// newQuickstart builds one live quickstart instance.
func newQuickstart(t *testing.T, ranks int) (*capi.Session, *capi.Instance) {
	t.Helper()
	session, err := capi.NewSession(capi.Quickstart(), capi.SessionOptions{OptLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := session.Select(wideSpec)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := session.Start(sel, capi.RunOptions{Backend: capi.BackendTALP, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return session, inst
}

func newMember(t *testing.T, ranks int) *testMember {
	t.Helper()
	session, inst := newQuickstart(t, ranks)
	cp := ctl.New(session, inst, "quickstart")
	m := &testMember{ts: httptest.NewServer(cp), cp: cp, inst: inst}
	t.Cleanup(m.kill)
	return m
}

// newCoordinator mounts a fleet server over httptest and registers it for
// cleanup.
func newCoordinator(t *testing.T, opts fleet.Options) (*fleet.Server, *httptest.Server) {
	t.Helper()
	coord, err := fleet.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	return coord, ts
}

func register(t *testing.T, coordURL, memberURL, name string) fleet.RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(fleet.RegisterRequest{URL: memberURL, Name: name, App: "quickstart"})
	resp, err := http.Post(coordURL+"/v1/fleet/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", name, resp.StatusCode)
	}
	var rr fleet.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return rr
}

// post POSTs and decodes without asserting the status code (fan-out
// responses encode partial failure in it).
func post(t *testing.T, url, ctype, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, ctype, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp.StatusCode
}

// memberTALP decodes one member's /v1/report TALP document into per-region
// rank times — the ground truth the fleet merge must reproduce.
func memberTALP(t *testing.T, memberURL string) map[string][]pop.RankTimes {
	t.Helper()
	var rep ctl.ReportResponse
	if code := get(t, memberURL+"/v1/report", &rep); code != http.StatusOK {
		t.Fatalf("member report: status %d", code)
	}
	entry, ok := rep.Reports["talp"]
	if !ok {
		t.Fatalf("member report has no talp entry (backends: %v)", rep.Backends)
	}
	var doc struct {
		Regions []struct {
			Name    string `json:"name"`
			PerRank []struct {
				UsefulNs int64 `json:"usefulNs"`
				MPINs    int64 `json:"mpiNs"`
			} `json:"perRank"`
		} `json:"regions"`
	}
	if err := json.Unmarshal(entry.Report, &doc); err != nil {
		t.Fatal(err)
	}
	out := map[string][]pop.RankTimes{}
	for _, reg := range doc.Regions {
		set := make([]pop.RankTimes, len(reg.PerRank))
		for i, rt := range reg.PerRank {
			set[i] = pop.RankTimes{Useful: rt.UsefulNs, MPI: rt.MPINs}
		}
		out[reg.Name] = set
	}
	return out
}

// TestFleetFederation is the end-to-end path: three in-process capi-serve
// instances federated under one coordinator — registration, fan-out that
// reaches every live member, a killed member reported as failed (never
// silently dropped), and a merged report whose POP metrics equal
// pop.Compute over the hand-concatenated per-member rank times.
func TestFleetFederation(t *testing.T) {
	members := make([]*testMember, 3)
	for i := range members {
		members[i] = newMember(t, 2)
	}
	_, coordTS := newCoordinator(t, fastOpts())

	for i, m := range members {
		rr := register(t, coordTS.URL, m.URL(), fmt.Sprintf("m%d", i))
		if rr.Members != i+1 {
			t.Fatalf("after registering m%d: %d members, want %d", i, rr.Members, i+1)
		}
	}

	// Fan-out reaches every live member: one POST, three re-selections.
	var fr fleet.FanoutResponse
	code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi coarse"}`, &fr)
	if code != http.StatusOK {
		t.Fatalf("fan-out to healthy fleet: status %d, want 200", code)
	}
	if len(fr.Applied) != 3 || len(fr.Failed) != 0 || fr.Divergent {
		t.Fatalf("fan-out: applied %d failed %d divergent %v, want 3/0/false",
			len(fr.Applied), len(fr.Failed), fr.Divergent)
	}
	for i, m := range members {
		if got := m.inst.Status().Reconfigs; got != 1 {
			t.Errorf("member %d: %d reconfigs after fan-out, want 1", i, got)
		}
	}

	// A phase per member so every TALP backend has a report.
	for _, m := range members {
		if code := post(t, m.URL()+"/v1/run", "application/json", `{"wait":true}`, nil); code != http.StatusOK {
			t.Fatalf("member run: status %d", code)
		}
	}

	// Kill one member; the next fan-out must report it as failed — with
	// its name and error — not silently apply to two of three.
	members[2].kill()
	code = post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr)
	if code != http.StatusMultiStatus {
		t.Fatalf("fan-out with dead member: status %d, want 207", code)
	}
	if !fr.Divergent || len(fr.Applied) != 2 || len(fr.Failed) != 1 {
		t.Fatalf("fan-out with dead member: applied %d failed %d divergent %v, want 2/1/true",
			len(fr.Applied), len(fr.Failed), fr.Divergent)
	}
	if fr.Failed[0].Member != "m2" || fr.Failed[0].Error == "" {
		t.Fatalf("failed entry = %+v, want member m2 with an error", fr.Failed[0])
	}
	if fr.Failed[0].Attempts != 2 {
		t.Errorf("dead member tried %d times, want 2 (1 + 1 retry)", fr.Failed[0].Attempts)
	}

	// Merged report: the two live members contribute, the dead one is in
	// Failed, and each region's fleet POP equals pop.Compute over the
	// concatenation of the members' own per-rank times.
	var rep fleet.FleetReportResponse
	if code := get(t, coordTS.URL+"/v1/fleet/report", &rep); code != http.StatusOK {
		t.Fatalf("fleet report: status %d, want 200", code)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("fleet report members = %v, want the 2 live ones", rep.Members)
	}
	if _, ok := rep.Failed["m2"]; !ok {
		t.Fatalf("fleet report Failed = %v, want entry for dead m2", rep.Failed)
	}
	talpGroup, ok := rep.Backends["talp"]
	if !ok {
		t.Fatalf("fleet report backends = %v, want talp", rep.Backends)
	}
	if len(talpGroup.Reports) != 2 {
		t.Fatalf("talp group has %d member documents, want 2", len(talpGroup.Reports))
	}
	if rep.WorldSize != 4 {
		t.Errorf("federated world size = %d, want 4 (2 members × 2 ranks)", rep.WorldSize)
	}

	want := map[string][]pop.RankTimes{}
	for _, m := range members[:2] {
		for name, set := range memberTALP(t, m.URL()) {
			want[name] = append(want[name], set...)
		}
	}
	if len(rep.Regions) == 0 || len(rep.Regions) != len(want) {
		t.Fatalf("fleet report has %d regions, want %d", len(rep.Regions), len(want))
	}
	for _, reg := range rep.Regions {
		concat, ok := want[reg.Name]
		if !ok {
			t.Errorf("region %q not in any member report", reg.Name)
			continue
		}
		if reg.Ranks != len(concat) {
			t.Errorf("region %q: %d ranks, want %d", reg.Name, reg.Ranks, len(concat))
		}
		m := pop.Compute(concat)
		if reg.ParallelEfficiency != m.ParallelEfficiency ||
			reg.LoadBalance != m.LoadBalance ||
			reg.CommunicationEfficiency != m.CommunicationEfficiency ||
			reg.ElapsedNs != m.Elapsed || reg.MaxUsefulNs != m.MaxUseful {
			t.Errorf("region %q: fleet POP %+v != pop.Compute over concatenated ranks %+v",
				reg.Name, reg, m)
		}
		if len(reg.Members) != 2 {
			t.Errorf("region %q contributed by %v, want both live members", reg.Name, reg.Members)
		}
	}

	// The member table keeps the dead member visible (unhealthy), and the
	// rollup sums only the reachable ones.
	var fs fleet.FleetStatusResponse
	if code := get(t, coordTS.URL+"/v1/fleet/status", &fs); code != http.StatusOK {
		t.Fatalf("fleet status: status %d", code)
	}
	if fs.Rollup.Members != 3 || fs.Rollup.Reachable != 2 {
		t.Fatalf("rollup members/reachable = %d/%d, want 3/2", fs.Rollup.Members, fs.Rollup.Reachable)
	}
	if fs.Rollup.Runs != 2 || fs.Rollup.Reconfigs != 4 {
		t.Errorf("rollup runs/reconfigs = %d/%d, want 2/4 (2 live members × 1 run, × 2 re-selects)",
			fs.Rollup.Runs, fs.Rollup.Reconfigs)
	}
	for _, row := range fs.MemberStatus {
		if row.Member == "m2" && (row.Healthy || row.Error == "") {
			t.Errorf("dead member row = %+v, want unhealthy with error", row)
		}
	}
}

// TestFanoutEmptyFleet pins the 503 for a coordinator with no members —
// distinct from 502 (members exist, none applied).
func TestFanoutEmptyFleet(t *testing.T) {
	_, coordTS := newCoordinator(t, fastOpts())
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("fan-out on empty fleet: status %d, want 503", code)
	}
	if code := get(t, coordTS.URL+"/v1/fleet/report", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("report on empty fleet: status %d, want 503", code)
	}
}

// TestFanoutAllDead pins the 502 when every member fails to apply.
func TestFanoutAllDead(t *testing.T) {
	m := newMember(t, 1)
	_, coordTS := newCoordinator(t, fastOpts())
	register(t, coordTS.URL, m.URL(), "m0")
	m.kill()
	var fr fleet.FanoutResponse
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusBadGateway {
		t.Fatalf("fan-out to all-dead fleet: status %d, want 502", code)
	}
	if len(fr.Failed) != 1 || fr.Divergent {
		t.Fatalf("all-dead fan-out: %+v, want 1 failed, not divergent", fr)
	}
}

// TestFanoutRejectionNotRetried pins that a member 4xx (deterministic
// rejection) is reported after one attempt — retrying a rejected document
// cannot converge the fleet.
func TestFanoutRejectionNotRetried(t *testing.T) {
	m := newMember(t, 1)
	_, coordTS := newCoordinator(t, fastOpts())
	register(t, coordTS.URL, m.URL(), "m0")
	var fr fleet.FanoutResponse
	code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"no-such-spec"}`, &fr)
	if code != http.StatusBadGateway {
		t.Fatalf("fan-out of rejected doc: status %d, want 502", code)
	}
	if len(fr.Failed) != 1 || fr.Failed[0].Attempts != 1 {
		t.Fatalf("rejected doc: %+v, want 1 failure after exactly 1 attempt", fr)
	}
	if fr.Failed[0].Status != http.StatusBadRequest || len(fr.Failed[0].Response) == 0 {
		t.Errorf("rejection relays the member's 400 body, got %+v", fr.Failed[0])
	}
}

func TestRegisterValidation(t *testing.T) {
	_, coordTS := newCoordinator(t, fastOpts())
	for _, body := range []string{`{}`, `{"url":"not a url"}`, `{"url":"ftp://x"}`} {
		if code := post(t, coordTS.URL+"/v1/fleet/register", "application/json", body, nil); code != http.StatusBadRequest {
			t.Errorf("register %s: status %d, want 400", body, code)
		}
	}
}

// TestHeartbeatTTLEviction registers a member that never heartbeats and
// waits for the TTL loop to evict it; a member that keeps heartbeating
// stays.
func TestHeartbeatTTLEviction(t *testing.T) {
	opts := fastOpts()
	opts.TTL = 80 * time.Millisecond
	coord, coordTS := newCoordinator(t, opts)
	m0 := newMember(t, 1)
	m1 := newMember(t, 1)
	register(t, coordTS.URL, m0.URL(), "dies")
	register(t, coordTS.URL, m1.URL(), "lives")

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Keep "lives" beating while "dies" goes silent.
		register(t, coordTS.URL, m1.URL(), "lives")
		var fs fleet.FleetStatusResponse
		get(t, coordTS.URL+"/v1/fleet/status", &fs)
		if fs.Rollup.Members == 1 {
			if fs.MemberStatus[0].Member != "lives" {
				t.Fatalf("surviving member = %q, want the one that heartbeats", fs.MemberStatus[0].Member)
			}
			if fs.Coordinator.Evictions != 1 {
				t.Fatalf("evictions = %d, want 1", fs.Coordinator.Evictions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member never evicted: %d members still registered", fs.Rollup.Members)
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = coord
}

// TestStaticMembersNeverEvicted pins that -members entries survive with
// no heartbeat at all: they only go unhealthy, they never disappear.
func TestStaticMembersNeverEvicted(t *testing.T) {
	m := newMember(t, 1)
	opts := fastOpts()
	opts.TTL = 50 * time.Millisecond
	opts.Members = []string{m.URL()}
	_, coordTS := newCoordinator(t, opts)

	time.Sleep(150 * time.Millisecond) // several TTLs, zero heartbeats
	var fs fleet.FleetStatusResponse
	get(t, coordTS.URL+"/v1/fleet/status", &fs)
	if fs.Rollup.Members != 1 || !fs.MemberStatus[0].Static {
		t.Fatalf("static member table = %+v, want the one static member", fs.MemberStatus)
	}
	if fs.Coordinator.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0 for a static-only fleet", fs.Coordinator.Evictions)
	}
}

// TestMetricsMerged pins the unified exposition: fleet-own series plus
// every member's samples re-labelled with member="<name>".
func TestMetricsMerged(t *testing.T) {
	m0 := newMember(t, 1)
	m1 := newMember(t, 1)
	_, coordTS := newCoordinator(t, fastOpts())
	register(t, coordTS.URL, m0.URL(), "m0")
	register(t, coordTS.URL, m1.URL(), "m1")

	resp, err := http.Get(coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body) //nolint:errcheck
	text := buf.String()

	for _, want := range []string{
		"capi_fleet_members 2",
		`capi_fleet_member_up{member="m0"} 1`,
		`capi_fleet_member_up{member="m1"} 1`,
		`{member="m0"`,
		`{member="m1"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fleet /metrics missing %q", want)
		}
	}
	// Family headers must not repeat per member — the merged output stays
	// one valid exposition.
	if n := strings.Count(text, "# TYPE capi_active_functions"); n > 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
}
