package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"capi/internal/ctl"
	"capi/internal/pop"
)

// MemberStatus is one row of the GET /v1/fleet/status member table: the
// registry's view of the member plus its own /v1/status document (absent,
// with Error set, when the member could not be reached).
type MemberStatus struct {
	Member          string  `json:"member"`
	URL             string  `json:"url"`
	Static          bool    `json:"static,omitempty"`
	Healthy         bool    `json:"healthy"`
	LastSeenSeconds float64 `json:"lastSeenSeconds"`
	// TTLSeconds is the time left before heartbeat eviction; omitted for
	// static members, which are never evicted.
	TTLSeconds    float64             `json:"ttlSeconds,omitempty"`
	EventsRelayed int64               `json:"eventsRelayed"`
	Error         string              `json:"error,omitempty"`
	Status        *ctl.StatusResponse `json:"status,omitempty"`
}

// Rollup sums the fleet's live counters over every reachable member.
// DetachedBackends and OpenBreakers surface the circuit-breaker state
// cluster-wide: a single member tripping a breaker shows up here without
// reading N status documents.
type Rollup struct {
	Members          int      `json:"members"`
	Reachable        int      `json:"reachable"`
	Runs             int      `json:"runs"`
	Events           int64    `json:"events"`
	Reconfigs        int      `json:"reconfigs"`
	ActiveFunctions  int      `json:"activeFunctions"`
	DroppedAsync     int64    `json:"droppedAsync"`
	DroppedPanicked  int64    `json:"droppedPanicked"`
	DetachedBackends []string `json:"detachedBackends,omitempty"`
	// OpenBreakers lists "member/backend" for every breaker currently
	// tripped or detached somewhere in the fleet.
	OpenBreakers []string `json:"openBreakers,omitempty"`
	// PipelineHints relays every member's ring-sizing hint keyed by
	// member name, so back-pressure anywhere in the fleet is visible from
	// the coordinator.
	PipelineHints map[string]string `json:"pipelineHints,omitempty"`
}

// FleetStatusResponse is the GET /v1/fleet/status document.
type FleetStatusResponse struct {
	Coordinator  CoordinatorStatus `json:"coordinator"`
	Rollup       Rollup            `json:"rollup"`
	MemberStatus []MemberStatus    `json:"members"`
}

// CoordinatorStatus is the coordinator's own counters.
type CoordinatorStatus struct {
	UptimeSeconds  float64 `json:"uptimeSeconds"`
	Registrations  int64   `json:"registrations"`
	Evictions      int64   `json:"evictions"`
	Fanouts        int64   `json:"fanouts"`
	FanoutFailures int64   `json:"fanoutFailures"`
	SSEClients     int     `json:"sseClients"`
}

func (s *Server) handleFleetStatus(w http.ResponseWriter, r *http.Request) {
	members := s.reg.snapshot()
	now := time.Now()
	rows := make([]MemberStatus, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		row := MemberStatus{
			Member:          m.Name,
			URL:             m.URL,
			Static:          m.Static,
			Healthy:         m.Healthy,
			LastSeenSeconds: now.Sub(m.LastSeen).Seconds(),
			EventsRelayed:   m.Events,
		}
		if !m.Static && !m.Deadline.IsZero() {
			row.TTLSeconds = time.Until(m.Deadline).Seconds()
		}
		rows[i] = row
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, err := s.getMember(m.URL, "/v1/status")
			if err != nil {
				rows[i].Error = err.Error()
				rows[i].Healthy = false
				return
			}
			if code != http.StatusOK {
				rows[i].Error = fmt.Sprintf("status %d from member", code)
				rows[i].Healthy = false
				return
			}
			var st ctl.StatusResponse
			if err := json.Unmarshal(body, &st); err != nil {
				rows[i].Error = fmt.Sprintf("decoding member status: %v", err)
				return
			}
			rows[i].Status = &st
			rows[i].Healthy = true
		}()
	}
	wg.Wait()

	roll := Rollup{Members: len(rows)}
	for _, row := range rows {
		if row.Status == nil {
			continue
		}
		roll.Reachable++
		st := row.Status
		roll.Runs += st.Runs
		roll.Events += st.Events
		roll.Reconfigs += st.Reconfigs
		roll.ActiveFunctions += st.ActiveFunctions
		roll.DroppedAsync += st.DroppedAsync
		roll.DroppedPanicked += st.DroppedPanicked
		for _, b := range st.DetachedBackends {
			roll.DetachedBackends = append(roll.DetachedBackends, row.Member+"/"+b)
		}
		for _, b := range st.Breaker {
			if b.Tripped {
				roll.OpenBreakers = append(roll.OpenBreakers, row.Member+"/"+b.Backend)
			}
		}
		if st.PipelineHint != "" {
			if roll.PipelineHints == nil {
				roll.PipelineHints = map[string]string{}
			}
			roll.PipelineHints[row.Member] = st.PipelineHint
		}
	}
	sort.Strings(roll.DetachedBackends)
	sort.Strings(roll.OpenBreakers)

	writeJSON(w, http.StatusOK, FleetStatusResponse{
		Coordinator: CoordinatorStatus{
			UptimeSeconds:  time.Since(s.started).Seconds(),
			Registrations:  s.reg.registrations.Load(),
			Evictions:      s.reg.evictions.Load(),
			Fanouts:        s.fanouts.Load(),
			FanoutFailures: s.fanoutFailures.Load(),
			SSEClients:     s.hub.clients(),
		},
		Rollup:       roll,
		MemberStatus: rows,
	})
}

// BackendReports groups one backend's reports across the fleet: the raw
// per-member report documents, verbatim, keyed by member name.
type BackendReports struct {
	Kind    string                     `json:"kind"`
	Reports map[string]json.RawMessage `json:"reports"`
}

// RegionPOP is one region's fleet-wide POP breakdown, re-derived from the
// members' per-rank TALP times. Derived efficiencies cannot be averaged
// across members — a mean of load balances is not the load balance of the
// merged job — so the coordinator concatenates every member's rank set
// (pop.Merge) and recomputes the metrics over the federated set
// (pop.Compute). Members lists who contributed; a region missing on some
// member simply has fewer ranks.
type RegionPOP struct {
	Name                    string   `json:"name"`
	Members                 []string `json:"members"`
	Ranks                   int      `json:"ranks"`
	Visits                  int64    `json:"visits"`
	ElapsedNs               int64    `json:"elapsedNs"`
	AvgUsefulNs             int64    `json:"avgUsefulNs"`
	MaxUsefulNs             int64    `json:"maxUsefulNs"`
	LoadBalance             float64  `json:"loadBalance"`
	CommunicationEfficiency float64  `json:"communicationEfficiency"`
	ParallelEfficiency      float64  `json:"parallelEfficiency"`
}

// FleetReportResponse is the GET /v1/fleet/report document.
type FleetReportResponse struct {
	Members  []string                  `json:"members"`
	Failed   map[string]string         `json:"failed,omitempty"`
	Backends map[string]BackendReports `json:"backends"`
	// WorldSize is the federated rank count (sum of member TALP worlds).
	WorldSize int         `json:"worldSize,omitempty"`
	Regions   []RegionPOP `json:"regions,omitempty"`
}

// talpDoc mirrors the fields of internal/talp's WriteJSON document that
// the merge needs: the world size and each region's raw per-rank times.
type talpDoc struct {
	WorldSize int `json:"worldSize"`
	Regions   []struct {
		Name    string `json:"name"`
		Visits  int64  `json:"visits"`
		PerRank []struct {
			UsefulNs int64 `json:"usefulNs"`
			MPINs    int64 `json:"mpiNs"`
		} `json:"perRank"`
	} `json:"regions"`
}

func (s *Server) handleFleetReport(w http.ResponseWriter, r *http.Request) {
	members := s.reg.snapshot()
	if len(members) == 0 {
		writeErr(w, http.StatusServiceUnavailable, "fleet has no members")
		return
	}
	type fetched struct {
		member string
		resp   *ctl.ReportResponse
		err    string
	}
	results := make([]fetched, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		results[i].member = m.Name
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, err := s.getMember(m.URL, "/v1/report")
			switch {
			case err != nil:
				results[i].err = err.Error()
			case code == http.StatusNotFound:
				results[i].err = "no report yet"
			case code != http.StatusOK:
				results[i].err = fmt.Sprintf("status %d from member", code)
			default:
				var rep ctl.ReportResponse
				if err := json.Unmarshal(body, &rep); err != nil {
					results[i].err = fmt.Sprintf("decoding member report: %v", err)
				} else {
					results[i].resp = &rep
				}
			}
		}()
	}
	wg.Wait()

	out := FleetReportResponse{Backends: map[string]BackendReports{}}
	type regionAcc struct {
		members []string
		visits  int64
		sets    [][]pop.RankTimes
	}
	regions := map[string]*regionAcc{}
	for _, res := range results {
		if res.resp == nil {
			if out.Failed == nil {
				out.Failed = map[string]string{}
			}
			out.Failed[res.member] = res.err
			continue
		}
		out.Members = append(out.Members, res.member)
		for backend, entry := range res.resp.Reports {
			group, ok := out.Backends[backend]
			if !ok {
				group = BackendReports{Kind: entry.Kind, Reports: map[string]json.RawMessage{}}
				out.Backends[backend] = group
			}
			group.Reports[res.member] = entry.Report
			if backend != "talp" {
				continue
			}
			var doc talpDoc
			if err := json.Unmarshal(entry.Report, &doc); err != nil {
				continue // per-member document stays readable verbatim
			}
			out.WorldSize += doc.WorldSize
			for _, reg := range doc.Regions {
				acc := regions[reg.Name]
				if acc == nil {
					acc = &regionAcc{}
					regions[reg.Name] = acc
				}
				acc.members = append(acc.members, res.member)
				acc.visits += reg.Visits
				set := make([]pop.RankTimes, len(reg.PerRank))
				for k, rt := range reg.PerRank {
					set[k] = pop.RankTimes{Useful: rt.UsefulNs, MPI: rt.MPINs}
				}
				acc.sets = append(acc.sets, set)
			}
		}
	}
	sort.Strings(out.Members)

	for _, name := range sortedNames(regions) {
		acc := regions[name]
		merged := pop.Merge(acc.sets...)
		m := pop.Compute(merged)
		sort.Strings(acc.members)
		out.Regions = append(out.Regions, RegionPOP{
			Name:                    name,
			Members:                 acc.members,
			Ranks:                   len(merged),
			Visits:                  acc.visits,
			ElapsedNs:               m.Elapsed,
			AvgUsefulNs:             m.AvgUseful,
			MaxUsefulNs:             m.MaxUseful,
			LoadBalance:             m.LoadBalance,
			CommunicationEfficiency: m.CommunicationEfficiency,
			ParallelEfficiency:      m.ParallelEfficiency,
		})
	}

	code := http.StatusOK
	if len(out.Members) == 0 {
		code = http.StatusBadGateway
	}
	writeJSON(w, code, out)
}
