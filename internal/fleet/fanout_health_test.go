package fleet_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"

	"capi/internal/fleet"
)

// scriptedMember is a fake capi-serve whose behavior is switched per test
// step: "down" aborts the connection (transport error, no status line),
// "reject" answers a clean 400, and the truncate modes promise a large
// Content-Length but write a short body, so the coordinator receives the
// status line and then fails reading the response.
type scriptedMember struct {
	ts   *httptest.Server
	mode atomic.Value // string
}

func newScriptedMember(t *testing.T) *scriptedMember {
	t.Helper()
	m := &scriptedMember{}
	m.mode.Store("down")
	m.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch m.mode.Load().(string) {
		case "down":
			panic(http.ErrAbortHandler)
		case "reject":
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"error":"rejected"}`)) //nolint:errcheck
		case "truncate400":
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(`{"er`)) //nolint:errcheck
		case "truncate500":
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"er`)) //nolint:errcheck
		case "truncate200":
			w.Header().Set("Content-Length", "4096")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"ok`)) //nolint:errcheck
		}
	}))
	t.Cleanup(m.ts.Close)
	return m
}

var membersHealthyRe = regexp.MustCompile(`(?m)^capi_fleet_members_healthy (\d+)$`)

// metricsHealthy scrapes the coordinator's own capi_fleet_members_healthy
// gauge — the surface fed directly by the registry health flag the fan-out
// path updates.
func metricsHealthy(t *testing.T, coordURL string) int {
	t.Helper()
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	match := membersHealthyRe.FindSubmatch(text)
	if match == nil {
		t.Fatalf("coordinator /metrics has no capi_fleet_members_healthy gauge")
	}
	n, err := strconv.Atoi(string(match[1]))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFanoutRejectionMarksMemberReachable pins the reachable-vs-applied
// split: a member that answers any HTTP status has proven it is alive, so
// a fan-out rejection must flip it back to healthy even though the
// mutation itself failed. Previously only a 2xx restored health, leaving a
// live-but-rejecting member flagged unreachable forever once a transport
// blip had marked it down.
func TestFanoutRejectionMarksMemberReachable(t *testing.T) {
	m := newScriptedMember(t)
	_, coordTS := newCoordinator(t, fastOpts())
	register(t, coordTS.URL, m.ts.URL, "m0")

	// A transport failure (connection aborted before any status) marks the
	// member unhealthy.
	var fr fleet.FanoutResponse
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusBadGateway {
		t.Fatalf("fan-out to dead member: status %d, want 502", code)
	}
	if len(fr.Failed) != 1 || fr.Failed[0].Status != 0 {
		t.Fatalf("dead member result = %+v, want 1 failure with no status", fr.Failed)
	}
	if got := metricsHealthy(t, coordTS.URL); got != 0 {
		t.Fatalf("members_healthy after transport failure = %d, want 0", got)
	}

	// The member comes back but rejects the document: still a fan-out
	// failure, but it answered — health must recover without a 2xx.
	m.mode.Store("reject")
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusBadGateway {
		t.Fatalf("fan-out of rejected doc: status %d, want 502", code)
	}
	if len(fr.Failed) != 1 || fr.Failed[0].Status != http.StatusBadRequest || fr.Failed[0].Attempts != 1 {
		t.Fatalf("rejection result = %+v, want status 400 after exactly 1 attempt", fr.Failed)
	}
	if got := metricsHealthy(t, coordTS.URL); got != 1 {
		t.Fatalf("members_healthy after 4xx answer = %d, want 1 (reachable, not applied)", got)
	}
}

// TestFanoutTruncatedBodyClassifiedByStatus pins that a response whose
// body read fails is still classified by the status code that was
// received: a truncated 4xx is a deterministic rejection (one attempt, no
// retry — retrying a rejection cannot converge the fleet), a truncated
// 5xx stays retryable, and a truncated 2xx counts as applied. Previously
// the body-read error routed all three through the transport-error path,
// retrying rejections and flagging the member unreachable.
func TestFanoutTruncatedBodyClassifiedByStatus(t *testing.T) {
	m := newScriptedMember(t)
	_, coordTS := newCoordinator(t, fastOpts())
	register(t, coordTS.URL, m.ts.URL, "m0")

	m.mode.Store("truncate400")
	var fr fleet.FanoutResponse
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusBadGateway {
		t.Fatalf("fan-out of truncated 400: status %d, want 502", code)
	}
	if len(fr.Failed) != 1 {
		t.Fatalf("truncated 400: %+v, want 1 failure", fr)
	}
	if got := fr.Failed[0]; got.Status != http.StatusBadRequest || got.Attempts != 1 {
		t.Fatalf("truncated 400 result = %+v, want status 400 after exactly 1 attempt", got)
	}
	if got := metricsHealthy(t, coordTS.URL); got != 1 {
		t.Fatalf("members_healthy after truncated 400 = %d, want 1 (status line proves reachability)", got)
	}

	m.mode.Store("truncate500")
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusBadGateway {
		t.Fatalf("fan-out of truncated 500: status %d, want 502", code)
	}
	if got := fr.Failed[0]; got.Status != http.StatusInternalServerError || got.Attempts != 2 {
		t.Fatalf("truncated 500 result = %+v, want status 500 after 2 attempts (1 + 1 retry)", got)
	}

	// A truncated success only loses the relayed response body, not the
	// outcome: the member applied the mutation.
	m.mode.Store("truncate200")
	if code := post(t, coordTS.URL+"/v1/select", "application/json", `{"builtin":"mpi"}`, &fr); code != http.StatusOK {
		t.Fatalf("fan-out of truncated 200: status %d, want 200", code)
	}
	if len(fr.Applied) != 1 || fr.Applied[0].Status != http.StatusOK || len(fr.Applied[0].Response) != 0 {
		t.Fatalf("truncated 200 result = %+v, want applied with status 200 and no relayed body", fr.Applied)
	}
}
