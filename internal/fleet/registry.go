package fleet

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// member is one capi-serve endpoint the coordinator knows about. Mutable
// fields are guarded by the owning registry's mutex; events is written by
// the member's tailer goroutine, so it stays atomic.
type member struct {
	name   string
	url    string
	static bool

	events atomic.Int64 // SSE events relayed from this member

	app      string             //capi:guardedby mu
	lastSeen time.Time          //capi:guardedby mu
	deadline time.Time          //capi:guardedby mu — heartbeat TTL expiry; zero for static members
	healthy  bool               //capi:guardedby mu
	lastErr  string             //capi:guardedby mu
	cancel   context.CancelFunc //capi:guardedby mu — stops the member's tailer
}

// registry is the member table plus the heartbeat-TTL eviction loop. The
// loop follows the ttl.go pattern: one lazily-started timer goroutine
// that sleeps until the earliest deadline, evicts everything overdue, and
// exits when no dynamic member remains. Heartbeats only move deadlines
// and poke the coalesced wake channel — they never spawn goroutines.
type registry struct {
	ttl     time.Duration
	onJoin  func(*member) context.CancelFunc // start tailer; called under mu
	onLeave func(name, reason string)        // called after removal, outside mu

	mu       sync.Mutex
	members  map[string]*member //capi:guardedby mu
	loopLive bool               //capi:guardedby mu — eviction goroutine running
	closed   bool               //capi:guardedby mu
	wake     chan struct{}      // coalesced "deadlines changed" signal, cap 1

	registrations atomic.Int64 // joins + heartbeats accepted
	evictions     atomic.Int64 // members evicted by TTL
}

func newRegistry(ttl time.Duration, onJoin func(*member) context.CancelFunc, onLeave func(name, reason string)) *registry {
	return &registry{
		ttl:     ttl,
		onJoin:  onJoin,
		onLeave: onLeave,
		members: make(map[string]*member),
		wake:    make(chan struct{}, 1),
	}
}

// upsert joins a new member or refreshes an existing one (the heartbeat).
// A name re-registered with a different URL replaces the old member: its
// tailer is stopped and a "replaced" lifecycle event is published. The
// eviction loop is started lazily on the first dynamic member. Returns
// false when the registry is closed.
func (r *registry) upsert(name, url, app string, static bool) bool {
	var stopOld context.CancelFunc
	replaced := false

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	m := r.members[name]
	if m != nil && m.url != url {
		stopOld, replaced = m.cancel, true
		delete(r.members, name)
		m = nil
	}
	if m == nil {
		m = &member{name: name, url: url, static: static, healthy: true}
		r.members[name] = m
		m.cancel = r.onJoin(m)
	}
	m.app = app
	m.lastSeen = time.Now()
	if !static {
		m.deadline = m.lastSeen.Add(r.ttl)
		if !r.loopLive {
			r.loopLive = true
			go r.evictLoop()
		}
	}
	r.registrations.Add(1)
	r.mu.Unlock()

	if replaced {
		if stopOld != nil {
			stopOld()
		}
		r.onLeave(name, "replaced")
	}
	// Coalesced poke: the loop re-scans deadlines on the next wake.
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return true
}

// evictLoop sleeps until the earliest dynamic deadline, evicts everything
// overdue, and exits once no dynamic member remains (a later registration
// restarts it). Exactly one instance runs at a time (loopLive).
func (r *registry) evictLoop() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		r.mu.Lock()
		if r.closed {
			r.loopLive = false
			r.mu.Unlock()
			return
		}
		var next time.Time
		for _, m := range r.members {
			if m.static || m.deadline.IsZero() {
				continue
			}
			if next.IsZero() || m.deadline.Before(next) {
				next = m.deadline
			}
		}
		if next.IsZero() {
			// No dynamic members left: park until one registers.
			r.loopLive = false
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()

		d := time.Until(next)
		if d < 0 {
			d = 0
		}
		timer.Reset(d)
		select {
		case <-timer.C:
		case <-r.wake:
			if !timer.Stop() {
				<-timer.C
			}
		}
		r.expireOverdue()
	}
}

// expireOverdue removes every dynamic member whose deadline has passed
// and reports the evictions outside the lock.
func (r *registry) expireOverdue() {
	now := time.Now()
	type gone struct {
		name   string
		cancel context.CancelFunc
	}
	var expired []gone

	r.mu.Lock()
	for name, m := range r.members {
		if m.static || m.deadline.IsZero() || m.deadline.After(now) {
			continue
		}
		expired = append(expired, gone{name, m.cancel})
		delete(r.members, name)
	}
	r.mu.Unlock()

	for _, g := range expired {
		r.evictions.Add(1)
		if g.cancel != nil {
			g.cancel()
		}
		r.onLeave(g.name, "evicted")
	}
}

// setHealth records a probe or fan-out outcome. seen additionally
// refreshes lastSeen (probe success) without touching the heartbeat
// deadline — liveness coloring is softer than eviction.
func (r *registry) setHealth(name string, healthy bool, errStr string, seen bool) {
	r.mu.Lock()
	if m := r.members[name]; m != nil {
		m.healthy = healthy
		m.lastErr = errStr
		if seen {
			m.lastSeen = time.Now()
		}
	}
	r.mu.Unlock()
}

// memberSnap is an immutable view of one member row.
type memberSnap struct {
	Name     string
	URL      string
	App      string
	Static   bool
	Healthy  bool
	LastErr  string
	LastSeen time.Time
	Deadline time.Time
	Events   int64
}

// snapshot copies the member table, sorted by name.
func (r *registry) snapshot() []memberSnap {
	r.mu.Lock()
	out := make([]memberSnap, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, memberSnap{
			Name: m.name, URL: m.url, App: m.app, Static: m.static,
			Healthy: m.healthy, LastErr: m.lastErr,
			LastSeen: m.lastSeen, Deadline: m.deadline,
			Events: m.events.Load(),
		})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *registry) count() int {
	r.mu.Lock()
	n := len(r.members)
	r.mu.Unlock()
	return n
}

// close empties the table and stops every tailer. The eviction loop sees
// closed on its next wake and exits.
func (r *registry) close() {
	r.mu.Lock()
	r.closed = true
	cancels := make([]context.CancelFunc, 0, len(r.members))
	for _, m := range r.members {
		if m.cancel != nil {
			cancels = append(cancels, m.cancel)
		}
	}
	r.members = make(map[string]*member)
	r.mu.Unlock()

	select {
	case r.wake <- struct{}{}:
	default:
	}
	for _, c := range cancels {
		c()
	}
}
