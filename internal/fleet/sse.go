package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Tailer reconnect backoff bounds: first retry after tailBackoffMin,
// doubling to tailBackoffMax while the member stays unreachable, reset on
// the next successful connection.
const (
	tailBackoffMin = 100 * time.Millisecond
	tailBackoffMax = 5 * time.Second
)

// event is one multiplexed server-sent event (same shape as ctl's).
type event struct {
	id   int64
	name string
	data []byte
}

// hub fans the multiplexed member events out to the fleet's SSE clients.
// Same contract as ctl's hub: publishing never blocks, a subscriber that
// cannot keep up loses events, and the authoritative state is always one
// GET /v1/fleet/status away.
type hub struct {
	mu     sync.Mutex
	next   int64                   //capi:guardedby mu
	closed bool                    //capi:guardedby mu
	subs   map[chan event]struct{} //capi:guardedby mu
}

func newHub() *hub {
	return &hub{subs: map[chan event]struct{}{}}
}

func (h *hub) subscribe() chan event {
	ch := make(chan event, 32)
	h.mu.Lock()
	if h.closed {
		close(ch)
	} else {
		h.subs[ch] = struct{}{}
	}
	h.mu.Unlock()
	return ch
}

func (h *hub) shutdown() {
	h.mu.Lock()
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
	h.mu.Unlock()
}

func (h *hub) unsubscribe(ch chan event) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

func (h *hub) clients() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

func (h *hub) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	h.mu.Lock()
	h.next++
	ev := event{id: h.next, name: name, data: data}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow client: drop rather than stall the mux
		}
	}
	h.mu.Unlock()
}

// MemberEvent is the payload of every relayed fleet SSE event: the origin
// member plus the member's own event document, verbatim. The event name
// ("reconfigure", "run", ...) is the member's own; coordinator lifecycle
// events use the name "fleet" with a lifecycleEvent payload instead.
type MemberEvent struct {
	Member string          `json:"member"`
	Data   json.RawMessage `json:"data"`
}

// tailMember follows one member's GET /v1/events stream for the member's
// whole registration, republishing each event on the fleet hub tagged
// with the member name. A dropped stream (member restart, network blip)
// is retried with doubling backoff; a successful reconnect resets the
// backoff, so a member that comes back after a restart resumes streaming
// within tailBackoffMax. ctx is canceled on eviction or Close — the
// goroutine never outlives either.
func (s *Server) tailMember(ctx context.Context, m *member) {
	defer s.wg.Done()
	backoff := tailBackoffMin
	for {
		if ctx.Err() != nil {
			return
		}
		connected := s.tailOnce(ctx, m)
		if ctx.Err() != nil {
			return
		}
		if connected {
			backoff = tailBackoffMin
		} else if backoff < tailBackoffMax {
			backoff *= 2
			if backoff > tailBackoffMax {
				backoff = tailBackoffMax
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
	}
}

// tailOnce opens one streaming connection and relays events until the
// stream ends. Returns whether the member accepted the stream (used for
// backoff reset); relaying zero events over a healthy stream still counts.
func (s *Server) tailOnce(ctx context.Context, m *member) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/v1/events", nil)
	if err != nil {
		return false
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := s.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}

	// Minimal text/event-stream parse: accumulate "event:"/"data:" fields,
	// dispatch on the blank separator line, ignore comments and ids (the
	// fleet assigns its own ids — member id sequences restart on member
	// restart and would collide across members).
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), maxBodyBytes)
	var name, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if name != "" && data != "" {
				m.events.Add(1)
				s.hub.publish(name, MemberEvent{Member: m.name, Data: jsonOrNil([]byte(data))})
			}
			name, data = "", ""
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[len("data:"):])
		}
	}
	return true
}

// handleEvents streams the multiplexed feed as text/event-stream: every
// member's "reconfigure"/"run"/... events wrapped in MemberEvent, plus
// the coordinator's own "fleet" lifecycle events (registered, evicted,
// replaced).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch := s.hub.subscribe()
	defer s.hub.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": capi fleet mux, %d members\n\n", s.reg.count())
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return // hub shut down
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
