package fleet_test

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"capi/internal/ctl"
	"capi/internal/fleet"
)

// sseTail consumes a /v1/fleet/events stream in the background and hands
// decoded MemberEvents (and "fleet" lifecycle events) to the test.
type sseTail struct {
	events <-chan taggedEvent
	cancel func()
}

type taggedEvent struct {
	name string
	data string
}

func openFleetStream(t *testing.T, coordURL string) *sseTail {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, coordURL+"/v1/fleet/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("fleet events: status %d", resp.StatusCode)
	}
	ch := make(chan taggedEvent, 64)
	go func() {
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		var name, data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if name != "" {
					ch <- taggedEvent{name, data}
				}
				name, data = "", ""
			case strings.HasPrefix(line, "event:"):
				name = strings.TrimSpace(line[len("event:"):])
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimSpace(line[len("data:"):])
			}
		}
	}()
	tail := &sseTail{events: ch, cancel: func() { resp.Body.Close() }}
	t.Cleanup(tail.cancel)
	return tail
}

// waitFor drains the stream until an event satisfies pred or the deadline
// passes.
func (s *sseTail) waitFor(t *testing.T, what string, timeout time.Duration, pred func(taggedEvent) bool) taggedEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-s.events:
			if !ok {
				t.Fatalf("stream closed waiting for %s", what)
			}
			if pred(ev) {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// restartableMember is a member whose HTTP server can die and come back
// on the same address — a capi-serve process restart as the coordinator's
// tailer sees it.
type restartableMember struct {
	t    *testing.T
	addr string
	srv  *http.Server
	cp   *ctl.Server
	done chan struct{}
}

func (m *restartableMember) url() string { return "http://" + m.addr }

// start (re)binds the member's address and mounts a fresh control plane
// over the same live instance.
func (m *restartableMember) start(cp *ctl.Server) {
	m.t.Helper()
	ln, err := net.Listen("tcp", m.addr)
	if err != nil {
		m.t.Fatalf("rebinding %s: %v", m.addr, err)
	}
	m.addr = ln.Addr().String()
	m.cp = cp
	m.srv = &http.Server{Handler: cp}
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		m.srv.Serve(ln) //nolint:errcheck // closed on stop
	}()
}

// stop kills the member abruptly: open streams (the tailer's) drop.
func (m *restartableMember) stop() {
	m.cp.Shutdown() // ends streaming handlers so Close does not wait on them
	m.srv.Close()
	<-m.done
}

// TestSSEReconnect restarts a member mid-stream and pins the mux
// semantics: events before and after the restart arrive on one fleet
// subscription, every event carries the member tag, and closing the
// coordinator leaks no tailer goroutine. Run under -race this also
// exercises the hub/tailer/registry interleavings.
func TestSSEReconnect(t *testing.T) {
	session, inst := newQuickstart(t, 1)
	goroutinesBefore := runtime.NumGoroutine()

	rm := &restartableMember{t: t, addr: "127.0.0.1:0"}
	rm.start(ctl.New(session, inst, "quickstart"))

	opts := fastOpts()
	coord, err := fleet.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(coord)
	t.Cleanup(coordTS.Close)

	tail := openFleetStream(t, coordTS.URL)
	register(t, coordTS.URL, rm.url(), "phoenix")
	tail.waitFor(t, "registration lifecycle event", 5*time.Second, func(ev taggedEvent) bool {
		return ev.name == "fleet" && strings.Contains(ev.data, `"registered"`)
	})

	// A reconfigure on the member must surface on the fleet stream with
	// the member tag. The tailer connects asynchronously after the join,
	// so keep nudging until the relay is live. Nudges ride the member's
	// restart window, so a transiently failed POST (stale pooled
	// connection, listener not accepting yet) is retried, not fatal.
	nudge := func(body string) {
		resp, err := http.Post(rm.url()+"/v1/select", "application/json", strings.NewReader(body))
		if err != nil {
			http.DefaultClient.CloseIdleConnections()
			return
		}
		resp.Body.Close()
	}
	waitRelayed := func(what string) fleet.MemberEvent {
		t.Helper()
		var got fleet.MemberEvent
		deadline := time.Now().Add(10 * time.Second)
		for {
			nudge(`{"builtin":"mpi coarse"}`)
			nudge(`{"builtin":"mpi"}`)
			found := false
			timeout := time.After(200 * time.Millisecond)
		drain:
			for {
				select {
				case ev, ok := <-tail.events:
					if !ok {
						t.Fatalf("stream closed waiting for %s", what)
					}
					if ev.name != "reconfigure" {
						continue
					}
					if err := json.Unmarshal([]byte(ev.data), &got); err != nil {
						t.Fatalf("decoding relayed event %q: %v", ev.data, err)
					}
					found = true
					break drain
				case <-timeout:
					break drain
				}
			}
			if found {
				return got
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
		}
	}

	ev := waitRelayed("relayed reconfigure before restart")
	if ev.Member != "phoenix" {
		t.Fatalf("relayed event member = %q, want phoenix", ev.Member)
	}
	if len(ev.Data) == 0 {
		t.Fatal("relayed event carries no member document")
	}

	// Restart: same address, fresh HTTP server and control plane over the
	// same live instance. The tailer's stream drops, it backs off and
	// reconnects; events resume on the same fleet subscription, tagged.
	rm.stop()
	// The test client pooled connections to the dead server; drop them so
	// the nudge POSTs below dial the restarted one.
	http.DefaultClient.CloseIdleConnections()
	rm.start(ctl.New(session, inst, "quickstart"))

	ev = waitRelayed("relayed reconfigure after restart")
	if ev.Member != "phoenix" {
		t.Fatalf("post-restart event member = %q, want phoenix", ev.Member)
	}

	// Teardown must reap the tailer: Close blocks on the tailer WaitGroup,
	// and the goroutine count settles back to the baseline.
	tail.cancel()
	coordTS.Close()
	coord.Close()
	rm.stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		// Idle keep-alive connections hold read/write goroutines; drop
		// them so only a real tailer/hub leak can keep the count up.
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= goroutinesBefore+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after coordinator close",
				goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
