// Package fleet is the federated control plane: one coordinator over many
// capi-serve instances. The single-instance control plane (internal/ctl)
// drives exactly one in-process Instance; the paper's own setting is a
// multi-rank MPI job steered as one system (TALP/DLB coordinate across
// ranks at runtime), and selection decisions are only meaningful
// fleet-wide — a global overhead budget must be split and enforced across
// members, not per process. cmd/capi-fleet mounts this server.
//
// Members are capi-serve endpoints, discovered two ways: a static
// -members list given at start-up, and dynamic self-registration
// (POST /v1/fleet/register, re-POSTed as a heartbeat). A registered member
// that misses its heartbeat TTL is evicted by a single lazily-started
// timer goroutine (the ttl.go pattern: monotonic deadlines, coalesced wake
// channel, the goroutine exists only while a dynamic member is
// registered); static members are never evicted, only marked unhealthy by
// the /v1/healthz liveness prober.
//
// Endpoints:
//
//	POST /v1/fleet/register   {"url","name","app"} → join or heartbeat
//	GET  /v1/fleet/status     member table + rollup counters (runs, events,
//	                          droppedAsync, droppedPanicked, breaker state)
//	GET  /v1/fleet/report     per-backend envelope merge across members;
//	                          TALP per-rank times are re-derived through
//	                          pop.ComputeMerged into fleet-wide POP metrics
//	GET  /v1/fleet/events     SSE mux: every member's event stream, tailed
//	                          with reconnect/backoff, tagged by member
//	POST /v1/select           fan-out to every member   ─┐ per-member
//	POST /v1/sampling         fan-out to every member    ├ timeout/retry/
//	POST /v1/adapt            fan-out to every member   ─┘ backoff
//	GET  /v1/healthz          the coordinator's own liveness probe
//	GET  /metrics             fleet series + every member's exposition,
//	                          re-labelled with member="<name>"
//
// Fan-out is all-or-report-divergence: the response lists exactly which
// members applied the change (applied) and which did not (failed, with the
// per-member error), and the HTTP status encodes the split — 200 when every
// member applied, 207 on partial application (divergent: true), 502 when
// no member applied, 503 when the fleet is empty. A dead member is
// reported as failed, never silently dropped: convergence is the caller's
// decision, so the coordinator never hides a divergent member behind a
// 200.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Options zero values.
const (
	// DefaultTTL is the heartbeat TTL for dynamically registered members.
	DefaultTTL = 15 * time.Second
	// DefaultProbeInterval is the /v1/healthz liveness probe cadence.
	DefaultProbeInterval = 5 * time.Second
	// DefaultTimeout bounds every control request to one member (per
	// attempt, not per fan-out).
	DefaultTimeout = 5 * time.Second
	// DefaultRetries is how many times a retryable (network / 5xx)
	// fan-out failure is retried per member.
	DefaultRetries = 2
	// DefaultBackoff is the first retry delay; it doubles per attempt.
	DefaultBackoff = 150 * time.Millisecond
	// DefaultHeartbeatInterval is how often Heartbeat re-registers —
	// one third of DefaultTTL, so two beats may be lost before eviction.
	DefaultHeartbeatInterval = 5 * time.Second
)

// maxBodyBytes bounds request and relayed response bodies.
const maxBodyBytes = 1 << 20

// Options configures a coordinator.
type Options struct {
	// Members lists static member base URLs (joined at start-up, never
	// evicted — only marked unhealthy when their probe fails).
	Members []string
	// TTL is the heartbeat TTL for registered members (DefaultTTL if 0).
	TTL time.Duration
	// ProbeInterval is the liveness probe cadence (DefaultProbeInterval
	// if 0); negative disables the prober.
	ProbeInterval time.Duration
	// Timeout bounds each control request to one member (DefaultTimeout
	// if 0).
	Timeout time.Duration
	// Retries is the per-member retry count for retryable fan-out
	// failures (DefaultRetries if 0; negative means no retries).
	Retries int
	// Backoff is the first retry delay, doubling per attempt
	// (DefaultBackoff if 0).
	Backoff time.Duration
	// Client overrides the HTTP client used for member requests (tests).
	// It must not set Client.Timeout: SSE tails stream indefinitely and
	// per-request deadlines come from contexts.
	Client *http.Client
}

// Server is the coordinator. Create it with New, mount it on any
// http.Server (it implements http.Handler), and Close it to stop the
// eviction loop, the prober and every member tailer.
type Server struct {
	opts    Options
	reg     *registry
	mux     *http.ServeMux
	hub     *hub
	client  *http.Client
	started time.Time

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	fanouts        atomic.Int64 // fan-out requests served
	fanoutFailures atomic.Int64 // member applications that failed, summed
}

// New builds a coordinator and joins the static members. It fails fast on
// an unparsable static member URL.
func New(opts Options) (*Server, error) {
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Retries == 0 {
		opts.Retries = DefaultRetries
	} else if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		hub:     newHub(),
		client:  client,
		started: time.Now(),
		baseCtx: ctx,
		stop:    cancel,
	}
	s.reg = newRegistry(opts.TTL, s.memberJoined, s.memberLeft)

	s.mux.HandleFunc("POST /v1/fleet/register", s.handleRegister)
	s.mux.HandleFunc("GET /v1/fleet/status", s.handleFleetStatus)
	s.mux.HandleFunc("GET /v1/fleet/report", s.handleFleetReport)
	s.mux.HandleFunc("GET /v1/fleet/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/select", s.fanoutHandler("/v1/select"))
	s.mux.HandleFunc("POST /v1/sampling", s.fanoutHandler("/v1/sampling"))
	s.mux.HandleFunc("POST /v1/adapt", s.fanoutHandler("/v1/adapt"))
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)

	for _, raw := range opts.Members {
		name, base, err := normalizeMemberURL(raw, "")
		if err != nil {
			cancel()
			return nil, fmt.Errorf("fleet: static member %q: %w", raw, err)
		}
		s.reg.upsert(name, base, "", true)
	}
	if opts.ProbeInterval > 0 {
		s.wg.Add(1)
		go s.probeLoop()
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the eviction loop, the prober and every member tailer, and
// disconnects the SSE subscribers. It blocks until every goroutine the
// coordinator started has exited — which is what the no-leak test pins.
func (s *Server) Close() {
	s.stop()
	s.reg.close()
	s.hub.shutdown()
	s.wg.Wait()
}

// memberJoined starts the member's SSE tailer and announces the join on
// the fleet stream. Called by the registry with its lock held; the
// returned cancel stops the tailer on eviction.
func (s *Server) memberJoined(m *member) context.CancelFunc {
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.wg.Add(1)
	go s.tailMember(ctx, m)
	s.hub.publish("fleet", lifecycleEvent{Member: m.name, URL: m.url, State: "registered"})
	return cancel
}

// memberLeft announces an eviction/replacement on the fleet stream.
func (s *Server) memberLeft(name, reason string) {
	s.hub.publish("fleet", lifecycleEvent{Member: name, State: reason})
}

// lifecycleEvent is the payload of the fleet's own "fleet" SSE events.
type lifecycleEvent struct {
	Member string `json:"member"`
	URL    string `json:"url,omitempty"`
	State  string `json:"state"`
}

// normalizeMemberURL validates a member base URL and derives the member
// name (explicit name, else the URL's host:port).
func normalizeMemberURL(raw, name string) (string, string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", "", err
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", "", fmt.Errorf("need an absolute http(s) base URL, got %q", raw)
	}
	base := u.Scheme + "://" + u.Host + u.Path
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	if name == "" {
		name = u.Host
	}
	return name, base, nil
}

// RegisterRequest is the POST /v1/fleet/register body. URL is the member's
// reachable base URL (required); Name defaults to the URL's host:port; App
// names the member's workload in the member table. Re-POSTing is the
// heartbeat: same name, deadline moves.
type RegisterRequest struct {
	URL  string `json:"url"`
	Name string `json:"name,omitempty"`
	App  string `json:"app,omitempty"`
}

// RegisterResponse acknowledges a registration or heartbeat.
type RegisterResponse struct {
	Name       string  `json:"name"`
	TTLSeconds float64 `json:"ttlSeconds"`
	Members    int     `json:"members"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeFieldErr(w, http.StatusBadRequest, "body", "decoding request: %v", err)
		return
	}
	if req.URL == "" {
		writeFieldErr(w, http.StatusBadRequest, "url", "url is required")
		return
	}
	name, base, err := normalizeMemberURL(req.URL, req.Name)
	if err != nil {
		writeFieldErr(w, http.StatusBadRequest, "url", "%v", err)
		return
	}
	if !s.reg.upsert(name, base, req.App, false) {
		writeErr(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	writeJSON(w, http.StatusOK, RegisterResponse{
		Name:       name,
		TTLSeconds: s.opts.TTL.Seconds(),
		Members:    s.reg.count(),
	})
}

// HealthzResponse is the GET /v1/healthz document.
type HealthzResponse struct {
	OK            bool    `json:"ok"`
	Members       int     `json:"members"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthzResponse{
		OK:            true,
		Members:       s.reg.count(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet": true,
		"endpoints": []string{
			"POST /v1/fleet/register", "GET /v1/fleet/status",
			"GET /v1/fleet/report", "GET /v1/fleet/events",
			"POST /v1/select", "POST /v1/sampling", "POST /v1/adapt",
			"GET /v1/healthz", "GET /metrics",
		},
	})
}

// probeLoop polls every member's GET /v1/healthz at ProbeInterval and
// records the outcome in the member table. Static members have no
// heartbeat, so the probe is their only liveness signal; for registered
// members it colors the table between heartbeats (eviction stays
// TTL-driven).
func (s *Server) probeLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		for _, m := range s.reg.snapshot() {
			_, code, err := s.getMember(m.URL, "/v1/healthz")
			if err != nil {
				s.reg.setHealth(m.Name, false, err.Error(), false)
			} else if code != http.StatusOK {
				s.reg.setHealth(m.Name, false, fmt.Sprintf("healthz status %d", code), false)
			} else {
				s.reg.setHealth(m.Name, true, "", true)
			}
		}
	}
}

// getMember GETs one member path under the per-request timeout.
func (s *Server) getMember(base, path string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return body, resp.StatusCode, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeFieldErr names the request field a 400 rejects, mirroring ctl.
func writeFieldErr(w http.ResponseWriter, code int, field, format string, args ...any) {
	writeJSON(w, code, map[string]string{
		"error": fmt.Sprintf(format, args...),
		"field": field,
	})
}

// sortedNames returns the map's keys sorted (stable JSON and metrics).
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
