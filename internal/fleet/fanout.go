package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MemberResult is one member's outcome of a fan-out mutation.
type MemberResult struct {
	Member   string `json:"member"`
	URL      string `json:"url"`
	Status   int    `json:"status,omitempty"` // last HTTP status seen, 0 on transport failure
	Attempts int    `json:"attempts"`
	Error    string `json:"error,omitempty"`
	// Response relays the member's own JSON response verbatim, so the
	// caller can see exactly what each member applied (or rejected).
	Response json.RawMessage `json:"response,omitempty"`
}

// FanoutResponse reports a cluster-wide mutation: which members applied it
// and which did not. The HTTP status encodes the split — 200 all applied,
// 207 partial (Divergent true), 502 none, 503 empty fleet. The fleet is
// divergent whenever some but not all members applied: callers that need
// convergence must retry or evict the failed members themselves.
type FanoutResponse struct {
	Path      string         `json:"path"`
	Members   int            `json:"members"`
	Divergent bool           `json:"divergent"`
	Applied   []MemberResult `json:"applied"`
	Failed    []MemberResult `json:"failed,omitempty"`
}

// fanoutHandler returns the handler that replays the request body to the
// named control path on every live member.
func (s *Server) fanoutHandler(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
		if err != nil {
			writeFieldErr(w, http.StatusBadRequest, "body", "reading request: %v", err)
			return
		}
		members := s.reg.snapshot()
		if len(members) == 0 {
			writeErr(w, http.StatusServiceUnavailable, "fleet has no members")
			return
		}
		s.fanouts.Add(1)

		// Relay the caller's Content-Type: /v1/select distinguishes raw
		// spec source (text/plain) from JSON documents by it.
		ctype := r.Header.Get("Content-Type")
		if ctype == "" {
			ctype = "application/json"
		}
		results := make([]MemberResult, len(members))
		var wg sync.WaitGroup
		for i, m := range members {
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i] = s.postMember(m, path, ctype, body)
			}()
		}
		wg.Wait()

		resp := FanoutResponse{Path: path, Members: len(members)}
		for _, res := range results {
			if res.Error == "" {
				resp.Applied = append(resp.Applied, res)
			} else {
				resp.Failed = append(resp.Failed, res)
				s.fanoutFailures.Add(1)
			}
		}
		sort.Slice(resp.Applied, func(i, j int) bool { return resp.Applied[i].Member < resp.Applied[j].Member })
		sort.Slice(resp.Failed, func(i, j int) bool { return resp.Failed[i].Member < resp.Failed[j].Member })

		code := http.StatusOK
		switch {
		case len(resp.Applied) == 0:
			code = http.StatusBadGateway
		case len(resp.Failed) > 0:
			code = http.StatusMultiStatus
			resp.Divergent = true
		}
		writeJSON(w, code, resp)
	}
}

// postMember POSTs one mutation to one member with per-attempt timeout and
// doubling backoff. Transport errors and 5xx responses are retried; a 4xx
// is the member deterministically rejecting the document, so it is
// reported immediately — retrying a rejection cannot converge the fleet.
//
// Health classification separates "reachable" from "applied": any response
// carrying an HTTP status proves the member is alive, so only a transport
// failure (no status received) marks it unhealthy. A member that answers
// but rejects or fails the mutation stays healthy with the fan-out error
// recorded as its lastErr — it is scrapeable even though divergent.
// Classification itself is by status code whenever one was received: a
// body-read failure after the status line is response truncation, not
// unreachability, so a truncated 4xx is still a deterministic rejection
// and must not be retried.
func (s *Server) postMember(m memberSnap, path, ctype string, body []byte) MemberResult {
	res := MemberResult{Member: m.Name, URL: m.URL}
	attempts := 1 + s.opts.Retries
	backoff := s.opts.Backoff
	for attempt := 1; attempt <= attempts; attempt++ {
		res.Attempts = attempt
		if attempt > 1 {
			select {
			case <-s.baseCtx.Done():
				res.Error = "coordinator is shutting down"
				return res
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		status, respBody, err := s.postOnce(m.URL+path, ctype, body)
		if status == 0 {
			// No status line came back: the member is unreachable.
			res.Status, res.Error = 0, err.Error()
			s.reg.setHealth(m.Name, false, err.Error(), false)
			continue
		}
		res.Status = status
		res.Response = jsonOrNil(respBody)
		if status >= 200 && status < 300 {
			// The member applied the mutation; a truncated success body
			// only loses the relayed response, not the outcome.
			res.Error = ""
			s.reg.setHealth(m.Name, true, "", true)
			return res
		}
		if err != nil {
			res.Error = fmt.Sprintf("member returned status %d (body read failed: %v)", status, err)
		} else {
			res.Error = fmt.Sprintf("member returned status %d", status)
		}
		s.reg.setHealth(m.Name, true, res.Error, true)
		if status >= 400 && status < 500 {
			return res
		}
	}
	return res
}

func (s *Server) postOnce(url, ctype string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", ctype)
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, respBody, nil
}

// jsonOrNil relays b only when it is valid JSON — the fan-out response is
// itself JSON, and a member replying with a non-JSON body must not be able
// to corrupt it.
func jsonOrNil(b []byte) json.RawMessage {
	if json.Valid(b) {
		return json.RawMessage(b)
	}
	return nil
}
