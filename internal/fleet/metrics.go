package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// handleMetrics renders the coordinator's own series, then every
// reachable member's exposition with a member="<name>" label injected
// into each sample, so one Prometheus scrape of the coordinator covers
// the whole fleet. Families are merged across members (HELP/TYPE emitted
// once, samples grouped per family, as the text format requires); an
// unreachable member contributes capi_fleet_member_up 0 instead of
// silently vanishing from the scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	members := s.reg.snapshot()
	results := make([]scraped, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		results[i].name = m.Name
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, err := s.getMember(m.URL, "/metrics")
			if err != nil {
				results[i].err = err
			} else if code != http.StatusOK {
				results[i].err = fmt.Errorf("status %d", code)
			} else {
				results[i].body = body
			}
		}()
	}
	wg.Wait()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	var b strings.Builder
	own := func(help, typ, name string, value any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	healthy := 0
	for _, m := range members {
		if m.Healthy {
			healthy++
		}
	}
	own("Members currently in the fleet registry.", "gauge",
		"capi_fleet_members", len(members))
	own("Members whose last probe or control request succeeded.", "gauge",
		"capi_fleet_members_healthy", healthy)
	own("Registrations and heartbeats accepted.", "counter",
		"capi_fleet_registrations_total", s.reg.registrations.Load())
	own("Members evicted after missing their heartbeat TTL.", "counter",
		"capi_fleet_evictions_total", s.reg.evictions.Load())
	own("Fan-out mutations served.", "counter",
		"capi_fleet_fanouts_total", s.fanouts.Load())
	own("Per-member application failures across all fan-outs.", "counter",
		"capi_fleet_fanout_member_failures_total", s.fanoutFailures.Load())
	own("Connected fleet SSE clients.", "gauge",
		"capi_fleet_sse_clients", s.hub.clients())
	own("Coordinator uptime.", "gauge",
		"capi_fleet_uptime_seconds", time.Since(s.started).Seconds())

	fmt.Fprintf(&b, "# HELP capi_fleet_member_events_total SSE events relayed per member.\n")
	fmt.Fprintf(&b, "# TYPE capi_fleet_member_events_total counter\n")
	for _, m := range members {
		fmt.Fprintf(&b, "capi_fleet_member_events_total{member=%q} %d\n", m.Name, m.Events)
	}
	fmt.Fprintf(&b, "# HELP capi_fleet_member_up Whether the member's /metrics scrape succeeded.\n")
	fmt.Fprintf(&b, "# TYPE capi_fleet_member_up gauge\n")
	for i, m := range members {
		up := 0
		if results[i].err == nil {
			up = 1
		}
		fmt.Fprintf(&b, "capi_fleet_member_up{member=%q} %d\n", m.Name, up)
	}

	b.WriteString(mergeExpositions(results))
	w.Write([]byte(b.String())) //nolint:errcheck // client gone
}

// scraped is one member's raw /metrics scrape.
type scraped struct {
	name string
	body []byte
	err  error
}

// family is one merged metric family: HELP/TYPE from the first member
// that declared them, samples from every member in member order.
type family struct {
	help    string
	typ     string
	samples []string
}

// mergeExpositions relabels and merges the members' Prometheus text
// expositions. Each sample line gains a leading member="<name>" label;
// family header lines are deduplicated and samples regrouped under one
// header per family, keeping the output a valid 0.0.4 exposition.
func mergeExpositions(scrapes []scraped) string {
	families := map[string]*family{}
	var order []string
	fam := func(metric string) *family {
		f := families[metric]
		if f == nil {
			f = &family{}
			families[metric] = f
			order = append(order, metric)
		}
		return f
	}
	for _, sc := range scrapes {
		if sc.err != nil || len(sc.body) == 0 {
			continue
		}
		for _, line := range strings.Split(string(sc.body), "\n") {
			line = strings.TrimRight(line, "\r")
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				kind, metric, rest, ok := parseHeader(line)
				if !ok {
					continue
				}
				f := fam(metric)
				switch kind {
				case "HELP":
					if f.help == "" {
						f.help = rest
					}
				case "TYPE":
					if f.typ == "" {
						f.typ = rest
					}
				}
				continue
			}
			metric, relabelled, ok := relabel(line, sc.name)
			if !ok {
				continue
			}
			f := fam(metric)
			f.samples = append(f.samples, relabelled)
		}
	}
	sort.Strings(order)
	var b strings.Builder
	for _, metric := range order {
		f := families[metric]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", metric, f.help)
		}
		if f.typ != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", metric, f.typ)
		}
		for _, s := range f.samples {
			b.WriteString(s)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// parseHeader splits "# HELP name text" / "# TYPE name type" lines.
func parseHeader(line string) (kind, metric, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// relabel injects member="<name>" as the first label of one sample line.
// "m{a=\"b\"} 1" → "m{member=\"x\",a=\"b\"} 1"; "m 1" → "m{member=\"x\"} 1".
func relabel(line, memberName string) (metric, out string, ok bool) {
	tag := fmt.Sprintf("member=%q", memberName)
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		sep := ","
		if j == i+1 { // empty label set "m{} 1"
			sep = ""
		}
		return line[:i], line[:i+1] + tag + sep + line[i+1:], true
	}
	i := strings.IndexByte(line, ' ')
	if i <= 0 {
		return "", "", false
	}
	return line[:i], line[:i] + "{" + tag + "}" + line[i:], true
}
