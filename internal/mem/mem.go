// Package mem models a page-granular virtual address space with protection
// bits and an mprotect operation. XRay's sled patching (§V-A of the paper)
// works by marking the text pages containing sleds writable, rewriting the
// placeholder instructions, and restoring the protection; this package
// provides exactly that substrate. Go cannot rewrite its own text segment
// (see DESIGN.md on the eBPF-uprobes fallback the repro hint mentions), so
// patching targets this modelled address space instead.
package mem

import (
	"fmt"
	"sort"
	"sync"
)

// PageSize is the modelled page size in bytes.
const PageSize = 4096

// Prot is a bitmask of page protection flags.
type Prot uint8

// Protection flag bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// String renders the protection like a /proc/self/maps entry ("r-x").
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// AddressSpace tracks the protection of mapped pages. It is safe for
// concurrent use.
type AddressSpace struct {
	mu    sync.RWMutex
	pages map[uint64]Prot // page index -> protection

	mprotectCalls int
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: map[uint64]Prot{}}
}

func pageRange(addr, size uint64) (first, last uint64) {
	if size == 0 {
		size = 1
	}
	return addr / PageSize, (addr + size - 1) / PageSize
}

// Map maps the pages covering [addr, addr+size) with the given protection.
// Mapping an already-mapped page is an error.
func (as *AddressSpace) Map(addr, size uint64, prot Prot) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	first, last := pageRange(addr, size)
	for pg := first; pg <= last; pg++ {
		if _, exists := as.pages[pg]; exists {
			return fmt.Errorf("mem: page %#x already mapped", pg*PageSize)
		}
	}
	for pg := first; pg <= last; pg++ {
		as.pages[pg] = prot
	}
	return nil
}

// Unmap removes the pages covering [addr, addr+size). Unmapping pages that
// are not mapped is an error.
func (as *AddressSpace) Unmap(addr, size uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	first, last := pageRange(addr, size)
	for pg := first; pg <= last; pg++ {
		if _, exists := as.pages[pg]; !exists {
			return fmt.Errorf("mem: unmapping unmapped page %#x", pg*PageSize)
		}
	}
	for pg := first; pg <= last; pg++ {
		delete(as.pages, pg)
	}
	return nil
}

// Mprotect changes the protection of the pages covering [addr, addr+size).
// All pages must be mapped. It returns the number of pages affected.
func (as *AddressSpace) Mprotect(addr, size uint64, prot Prot) (int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	first, last := pageRange(addr, size)
	for pg := first; pg <= last; pg++ {
		if _, exists := as.pages[pg]; !exists {
			return 0, fmt.Errorf("mem: mprotect on unmapped page %#x", pg*PageSize)
		}
	}
	for pg := first; pg <= last; pg++ {
		as.pages[pg] = prot
	}
	as.mprotectCalls++
	return int(last - first + 1), nil
}

// CheckWrite verifies that every page covering [addr, addr+size) is mapped
// writable; it models the fault a stray text write would take.
func (as *AddressSpace) CheckWrite(addr, size uint64) error {
	as.mu.RLock()
	defer as.mu.RUnlock()
	first, last := pageRange(addr, size)
	for pg := first; pg <= last; pg++ {
		prot, exists := as.pages[pg]
		if !exists {
			return fmt.Errorf("mem: write to unmapped address %#x", addr)
		}
		if prot&ProtWrite == 0 {
			return fmt.Errorf("mem: write to non-writable page %#x (prot %s)", pg*PageSize, prot)
		}
	}
	return nil
}

// ProtAt returns the protection of the page containing addr.
func (as *AddressSpace) ProtAt(addr uint64) (Prot, bool) {
	as.mu.RLock()
	defer as.mu.RUnlock()
	p, ok := as.pages[addr/PageSize]
	return p, ok
}

// MprotectCalls returns the number of Mprotect invocations, used by the
// patch-time cost model.
func (as *AddressSpace) MprotectCalls() int {
	as.mu.RLock()
	defer as.mu.RUnlock()
	return as.mprotectCalls
}

// MappedPages returns the sorted page start addresses (for tests/reports).
func (as *AddressSpace) MappedPages() []uint64 {
	as.mu.RLock()
	defer as.mu.RUnlock()
	out := make([]uint64, 0, len(as.pages))
	for pg := range as.pages {
		out = append(out, pg*PageSize)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
