package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		0:                               "---",
		ProtRead:                        "r--",
		ProtRead | ProtWrite:            "rw-",
		ProtRead | ProtExec:             "r-x",
		ProtRead | ProtWrite | ProtExec: "rwx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Prot(%d) = %q, want %q", p, got, want)
		}
	}
}

func TestMapUnmap(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0x400000, 2*PageSize, ProtRead|ProtExec); err != nil {
		t.Fatal(err)
	}
	if err := as.Map(0x400000, 1, ProtRead); err == nil {
		t.Fatal("double map should fail")
	}
	if p, ok := as.ProtAt(0x400000 + PageSize); !ok || p != ProtRead|ProtExec {
		t.Fatalf("ProtAt = %v, %v", p, ok)
	}
	if err := as.Unmap(0x400000, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ProtAt(0x400000); ok {
		t.Fatal("page still mapped after unmap")
	}
	if err := as.Unmap(0x400000, 1); err == nil {
		t.Fatal("unmapping unmapped page should fail")
	}
}

func TestMprotectAndCheckWrite(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0, 3*PageSize, ProtRead|ProtExec); err != nil {
		t.Fatal(err)
	}
	if err := as.CheckWrite(100, 8); err == nil {
		t.Fatal("write to r-x page should fault")
	}
	n, err := as.Mprotect(0, 2*PageSize, ProtRead|ProtWrite|ProtExec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("pages affected = %d, want 2", n)
	}
	if err := as.CheckWrite(100, 8); err != nil {
		t.Fatalf("write after mprotect: %v", err)
	}
	// Third page untouched.
	if err := as.CheckWrite(2*PageSize+10, 4); err == nil {
		t.Fatal("third page should remain non-writable")
	}
	// Write spanning a writable and non-writable page faults.
	if err := as.CheckWrite(2*PageSize-4, 8); err == nil {
		t.Fatal("spanning write should fault")
	}
	if as.MprotectCalls() != 1 {
		t.Fatalf("MprotectCalls = %d", as.MprotectCalls())
	}
}

func TestMprotectUnmapped(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Mprotect(0, PageSize, ProtRead); err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("err = %v", err)
	}
	if err := as.CheckWrite(0, 1); err == nil {
		t.Fatal("write to unmapped should fail")
	}
}

func TestZeroSizeUsesOnePage(t *testing.T) {
	as := NewAddressSpace()
	if err := as.Map(0, 0, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, ok := as.ProtAt(0); !ok {
		t.Fatal("zero-size map should map one page")
	}
	if _, ok := as.ProtAt(PageSize); ok {
		t.Fatal("zero-size map must not spill to next page")
	}
}

func TestMappedPagesSorted(t *testing.T) {
	as := NewAddressSpace()
	_ = as.Map(5*PageSize, PageSize, ProtRead)
	_ = as.Map(1*PageSize, PageSize, ProtRead)
	pages := as.MappedPages()
	if len(pages) != 2 || pages[0] != PageSize || pages[1] != 5*PageSize {
		t.Fatalf("MappedPages = %v", pages)
	}
}

// Property: after Map with prot P, every address in range reads back P, and
// CheckWrite succeeds iff P includes ProtWrite.
func TestMapProtProperty(t *testing.T) {
	f := func(pageIdx uint16, npages uint8, wantWrite bool) bool {
		as := NewAddressSpace()
		addr := uint64(pageIdx) * PageSize
		size := (uint64(npages%8) + 1) * PageSize
		prot := ProtRead
		if wantWrite {
			prot |= ProtWrite
		}
		if err := as.Map(addr, size, prot); err != nil {
			return false
		}
		err := as.CheckWrite(addr, size)
		if wantWrite {
			return err == nil
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
