package lint

import (
	"go/ast"
	"go/types"
)

// funcInfo is one function or method declared in a target package, with its
// parsed //capi: doc annotations.
type funcInfo struct {
	key  string // types.Func.FullName()
	decl *ast.FuncDecl
	pkg  *Package
	fn   *types.Func
	ann  map[string]string // directive → argument
}

// moduleIndex is the whole-module view the cross-package analyzers walk:
// every declared function keyed by its fully-qualified name, plus the set of
// target import paths ("in module" for traversal purposes).
//
// Functions are keyed by FullName string, not object identity: a target
// package sees its in-module dependencies through gc export data, so the
// *types.Func a call site resolves to is a different object from the one
// the callee's own source produced — but their FullNames agree.
type moduleIndex struct {
	funcs   map[string]*funcInfo
	targets map[string]bool
}

func buildIndex(pass *Pass) *moduleIndex {
	ix := &moduleIndex{
		funcs:   map[string]*funcInfo{},
		targets: map[string]bool{},
	}
	for _, pkg := range pass.Packages {
		ix.targets[pkg.ImportPath] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ix.funcs[fn.FullName()] = &funcInfo{
					key:  fn.FullName(),
					decl: fd,
					pkg:  pkg,
					fn:   fn,
					ann:  FuncAnnotations(fd),
				}
			}
		}
	}
	return ix
}

// inModule reports whether the package path belongs to the analyzed module.
func (ix *moduleIndex) inModule(pkg *types.Package) bool {
	return pkg != nil && ix.targets[pkg.Path()]
}

// lookup resolves a call-site *types.Func (possibly an export-data object)
// to the declaration index entry, or nil for functions without source here.
func (ix *moduleIndex) lookup(fn *types.Func) *funcInfo {
	return ix.funcs[fn.FullName()]
}

// calleeOf resolves the static callee of a call expression: the *types.Func
// for direct function and method calls, or nil for dynamic calls (func
// values, interface methods), conversions, and builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil && interfaceMethod(fn) {
				return nil // dynamic dispatch
			}
			return fn
		}
		// Qualified identifier (pkg.Fn).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// interfaceMethod reports whether fn is declared on an interface — a call
// through it is dynamic dispatch, not a statically resolvable callee.
func interfaceMethod(fn *types.Func) bool {
	recv := fn.Signature().Recv()
	return recv != nil && types.IsInterface(recv.Type().Underlying())
}

// builtinOf returns the builtin a call invokes ("make", "append", …), or "".
func builtinOf(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether the call expression is a type conversion,
// returning the target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// fieldKeyOf builds the stable cross-package key of a selected struct field:
// "pkgpath.StructName.field". Returns "" when the receiver is not a named
// (or pointer-to-named) struct type.
func fieldKeyOf(sel *types.Selection) string {
	field, ok := sel.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return ""
	}
	recv := sel.Recv()
	for {
		if p, ok := recv.Underlying().(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		if a, ok := types.Unalias(recv).(*types.Named); ok {
			named = a
		} else {
			return ""
		}
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name()
}

// fieldKey builds the same key from a struct declaration's side:
// the named type object plus the field name.
func fieldKey(structObj *types.TypeName, fieldName string) string {
	if structObj.Pkg() == nil {
		return ""
	}
	return structObj.Pkg().Path() + "." + structObj.Name() + "." + fieldName
}
