// Package fixture mirrors the dispatch-path shape of the real runtime: a
// handler registry with a SetHandler choke point, an annotated dispatch
// method, transitive callees, a reviewed cold path, and the escape
// hatches. Every // want line is a seeded violation the hotpath analyzer
// must catch; lines without one must stay silent.
package fixture

import (
	"sync"
	"sync/atomic"
)

// EntryType mirrors xray.EntryType.
type EntryType uint8

// XRay mirrors the real handler registry the analyzer polices.
type XRay struct {
	handler func(id int32, kind EntryType)
}

// SetHandler is the registration choke point.
func (x *XRay) SetHandler(h func(id int32, kind EntryType)) { x.handler = h }

// Runtime mirrors the dispatch owner.
type Runtime struct {
	xr     *XRay
	events int64
	mu     sync.Mutex
	starts []int64
	seen   map[int32]bool
}

// install registers the annotated dispatch method: the compliant shape.
func (rt *Runtime) install() {
	rt.xr.SetHandler(rt.dispatch)
}

// installLiteral registers a closure: always an error, a literal cannot
// carry the annotation.
func (rt *Runtime) installLiteral() {
	rt.xr.SetHandler(func(id int32, kind EntryType) {}) // want "handler registered with SetHandler is a function literal"
}

// installUnannotated mirrors deleting //capi:hotpath from the dispatch
// method: the registration itself is flagged.
func (rt *Runtime) installUnannotated() {
	rt.xr.SetHandler(rt.rawDispatch) // want "handler Runtime.rawDispatch registered with SetHandler is not annotated //capi:hotpath"
}

// rawDispatch is dispatch with its annotation deleted.
func (rt *Runtime) rawDispatch(id int32, kind EntryType) {}

// dispatch is the per-event hot path.
//
//capi:hotpath
func (rt *Runtime) dispatch(id int32, kind EntryType) {
	atomic.AddInt64(&rt.events, 1)
	buf := make([]int64, 4) // want "hot path \\(//capi:hotpath Runtime.dispatch\\): make allocates"
	_ = buf
	rt.record(id)
	rt.overflow(id)
}

// record is reached from dispatch without its own annotation: the
// traversal must follow it and attribute findings to the root.
func (rt *Runtime) record(id int32) {
	rt.mu.Lock() // want "hot path \\(Runtime.record, reached from //capi:hotpath Runtime.dispatch\\): call to sync.Lock may allocate, lock, or block"
	defer rt.mu.Unlock()
	rt.seen[id] = true // want "map write may rehash and allocate"
}

// overflow is the reviewed out-of-line slow path: //capi:coldpath stops
// the traversal, so its allocations stay legal.
//
//capi:coldpath
func (rt *Runtime) overflow(id int32) {
	rt.starts = append(rt.starts, int64(id))
	rt.seen = make(map[int32]bool)
}

// admitTimed carries the sampler's amortized-append hatch: the waiver
// silences exactly that line.
//
//capi:hotpath
func (rt *Runtime) admitTimed(now int64) {
	//capi:hotpath-ok amortized: grows to the max nesting depth once, then never again
	rt.starts = append(rt.starts, now)
	atomic.AddInt64(&rt.events, 1)
}

// count is a fully compliant hot function: atomics, map reads, and
// non-interface returns are all free.
//
//capi:hotpath
func (rt *Runtime) count(id int32) bool {
	atomic.AddInt64(&rt.events, 1)
	return rt.seen[id]
}

var sink any

// publish exercises the boxing, channel, closure, and string rules.
//
//capi:hotpath
func publish(ch chan int64, id int32, name string) {
	ch <- int64(id)     // want "channel send may block"
	label := name + "!" // want "string concatenation allocates"
	_ = label
	f := func() {} // want "function literal allocates a closure"
	f()
	sink = id // want "assignment boxes a concrete value into an interface"
}
