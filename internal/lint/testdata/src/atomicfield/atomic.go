// Package fixture exercises the atomicfield analyzer: Counter.n is
// accessed through sync/atomic package functions, so plain accesses
// elsewhere mix memory orders; typed atomics and plain-only fields stay
// out of scope; constructors carry the reviewed hatch.
package fixture

import "sync/atomic"

// Counter uses legacy package-function atomics on n.
type Counter struct {
	n    int64
	cold int64
}

// Incr is the sanctioned atomic writer.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.n, 1)
}

// Load is the sanctioned atomic reader.
func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.n)
}

// Peek reads the field plainly: the mixed-memory-order bug.
func (c *Counter) Peek() int64 {
	return c.n // want "field fixture.Counter.n is accessed via sync/atomic \\(at .*atomic.go:\\d+\\); plain access mixes memory orders"
}

// Reset writes it plainly: equally flagged.
func (c *Counter) Reset() {
	c.n = 0 // want "field fixture.Counter.n is accessed via sync/atomic"
}

// New initializes the field before the value is published: the reviewed
// hatch keeps constructors readable.
func New(seed int64) *Counter {
	c := &Counter{}
	c.n = seed //capi:nonatomic-ok pre-publication: no other goroutine can see c yet
	return c
}

// Cold is plain-only: out of the analyzer's scope.
func (c *Counter) Cold() int64 { return c.cold }

// Typed uses a typed atomic: mixed access is unrepresentable, so the
// analyzer ignores the field entirely.
type Typed struct {
	v atomic.Int64
}

// Bump goes through the typed API.
func (t *Typed) Bump() int64 {
	t.v.Add(1)
	return t.v.Load()
}
