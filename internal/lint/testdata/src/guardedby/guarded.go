// Package fixture exercises the guardedby analyzer: annotated fields,
// in-body Lock and RLock acquisition, the //capi:locked caller-holds
// annotation, the constructor hatch, and a guard missing its argument.
package fixture

import "sync"

// Registry guards its table with mu.
type Registry struct {
	mu    sync.Mutex
	names map[string]int //capi:guardedby mu
	hits  int            //capi:guardedby mu
}

// Add holds the lock: compliant.
func (r *Registry) Add(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.names[name] = len(r.names)
	r.hits++
}

// Peek reads the table without the lock.
func (r *Registry) Peek(name string) (int, bool) {
	id, ok := r.names[name] // want "field fixture.Registry.names \\(//capi:guardedby mu\\) accessed without holding mu"
	return id, ok
}

// addLocked runs with the lock already held by its caller.
//
//capi:locked mu
func (r *Registry) addLocked(name string) {
	r.names[name] = len(r.names)
	r.hits++
}

// New initializes guarded fields before the value is published.
func New() *Registry {
	r := &Registry{}
	r.names = map[string]int{} //capi:unguarded-ok pre-publication: the constructor owns r exclusively
	return r
}

// Stats is read-mostly under an RWMutex.
type Stats struct {
	mu  sync.RWMutex
	max int64 //capi:guardedby mu
}

// Max holds the read lock: compliant.
func (s *Stats) Max() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.max
}

// Racy reads without any lock.
func (s *Stats) Racy() int64 {
	return s.max // want "field fixture.Stats.max \\(//capi:guardedby mu\\) accessed without holding mu"
}

// Broken demonstrates the annotation's own diagnostic: a guard needs the
// mutex field's name.
type Broken struct {
	//capi:guardedby
	n int // want "//capi:guardedby needs a mutex field name argument"
}
