// Package fixture exercises the noexit analyzer: library code must not
// abort the process it measures; init-time assertions carry the reviewed
// hatch; the cmd/ package in this module stays exempt.
package fixture

import (
	"errors"
	"log"
	"os"
)

// Explode panics bare: flagged.
func Explode() {
	panic("boom") // want "bare panic in library package; return an error or degrade instead"
}

// Quit exits: flagged.
func Quit() {
	os.Exit(1) // want "library package calls os.Exit; return an error or degrade instead"
}

// Moan logs fatally: flagged.
func Moan() {
	log.Fatalf("unrecoverable: %v", errors.New("x")) // want "library package calls log.Fatalf; return an error or degrade instead"
}

// MustRegister mirrors the registries' init-time assertion hatch.
func MustRegister(name string) {
	if name == "" {
		panic("empty backend name") //capi:panic-ok registration runs in init functions; an empty name is a build-time mistake
	}
}

// Degrade is the compliant shape: report, never abort.
func Degrade() error {
	return errors.New("probe disabled")
}
