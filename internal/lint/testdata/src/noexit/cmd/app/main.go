// Command app proves the exemption: a main package under cmd/ may exit
// and panic freely.
package main

import (
	"os"

	"fixture"
)

func main() {
	if err := fixture.Degrade(); err == nil {
		panic("unreachable")
	}
	os.Exit(0)
}
