package lint_test

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
	"testing"

	"capi/internal/lint"
	"capi/internal/lint/linttest"
)

// The four fixture suites: each testdata/src/<name>/ module seeds every
// violation class its analyzer owns (plus clean and escape-hatch cases),
// so a regression that stops a diagnostic from firing fails on the
// corresponding unmatched // want line.

func TestHotpath(t *testing.T) {
	linttest.Run(t, "testdata/src/hotpath", lint.HotpathAnalyzer)
}

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicfield", lint.AtomicFieldAnalyzer)
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, "testdata/src/guardedby", lint.GuardedByAnalyzer)
}

func TestNoExit(t *testing.T) {
	linttest.Run(t, "testdata/src/noexit", lint.NoExitAnalyzer)
}

// repo caches one whole-module load for the tests below: go list -export
// over every package takes a couple of seconds, so share it.
var repo struct {
	once sync.Once
	fset *token.FileSet
	pkgs []*lint.Package
	err  error
}

func loadRepo(t *testing.T) (*token.FileSet, []*lint.Package) {
	t.Helper()
	repo.once.Do(func() {
		repo.fset, repo.pkgs, repo.err = lint.Load("../..", "./...")
	})
	if repo.err != nil {
		t.Fatalf("loading module: %v", repo.err)
	}
	return repo.fset, repo.pkgs
}

// TestRepoClean mirrors the CI gate: the full suite over the whole module
// must report nothing — every real violation is either fixed or carries a
// reviewed escape hatch.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	fset, pkgs := loadRepo(t)
	diags, err := lint.Run(fset, pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// hotRoots are the event-dispatch functions that must keep their
// //capi:hotpath annotation: losing one silently exempts that slice of
// the per-event path from the analyzer (and, for the XRay handler, trips
// the SetHandler registration rule as a second line of defense).
var hotRoots = []string{
	"capi/internal/xray.Runtime.Dispatch",
	"capi/internal/dyncapi.Runtime.dispatch",
	"capi/internal/dyncapi.Runtime.dispatchAsync",
	"capi/internal/dyncapi.pipeline.append",
	"capi/internal/dyncapi.Mux.OnEnter",
	"capi/internal/dyncapi.Mux.OnExit",
	"capi/internal/dyncapi.funcSampleState.admit",
	"capi/internal/dyncapi.ExtraeBackend.OnEnter",
	"capi/internal/dyncapi.ExtraeBackend.OnExit",
	"capi/internal/trace.Buffer.Append",
}

func TestDispatchPathAnnotated(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	_, pkgs := loadRepo(t)
	annotated := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if _, hot := lint.FuncAnnotations(fd)[lint.MarkHotpath]; !hot {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				annotated[funcKey(pkg.ImportPath, fn)] = true
			}
		}
	}
	for _, want := range hotRoots {
		if !annotated[want] {
			t.Errorf("%s must carry %s: it is part of the per-event dispatch path", want, lint.MarkHotpath)
		}
	}
}

// funcKey renders "pkgpath.Type.Method" (or "pkgpath.Func") to match the
// hotRoots table.
func funcKey(path string, fn *types.Func) string {
	name := fn.Name()
	if recv := fn.Signature().Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := types.Unalias(rt).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	return path + "." + name
}

func TestSelect(t *testing.T) {
	all, err := lint.Select("all")
	if err != nil || len(all) != 4 {
		t.Fatalf("Select(all) = %d analyzers, err %v; want the suite of 4", len(all), err)
	}
	two, err := lint.Select("hotpath, noexit")
	if err != nil || len(two) != 2 || two[0].Name != "hotpath" || two[1].Name != "noexit" {
		t.Fatalf("Select(hotpath, noexit) = %v, err %v", two, err)
	}
	if _, err := lint.Select("bogus"); err == nil {
		t.Fatal("Select(bogus) succeeded; want an unknown-analyzer error")
	}
}
