package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAnalyzer enforces the allocation/lock discipline of the event
// dispatch path. Functions annotated //capi:hotpath and their transitive
// statically-resolvable in-module callees must not allocate, take locks,
// spawn goroutines, touch channels, or call into stdlib packages that may
// do any of that. Dynamic calls (interface methods, func values) stop the
// traversal: they are the designed backend boundary. //capi:coldpath on a
// callee marks a reviewed out-of-line slow path and stops the traversal;
// //capi:hotpath-ok on (or directly above) an offending line waives one
// reviewed operation.
//
// The analyzer additionally polices handler registration: passing a
// function literal, or any in-module function not annotated //capi:hotpath,
// to a method named SetHandler is an error — so removing the annotation
// from the dispatch path is itself caught.
var HotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "//capi:hotpath functions and their in-module callees must not allocate, lock, or block",
	Run:  runHotpath,
}

// hotpathAllowedPkgs are the stdlib packages hot code may call into: all
// operations are branch-free register/memory work.
var hotpathAllowedPkgs = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"unsafe":      true,
}

// hotpathFlaggedBuiltins allocate (or, for print/println, write to stderr).
var hotpathFlaggedBuiltins = map[string]string{
	"make":    "make allocates",
	"new":     "new allocates",
	"append":  "append may grow and allocate",
	"delete":  "map delete rehashes",
	"clear":   "clear walks and rewrites the container",
	"print":   "print writes to stderr",
	"println": "println writes to stderr",
}

// nonBlockingSyncMethods never block or allocate, so deferred unlocks and
// WaitGroup.Done stay legal on the hot path even though package sync is
// otherwise off-limits.
var nonBlockingSyncMethods = map[string]bool{
	"Unlock":  true,
	"RUnlock": true,
	"Done":    true,
}

func runHotpath(pass *Pass) error {
	ix := buildIndex(pass)

	type visit struct {
		fi   *funcInfo
		root string // short name of the //capi:hotpath root that reaches it
	}
	var queue []visit
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := ix.lookup(fn)
				if fi == nil {
					continue
				}
				if _, hot := fi.ann[MarkHotpath]; hot {
					queue = append(queue, visit{fi: fi, root: shortFuncName(fn)})
				}
				checkSetHandlerCalls(pass, ix, fi)
			}
		}
	}

	visited := map[string]bool{}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if visited[v.fi.key] {
			continue
		}
		visited[v.fi.key] = true
		callees := checkHotFunc(pass, ix, v.fi, v.root)
		for _, c := range callees {
			queue = append(queue, visit{fi: c, root: v.root})
		}
	}
	return nil
}

// shortFuncName renders a function for diagnostics: "Type.Method" or "Fn".
func shortFuncName(fn *types.Func) string {
	sig := fn.Signature()
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// checkSetHandlerCalls enforces the registration rule in every function.
func checkSetHandlerCalls(pass *Pass, ix *moduleIndex, fi *funcInfo) {
	if fi.decl.Body == nil {
		return
	}
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee.Name() != "SetHandler" || !ix.inModule(callee.Pkg()) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		report := func(format string, args ...any) {
			if f := fi.pkg.FileOf(arg.Pos()); f != nil &&
				fi.pkg.Suppressed(pass.Fset, f, arg.Pos(), MarkHotpathOK) {
				return
			}
			pass.Reportf(arg.Pos(), format, args...)
		}
		switch a := arg.(type) {
		case *ast.FuncLit:
			report("handler registered with SetHandler is a function literal; register a named method annotated //capi:hotpath")
		default:
			h := handlerFunc(info, a)
			if h == nil {
				return true // nil handler, variable, or out-of-module value
			}
			hi := ix.lookup(h)
			if hi == nil {
				return true
			}
			if _, hot := hi.ann[MarkHotpath]; !hot {
				report("handler %s registered with SetHandler is not annotated //capi:hotpath", shortFuncName(h))
			}
		}
		return true
	})
}

// handlerFunc resolves a SetHandler argument to the function it names
// (plain reference or method value), or nil.
func handlerFunc(info *types.Info, arg ast.Expr) *types.Func {
	switch a := arg.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[a].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[a]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[a.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkHotFunc scans one function body for hot-path violations and returns
// the in-module callees the traversal should continue into.
func checkHotFunc(pass *Pass, ix *moduleIndex, fi *funcInfo, root string) []*funcInfo {
	if fi.decl.Body == nil {
		return nil
	}
	info := fi.pkg.Info
	self := shortFuncName(fi.fn)

	report := func(pos token.Pos, what string) {
		if f := fi.pkg.FileOf(pos); f != nil &&
			fi.pkg.Suppressed(pass.Fset, f, pos, MarkHotpathOK) {
			return
		}
		if root == self {
			pass.Reportf(pos, "hot path (//capi:hotpath %s): %s", self, what)
		} else {
			pass.Reportf(pos, "hot path (%s, reached from //capi:hotpath %s): %s", self, root, what)
		}
	}

	// calledFuns holds the expressions in call position, so method-value
	// detection does not flag ordinary method calls.
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			calledFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	var callees []*funcInfo
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callees = append(callees, checkHotCall(info, ix, n, report)...)
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine")
		case *ast.SendStmt:
			report(n.Pos(), "channel send may block")
		case *ast.SelectStmt:
			report(n.Pos(), "select may block")
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				report(n.Pos(), "channel receive may block")
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					report(n.Pos(), "range over channel may block")
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates")
				case *types.Slice:
					report(n.Pos(), "slice literal allocates")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false // do not descend: the closure body is not the hot path
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := info.Types[n].Type; t != nil && isString(t) {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.Types[idx.X].Type; t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							report(lhs.Pos(), "map write may rehash and allocate")
						}
					}
				}
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if lt := info.Types[n.Lhs[i]].Type; boxes(info, lt, n.Rhs[i]) {
						report(n.Rhs[i].Pos(), "assignment boxes a concrete value into an interface")
					}
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if t := info.Types[idx.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						report(n.Pos(), "map write may rehash and allocate")
					}
				}
			}
		case *ast.ReturnStmt:
			results := fi.fn.Signature().Results()
			if len(n.Results) == results.Len() {
				for i, r := range n.Results {
					if boxes(info, results.At(i).Type(), r) {
						report(r.Pos(), "return boxes a concrete value into an interface")
					}
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !calledFuns[ast.Expr(n)] {
				report(n.Pos(), "method value allocates a closure")
			}
		}
		return true
	})
	return callees
}

// checkHotCall classifies one call expression; returns in-module callees to
// traverse into.
func checkHotCall(info *types.Info, ix *moduleIndex, call *ast.CallExpr, report func(token.Pos, string)) []*funcInfo {
	if b := builtinOf(info, call); b != "" {
		if msg, bad := hotpathFlaggedBuiltins[b]; bad {
			report(call.Pos(), msg)
		}
		return nil
	}
	if target, ok := isConversion(info, call); ok {
		checkHotConversion(info, call, target, report)
		return nil
	}

	// Interface boxing at the call boundary, for every call with a known
	// signature (including dynamic ones).
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
			checkCallBoxing(info, call, sig, report)
		}
	}

	callee := calleeOf(info, call)
	if callee == nil {
		// Dynamic call: interface method or func value — the designed
		// backend boundary; the traversal stops here.
		return nil
	}
	pkg := callee.Pkg()
	if pkg == nil { // error.Error, unsafe builtins
		return nil
	}
	if ix.inModule(pkg) {
		fi := ix.lookup(callee)
		if fi == nil {
			report(call.Pos(), fmt.Sprintf("call to %s: no source loaded, hot-path safety unverifiable", shortFuncName(callee)))
			return nil
		}
		if _, cold := fi.ann[MarkColdpath]; cold {
			return nil // reviewed out-of-line slow path
		}
		return []*funcInfo{fi}
	}
	if hotpathAllowedPkgs[pkg.Path()] {
		return nil
	}
	if pkg.Path() == "sync" && nonBlockingSyncMethods[callee.Name()] {
		return nil
	}
	report(call.Pos(), fmt.Sprintf("call to %s.%s may allocate, lock, or block", pkg.Path(), callee.Name()))
	return nil
}

// checkHotConversion flags the conversions that allocate.
func checkHotConversion(info *types.Info, call *ast.CallExpr, target types.Type, report func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if types.IsInterface(target.Underlying()) {
		if boxes(info, target, call.Args[0]) {
			report(call.Pos(), "conversion boxes a concrete value into an interface")
		}
		return
	}
	if isString(target) && !isString(src) {
		report(call.Pos(), "conversion to string allocates")
		return
	}
	if sl, ok := target.Underlying().(*types.Slice); ok && isString(src) {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok &&
			(b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32) {
			report(call.Pos(), "conversion from string allocates")
		}
	}
}

// checkCallBoxing flags concrete→interface argument passing.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(token.Pos, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			report(arg.Pos(), "argument boxes a concrete value into an interface")
		}
	}
}

// boxes reports whether assigning src to an interface-typed destination
// heap-allocates: the destination is an interface and src's static type is
// a concrete, non-pointer-shaped, non-constant value.
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst.Underlying()) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return false
	}
	if types.IsInterface(tv.Type.Underlying()) {
		return false
	}
	return !pointerShaped(tv.Type)
}

// pointerShaped reports whether values of t fit an interface word without a
// heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
