package lint

import (
	"go/ast"
	"strings"
)

// NoExitAnalyzer keeps library code from taking the host process down: a
// measurement probe must degrade, never abort the application it measures.
// Packages outside cmd/ and examples/ (and any package main) must not call
// os.Exit or log.Fatal*/log.Panic*, and must not use bare panic.
// Registration-time and generator-time assertions — invariants that can
// only trip on a programming error before any event flows — carry a
// //capi:panic-ok <reason> line comment.
var NoExitAnalyzer = &Analyzer{
	Name: "noexit",
	Doc:  "library packages must not call os.Exit, log.Fatal, or bare panic",
	Run:  runNoExit,
}

// libraryPackage reports whether the package is held to the no-exit rule.
func libraryPackage(pkg *Package) bool {
	if pkg.Types.Name() == "main" {
		return false
	}
	for _, elem := range strings.Split(pkg.ImportPath, "/") {
		if elem == "cmd" || elem == "examples" {
			return false
		}
	}
	return true
}

func runNoExit(pass *Pass) error {
	for _, pkg := range pass.Packages {
		if !libraryPackage(pkg) {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var what string
				if builtinOf(info, call) == "panic" {
					what = "bare panic in library package"
				} else if callee := calleeOf(info, call); callee != nil && callee.Pkg() != nil {
					switch path := callee.Pkg().Path(); {
					case path == "os" && callee.Name() == "Exit":
						what = "library package calls os.Exit"
					case path == "log" && (strings.HasPrefix(callee.Name(), "Fatal") ||
						strings.HasPrefix(callee.Name(), "Panic")):
						what = "library package calls log." + callee.Name()
					}
				}
				if what == "" {
					return true
				}
				if pkg.Suppressed(pass.Fset, f, call.Pos(), MarkPanicOK) {
					return true
				}
				pass.Reportf(call.Pos(), "%s; return an error or degrade instead", what)
				return true
			})
		}
	}
	return nil
}
