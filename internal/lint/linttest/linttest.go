// Package linttest replays analyzers over fixture modules and checks their
// diagnostics against // want "regex" annotations — the shape of
// golang.org/x/tools' analysistest, rebuilt on the stdlib-only lint
// framework. Each fixture directory under testdata/src/<name>/ is a
// self-contained module (its own go.mod, stdlib imports only), so the
// loader's `go list -export` works offline and the parent module's ./...
// walks never see the fixture code.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"capi/internal/lint"
)

// wantRe matches one expectation inside a // want comment: a Go-quoted
// regexp.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture module rooted at dir, applies the analyzers, and
// fails t unless the diagnostics match the fixture's // want annotations
// exactly: every diagnostic must be declared by a want on its line, and
// every want must fire.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset, pkgs, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Slash)
					ms := wantRe.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
						continue
					}
					for _, m := range ms {
						pat, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
							continue
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	diags, err := lint.Run(fset, pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d:%d: [%s] %s",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
