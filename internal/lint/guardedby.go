package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GuardedByAnalyzer enforces mutex discipline declared in the source:
// fields annotated //capi:guardedby <mu> may only be accessed in functions
// that lock the named mutex (any x.<mu>.Lock()/RLock() call in the same
// function body — a flow-insensitive, same-function approximation).
// Functions that run with the lock already held by their caller are
// annotated //capi:locked <mu>; reviewed pre-publication accesses
// (constructors, quiescent snapshots) carry //capi:unguarded-ok <reason>.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc:  "//capi:guardedby fields accessed only while the named mutex is held",
	Run:  runGuardedBy,
}

var lockMethods = map[string]bool{
	"Lock":     true,
	"RLock":    true,
	"TryLock":  true,
	"TryRLock": true,
}

func runGuardedBy(pass *Pass) error {
	// Pass A: collect the annotated fields: field key → guard name.
	guards := map[string]string{}
	for _, pkg := range pass.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						mu, ok := FieldAnnotation(field, MarkGuardedBy)
						if !ok {
							continue
						}
						if mu == "" {
							pass.Reportf(field.Pos(), "//capi:guardedby needs a mutex field name argument")
							continue
						}
						for _, name := range field.Names {
							if key := fieldKey(obj, name.Name); key != "" {
								guards[key] = mu
							}
						}
					}
				}
			}
		}
	}
	if len(guards) == 0 {
		return nil
	}

	// Pass B: check every function body's accesses against the mutexes it
	// demonstrably holds.
	ix := buildIndex(pass)
	for _, fi := range ix.funcs {
		if fi.decl.Body == nil {
			continue
		}
		held := heldMutexes(fi)
		info := fi.pkg.Info
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			key := fieldKeyOf(selection)
			mu, guarded := guards[key]
			if !guarded || held[mu] {
				return true
			}
			if f := fi.pkg.FileOf(sel.Pos()); f != nil &&
				fi.pkg.Suppressed(pass.Fset, f, sel.Pos(), MarkUnguardedOK) {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s (//capi:guardedby %s) accessed without holding %s", key, mu, mu)
			return true
		})
	}
	return nil
}

// heldMutexes returns the names of the mutexes the function demonstrably
// holds: every <x>.<name>.Lock()/RLock() call in the body, plus any
// //capi:locked <name> doc annotation (comma-separated for several).
func heldMutexes(fi *funcInfo) map[string]bool {
	held := map[string]bool{}
	if arg, ok := fi.ann[MarkLocked]; ok {
		for _, name := range strings.Split(arg, ",") {
			if name = strings.TrimSpace(name); name != "" {
				held[name] = true
			}
		}
	}
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockMethods[fun.Sel.Name] {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
			return true
		}
		switch recv := ast.Unparen(fun.X).(type) {
		case *ast.SelectorExpr:
			held[recv.Sel.Name] = true
		case *ast.Ident:
			held[recv.Name] = true
		}
		return true
	})
	return held
}
