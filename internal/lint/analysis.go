package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check, in the image of golang.org/x/tools'
// go/analysis.Analyzer. Run receives a Pass holding every loaded package of
// the module, so analyzers may reason across package boundaries (the hotpath
// traversal and the atomicfield cross-reference need that).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -checks selections.
	Name string
	// Doc is the one-line description shown by capi-lint -help.
	Doc string
	// Run reports findings through pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries the loaded module state into one analyzer run.
type Pass struct {
	Analyzer *Analyzer
	// Fset is the single file set every loaded package was parsed into.
	Fset *token.FileSet
	// Packages are the target packages in deterministic (import path) order.
	Packages []*Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Reportf records a finding at pos unless a suppression marker covers the
// line. marker is the analyzer's escape-hatch directive (e.g.
// "//capi:hotpath-ok"); an empty marker means the finding cannot be
// suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// marks caches the per-file //capi: directive lines (lazily built).
	marks map[*ast.File]fileMarks
}

// fileMarks indexes a file's //capi: directives by line.
type fileMarks struct {
	// byLine maps a line number to the directives whose comment sits on
	// that line.
	byLine map[int][]string
}

// Annotation directives. Function annotations live in the function's doc
// comment; field annotations in the field's doc or trailing line comment;
// suppressions on the offending line or the line directly above it.
const (
	MarkHotpath     = "//capi:hotpath"
	MarkColdpath    = "//capi:coldpath"
	MarkHotpathOK   = "//capi:hotpath-ok"
	MarkGuardedBy   = "//capi:guardedby"
	MarkLocked      = "//capi:locked"
	MarkUnguardedOK = "//capi:unguarded-ok"
	MarkNonatomicOK = "//capi:nonatomic-ok"
	MarkPanicOK     = "//capi:panic-ok"
)

// commentDirective extracts the //capi: directive of one comment line, or
// "" when the line is no directive. The directive is the comment text up to
// the first space (the rest is the human reason).
func commentDirective(text string) string {
	if !strings.HasPrefix(text, "//capi:") {
		return ""
	}
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return text[:i]
	}
	return text
}

// directiveArg returns the first argument of a directive comment line
// ("//capi:guardedby mu" → "mu"), or "".
func directiveArg(text string) string {
	rest := strings.TrimSpace(strings.TrimPrefix(text, commentDirective(text)))
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest
}

// buildMarks indexes every //capi: directive of the file by line.
func (pkg *Package) buildMarks(fset *token.FileSet, f *ast.File) fileMarks {
	fm := fileMarks{byLine: map[int][]string{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d := commentDirective(c.Text); d != "" {
				line := fset.Position(c.Slash).Line
				fm.byLine[line] = append(fm.byLine[line], c.Text)
			}
		}
	}
	return fm
}

func (pkg *Package) fileMarks(fset *token.FileSet, f *ast.File) fileMarks {
	if pkg.marks == nil {
		pkg.marks = map[*ast.File]fileMarks{}
	}
	fm, ok := pkg.marks[f]
	if !ok {
		fm = pkg.buildMarks(fset, f)
		pkg.marks[f] = fm
	}
	return fm
}

// Suppressed reports whether a diagnostic at pos is silenced by the given
// suppression directive sitting on the same line or the line directly above.
func (pkg *Package) Suppressed(fset *token.FileSet, f *ast.File, pos token.Pos, directive string) bool {
	fm := pkg.fileMarks(fset, f)
	line := fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, text := range fm.byLine[l] {
			if commentDirective(text) == directive {
				return true
			}
		}
	}
	return false
}

// FuncAnnotations returns the //capi: directives in a function's doc
// comment, mapped directive → argument.
func FuncAnnotations(decl *ast.FuncDecl) map[string]string {
	out := map[string]string{}
	if decl.Doc == nil {
		return out
	}
	for _, c := range decl.Doc.List {
		if d := commentDirective(c.Text); d != "" {
			out[d] = directiveArg(c.Text)
		}
	}
	return out
}

// FieldAnnotation returns the argument of the given directive on a struct
// field (doc comment or trailing line comment), and whether it is present.
func FieldAnnotation(field *ast.Field, directive string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if commentDirective(c.Text) == directive {
				return directiveArg(c.Text), true
			}
		}
	}
	return "", false
}

// FileOf returns the *ast.File of the package containing pos.
func (pkg *Package) FileOf(pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// sortDiagnostics orders findings by file, line, column, analyzer, message
// and drops exact duplicates.
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	var prev Diagnostic
	for i, d := range diags {
		if i > 0 && d == prev {
			continue
		}
		out = append(out, d)
		prev = d
	}
	return out
}

// Run executes the analyzers over the loaded packages and returns the
// sorted, deduplicated findings.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Packages: pkgs, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s: %w", a.Name, err)
		}
	}
	return sortDiagnostics(diags), nil
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{HotpathAnalyzer, AtomicFieldAnalyzer, GuardedByAnalyzer, NoExitAnalyzer}
}

// Select returns the analyzers whose names appear in the comma-separated
// list ("" or "all" selects the whole suite). Unknown names are an error,
// listing the registered suite.
func Select(list string) ([]*Analyzer, error) {
	all := Analyzers()
	if list == "" || list == "all" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (registered: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
