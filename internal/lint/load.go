package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, "" =
// cwd), parses the non-dependency ones with comments, and type-checks them
// against the toolchain's export data for their dependencies. All files
// share the returned FileSet. Packages come back sorted by import path.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("lint: %s: cgo packages are not supported", lp.ImportPath)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", buildGOARCH()),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return fset, pkgs, nil
}

// buildGOARCH returns the architecture the toolchain compiles for, honoring
// a GOARCH override so sizes match the export data go list produced.
func buildGOARCH() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	out, err := exec.Command("go", "env", "GOARCH").Output()
	if err != nil {
		return "amd64"
	}
	return strings.TrimSpace(string(out))
}
