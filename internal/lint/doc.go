// Package lint is capi's static-analysis suite: four custom analyzers that
// mechanically enforce the invariants the dispatch hot path and the
// concurrency design rest on — invariants PRs 1–5 protected only with
// -race stress tests, which catch violations probabilistically at runtime.
// The analyzers catch them at lint time, on every build:
//
//	hotpath      functions annotated //capi:hotpath — the XRay handler,
//	             the sampler decision path, the trace ring append, the mux
//	             fan-out — and their transitive in-module callees must not
//	             allocate (make/new, growing append, map writes, closures,
//	             interface boxing, string building), take locks, spawn
//	             goroutines, touch channels, or call into stdlib packages
//	             that may allocate or block. Deliberate out-of-line slow
//	             paths are annotated //capi:coldpath (the traversal stops
//	             there); single reviewed operations carry a
//	             //capi:hotpath-ok <reason> line comment. The analyzer
//	             also refuses handler registration (SetHandler) of any
//	             function that is not annotated, so deleting a
//	             //capi:hotpath annotation from the dispatch path is
//	             itself a lint error.
//
//	atomicfield  a struct field accessed through sync/atomic anywhere in
//	             the module (atomic.LoadInt64(&s.f), …) must never be read
//	             or written plainly anywhere else — the mixed-access bug
//	             class the PR 5 -race stress test hunts at runtime.
//	             Initialization-before-publication sites carry
//	             //capi:nonatomic-ok <reason>.
//
//	guardedby    fields annotated //capi:guardedby <mu> must only be
//	             accessed in functions that lock the named sibling mutex
//	             (flow-insensitive, same-function approximation).
//	             Functions running with the lock already held by their
//	             caller are annotated //capi:locked <mu>; reviewed
//	             pre-publication accesses carry //capi:unguarded-ok
//	             <reason>.
//
//	noexit       library packages (everything outside cmd/ and the
//	             examples) must not call os.Exit or log.Fatal*, and must
//	             not use bare panic on event-delivery paths — a measurement
//	             probe must degrade, never take the host process down.
//	             Registration-time and generator-time assertions carry
//	             //capi:panic-ok <reason>.
//
// The suite mirrors the golang.org/x/tools go/analysis architecture
// (Analyzer, Pass, analysistest-style fixtures under testdata/) but is
// built on the standard library alone: packages are enumerated with
// `go list -export -deps -json` and type-checked with go/types against the
// toolchain's export data, so the module needs no external dependency and
// the whole-module view lets hotpath and atomicfield reason across package
// boundaries — something per-package vet units cannot.
//
// Run it locally with
//
//	go run ./cmd/capi-lint ./...
//
// CI builds cmd/capi-lint once (cached by the Go build cache) and runs it
// as a required job; internal/lint's own tests replay every analyzer over
// fixture packages and assert the real repository lints clean.
package lint
