package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// AtomicFieldAnalyzer enforces all-or-nothing atomicity: a struct field
// accessed through a legacy sync/atomic package function (atomic.AddInt64(
// &s.n, 1), …) anywhere in the module must never be read or written plainly
// anywhere else — the mixed-access bug class the race stress tests hunt
// probabilistically at runtime. Typed atomics (atomic.Int64, atomic.Value,
// atomic.Pointer[T]) make mixed access unrepresentable and are the
// preferred style; this analyzer exists to keep any legacy-style use
// honest. Reviewed pre-publication accesses (constructors) carry a
// //capi:nonatomic-ok <reason> line comment.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass A: find every field whose address is taken by a sync/atomic
	// package function, remembering the selector nodes inside those calls
	// (the sanctioned accesses) and one representative position per field.
	atomicAt := map[string]string{} // field key → "file:line" of first atomic use
	sanctioned := map[ast.Node]bool{}
	for _, pkg := range pass.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(info, call)
				if callee == nil || callee.Pkg() == nil ||
					callee.Pkg().Path() != "sync/atomic" || callee.Signature().Recv() != nil {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection, ok := info.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					key := fieldKeyOf(selection)
					if key == "" {
						continue
					}
					sanctioned[sel] = true
					if _, seen := atomicAt[key]; !seen {
						p := pass.Fset.Position(call.Pos())
						atomicAt[key] = p.Filename + ":" + strconv.Itoa(p.Line)
					}
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass B: any other selection of those fields is a mixed access.
	for _, pkg := range pass.Packages {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				key := fieldKeyOf(selection)
				at, isAtomic := atomicAt[key]
				if !isAtomic {
					return true
				}
				if pkg.Suppressed(pass.Fset, f, sel.Pos(), MarkNonatomicOK) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"field %s is accessed via sync/atomic (at %s); plain access mixes memory orders", key, at)
				return true
			})
		}
	}
	return nil
}
