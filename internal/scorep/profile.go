package scorep

import (
	"fmt"
	"io"
	"sort"

	"capi/internal/metacg"
	"capi/internal/vtime"
)

// RegionProfile is the flat (per-region) view aggregated over all ranks.
type RegionProfile struct {
	Name      string
	Visits    int64
	Inclusive int64 // summed over ranks
	Exclusive int64 // summed over ranks
}

// CallTreeNode is one line of the merged call-tree dump (rank 0's tree;
// per-rank trees are structurally identical for SPMD codes).
type CallTreeNode struct {
	Depth     int
	Name      string
	Visits    int64
	Inclusive int64
}

// Profile is the aggregated measurement result.
type Profile struct {
	Ranks          int
	Regions        []RegionProfile
	CallTree       []CallTreeNode
	Edges          []metacg.CallEdge // observed caller→callee pairs
	UnknownEvents  int64
	FilteredEvents int64

	byName map[string]*RegionProfile
}

// Region returns the flat profile of the named region, or nil.
func (p *Profile) Region(name string) *RegionProfile { return p.byName[name] }

// Profile aggregates the per-rank call trees into a flat profile, a call
// tree and the observed call-edge list (consumed by
// metacg.ValidateWithProfile). It must be called after the measured run
// completed.
func (m *Measurement) Profile() *Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p := &Profile{Ranks: len(m.ranks), byName: map[string]*RegionProfile{}}

	flat := map[int]*RegionProfile{}
	edgeSet := map[[2]int]struct{}{}
	for _, rs := range m.ranks {
		rs.mu.Lock()
		p.UnknownEvents += rs.unknownEvents
		p.FilteredEvents += rs.filteredEvents
		for i := range rs.nodes {
			n := &rs.nodes[i]
			rp, ok := flat[n.region]
			if !ok {
				rp = &RegionProfile{Name: m.regions[n.region]}
				flat[n.region] = rp
			}
			rp.Visits += n.visits
			rp.Inclusive += n.inclusive
			// Exclusive = inclusive − children's inclusive.
			excl := n.inclusive
			for _, ci := range n.children {
				excl -= rs.nodes[ci].inclusive
			}
			rp.Exclusive += excl
		}
		for e := range rs.edges {
			edgeSet[e] = struct{}{}
		}
		rs.mu.Unlock()
	}
	for _, rp := range flat {
		p.Regions = append(p.Regions, *rp)
	}
	sort.Slice(p.Regions, func(i, j int) bool {
		if p.Regions[i].Inclusive != p.Regions[j].Inclusive {
			return p.Regions[i].Inclusive > p.Regions[j].Inclusive
		}
		return p.Regions[i].Name < p.Regions[j].Name
	})
	for i := range p.Regions {
		p.byName[p.Regions[i].Name] = &p.Regions[i]
	}
	for e := range edgeSet {
		p.Edges = append(p.Edges, metacg.CallEdge{Caller: m.regions[e[0]], Callee: m.regions[e[1]]})
	}
	sort.Slice(p.Edges, func(i, j int) bool {
		if p.Edges[i].Caller != p.Edges[j].Caller {
			return p.Edges[i].Caller < p.Edges[j].Caller
		}
		return p.Edges[i].Callee < p.Edges[j].Callee
	})

	// Call tree from rank 0.
	rs := m.ranks[0]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var walk func(kids map[int]int, depth int)
	walk = func(kids map[int]int, depth int) {
		idxs := make([]int, 0, len(kids))
		for _, idx := range kids {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(a, b int) bool {
			na, nb := rs.nodes[idxs[a]], rs.nodes[idxs[b]]
			if na.inclusive != nb.inclusive {
				return na.inclusive > nb.inclusive
			}
			return m.regions[na.region] < m.regions[nb.region]
		})
		for _, idx := range idxs {
			n := rs.nodes[idx]
			p.CallTree = append(p.CallTree, CallTreeNode{
				Depth:     depth,
				Name:      m.regions[n.region],
				Visits:    n.visits,
				Inclusive: n.inclusive,
			})
			walk(n.children, depth+1)
		}
	}
	walk(rs.rootKids, 0)
	return p
}

// WriteText renders the flat profile like a cube/scorep report summary.
func (p *Profile) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-12s %-14s %-14s region\n", "visits", "incl(sum)", "excl(sum)"); err != nil {
		return err
	}
	for _, r := range p.Regions {
		if _, err := fmt.Fprintf(w, "%-12d %-14s %-14s %s\n",
			r.Visits, vtime.FormatSeconds(r.Inclusive), vtime.FormatSeconds(r.Exclusive), r.Name); err != nil {
			return err
		}
	}
	if p.UnknownEvents > 0 {
		if _, err := fmt.Fprintf(w, "# %d events from unresolved addresses\n", p.UnknownEvents); err != nil {
			return err
		}
	}
	return nil
}

// WriteCallTree renders the call-path view.
func (p *Profile) WriteCallTree(w io.Writer) error {
	for _, n := range p.CallTree {
		for i := 0; i < n.Depth; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s  visits=%d incl=%s\n", n.Name, n.Visits, vtime.FormatSeconds(n.Inclusive)); err != nil {
			return err
		}
	}
	return nil
}
