// Package scorep reimplements the slice of Score-P the paper's system
// interacts with (§III-B, §V-C1): a call-path profiling runtime with
// per-rank call trees, region handles, runtime filtering, an
// -finstrument-functions-style address interface whose resolution needs the
// executable's symbol table (and symbol *injection* for DSO addresses), a
// scorep-score-like filter generator, and profile export usable for
// MetaCG's profile validation.
package scorep

import (
	"fmt"
	"sync"

	"capi/internal/vtime"
)

// ThreadCtx is the minimal execution context the measurement needs. It is
// structurally identical to xray.ThreadCtx so the same rank objects satisfy
// both without coupling the packages.
type ThreadCtx interface {
	RankID() int
	Clock() *vtime.Clock
}

// CostModel holds the virtual-time costs of the measurement runtime.
type CostModel struct {
	// EnterCost/ExitCost are charged per recorded event: timestamping,
	// call-tree descent and metric accumulation. Score-P's per-event cost
	// is noticeably higher than TALP's region lookup — the reason its
	// full-instrumentation overhead exceeds TALP's in Table II.
	EnterCost int64
	ExitCost  int64
	// ResolveCost is the address-to-region lookup of the generic
	// -finstrument-functions interface, charged per event.
	ResolveCost int64
	// FilterCheckCost is charged per event when runtime filtering is
	// active — "the overhead of invoking the probe and cross-checking the
	// filter list is retained" (§II-B).
	FilterCheckCost int64
	// TreePressureCost is charged per event per call-tree node of the
	// rank's profile: as the calling-context tree grows (full
	// instrumentation of a large application), every event pays more for
	// child lookup, metric storage and cache pressure. This is the term
	// that makes Score-P's *full* overhead exceed TALP's while its
	// filtered ICs stay cheaper (Table II's crossover).
	TreePressureCost int64
	// InitBase and InitPerSymbol model measurement initialization: the
	// runtime builds a map of all function names and addresses (§V-C1).
	InitBase      int64
	InitPerSymbol int64
}

// DefaultCostModel returns per-event costs calibrated for Table II's shape
// (see DESIGN.md): a Score-P enter/exit pair costs ≈2× a TALP start/stop
// pair, which is what makes Score-P the slower backend under full
// instrumentation, and the symbol-map construction makes its T_init larger.
// Costs are inflated by the simulator's call-compression factor (one
// simulated call stands in for roughly a thousand real invocations, see
// workload.scaleWork), which keeps Table II's ratios while executing far
// fewer simulated calls than the real applications perform.
func DefaultCostModel() CostModel {
	return CostModel{
		EnterCost:        372 * vtime.Microsecond,
		ExitCost:         372 * vtime.Microsecond,
		ResolveCost:      100 * vtime.Microsecond,
		FilterCheckCost:  60 * vtime.Microsecond,
		TreePressureCost: 2100 * vtime.Nanosecond,
		InitBase:         1850 * vtime.Millisecond,
		InitPerSymbol:    7 * vtime.Microsecond,
	}
}

// Options configures a measurement.
type Options struct {
	Ranks int
	Costs CostModel
	// RuntimeFilter keeps probes active but discards events for excluded
	// regions after a (charged) filter check.
	RuntimeFilter *Filter
	// TraceCapacity, when positive, keeps a bounded in-memory event trace
	// per rank (Score-P's tracing mode, bounded like its trace buffers).
	TraceCapacity int
}

// TraceEvent is one entry of the bounded event trace.
type TraceEvent struct {
	Time   int64
	Region string
	Enter  bool
}

// cnode is a call-tree node of one rank's profile.
type cnode struct {
	region    int
	parent    int
	children  map[int]int // region -> node index
	visits    int64
	inclusive int64
	enterTime int64 // valid while on stack
}

type rankState struct {
	// mu guards all fields. The owning rank's goroutine is the only event
	// writer, so the lock is uncontended on the hot path; it exists so
	// CloseDangling (synthetic exits delivered from a concurrent
	// reconfiguration) and post-run readers are race-free.
	mu sync.Mutex

	nodes    []cnode
	stack    []int
	rootKids map[int]int
	edges    map[[2]int]struct{}

	// lastNs is the rank clock value after its most recent recorded event —
	// the timestamp synthetic exits close dangling regions at (the rank's
	// own clock cannot be read from another goroutine).
	lastNs int64

	unknownEvents  int64
	filteredEvents int64
	trace          []TraceEvent
	traceDropped   int64
}

// Measurement is one Score-P measurement run.
type Measurement struct {
	opts Options

	mu        sync.RWMutex
	regionIdx map[string]int
	regions   []string

	ranks []*rankState

	unknownRegion int
}

// New creates a measurement for the given number of ranks.
func New(opts Options) (*Measurement, error) {
	if opts.Ranks < 1 {
		return nil, fmt.Errorf("scorep: ranks %d < 1", opts.Ranks)
	}
	if opts.Costs == (CostModel{}) {
		opts.Costs = DefaultCostModel()
	}
	m := &Measurement{
		opts:      opts,
		regionIdx: map[string]int{},
	}
	for i := 0; i < opts.Ranks; i++ {
		m.ranks = append(m.ranks, &rankState{
			rootKids: map[int]int{},
			edges:    map[[2]int]struct{}{},
		})
	}
	m.unknownRegion = m.RegionHandle("UNKNOWN")
	return m, nil
}

// Costs returns the active cost model.
func (m *Measurement) Costs() CostModel { return m.opts.Costs }

// InitCost returns the virtual init cost for a symbol map of the given
// size; callers (DynCaPI) charge it to the process start-up time.
func (m *Measurement) InitCost(symbols int) int64 {
	return m.opts.Costs.InitBase + int64(symbols)*m.opts.Costs.InitPerSymbol
}

// RegionHandle registers (or finds) a region by name and returns its
// handle. Handles are process-global and stable.
func (m *Measurement) RegionHandle(name string) int {
	m.mu.RLock()
	id, ok := m.regionIdx[name]
	m.mu.RUnlock()
	if ok {
		return id
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if id, ok := m.regionIdx[name]; ok {
		return id
	}
	id = len(m.regions)
	m.regions = append(m.regions, name)
	m.regionIdx[name] = id
	return id
}

// LookupRegion returns the handle of an already registered region, without
// registering it.
func (m *Measurement) LookupRegion(name string) (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.regionIdx[name]
	return id, ok
}

// RegionName returns the name of a region handle.
func (m *Measurement) RegionName(id int) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id < 0 || id >= len(m.regions) {
		return fmt.Sprintf("region#%d", id)
	}
	return m.regions[id]
}

func (m *Measurement) rank(tc ThreadCtx) *rankState { return m.ranks[tc.RankID()] }

// filtered applies the runtime filter, charging the check cost.
func (m *Measurement) filtered(tc ThreadCtx, name string) bool {
	if m.opts.RuntimeFilter == nil {
		return false
	}
	tc.Clock().Advance(m.opts.Costs.FilterCheckCost)
	if m.opts.RuntimeFilter.Excluded(name) {
		rs := m.rank(tc)
		rs.mu.Lock()
		rs.filteredEvents++
		rs.mu.Unlock()
		return true
	}
	return false
}

// pressure returns the call-tree-pressure cost of one event on this rank.
func (m *Measurement) pressure(rs *rankState) int64 {
	return m.opts.Costs.TreePressureCost * int64(len(rs.nodes))
}

// EnterID records a region entry by handle.
func (m *Measurement) EnterID(tc ThreadCtx, region int) {
	c := tc.Clock()
	rs := m.rank(tc)
	rs.mu.Lock()
	c.Advance(m.opts.Costs.EnterCost + m.pressure(rs))
	m.push(rs, region, c.Now())
	if rs.trace != nil || m.opts.TraceCapacity > 0 {
		m.traceEvent(rs, c.Now(), region, true)
	}
	rs.lastNs = c.Now()
	rs.mu.Unlock()
}

// ExitID records a region exit by handle. The exit timestamp is taken
// before the probe's own cost is charged, so measurement overhead does not
// inflate the region's time. Mismatched or spurious exits pop the current
// call-path node (Score-P behaviour: trust the instrumentation).
func (m *Measurement) ExitID(tc ThreadCtx, region int) {
	c := tc.Clock()
	rs := m.rank(tc)
	rs.mu.Lock()
	m.pop(rs, region, c.Now())
	c.Advance(m.opts.Costs.ExitCost + m.pressure(rs))
	if rs.trace != nil || m.opts.TraceCapacity > 0 {
		m.traceEvent(rs, c.Now(), region, false)
	}
	rs.lastNs = c.Now()
	rs.mu.Unlock()
}

// CallTreeSize returns the number of calling-context-tree nodes recorded on
// one rank (the quantity driving TreePressureCost).
func (m *Measurement) CallTreeSize(rank int) int {
	rs := m.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.nodes)
}

// OpenRegions returns the number of frames currently open on a rank's
// simulated call stack.
func (m *Measurement) OpenRegions(rank int) int {
	rs := m.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.stack)
}

// Enter records a region entry by name, applying the runtime filter.
func (m *Measurement) Enter(tc ThreadCtx, name string) {
	if m.filtered(tc, name) {
		return
	}
	m.EnterID(tc, m.RegionHandle(name))
}

// Exit records a region exit by name, applying the runtime filter.
func (m *Measurement) Exit(tc ThreadCtx, name string) {
	if m.filtered(tc, name) {
		return
	}
	m.ExitID(tc, m.RegionHandle(name))
}

// CygEnter is the -finstrument-functions entry hook: it receives only the
// function address and resolves it through the resolver. Unresolvable
// addresses (DSO functions without symbol injection) land in the UNKNOWN
// region (§V-C1).
func (m *Measurement) CygEnter(tc ThreadCtx, r *Resolver, addr uint64) {
	tc.Clock().Advance(m.opts.Costs.ResolveCost)
	name, ok := r.Resolve(addr)
	if !ok {
		m.countUnknown(tc)
		m.EnterID(tc, m.unknownRegion)
		return
	}
	m.Enter(tc, name)
}

// CygExit is the -finstrument-functions exit hook.
func (m *Measurement) CygExit(tc ThreadCtx, r *Resolver, addr uint64) {
	tc.Clock().Advance(m.opts.Costs.ResolveCost)
	name, ok := r.Resolve(addr)
	if !ok {
		m.countUnknown(tc)
		m.ExitID(tc, m.unknownRegion)
		return
	}
	m.Exit(tc, name)
}

func (m *Measurement) countUnknown(tc ThreadCtx) {
	rs := m.rank(tc)
	rs.mu.Lock()
	rs.unknownEvents++
	rs.mu.Unlock()
}

func (m *Measurement) push(rs *rankState, region int, now int64) {
	var parent, parentRegion int
	kids := rs.rootKids
	parent = -1
	parentRegion = -1
	if len(rs.stack) > 0 {
		parent = rs.stack[len(rs.stack)-1]
		kids = rs.nodes[parent].children
		parentRegion = rs.nodes[parent].region
	}
	idx, ok := kids[region]
	if !ok {
		idx = len(rs.nodes)
		rs.nodes = append(rs.nodes, cnode{
			region:   region,
			parent:   parent,
			children: map[int]int{},
		})
		kids[region] = idx
	}
	n := &rs.nodes[idx]
	n.visits++
	n.enterTime = now
	rs.stack = append(rs.stack, idx)
	if parentRegion >= 0 {
		rs.edges[[2]int{parentRegion, region}] = struct{}{}
	}
}

// pop closes the exiting region's frame. The top of the stack matches on
// every well-formed stream; a mismatch means the frame was already closed
// by a synthetic exit racing this in-flight real exit (live re-selection),
// so the matching deeper frame — if any survives — is spliced out instead
// of corrupting the top of the stack, and an exit whose region is not open
// at all is ignored as spurious.
func (m *Measurement) pop(rs *rankState, region int, now int64) {
	if len(rs.stack) == 0 {
		return // spurious exit
	}
	idx := rs.stack[len(rs.stack)-1]
	if rs.nodes[idx].region != region {
		for i := len(rs.stack) - 2; i >= 0; i-- {
			if fi := rs.stack[i]; rs.nodes[fi].region == region {
				n := &rs.nodes[fi]
				n.inclusive += now - n.enterTime
				rs.stack = append(rs.stack[:i], rs.stack[i+1:]...)
				return
			}
		}
		return // already synthetically closed
	}
	rs.stack = rs.stack[:len(rs.stack)-1]
	n := &rs.nodes[idx]
	n.inclusive += now - n.enterTime
}

func (m *Measurement) traceEvent(rs *rankState, now int64, region int, enter bool) {
	if m.opts.TraceCapacity <= 0 {
		return
	}
	if len(rs.trace) >= m.opts.TraceCapacity {
		rs.traceDropped++
		return
	}
	rs.trace = append(rs.trace, TraceEvent{Time: now, Region: m.RegionName(region), Enter: enter})
}

// Trace returns the recorded event trace of one rank and the number of
// dropped events.
func (m *Measurement) Trace(rank int) ([]TraceEvent, int64) {
	rs := m.ranks[rank]
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]TraceEvent(nil), rs.trace...), rs.traceDropped
}

// CloseDangling delivers synthetic exits for every open call-stack frame of
// the given region, on every rank: the frame is spliced out of the
// simulated stack and its inclusive time is closed at the rank's last
// recorded event timestamp. Frames nested above the spliced one stay on the
// stack, so later real exits remain balanced. It returns the number of
// frames closed.
//
// It is safe to call while other ranks record events (per-rank locking);
// the caller must guarantee the region produces no further events — DynCaPI
// calls it under the reconfigure lock after a function is deselected.
func (m *Measurement) CloseDangling(region int) int {
	closed := 0
	for _, rs := range m.ranks {
		rs.mu.Lock()
		kept := rs.stack[:0]
		for _, idx := range rs.stack {
			n := &rs.nodes[idx]
			if n.region == region {
				n.inclusive += rs.lastNs - n.enterTime
				closed++
				continue
			}
			kept = append(kept, idx)
		}
		rs.stack = kept
		rs.mu.Unlock()
	}
	return closed
}
