package scorep

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"capi/internal/obj"
	"capi/internal/vtime"
)

type fakeCtx struct {
	rank int
	clk  vtime.Clock
}

func (f *fakeCtx) RankID() int         { return f.rank }
func (f *fakeCtx) Clock() *vtime.Clock { return &f.clk }

func newM(t *testing.T, ranks int) *Measurement {
	t.Helper()
	m, err := New(Options{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Ranks: 0}); err == nil {
		t.Fatal("ranks=0 should fail")
	}
}

func TestRegionHandles(t *testing.T) {
	m := newM(t, 1)
	a := m.RegionHandle("foo")
	b := m.RegionHandle("foo")
	c := m.RegionHandle("bar")
	if a != b || a == c {
		t.Fatalf("handles: %d %d %d", a, b, c)
	}
	if m.RegionName(a) != "foo" || m.RegionName(c) != "bar" {
		t.Fatal("names wrong")
	}
	if !strings.HasPrefix(m.RegionName(999), "region#") {
		t.Fatal("unknown handle name")
	}
}

func TestCallPathProfile(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	// main { work; child{10}; child{10} } with child under main.
	m.Enter(tc, "main")
	tc.clk.Advance(100)
	for i := 0; i < 2; i++ {
		m.Enter(tc, "child")
		tc.clk.Advance(10)
		m.Exit(tc, "child")
	}
	m.Exit(tc, "main")

	p := m.Profile()
	mainP := p.Region("main")
	childP := p.Region("child")
	if mainP == nil || childP == nil {
		t.Fatalf("regions missing: %+v", p.Regions)
	}
	if mainP.Visits != 1 || childP.Visits != 2 {
		t.Fatalf("visits: main %d child %d", mainP.Visits, childP.Visits)
	}
	if childP.Inclusive < 20 {
		t.Fatalf("child inclusive = %d", childP.Inclusive)
	}
	if mainP.Inclusive <= childP.Inclusive {
		t.Fatal("main inclusive should exceed child inclusive")
	}
	// Exclusive: main excludes child time.
	if mainP.Exclusive >= mainP.Inclusive {
		t.Fatal("main exclusive should be less than inclusive")
	}
	// Observed edge main->child for MetaCG validation.
	found := false
	for _, e := range p.Edges {
		if e.Caller == "main" && e.Callee == "child" {
			found = true
		}
	}
	if !found {
		t.Fatalf("edge main->child missing: %v", p.Edges)
	}
	// Call tree: main at depth 0, child at depth 1.
	if len(p.CallTree) != 2 || p.CallTree[0].Name != "main" || p.CallTree[1].Depth != 1 {
		t.Fatalf("call tree = %+v", p.CallTree)
	}
}

func TestEventCostsCharged(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	m.Enter(tc, "r")
	m.Exit(tc, "r")
	// The enter sees an empty call tree (no pressure yet); the exit sees
	// the one node the enter created.
	want := m.Costs().EnterCost + m.Costs().ExitCost + m.Costs().TreePressureCost
	if tc.clk.Now() != want {
		t.Fatalf("charged %d, want %d", tc.clk.Now(), want)
	}
}

func TestTreePressureGrowsWithCallTree(t *testing.T) {
	// An enter/exit pair on a rank with a populated calling-context tree
	// must cost strictly more than the same pair on a fresh rank — the
	// mechanism behind Table II's full-instrumentation crossover.
	big := newM(t, 1)
	tcBig := &fakeCtx{}
	for _, r := range []string{"a", "b", "c"} {
		big.Enter(tcBig, r)
	}
	for range 3 {
		big.Exit(tcBig, "c")
	}
	before := tcBig.clk.Now()
	big.Enter(tcBig, "a")
	big.Exit(tcBig, "a")
	bigPair := tcBig.clk.Now() - before

	small := newM(t, 1)
	tcSmall := &fakeCtx{}
	small.Enter(tcSmall, "a")
	small.Exit(tcSmall, "a")
	if bigPair <= tcSmall.clk.Now() {
		t.Fatalf("pair on 3-node tree (%d) not above pair on fresh tree (%d)", bigPair, tcSmall.clk.Now())
	}
}

func TestSpuriousExitIgnored(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	m.Exit(tc, "never-entered") // must not panic
	p := m.Profile()
	if r := p.Region("never-entered"); r != nil && r.Visits != 0 {
		t.Fatalf("spurious exit recorded: %+v", r)
	}
}

func TestMultiRankAggregation(t *testing.T) {
	m := newM(t, 3)
	for rank := 0; rank < 3; rank++ {
		tc := &fakeCtx{rank: rank}
		m.Enter(tc, "work")
		tc.clk.Advance(int64(100 * (rank + 1)))
		m.Exit(tc, "work")
	}
	p := m.Profile()
	w := p.Region("work")
	if w.Visits != 3 {
		t.Fatalf("visits = %d", w.Visits)
	}
	if w.Inclusive < 600 {
		t.Fatalf("inclusive sum = %d, want >= 600", w.Inclusive)
	}
	if p.Ranks != 3 {
		t.Fatalf("ranks = %d", p.Ranks)
	}
}

func TestRuntimeFilter(t *testing.T) {
	f := NewFilter().Exclude("tiny*")
	m, err := New(Options{Ranks: 1, RuntimeFilter: f})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	m.Enter(tc, "tiny_helper")
	m.Exit(tc, "tiny_helper")
	m.Enter(tc, "big")
	m.Exit(tc, "big")
	p := m.Profile()
	if p.Region("tiny_helper") != nil {
		t.Fatal("filtered region recorded")
	}
	if p.Region("big") == nil {
		t.Fatal("unfiltered region missing")
	}
	if p.FilteredEvents != 2 {
		t.Fatalf("filtered events = %d", p.FilteredEvents)
	}
	// The filter check cost is retained even for filtered events (§II-B).
	minCost := 2*m.Costs().FilterCheckCost + m.Costs().EnterCost + m.Costs().ExitCost
	if tc.clk.Now() < minCost {
		t.Fatalf("clock %d < %d: filter check cost not retained", tc.clk.Now(), minCost)
	}
}

func TestCygInterfaceWithResolver(t *testing.T) {
	im := &obj.Image{
		Name: "exe", Exe: true, TextSize: 0x1000,
		Symbols: []obj.Symbol{{Name: "kernel", Value: 0x100, Size: 0x40, Kind: obj.SymFunc}},
	}
	if err := im.Finalize(); err != nil {
		t.Fatal(err)
	}
	p, err := obj.NewProcess(im)
	if err != nil {
		t.Fatal(err)
	}
	r := NewResolverFromExecutable(p)
	m := newM(t, 1)
	tc := &fakeCtx{}
	exeBase := p.Executable().Base

	m.CygEnter(tc, r, exeBase+0x100)
	tc.clk.Advance(50)
	m.CygExit(tc, r, exeBase+0x100)
	// A DSO-like address that is not resolvable.
	m.CygEnter(tc, r, 0x7f00dead0000)
	m.CygExit(tc, r, 0x7f00dead0000)

	prof := m.Profile()
	if prof.Region("kernel") == nil || prof.Region("kernel").Visits != 1 {
		t.Fatalf("kernel not resolved: %+v", prof.Regions)
	}
	if prof.UnknownEvents != 2 {
		t.Fatalf("unknown events = %d, want 2", prof.UnknownEvents)
	}
	if prof.Region("UNKNOWN") == nil {
		t.Fatal("UNKNOWN region missing")
	}
	// Symbol injection repairs resolution.
	r.Inject(0x7f00dead0000, "dso_fn")
	m.CygEnter(tc, r, 0x7f00dead0000)
	m.CygExit(tc, r, 0x7f00dead0000)
	prof = m.Profile()
	if prof.Region("dso_fn") == nil {
		t.Fatal("injected symbol not resolved")
	}
	if r.Len() != 2 {
		t.Fatalf("resolver len = %d", r.Len())
	}
}

func TestProfileTextOutput(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	m.Enter(tc, "main")
	tc.clk.Advance(vtime.Second)
	m.Exit(tc, "main")
	p := m.Profile()
	var buf bytes.Buffer
	if err := p.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "main") {
		t.Fatalf("text output:\n%s", buf.String())
	}
	buf.Reset()
	if err := p.WriteCallTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "visits=1") {
		t.Fatalf("call tree output:\n%s", buf.String())
	}
}

func TestTraceBounded(t *testing.T) {
	m, err := New(Options{Ranks: 1, TraceCapacity: 3})
	if err != nil {
		t.Fatal(err)
	}
	tc := &fakeCtx{}
	for i := 0; i < 4; i++ {
		m.Enter(tc, "r")
		m.Exit(tc, "r")
	}
	trace, dropped := m.Trace(0)
	if len(trace) != 3 || dropped != 5 {
		t.Fatalf("trace len=%d dropped=%d", len(trace), dropped)
	}
	if !trace[0].Enter || trace[0].Region != "r" {
		t.Fatalf("trace[0] = %+v", trace[0])
	}
}

func TestFilterMatching(t *testing.T) {
	f := NewFilter().Exclude("*").Include("main").Include("Calc*Elems")
	cases := map[string]bool{ // name -> excluded?
		"main":              false,
		"CalcForceForElems": false,
		"CalcElems":         false,
		"tiny":              true,
		"CalcForceForNodes": true,
	}
	for name, want := range cases {
		if got := f.Excluded(name); got != want {
			t.Errorf("Excluded(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestFilterLastRuleWins(t *testing.T) {
	f := NewFilter().Include("foo").Exclude("foo")
	if !f.Excluded("foo") {
		t.Fatal("last rule should win")
	}
}

func TestFilterSerializationRoundTrip(t *testing.T) {
	f := NewFilter().Exclude("*").Include("main").Include("solve*")
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ParseFilter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != 3 {
		t.Fatalf("rules = %d", f2.Len())
	}
	for _, name := range []string{"main", "solve_x", "other"} {
		if f.Excluded(name) != f2.Excluded(name) {
			t.Fatalf("round trip behaviour differs for %q", name)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		"INCLUDE foo\n",
		"SCOREP_REGION_NAMES_BEGIN\nFROB x\nSCOREP_REGION_NAMES_END\n",
		"SCOREP_REGION_NAMES_BEGIN\nINCLUDE\nSCOREP_REGION_NAMES_END\n",
		"SCOREP_REGION_NAMES_BEGIN\n",
	}
	for _, src := range bad {
		if _, err := ParseFilter(strings.NewReader(src)); err == nil {
			t.Errorf("ParseFilter(%q) should fail", src)
		}
	}
}

// Property: matchPattern("pre*post") matches iff prefix and suffix hold.
func TestMatchPatternProperty(t *testing.T) {
	f := func(pre, mid, post string) bool {
		clean := func(s string) string { return strings.ReplaceAll(s, "*", "") }
		pre, mid, post = clean(pre), clean(mid), clean(post)
		return matchPattern(pre+"*"+post, pre+mid+post)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuggestFilter(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	// A hot tiny function: 5000 visits, ~100ns each.
	m.Enter(tc, "main")
	for i := 0; i < 5000; i++ {
		m.Enter(tc, "tinyHot")
		tc.clk.Advance(100)
		m.Exit(tc, "tinyHot")
	}
	// A big kernel: few visits, long.
	m.Enter(tc, "kernel")
	tc.clk.Advance(vtime.Second)
	m.Exit(tc, "kernel")
	m.Exit(tc, "main")

	sug, filter := SuggestFilter(m.Profile(), DefaultScoreOptions())
	if len(sug.Exclude) != 1 || sug.Exclude[0] != "tinyHot" {
		t.Fatalf("suggestion = %+v", sug)
	}
	if sug.EventsRemoved != 5000 {
		t.Fatalf("events removed = %d", sug.EventsRemoved)
	}
	if !filter.Excluded("tinyHot") || filter.Excluded("kernel") || filter.Excluded("main") {
		t.Fatal("generated filter wrong")
	}
}

func TestSuggestFilterKeep(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	for i := 0; i < 2000; i++ {
		m.Enter(tc, "keeper")
		m.Exit(tc, "keeper")
	}
	opts := DefaultScoreOptions()
	opts.Keep = []string{"keeper"}
	sug, _ := SuggestFilter(m.Profile(), opts)
	if len(sug.Exclude) != 0 {
		t.Fatalf("keeper excluded: %+v", sug)
	}
}

func TestInitCost(t *testing.T) {
	m := newM(t, 1)
	if m.InitCost(1000) <= m.InitCost(10) {
		t.Fatal("init cost should grow with symbol count")
	}
}

// TestCloseDanglingSplicesOpenFrames covers the synthetic-exit path live
// re-selection uses: open frames of the deselected region are spliced off
// the stack, frames above and below stay balanced.
func TestCloseDanglingSplicesOpenFrames(t *testing.T) {
	m := newM(t, 2)
	tc := &fakeCtx{}
	m.Enter(tc, "outer")
	tc.clk.Advance(1000)
	m.Enter(tc, "dangling")
	tc.clk.Advance(1000)
	m.Enter(tc, "inner")
	region, ok := m.LookupRegion("dangling")
	if !ok {
		t.Fatal("region not registered")
	}
	if closed := m.CloseDangling(region); closed != 1 {
		t.Fatalf("closed = %d, want 1", closed)
	}
	if got := m.OpenRegions(0); got != 2 {
		t.Fatalf("open = %d, want 2 (outer, inner)", got)
	}
	// The surviving frames exit in order, untouched by the splice.
	m.Exit(tc, "inner")
	m.Exit(tc, "outer")
	if got := m.OpenRegions(0); got != 0 {
		t.Fatalf("open = %d after balanced exits", got)
	}
	if r := m.Profile().Region("dangling"); r == nil || r.Visits != 1 || r.Inclusive <= 0 {
		t.Fatalf("dangling region not closed into profile: %+v", r)
	}
	// Closing a region with nothing open is a no-op.
	if closed := m.CloseDangling(region); closed != 0 {
		t.Fatalf("re-close closed %d", closed)
	}
}

// TestLateExitAfterSyntheticClose is the regression for the in-flight race
// on live re-selection: a real exit that was already past the runtime's
// active check when the synthetic exit closed its frame must not pop an
// unrelated frame off the stack.
func TestLateExitAfterSyntheticClose(t *testing.T) {
	m := newM(t, 1)
	tc := &fakeCtx{}
	m.Enter(tc, "outer")
	m.Enter(tc, "dangling")
	region, _ := m.LookupRegion("dangling")
	if closed := m.CloseDangling(region); closed != 1 {
		t.Fatal("synthetic close failed")
	}
	// The late real exit for the already-closed region: ignored, the
	// still-open outer frame must survive.
	m.Exit(tc, "dangling")
	if got := m.OpenRegions(0); got != 1 {
		t.Fatalf("open = %d, want 1 (outer)", got)
	}
	m.Exit(tc, "outer")
	if got := m.OpenRegions(0); got != 0 {
		t.Fatalf("open = %d", got)
	}
}
