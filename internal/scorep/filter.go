package scorep

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Filter is a Score-P region filter: an ordered list of EXCLUDE/INCLUDE
// rules with shell-style '*' wildcards. The last matching rule wins; names
// matching no rule are included.
type Filter struct {
	rules []filterRule
}

type filterRule struct {
	exclude bool
	pattern string
}

// NewFilter returns an empty (all-inclusive) filter.
func NewFilter() *Filter { return &Filter{} }

// Exclude appends an EXCLUDE rule.
func (f *Filter) Exclude(pattern string) *Filter {
	f.rules = append(f.rules, filterRule{exclude: true, pattern: pattern})
	return f
}

// Include appends an INCLUDE rule.
func (f *Filter) Include(pattern string) *Filter {
	f.rules = append(f.rules, filterRule{exclude: false, pattern: pattern})
	return f
}

// Len returns the number of rules.
func (f *Filter) Len() int { return len(f.rules) }

// Excluded reports whether the region name is filtered out.
func (f *Filter) Excluded(name string) bool {
	excluded := false
	for _, r := range f.rules {
		if matchPattern(r.pattern, name) {
			excluded = r.exclude
		}
	}
	return excluded
}

// matchPattern matches a name against a pattern with '*' wildcards.
func matchPattern(pattern, name string) bool {
	if pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	name = name[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(name, parts[i])
		if idx < 0 {
			return false
		}
		name = name[idx+len(parts[i]):]
	}
	return strings.HasSuffix(name, parts[len(parts)-1])
}

// WriteTo serializes the filter in the Score-P filter-file syntax.
func (f *Filter) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintln(w, "SCOREP_REGION_NAMES_BEGIN")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, r := range f.rules {
		verb := "INCLUDE"
		if r.exclude {
			verb = "EXCLUDE"
		}
		n, err := fmt.Fprintf(w, "  %s %s\n", verb, r.pattern)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err = fmt.Fprintln(w, "SCOREP_REGION_NAMES_END")
	total += int64(n)
	return total, err
}

// ParseFilter reads a filter in the Score-P filter-file syntax.
func ParseFilter(r io.Reader) (*Filter, error) {
	f := NewFilter()
	sc := bufio.NewScanner(r)
	inBlock := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || strings.HasPrefix(text, "#"):
		case text == "SCOREP_REGION_NAMES_BEGIN":
			inBlock = true
		case text == "SCOREP_REGION_NAMES_END":
			inBlock = false
		default:
			if !inBlock {
				return nil, fmt.Errorf("scorep: filter line %d outside block: %q", line, text)
			}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				return nil, fmt.Errorf("scorep: filter line %d malformed: %q", line, text)
			}
			// Tolerate the MANGLED keyword of Score-P filter files.
			pattern := fields[len(fields)-1]
			switch fields[0] {
			case "EXCLUDE":
				f.Exclude(pattern)
			case "INCLUDE":
				f.Include(pattern)
			default:
				return nil, fmt.Errorf("scorep: filter line %d unknown verb %q", line, fields[0])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if inBlock {
		return nil, fmt.Errorf("scorep: filter missing SCOREP_REGION_NAMES_END")
	}
	return f, nil
}
