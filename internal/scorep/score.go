package scorep

import "sort"

// This file implements the scorep-score-style filter generation the paper
// describes in §II-B: using a previous profiling run to find functions
// suspected to contribute most of the measurement overhead — small,
// frequently called functions — and emitting a filter that excludes them.

// ScoreOptions tunes filter generation.
type ScoreOptions struct {
	// MaxAvgExclusivePerVisit: regions whose average exclusive time per
	// visit is below this are overhead-dominated candidates.
	MaxAvgExclusivePerVisit int64
	// MinVisits: only frequently called regions are worth excluding.
	MinVisits int64
	// Keep lists region names never to exclude (e.g. main).
	Keep []string
}

// DefaultScoreOptions mirror scorep-score's spirit: exclude small regions
// visited very often. The per-visit threshold tracks the workload
// generators' call-compression scaling (workload.scaleWork): one simulated
// visit stands in for many real calls, so "small" means sub-millisecond in
// simulated time.
func DefaultScoreOptions() ScoreOptions {
	return ScoreOptions{
		MaxAvgExclusivePerVisit: 800 * 1000, // 0.8 ms
		MinVisits:               500,
	}
}

// Suggestion is the outcome of a scorep-score run.
type Suggestion struct {
	// Exclude lists the regions recommended for filtering, most costly
	// (by estimated overhead share) first.
	Exclude []string
	// EventsRemoved estimates how many enter/exit event pairs the filter
	// eliminates.
	EventsRemoved int64
}

// SuggestFilter analyses a profile and returns an exclusion recommendation
// plus a ready-to-use runtime filter.
func SuggestFilter(p *Profile, opts ScoreOptions) (*Suggestion, *Filter) {
	keep := map[string]bool{"UNKNOWN": true}
	for _, k := range opts.Keep {
		keep[k] = true
	}
	type cand struct {
		name   string
		visits int64
	}
	var cands []cand
	for _, r := range p.Regions {
		if keep[r.Name] || r.Visits < opts.MinVisits || r.Visits == 0 {
			continue
		}
		if r.Exclusive/r.Visits <= opts.MaxAvgExclusivePerVisit {
			cands = append(cands, cand{name: r.Name, visits: r.Visits})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].visits != cands[j].visits {
			return cands[i].visits > cands[j].visits
		}
		return cands[i].name < cands[j].name
	})
	s := &Suggestion{}
	f := NewFilter()
	for _, c := range cands {
		s.Exclude = append(s.Exclude, c.name)
		s.EventsRemoved += c.visits
		f.Exclude(c.name)
	}
	return s, f
}
