package scorep

import (
	"capi/internal/obj"
)

// Resolver maps instruction addresses to function names for the generic
// -finstrument-functions interface. Score-P builds it by examining the
// *executable* binary only — "a major limitation of this method is that
// Score-P is unable to resolve addresses from shared objects" (§V-C1).
// DynCaPI repairs that with symbol injection: it determines each DSO's
// load address from the process memory map, reads the DSO's symbols with
// nm, translates them, and injects the result (Inject).
type Resolver struct {
	byAddr map[uint64]string
}

// NewResolver returns an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{byAddr: map[uint64]string{}}
}

// NewResolverFromExecutable builds the resolver Score-P builds on its own:
// function entry addresses of the main executable only.
func NewResolverFromExecutable(p *obj.Process) *Resolver {
	r := NewResolver()
	exe := p.Executable()
	for _, s := range exe.Image.NM() {
		if s.Kind == obj.SymFunc {
			r.byAddr[exe.Base+s.Value] = s.Name
		}
	}
	return r
}

// Inject adds (or overrides) one address→name mapping — the symbol
// injection path.
func (r *Resolver) Inject(addr uint64, name string) { r.byAddr[addr] = name }

// Resolve maps a function entry address to its name.
func (r *Resolver) Resolve(addr uint64) (string, bool) {
	name, ok := r.byAddr[addr]
	return name, ok
}

// Len returns the number of resolvable addresses.
func (r *Resolver) Len() int { return len(r.byAddr) }
