package experiments

import (
	"fmt"

	"capi/internal/compiler"
	"capi/internal/dyncapi"
	"capi/internal/exec"
	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/xray"
)

// Backend names for Table II and the dispatch benchmarks.
const (
	BackendNone   = "none" // vanilla / xray-inactive
	BackendTALP   = "talp"
	BackendScoreP = "scorep"
	BackendExtrae = "extrae"
)

// Variant names for Table II rows.
const (
	VariantVanilla  = "vanilla"
	VariantInactive = "xray inactive"
	VariantFull     = "xray full"
)

// OverheadRow is one Table II row.
type OverheadRow struct {
	App     string
	Backend string
	Variant string
	// InitSeconds is T_init (virtual); negative means not applicable
	// (vanilla / inactive rows print "-").
	InitSeconds float64
	// TotalSeconds is T_total (virtual), including T_init.
	TotalSeconds float64
	// Events is the number of dispatched instrumentation events.
	Events int64
}

// RunOutcome bundles a measured run with its tool reports.
type RunOutcome struct {
	Row        OverheadRow
	TALPReport *talp.Report
	Profile    *scorep.Profile
	Dyn        dyncapi.Report
	Backend    dyncapi.Backend
}

// RunVariant executes one Table II configuration.
//
//   - variant "vanilla": the uninstrumented build, no XRay at all;
//   - variant "xray inactive": the XRay build, nothing patched, no backend;
//   - variant "xray full": everything patched;
//   - any other variant: cfg selects the functions to patch.
func RunVariant(bundle *AppBundle, backend, variant string, cfg *ic.Config, opts Options) (*RunOutcome, error) {
	opts = opts.withDefaults()
	out := &RunOutcome{Row: OverheadRow{App: bundle.Name, Backend: backend, Variant: variant, InitSeconds: -1}}

	build := bundle.Build
	if variant == VariantVanilla {
		build = bundle.VanillaBuild
	}
	proc, err := build.LoadProcess()
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(opts.Ranks, mpi.DefaultCostModel())
	if err != nil {
		return nil, err
	}

	var xr *xray.Runtime
	if variant != VariantVanilla {
		xr, err = xray.NewRuntime(proc)
		if err != nil {
			return nil, err
		}
	}

	// Wire the measurement backend and DynCaPI unless this is an
	// uninstrumented variant.
	instrumented := variant != VariantVanilla && variant != VariantInactive
	if instrumented {
		var back dyncapi.Backend
		switch backend {
		case BackendTALP:
			mon := talp.New(world, talp.Options{
				EmulateReentryBug: opts.EmulateTALPBug,
				BugModulus:        opts.TALPBugModulus,
				BugMinRegions:     opts.TALPBugMinRegions,
			})
			back = dyncapi.NewTALPBackend(mon)
		case BackendScoreP:
			m, err := scorep.New(scorep.Options{Ranks: opts.Ranks})
			if err != nil {
				return nil, err
			}
			back = dyncapi.NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
		case BackendExtrae:
			buf, err := trace.New(trace.Options{Ranks: opts.Ranks})
			if err != nil {
				return nil, err
			}
			back = dyncapi.NewExtraeBackend(buf)
		case BackendNone:
			back = &dyncapi.CygBackend{}
		default:
			return nil, fmt.Errorf("experiments: unknown backend %q", backend)
		}
		dynOpts := dyncapi.Options{PatchAll: variant == VariantFull}
		dynRT, err := dyncapi.New(proc, xr, cfg, back, dynOpts)
		if err != nil {
			return nil, err
		}
		out.Dyn = dynRT.Report()
		out.Backend = back
		out.Row.InitSeconds = dynRT.InitSeconds()
	}

	eng, err := exec.New(exec.Config{
		Build:        build,
		Proc:         proc,
		XRay:         xr,
		World:        world,
		RankWorkSkew: bundle.Skew,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}

	var maxSeconds float64
	for _, r := range world.Ranks() {
		if s := r.Clock().Seconds(); s > maxSeconds {
			maxSeconds = s
		}
	}
	out.Row.TotalSeconds = maxSeconds
	if out.Row.InitSeconds > 0 {
		out.Row.TotalSeconds += out.Row.InitSeconds
	}
	out.Row.Events = eng.TotalEvents()

	// Collect tool reports.
	switch b := out.Backend.(type) {
	case *dyncapi.TALPBackend:
		out.TALPReport = b.Mon.Report()
	case *dyncapi.ScorePBackend:
		out.Profile = b.M.Profile()
	}
	return out, nil
}

// TALPStats extracts the per-rank TALP activity counters from a run that
// used the TALP backend (nil otherwise). Used for cost-model calibration.
func TALPStats(run *RunOutcome, ranks int) []talp.Stats {
	tb, ok := run.Backend.(*dyncapi.TALPBackend)
	if !ok {
		return nil
	}
	out := make([]talp.Stats, ranks)
	for i := range out {
		out[i] = tb.Mon.RankStats(i)
	}
	return out
}

// Table2 regenerates Table II: for each app, the vanilla baseline, the
// inactive-sleds run, and per backend the full and per-IC variants.
func Table2(opts Options) ([]OverheadRow, error) {
	opts = opts.withDefaults()
	var rows []OverheadRow
	for _, prep := range []func(Options) (*AppBundle, error){PrepareLulesh, PrepareOpenFOAM} {
		bundle, err := prep(opts)
		if err != nil {
			return nil, err
		}
		ics := map[string]*ic.Config{}
		for _, spec := range SpecNames {
			row, err := RunSelection(bundle, spec)
			if err != nil {
				return nil, err
			}
			ics[spec] = row.IC
		}
		van, err := RunVariant(bundle, BackendNone, VariantVanilla, nil, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, van.Row)
		inact, err := RunVariant(bundle, BackendNone, VariantInactive, nil, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, inact.Row)
		for _, backend := range []string{BackendTALP, BackendScoreP} {
			full, err := RunVariant(bundle, backend, VariantFull, nil, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, full.Row)
			for _, spec := range SpecNames {
				run, err := RunVariant(bundle, backend, spec, ics[spec], opts)
				if err != nil {
					return nil, err
				}
				rows = append(rows, run.Row)
			}
		}
	}
	return rows, nil
}

// RunRuntimeFiltered executes the §II-B comparison baseline: every sled is
// patched and Score-P's *runtime filtering* discards the events of regions
// outside the IC — "the overhead of invoking the probe and cross-checking
// the filter list is retained". Comparing against RunVariant with the same
// IC (patch-selected, Score-P unfiltered) isolates the benefit of
// selecting at patch time, the paper's approach.
func RunRuntimeFiltered(bundle *AppBundle, cfg *ic.Config, opts Options) (*RunOutcome, error) {
	opts = opts.withDefaults()
	out := &RunOutcome{Row: OverheadRow{App: bundle.Name, Backend: BackendScoreP, Variant: "runtime filter"}}

	proc, err := bundle.Build.LoadProcess()
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(opts.Ranks, mpi.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		return nil, err
	}
	filter := scorep.NewFilter().Exclude("*")
	for _, name := range cfg.Include {
		filter.Include(name)
	}
	m, err := scorep.New(scorep.Options{Ranks: opts.Ranks, RuntimeFilter: filter})
	if err != nil {
		return nil, err
	}
	back := dyncapi.NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
	dynRT, err := dyncapi.New(proc, xr, nil, back, dyncapi.Options{PatchAll: true})
	if err != nil {
		return nil, err
	}
	out.Dyn = dynRT.Report()
	out.Backend = back
	out.Row.InitSeconds = dynRT.InitSeconds()

	eng, err := exec.New(exec.Config{
		Build:        bundle.Build,
		Proc:         proc,
		XRay:         xr,
		World:        world,
		RankWorkSkew: bundle.Skew,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	for _, r := range world.Ranks() {
		if s := r.Clock().Seconds(); s > out.Row.TotalSeconds {
			out.Row.TotalSeconds = s
		}
	}
	out.Row.TotalSeconds += out.Row.InitSeconds
	out.Row.Events = eng.TotalEvents()
	out.Profile = m.Profile()
	return out, nil
}

// CompileTurnaround compares the static workflow's recompilation cost with
// the dynamic workflow's patch-time (§VII-A): adjusting an IC statically
// requires a full rebuild; dynamically it costs one DynCaPI initialization.
type CompileTurnaround struct {
	App              string
	RecompileSeconds float64
	PatchInitSeconds float64
}

// Turnaround measures the §VII-A comparison for a bundle with the given IC.
func Turnaround(bundle *AppBundle, cfg *ic.Config, opts Options) (*CompileTurnaround, error) {
	opts = opts.withDefaults()
	// Static workflow: recompile with the IC baked in.
	staticBuild, err := compiler.Compile(bundle.Prog, compiler.Options{
		OptLevel: bundle.OptLevel,
		StaticIC: cfg,
	})
	if err != nil {
		return nil, err
	}
	// Dynamic workflow: patch at start-up.
	run, err := RunVariant(bundle, BackendNone, "ic", cfg, opts)
	if err != nil {
		return nil, err
	}
	return &CompileTurnaround{
		App:              bundle.Name,
		RecompileSeconds: staticBuild.CompileSeconds,
		PatchInitSeconds: run.Row.InitSeconds,
	}, nil
}
