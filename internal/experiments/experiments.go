// Package experiments is the reproduction harness: it regenerates the
// paper's evaluation artifacts — Table I (selection results), Table II
// (instrumentation overhead) and the in-text §VI-B facts — from the
// synthetic workloads, and renders them via internal/report.
//
// Absolute virtual seconds differ from the paper's wall-clock numbers (our
// substrate is a simulator and the default workload scales are reduced);
// the *shape* — which selection wins, by what factor, where TALP and
// Score-P cross over — is the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every row.
package experiments

import (
	"fmt"
	"time"

	"capi/internal/callgraph"
	"capi/internal/compiler"
	"capi/internal/core"
	"capi/internal/ic"
	"capi/internal/metacg"
	"capi/internal/prog"
	"capi/internal/workload"
)

// The four general-purpose selection specifications of §VI.
const (
	SpecMPI = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(%mpi_comm, %excluded)
`
	SpecMPICoarse = `!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
sel = subtract(%mpi_comm, %excluded)
coarse(%sel)
`
	SpecKernels = `excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(callPathTo(%kernels), %excluded)
`
	SpecKernelsCoarse = `excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
sel = subtract(callPathTo(%kernels), %excluded)
coarse(%sel, %kernels)
`
)

// SpecNames lists the Table I/II variants in presentation order.
var SpecNames = []string{"mpi", "mpi coarse", "kernels", "kernels coarse"}

// SpecSource returns the specification source for a variant name.
func SpecSource(name string) (string, error) {
	switch name {
	case "mpi":
		return SpecMPI, nil
	case "mpi coarse":
		return SpecMPICoarse, nil
	case "kernels":
		return SpecKernels, nil
	case "kernels coarse":
		return SpecKernelsCoarse, nil
	default:
		return "", fmt.Errorf("experiments: unknown spec %q", name)
	}
}

// Options sizes the harness runs.
type Options struct {
	// Ranks of the simulated MPI world (default 4).
	Ranks int
	// Scale of the OpenFOAM call graph (default 0.1; 1.0 = paper scale).
	Scale float64
	// LuleshTimesteps (default 60) and OpenFOAM loop sizing.
	LuleshTimesteps int
	OFTimesteps     int
	PCGIters        int
	// LuleshCGNodes overrides the LULESH graph size (default 3,360).
	LuleshCGNodes int
	// EmulateTALPBug turns on the TALP re-entry bug compat mode for the
	// facts run (§VI-B(b)).
	EmulateTALPBug bool
	// TALPBugModulus / TALPBugMinRegions tune the emulation; zero keeps
	// the talp package defaults. The facts harness lowers them to match
	// the simulator's compressed dynamic footprint (far fewer distinct
	// executed regions than the real applications).
	TALPBugModulus    uint32
	TALPBugMinRegions int
}

func (o Options) withDefaults() Options {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	return o
}

// AppBundle is a prepared application: program, whole-program call graph
// and both builds (vanilla and XRay-instrumented).
type AppBundle struct {
	Name         string
	Prog         *prog.Program
	Graph        *callgraph.Graph
	Build        *compiler.Build // XRay build (sleds everywhere)
	VanillaBuild *compiler.Build
	OptLevel     int
	Skew         []float64
	GraphTime    time.Duration
}

// PrepareLulesh generates, analyses and compiles the LULESH case.
func PrepareLulesh(opts Options) (*AppBundle, error) {
	opts = opts.withDefaults()
	p := workload.Lulesh(workload.LuleshOptions{
		Timesteps: opts.LuleshTimesteps,
		CGNodes:   opts.LuleshCGNodes,
	})
	return prepare("lulesh", p, workload.LuleshOptLevel, workload.LuleshRankSkew(opts.Ranks))
}

// PrepareOpenFOAM generates, analyses and compiles the OpenFOAM case.
func PrepareOpenFOAM(opts Options) (*AppBundle, error) {
	opts = opts.withDefaults()
	p := workload.OpenFOAM(workload.OpenFOAMOptions{
		Scale:     opts.Scale,
		Timesteps: opts.OFTimesteps,
		PCGIters:  opts.PCGIters,
	})
	return prepare("openfoam", p, workload.OpenFOAMOptLevel, workload.OpenFOAMRankSkew(opts.Ranks))
}

func prepare(name string, p *prog.Program, optLevel int, skew []float64) (*AppBundle, error) {
	t0 := time.Now()
	g := metacg.BuildWholeProgram(p, metacg.Options{})
	graphTime := time.Since(t0)
	xb, err := compiler.Compile(p, compiler.Options{XRay: true, OptLevel: optLevel})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s xray build: %w", name, err)
	}
	vb, err := compiler.Compile(p, compiler.Options{OptLevel: optLevel})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s vanilla build: %w", name, err)
	}
	return &AppBundle{
		Name:         name,
		Prog:         p,
		Graph:        g,
		Build:        xb,
		VanillaBuild: vb,
		OptLevel:     optLevel,
		Skew:         skew,
		GraphTime:    graphTime,
	}, nil
}

// SelectionRow is one Table I row.
type SelectionRow struct {
	App      string
	Spec     string
	Seconds  float64 // wall-clock selection time
	Pre      int     // #selected pre (before post-processing)
	Selected int     // #selected (after removing inlined functions)
	Added    int     // #added (inlining compensation)
	Total    int     // call-graph size, for the percentage columns
	IC       *ic.Config
}

// PrePct returns Pre as a percentage of the graph size.
func (r SelectionRow) PrePct() float64 { return 100 * float64(r.Pre) / float64(r.Total) }

// SelectedPct returns Selected as a percentage of the graph size.
func (r SelectionRow) SelectedPct() float64 {
	return 100 * float64(r.Selected) / float64(r.Total)
}

// RunSelection evaluates one specification against a prepared bundle.
func RunSelection(bundle *AppBundle, specName string) (*SelectionRow, error) {
	src, err := SpecSource(specName)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(bundle.Graph)
	res, err := eng.RunSource(src, core.Options{Symbols: bundle.Build})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", bundle.Name, specName, err)
	}
	return &SelectionRow{
		App:      bundle.Name,
		Spec:     specName,
		Seconds:  res.SelectionTime.Seconds(),
		Pre:      res.Pre.Count(),
		Selected: res.Selected.Count(),
		Added:    len(res.AddedCompensation),
		Total:    bundle.Graph.Len(),
		IC:       res.IC(bundle.Name, specName),
	}, nil
}

// Table1 regenerates Table I for both applications.
func Table1(opts Options) ([]SelectionRow, error) {
	opts = opts.withDefaults()
	var rows []SelectionRow
	for _, prep := range []func(Options) (*AppBundle, error){PrepareLulesh, PrepareOpenFOAM} {
		bundle, err := prep(opts)
		if err != nil {
			return nil, err
		}
		for _, spec := range SpecNames {
			row, err := RunSelection(bundle, spec)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}
