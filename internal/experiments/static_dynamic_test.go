package experiments

import (
	"testing"

	"capi/internal/compiler"
	"capi/internal/exec"
	"capi/internal/mpi"
	"capi/internal/scorep"
	"capi/internal/workload"
	"capi/internal/xray"
)

// TestStaticDynamicEquivalence checks the core promise of the paper's
// contribution: applying an IC dynamically (XRay sled patching at start-up)
// measures exactly the same regions with exactly the same visit counts as
// the original static workflow (measurement hooks compiled into the
// selected functions) — recompilation buys nothing but lost time.
func TestStaticDynamicEquivalence(t *testing.T) {
	p := workload.Lulesh(workload.LuleshOptions{CGNodes: 800, Timesteps: 4})
	const ranks = 2

	// One shared selection.
	bundle, err := prepare("lulesh", p, workload.LuleshOptLevel, nil)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSelection(bundle, "mpi")
	if err != nil {
		t.Fatal(err)
	}
	cfg := row.IC

	// --- dynamic: XRay build, patch at startup, Score-P via addresses ---
	dynProfile := func() *scorep.Profile {
		run, err := RunVariant(bundle, BackendScoreP, "mpi", cfg, Options{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		return run.Profile
	}()

	// --- static: recompile with the IC baked in, hooks by name ---
	staticBuild, err := compiler.Compile(p, compiler.Options{
		OptLevel: workload.LuleshOptLevel,
		StaticIC: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := staticBuild.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	world, err := mpi.NewWorld(ranks, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	m, err := scorep.New(scorep.Options{Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.New(exec.Config{
		Build: staticBuild,
		Proc:  proc,
		World: world,
		StaticHook: func(tc xray.ThreadCtx, fn string, kind xray.EntryType) {
			if kind == xray.Entry {
				m.Enter(tc, fn)
			} else {
				m.Exit(tc, fn)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	staticProfile := m.Profile()

	// Same regions, same visit counts.
	dynRegions := map[string]int64{}
	for _, r := range dynProfile.Regions {
		dynRegions[r.Name] = r.Visits
	}
	staticRegions := map[string]int64{}
	for _, r := range staticProfile.Regions {
		staticRegions[r.Name] = r.Visits
	}
	if len(dynRegions) == 0 {
		t.Fatal("dynamic run measured nothing")
	}
	for name, visits := range staticRegions {
		if dynRegions[name] != visits {
			t.Errorf("region %s: static %d visits, dynamic %d", name, visits, dynRegions[name])
		}
	}
	for name := range dynRegions {
		if _, ok := staticRegions[name]; !ok {
			t.Errorf("region %s measured dynamically but not statically", name)
		}
	}
}
