package experiments

import (
	"capi/internal/obj"
)

// Facts collects the in-text evaluation numbers of §VI-B and §VII-A for the
// OpenFOAM case: the DSO and hidden-symbol counts of the patching section,
// the TALP pre-MPI_Init and re-entry failures, and the static-vs-dynamic
// turnaround comparison. At Scale 1.0 the paper reports 6 patchable DSOs,
// 28,687 IDs in the largest object, 1,444 unresolvable hidden symbols (none
// selected), 15 of 16,956 regions failing pre-init and 24 unique failed
// re-entries; scaled runs report proportionally smaller counts.
type Facts struct {
	App   string
	Scale float64

	// §VI-B(a): patching.
	PatchableDSOs      int    // patchable shared objects linked by the solver
	LargestObject      string // object with the most XRay function IDs
	LargestObjectIDs   int
	HiddenUnresolvable int // DSO function IDs DynCaPI cannot map to a name
	HiddenSelected     int // of those, how many the IC selected (paper: 0)

	// §VI-B(b): TALP measurement with the mpi IC.
	MPIRegions    int // functions in the mpi IC (registered as regions)
	FailedPreInit int // regions first entered before MPI_Init
	FailedReentry int // unique failed re-entries (upstream bug, emulated)

	// §VII-A: turnaround.
	RecompileSeconds float64 // static workflow: full rebuild with new IC
	PatchInitSeconds float64 // dynamic workflow: DynCaPI re-patch at start
}

// GatherFacts runs the OpenFOAM case end-to-end and extracts the §VI-B /
// §VII-A numbers. The TALP re-entry bug emulation is forced on so the
// failure signature of the paper is observable regardless of opts.
func GatherFacts(opts Options) (*Facts, error) {
	opts = opts.withDefaults()
	opts.EmulateTALPBug = true
	if opts.TALPBugModulus == 0 {
		// The real failure rate was 24 of 16,956 *registered* regions; our
		// dynamic footprint registers far fewer distinct regions (one
		// simulated function stands in for many real ones), so the hash
		// modulus is compressed accordingly.
		opts.TALPBugModulus = 6
	}
	if opts.TALPBugMinRegions == 0 {
		opts.TALPBugMinRegions = 10
	}

	bundle, err := PrepareOpenFOAM(opts)
	if err != nil {
		return nil, err
	}
	f := &Facts{App: bundle.Name, Scale: opts.Scale}

	// Patchable DSOs and the largest object by function-ID count.
	for _, im := range bundle.Build.PatchableImages() {
		if im.Exe {
			continue
		}
		f.PatchableDSOs++
		if n := int(im.NumFuncIDs); n > f.LargestObjectIDs {
			f.LargestObjectIDs = n
			f.LargestObject = im.Name
		}
	}
	// Hidden DSO symbols (static initializers etc.) that the nm-based
	// resolution cannot see.
	for _, im := range bundle.Build.Images {
		if im.Exe || !im.Patchable {
			continue
		}
		for _, s := range im.Symbols {
			if s.Hidden && s.Kind == obj.SymFunc {
				f.HiddenUnresolvable++
			}
		}
	}

	// Run the mpi IC under TALP.
	sel, err := RunSelection(bundle, "mpi")
	if err != nil {
		return nil, err
	}
	f.MPIRegions = sel.IC.Len()
	for _, name := range sel.IC.Include {
		lay := bundle.Build.Layout[name]
		if lay != nil && lay.HasSymbol && !lay.HasSleds {
			continue
		}
		if lay != nil && lay.HasSymbol {
			if sym := findSymbol(bundle, name); sym != nil && sym.Hidden {
				f.HiddenSelected++
			}
		}
	}
	run, err := RunVariant(bundle, BackendTALP, "mpi", sel.IC, opts)
	if err != nil {
		return nil, err
	}
	if run.TALPReport != nil {
		f.FailedPreInit = len(run.TALPReport.FailedPreInit)
		f.FailedReentry = len(run.TALPReport.FailedEntries)
	}

	// §VII-A turnaround with the same IC.
	ta, err := Turnaround(bundle, sel.IC, opts)
	if err != nil {
		return nil, err
	}
	f.RecompileSeconds = ta.RecompileSeconds
	f.PatchInitSeconds = ta.PatchInitSeconds
	return f, nil
}

// findSymbol locates a function symbol across the bundle's images.
func findSymbol(bundle *AppBundle, name string) *obj.Symbol {
	for _, im := range bundle.Build.Images {
		for i := range im.Symbols {
			if im.Symbols[i].Name == name && im.Symbols[i].Kind == obj.SymFunc {
				return &im.Symbols[i]
			}
		}
	}
	return nil
}
