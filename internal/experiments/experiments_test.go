package experiments

import (
	"strings"
	"testing"

	"capi/internal/scorep"
)

// small keeps harness tests fast; shapes are scale-independent.
var small = Options{
	Scale:           0.02,
	Ranks:           2,
	LuleshTimesteps: 8,
	OFTimesteps:     2,
	PCGIters:        4,
}

func TestSpecSources(t *testing.T) {
	for _, name := range SpecNames {
		src, err := SpecSource(name)
		if err != nil {
			t.Fatal(err)
		}
		if src == "" {
			t.Fatalf("empty spec %q", name)
		}
	}
	if _, err := SpecSource("nope"); err == nil {
		t.Fatal("unknown spec must fail")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(small)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byKey := map[string]SelectionRow{}
	for _, r := range rows {
		byKey[r.App+"/"+r.Spec] = r
		// Universal invariants of every Table I row.
		if r.Selected > r.Pre {
			t.Errorf("%s/%s: selected %d > pre %d", r.App, r.Spec, r.Selected, r.Pre)
		}
		if r.Selected == 0 {
			t.Errorf("%s/%s: empty selection", r.App, r.Spec)
		}
		if r.IC.Len() != r.Selected+r.Added {
			t.Errorf("%s/%s: IC %d != selected %d + added %d", r.App, r.Spec, r.IC.Len(), r.Selected, r.Added)
		}
	}
	// The paper's lulesh mpi row: 19 pre -> 12 selected, 0 added.
	lm := byKey["lulesh/mpi"]
	if lm.Pre != 19 || lm.Selected != 12 || lm.Added != 0 {
		t.Errorf("lulesh/mpi = %d/%d/%d, want 19/12/0", lm.Pre, lm.Selected, lm.Added)
	}
	// The paper's lulesh mpi coarse row: 6 -> 6, 0.
	lc := byKey["lulesh/mpi coarse"]
	if lc.Pre != 6 || lc.Selected != 6 || lc.Added != 0 {
		t.Errorf("lulesh/mpi coarse = %d/%d/%d, want 6/6/0", lc.Pre, lc.Selected, lc.Added)
	}
	// Coarse selects fewer (or equal) than the base spec, on both apps.
	for _, app := range []string{"lulesh", "openfoam"} {
		for _, base := range []string{"mpi", "kernels"} {
			b, c := byKey[app+"/"+base], byKey[app+"/"+base+" coarse"]
			if c.Pre > b.Pre {
				t.Errorf("%s: coarse pre %d > base pre %d", app, c.Pre, b.Pre)
			}
		}
	}
	// OpenFOAM: the coarse pass increases the compensation count (callers
	// removed by coarse get re-added for their inlined callees).
	om, oc := byKey["openfoam/mpi"], byKey["openfoam/mpi coarse"]
	if oc.Added <= om.Added {
		t.Errorf("openfoam coarse added %d <= mpi added %d", oc.Added, om.Added)
	}
	// Render does not crash and carries both apps.
	text := RenderTable1(rows).String()
	for _, want := range []string{"lulesh", "openfoam", "kernels coarse"} {
		if !strings.Contains(text, want) {
			t.Errorf("render misses %q:\n%s", want, text)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(small)
	if err != nil {
		t.Fatal(err)
	}
	get := func(app, backend, variant string) OverheadRow {
		for _, r := range rows {
			if r.App == app && r.Backend == backend && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("row %s/%s/%s missing", app, backend, variant)
		return OverheadRow{}
	}
	for _, app := range []string{"lulesh", "openfoam"} {
		vanilla := get(app, BackendNone, VariantVanilla)
		inactive := get(app, BackendNone, VariantInactive)
		// Inactive sleds ≈ vanilla (§VI-C: near-zero inactive overhead).
		if d := (inactive.TotalSeconds - vanilla.TotalSeconds) / vanilla.TotalSeconds; d < 0 || d > 0.01 {
			t.Errorf("%s: inactive overhead %.4f outside [0,1%%]", app, d)
		}
		for _, backend := range []string{BackendTALP, BackendScoreP} {
			full := get(app, backend, VariantFull)
			mpiRow := get(app, backend, "mpi")
			kern := get(app, backend, "kernels")
			if full.TotalSeconds <= mpiRow.TotalSeconds {
				t.Errorf("%s/%s: full %.2f <= mpi %.2f", app, backend, full.TotalSeconds, mpiRow.TotalSeconds)
			}
			// The comm-chain-shaped mpi IC is costlier than the kernels IC
			// on OpenFOAM (Table II); on LULESH the two are within noise of
			// each other in the paper too, so no ordering is asserted.
			if app == "openfoam" && mpiRow.TotalSeconds < kern.TotalSeconds {
				t.Errorf("%s/%s: mpi %.2f < kernels %.2f", app, backend, mpiRow.TotalSeconds, kern.TotalSeconds)
			}
			if full.InitSeconds <= 0 {
				t.Errorf("%s/%s: full T_init %.2f not positive", app, backend, full.InitSeconds)
			}
			// Score-P's symbol-map construction makes its T_init larger.
			if backend == BackendScoreP && full.InitSeconds <= get(app, BackendTALP, VariantFull).InitSeconds {
				t.Errorf("%s: Score-P init %.2f not above TALP's", app, full.InitSeconds)
			}
		}
	}
	// The paper's two crossovers on openfoam:
	// full instrumentation is worse under Score-P ...
	if sp, tl := get("openfoam", BackendScoreP, VariantFull), get("openfoam", BackendTALP, VariantFull); sp.TotalSeconds <= tl.TotalSeconds {
		t.Errorf("openfoam full: scorep %.2f <= talp %.2f", sp.TotalSeconds, tl.TotalSeconds)
	}
	// ... but the mpi IC is worse under TALP (open-region PMPI cost).
	if sp, tl := get("openfoam", BackendScoreP, "mpi"), get("openfoam", BackendTALP, "mpi"); sp.TotalSeconds >= tl.TotalSeconds {
		t.Errorf("openfoam mpi: scorep %.2f >= talp %.2f", sp.TotalSeconds, tl.TotalSeconds)
	}
	text := RenderTable2(rows).String()
	if !strings.Contains(text, "xray inactive") || !strings.Contains(text, "[scorep]") {
		t.Errorf("render incomplete:\n%s", text)
	}
}

func TestGatherFacts(t *testing.T) {
	f, err := GatherFacts(small)
	if err != nil {
		t.Fatal(err)
	}
	if f.PatchableDSOs != 6 {
		t.Errorf("patchable DSOs = %d, want 6", f.PatchableDSOs)
	}
	if f.LargestObject != "libOpenFOAM.so" {
		t.Errorf("largest object = %q", f.LargestObject)
	}
	if f.HiddenUnresolvable == 0 {
		t.Error("no hidden symbols modelled")
	}
	if f.HiddenSelected != 0 {
		t.Errorf("hidden selected = %d, want 0 (as in the paper)", f.HiddenSelected)
	}
	if f.FailedPreInit == 0 {
		t.Error("no pre-MPI_Init region failures observed")
	}
	if f.FailedPreInit > f.MPIRegions/10 {
		t.Errorf("pre-init failures %d implausibly high for %d regions", f.FailedPreInit, f.MPIRegions)
	}
	if f.RecompileSeconds <= f.PatchInitSeconds {
		t.Errorf("recompile %.1fs not above patch init %.2fs", f.RecompileSeconds, f.PatchInitSeconds)
	}
	if !strings.Contains(RenderFacts(f).String(), "patchable DSOs") {
		t.Error("facts render incomplete")
	}
}

func TestTurnaround(t *testing.T) {
	bundle, err := PrepareOpenFOAM(small)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSelection(bundle, "kernels")
	if err != nil {
		t.Fatal(err)
	}
	ta, err := Turnaround(bundle, row.IC, small)
	if err != nil {
		t.Fatal(err)
	}
	if ta.RecompileSeconds < 10*ta.PatchInitSeconds {
		t.Errorf("recompile %.1fs not ≫ patch %.2fs", ta.RecompileSeconds, ta.PatchInitSeconds)
	}
}

func TestRunVariantUnknownBackend(t *testing.T) {
	bundle, err := PrepareLulesh(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunVariant(bundle, "vampir", "mpi", nil, small); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

// TestRuntimeFilterVsPatching reproduces the §II-B argument: runtime
// filtering keeps every probe alive (and pays a filter check per event),
// so it must cost more than patching only the selected functions, while
// recording the same regions.
func TestRuntimeFilterVsPatching(t *testing.T) {
	bundle, err := PrepareOpenFOAM(small)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunSelection(bundle, "kernels")
	if err != nil {
		t.Fatal(err)
	}
	patched, err := RunVariant(bundle, BackendScoreP, "kernels", row.IC, small)
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := RunRuntimeFiltered(bundle, row.IC, small)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Row.TotalSeconds <= patched.Row.TotalSeconds {
		t.Fatalf("runtime filtering %.2fs not above patch-time selection %.2fs",
			filtered.Row.TotalSeconds, patched.Row.TotalSeconds)
	}
	// The filtered run dispatched far more events (every sled fires)...
	if filtered.Row.Events <= patched.Row.Events {
		t.Fatalf("filtered events %d <= patched %d", filtered.Row.Events, patched.Row.Events)
	}
	// ...but discarded the excluded ones.
	if filtered.Profile.FilteredEvents == 0 {
		t.Fatal("no events filtered at runtime")
	}
	// Both profiles record the hot kernel.
	for _, p := range []*scorep.Profile{patched.Profile, filtered.Profile} {
		if p.Region("Foam::lduMatrix::Amul") == nil {
			t.Fatal("Amul missing from profile")
		}
	}
}
