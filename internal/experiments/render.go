package experiments

import (
	"fmt"

	"capi/internal/report"
)

// RenderTable1 renders Table I rows in the paper's layout: selection time,
// selected-pre, selected, and added counts per app and spec variant.
func RenderTable1(rows []SelectionRow) *report.Table {
	t := report.New("TABLE I — SELECTION RESULTS",
		"", "Time", "#selected pre", "#selected", "#added").
		AlignRight(1, 2, 3, 4)
	app := ""
	for _, r := range rows {
		if r.App != app {
			app = r.App
			t.AddRow(app)
		}
		t.AddRow(
			"  "+r.Spec,
			fmt.Sprintf("%.1fs", r.Seconds),
			fmt.Sprintf("%d (%.1f%%)", r.Pre, r.PrePct()),
			fmt.Sprintf("%d (%.1f%%)", r.Selected, r.SelectedPct()),
			fmt.Sprintf("%d", r.Added),
		)
	}
	return t
}

// RenderTable2 renders Table II in the paper's layout: per app, the vanilla
// and inactive baselines, then T_init/T_total per backend and variant.
func RenderTable2(rows []OverheadRow) *report.Table {
	t := report.New("TABLE II — INSTRUMENTATION OVERHEAD (virtual seconds)",
		"", "Tinit", "Ttotal", "overhead").
		AlignRight(1, 2, 3)
	vanilla := map[string]float64{}
	for _, r := range rows {
		if r.Variant == VariantVanilla {
			vanilla[r.App] = r.TotalSeconds
		}
	}
	app, backend := "", ""
	for _, r := range rows {
		if r.App != app {
			app, backend = r.App, ""
			t.AddRow(r.App)
		}
		if r.Backend != backend && r.Backend != BackendNone {
			backend = r.Backend
			t.AddRow("  [" + backend + "]")
		}
		init := "-"
		if r.InitSeconds >= 0 {
			init = fmt.Sprintf("%.2f", r.InitSeconds)
		}
		over := ""
		if base := vanilla[r.App]; base > 0 && r.Variant != VariantVanilla {
			over = fmt.Sprintf("%+.0f%%", 100*(r.TotalSeconds-base)/base)
		}
		t.AddRow(
			"    "+r.Variant,
			init,
			fmt.Sprintf("%.2f", r.TotalSeconds),
			over,
		)
	}
	return t
}

// RenderFacts renders the §VI-B / §VII-A in-text numbers.
func RenderFacts(f *Facts) *report.Table {
	t := report.New(
		fmt.Sprintf("§VI-B / §VII-A FACTS — %s (scale %.2f)", f.App, f.Scale),
		"fact", "measured").AlignRight(1)
	add := func(name, val string) { t.AddRow(name, val) }
	add("patchable DSOs", fmt.Sprintf("%d", f.PatchableDSOs))
	add("largest object", f.LargestObject)
	add("largest object function IDs", fmt.Sprintf("%d", f.LargestObjectIDs))
	add("hidden symbols unresolvable", fmt.Sprintf("%d", f.HiddenUnresolvable))
	add("hidden symbols selected", fmt.Sprintf("%d", f.HiddenSelected))
	add("TALP regions (mpi IC)", fmt.Sprintf("%d", f.MPIRegions))
	add("regions failed pre-MPI_Init", fmt.Sprintf("%d", f.FailedPreInit))
	add("unique failed re-entries", fmt.Sprintf("%d", f.FailedReentry))
	add("recompile turnaround", fmt.Sprintf("%.0fs", f.RecompileSeconds))
	add("dynamic patch turnaround", fmt.Sprintf("%.2fs", f.PatchInitSeconds))
	return t
}
