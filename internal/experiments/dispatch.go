package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"capi/internal/compiler"
	"capi/internal/dyncapi"
	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/prog"
	"capi/internal/scorep"
	"capi/internal/talp"
	"capi/internal/trace"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// DispatchHarness drives the event hot path — xray.Dispatch through the
// DynCaPI handler into a measurement backend — in isolation, for the
// backend throughput comparison (none vs. talp vs. scorep vs. extrae). It
// is shared by the BenchmarkDispatch* family and capi-bench's JSON mode.
type DispatchHarness struct {
	Backend string
	XR      *xray.Runtime
	RT      *dyncapi.Runtime
	Buf     *trace.Buffer // non-nil for the extrae backend

	ids []int32
	tc  *dispatchCtx
}

// dispatchCtx is the harness's ThreadCtx: rank 0 of a 1-rank world, so the
// TALP backend can register regions (MPI is initialized) and every backend
// sees a real clock.
type dispatchCtx struct {
	rank *mpi.Rank
}

func (c *dispatchCtx) RankID() int         { return c.rank.ID() }
func (c *dispatchCtx) Clock() *vtime.Clock { return c.rank.Clock() }
func (c *dispatchCtx) MPIRank() *mpi.Rank  { return c.rank }

// NewDispatchHarness compiles a four-kernel miniature program, patches the
// kernels under the named backend and initializes MPI on the driving rank.
// traceOpts tunes the extrae buffer (nil = bounded wrap-mode defaults so
// long benchmark runs stay in constant memory).
//
// backend may be a comma-separated list ("talp,extrae"): the leaf backends
// are then fanned out behind a dyncapi.Mux, exactly as a multi-backend run
// wires them. The prefix "mux:" forces the mux wrapper even for a single
// backend ("mux:extrae"), isolating the fan-out's own dispatch cost — the
// mux-of-one vs. direct comparison the benchdiff vs_direct gate watches.
//
// The prefix "sampled:" with an "@N" suffix ("sampled:extrae@64") installs
// a default 1-in-N stride sampling policy on the runtime, measuring the
// sampler's hot-path cost — the benchdiff vs_none_cap gate asserts sampled
// dispatch stays within benchcmp.SampledVsNoneLimit of the discarding
// baseline.
//
// The prefix "async:" ("async:extrae") attaches the asynchronous event
// pipeline: the dispatch handler appends a compact record to the rank's
// ring and returns, and a consumer goroutine replays the events through
// the backend off the hot path. "async@N:" sizes the per-rank ring to N
// events (capi-bench -async-buf). The benchdiff async_vs_inline_cap gate
// compares each async entry against the same run's inline counterpart.
// Callers of async harnesses must Close them to stop the consumer pool.
func NewDispatchHarness(backend string, traceOpts *trace.Options) (*DispatchHarness, error) {
	p := prog.New("dispatchbench", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)
	p.MustAddFunc(&prog.Function{Name: "MPI_Init", Unit: "libmpi.so"})
	kernels := []string{"k0", "k1", "k2", "k3"}
	ops := []prog.Op{prog.MPICall("MPI_Init", 0)}
	for _, k := range kernels {
		p.MustAddFunc(&prog.Function{Name: k, Unit: "app.exe", Statements: 25})
		ops = append(ops, prog.Call(k, 1))
	}
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "app.exe", Statements: 30, Ops: ops})
	build, err := compiler.Compile(p, compiler.Options{XRay: true})
	if err != nil {
		return nil, err
	}
	proc, err := build.LoadProcess()
	if err != nil {
		return nil, err
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		return nil, err
	}
	world, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		return nil, err
	}

	h := &DispatchHarness{Backend: backend, XR: xr}
	spec := backend
	stride, suppressNs := 0, 0
	asyncMode, asyncBuf := false, 0
	if rest, ok := strings.CutPrefix(spec, "async"); ok &&
		(strings.HasPrefix(rest, ":") || strings.HasPrefix(rest, "@")) {
		asyncMode = true
		if num, ok := strings.CutPrefix(rest, "@"); ok {
			colon := strings.Index(num, ":")
			if colon < 0 {
				return nil, fmt.Errorf("experiments: async dispatch spec %q needs the form async@N:backend", backend)
			}
			n, err := strconv.Atoi(num[:colon])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("experiments: async dispatch spec %q needs the form async@N:backend", backend)
			}
			asyncBuf, rest = n, num[colon:]
		}
		spec = strings.TrimPrefix(rest, ":")
	}
	if rest, ok := strings.CutPrefix(spec, "sampled:"); ok {
		n, inner, err := cutAtN(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("experiments: sampled dispatch spec %q needs a valid @N stride suffix", backend)
		}
		stride, spec = n, inner
	} else if rest, ok := strings.CutPrefix(spec, "suppressed:"); ok {
		n, inner, err := cutAtN(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("experiments: suppressed dispatch spec %q needs a valid @N min-duration suffix", backend)
		}
		suppressNs, spec = n, inner
	}
	forceMux := strings.HasPrefix(spec, "mux:")
	spec = strings.TrimPrefix(spec, "mux:")
	var leaves []dyncapi.Backend
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		var leaf dyncapi.Backend
		switch name {
		case BackendNone:
			leaf = &dyncapi.CygBackend{}
		case BackendTALP:
			leaf = dyncapi.NewTALPBackend(talp.New(world, talp.Options{}))
		case BackendScoreP:
			m, err := scorep.New(scorep.Options{Ranks: 1})
			if err != nil {
				return nil, err
			}
			leaf = dyncapi.NewScorePBackend(m, scorep.NewResolverFromExecutable(proc))
		case BackendExtrae:
			topts := trace.Options{Ranks: 1, BufEvents: 8192, MaxEvents: 1 << 16, Wrap: true}
			if traceOpts != nil {
				topts = *traceOpts
				topts.Ranks = 1
			}
			h.Buf, err = trace.New(topts)
			if err != nil {
				return nil, err
			}
			leaf = dyncapi.NewExtraeBackend(h.Buf)
		default:
			return nil, fmt.Errorf("experiments: unknown dispatch backend %q", name)
		}
		leaves = append(leaves, leaf)
	}
	back := leaves[0]
	if len(leaves) > 1 || forceMux {
		back = dyncapi.NewMux(leaves...)
	}
	rt, err := dyncapi.New(proc, xr, ic.New("dispatchbench", "bench", kernels), back, dyncapi.Options{Ranks: 1, Async: asyncMode, AsyncBuf: asyncBuf})
	if err != nil {
		return nil, err
	}
	if stride > 0 || suppressNs > 0 {
		err := rt.SetSampling(dyncapi.SamplingConfig{
			Default: &dyncapi.SamplePolicy{Stride: stride, MinDurationNs: int64(suppressNs)},
		})
		if err != nil {
			return nil, err
		}
	}
	h.RT = rt
	// Initialize MPI on the lone rank (a 1-rank collective completes
	// inline) so TALP region registration succeeds.
	r := world.Rank(0)
	if err := r.Init(); err != nil {
		return nil, err
	}
	h.tc = &dispatchCtx{rank: r}
	for _, k := range kernels {
		lay := build.Layout[k]
		lo := proc.Object(lay.Unit)
		objID, ok := xr.ObjectID(lo)
		if !ok {
			return nil, fmt.Errorf("experiments: object %q not registered", lay.Unit)
		}
		id, err := xray.PackID(objID, lay.FuncID)
		if err != nil {
			return nil, err
		}
		h.ids = append(h.ids, id)
	}
	return h, nil
}

// cutAtN splits "spec@N" into N and spec.
func cutAtN(s string) (int, string, error) {
	at := strings.LastIndex(s, "@")
	if at < 0 {
		return 0, "", fmt.Errorf("experiments: missing @N suffix in %q", s)
	}
	n, err := strconv.Atoi(s[at+1:])
	return n, s[:at], err
}

// Dispatch fires one enter/exit event pair for the i-th kernel (rotating).
// Each call is two dispatched events.
func (h *DispatchHarness) Dispatch(i int) {
	id := h.ids[i%len(h.ids)]
	h.XR.Dispatch(h.tc, id, xray.Entry)
	h.XR.Dispatch(h.tc, id, xray.Exit)
}

// Funcs returns the packed IDs of the patched kernels.
func (h *DispatchHarness) Funcs() []int32 { return h.ids }

// Close drains and stops the async consumer pool (a no-op for inline
// harnesses). Benchmarks and capi-bench call it between suite entries so
// consumer goroutines do not accumulate across harnesses.
func (h *DispatchHarness) Close() { h.RT.Close() }
