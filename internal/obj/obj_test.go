package obj

import (
	"strings"
	"testing"

	"capi/internal/mem"
)

// testImage builds a small patchable image with two functions:
//
//	f0 at 0x000 (size 0x40), sleds 0 (entry) and 1 (exit)
//	f1 at 0x40 (size 0x40), sleds 2 (entry) and 3 (exit), hidden
func testImage(name string, exe bool) *Image {
	im := &Image{
		Name:      name,
		Exe:       exe,
		Patchable: true,
		TextSize:  0x2000,
		Symbols: []Symbol{
			{Name: "f0", Value: 0x00, Size: 0x40, Kind: SymFunc},
			{Name: "f1", Value: 0x40, Size: 0x40, Kind: SymFunc, Hidden: true},
			{Name: "data0", Value: 0x1000, Size: 8, Kind: SymObject},
		},
		Sleds: []Sled{
			{Offset: 0x00, FuncID: 0, Kind: SledEntry},
			{Offset: 0x30, FuncID: 0, Kind: SledExit},
			{Offset: 0x40, FuncID: 1, Kind: SledEntry},
			{Offset: 0x70, FuncID: 1, Kind: SledExit},
		},
		NumFuncIDs: 2,
	}
	if err := im.Finalize(); err != nil {
		panic(err)
	}
	return im
}

func TestImageFinalizeErrors(t *testing.T) {
	bad := &Image{Name: "b", TextSize: 0x10, Symbols: []Symbol{{Name: "f", Value: 0, Size: 0x20, Kind: SymFunc}}}
	if err := bad.Finalize(); err == nil {
		t.Fatal("symbol beyond text must fail")
	}
	bad2 := &Image{Name: "b", TextSize: 0x100, Sleds: []Sled{{Offset: 0x0, FuncID: 5}}, NumFuncIDs: 1}
	if err := bad2.Finalize(); err == nil {
		t.Fatal("sled with out-of-range func id must fail")
	}
	bad3 := &Image{Name: "b", TextSize: 0x100, Symbols: []Symbol{{Name: "f"}, {Name: "f"}}}
	if err := bad3.Finalize(); err == nil {
		t.Fatal("duplicate symbol must fail")
	}
	bad4 := &Image{Name: "b", TextSize: 0x100, Symbols: []Symbol{{Name: ""}}}
	if err := bad4.Finalize(); err == nil {
		t.Fatal("empty symbol name must fail")
	}
	bad5 := &Image{Name: "b", TextSize: 8, Sleds: []Sled{{Offset: 4, FuncID: 0}}, NumFuncIDs: 1}
	if err := bad5.Finalize(); err == nil {
		t.Fatal("sled beyond text must fail")
	}
}

func TestImageLookups(t *testing.T) {
	im := testImage("app", true)
	s, ok := im.Symbol("f1")
	if !ok || !s.Hidden || s.Value != 0x40 {
		t.Fatalf("Symbol(f1) = %+v, %v", s, ok)
	}
	if _, ok := im.Symbol("ghost"); ok {
		t.Fatal("ghost symbol found")
	}
	if got := im.FuncSleds(0); len(got) != 2 {
		t.Fatalf("FuncSleds(0) = %v", got)
	}
	off, ok := im.FuncEntryOffset(1)
	if !ok || off != 0x40 {
		t.Fatalf("FuncEntryOffset(1) = %#x, %v", off, ok)
	}
	if _, ok := im.FuncEntryOffset(99); ok {
		t.Fatal("entry offset for unknown func id")
	}
}

func TestNMAndDynSyms(t *testing.T) {
	im := testImage("lib.so", false)
	nm := im.NM()
	if len(nm) != 3 {
		t.Fatalf("NM len = %d", len(nm))
	}
	// Sorted by value.
	if nm[0].Name != "f0" || nm[1].Name != "f1" || nm[2].Name != "data0" {
		t.Fatalf("NM order = %v", nm)
	}
	dyn := im.DynSyms()
	for _, s := range dyn {
		if s.Hidden {
			t.Fatal("hidden symbol in dynamic table")
		}
	}
	if len(dyn) != 2 { // f0 and data0
		t.Fatalf("DynSyms = %v", dyn)
	}
}

func TestProcessLoadUnload(t *testing.T) {
	exe := testImage("app", true)
	p, err := NewProcess(exe)
	if err != nil {
		t.Fatal(err)
	}
	if p.Executable().Image != exe {
		t.Fatal("executable mismatch")
	}
	var loaded, unloaded []string
	p.OnLoad(func(lo *LoadedObject) { loaded = append(loaded, lo.Image.Name) })
	p.OnUnload(func(lo *LoadedObject) { unloaded = append(unloaded, lo.Image.Name) })

	lib := testImage("lib.so", false)
	lo, err := p.Load(lib)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Base == p.Executable().Base || lo.Base == 0 {
		t.Fatalf("bad DSO base %#x", lo.Base)
	}
	if len(loaded) != 1 || loaded[0] != "lib.so" {
		t.Fatalf("load hooks = %v", loaded)
	}
	if p.Object("lib.so") != lo {
		t.Fatal("Object lookup failed")
	}
	if len(p.Objects()) != 2 {
		t.Fatalf("Objects = %d", len(p.Objects()))
	}
	// Second DSO gets a different base.
	lib2 := testImage("lib2.so", false)
	lo2, err := p.Load(lib2)
	if err != nil {
		t.Fatal(err)
	}
	if lo2.Base == lo.Base {
		t.Fatal("DSO bases collide")
	}

	if err := p.Unload("lib.so"); err != nil {
		t.Fatal(err)
	}
	if len(unloaded) != 1 || unloaded[0] != "lib.so" {
		t.Fatalf("unload hooks = %v", unloaded)
	}
	if p.Object("lib.so") != nil {
		t.Fatal("lib.so still present after unload")
	}
	if err := p.Unload("lib.so"); err == nil {
		t.Fatal("double unload should fail")
	}
	if err := p.Unload("app"); err == nil {
		t.Fatal("unloading the executable should fail")
	}
}

func TestProcessLoadErrors(t *testing.T) {
	exe := testImage("app", true)
	if _, err := NewProcess(testImage("lib.so", false)); err == nil {
		t.Fatal("NewProcess with DSO should fail")
	}
	p, _ := NewProcess(exe)
	if _, err := p.Load(testImage("app2", true)); err == nil {
		t.Fatal("dlopen of executable image should fail")
	}
	lib := testImage("lib.so", false)
	if _, err := p.Load(lib); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(lib); err == nil {
		t.Fatal("double load should fail")
	}
}

func TestSledPatchingRequiresWritablePages(t *testing.T) {
	p, _ := NewProcess(testImage("app", true))
	exe := p.Executable()
	// Text is r-x: writing must fault.
	if err := exe.WriteSled(0, true); err == nil || !strings.Contains(err.Error(), "non-writable") {
		t.Fatalf("err = %v", err)
	}
	if exe.SledPatched(0) {
		t.Fatal("sled must remain unpatched after failed write")
	}
	// mprotect, then patch.
	if _, err := p.AS.Mprotect(exe.SledAddr(0), SledBytes, mem.ProtRead|mem.ProtWrite|mem.ProtExec); err != nil {
		t.Fatal(err)
	}
	if err := exe.WriteSled(0, true); err != nil {
		t.Fatal(err)
	}
	if !exe.SledPatched(0) || exe.NumPatched() != 1 {
		t.Fatal("sled should be patched")
	}
	// Restore protection; unpatching now faults again.
	if _, err := p.AS.Mprotect(exe.SledAddr(0), SledBytes, mem.ProtRead|mem.ProtExec); err != nil {
		t.Fatal(err)
	}
	if err := exe.WriteSled(0, false); err == nil {
		t.Fatal("write after restore should fault")
	}
	if err := exe.WriteSled(99, true); err == nil {
		t.Fatal("out-of-range sled index should fail")
	}
}

func TestResolveAddrAndMemoryMap(t *testing.T) {
	p, _ := NewProcess(testImage("app", true))
	lib := testImage("lib.so", false)
	lo, _ := p.Load(lib)

	obj, sym, ok := p.ResolveAddr(p.Executable().Base + 0x45)
	if !ok || obj != "app" || sym.Name != "f1" {
		t.Fatalf("ResolveAddr = %q %+v %v", obj, sym, ok)
	}
	obj, sym, ok = p.ResolveAddr(lo.Base + 0x10)
	if !ok || obj != "lib.so" || sym.Name != "f0" {
		t.Fatalf("ResolveAddr DSO = %q %+v %v", obj, sym, ok)
	}
	// Gap between symbols resolves to nothing.
	if _, _, ok := p.ResolveAddr(p.Executable().Base + 0x90); ok {
		t.Fatal("gap address should not resolve")
	}
	if _, _, ok := p.ResolveAddr(0xdead); ok {
		t.Fatal("unmapped address should not resolve")
	}

	mm := p.MemoryMap()
	if len(mm) != 2 || mm[0].Name != "app" || mm[1].Name != "lib.so" {
		t.Fatalf("MemoryMap = %+v", mm)
	}
	if mm[0].Prot != "r-x" {
		t.Fatalf("exe prot = %q", mm[0].Prot)
	}
	if mm[1].End-mm[1].Base != lib.TextSize {
		t.Fatal("map entry size wrong")
	}
	if p.FindObject(mm[1].Base+1) != lo {
		t.Fatal("FindObject wrong")
	}
}
