package obj

import (
	"fmt"
	"sync"
	"sync/atomic"

	"capi/internal/mem"
)

// Load addresses: the executable gets the traditional small-PIE base, DSOs
// are placed in the mmap region with a fixed stride.
const (
	exeBase   = 0x0000000000400000
	dsoBase   = 0x00007f0000000000
	dsoStride = 0x0000000040000000
)

// LoadedObject is an image mapped into a process.
type LoadedObject struct {
	Image *Image
	Base  uint64

	proc    *Process
	patched []atomic.Bool // per-sled state: false = NOP sled, true = patched
}

// SledAddr returns the absolute address of sled i.
func (lo *LoadedObject) SledAddr(i int) uint64 {
	return lo.Base + lo.Image.Sleds[i].Offset
}

// SledPatched reports whether sled i has been patched. It is safe to call
// concurrently with patching (the execution engine reads it on every call).
func (lo *LoadedObject) SledPatched(i int) bool { return lo.patched[i].Load() }

// WriteSled rewrites sled i (NOP ↔ jump-to-trampoline). The containing page
// must be writable — callers must mprotect first, exactly like the real
// XRay runtime (§V-A).
func (lo *LoadedObject) WriteSled(i int, patched bool) error {
	if i < 0 || i >= len(lo.patched) {
		return fmt.Errorf("obj %s: sled index %d out of range", lo.Image.Name, i)
	}
	addr := lo.SledAddr(i)
	if err := lo.proc.AS.CheckWrite(addr, SledBytes); err != nil {
		return fmt.Errorf("obj %s: patching sled %d: %w", lo.Image.Name, i, err)
	}
	lo.patched[i].Store(patched)
	return nil
}

// NumPatched returns the number of currently patched sleds.
func (lo *LoadedObject) NumPatched() int {
	n := 0
	for i := range lo.patched {
		if lo.patched[i].Load() {
			n++
		}
	}
	return n
}

// MapEntry is one line of the process memory map (like /proc/self/maps).
type MapEntry struct {
	Base uint64
	End  uint64
	Prot string
	Name string
}

// Process is a set of loaded objects sharing an address space.
type Process struct {
	AS *mem.AddressSpace

	mu          sync.RWMutex
	objects     []*LoadedObject
	byName      map[string]*LoadedObject
	loadHooks   []func(*LoadedObject)
	unloadHooks []func(*LoadedObject)
	nextDSO     uint64
}

// NewProcess creates a process with the executable image mapped read-exec.
func NewProcess(exe *Image) (*Process, error) {
	if !exe.Exe {
		return nil, fmt.Errorf("obj: %q is not an executable image", exe.Name)
	}
	p := &Process{
		AS:     mem.NewAddressSpace(),
		byName: map[string]*LoadedObject{},
	}
	if _, err := p.load(exe, exeBase); err != nil {
		return nil, err
	}
	return p, nil
}

// OnLoad registers a hook invoked for every subsequently loaded object
// (and is how the xray-dso runtime registers DSO sled maps).
func (p *Process) OnLoad(h func(*LoadedObject)) {
	p.mu.Lock()
	p.loadHooks = append(p.loadHooks, h)
	p.mu.Unlock()
}

// OnUnload registers a hook invoked before an object is unloaded.
func (p *Process) OnUnload(h func(*LoadedObject)) {
	p.mu.Lock()
	p.unloadHooks = append(p.unloadHooks, h)
	p.mu.Unlock()
}

func (p *Process) load(img *Image, base uint64) (*LoadedObject, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.byName[img.Name]; dup {
		return nil, fmt.Errorf("obj: %q already loaded", img.Name)
	}
	size := img.TextSize
	if size == 0 {
		size = 1
	}
	if err := p.AS.Map(base, size, mem.ProtRead|mem.ProtExec); err != nil {
		return nil, fmt.Errorf("obj: mapping %q: %w", img.Name, err)
	}
	lo := &LoadedObject{Image: img, Base: base, proc: p, patched: make([]atomic.Bool, len(img.Sleds))}
	p.objects = append(p.objects, lo)
	p.byName[img.Name] = lo
	return lo, nil
}

// Load maps a DSO image into the process, assigns it a base address and
// fires the load hooks (dlopen).
func (p *Process) Load(img *Image) (*LoadedObject, error) {
	if img.Exe {
		return nil, fmt.Errorf("obj: cannot dlopen executable image %q", img.Name)
	}
	p.mu.Lock()
	base := dsoBase + p.nextDSO*dsoStride
	p.nextDSO++
	p.mu.Unlock()
	lo, err := p.load(img, base)
	if err != nil {
		return nil, err
	}
	p.mu.RLock()
	hooks := append([]func(*LoadedObject){}, p.loadHooks...)
	p.mu.RUnlock()
	for _, h := range hooks {
		h(lo)
	}
	return lo, nil
}

// Unload removes a DSO from the process (dlclose), firing unload hooks
// first.
func (p *Process) Unload(name string) error {
	p.mu.Lock()
	lo, ok := p.byName[name]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("obj: %q not loaded", name)
	}
	if lo.Image.Exe {
		p.mu.Unlock()
		return fmt.Errorf("obj: cannot unload the executable")
	}
	hooks := append([]func(*LoadedObject){}, p.unloadHooks...)
	p.mu.Unlock()
	for _, h := range hooks {
		h(lo)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	size := lo.Image.TextSize
	if size == 0 {
		size = 1
	}
	if err := p.AS.Unmap(lo.Base, size); err != nil {
		return err
	}
	delete(p.byName, name)
	for i, o := range p.objects {
		if o == lo {
			p.objects = append(p.objects[:i], p.objects[i+1:]...)
			break
		}
	}
	return nil
}

// Executable returns the main executable object.
func (p *Process) Executable() *LoadedObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.objects[0]
}

// Objects returns the loaded objects, executable first.
func (p *Process) Objects() []*LoadedObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*LoadedObject, len(p.objects))
	copy(out, p.objects)
	return out
}

// Object returns the loaded object with the given image name, or nil.
func (p *Process) Object(name string) *LoadedObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.byName[name]
}

// FindObject returns the object whose mapping contains addr, or nil.
func (p *Process) FindObject(addr uint64) *LoadedObject {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, lo := range p.objects {
		if addr >= lo.Base && addr < lo.Base+lo.Image.TextSize {
			return lo
		}
	}
	return nil
}

// ResolveAddr resolves an absolute address to (object name, symbol).
func (p *Process) ResolveAddr(addr uint64) (objName string, sym Symbol, ok bool) {
	lo := p.FindObject(addr)
	if lo == nil {
		return "", Symbol{}, false
	}
	s, ok := lo.Image.symbolAt(addr - lo.Base)
	return lo.Image.Name, s, ok
}

// MemoryMap returns the mapping table, executable first, like the
// /proc/<pid>/maps view DynCaPI's symbol injection parses (§V-C1).
func (p *Process) MemoryMap() []MapEntry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]MapEntry, 0, len(p.objects))
	for _, lo := range p.objects {
		prot := "r-x"
		if pr, ok := p.AS.ProtAt(lo.Base); ok {
			prot = pr.String()
		}
		out = append(out, MapEntry{
			Base: lo.Base,
			End:  lo.Base + lo.Image.TextSize,
			Prot: prot,
			Name: lo.Image.Name,
		})
	}
	return out
}
