// Package obj models linked object files (the executable and its DSOs) and
// running processes: symbol tables with ELF-style visibility, XRay
// instrumentation maps (sled tables), a dynamic loader with load/unload
// hooks, page-protected text mappings and address resolution. It is the
// substrate on which internal/xray performs runtime patching and on which
// DynCaPI performs its nm-based symbol mapping (§V-B, §V-C of the paper).
package obj

import (
	"fmt"
	"sort"
)

// SymKind classifies a symbol.
type SymKind int

const (
	// SymFunc is a function (text) symbol.
	SymFunc SymKind = iota
	// SymObject is a data symbol.
	SymObject
)

// Symbol is one symbol-table entry. Value is the offset of the symbol
// within its image; loaded addresses are Base+Value.
type Symbol struct {
	Name   string
	Value  uint64
	Size   uint64
	Kind   SymKind
	Hidden bool // ELF hidden visibility: absent from the dynamic table
}

// SledKind discriminates entry and exit sleds.
type SledKind int

const (
	// SledEntry marks a function entry instrumentation point.
	SledEntry SledKind = iota
	// SledExit marks a function exit instrumentation point.
	SledExit
)

func (k SledKind) String() string {
	if k == SledEntry {
		return "entry"
	}
	return "exit"
}

// SledBytes is the size of one sled (the NOP pad XRay reserves, large
// enough for the jump-to-trampoline sequence).
const SledBytes = 11

// Sled is one entry of the XRay instrumentation map: a patchable location.
type Sled struct {
	Offset uint64 // offset within the image's text
	FuncID uint32 // image-local function ID
	Kind   SledKind
}

// Image is a linked object file as produced by the compiler.
type Image struct {
	Name      string
	Exe       bool // the main executable (as opposed to a DSO)
	Patchable bool // built with XRay instrumentation

	Symbols  []Symbol
	Sleds    []Sled
	TextSize uint64

	// NumFuncIDs is the number of XRay function IDs used by this image
	// (the paper reports 28,687 for the largest OpenFOAM object).
	NumFuncIDs uint32

	symByName map[string]int
	funcSleds map[uint32][]int // funcID -> sled indexes
	sortedSym []int            // function symbols sorted by Value
}

// Finalize builds the image's lookup indexes and validates internal
// consistency. It must be called once after construction.
func (im *Image) Finalize() error {
	im.symByName = make(map[string]int, len(im.Symbols))
	for i, s := range im.Symbols {
		if s.Name == "" {
			return fmt.Errorf("obj %s: symbol %d has empty name", im.Name, i)
		}
		if _, dup := im.symByName[s.Name]; dup {
			return fmt.Errorf("obj %s: duplicate symbol %q", im.Name, s.Name)
		}
		im.symByName[s.Name] = i
		if s.Value+s.Size > im.TextSize && s.Kind == SymFunc {
			return fmt.Errorf("obj %s: symbol %q beyond text end", im.Name, s.Name)
		}
	}
	im.funcSleds = make(map[uint32][]int)
	for i, sl := range im.Sleds {
		if sl.Offset+SledBytes > im.TextSize {
			return fmt.Errorf("obj %s: sled %d beyond text end", im.Name, i)
		}
		if sl.FuncID >= im.NumFuncIDs {
			return fmt.Errorf("obj %s: sled %d references function ID %d >= %d", im.Name, i, sl.FuncID, im.NumFuncIDs)
		}
		im.funcSleds[sl.FuncID] = append(im.funcSleds[sl.FuncID], i)
	}
	im.sortedSym = im.sortedSym[:0]
	for i, s := range im.Symbols {
		if s.Kind == SymFunc {
			im.sortedSym = append(im.sortedSym, i)
		}
	}
	sort.Slice(im.sortedSym, func(a, b int) bool {
		return im.Symbols[im.sortedSym[a]].Value < im.Symbols[im.sortedSym[b]].Value
	})
	return nil
}

// Symbol returns the named symbol.
func (im *Image) Symbol(name string) (Symbol, bool) {
	i, ok := im.symByName[name]
	if !ok {
		return Symbol{}, false
	}
	return im.Symbols[i], true
}

// FuncSleds returns the sled indexes belonging to the given function ID.
func (im *Image) FuncSleds(funcID uint32) []int { return im.funcSleds[funcID] }

// FuncEntryOffset returns the entry-sled offset of the given function ID.
func (im *Image) FuncEntryOffset(funcID uint32) (uint64, bool) {
	for _, si := range im.funcSleds[funcID] {
		if im.Sleds[si].Kind == SledEntry {
			return im.Sleds[si].Offset, true
		}
	}
	return 0, false
}

// symbolAt resolves an offset to the containing function symbol.
func (im *Image) symbolAt(off uint64) (Symbol, bool) {
	idx := sort.Search(len(im.sortedSym), func(i int) bool {
		return im.Symbols[im.sortedSym[i]].Value > off
	})
	if idx == 0 {
		return Symbol{}, false
	}
	s := im.Symbols[im.sortedSym[idx-1]]
	if off < s.Value+s.Size {
		return s, true
	}
	return Symbol{}, false
}

// NM returns the full symbol table sorted by value, like `nm` on an
// unstripped object file. DynCaPI uses this output to map XRay function IDs
// to names (§VI-B(a)).
func (im *Image) NM() []Symbol {
	out := make([]Symbol, len(im.Symbols))
	copy(out, im.Symbols)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value < out[b].Value
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// DynSyms returns the dynamic symbol table: the non-hidden symbols. Hidden
// symbols are invisible here — the reason DynCaPI cannot resolve 1,444
// OpenFOAM functions in the paper's evaluation.
func (im *Image) DynSyms() []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if !s.Hidden {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Value != out[b].Value {
			return out[a].Value < out[b].Value
		}
		return out[a].Name < out[b].Name
	})
	return out
}
