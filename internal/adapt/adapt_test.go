package adapt

import (
	"testing"

	"capi/internal/compiler"
	"capi/internal/dyncapi"
	"capi/internal/exec"
	"capi/internal/ic"
	"capi/internal/mpi"
	"capi/internal/obj"
	"capi/internal/prog"
	"capi/internal/scorep"
	"capi/internal/trace"
	"capi/internal/vtime"
	"capi/internal/xray"
)

type fakeCtx struct {
	rank int
	clk  vtime.Clock
}

func (f *fakeCtx) RankID() int         { return f.rank }
func (f *fakeCtx) Clock() *vtime.Clock { return &f.clk }

// twoFuncSetup builds exe{main, hot, slow}, an XRay runtime and a DynCaPI
// runtime instrumenting hot+slow through a controller wrapping inner.
func twoFuncSetup(t *testing.T, opts Options, inner dyncapi.Backend) (*compiler.Build, *obj.Process, *xray.Runtime, *dyncapi.Runtime, *Controller) {
	t.Helper()
	p := prog.New("app", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "app.exe", Statements: 30,
		Ops: []prog.Op{prog.Call("hot", 1), prog.Call("slow", 1)}})
	p.MustAddFunc(&prog.Function{Name: "hot", Unit: "app.exe", Statements: 35})
	p.MustAddFunc(&prog.Function{Name: "slow", Unit: "app.exe", Statements: 35})
	b, err := compiler.Compile(p, compiler.Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(inner, opts)
	rt, err := dyncapi.New(proc, xr, ic.New("app", "s", []string{"hot", "slow"}), ctrl, dyncapi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Attach(rt)
	return b, proc, xr, rt, ctrl
}

func packedOf(t *testing.T, b *compiler.Build, xr *xray.Runtime, proc *obj.Process, name string) int32 {
	t.Helper()
	lay := b.Layout[name]
	if lay == nil || !lay.HasSleds {
		t.Fatalf("%s has no sleds", name)
	}
	lo := proc.Object(lay.Unit)
	objID, ok := xr.ObjectID(lo)
	if !ok {
		t.Fatalf("object %s not registered", lay.Unit)
	}
	id, err := xray.PackID(objID, lay.FuncID)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestControllerUnderBudgetKeepsSelection(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t, Options{Epoch: vtime.Millisecond, Budget: 0.5}, &dyncapi.CygBackend{})
	tc := &fakeCtx{}
	hot := packedOf(t, b, xr, proc, "hot")
	// A handful of events, then cross the boundary: 25ns × 4 ≪ 500µs budget.
	for i := 0; i < 2; i++ {
		xr.Dispatch(tc, hot, xray.Entry)
		tc.clk.Advance(100)
		xr.Dispatch(tc, hot, xray.Exit)
	}
	tc.clk.Advance(vtime.Millisecond)
	xr.Dispatch(tc, hot, xray.Entry)
	xr.Dispatch(tc, hot, xray.Exit)

	if ctrl.Reconfigs() != 0 || rt.Reconfigs() != 0 {
		t.Fatalf("reconfigured although under budget: %d", ctrl.Reconfigs())
	}
	eps := ctrl.Epochs()
	if len(eps) != 1 {
		t.Fatalf("epochs = %d, want 1", len(eps))
	}
	if eps[0].Reconfigured || len(eps[0].Dropped) != 0 {
		t.Fatalf("epoch = %+v", eps[0])
	}
	if eps[0].Events != 5 { // the four warm-up events + the boundary-crossing entry
		t.Fatalf("epoch events = %d, want 5", eps[0].Events)
	}
	if !rt.Active(hot) {
		t.Fatal("hot dropped under budget")
	}
}

func TestControllerDropsHottestLowDurationFirst(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t, Options{Epoch: vtime.Millisecond, Budget: 0.01, DemoteStride: -1}, &dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	// 210 hot invocations of 100ns each: hot and low-duration.
	for i := 0; i < 210; i++ {
		xr.Dispatch(tc, hot, xray.Entry)
		tc.clk.Advance(100)
		xr.Dispatch(tc, hot, xray.Exit)
	}
	// One slow invocation of 1ms: its exit crosses the epoch boundary with
	// 422 events ≈ 10550ns overhead against a ≈10210ns elapsed-scaled
	// budget (1% of the 1.021ms window).
	xr.Dispatch(tc, slow, xray.Entry)
	tc.clk.Advance(vtime.Millisecond)
	xr.Dispatch(tc, slow, xray.Exit)

	if ctrl.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d, want 1", ctrl.Reconfigs())
	}
	dropped := ctrl.Dropped()
	if len(dropped) != 1 || dropped[0] != "hot" {
		t.Fatalf("dropped = %v, want [hot] (hottest low-duration first)", dropped)
	}
	if rt.Active(hot) || xr.Patched(hot) {
		t.Fatal("hot still active/patched")
	}
	if !rt.Active(slow) || !xr.Patched(slow) {
		t.Fatal("slow (long-duration) must survive the narrowing")
	}
	eps := ctrl.Epochs()
	if len(eps) != 1 || !eps[0].Reconfigured {
		t.Fatalf("epochs = %+v", eps)
	}
	// Only the delta was touched: one function unpatched, none patched.
	rep := eps[0].Report
	if rep.Unpatched != 1 || rep.Patched != 0 || rep.Kept != 1 {
		t.Fatalf("reconfig report = %+v", rep)
	}
	if rep.Batch.BatchFuncs != 1 || rep.Batch.UnpatchedSleds != 2 || rep.Batch.PatchedSleds != 0 {
		t.Fatalf("batch stats = %+v (not delta-only)", rep.Batch)
	}
	// The re-patch cost was charged to the triggering rank's virtual clock.
	if want := vtime.Millisecond + 210*100 + rep.VirtualNs; tc.clk.Now() != want {
		t.Fatalf("clock = %d, want %d (reconfig cost charged)", tc.clk.Now(), want)
	}
}

func TestControllerRespectsMaxReconfigs(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t, Options{
		Epoch: vtime.Millisecond, Budget: 0.0001, MaxReconfigs: 1, DemoteStride: -1,
	}, &dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 50; i++ {
			xr.Dispatch(tc, hot, xray.Entry)
			tc.clk.Advance(100)
			xr.Dispatch(tc, hot, xray.Exit)
			xr.Dispatch(tc, slow, xray.Entry)
			tc.clk.Advance(100)
			xr.Dispatch(tc, slow, xray.Exit)
		}
		tc.clk.Advance(vtime.Millisecond)
	}
	xr.Dispatch(tc, slow, xray.Entry)
	xr.Dispatch(tc, slow, xray.Exit)
	if ctrl.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d, want 1 (MaxReconfigs)", ctrl.Reconfigs())
	}
	_ = rt
}

// TestAdaptiveNarrowingMidRun is the end-to-end acceptance test: a workload
// runs under the execution engine, the controller narrows the selection at
// an epoch boundary *mid-run*, and
//
//	(a) only the delta sleds are re-patched (batch stats),
//	(b) events stop arriving for the deselected function,
//	(c) the DynCaPI runtime is never torn down.
func TestAdaptiveNarrowingMidRun(t *testing.T) {
	p := prog.New("adaptapp", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("libmpi.so", prog.SystemLibrary)
	p.MustAddFunc(&prog.Function{Name: "MPI_Init", Unit: "libmpi.so"})
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "app.exe", Statements: 30, Ops: []prog.Op{
		prog.MPICall("MPI_Init", 0),
		prog.Call("hot", 5000),
		prog.Call("medium", 10),
	}})
	// hot: 5000 calls of 200ns — hot and low-duration, the refinement
	// loop's classic drop candidate. medium: 10 calls of 1ms.
	p.MustAddFunc(&prog.Function{Name: "hot", Unit: "app.exe", Statements: 35,
		Ops: []prog.Op{prog.Work(200)}})
	p.MustAddFunc(&prog.Function{Name: "medium", Unit: "app.exe", Statements: 35,
		Ops: []prog.Op{prog.Work(vtime.Millisecond)}})
	b, err := compiler.Compile(p, compiler.Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(&dyncapi.CygBackend{}, Options{Epoch: 100 * vtime.Microsecond, Budget: 0.01, DemoteStride: -1})
	rt, err := dyncapi.New(proc, xr, ic.New("adaptapp", "test", []string{"hot", "medium"}), ctrl, dyncapi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Attach(rt)
	hotID := packedOf(t, b, xr, proc, "hot")
	mediumID := packedOf(t, b, xr, proc, "medium")
	if !xr.Patched(hotID) || !xr.Patched(mediumID) {
		t.Fatal("initial selection not patched")
	}

	// Phase 1: the workload runs; the controller must narrow mid-run.
	world, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := exec.New(exec.Config{Build: b, Proc: proc, XRay: xr, World: world})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	if ctrl.Reconfigs() < 1 {
		t.Fatal("controller never reconfigured although over budget")
	}
	if rt.Reconfigs() != ctrl.Reconfigs() {
		t.Fatalf("runtime saw %d reconfigs, controller %d", rt.Reconfigs(), ctrl.Reconfigs())
	}
	if rt.Active(hotID) || xr.Patched(hotID) {
		t.Fatal("hot must be deselected and unpatched mid-run")
	}
	if !rt.Active(mediumID) || !xr.Patched(mediumID) {
		t.Fatal("medium must survive (long-duration)")
	}

	// (a) Only delta sleds were re-patched, under coalesced windows.
	var reconfigured *Epoch
	for i, ep := range ctrl.Epochs() {
		if ep.Reconfigured {
			reconfigured = &ctrl.Epochs()[i]
			break
		}
	}
	if reconfigured == nil {
		t.Fatal("no reconfigured epoch recorded")
	}
	rep := reconfigured.Report
	if int64(len(reconfigured.DroppedIDs)) != rep.Batch.BatchFuncs {
		t.Fatalf("batch touched %d funcs, dropped %d — not delta-only",
			rep.Batch.BatchFuncs, len(reconfigured.DroppedIDs))
	}
	if rep.Patched != 0 || rep.Unpatched != len(reconfigured.DroppedIDs) {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Batch.PatchedSleds != 0 {
		t.Fatal("narrowing must not patch new sleds")
	}

	// (b) Post-reconfigure, events stop arriving for the deselected
	// function: a second execution phase produces no hot events at all.
	hotEventsAfterPhase1 := funcEvents(ctrl, hotID)
	mediumEventsAfterPhase1 := funcEvents(ctrl, mediumID)
	world2, err := mpi.NewWorld(1, mpi.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := exec.New(exec.Config{Build: b, Proc: proc, XRay: xr, World: world2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := funcEvents(ctrl, hotID); got != hotEventsAfterPhase1 {
		t.Fatalf("hot events grew %d → %d after deselection", hotEventsAfterPhase1, got)
	}
	if got := funcEvents(ctrl, mediumID); got <= mediumEventsAfterPhase1 {
		t.Fatalf("medium events did not grow (%d → %d) — instrumentation died entirely", mediumEventsAfterPhase1, got)
	}

	// (c) The runtime was never torn down: same instance, same resolution
	// table, init cost unchanged, and the second phase reused it.
	if rt.Report().Patched != 2 {
		t.Fatalf("init report mutated: %+v", rt.Report())
	}
	if rt.InitSeconds() <= 0 {
		t.Fatal("init accounting lost")
	}
}

func funcEvents(c *Controller, id int32) int64 {
	for _, fs := range c.Stats() {
		if fs.ID == id {
			return fs.Events
		}
	}
	return 0
}

// TestControllerForwardsSymbolInjection is the regression for the adapt
// wrapper silently disabling Score-P's DSO symbol injection: DynCaPI must
// find the SymbolInjector through the bridge.
func TestControllerForwardsSymbolInjection(t *testing.T) {
	p := prog.New("app", "main")
	p.MustAddUnit("app.exe", prog.Executable)
	p.MustAddUnit("lib.so", prog.SharedObject)
	p.MustAddFunc(&prog.Function{Name: "main", Unit: "app.exe", Statements: 30,
		Ops: []prog.Op{prog.Call("dso_fn", 1)}})
	p.MustAddFunc(&prog.Function{Name: "dso_fn", Unit: "lib.so", Statements: 40})
	b, err := compiler.Compile(p, compiler.Options{XRay: true})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := b.LoadProcess()
	if err != nil {
		t.Fatal(err)
	}
	xr, err := xray.NewRuntime(proc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := scorep.New(scorep.Options{Ranks: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := New(dyncapi.NewScorePBackend(m, scorep.NewResolverFromExecutable(proc)), Options{})
	rt, err := dyncapi.New(proc, xr, ic.New("app", "s", []string{"dso_fn"}), ctrl, dyncapi.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Attach(rt)
	if rt.Report().SymbolsInjected == 0 {
		t.Fatal("DSO symbols not injected through the adapt bridge")
	}
}

// TestRecursiveLongFunctionNotDroppedAsLowDuration is the regression for
// the mean-duration denominator: nested (recursive) entries must not
// dilute a long function's mean into the "low-duration" class.
func TestRecursiveLongFunctionNotDroppedAsLowDuration(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t, Options{Epoch: vtime.Millisecond, Budget: 0.01, DemoteStride: -1}, &dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	// hot: 150 tiny invocations (clearly low-duration).
	for i := 0; i < 150; i++ {
		xr.Dispatch(tc, hot, xray.Entry)
		tc.clk.Advance(100)
		xr.Dispatch(tc, hot, xray.Exit)
	}
	// slow: ONE outer invocation of 1.75ms that recurses into itself 350
	// times. The epoch boundary fires mid-recursion, when slow has more
	// epoch events than hot — but its outer invocation is long (and still
	// open), so it must not be classified low-duration and hot must be
	// dropped first.
	xr.Dispatch(tc, slow, xray.Entry)
	for j := 0; j < 350; j++ {
		xr.Dispatch(tc, slow, xray.Entry)
		tc.clk.Advance(5 * vtime.Microsecond)
		xr.Dispatch(tc, slow, xray.Exit)
	}
	xr.Dispatch(tc, slow, xray.Exit)

	if ctrl.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d, want 1", ctrl.Reconfigs())
	}
	if dropped := ctrl.Dropped(); len(dropped) != 1 || dropped[0] != "hot" {
		t.Fatalf("dropped = %v, want [hot] — recursive slow misclassified as low-duration", dropped)
	}
	if !rt.Active(slow) || rt.Active(hot) {
		t.Fatal("wrong function dropped")
	}
	// The completed outer invocation dominates the reported mean.
	for _, fs := range ctrl.Stats() {
		if fs.ID == slow && fs.MeanNs < vtime.Millisecond {
			t.Fatalf("slow mean = %dns, diluted by nested entries", fs.MeanNs)
		}
	}
}

// TestControllerCountsAgreeWithTraceTotals pins the controller/tracer
// interop contract: the adaptive controller and the extrae backend observe
// the same event stream (the controller forwards every event it counts), so
// the controller's per-function totals must equal the trace buffer's
// recorded + policy-dropped accounting — even across a live narrowing that
// deselects a function mid-trace.
func TestControllerCountsAgreeWithTraceTotals(t *testing.T) {
	buf, err := trace.New(trace.Options{Ranks: 1, BufEvents: 32, MaxEvents: 128})
	if err != nil {
		t.Fatal(err)
	}
	b, proc, xr, rt, ctrl := twoFuncSetup(t,
		Options{Epoch: vtime.Millisecond, Budget: 0.000001, MinMeanNs: vtime.Second, DemoteStride: -1},
		dyncapi.NewExtraeBackend(buf))
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i < 60; i++ {
			xr.Dispatch(tc, hot, xray.Entry)
			tc.clk.Advance(200)
			xr.Dispatch(tc, hot, xray.Exit)
			xr.Dispatch(tc, slow, xray.Entry)
			tc.clk.Advance(200)
			xr.Dispatch(tc, slow, xray.Exit)
		}
		tc.clk.Advance(vtime.Millisecond)
	}
	if ctrl.Reconfigs() == 0 {
		t.Fatal("tight budget never narrowed the selection")
	}

	var ctrlEvents int64
	for _, fs := range ctrl.Stats() {
		ctrlEvents += fs.Events
	}
	rep := buf.Report()
	if got := rep.Recorded + rep.Dropped; got != ctrlEvents {
		t.Fatalf("trace totals %d (recorded %d + dropped %d) != controller events %d",
			got, rep.Recorded, rep.Dropped, ctrlEvents)
	}
	// Runtime-level drops (post-deselection stragglers) are outside both
	// counts by design: controller and tracer sit behind the active check.
	if rt.DroppedInFlight() == 0 {
		t.Fatal("narrowing produced no in-flight drops — test not exercising the window")
	}
}

func TestRetuneAdjustsOptionsLive(t *testing.T) {
	c := New(&dyncapi.CygBackend{}, Options{Budget: 0.05, Epoch: 10 * vtime.Millisecond})
	got := c.Retune(Options{Budget: 0.2})
	if got.Budget != 0.2 {
		t.Fatalf("Budget = %v, want 0.2", got.Budget)
	}
	if got.Epoch != 10*vtime.Millisecond {
		t.Fatalf("Epoch changed unexpectedly: %v", got.Epoch)
	}
	// Zero fields keep their value; a shorter epoch re-bases the armed
	// boundary so the new cadence applies immediately.
	c.lastNs.Store(42)
	got = c.Retune(Options{Epoch: vtime.Millisecond})
	if got.Epoch != vtime.Millisecond || got.Budget != 0.2 {
		t.Fatalf("after epoch retune: %+v", got)
	}
	if next := c.nextEpoch.Load(); next != 42+vtime.Millisecond {
		t.Fatalf("nextEpoch = %d, want %d", next, 42+vtime.Millisecond)
	}
	// MaxReconfigs: positive sets, negative lifts, zero keeps.
	if got = c.Retune(Options{MaxReconfigs: 3}); got.MaxReconfigs != 3 {
		t.Fatalf("MaxReconfigs = %d, want 3", got.MaxReconfigs)
	}
	if got = c.Retune(Options{}); got.MaxReconfigs != 3 {
		t.Fatalf("MaxReconfigs = %d, want kept 3", got.MaxReconfigs)
	}
	if got = c.Retune(Options{MaxReconfigs: -1}); got.MaxReconfigs != 0 {
		t.Fatalf("MaxReconfigs = %d, want lifted to 0", got.MaxReconfigs)
	}
	if c.Options().Budget != 0.2 {
		t.Fatalf("Options() = %+v", c.Options())
	}
}

// TestControllerDemotesBeforeDropping pins the demote ladder: an
// over-budget epoch first *demotes* the hottest low-duration function to
// 1-in-N sampling — the sled stays patched, no re-selection is applied —
// and only a function that is already demoted and still pushes the
// overhead over budget is deselected at a later boundary.
func TestControllerDemotesBeforeDropping(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t,
		Options{Epoch: vtime.Millisecond, Budget: 0.0001, DemoteStride: 4}, &dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	overBudgetEpoch := func() {
		for i := 0; i < 210; i++ {
			xr.Dispatch(tc, hot, xray.Entry)
			tc.clk.Advance(100)
			xr.Dispatch(tc, hot, xray.Exit)
		}
		xr.Dispatch(tc, slow, xray.Entry)
		tc.clk.Advance(vtime.Millisecond)
		xr.Dispatch(tc, slow, xray.Exit)
	}

	// Epoch 1: way over budget — the ladder demotes, it must not drop.
	overBudgetEpoch()
	eps := ctrl.Epochs()
	if len(eps) != 1 {
		t.Fatalf("epochs = %d, want 1", len(eps))
	}
	if len(eps[0].Demoted) == 0 || eps[0].Demoted[0] != "hot" {
		t.Fatalf("demoted = %v, want hot first (hottest low-duration)", eps[0].Demoted)
	}
	if eps[0].Reconfigured || len(eps[0].Dropped) != 0 || ctrl.Reconfigs() != 0 {
		t.Fatalf("first over-budget epoch deselected instead of demoting: %+v", eps[0])
	}
	if !rt.Active(hot) || !xr.Patched(hot) {
		t.Fatal("demoted function must stay selected and patched")
	}
	if got := ctrl.Demoted(); len(got) == 0 || got[0] != "hot" {
		t.Fatalf("ladder bookkeeping = %v", got)
	}
	if snap := rt.SamplingSnapshot(); snap.FuncPolicies == 0 {
		t.Fatalf("no sampling policy installed by the demotion: %+v", snap)
	}

	// Epoch 2: still over budget with hot already demoted — now it drops.
	overBudgetEpoch()
	if ctrl.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d, want 1 (drop after demote)", ctrl.Reconfigs())
	}
	dropped := ctrl.Dropped()
	if len(dropped) == 0 || dropped[0] != "hot" {
		t.Fatalf("dropped = %v, want hot", dropped)
	}
	if rt.Active(hot) || xr.Patched(hot) {
		t.Fatal("hot still active/patched after the ladder dropped it")
	}
	if !rt.Active(slow) {
		t.Fatal("slow deselected")
	}
	for _, name := range ctrl.Demoted() {
		if name == "hot" {
			t.Fatal("dropped function still on the ladder")
		}
	}
	// The demotion really thinned the stream: sampled-out enters recorded.
	rt.FlushSampling()
	if c := rt.SamplingCounters(); c.SampledEvents == 0 ||
		c.Delivered+c.SampledEvents+c.SuppressedPairs+c.CollapsedCalls != c.Enters {
		t.Fatalf("sampling counters = %+v", c)
	}
}

// TestControllerPromotesWithHysteresis: once the overhead falls into the
// PromoteBelow band (well under budget), the most recently demoted
// function is restored to full rate — the hysteresis that re-promotes when
// pressure subsides.
func TestControllerPromotesWithHysteresis(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t,
		Options{Epoch: vtime.Millisecond, Budget: 0.01, DemoteStride: 4, PromoteBelow: 0.5},
		&dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	// Epoch 1: over budget — hot is demoted.
	for i := 0; i < 210; i++ {
		xr.Dispatch(tc, hot, xray.Entry)
		tc.clk.Advance(100)
		xr.Dispatch(tc, hot, xray.Exit)
	}
	xr.Dispatch(tc, slow, xray.Entry)
	tc.clk.Advance(vtime.Millisecond)
	xr.Dispatch(tc, slow, xray.Exit)
	if got := ctrl.Demoted(); len(got) != 1 || got[0] != "hot" {
		t.Fatalf("demoted = %v, want [hot]", got)
	}
	// Epoch 2: almost idle — overhead lands in the promotion band.
	xr.Dispatch(tc, slow, xray.Entry)
	tc.clk.Advance(vtime.Millisecond + vtime.Millisecond/2)
	xr.Dispatch(tc, slow, xray.Exit)
	eps := ctrl.Epochs()
	last := eps[len(eps)-1]
	if len(last.Promoted) != 1 || last.Promoted[0] != "hot" {
		t.Fatalf("promoted = %v (epoch %+v)", last.Promoted, last)
	}
	if got := ctrl.Demoted(); len(got) != 0 {
		t.Fatalf("ladder not emptied by promotion: %v", got)
	}
	if snap := rt.SamplingSnapshot(); snap.FuncPolicies != 0 {
		t.Fatalf("sampler policy survived the promotion: %+v", snap)
	}
	_ = b
	_ = proc
}

// TestResetLadderForgetsDemotions: when the sampling table is replaced
// wholesale (Instance.SetSampling), the controller's demotion bookkeeping
// is reset — the next over-budget epoch must demote again rather than
// treat the (no longer demoted) function as ladder-exhausted and deselect
// it outright.
func TestResetLadderForgetsDemotions(t *testing.T) {
	b, proc, xr, rt, ctrl := twoFuncSetup(t,
		Options{Epoch: vtime.Millisecond, Budget: 0.0001, DemoteStride: 4}, &dyncapi.CygBackend{})
	hot := packedOf(t, b, xr, proc, "hot")
	slow := packedOf(t, b, xr, proc, "slow")
	tc := &fakeCtx{}
	overBudgetEpoch := func() {
		for i := 0; i < 210; i++ {
			xr.Dispatch(tc, hot, xray.Entry)
			tc.clk.Advance(100)
			xr.Dispatch(tc, hot, xray.Exit)
		}
		xr.Dispatch(tc, slow, xray.Entry)
		tc.clk.Advance(vtime.Millisecond)
		xr.Dispatch(tc, slow, xray.Exit)
	}
	overBudgetEpoch()
	if got := ctrl.Demoted(); len(got) == 0 {
		t.Fatalf("precondition: nothing demoted (%v)", got)
	}
	ctrl.ResetLadder()
	if got := ctrl.Demoted(); len(got) != 0 {
		t.Fatalf("ladder not reset: %v", got)
	}
	// The next over-budget boundary demotes afresh instead of deselecting.
	overBudgetEpoch()
	if ctrl.Reconfigs() != 0 {
		t.Fatalf("reset ladder escalated straight to deselection (%d reconfigs)", ctrl.Reconfigs())
	}
	eps := ctrl.Epochs()
	last := eps[len(eps)-1]
	if len(last.Demoted) == 0 || len(last.Dropped) != 0 {
		t.Fatalf("post-reset epoch = demoted %v dropped %v, want fresh demotion", last.Demoted, last.Dropped)
	}
	if !rt.Active(hot) {
		t.Fatal("hot deselected after ladder reset")
	}
}
