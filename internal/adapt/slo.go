// SLO mode: when Options.SLOTargetP99Ns is set the controller stops
// steering by the overhead budget (maybeEpoch disarms) and instead walks
// the demote→deselect ladder *per endpoint*, driven by measured tail
// latency. The objective is inverted relative to budget mode: "p99 ≤ X
// with max instrumentation coverage" — narrowing only while the endpoint
// misses its target, and un-walking the ladder (LIFO) to restore coverage
// once the tail sits comfortably under it. The cost signal is the real
// one users care about — request latency including instrumentation — not
// a modelled events×ns estimate.
//
// The HTTP middleware feeds the controller: it registers each route's
// instrumented call tree (RegisterEndpoint) and reports every completed
// request's latency (ObserveRequest). Evaluation happens on the request
// path but is cheap and rare: one ring-buffer write per request, a p99
// sort every sloEvalEvery requests per endpoint, and at most one ladder
// step per evaluation, serialized with budget epochs through the same
// inEpoch gate.
package adapt

import (
	"sort"
	"sync"
	"sync/atomic"

	"capi/internal/dyncapi"
	"capi/internal/ic"
)

const (
	// DefaultSLOWindow is the per-endpoint latency window (requests) the
	// p99 is computed over when Options.SLOWindow is 0.
	DefaultSLOWindow = 256
	// DefaultSLOMinSamples gates evaluation until an endpoint's window has
	// seen enough requests for a p99 to mean anything.
	DefaultSLOMinSamples = 64
	// sloEvalEvery is how many requests an endpoint absorbs between
	// evaluations: frequent enough to react within ~a window, rare enough
	// that the sort never shows up in request latency.
	sloEvalEvery = 32
	// sloWidenHeadroom is the hysteresis band for restoring coverage: the
	// ladder is un-walked only while p99 ≤ headroom × target, so widening
	// (which triggers well under target) cannot oscillate against
	// narrowing (which triggers only above it).
	sloWidenHeadroom = 0.75
	// sloWidenWaitMax caps the widen backoff (in evaluations). The
	// headroom band alone cannot prevent oscillation when one ladder
	// action swings the endpoint's p99 by more than the band's width (a
	// dropped subtree can be worth many ms), so every widen that is
	// punished by a narrow within the next two evaluations doubles the
	// endpoint's wait before it may widen again.
	sloWidenWaitMax = 256
)

// sloAction is one ladder step taken for an endpoint, recorded so it can
// be undone in LIFO order when the endpoint has headroom again.
type sloAction struct {
	drop bool // false: demoted to 1-in-N; true: deselected
	id   int32
	name string
}

// endpointStat is the controller's per-endpoint accumulator: the route's
// instrumented function set, a ring of recent request latencies, and the
// stack of ladder steps currently in effect for it.
type endpointStat struct {
	name    string
	funcIDs []int32 // sorted, deduplicated; immutable after registration

	requests atomic.Int64
	lastP99  atomic.Int64 // most recently computed window p99 (0 = none yet)

	mu        sync.Mutex
	ring      []int64     //capi:guardedby mu
	written   int         //capi:guardedby mu
	sinceEval int         //capi:guardedby mu
	actions   []sloAction //capi:guardedby mu
	evals     int         //capi:guardedby mu — evaluations run for this endpoint
	lastWiden int         //capi:guardedby mu — evals value at the last widen (0 = never)
	widenWait int         //capi:guardedby mu — evals to wait between widens (backoff)
}

// RegisterEndpoint declares one endpoint's instrumented function set. The
// middleware calls it once per route at construction; re-registering a
// name replaces the function set but keeps the latency window and ladder
// state. Unregistered endpoints' observations are ignored.
func (c *Controller) RegisterEndpoint(name string, funcIDs []int32) {
	ids := append([]int32(nil), funcIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ids = slicesCompactInt32(ids)
	if v, ok := c.endpoints.Load(name); ok {
		es := v.(*endpointStat)
		es.mu.Lock()
		es.funcIDs = ids
		es.mu.Unlock()
		return
	}
	c.endpoints.LoadOrStore(name, &endpointStat{name: name, funcIDs: ids})
}

func slicesCompactInt32(ids []int32) []int32 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// ObserveRequest records one completed request's latency for an endpoint
// and, every sloEvalEvery requests once the window is warm, evaluates the
// endpoint's p99 against the SLO target and walks the ladder one step in
// whichever direction the tail demands. With no SLO target set the window
// still fills (so a later Retune starts from warm state) but no decisions
// are taken.
func (c *Controller) ObserveRequest(endpoint string, latencyNs int64) {
	v, ok := c.endpoints.Load(endpoint)
	if !ok {
		return
	}
	es := v.(*endpointStat)
	es.requests.Add(1)
	opts := c.opts.Load()

	es.mu.Lock()
	if len(es.ring) != opts.SLOWindow {
		// First observation, or the window was retuned: restart the ring.
		es.ring = make([]int64, opts.SLOWindow)
		es.written, es.sinceEval = 0, 0
	}
	es.ring[es.written%len(es.ring)] = latencyNs
	es.written++
	es.sinceEval++
	filled := min(es.written, len(es.ring))
	var window []int64
	var evalNo int
	widenOK := false
	if opts.SLOTargetP99Ns > 0 && es.sinceEval >= sloEvalEvery && filled >= min(opts.SLOMinSamples, len(es.ring)) {
		es.sinceEval = 0
		window = append([]int64(nil), es.ring[:filled]...)
		es.evals++
		evalNo = es.evals
		wait := max(es.widenWait, 1)
		widenOK = es.lastWiden == 0 || evalNo-es.lastWiden >= wait
	}
	es.mu.Unlock()
	if window == nil {
		return
	}

	p99 := percentileNs(window, 0.99)
	es.lastP99.Store(p99)
	rt := c.rt.Load()
	if rt == nil {
		return
	}
	// Same gate as budget epochs: at most one controller decision in
	// flight, across all endpoints. Losing the race just defers this
	// endpoint to its next evaluation.
	if !c.inEpoch.CompareAndSwap(false, true) {
		return
	}
	defer c.inEpoch.Store(false)
	target := opts.SLOTargetP99Ns
	switch {
	case p99 > target:
		c.sloNarrow(rt, es, p99, target, opts)
		// A violation right after a widen means the restored coverage is
		// what broke the SLO: back the endpoint's widen cadence off so the
		// ladder settles instead of ping-ponging one action forever.
		es.mu.Lock()
		if es.lastWiden > 0 && evalNo-es.lastWiden <= 2 {
			es.widenWait = min(max(es.widenWait, 1)*2, sloWidenWaitMax)
		}
		es.mu.Unlock()
	case float64(p99) <= sloWidenHeadroom*float64(target) && widenOK:
		c.sloWiden(rt, es, p99, target, opts)
		es.mu.Lock()
		es.lastWiden = evalNo
		es.mu.Unlock()
	}
}

// percentileNs returns the q-quantile of window by sorting a copy; window
// is owned by the caller and may be clobbered.
func percentileNs(window []int64, q float64) int64 {
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	idx := int(q*float64(len(window))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(window) {
		idx = len(window) - 1
	}
	return window[idx]
}

// sloNarrow takes one ladder step down for an endpoint missing its
// target: demote the endpoint's hottest still-full-rate function, or —
// when every candidate is already demoted (or the ladder is disabled) —
// deselect the hottest one outright. One step per evaluation keeps the
// controller observable: the next window measures the step's effect
// before another is taken.
func (c *Controller) sloNarrow(rt *dyncapi.Runtime, es *endpointStat, p99, target int64, opts *Options) {
	ep := Epoch{Rank: -1, Endpoint: es.name, P99Ns: p99, TargetNs: target}
	type cand struct {
		id     int32
		name   string
		events int64
		meanNs int64
	}
	var cands []cand
	for _, id := range es.funcIDs {
		if !rt.Active(id) {
			continue
		}
		rf := rt.Resolved(id)
		if rf == nil {
			continue
		}
		cd := cand{id: id, name: rf.Name}
		if v, ok := c.stats.Load(id); ok {
			st := v.(*funcStat)
			cd.events = st.events.Load()
			cd.meanNs = st.meanNs()
		}
		cands = append(cands, cd)
	}
	if len(cands) == 0 {
		c.appendEpoch(ep)
		return
	}
	// Same victim order as budget narrowing: low-duration functions first
	// (least measurement value per event), then hottest, then by ID.
	lowDur := func(mean int64) bool { return mean >= 0 && mean < opts.MinMeanNs }
	sort.Slice(cands, func(i, j int) bool {
		li, lj := lowDur(cands[i].meanNs), lowDur(cands[j].meanNs)
		if li != lj {
			return li
		}
		if cands[i].events != cands[j].events {
			return cands[i].events > cands[j].events
		}
		return cands[i].id < cands[j].id
	})

	if opts.DemoteStride > 0 {
		for _, cd := range cands {
			if c.isDemoted(cd.id) {
				continue
			}
			if err := rt.SetFuncSampling(cd.id, &dyncapi.SamplePolicy{Stride: opts.DemoteStride}); err != nil {
				continue
			}
			c.mu.Lock()
			c.demoted = append(c.demoted, demotion{id: cd.id, name: cd.name})
			c.demotedSet[cd.id] = true
			c.mu.Unlock()
			es.mu.Lock()
			es.actions = append(es.actions, sloAction{id: cd.id, name: cd.name})
			es.mu.Unlock()
			ep.Demoted = append(ep.Demoted, displayName(cd.name, cd.id))
			ep.DemotedIDs = append(ep.DemotedIDs, cd.id)
			c.appendEpoch(ep)
			return
		}
	}

	// Every endpoint function still instrumented is already demoted:
	// deselect the hottest one. MaxReconfigs bounds re-selections exactly
	// as in budget mode.
	c.mu.Lock()
	limited := opts.MaxReconfigs > 0 && c.reconfigs >= opts.MaxReconfigs
	c.mu.Unlock()
	if limited {
		c.appendEpoch(ep)
		return
	}
	victim := cands[0]
	var names []string
	var keepIDs []int32
	for _, rf := range rt.ActiveFuncs() {
		if rf.PackedID == victim.id {
			continue
		}
		if rf.Name != "" {
			names = append(names, rf.Name)
		}
		keepIDs = append(keepIDs, rf.PackedID)
	}
	rep, err := rt.Reconfigure(c.sloIC(rt, names).WithIncludeIDs(keepIDs))
	if err != nil {
		c.appendEpoch(ep)
		return
	}
	ep.Dropped = append(ep.Dropped, displayName(victim.name, victim.id))
	ep.DroppedIDs = append(ep.DroppedIDs, victim.id)
	ep.Reconfigured = true
	ep.Report = rep

	c.mu.Lock()
	c.reconfigs++
	c.dropped = append(c.dropped, ep.Dropped...)
	if c.demotedSet[victim.id] {
		delete(c.demotedSet, victim.id)
		kept := c.demoted[:0]
		for _, d := range c.demoted {
			if d.id != victim.id {
				kept = append(kept, d)
			}
		}
		c.demoted = kept
	}
	c.mu.Unlock()
	// A deselected function leaves the sampler ladder so a later widen or
	// manual re-selection measures it at full rate.
	rt.SetFuncSampling(victim.id, nil) //nolint:errcheck // best-effort cleanup
	es.mu.Lock()
	es.actions = append(es.actions, sloAction{drop: true, id: victim.id, name: victim.name})
	es.mu.Unlock()
	c.appendEpoch(ep)
}

// sloWiden undoes the endpoint's most recent ladder step — max coverage
// is the objective, so headroom under the target is spent on restoring
// instrumentation, one step per evaluation.
func (c *Controller) sloWiden(rt *dyncapi.Runtime, es *endpointStat, p99, target int64, opts *Options) {
	es.mu.Lock()
	n := len(es.actions)
	if n == 0 {
		es.mu.Unlock()
		return
	}
	act := es.actions[n-1]
	es.actions = es.actions[:n-1]
	es.mu.Unlock()

	ep := Epoch{Rank: -1, Endpoint: es.name, P99Ns: p99, TargetNs: target}
	if !act.drop {
		if err := rt.SetFuncSampling(act.id, nil); err == nil {
			c.mu.Lock()
			if c.demotedSet[act.id] {
				delete(c.demotedSet, act.id)
				kept := c.demoted[:0]
				for _, d := range c.demoted {
					if d.id != act.id {
						kept = append(kept, d)
					}
				}
				c.demoted = kept
			}
			c.mu.Unlock()
			ep.Promoted = append(ep.Promoted, displayName(act.name, act.id))
			c.appendEpoch(ep)
		}
		return
	}

	c.mu.Lock()
	limited := opts.MaxReconfigs > 0 && c.reconfigs >= opts.MaxReconfigs
	c.mu.Unlock()
	if limited {
		// Cannot re-patch: put the action back so a lifted bound can still
		// undo it later.
		es.mu.Lock()
		es.actions = append(es.actions, act)
		es.mu.Unlock()
		return
	}
	var names []string
	var keepIDs []int32
	for _, rf := range rt.ActiveFuncs() {
		if rf.PackedID == act.id {
			continue // already back somehow; the Reconfigure below is then a no-op re-add
		}
		if rf.Name != "" {
			names = append(names, rf.Name)
		}
		keepIDs = append(keepIDs, rf.PackedID)
	}
	if act.name != "" {
		names = append(names, act.name)
	}
	keepIDs = append(keepIDs, act.id)
	rep, err := rt.Reconfigure(c.sloIC(rt, names).WithIncludeIDs(keepIDs))
	if err != nil {
		es.mu.Lock()
		es.actions = append(es.actions, act)
		es.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.reconfigs++
	c.mu.Unlock()
	ep.Readded = append(ep.Readded, displayName(act.name, act.id))
	ep.Reconfigured = true
	ep.Report = rep
	c.appendEpoch(ep)
}

// sloIC builds the instrumentation configuration document for an SLO
// reconfiguration, stamped like budget-mode narrowing but with the slo
// spec suffix so /v1/status shows which controller produced it.
func (c *Controller) sloIC(rt *dyncapi.Runtime, names []string) *ic.Config {
	app, spec := "", "slo"
	if cfg := rt.Config(); cfg != nil {
		app = cfg.App
		if cfg.Spec != "" {
			spec = cfg.Spec + "+slo"
		}
	}
	return ic.New(app, spec, names)
}

func (c *Controller) appendEpoch(ep Epoch) {
	c.mu.Lock()
	ep.Seq = len(c.epochs) + 1
	c.epochs = append(c.epochs, ep)
	c.mu.Unlock()
}

// SLOEndpoint is one endpoint row of the SLO status document.
type SLOEndpoint struct {
	Endpoint string `json:"endpoint"`
	Requests int64  `json:"requests"`
	// P99Ms is the most recently evaluated window p99; 0 until the first
	// evaluation.
	P99Ms float64 `json:"p99Ms"`
	// Met reports whether that p99 sat at or under the target.
	Met bool `json:"met"`
	// Steps is the number of ladder actions currently in effect for the
	// endpoint; Demoted and Dropped list them.
	Steps   int      `json:"steps"`
	Demoted []string `json:"demoted,omitempty"`
	Dropped []string `json:"dropped,omitempty"`
}

// SLOStatus is the controller's SLO-mode snapshot for /v1/status.
type SLOStatus struct {
	TargetP99Ms float64       `json:"targetP99Ms"`
	Window      int           `json:"window"`
	MinSamples  int           `json:"minSamples"`
	Endpoints   []SLOEndpoint `json:"endpoints,omitempty"`
}

// SLOSnapshot returns the SLO-mode status, or nil when no SLO target is
// set (budget mode).
func (c *Controller) SLOSnapshot() *SLOStatus {
	opts := c.opts.Load()
	if opts.SLOTargetP99Ns <= 0 {
		return nil
	}
	out := &SLOStatus{
		TargetP99Ms: float64(opts.SLOTargetP99Ns) / 1e6,
		Window:      opts.SLOWindow,
		MinSamples:  opts.SLOMinSamples,
	}
	c.endpoints.Range(func(_, v any) bool {
		es := v.(*endpointStat)
		row := SLOEndpoint{Endpoint: es.name, Requests: es.requests.Load()}
		if p99 := es.lastP99.Load(); p99 > 0 {
			row.P99Ms = float64(p99) / 1e6
			row.Met = p99 <= opts.SLOTargetP99Ns
		}
		es.mu.Lock()
		row.Steps = len(es.actions)
		for _, act := range es.actions {
			if act.drop {
				row.Dropped = append(row.Dropped, displayName(act.name, act.id))
			} else {
				row.Demoted = append(row.Demoted, displayName(act.name, act.id))
			}
		}
		es.mu.Unlock()
		out.Endpoints = append(out.Endpoints, row)
		return true
	})
	sort.Slice(out.Endpoints, func(i, j int) bool { return out.Endpoints[i].Endpoint < out.Endpoints[j].Endpoint })
	return out
}
