// Package adapt implements the overhead-budget controller that makes the
// instrumentation genuinely *runtime-adaptable*: instead of the user
// refining the selection between runs (the paper's §VII-A workflow), the
// controller refines it *during* the run.
//
// The controller is a measurement-backend bridge: it wraps the real backend
// (cyg-profile, Score-P or TALP), forwards every event, and keeps
// per-function enter/exit counts and inclusive durations. At every epoch
// boundary of the virtual-time executor — the first event whose rank clock
// crosses the boundary triggers the evaluation — it compares the epoch's
// instrumentation overhead (events × modelled per-event cost) against the
// configured budget. When the budget is exceeded it generates a narrowed
// instrumentation configuration, dropping the hottest low-duration
// functions first (the functions the paper's refinement loop removes by
// hand, à la Fig. 1), and applies it in place through
// dyncapi.Runtime.Reconfigure — only the delta sleds are re-patched, under
// coalesced mprotect windows, and the run is never torn down.
//
// This closes the loop related work points at: Mertz & Nunes
// (arXiv:2305.01039) adapt monitoring online to bound overhead, and Arafa
// et al. (arXiv:1703.02873) suppress redundant instrumentation mid-run.
//
// Like real XRay unpatching, dropping a function that some rank is
// currently executing loses that invocation's exit event (see
// dyncapi.Runtime.Reconfigure); backends implementing dyncapi.Deselector
// (Score-P, TALP) receive synthetic exits for those dangling enters under
// the reconfigure lock, so no region stays open across a controller
// decision. The controller's own duration estimator tolerates the lost
// exits (an invocation without a completion never contributes to the mean).
package adapt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"capi/internal/dyncapi"
	"capi/internal/ic"
	"capi/internal/vtime"
	"capi/internal/xray"
)

// Options tunes the controller.
type Options struct {
	// Epoch is the virtual-time length of one control epoch. The selection
	// is re-evaluated whenever an executing rank's clock crosses an epoch
	// boundary. Default: 10ms.
	Epoch int64
	// Budget is the tolerated instrumentation overhead per rank and epoch
	// as a fraction of the epoch length (0.01 = 1%); the controller scales
	// the allowance by the number of ranks it has observed, since the
	// event counts it watches aggregate all ranks. Default: 0.01.
	Budget float64
	// PerEventNs is the modelled cost of one dispatched event (trampoline +
	// handler). Default: 25, the execution engine's dispatch cost.
	PerEventNs int64
	// MinMeanNs classifies functions as "low-duration": a function whose
	// mean inclusive duration is below this threshold carries little
	// measurement value per event and is dropped first. Default: 10µs.
	MinMeanNs int64
	// MaxReconfigs bounds the number of live re-selections (0 = unlimited).
	MaxReconfigs int
	// DemoteStride enables the demote ladder: before deselecting a hot
	// low-duration function, the controller first *demotes* it to 1-in-N
	// stride sampling (dyncapi.SetFuncSampling) — the hook stays patched,
	// the function keeps being measured at reduced rate, and no re-patch
	// is paid. Only a function that is already demoted and still pushes
	// the overhead over budget is deselected. 0 uses the default (64);
	// negative disables the ladder (deselect directly, the pre-sampling
	// behaviour).
	DemoteStride int
	// PromoteBelow is the re-promotion hysteresis band: when an epoch's
	// overhead lands at or below PromoteBelow × budget, the most recently
	// demoted function is promoted back to full rate (one per epoch, so
	// promotion cannot oscillate against demotion, which only triggers
	// above the full budget). 0 uses the default (0.25); negative disables
	// re-promotion.
	PromoteBelow float64
	// SLOTargetP99Ns switches the controller to SLO mode (see slo.go):
	// instead of evaluating the overhead budget at epoch boundaries, the
	// ladder is walked per endpoint so each endpoint's measured request
	// p99 meets this target with maximum instrumentation coverage.
	// 0 keeps budget mode.
	SLOTargetP99Ns int64
	// SLOWindow is the per-endpoint latency window (requests) the p99 is
	// computed over. Default: 256.
	SLOWindow int
	// SLOMinSamples gates SLO evaluation until the window holds at least
	// this many requests. Default: 64.
	SLOMinSamples int
}

// DefaultDemoteStride is the 1-in-N sampling rate the demote ladder
// applies when Options.DemoteStride is 0.
const DefaultDemoteStride = 64

func (o *Options) fill() {
	if o.Epoch <= 0 {
		o.Epoch = 10 * vtime.Millisecond
	}
	if o.Budget <= 0 {
		o.Budget = 0.01
	}
	if o.PerEventNs <= 0 {
		o.PerEventNs = 25
	}
	if o.MinMeanNs <= 0 {
		o.MinMeanNs = 10 * vtime.Microsecond
	}
	if o.DemoteStride == 0 {
		o.DemoteStride = DefaultDemoteStride
	}
	if o.PromoteBelow == 0 {
		o.PromoteBelow = 0.25
	}
	if o.SLOWindow <= 0 {
		o.SLOWindow = DefaultSLOWindow
	}
	if o.SLOMinSamples <= 0 {
		o.SLOMinSamples = DefaultSLOMinSamples
	}
}

// FuncStat is a snapshot of one function's observed behaviour.
type FuncStat struct {
	ID     int32
	Name   string
	Calls  int64 // entry events
	Events int64 // entry + exit events
	MeanNs int64 // mean inclusive duration of completed outermost invocations (0 = none completed)
}

// Epoch records one control decision.
type Epoch struct {
	// Seq is the 1-based epoch number; AtNs and Rank identify the clock
	// value and rank that triggered the boundary.
	Seq  int
	AtNs int64
	Rank int
	// Events is the number of instrumentation events observed during the
	// epoch; OverheadNs is their modelled cost, BudgetNs the allowance.
	Events     int64
	OverheadNs int64
	BudgetNs   int64
	// Demoted lists the functions demoted to 1-in-N sampling at this
	// boundary, Promoted the ones restored to full rate (hysteresis), and
	// Dropped the ones deselected (empty when the budget held or demotion
	// absorbed the excess). Reconfigured tells whether a live re-selection
	// was applied; Report is its delta summary.
	Demoted      []string
	DemotedIDs   []int32
	Promoted     []string
	Dropped      []string
	DroppedIDs   []int32
	Reconfigured bool
	Report       dyncapi.ReconfigReport
	// SLO-mode decisions (Rank -1) additionally carry the endpoint whose
	// window triggered them, the measured p99 and the target; Readded
	// lists deselected functions restored by a widening step.
	Endpoint string
	P99Ns    int64
	TargetNs int64
	Readded  []string
}

// funcStat is the controller's per-function accumulator.
type funcStat struct {
	name        string
	calls       atomic.Int64 // all entry events, nested included
	completions atomic.Int64 // completed outermost invocations
	events      atomic.Int64
	durNs       atomic.Int64 // inclusive ns of completed outermost invocations
	epochEvents atomic.Int64
}

// meanNs returns the mean inclusive duration of completed outermost
// invocations, or -1 when none completed yet (duration unknown).
func (st *funcStat) meanNs() int64 {
	done := st.completions.Load()
	if done == 0 {
		return -1
	}
	return st.durNs.Load() / done
}

// rankState tracks open invocations per function on one rank. Each rank is
// driven by exactly one goroutine, so the state needs no locking.
type rankState struct {
	open map[int32]*openCall
}

type openCall struct {
	depth   int
	startNs int64
}

// Controller is the adaptive bridge backend. Create it with New, pass it to
// dyncapi.New as the measurement backend, then Attach the resulting runtime
// so the controller can reconfigure it.
type Controller struct {
	inner dyncapi.Backend

	// opts is swapped atomically so Retune can adjust the budget/epoch while
	// handlers are evaluating boundaries on other ranks.
	opts atomic.Pointer[Options]

	rt atomic.Pointer[dyncapi.Runtime]

	stats     sync.Map // int32 -> *funcStat
	ranks     sync.Map // int -> *rankState
	endpoints sync.Map // string -> *endpointStat (SLO mode, see slo.go)
	events    atomic.Int64

	nextEpoch atomic.Int64
	lastNs    atomic.Int64 // clock value of the previous evaluation
	inEpoch   atomic.Bool

	mu        sync.Mutex
	epochs    []Epoch  //capi:guardedby mu
	reconfigs int      //capi:guardedby mu
	dropped   []string //capi:guardedby mu
	// demoted is the LIFO of currently demoted functions (most recent
	// last) and demotedSet its membership index; both guarded by mu.
	demoted    []demotion     //capi:guardedby mu
	demotedSet map[int32]bool //capi:guardedby mu
}

// demotion records one demote-ladder entry.
type demotion struct {
	id   int32
	name string
}

// New wraps a measurement backend with the adaptive controller.
func New(inner dyncapi.Backend, opts Options) *Controller {
	opts.fill()
	c := &Controller{inner: inner, demotedSet: map[int32]bool{}}
	c.opts.Store(&opts)
	return c
}

// Attach hands the controller the runtime it adapts and arms the first
// epoch boundary. Events observed before Attach are counted but never
// trigger a reconfiguration.
func (c *Controller) Attach(rt *dyncapi.Runtime) {
	c.rt.Store(rt)
	c.nextEpoch.Store(c.opts.Load().Epoch)
}

// Options returns the currently effective tuning.
func (c *Controller) Options() Options { return *c.opts.Load() }

// Retune adjusts the controller's tuning while the workload executes — the
// control plane's POST /v1/adapt. Zero (or negative) fields keep their
// current value, except MaxReconfigs where a negative value lifts the bound
// (0 already means unlimited, so 0 must mean "keep"). When the epoch length
// changes, the armed boundary is re-based on the previous evaluation so the
// new cadence takes effect immediately rather than after one stale epoch.
// Safe to call concurrently with handler execution. Returns the effective
// options.
func (c *Controller) Retune(o Options) Options {
	// Serialize concurrent retunes: without the lock, two read-modify-write
	// cycles could each start from the same snapshot and the later Store
	// would erase the earlier caller's change. Handlers still read the
	// options lock-free through the atomic pointer.
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.opts.Load()
	if o.Epoch > 0 {
		cur.Epoch = o.Epoch
	}
	if o.Budget > 0 {
		cur.Budget = o.Budget
	}
	if o.PerEventNs > 0 {
		cur.PerEventNs = o.PerEventNs
	}
	if o.MinMeanNs > 0 {
		cur.MinMeanNs = o.MinMeanNs
	}
	if o.MaxReconfigs > 0 {
		cur.MaxReconfigs = o.MaxReconfigs
	} else if o.MaxReconfigs < 0 {
		cur.MaxReconfigs = 0
	}
	if o.DemoteStride != 0 {
		cur.DemoteStride = o.DemoteStride
	}
	if o.PromoteBelow != 0 {
		cur.PromoteBelow = o.PromoteBelow
	}
	// SLOTargetP99Ns > 0 enters (or retargets) SLO mode; negative returns
	// to budget mode — 0 must mean "keep", mirroring the other fields.
	if o.SLOTargetP99Ns > 0 {
		cur.SLOTargetP99Ns = o.SLOTargetP99Ns
	} else if o.SLOTargetP99Ns < 0 {
		cur.SLOTargetP99Ns = 0
	}
	if o.SLOWindow > 0 {
		cur.SLOWindow = o.SLOWindow
	}
	if o.SLOMinSamples > 0 {
		cur.SLOMinSamples = o.SLOMinSamples
	}
	c.opts.Store(&cur)
	if o.Epoch > 0 {
		c.nextEpoch.Store(c.lastNs.Load() + cur.Epoch)
	}
	return cur
}

// NewPhase re-arms the controller for an execution phase whose rank clocks
// restart at zero (a fresh world): the epoch boundary is reset, the event
// window cleared and open invocations from the previous phase forgotten.
// Call it only between phases, never while handlers are executing.
func (c *Controller) NewPhase() {
	c.nextEpoch.Store(c.opts.Load().Epoch)
	c.lastNs.Store(0)
	c.events.Store(0)
	c.stats.Range(func(_, v any) bool {
		v.(*funcStat).epochEvents.Store(0)
		return true
	})
	c.ranks.Range(func(_, v any) bool {
		v.(*rankState).open = map[int32]*openCall{}
		return true
	})
}

// Inner returns the wrapped measurement backend.
func (c *Controller) Inner() dyncapi.Backend { return c.inner }

// Name implements dyncapi.Backend.
func (c *Controller) Name() string { return "adapt+" + c.inner.Name() }

// InitCost implements dyncapi.Backend.
func (c *Controller) InitCost(symbols int) int64 { return c.inner.InitCost(symbols) }

func (c *Controller) stat(fn *dyncapi.ResolvedFunc) *funcStat {
	if v, ok := c.stats.Load(fn.PackedID); ok {
		return v.(*funcStat)
	}
	v, _ := c.stats.LoadOrStore(fn.PackedID, &funcStat{name: fn.Name})
	return v.(*funcStat)
}

func (c *Controller) rank(id int) *rankState {
	if v, ok := c.ranks.Load(id); ok {
		return v.(*rankState)
	}
	v, _ := c.ranks.LoadOrStore(id, &rankState{open: map[int32]*openCall{}})
	return v.(*rankState)
}

// OnEnter implements dyncapi.Backend: count, forward, check the epoch.
func (c *Controller) OnEnter(tc xray.ThreadCtx, fn *dyncapi.ResolvedFunc) {
	st := c.stat(fn)
	st.calls.Add(1)
	st.events.Add(1)
	st.epochEvents.Add(1)
	c.events.Add(1)
	rs := c.rank(tc.RankID())
	oc := rs.open[fn.PackedID]
	if oc == nil {
		oc = &openCall{}
		rs.open[fn.PackedID] = oc
	}
	if oc.depth == 0 {
		oc.startNs = tc.Clock().Now()
	}
	oc.depth++
	c.inner.OnEnter(tc, fn)
	c.maybeEpoch(tc)
}

// OnExit implements dyncapi.Backend.
func (c *Controller) OnExit(tc xray.ThreadCtx, fn *dyncapi.ResolvedFunc) {
	st := c.stat(fn)
	st.events.Add(1)
	st.epochEvents.Add(1)
	c.events.Add(1)
	rs := c.rank(tc.RankID())
	if oc := rs.open[fn.PackedID]; oc != nil && oc.depth > 0 {
		oc.depth--
		if oc.depth == 0 {
			st.durNs.Add(tc.Clock().Now() - oc.startNs)
			st.completions.Add(1)
		}
	}
	c.inner.OnExit(tc, fn)
	c.maybeEpoch(tc)
}

// maybeEpoch runs the controller when the executing rank's clock has
// crossed the armed epoch boundary. Exactly one rank wins the CAS and
// evaluates; the others keep executing — their handlers are safe against
// the concurrent Reconfigure by construction.
func (c *Controller) maybeEpoch(tc xray.ThreadCtx) {
	rt := c.rt.Load()
	if rt == nil {
		return
	}
	now := tc.Clock().Now()
	if now < c.nextEpoch.Load() {
		return
	}
	if !c.inEpoch.CompareAndSwap(false, true) {
		return
	}
	defer c.inEpoch.Store(false)
	if now < c.nextEpoch.Load() { // another rank just evaluated this boundary
		return
	}
	if c.opts.Load().SLOTargetP99Ns > 0 {
		// SLO mode: tail latency steers the ladder (ObserveRequest), not
		// the overhead budget. Keep re-arming the boundary so budget mode
		// resumes cleanly if the target is retuned away.
		c.lastNs.Store(now)
		c.nextEpoch.Store(now + c.opts.Load().Epoch)
		return
	}
	c.runEpoch(rt, tc, now)
	c.lastNs.Store(now)
	c.nextEpoch.Store(now + c.opts.Load().Epoch)
}

func (c *Controller) runEpoch(rt *dyncapi.Runtime, tc xray.ThreadCtx, now int64) {
	opts := c.opts.Load()
	events := c.events.Swap(0)
	overhead := events * opts.PerEventNs
	// The window since the previous evaluation may span several epochs
	// (collectives can advance a clock far past a boundary); the budget
	// covers the whole elapsed window, not a single epoch, so catch-up
	// bursts are not overestimated.
	elapsed := now - c.lastNs.Load()
	if elapsed < opts.Epoch {
		elapsed = opts.Epoch
	}
	// The event total aggregates every rank's handler calls, but elapsed is
	// one rank's clock window — scale the allowance by the number of ranks
	// observed so Budget stays a per-rank overhead fraction.
	ranks := 0
	c.ranks.Range(func(_, _ any) bool { ranks++; return true })
	if ranks < 1 {
		ranks = 1
	}
	budget := int64(opts.Budget * float64(elapsed) * float64(ranks))
	ep := Epoch{AtNs: now, Rank: tc.RankID(), Events: events, OverheadNs: overhead, BudgetNs: budget}

	c.mu.Lock()
	limited := opts.MaxReconfigs > 0 && c.reconfigs >= opts.MaxReconfigs
	c.mu.Unlock()

	if overhead > budget {
		// MaxReconfigs bounds *re-selections*; the demote ladder changes
		// only sampling rates (no re-patch), so it keeps working when the
		// reconfiguration budget is exhausted.
		c.narrow(rt, tc, &ep, overhead-budget, !limited)
	} else if opts.PromoteBelow > 0 && overhead <= int64(opts.PromoteBelow*float64(budget)) {
		// Hysteresis re-promotion: well under budget, restore the most
		// recently demoted function to full rate — one per epoch, and only
		// inside the PromoteBelow band, so promotion cannot oscillate
		// against demotion (which triggers above the full budget).
		c.promote(rt, &ep)
	}

	// Reset the per-epoch counters for the next window.
	c.stats.Range(func(_, v any) bool {
		v.(*funcStat).epochEvents.Store(0)
		return true
	})

	c.mu.Lock()
	ep.Seq = len(c.epochs) + 1
	c.epochs = append(c.epochs, ep)
	c.mu.Unlock()
}

// isDemoted reports whether the function sits on the demote ladder.
func (c *Controller) isDemoted(id int32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.demotedSet[id]
}

// promote restores the most recently demoted function to full rate.
func (c *Controller) promote(rt *dyncapi.Runtime, ep *Epoch) {
	c.mu.Lock()
	n := len(c.demoted)
	if n == 0 {
		c.mu.Unlock()
		return
	}
	d := c.demoted[n-1]
	c.demoted = c.demoted[:n-1]
	delete(c.demotedSet, d.id)
	c.mu.Unlock()
	if err := rt.SetFuncSampling(d.id, nil); err != nil {
		return
	}
	ep.Promoted = append(ep.Promoted, displayName(d.name, d.id))
}

// ResetLadder forgets the controller's demotion bookkeeping. Called when
// the sampling table is replaced wholesale (Instance.SetSampling): the
// replacement wiped the demotion policies from the runtime, so keeping the
// demoted set would make the next over-budget epoch skip the gentler
// demote rung and deselect outright — and a later promotion would clobber
// whatever policy the new table gave the function.
func (c *Controller) ResetLadder() {
	c.mu.Lock()
	c.demoted = nil
	c.demotedSet = map[int32]bool{}
	c.mu.Unlock()
	// SLO endpoint ladders reference the same wiped sampling policies:
	// forget their demote steps too, but keep deselections — the sampling
	// table replacement did not touch the selection, so those steps are
	// still in effect and must stay undoable.
	c.endpoints.Range(func(_, v any) bool {
		es := v.(*endpointStat)
		es.mu.Lock()
		kept := es.actions[:0]
		for _, act := range es.actions {
			if act.drop {
				kept = append(kept, act)
			}
		}
		es.actions = kept
		es.mu.Unlock()
		return true
	})
}

// Demoted returns the functions currently demoted to 1-in-N sampling, in
// demotion order.
func (c *Controller) Demoted() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.demoted))
	for _, d := range c.demoted {
		out = append(out, displayName(d.name, d.id))
	}
	return out
}

func displayName(name string, id int32) string {
	if name != "" {
		return name
	}
	return fmt.Sprintf("id:%d", id)
}

// narrow reduces the projected overhead until it fits the budget, walking
// the hottest low-duration functions first. Each candidate climbs the
// ladder: first *demoted* to 1-in-DemoteStride sampling (the hook stays
// patched, no re-patch cost, the function keeps being measured at reduced
// rate); a candidate that is already demoted and still over budget is
// *deselected* — the narrowed IC is applied in place, delta sleds only.
// allowDrop false (reconfiguration budget exhausted) restricts the walk to
// demotions.
func (c *Controller) narrow(rt *dyncapi.Runtime, tc xray.ThreadCtx, ep *Epoch, excess int64, allowDrop bool) {
	type cand struct {
		id          int32
		name        string
		epochEvents int64
		meanNs      int64
	}
	active := rt.ActiveFuncs()
	var cands []cand
	for _, rf := range active {
		v, ok := c.stats.Load(rf.PackedID)
		if !ok {
			continue
		}
		st := v.(*funcStat)
		ev := st.epochEvents.Load()
		if ev == 0 {
			continue
		}
		cands = append(cands, cand{id: rf.PackedID, name: rf.Name, epochEvents: ev, meanNs: st.meanNs()})
	}
	// Hottest low-duration first: the low-duration class before everything
	// else, then by event count descending, ID ascending for determinism.
	// A function with no completed invocation yet (mean -1) has an unknown
	// duration and is conservatively treated as not low-duration.
	opts := c.opts.Load()
	lowDur := func(mean int64) bool { return mean >= 0 && mean < opts.MinMeanNs }
	sort.Slice(cands, func(i, j int) bool {
		li, lj := lowDur(cands[i].meanNs), lowDur(cands[j].meanNs)
		if li != lj {
			return li
		}
		if cands[i].epochEvents != cands[j].epochEvents {
			return cands[i].epochEvents > cands[j].epochEvents
		}
		return cands[i].id < cands[j].id
	})
	ladder := opts.DemoteStride > 0
	drop := map[int32]bool{}
	for _, cd := range cands {
		if excess <= 0 {
			break
		}
		if ladder && !c.isDemoted(cd.id) {
			// Demote to 1-in-N: the gentler knob. Projected saving is the
			// sampled-out share of the candidate's epoch events.
			if err := rt.SetFuncSampling(cd.id, &dyncapi.SamplePolicy{Stride: opts.DemoteStride}); err != nil {
				continue
			}
			c.mu.Lock()
			c.demoted = append(c.demoted, demotion{id: cd.id, name: cd.name})
			c.demotedSet[cd.id] = true
			c.mu.Unlock()
			ep.Demoted = append(ep.Demoted, displayName(cd.name, cd.id))
			ep.DemotedIDs = append(ep.DemotedIDs, cd.id)
			excess -= cd.epochEvents * opts.PerEventNs * int64(opts.DemoteStride-1) / int64(opts.DemoteStride)
			continue
		}
		if !allowDrop {
			continue
		}
		drop[cd.id] = true
		excess -= cd.epochEvents * opts.PerEventNs
		ep.Dropped = append(ep.Dropped, displayName(cd.name, cd.id))
		ep.DroppedIDs = append(ep.DroppedIDs, cd.id)
	}
	if len(drop) == 0 {
		return
	}

	var names []string
	var keepIDs []int32
	for _, rf := range active {
		if drop[rf.PackedID] {
			continue
		}
		if rf.Name != "" {
			names = append(names, rf.Name)
		}
		keepIDs = append(keepIDs, rf.PackedID)
	}
	app, spec := "", "adapt"
	if cfg := rt.Config(); cfg != nil {
		app = cfg.App
		if cfg.Spec != "" {
			spec = cfg.Spec + "+adapt"
		}
	}
	rep, err := rt.Reconfigure(ic.New(app, spec, names).WithIncludeIDs(keepIDs))
	if err != nil {
		return
	}
	// The re-patch is real work: charge it to the rank that performed it.
	tc.Clock().Advance(rep.VirtualNs)
	ep.Reconfigured = true
	ep.Report = rep

	c.mu.Lock()
	c.reconfigs++
	c.dropped = append(c.dropped, ep.Dropped...)
	// Dropped functions leave the ladder: keep the demotion bookkeeping in
	// sync and clear their sampler policies, so a later manual
	// re-selection measures them at full rate again.
	var clear []int32
	if len(drop) > 0 && len(c.demoted) > 0 {
		kept := c.demoted[:0]
		for _, d := range c.demoted {
			if drop[d.id] {
				delete(c.demotedSet, d.id)
				clear = append(clear, d.id)
			} else {
				kept = append(kept, d)
			}
		}
		c.demoted = kept
	}
	c.mu.Unlock()
	for _, id := range clear {
		rt.SetFuncSampling(id, nil) //nolint:errcheck // best-effort cleanup
	}
}

// Epochs returns the recorded control decisions.
func (c *Controller) Epochs() []Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Epoch(nil), c.epochs...)
}

// Reconfigs returns how many live re-selections the controller applied.
func (c *Controller) Reconfigs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconfigs
}

// Dropped returns every function the controller has deselected, in drop
// order.
func (c *Controller) Dropped() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.dropped...)
}

// Stats returns per-function snapshots sorted by packed ID.
func (c *Controller) Stats() []FuncStat {
	var out []FuncStat
	c.stats.Range(func(k, v any) bool {
		st := v.(*funcStat)
		fs := FuncStat{ID: k.(int32), Name: st.name, Calls: st.calls.Load(), Events: st.events.Load()}
		if mean := st.meanNs(); mean > 0 {
			fs.MeanNs = mean
		}
		out = append(out, fs)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
