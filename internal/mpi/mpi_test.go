package mpi

import (
	"strings"
	"sync/atomic"
	"testing"

	"capi/internal/vtime"
)

func newTestWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := NewWorld(size, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0, DefaultCostModel()); err == nil {
		t.Fatal("size 0 should fail")
	}
}

func TestInitFinalizeLifecycle(t *testing.T) {
	w := newTestWorld(t, 4)
	err := w.Run(func(r *Rank) error {
		if r.Initialized() {
			t.Error("rank initialized before Init")
		}
		if err := r.Init(); err != nil {
			return err
		}
		if !r.Initialized() {
			t.Error("rank not initialized after Init")
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		if err := r.Finalize(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Ranks() {
		if !r.Finalized() {
			t.Fatal("rank not finalized")
		}
		if r.CallCount(OpBarrier) != 1 || r.CallCount(OpInit) != 1 {
			t.Fatalf("call counts = %d/%d", r.CallCount(OpBarrier), r.CallCount(OpInit))
		}
		if r.MPITimeTotal() <= 0 {
			t.Fatal("MPI time not accounted")
		}
	}
}

func TestCallBeforeInitFails(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(r *Rank) error { return r.Barrier() })
	if err == nil || !strings.Contains(err.Error(), "before MPI_Init") {
		t.Fatalf("err = %v", err)
	}
}

func TestDoubleInitFails(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		return r.Init()
	})
	if err == nil || !strings.Contains(err.Error(), "double MPI_Init") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallAfterFinalizeFails(t *testing.T) {
	w := newTestWorld(t, 1)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if err := r.Finalize(); err != nil {
			return err
		}
		return r.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "after MPI_Finalize") {
		t.Fatalf("err = %v", err)
	}
}

func TestCollectiveSynchronizesClocks(t *testing.T) {
	w := newTestWorld(t, 3)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		// Imbalanced work: rank i computes (i+1)*1ms.
		r.Clock().Advance(int64(r.ID()+1) * vtime.Millisecond)
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the barrier every clock is at least the slowest rank's time.
	var maxBefore int64 = 3 * vtime.Millisecond
	for _, r := range w.Ranks() {
		if r.Clock().Now() < maxBefore {
			t.Fatalf("rank %d clock %d < %d", r.ID(), r.Clock().Now(), maxBefore)
		}
	}
	// All ranks leave the barrier at the same virtual time.
	t0 := w.Rank(0).Clock().Now()
	for _, r := range w.Ranks() {
		if r.Clock().Now() != t0 {
			t.Fatalf("clocks diverge after barrier: %d vs %d", r.Clock().Now(), t0)
		}
	}
}

func TestImbalanceBecomesMPITime(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			r.Clock().Advance(10 * vtime.Millisecond)
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := w.Rank(1), w.Rank(0)
	if fast.MPITimeTotal() <= slow.MPITimeTotal() {
		t.Fatalf("waiting rank should accumulate more MPI time: %d vs %d",
			fast.MPITimeTotal(), slow.MPITimeTotal())
	}
	if fast.MPITimeTotal() < 10*vtime.Millisecond {
		t.Fatalf("fast rank waited %d, want >= 10ms", fast.MPITimeTotal())
	}
}

func TestSendRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	const payload = 1 << 20 // 1 MiB
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			return r.Send(1, 7, payload)
		}
		return r.Recv(0, 7, payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver time includes latency + transfer.
	cm := DefaultCostModel()
	minArrival := cm.Latency + int64(float64(payload)*cm.NsPerByte)
	if w.Rank(1).Clock().Now() < minArrival {
		t.Fatalf("receiver clock %d < %d", w.Rank(1).Clock().Now(), minArrival)
	}
}

func TestSendRecvInvalidRank(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			return r.Send(5, 0, 8)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank") {
		t.Fatalf("err = %v", err)
	}
}

func TestSendrecvRing(t *testing.T) {
	const n = 4
	w := newTestWorld(t, n)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		right := (r.ID() + 1) % n
		left := (r.ID() + n - 1) % n
		for i := 0; i < 3; i++ {
			if err := r.Sendrecv(right, left, i, 4096); err != nil {
				return err
			}
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range w.Ranks() {
		if r.CallCount(OpSend) != 3 || r.CallCount(OpRecv) != 3 {
			t.Fatalf("rank %d counts: send %d recv %d", r.ID(), r.CallCount(OpSend), r.CallCount(OpRecv))
		}
	}
}

func TestCollectivesCostScalesWithBytes(t *testing.T) {
	small := newTestWorld(t, 2)
	big := newTestWorld(t, 2)
	run := func(w *World, bytes int) int64 {
		if err := w.Run(func(r *Rank) error {
			if err := r.Init(); err != nil {
				return err
			}
			return r.Allreduce(bytes)
		}); err != nil {
			t.Fatal(err)
		}
		return w.Rank(0).Clock().Now()
	}
	tSmall := run(small, 8)
	tBig := run(big, 1<<22)
	if tBig <= tSmall {
		t.Fatalf("large allreduce should cost more: %d vs %d", tBig, tSmall)
	}
}

func TestAllCollectiveKinds(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if err := r.Reduce(64); err != nil {
			return err
		}
		if err := r.Bcast(64); err != nil {
			return err
		}
		if err := r.Allgather(64); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPMPIHooks(t *testing.T) {
	w := newTestWorld(t, 2)
	var pre, post atomic.Int64
	err := w.Run(func(r *Rank) error {
		r.AddHook(Hook{
			Pre: func(rk *Rank, op Op, bytes int) { pre.Add(1) },
			Post: func(rk *Rank, op Op, bytes int, elapsed int64) {
				if elapsed < 0 {
					t.Error("negative elapsed")
				}
				post.Add(1)
			},
		})
		if err := r.Init(); err != nil {
			return err
		}
		if err := r.Allreduce(8); err != nil {
			return err
		}
		return r.Finalize()
	})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Load() != 6 || post.Load() != 6 { // 3 calls x 2 ranks
		t.Fatalf("hook counts pre=%d post=%d, want 6/6", pre.Load(), post.Load())
	}
}

func TestHookElapsedIncludesWait(t *testing.T) {
	w := newTestWorld(t, 2)
	var slowRankWait atomic.Int64
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.AddHook(Hook{Post: func(rk *Rank, op Op, bytes int, elapsed int64) {
				if op == OpBarrier {
					slowRankWait.Store(elapsed)
				}
			}})
		}
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			r.Clock().Advance(5 * vtime.Millisecond)
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if slowRankWait.Load() < 5*vtime.Millisecond {
		t.Fatalf("PMPI elapsed %d should include the 5ms wait", slowRankWait.Load())
	}
}

func TestPanicAborts(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			panic("boom")
		}
		// Rank 1 blocks in a barrier that can never complete; the abort
		// must wake it.
		return r.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorAbortsBlockedRecv(t *testing.T) {
	w := newTestWorld(t, 2)
	err := w.Run(func(r *Rank) error {
		if err := r.Init(); err != nil {
			return err
		}
		if r.ID() == 0 {
			return r.Send(3, 0, 1) // invalid: aborts the world
		}
		return r.Recv(0, 99, 1) // never satisfied; must be woken by abort
	})
	if err == nil {
		t.Fatal("expected abort error")
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() []int64 {
		w := newTestWorld(t, 4)
		if err := w.Run(func(r *Rank) error {
			if err := r.Init(); err != nil {
				return err
			}
			for i := 0; i < 10; i++ {
				r.Clock().Advance(int64(r.ID()*13+i) * vtime.Microsecond)
				if err := r.Allreduce(8); err != nil {
					return err
				}
			}
			return r.Finalize()
		}); err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 4)
		for i, r := range w.Ranks() {
			out[i] = r.Clock().Now()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic virtual time: %v vs %v", a, b)
		}
	}
}

func TestIsCollective(t *testing.T) {
	if !OpBarrier.IsCollective() || !OpInit.IsCollective() {
		t.Fatal("collectives misclassified")
	}
	if OpSend.IsCollective() || OpRecv.IsCollective() {
		t.Fatal("p2p misclassified")
	}
}
