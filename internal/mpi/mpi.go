// Package mpi is a simulated MPI: ranks run as goroutines with private
// virtual clocks, collectives synchronize those clocks (turning load
// imbalance into waiting time, which is what the POP metrics measure), and
// a PMPI-style interception layer lets tools such as TALP observe every
// call (§III-B of the paper). The simulation is deterministic: virtual time
// depends only on the executed workload and the cost model, never on
// scheduling.
package mpi

import (
	"fmt"
	"math/bits"
	"sync"

	"capi/internal/vtime"
)

// Op names a simulated MPI operation.
type Op string

// The supported operations.
const (
	OpInit      Op = "MPI_Init"
	OpFinalize  Op = "MPI_Finalize"
	OpBarrier   Op = "MPI_Barrier"
	OpAllreduce Op = "MPI_Allreduce"
	OpReduce    Op = "MPI_Reduce"
	OpBcast     Op = "MPI_Bcast"
	OpAllgather Op = "MPI_Allgather"
	OpSend      Op = "MPI_Send"
	OpRecv      Op = "MPI_Recv"
	OpIrecv     Op = "MPI_Irecv"
	OpSendrecv  Op = "MPI_Sendrecv"
	OpWaitall   Op = "MPI_Waitall"
)

// IsCollective reports whether the operation synchronizes all ranks.
func (o Op) IsCollective() bool {
	switch o {
	case OpBarrier, OpAllreduce, OpReduce, OpBcast, OpAllgather, OpInit, OpFinalize:
		return true
	}
	return false
}

// CostModel holds the virtual-time costs of MPI operations.
type CostModel struct {
	// PerCall is the software overhead of any MPI call.
	PerCall int64
	// Latency is the point-to-point wire latency.
	Latency int64
	// NsPerByte converts payload size to transfer time.
	NsPerByte float64
	// CollectiveBase is the base cost of a collective, to which a
	// log2(ranks) latency term is added.
	CollectiveBase int64
}

// DefaultCostModel returns costs in the ballpark of a commodity cluster
// interconnect (μs-scale latencies).
func DefaultCostModel() CostModel {
	return CostModel{
		PerCall:        200 * vtime.Nanosecond,
		Latency:        1500 * vtime.Nanosecond,
		NsPerByte:      0.1, // ~10 GB/s
		CollectiveBase: 2500 * vtime.Nanosecond,
	}
}

// Hook is a PMPI interceptor: Pre runs when the rank enters the MPI call,
// Post when it returns, with the call's elapsed virtual time (including any
// synchronization wait).
type Hook struct {
	Pre  func(r *Rank, op Op, bytes int)
	Post func(r *Rank, op Op, bytes int, elapsed int64)
}

type chanKey struct {
	src, dst, tag int
}

// request is a pending non-blocking receive, completed by Waitall.
type request struct {
	key   chanKey
	bytes int
}

type message struct {
	sendTime int64
	bytes    int
}

// World is one simulated MPI job.
type World struct {
	size int
	cost CostModel

	ranks []*Rank
	coll  *rendezvous

	mu    sync.Mutex
	chans map[chanKey]chan message

	abortOnce sync.Once
	abortCh   chan struct{}
	abortErr  error
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int, cost CostModel) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &World{
		size:    size,
		cost:    cost,
		chans:   map[chanKey]chan message{},
		abortCh: make(chan struct{}),
	}
	w.coll = newRendezvous(size, w.abortCh)
	for i := 0; i < size; i++ {
		w.ranks = append(w.ranks, &Rank{id: i, w: w})
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns rank i (valid after NewWorld, before/after Run).
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Ranks returns all ranks in order.
func (w *World) Ranks() []*Rank { return w.ranks }

// abort poisons the world so blocked ranks wake up with an error.
func (w *World) abort(err error) {
	w.abortOnce.Do(func() {
		w.abortErr = err
		close(w.abortCh)
		w.coll.abort()
	})
}

// Run executes body once per rank, concurrently, and waits for all ranks.
// The first error (or panic, converted to an error) aborts the world and is
// returned.
func (w *World) Run(body func(*Rank) error) error {
	var wg sync.WaitGroup
	for _, r := range w.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					w.abort(fmt.Errorf("mpi: rank %d panicked: %v", r.id, p))
				}
			}()
			if err := body(r); err != nil {
				w.abort(fmt.Errorf("mpi: rank %d: %w", r.id, err))
			}
		}(r)
	}
	wg.Wait()
	return w.abortErr
}

func (w *World) channel(key chanKey) chan message {
	w.mu.Lock()
	defer w.mu.Unlock()
	ch, ok := w.chans[key]
	if !ok {
		ch = make(chan message, 4096)
		w.chans[key] = ch
	}
	return ch
}

// Rank is one simulated MPI process. All methods must be called from the
// goroutine Run dedicates to the rank.
type Rank struct {
	id int
	w  *World

	clk         vtime.Clock
	initialized bool
	finalized   bool
	pending     []request

	hooks []Hook

	totalMPI  int64
	callCount map[Op]int64
}

// NewReplayRank returns a detached rank that replays recorded state instead
// of executing: its clock is pinned (cost charges are no-ops, only
// SetReplayState moves it) and it never participates in communication. The
// async event pipeline hands replay ranks to measurement backends so that
// events recorded on the real rank goroutines can be delivered off the hot
// path with exactly the recorded timestamps, MPI-time totals and
// initialization state. The replay rank carries a private stub world sized
// worldSize (it answers WorldSize, nothing else); it never shares the clock
// or call state of the real rank with the same id. Exactly one consumer
// goroutine may own a replay rank.
func NewReplayRank(id, worldSize int) *Rank {
	if worldSize < 1 {
		worldSize = 1
	}
	r := &Rank{id: id, w: &World{size: worldSize}}
	r.clk.Pin()
	return r
}

// SetReplayState aligns a replay rank with one recorded event: the pinned
// clock jumps to the recorded timestamp and the MPI-time total and
// initialization flags take the values the real rank had when the event was
// recorded. Only the owning consumer goroutine may call it, and only on
// ranks created by NewReplayRank.
func (r *Rank) SetReplayState(nowNs, mpiTotal int64, initialized, finalized bool) {
	r.clk.Jump(nowNs)
	r.totalMPI = mpiTotal
	r.initialized = initialized
	r.finalized = finalized
}

// ID returns the rank number (0-based). Named to compose with
// xray.ThreadCtx implementations that embed a Rank.
func (r *Rank) ID() int { return r.id }

// WorldSize returns the number of ranks in the world.
func (r *Rank) WorldSize() int { return r.w.size }

// Clock returns the rank's virtual clock.
func (r *Rank) Clock() *vtime.Clock { return &r.clk }

// Initialized reports whether MPI_Init has completed on this rank — the
// gate TALP's region registration checks (§VI-B(b)).
func (r *Rank) Initialized() bool { return r.initialized }

// Finalized reports whether MPI_Finalize has completed on this rank.
func (r *Rank) Finalized() bool { return r.finalized }

// MPITimeTotal returns the cumulative virtual time this rank has spent
// inside MPI calls.
func (r *Rank) MPITimeTotal() int64 { return r.totalMPI }

// CallCount returns how many times the rank issued the given operation.
func (r *Rank) CallCount(op Op) int64 {
	if r.callCount == nil {
		return 0
	}
	return r.callCount[op]
}

// AddHook registers a PMPI interceptor on this rank.
func (r *Rank) AddHook(h Hook) { r.hooks = append(r.hooks, h) }

// call wraps an MPI operation body with PMPI hooks, per-call cost and
// MPI-time accounting.
func (r *Rank) call(op Op, bytes int, body func() error) error {
	if r.finalized {
		return fmt.Errorf("mpi: rank %d: %s after MPI_Finalize", r.id, op)
	}
	if !r.initialized && op != OpInit {
		return fmt.Errorf("mpi: rank %d: %s before MPI_Init", r.id, op)
	}
	for _, h := range r.hooks {
		if h.Pre != nil {
			h.Pre(r, op, bytes)
		}
	}
	start := r.clk.Now()
	r.clk.Advance(r.w.cost.PerCall)
	if err := body(); err != nil {
		r.w.abort(err)
		return err
	}
	elapsed := r.clk.Now() - start
	r.totalMPI += elapsed
	if r.callCount == nil {
		r.callCount = map[Op]int64{}
	}
	r.callCount[op]++
	for _, h := range r.hooks {
		if h.Post != nil {
			h.Post(r, op, bytes, elapsed)
		}
	}
	return nil
}

// collectiveCost returns the modelled cost of a collective over the world.
func (w *World) collectiveCost(bytes int) int64 {
	hops := int64(bits.Len(uint(w.size - 1))) // ceil(log2(size))
	return w.cost.CollectiveBase + hops*w.cost.Latency + int64(float64(bytes)*w.cost.NsPerByte)
}

// Init performs MPI_Init: all ranks synchronize and are marked initialized.
func (r *Rank) Init() error {
	if r.initialized {
		return fmt.Errorf("mpi: rank %d: double MPI_Init", r.id)
	}
	return r.call(OpInit, 0, func() error {
		t, err := r.w.coll.sync(r.clk.Now())
		if err != nil {
			return err
		}
		r.clk.AdvanceTo(t + r.w.collectiveCost(0))
		r.initialized = true
		return nil
	})
}

// Finalize performs MPI_Finalize.
func (r *Rank) Finalize() error {
	return r.call(OpFinalize, 0, func() error {
		t, err := r.w.coll.sync(r.clk.Now())
		if err != nil {
			return err
		}
		r.clk.AdvanceTo(t + r.w.collectiveCost(0))
		r.finalized = true
		return nil
	})
}

// Barrier synchronizes all ranks.
func (r *Rank) Barrier() error {
	return r.call(OpBarrier, 0, r.collectiveBody(OpBarrier, 0))
}

// Allreduce combines bytes across all ranks and distributes the result.
func (r *Rank) Allreduce(bytes int) error {
	return r.call(OpAllreduce, bytes, r.collectiveBody(OpAllreduce, bytes))
}

// Reduce combines bytes towards a root rank.
func (r *Rank) Reduce(bytes int) error {
	return r.call(OpReduce, bytes, r.collectiveBody(OpReduce, bytes))
}

// Bcast broadcasts bytes from a root rank.
func (r *Rank) Bcast(bytes int) error {
	return r.call(OpBcast, bytes, r.collectiveBody(OpBcast, bytes))
}

// Allgather gathers bytes from every rank on every rank.
func (r *Rank) Allgather(bytes int) error {
	return r.call(OpAllgather, bytes, r.collectiveBody(OpAllgather, bytes*r.w.size))
}

func (r *Rank) collectiveBody(op Op, bytes int) func() error {
	return func() error {
		t, err := r.w.coll.sync(r.clk.Now())
		if err != nil {
			return err
		}
		r.clk.AdvanceTo(t + r.w.collectiveCost(bytes))
		return nil
	}
}

// Send posts a message to dst (eager/buffered semantics: the sender does
// not wait for the receiver).
func (r *Rank) Send(dst, tag, bytes int) error {
	if dst < 0 || dst >= r.w.size {
		return fmt.Errorf("mpi: rank %d: send to invalid rank %d", r.id, dst)
	}
	return r.call(OpSend, bytes, func() error {
		ch := r.w.channel(chanKey{src: r.id, dst: dst, tag: tag})
		select {
		case ch <- message{sendTime: r.clk.Now(), bytes: bytes}:
		case <-r.w.abortCh:
			return fmt.Errorf("mpi: aborted")
		}
		r.clk.Advance(int64(float64(bytes) * r.w.cost.NsPerByte / 2))
		return nil
	})
}

// Recv receives a message from src; the rank's clock advances to the
// message arrival time (transfer complete) if it arrives "late".
func (r *Rank) Recv(src, tag, bytes int) error {
	if src < 0 || src >= r.w.size {
		return fmt.Errorf("mpi: rank %d: recv from invalid rank %d", r.id, src)
	}
	return r.call(OpRecv, bytes, func() error {
		ch := r.w.channel(chanKey{src: src, dst: r.id, tag: tag})
		select {
		case m := <-ch:
			arrival := m.sendTime + r.w.cost.Latency + int64(float64(m.bytes)*r.w.cost.NsPerByte)
			r.clk.AdvanceTo(arrival)
		case <-r.w.abortCh:
			return fmt.Errorf("mpi: aborted")
		}
		return nil
	})
}

// Irecv posts a non-blocking receive from src: the call records the request
// and returns immediately; the message is awaited by Waitall. This is the
// pattern LULESH-style halo exchanges use (post receives, send, wait).
func (r *Rank) Irecv(src, tag, bytes int) error {
	if src < 0 || src >= r.w.size {
		return fmt.Errorf("mpi: rank %d: irecv from invalid rank %d", r.id, src)
	}
	return r.call(OpIrecv, bytes, func() error {
		r.pending = append(r.pending, request{
			key:   chanKey{src: src, dst: r.id, tag: tag},
			bytes: bytes,
		})
		return nil
	})
}

// PendingRequests returns the number of posted, not-yet-completed
// non-blocking receives.
func (r *Rank) PendingRequests() int { return len(r.pending) }

// Waitall completes every pending non-blocking receive, advancing the clock
// to the latest message arrival. It is a no-op when nothing is pending.
func (r *Rank) Waitall() error {
	return r.call(OpWaitall, 0, func() error {
		for _, req := range r.pending {
			ch := r.w.channel(req.key)
			select {
			case m := <-ch:
				arrival := m.sendTime + r.w.cost.Latency + int64(float64(m.bytes)*r.w.cost.NsPerByte)
				r.clk.AdvanceTo(arrival)
			case <-r.w.abortCh:
				return fmt.Errorf("mpi: aborted")
			}
		}
		r.pending = r.pending[:0]
		return nil
	})
}

// Sendrecv exchanges messages with two peers (possibly the same) without
// deadlock: the send is buffered, then the receive blocks.
func (r *Rank) Sendrecv(dst, src, tag, bytes int) error {
	if err := r.Send(dst, tag, bytes); err != nil {
		return err
	}
	return r.Recv(src, tag, bytes)
}

// rendezvous is a reusable all-ranks barrier computing the maximum of the
// ranks' clock values per generation.
type rendezvous struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	gen     uint64
	maxTime int64
	result  int64
	aborted bool
	abortCh chan struct{}
}

func newRendezvous(size int, abortCh chan struct{}) *rendezvous {
	rv := &rendezvous{size: size, abortCh: abortCh}
	rv.cond = sync.NewCond(&rv.mu)
	return rv
}

func (rv *rendezvous) abort() {
	rv.mu.Lock()
	rv.aborted = true
	rv.cond.Broadcast()
	rv.mu.Unlock()
}

// sync blocks until all ranks of the current generation arrived and returns
// the maximum submitted time.
func (rv *rendezvous) sync(t int64) (int64, error) {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.aborted {
		return 0, fmt.Errorf("mpi: aborted")
	}
	gen := rv.gen
	if t > rv.maxTime {
		rv.maxTime = t
	}
	rv.count++
	if rv.count == rv.size {
		rv.result = rv.maxTime
		rv.count = 0
		rv.maxTime = 0
		rv.gen++
		rv.cond.Broadcast()
		return rv.result, nil
	}
	for gen == rv.gen && !rv.aborted {
		rv.cond.Wait()
	}
	if rv.aborted {
		return 0, fmt.Errorf("mpi: aborted")
	}
	return rv.result, nil
}
