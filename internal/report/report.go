// Package report renders fixed-width text tables and CSV for the
// reproduction harness (Tables I and II of the paper).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Align controls column alignment.
type Align int

// Column alignments.
const (
	Left Align = iota
	Right
)

// Table is a simple rows-and-columns report.
type Table struct {
	Title   string
	Headers []string
	Aligns  []Align // optional; missing entries default to Left
	Rows    [][]string
}

// New creates a table with the given title and headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AlignRight marks the given column indexes as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	if len(t.Aligns) < len(t.Headers) {
		a := make([]Align, len(t.Headers))
		copy(a, t.Aligns)
		t.Aligns = a
	}
	for _, c := range cols {
		if c >= 0 && c < len(t.Aligns) {
			t.Aligns[c] = Right
		}
	}
	return t
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return t
}

// AddRowf appends a row of formatted cells.
func (t *Table) AddRowf(cells ...interface{}) *Table {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	return t.AddRow(row...)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(w) && len(cell) > w[i] {
				w[i] = len(cell)
			}
		}
	}
	return w
}

func (t *Table) align(i int) Align {
	if i < len(t.Aligns) {
		return t.Aligns[i]
	}
	return Left
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	widths := t.widths()
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if t.align(i) == Right {
				parts[i] = fmt.Sprintf("%*s", widths[i], cell)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	total := len(t.Headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string (for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}
