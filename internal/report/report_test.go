package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := New("Table I", "variant", "time", "#selected").AlignRight(1, 2)
	tab.AddRow("mpi", "1.4s", "19")
	tab.AddRow("kernels coarse", "1.4s", "10")
	out := tab.String()
	if !strings.Contains(out, "Table I") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Right alignment: the numbers end at the same column.
	if !strings.HasSuffix(lines[3], "19") || !strings.HasSuffix(lines[4], "10") {
		t.Fatalf("alignment wrong:\n%s", out)
	}
	if strings.Index(lines[3], "19") != strings.Index(lines[4], "10") {
		t.Fatalf("right-aligned columns differ:\n%s", out)
	}
}

func TestAddRowfFormats(t *testing.T) {
	tab := New("", "a", "b", "c", "d")
	tab.AddRowf("s", 3.14159, 42, int64(7))
	if got := tab.Rows[0]; got[0] != "s" || got[1] != "3.14" || got[2] != "42" || got[3] != "7" {
		t.Fatalf("row = %v", got)
	}
}

func TestShortRowsPadded(t *testing.T) {
	tab := New("", "a", "b", "c")
	tab.AddRow("only")
	if len(tab.Rows[0]) != 3 {
		t.Fatalf("row = %v", tab.Rows[0])
	}
	// Must not panic when rendering.
	_ = tab.String()
}

func TestCSV(t *testing.T) {
	tab := New("t", "x", "y")
	tab.AddRow("1", "2")
	tab.AddRow("a,b", "c")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,2\n\"a,b\",c\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}
