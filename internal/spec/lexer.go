// Package spec implements the CaPI selection-specification DSL (§III-A of
// the paper, Listing 1). A specification is a sequence of statements:
//
//	!import("mpi.capi")
//	excluded = join(inSystemHeader(%%), inlineSpecified(%%))
//	kernels  = flops(">=", 10, loopDepth(">=", 1, %%))
//	join(subtract(%kernels, %excluded), %mpi_comm)
//
// Selector instances may be named (assignments) or anonymous; `%name`
// references a previous instance, `%%` is the set of all functions, and the
// last expression in the file is the pipeline entry point. Lines starting
// with '#' are comments.
package spec

import (
	"fmt"
	"strings"
	"unicode"
)

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPercent // %
	tokAll     // %%
	tokAssign  // =
	tokLParen  // (
	tokRParen  // )
	tokComma   // ,
	tokBang    // !
	tokNewline // statement separator
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokPercent:
		return "'%'"
	case tokAll:
		return "'%%'"
	case tokAssign:
		return "'='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokBang:
		return "'!'"
	case tokNewline:
		return "newline"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

// lexer produces tokens from a specification source. Newlines are
// significant (they terminate statements) but only emitted between tokens,
// never repeatedly, and never inside parentheses — argument lists may span
// lines, as in the paper's Listing 1.
type lexer struct {
	src   string
	off   int
	line  int
	col   int
	depth int // parenthesis nesting
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("spec:%s: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.off >= len(l.src) {
		return 0, false
	}
	return l.src[l.off], true
}

func (l *lexer) advance() byte {
	b := l.src[l.off]
	l.off++
	if b == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return b
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	sawNewline := false
	for {
		b, ok := l.peekByte()
		if !ok {
			if sawNewline {
				return token{kind: tokNewline, pos: l.pos()}, nil
			}
			return token{kind: tokEOF, pos: l.pos()}, nil
		}
		switch {
		case b == '\n':
			l.advance()
			if l.depth == 0 {
				sawNewline = true
			}
		case b == ' ' || b == '\t' || b == '\r':
			l.advance()
		case b == '#':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		default:
			if sawNewline {
				return token{kind: tokNewline, pos: l.pos()}, nil
			}
			return l.lexToken()
		}
	}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) lexToken() (token, error) {
	pos := l.pos()
	b := l.advance()
	switch b {
	case '(':
		l.depth++
		return token{tokLParen, "(", pos}, nil
	case ')':
		if l.depth > 0 {
			l.depth--
		}
		return token{tokRParen, ")", pos}, nil
	case ',':
		return token{tokComma, ",", pos}, nil
	case '=':
		return token{tokAssign, "=", pos}, nil
	case '!':
		return token{tokBang, "!", pos}, nil
	case '%':
		if c, ok := l.peekByte(); ok && c == '%' {
			l.advance()
			return token{tokAll, "%%", pos}, nil
		}
		return token{tokPercent, "%", pos}, nil
	case '"':
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok || c == '\n' {
				return token{}, l.errorf(pos, "unterminated string literal")
			}
			l.advance()
			if c == '"' {
				return token{tokString, sb.String(), pos}, nil
			}
			if c == '\\' {
				e, ok := l.peekByte()
				if !ok {
					return token{}, l.errorf(pos, "unterminated escape in string literal")
				}
				l.advance()
				switch e {
				case '"', '\\':
					sb.WriteByte(e)
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				default:
					return token{}, l.errorf(pos, "unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(c)
		}
	}
	if b == '-' || b == '.' || (b >= '0' && b <= '9') {
		var sb strings.Builder
		sb.WriteByte(b)
		for {
			c, ok := l.peekByte()
			if !ok || !(c == '.' || (c >= '0' && c <= '9')) {
				break
			}
			sb.WriteByte(l.advance())
		}
		return token{tokNumber, sb.String(), pos}, nil
	}
	if isIdentStart(rune(b)) {
		var sb strings.Builder
		sb.WriteByte(b)
		for {
			c, ok := l.peekByte()
			if !ok || !isIdentPart(rune(c)) {
				break
			}
			sb.WriteByte(l.advance())
		}
		return token{tokIdent, sb.String(), pos}, nil
	}
	return token{}, l.errorf(pos, "unexpected character %q", string(b))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
