package spec

import (
	"strings"
	"testing"
)

// listing1 is the paper's example specification verbatim (including the
// missing comma after ">=" in loopDepth, which the parser tolerates).
const listing1 = `!import("mpi.capi")
excluded = join(inSystemHeader(%%),
inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
`

func TestParseListing1(t *testing.T) {
	f, err := Parse(listing1)
	if err != nil {
		t.Fatal(err)
	}
	// import + excluded + kernels + final anonymous join.
	if len(f.Stmts) != 4 {
		t.Fatalf("got %d statements, want 4", len(f.Stmts))
	}
	if imp, ok := f.Stmts[0].(*ImportStmt); !ok || imp.Path != "mpi.capi" {
		t.Fatalf("stmt 0 = %#v", f.Stmts[0])
	}
	// The multi-line join(...) must parse as a single assignment.
	if a, ok := f.Stmts[1].(*AssignStmt); !ok || a.Name != "excluded" {
		t.Fatalf("stmt 1 = %#v", f.Stmts[1])
	}
	if _, ok := f.Stmts[3].(*ExprStmt); !ok {
		t.Fatalf("stmt 3 = %#v", f.Stmts[3])
	}
}

func TestParseSimple(t *testing.T) {
	f, err := Parse(`
# a comment
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stmts) != 3 {
		t.Fatalf("got %d statements, want 3", len(f.Stmts))
	}
	a, ok := f.Stmts[0].(*AssignStmt)
	if !ok || a.Name != "excluded" {
		t.Fatalf("stmt 0 = %#v", f.Stmts[0])
	}
	call, ok := a.X.(*CallExpr)
	if !ok || call.Fn != "join" || len(call.Args) != 2 {
		t.Fatalf("excluded expr = %#v", a.X)
	}
	inner, ok := call.Args[0].(*CallExpr)
	if !ok || inner.Fn != "inSystemHeader" {
		t.Fatalf("inner = %#v", call.Args[0])
	}
	if _, ok := inner.Args[0].(*AllExpr); !ok {
		t.Fatalf("inner arg = %#v", inner.Args[0])
	}

	k := f.Stmts[1].(*AssignStmt)
	flopsCall := k.X.(*CallExpr)
	if flopsCall.Fn != "flops" || len(flopsCall.Args) != 3 {
		t.Fatalf("flops call = %#v", flopsCall)
	}
	if s, ok := flopsCall.Args[0].(*StringLit); !ok || s.Val != ">=" {
		t.Fatalf("cmp arg = %#v", flopsCall.Args[0])
	}
	if n, ok := flopsCall.Args[1].(*NumberLit); !ok || n.Val != 10 {
		t.Fatalf("num arg = %#v", flopsCall.Args[1])
	}

	es, ok := f.Stmts[2].(*ExprStmt)
	if !ok {
		t.Fatalf("stmt 2 = %#v", f.Stmts[2])
	}
	top := es.X.(*CallExpr)
	if top.Fn != "join" {
		t.Fatalf("entry = %#v", top)
	}
	if ref, ok := top.Args[1].(*RefExpr); !ok || ref.Name != "mpi_comm" {
		t.Fatalf("ref arg = %#v", top.Args[1])
	}
}

func TestEntry(t *testing.T) {
	f, err := Parse("a = inSystemHeader(%%)\nsubtract(%%, %a)\n")
	if err != nil {
		t.Fatal(err)
	}
	e := f.Entry()
	call, ok := e.(*CallExpr)
	if !ok || call.Fn != "subtract" {
		t.Fatalf("Entry = %#v", e)
	}
	// When the last statement is an assignment, the entry is a ref to it.
	f2, err := Parse("a = inSystemHeader(%%)\n")
	if err != nil {
		t.Fatal(err)
	}
	if ref, ok := f2.Entry().(*RefExpr); !ok || ref.Name != "a" {
		t.Fatalf("Entry = %#v", f2.Entry())
	}
	if (&File{}).Entry() != nil {
		t.Fatal("empty file Entry should be nil")
	}
}

func TestParseMissingCommaCompat(t *testing.T) {
	// The paper's Listing 1 contains `loopDepth(">=" 1, %%)`.
	f, err := Parse(`kernels = flops(">=", 10, loopDepth(">=" 1, %%))` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	inner := f.Stmts[0].(*AssignStmt).X.(*CallExpr).Args[2].(*CallExpr)
	if inner.Fn != "loopDepth" || len(inner.Args) != 3 {
		t.Fatalf("loopDepth args = %#v", inner.Args)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`join(`,           // unterminated call
		`= foo(%%)`,       // statement starting with '='
		`%`,               // bare percent
		`foo`,             // identifier without call or assign
		`"unterminated`,   // bad string
		`!unknown("x")`,   // unknown directive
		`foo(%%) bar(%%)`, // two expressions on one line
		`a = "str\q"`,     // bad escape
		`join(%%,)`,       // trailing comma
	}
	for _, src := range cases {
		if _, err := Parse(src + "\n"); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseEmptyArgList(t *testing.T) {
	f, err := Parse("coarse()\n")
	if err != nil {
		t.Fatal(err)
	}
	if call := f.Stmts[0].(*ExprStmt).X.(*CallExpr); len(call.Args) != 0 {
		t.Fatalf("args = %#v", call.Args)
	}
}

func TestExpandBuiltinMPIModule(t *testing.T) {
	f, err := Parse("!import(\"mpi.capi\")\nsubtract(%mpi_comm, inSystemHeader(%%))\n")
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Expand(f, BuiltinModules{})
	if err != nil {
		t.Fatal(err)
	}
	// mpi.capi contributes two assignments; plus our expression.
	if len(ex.Stmts) != 3 {
		t.Fatalf("expanded statements = %d, want 3", len(ex.Stmts))
	}
	if a, ok := ex.Stmts[0].(*AssignStmt); !ok || a.Name != "mpi_ops" {
		t.Fatalf("stmt 0 = %#v", ex.Stmts[0])
	}
	if a, ok := ex.Stmts[1].(*AssignStmt); !ok || a.Name != "mpi_comm" {
		t.Fatalf("stmt 1 = %#v", ex.Stmts[1])
	}
}

func TestExpandUnknownModule(t *testing.T) {
	f, _ := Parse("!import(\"nope.capi\")\n%%\n")
	if _, err := Expand(f, BuiltinModules{}); err == nil || !strings.Contains(err.Error(), "nope.capi") {
		t.Fatalf("err = %v", err)
	}
}

func TestExpandNoLoader(t *testing.T) {
	f, _ := Parse("!import(\"m\")\n%%\n")
	if _, err := Expand(f, nil); err == nil {
		t.Fatal("expected error without loader")
	}
}

func TestExpandCycleAndIdempotence(t *testing.T) {
	loader := MapLoader{
		"a.capi": "!import(\"b.capi\")\nx = inSystemHeader(%%)\n",
		"b.capi": "!import(\"a.capi\")\ny = inlineSpecified(%%)\n",
	}
	f, _ := Parse("!import(\"a.capi\")\n%%\n")
	if _, err := Expand(f, loader); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v", err)
	}
	// Importing the same module twice is fine (second import is a no-op).
	loader2 := MapLoader{"m.capi": "x = inSystemHeader(%%)\n"}
	f2, _ := Parse("!import(\"m.capi\")\n!import(\"m.capi\")\n%x\n")
	ex, err := Expand(f2, loader2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Stmts) != 2 {
		t.Fatalf("stmts = %d, want 2", len(ex.Stmts))
	}
}

func TestChainLoader(t *testing.T) {
	chain := ChainLoader{MapLoader{}, BuiltinModules{}}
	if _, err := chain.LoadModule("mpi.capi"); err != nil {
		t.Fatalf("chain should fall through to builtins: %v", err)
	}
	if _, err := chain.LoadModule("ghost.capi"); err == nil {
		t.Fatal("expected error for unknown module")
	}
	if _, err := (ChainLoader{}).LoadModule("x"); err == nil {
		t.Fatal("empty chain should error")
	}
}

func TestStringEscapes(t *testing.T) {
	f, err := Parse("byName(\"a\\\"b\\\\c\\n\\t\", %%)\n")
	if err != nil {
		t.Fatal(err)
	}
	s := f.Stmts[0].(*ExprStmt).X.(*CallExpr).Args[0].(*StringLit)
	if s.Val != "a\"b\\c\n\t" {
		t.Fatalf("escaped string = %q", s.Val)
	}
}

func TestNegativeNumber(t *testing.T) {
	f, err := Parse("flops(\">\", -1.5, %%)\n")
	if err != nil {
		t.Fatal(err)
	}
	n := f.Stmts[0].(*ExprStmt).X.(*CallExpr).Args[1].(*NumberLit)
	if n.Val != -1.5 {
		t.Fatalf("number = %v", n.Val)
	}
}
