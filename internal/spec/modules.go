package spec

import "fmt"

// ModuleLoader resolves `!import("path")` directives to module sources.
type ModuleLoader interface {
	LoadModule(path string) (string, error)
}

// BuiltinModules is a ModuleLoader serving the specification modules that
// ship with CaPI. The "mpi.capi" module is the one used by the paper's
// Listing 1: it defines %mpi_ops (the MPI API functions by name) and
// %mpi_comm (every function on a call path from main to an MPI operation).
type BuiltinModules struct{}

// builtinSources holds the embedded module texts.
var builtinSources = map[string]string{
	"mpi.capi": `# Built-in module: selectors for MPI applications.
mpi_ops = byName("^MPI_", %%)
mpi_comm = callPathTo(%mpi_ops)
`,
	"exclusions.capi": `# Built-in module: the standard exclusion set.
excluded_std = join(inSystemHeader(%%), inlineSpecified(%%))
`,
}

// LoadModule implements ModuleLoader.
func (BuiltinModules) LoadModule(path string) (string, error) {
	src, ok := builtinSources[path]
	if !ok {
		return "", fmt.Errorf("spec: unknown built-in module %q", path)
	}
	return src, nil
}

// ChainLoader tries each loader in turn, returning the first success.
type ChainLoader []ModuleLoader

// LoadModule implements ModuleLoader.
func (c ChainLoader) LoadModule(path string) (string, error) {
	var firstErr error
	for _, l := range c {
		src, err := l.LoadModule(path)
		if err == nil {
			return src, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("spec: no module loader configured")
	}
	return "", firstErr
}

// MapLoader serves modules from an in-memory map (used by tests and by
// applications that generate specs programmatically).
type MapLoader map[string]string

// LoadModule implements ModuleLoader.
func (m MapLoader) LoadModule(path string) (string, error) {
	src, ok := m[path]
	if !ok {
		return "", fmt.Errorf("spec: module %q not found", path)
	}
	return src, nil
}

// Expand resolves all import statements in f recursively, returning a new
// File whose statement list contains the imported statements (in import
// order) followed by f's own non-import statements. Import cycles are
// detected and reported.
func Expand(f *File, loader ModuleLoader) (*File, error) {
	out := &File{}
	seen := map[string]bool{}
	if err := expandInto(f, loader, seen, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

func expandInto(f *File, loader ModuleLoader, seen map[string]bool, out *File, stack []string) error {
	for _, stmt := range f.Stmts {
		imp, ok := stmt.(*ImportStmt)
		if !ok {
			out.Stmts = append(out.Stmts, stmt)
			continue
		}
		for _, s := range stack {
			if s == imp.Path {
				return fmt.Errorf("spec: import cycle through %q", imp.Path)
			}
		}
		if seen[imp.Path] {
			continue // idempotent re-import
		}
		seen[imp.Path] = true
		if loader == nil {
			return fmt.Errorf("spec:%s: import %q but no module loader configured", imp.Pos(), imp.Path)
		}
		src, err := loader.LoadModule(imp.Path)
		if err != nil {
			return fmt.Errorf("spec:%s: %w", imp.Pos(), err)
		}
		mod, err := Parse(src)
		if err != nil {
			return fmt.Errorf("spec: in module %q: %w", imp.Path, err)
		}
		if err := expandInto(mod, loader, seen, out, append(stack, imp.Path)); err != nil {
			return err
		}
	}
	return nil
}
