package spec

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseSpec fuzzes the specification parser with untrusted input — the
// exact bytes POST /v1/select hands to Session.Select. The parser must
// never panic: it either produces an AST or a positioned error. The corpus
// seeds with the published Listing 1, the built-in modules and the shapes
// the unit tests exercise (including the known-invalid ones, so mutations
// start from both sides of the fence).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"# comment only\n",
		"%%\n",
		"%name\n",
		"a = inSystemHeader(%%)\nsubtract(%%, %a)\n",
		"!import(\"mpi.capi\")\nsubtract(%mpi_comm, inSystemHeader(%%))\n",
		"excluded = join(inSystemHeader(%%), inlineSpecified(%%))\ncoarse(subtract(%mpi_comm, %excluded))\n",
		// The paper's Listing 1 missing-comma compatibility form.
		`kernels = flops(">=", 10, loopDepth(">=" 1, %%))` + "\n",
		// Multi-line argument lists (newlines inside parentheses).
		"join(\n  inSystemHeader(%%),\n  inlineSpecified(%%)\n)\n",
		// Strings with escapes, numbers, nested calls.
		`byName("^_GLOBAL__sub_I_", %%)` + "\n",
		`flops("<", -10.5, %%)` + "\n",
		`f("a\"b\\c\n\t")` + "\n",
		// Invalid shapes the parser must reject without panicking.
		"bogus(%%",
		"a = = b\n",
		"!imprt(\"x\")\n",
		"!import(unquoted)\n",
		`"dangling string`,
		"f(,)\n",
		"%\n",
		"f()g()\n",
		"= %%\n",
		"f(\xff\xfe)\n",
		"\x00\n",
	}
	// The built-in modules are real-world inputs too.
	for _, src := range builtinSources {
		seeds = append(seeds, src)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			if file != nil {
				t.Fatalf("Parse returned both a file and error %v", err)
			}
			// Errors must be positioned spec errors, never raw panizes
			// recovered upstream.
			if !strings.Contains(err.Error(), "spec:") {
				t.Fatalf("unpositioned parse error: %v", err)
			}
			return
		}
		if file == nil {
			t.Fatal("Parse returned nil file and nil error")
		}
		// The AST must be printable and internally consistent: every
		// statement stringifies without panicking and reports a position.
		for _, stmt := range file.Stmts {
			_ = stmt.Pos()
		}
		if !utf8.ValidString(src) {
			return // byte-level round-trip not meaningful
		}
	})
}
