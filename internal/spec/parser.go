package spec

import (
	"fmt"
	"strconv"
)

// Parse parses a specification source into a File.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokNewline {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.Stmts = append(f.Stmts, stmt)
		// A statement must be followed by a newline or EOF.
		if p.tok.kind != tokNewline && p.tok.kind != tokEOF {
			return nil, p.errorf("expected end of statement, found %s", p.tok.kind)
		}
	}
	return f, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("spec:%s: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, found %s", kind, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.tok.kind {
	case tokBang:
		return p.parseImport()
	case tokIdent:
		// Either `name = expr` or a call expression statement. Decide by
		// looking at the token following the identifier.
		ident := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokAssign:
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: ident.text, NamePos: ident.pos, X: x}, nil
		case tokLParen:
			call, err := p.parseCallAfterName(ident)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{X: call}, nil
		default:
			return nil, p.errorf("expected '=' or '(' after identifier %q", ident.text)
		}
	case tokPercent, tokAll:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, nil
	default:
		return nil, p.errorf("unexpected %s at start of statement", p.tok.kind)
	}
}

func (p *parser) parseImport() (Stmt, error) {
	bang, err := p.expect(tokBang)
	if err != nil {
		return nil, err
	}
	kw, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if kw.text != "import" {
		return nil, fmt.Errorf("spec:%s: unknown directive !%s", kw.pos, kw.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	path, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &ImportStmt{Path: path.text, BangPos: bang.pos}, nil
}

func (p *parser) parseExpr() (Expr, error) {
	switch p.tok.kind {
	case tokAll:
		e := &AllExpr{AllPos: p.tok.pos}
		return e, p.advance()
	case tokPercent:
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		return &RefExpr{Name: name.text, RefPos: pos}, nil
	case tokString:
		e := &StringLit{Val: p.tok.text, LitPos: p.tok.pos}
		return e, p.advance()
	case tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		e := &NumberLit{Val: v, LitPos: p.tok.pos}
		return e, p.advance()
	case tokIdent:
		ident := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, p.errorf("expected '(' after selector type %q", ident.text)
		}
		return p.parseCallAfterName(ident)
	default:
		return nil, p.errorf("unexpected %s in expression", p.tok.kind)
	}
}

// parseCallAfterName parses the argument list of a call whose name token has
// already been consumed; the current token is '('.
func (p *parser) parseCallAfterName(name token) (Expr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	call := &CallExpr{Fn: name.text, FnPos: name.pos}
	if p.tok.kind == tokRParen {
		return call, p.advance()
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokRParen:
			return call, p.advance()
		case tokString, tokNumber:
			// The paper's Listing 1 contains `loopDepth(">=" 1, %%)` —
			// a missing comma between arguments. Accept adjacent literal
			// arguments for compatibility with published specs.
		default:
			return nil, p.errorf("expected ',' or ')' in argument list, found %s", p.tok.kind)
		}
	}
}
