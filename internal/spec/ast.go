package spec

// File is a parsed specification.
type File struct {
	Stmts []Stmt
}

// Entry returns the pipeline entry expression: the expression of the last
// non-import statement (named or anonymous). It returns nil for an empty
// file.
func (f *File) Entry() Expr {
	for i := len(f.Stmts) - 1; i >= 0; i-- {
		switch s := f.Stmts[i].(type) {
		case *AssignStmt:
			return &RefExpr{Name: s.Name, RefPos: s.NamePos}
		case *ExprStmt:
			return s.X
		}
	}
	return nil
}

// Stmt is a top-level statement.
type Stmt interface {
	Pos() Pos
	stmt()
}

// ImportStmt is `!import("path")`.
type ImportStmt struct {
	Path    string
	BangPos Pos
}

func (s *ImportStmt) Pos() Pos { return s.BangPos }
func (s *ImportStmt) stmt()    {}

// AssignStmt is `name = expr`.
type AssignStmt struct {
	Name    string
	NamePos Pos
	X       Expr
}

func (s *AssignStmt) Pos() Pos { return s.NamePos }
func (s *AssignStmt) stmt()    {}

// ExprStmt is a bare (anonymous) expression statement.
type ExprStmt struct {
	X Expr
}

func (s *ExprStmt) Pos() Pos { return s.X.Pos() }
func (s *ExprStmt) stmt()    {}

// Expr is a selector expression.
type Expr interface {
	Pos() Pos
	expr()
}

// CallExpr is `selectorType(arg, ...)`.
type CallExpr struct {
	Fn    string
	FnPos Pos
	Args  []Expr
}

func (e *CallExpr) Pos() Pos { return e.FnPos }
func (e *CallExpr) expr()    {}

// RefExpr is `%name`.
type RefExpr struct {
	Name   string
	RefPos Pos
}

func (e *RefExpr) Pos() Pos { return e.RefPos }
func (e *RefExpr) expr()    {}

// AllExpr is `%%`, the set of all functions.
type AllExpr struct {
	AllPos Pos
}

func (e *AllExpr) Pos() Pos { return e.AllPos }
func (e *AllExpr) expr()    {}

// StringLit is a quoted string argument (also used for comparison operators
// such as ">=").
type StringLit struct {
	Val    string
	LitPos Pos
}

func (e *StringLit) Pos() Pos { return e.LitPos }
func (e *StringLit) expr()    {}

// NumberLit is a numeric argument.
type NumberLit struct {
	Val    float64
	LitPos Pos
}

func (e *NumberLit) Pos() Pos { return e.LitPos }
func (e *NumberLit) expr()    {}
